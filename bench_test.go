package prisma

// One benchmark per experiment of the reproduction suite (documented on
// the experiment functions in internal/experiments and in the README's
// "Experiment suite" section). Each wraps the corresponding experiment
// in quick mode so `go test -bench=.` regenerates every table;
// `cmd/prisma-bench` prints the full versions. Benchmarks log their
// tables once so benchmark output doubles as the experiment record.

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"repro/internal/experiments"
)

// runExperiment executes fn once per benchmark run and logs the table.
func runExperiment(b *testing.B, fn func(bool) (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb, err := fn(true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
		}
	}
}

// BenchmarkE1NetworkThroughput — §3.2: up to 20k packets (256 bit)/s/PE.
func BenchmarkE1NetworkThroughput(b *testing.B) {
	runExperiment(b, experiments.E1NetworkThroughput)
}

// BenchmarkE2ParallelSpeedup — §2.1/§2.2: fragment-parallel response time.
func BenchmarkE2ParallelSpeedup(b *testing.B) {
	runExperiment(b, experiments.E2ParallelSpeedup)
}

// BenchmarkE3MainMemoryVsDisk — §2.1: main memory as primary storage.
func BenchmarkE3MainMemoryVsDisk(b *testing.B) {
	runExperiment(b, experiments.E3MainMemoryVsDisk)
}

// BenchmarkE4CompiledVsInterpreted — §2.5: the OFM expression compiler.
func BenchmarkE4CompiledVsInterpreted(b *testing.B) {
	runExperiment(b, experiments.E4CompiledVsInterpreted)
}

// BenchmarkE5TransitiveClosure — §2.3/§2.5: recursive query evaluation.
func BenchmarkE5TransitiveClosure(b *testing.B) {
	runExperiment(b, experiments.E5TransitiveClosure)
}

// BenchmarkE6MultiQueryThroughput — §2.2: inter-query parallelism.
func BenchmarkE6MultiQueryThroughput(b *testing.B) {
	runExperiment(b, experiments.E6MultiQueryThroughput)
}

// BenchmarkE7Fragmentation — §2.2/§2.5: fragmentation strategies.
func BenchmarkE7Fragmentation(b *testing.B) {
	runExperiment(b, experiments.E7Fragmentation)
}

// BenchmarkE8RecoveryOverhead — §3.2: stable storage and recovery.
func BenchmarkE8RecoveryOverhead(b *testing.B) {
	runExperiment(b, experiments.E8RecoveryOverhead)
}

// BenchmarkE9OptimizerAblation — §2.4: the knowledge-based optimizer.
func BenchmarkE9OptimizerAblation(b *testing.B) {
	runExperiment(b, experiments.E9OptimizerAblation)
}

// BenchmarkE10Allocation — §3.2: central resource management.
func BenchmarkE10Allocation(b *testing.B) {
	runExperiment(b, experiments.E10Allocation)
}

// BenchmarkE11ConcurrentClients — §2.2: multi-user service through the
// TCP front-end (statements/sec and latency percentiles over the wire).
func BenchmarkE11ConcurrentClients(b *testing.B) {
	runExperiment(b, experiments.E11ConcurrentClients)
}

// BenchmarkE12PreparedPointQuery — §2.2: compile-once/execute-many
// prepared statements and the index-probe fast path vs per-statement
// re-optimization.
func BenchmarkE12PreparedPointQuery(b *testing.B) {
	runExperiment(b, experiments.E12PreparedPointQuery)
}

// BenchmarkE13Streaming — chunked result streaming vs single-frame
// materialization: time-to-first-tuple and peak frame size over TCP.
func BenchmarkE13Streaming(b *testing.B) {
	runExperiment(b, experiments.E13Streaming)
}

// BenchmarkE14PipelinedThroughput — statement pipelining over TCP:
// windows of point queries amortize the round trip; replies coalesce.
func BenchmarkE14PipelinedThroughput(b *testing.B) {
	runExperiment(b, experiments.E14PipelinedThroughput)
}

// BenchmarkE15MultiJoinParallelism — the partitioned dataflow executor
// on a 3-table star join + GROUP BY, central vs exchange-based.
func BenchmarkE15MultiJoinParallelism(b *testing.B) {
	runExperiment(b, experiments.E15MultiJoinParallelism)
}

// BenchmarkE16SnapshotReads — MVCC snapshot reads vs the all-2PL
// baseline: reader throughput across a growing writer population.
func BenchmarkE16SnapshotReads(b *testing.B) {
	runExperiment(b, experiments.E16SnapshotReads)
}

// BenchmarkE17Crashpoints — the fault-injection sweep: one injected
// crash per registered point, recovery audited for crash consistency.
func BenchmarkE17Crashpoints(b *testing.B) {
	runExperiment(b, experiments.E17Crashpoints)
}

// BenchmarkE18Replication — WAL-shipping read replicas: read capacity
// vs replica count, replication lag, and the audited failover cell.
func BenchmarkE18Replication(b *testing.B) {
	runExperiment(b, experiments.E18Replication)
}

// BenchmarkE19Overload — the multi-tenant front door under ~4x
// capacity: calibrated goodput, bounded admitted p99, fair sharing,
// retryable sheds.
func BenchmarkE19Overload(b *testing.B) {
	runExperiment(b, experiments.E19Overload)
}

// BenchmarkE20Vectorized — columnar batch execution over the OFM column
// caches vs the tuple-at-a-time executor: filter-scan selectivity
// sweep, join, and grouped aggregation, medians of interleaved runs.
func BenchmarkE20Vectorized(b *testing.B) {
	runExperiment(b, experiments.E20Vectorized)
}

// ---------- micro-benchmarks on the public API ----------

// benchDB builds a loaded database once per benchmark.
func benchDB(b *testing.B, frags int) (*DB, *Session) {
	b.Helper()
	db, err := Open(Config{NumPEs: 64})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(db.Close)
	s := db.Session()
	if _, err := s.Exec(fmt.Sprintf(`CREATE TABLE emp (id INT, dept VARCHAR, salary INT, PRIMARY KEY (id))
		FRAGMENT BY HASH(id) INTO %d FRAGMENTS`, frags)); err != nil {
		b.Fatal(err)
	}
	depts := []string{"eng", "ops", "hr", "sales"}
	tuples := make([]Tuple, 10000)
	for i := range tuples {
		tuples[i] = Tuple{NewInt(int64(i)), NewString(depts[i%4]), NewInt(int64(i % 100000))}
	}
	if err := db.LoadTable("emp", tuples); err != nil {
		b.Fatal(err)
	}
	return db, s
}

// BenchmarkPointQuery measures a pruned single-fragment point lookup.
func BenchmarkPointQuery(b *testing.B) {
	_, s := benchDB(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sql := `SELECT * FROM emp WHERE id = ` + strconv.Itoa(i%10000)
		if _, err := s.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreparedPointQuery measures the prepared point-query fast
// path: parse/optimize amortized at Prepare, execution via index probe.
func BenchmarkPreparedPointQuery(b *testing.B) {
	_, s := benchDB(b, 16)
	ps, err := s.Prepare(`SELECT * FROM emp WHERE id = ?`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.QueryPrepared(ps, NewInt(int64(i%10000))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupByQuery measures a fragment-parallel aggregation.
func BenchmarkGroupByQuery(b *testing.B) {
	_, s := benchDB(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query(`SELECT dept, COUNT(*) AS n, AVG(salary) AS mean FROM emp GROUP BY dept`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsertTxn measures single-row transactional inserts (2PC +
// WAL force per statement).
func BenchmarkInsertTxn(b *testing.B) {
	db, _ := benchDB(b, 16)
	s := db.Session()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sql := fmt.Sprintf(`INSERT INTO emp VALUES (%d, 'x', 1)`, 100000+i)
		if _, err := s.Exec(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentReaders measures shared-lock read scaling.
func BenchmarkConcurrentReaders(b *testing.B) {
	db, _ := benchDB(b, 16)
	b.ResetTimer()
	var wg sync.WaitGroup
	workers := 8
	per := b.N/workers + 1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.Session()
			defer s.Close()
			for i := 0; i < per; i++ {
				if _, err := s.Query(`SELECT COUNT(*) AS n FROM emp WHERE salary > 50000`); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkDatalogAncestor measures recursive PRISMAlog evaluation.
func BenchmarkDatalogAncestor(b *testing.B) {
	db, err := Open(Config{NumPEs: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(db.Close)
	s := db.Session()
	if _, err := s.Exec(`CREATE TABLE edge (src INT, dst INT) FRAGMENT BY HASH(src) INTO 4 FRAGMENTS`); err != nil {
		b.Fatal(err)
	}
	var tuples []Tuple
	for i := int64(0); i < 200; i++ {
		tuples = append(tuples, Tuple{NewInt(i), NewInt(i + 1)})
	}
	if err := db.LoadTable("edge", tuples); err != nil {
		b.Fatal(err)
	}
	if err := db.RegisterRules(`
		reach(X, Y) :- edge(X, Y).
		reach(X, Y) :- edge(X, Z), reach(Z, Y).
	`); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, err := s.DatalogQuery(`reach(0, X)`)
		if err != nil {
			b.Fatal(err)
		}
		if rel.Len() != 200 {
			b.Fatalf("answers = %d", rel.Len())
		}
	}
}
