// Command prisma-shell is an interactive SQL / PRISMAlog shell on a
// simulated PRISMA database machine.
//
// Usage:
//
//	prisma-shell [-pes 64]
//
// SQL statements end with ';'. Lines starting with "?-" are PRISMAlog
// queries; ":rules" enters multi-line rule definition mode (end with a
// single '.'); ":tables" lists tables, ":describe t" shows one,
// ":quit" exits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
)

func main() {
	pes := flag.Int("pes", 64, "number of processing elements")
	flag.Parse()

	eng, err := core.New(core.Config{NumPEs: *pes})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer eng.Close()
	s := eng.NewSession()
	defer s.Close()

	fmt.Printf("PRISMA database machine (%d PEs). SQL ends with ';', PRISMAlog queries start with '?-'.\n", *pes)
	fmt.Println(`Type ":help" for commands.`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("prisma> ")
		} else {
			fmt.Print("   ...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case buf.Len() == 0 && trimmed == "":
			prompt()
			continue
		case buf.Len() == 0 && strings.HasPrefix(trimmed, ":"):
			if !command(eng, s, sc, trimmed) {
				return
			}
			prompt()
			continue
		case buf.Len() == 0 && strings.HasPrefix(trimmed, "?-"):
			runDatalog(eng, s, trimmed)
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			runSQL(s, buf.String())
			buf.Reset()
		}
		prompt()
	}
}

// runSQL executes one statement, streaming SELECT output batch by batch
// as the engine's cursor produces it: the first rows print while later
// fragments are still scanning, and arbitrarily large results never
// materialize in the shell.
func runSQL(s *core.Session, sql string) {
	cur, res, err := s.Stream(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if cur == nil {
		switch {
		case res.Rel != nil:
			// Materialized relation without a cursor: EXPLAIN output.
			for _, t := range res.Rel.Tuples {
				fields := make([]string, len(t))
				for i, v := range t {
					fields[i] = v.String()
				}
				fmt.Println(strings.Join(fields, "  "))
			}
		case res.Msg != "":
			fmt.Println(res.Msg)
		default:
			fmt.Printf("%d rows affected (sim %v, wall %v)\n", res.Affected, res.SimTime, res.WallTime)
		}
		return
	}
	defer cur.Close()
	cols := cur.Schema().Columns()
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	header := strings.Join(names, "  ")
	fmt.Println(header)
	fmt.Println(strings.Repeat("-", len(header)))
	for {
		rel, err := cur.Next()
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if rel == nil {
			break
		}
		for _, t := range rel.Tuples {
			fields := make([]string, len(t))
			for i, v := range t {
				fields[i] = v.String()
			}
			fmt.Println(strings.Join(fields, "  "))
		}
	}
	fmt.Printf("(%d rows, sim %v, wall %v)\n", cur.Rows(), cur.SimTime(), cur.WallTime())
}

func runDatalog(eng *core.Engine, s *core.Session, q string) {
	rel, err := eng.DatalogQuery(s, q)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(rel)
	fmt.Printf("(%d answers)\n", rel.Len())
}

// command handles ':' meta commands; returns false to quit.
func command(eng *core.Engine, s *core.Session, sc *bufio.Scanner, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ":quit", ":exit", ":q":
		return false
	case ":help":
		fmt.Println(`commands:
  <sql statement>;       execute SQL (multi-line until ';')
  ?- goal(...), ...      run a PRISMAlog query
  :rules                 enter PRISMAlog rules (finish with a single '.')
  :tables                list tables
  :describe <table>      show a table definition
  :quit                  exit`)
	case ":tables":
		for _, name := range eng.Catalog().List() {
			fmt.Println(" ", name)
		}
	case ":describe":
		if len(fields) < 2 {
			fmt.Println("usage: :describe <table>")
			break
		}
		desc, err := eng.Catalog().Describe(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Print(desc)
	case ":rules":
		fmt.Println("enter rules; finish with a single '.' on its own line")
		var rules strings.Builder
		for sc.Scan() {
			line := sc.Text()
			if strings.TrimSpace(line) == "." {
				break
			}
			rules.WriteString(line)
			rules.WriteByte('\n')
		}
		if err := eng.RegisterRules(rules.String()); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("rules registered")
		}
	default:
		fmt.Println("unknown command; :help lists commands")
	}
	return true
}
