// Command prisma-netsim reruns the paper's §3.2 network simulation: the
// multi-computer's message-passing fabric under uniform random traffic.
//
// Usage:
//
//	prisma-netsim [-topology torus|mesh|chordal|ring|hypercube]
//	              [-pes 64] [-rate 15000] [-duration 50ms] [-sweep]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/simnet"
)

func main() {
	topology := flag.String("topology", "torus", "torus, mesh, chordal, ring or hypercube")
	pes := flag.Int("pes", 64, "number of processing elements (power of 2 / square as needed)")
	rate := flag.Float64("rate", 15000, "offered packets/sec/PE")
	duration := flag.Duration("duration", 50*time.Millisecond, "injection window")
	sweep := flag.Bool("sweep", false, "sweep offered load and find the saturation point")
	seed := flag.Int64("seed", 42, "traffic seed")
	flag.Parse()

	top, err := buildTopology(*topology, *pes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	nw, err := simnet.New(simnet.Config{Topology: top})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("topology %s: degree %d, avg distance %.2f, diameter %d, theoretical peak %.0f pkts/s/PE\n",
		top.Name(), simnet.MaxDegree(top), simnet.AvgDistance(top), simnet.Diameter(top), nw.TheoreticalPeak())

	if *sweep {
		fmt.Printf("%-12s %-12s %-12s %-12s %-10s\n", "offered", "delivered", "avg latency", "max latency", "link util")
		for _, r := range []float64{2000, 5000, 10000, 15000, 20000, 25000, 30000, 40000} {
			res := nw.RunUniformTraffic(r, *duration, *seed)
			fmt.Printf("%-12.0f %-12.0f %-12v %-12v %-10.2f\n",
				r, res.Throughput, res.AvgLatency.Round(time.Microsecond),
				res.MaxLatency.Round(time.Microsecond), res.LinkUtil)
		}
		best := nw.SaturationThroughput(*duration, *seed)
		fmt.Printf("\nsaturation: %.0f pkts/s/PE sustained (paper claim: up to 20000 on 64 PEs)\n", best.Throughput)
		return
	}
	res := nw.RunUniformTraffic(*rate, *duration, *seed)
	fmt.Printf("offered %.0f pkts/s/PE for %v: delivered %.0f pkts/s/PE, avg latency %v, avg hops %.2f, link util %.2f\n",
		res.OfferedRate, res.Duration, res.Throughput,
		res.AvgLatency.Round(time.Microsecond), res.AvgHops, res.LinkUtil)
	if res.Saturated() {
		fmt.Println("the network is saturated at this load")
	}
}

func buildTopology(name string, n int) (simnet.Topology, error) {
	switch name {
	case "torus", "mesh":
		side := 1
		for side*side < n {
			side++
		}
		if side*side != n {
			return nil, fmt.Errorf("netsim: %s needs a square PE count, got %d", name, n)
		}
		return simnet.NewMesh(side, side, name == "torus")
	case "chordal":
		return simnet.NewChordalRing(n, simnet.BestChord(n))
	case "ring":
		return simnet.NewRing(n)
	case "hypercube":
		dim := 0
		for 1<<dim < n {
			dim++
		}
		if 1<<dim != n {
			return nil, fmt.Errorf("netsim: hypercube needs a power-of-2 PE count, got %d", n)
		}
		return simnet.NewHypercube(dim)
	default:
		return nil, fmt.Errorf("netsim: unknown topology %q", name)
	}
}
