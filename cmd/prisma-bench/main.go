// Command prisma-bench regenerates the reproduction's experiment tables
// E1–E11. Each experiment is documented on its function in
// internal/experiments (the README's "Experiment suite" section lists
// them); the root bench_test.go wraps each one as a Go benchmark.
//
// Usage:
//
//	prisma-bench [-quick] [-only E4,E5]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run smaller workloads")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E1,E4); empty = all")
	flag.Parse()

	type exp struct {
		id string
		fn func(bool) (*experiments.Table, error)
	}
	all := []exp{
		{"E1", experiments.E1NetworkThroughput},
		{"E2", experiments.E2ParallelSpeedup},
		{"E3", experiments.E3MainMemoryVsDisk},
		{"E4", experiments.E4CompiledVsInterpreted},
		{"E5", experiments.E5TransitiveClosure},
		{"E6", experiments.E6MultiQueryThroughput},
		{"E7", experiments.E7Fragmentation},
		{"E8", experiments.E8RecoveryOverhead},
		{"E9", experiments.E9OptimizerAblation},
		{"E10", experiments.E10Allocation},
		{"E11", experiments.E11ConcurrentClients},
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	fmt.Printf("PRISMA database machine reproduction — experiment suite (quick=%v)\n\n", *quick)
	failed := false
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		start := time.Now()
		tb, err := e.fn(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			failed = true
			continue
		}
		fmt.Println(tb)
		fmt.Printf("(%s took %s)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
