// Command prisma-bench regenerates the reproduction's experiment tables
// E1–E20. Each experiment is documented on its function in
// internal/experiments (the README's "Experiment suite" section lists
// them); the root bench_test.go wraps each one as a Go benchmark.
//
// Usage:
//
//	prisma-bench [-quick] [-only E4,E5] [-json] [-compare old.json] [-cpuprofile cpu.out]
//
// With -json the tables are emitted as a JSON array (one object per
// experiment) instead of aligned text — the CI workflow archives the
// E11–E20 output this way so every run leaves a comparable perf record.
// With -compare the freshly-run experiments are diffed against a
// previous -json output: per-row metric deltas are printed on stderr
// (so -json -compare composes — stdout stays pure JSON), and any
// metric that regresses by more than 25% emits a GitHub Actions
// ::warning:: annotation (the exit code stays 0 — regressions fail
// soft, experiment errors fail hard).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

// jsonTable is the machine-readable form of one experiment table.
type jsonTable struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
	TookMS int64      `json:"took_ms"`
}

func main() {
	quick := flag.Bool("quick", false, "run smaller workloads")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E1,E4); empty = all")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of aligned text")
	compare := flag.String("compare", "", "path to a previous -json output; print per-experiment deltas and warn (soft) on >25% regressions")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file (inspect with go tool pprof)")
	flag.Parse()

	stopProfile := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		// os.Exit skips defers, so the failure path below flushes the
		// profile explicitly — a failed experiment is exactly when the
		// profile is wanted.
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopProfile()
	}

	type exp struct {
		id string
		fn func(bool) (*experiments.Table, error)
	}
	all := []exp{
		{"E1", experiments.E1NetworkThroughput},
		{"E2", experiments.E2ParallelSpeedup},
		{"E3", experiments.E3MainMemoryVsDisk},
		{"E4", experiments.E4CompiledVsInterpreted},
		{"E5", experiments.E5TransitiveClosure},
		{"E6", experiments.E6MultiQueryThroughput},
		{"E7", experiments.E7Fragmentation},
		{"E8", experiments.E8RecoveryOverhead},
		{"E9", experiments.E9OptimizerAblation},
		{"E10", experiments.E10Allocation},
		{"E11", experiments.E11ConcurrentClients},
		{"E12", experiments.E12PreparedPointQuery},
		{"E13", experiments.E13Streaming},
		{"E14", experiments.E14PipelinedThroughput},
		{"E15", experiments.E15MultiJoinParallelism},
		{"E16", experiments.E16SnapshotReads},
		{"E17", experiments.E17Crashpoints},
		{"E18", experiments.E18Replication},
		{"E19", experiments.E19Overload},
		{"E20", experiments.E20Vectorized},
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	if !*asJSON {
		fmt.Printf("PRISMA database machine reproduction — experiment suite (quick=%v)\n\n", *quick)
	}
	out := []jsonTable{} // encodes as [] (never null) when empty
	failed := false
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		start := time.Now()
		tb, err := e.fn(*quick)
		took := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			failed = true
			continue
		}
		jt := jsonTable{
			ID:     tb.ID,
			Title:  tb.Title,
			Header: tb.Header,
			Rows:   tb.Rows,
			Notes:  tb.Notes,
			TookMS: took.Milliseconds(),
		}
		out = append(out, jt)
		if !*asJSON {
			fmt.Println(tb)
			fmt.Printf("(%s took %s)\n\n", e.id, took.Round(time.Millisecond))
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "encode: %v\n", err)
			failed = true
		}
	}
	if *compare != "" {
		if err := compareAgainst(*compare, out); err != nil {
			fmt.Fprintf(os.Stderr, "compare: %v\n", err)
			failed = true
		}
	}
	if failed {
		stopProfile()
		os.Exit(1)
	}
}

// regressionThreshold is the soft-failure bar for -compare: a metric
// moving more than this fraction in the bad direction annotates the run.
const regressionThreshold = 0.25

// compareAgainst diffs the fresh tables against a previous -json dump:
// rows are matched by experiment id plus the leading key columns, and
// every numeric metric both runs share is reported as a delta. Metrics
// whose header names a direction (stmts/sec and speedups up; times,
// latencies and bytes down) that regress past the threshold print
// GitHub ::warning:: annotations; nothing here changes the exit code.
func compareAgainst(path string, fresh []jsonTable) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old []jsonTable
	if err := json.Unmarshal(raw, &old); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	oldByID := map[string]jsonTable{}
	for _, t := range old {
		oldByID[t.ID] = t
	}
	for _, cur := range fresh {
		prev, ok := oldByID[cur.ID]
		if !ok {
			fmt.Fprintf(os.Stderr, "%s: no baseline in %s — skipped\n", cur.ID, path)
			continue
		}
		fmt.Fprintf(os.Stderr, "%s deltas vs %s:\n", cur.ID, path)
		prevRows := map[string][]string{}
		for _, r := range prev.Rows {
			prevRows[rowKey(prev.Header, r)] = r
		}
		for _, r := range cur.Rows {
			key := rowKey(cur.Header, r)
			pr, ok := prevRows[key]
			if !ok {
				fmt.Fprintf(os.Stderr, "  %s: new row (no baseline)\n", key)
				continue
			}
			var parts []string
			for ci, h := range cur.Header {
				if ci >= len(r) {
					break
				}
				pi := headerIndex(prev.Header, h)
				if pi < 0 || pi >= len(pr) {
					continue
				}
				now, ok1 := parseMetric(r[ci])
				was, ok2 := parseMetric(pr[pi])
				if !ok1 || !ok2 || was == 0 || isKeyColumn(h) {
					continue
				}
				change := (now - was) / was
				parts = append(parts, fmt.Sprintf("%s %s -> %s (%+.1f%%)", h, pr[pi], r[ci], change*100))
				if bad, dir := regressed(h, change); bad {
					fmt.Fprintf(os.Stderr, "::warning title=%s perf regression::%s %s: %s %s by %.1f%% (%s -> %s)\n",
						cur.ID, cur.ID, key, h, dir, abs(change)*100, pr[pi], r[ci])
				}
			}
			if len(parts) > 0 {
				fmt.Fprintf(os.Stderr, "  %s: %s\n", key, strings.Join(parts, ", "))
			}
		}
	}
	return nil
}

// rowKey joins the leading non-metric columns, which identify a row
// (client counts, PE counts, executor names, rule sets...).
func rowKey(header []string, row []string) string {
	var keys []string
	for i, h := range header {
		if i >= len(row) {
			break
		}
		if isKeyColumn(h) || i == 0 {
			keys = append(keys, row[i])
		}
	}
	return strings.Join(keys, "/")
}

// isKeyColumn reports headers that identify rather than measure.
// Counted outputs ("statements", "rows") are metrics, not identity —
// a concurrent workload's statement count varies run to run.
func isKeyColumn(h string) bool {
	switch strings.ToLower(h) {
	case "clients", "pes", "executor", "mode", "depth", "window", "rule set", "writers", "fault point", "invariants", "replicas", "tenant", "class", "shape", "selectivity":
		return true
	}
	return false
}

func headerIndex(header []string, name string) int {
	for i, h := range header {
		if h == name {
			return i
		}
	}
	return -1
}

// parseMetric reads a table cell as a float: plain numbers, counts, or
// Go durations ("3.8ms", "647µs") normalized to seconds.
func parseMetric(cell string) (float64, bool) {
	cell = strings.TrimSpace(cell)
	if f, err := strconv.ParseFloat(cell, 64); err == nil {
		return f, true
	}
	if d, err := time.ParseDuration(cell); err == nil {
		return d.Seconds(), true
	}
	return 0, false
}

// regressed decides whether a signed change on a named metric is a
// regression past the threshold, using the header to infer direction.
func regressed(header string, change float64) (bool, string) {
	h := strings.ToLower(header)
	higherBetter := strings.Contains(h, "stmts/sec") || strings.Contains(h, "/sec") ||
		strings.Contains(h, "speedup") || strings.Contains(h, "throughput")
	lowerBetter := strings.Contains(h, "time") || strings.Contains(h, "latency") ||
		strings.Contains(h, "p50") || strings.Contains(h, "p99") ||
		strings.Contains(h, "bytes") || strings.Contains(h, "allocs") ||
		strings.Contains(h, "sim response") || strings.Contains(h, "work")
	switch {
	case higherBetter && change < -regressionThreshold:
		return true, "dropped"
	case lowerBetter && change > regressionThreshold:
		return true, "rose"
	}
	return false, ""
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
