// Command prisma-bench regenerates the reproduction's experiment tables
// E1–E14. Each experiment is documented on its function in
// internal/experiments (the README's "Experiment suite" section lists
// them); the root bench_test.go wraps each one as a Go benchmark.
//
// Usage:
//
//	prisma-bench [-quick] [-only E4,E5] [-json]
//
// With -json the tables are emitted as a JSON array (one object per
// experiment) instead of aligned text — the CI workflow archives the
// E11/E12 output this way so every run leaves a comparable perf record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

// jsonTable is the machine-readable form of one experiment table.
type jsonTable struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
	TookMS int64      `json:"took_ms"`
}

func main() {
	quick := flag.Bool("quick", false, "run smaller workloads")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E1,E4); empty = all")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of aligned text")
	flag.Parse()

	type exp struct {
		id string
		fn func(bool) (*experiments.Table, error)
	}
	all := []exp{
		{"E1", experiments.E1NetworkThroughput},
		{"E2", experiments.E2ParallelSpeedup},
		{"E3", experiments.E3MainMemoryVsDisk},
		{"E4", experiments.E4CompiledVsInterpreted},
		{"E5", experiments.E5TransitiveClosure},
		{"E6", experiments.E6MultiQueryThroughput},
		{"E7", experiments.E7Fragmentation},
		{"E8", experiments.E8RecoveryOverhead},
		{"E9", experiments.E9OptimizerAblation},
		{"E10", experiments.E10Allocation},
		{"E11", experiments.E11ConcurrentClients},
		{"E12", experiments.E12PreparedPointQuery},
		{"E13", experiments.E13Streaming},
		{"E14", experiments.E14PipelinedThroughput},
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	if !*asJSON {
		fmt.Printf("PRISMA database machine reproduction — experiment suite (quick=%v)\n\n", *quick)
	}
	out := []jsonTable{} // encodes as [] (never null) when empty
	failed := false
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		start := time.Now()
		tb, err := e.fn(*quick)
		took := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			failed = true
			continue
		}
		if *asJSON {
			out = append(out, jsonTable{
				ID:     tb.ID,
				Title:  tb.Title,
				Header: tb.Header,
				Rows:   tb.Rows,
				Notes:  tb.Notes,
				TookMS: took.Milliseconds(),
			})
			continue
		}
		fmt.Println(tb)
		fmt.Printf("(%s took %s)\n\n", e.id, took.Round(time.Millisecond))
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "encode: %v\n", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
