// Command prisma-serve runs the PRISMA database machine behind a TCP
// front-end. Each connection gets its own session (and coordinator PE);
// statements are SQL by default, and the bundled Go client library
// (internal/client) speaks the same wire protocol programmatically.
//
// Usage:
//
//	prisma-serve [-addr 127.0.0.1:7070] [-pes 64] [-max-conns 64] [-pipeline-depth 64] [-stmt-timeout 0] [-replica-of host:port] [-max-inflight 0] [-queue-depth 0] [-pprof addr]
//
// With -max-inflight > 0 the server runs statement admission control:
// at most that many statements execute at once, excess queues up to
// -queue-depth (default 2x) per priority class, and overflow is shed
// with a coded retryable error. Tenants created with CREATE USER get
// per-tenant concurrency tokens, priorities and memory budgets; SHOW
// ADMISSION reports live counters.
//
// With -replica-of the server starts as a read replica: it subscribes
// to the named primary's WAL stream, serves snapshot reads at the
// replication watermark, refuses writes with a redirect, and fails
// over to primary when a client executes PROMOTE.
//
// With -pprof the server additionally exposes Go's net/http/pprof
// handlers on a second (private) address — profile a live server with
// `go tool pprof http://<addr>/debug/pprof/profile`. Mutex and block
// profiling are enabled at a small sampling fraction so lock
// contention inside the executor shows up without distorting it.
//
// Stop with SIGINT/SIGTERM; the server drains connections (aborting
// open transactions) before exiting.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/repl"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	pes := flag.Int("pes", 64, "number of processing elements")
	maxConns := flag.Int("max-conns", 64, "maximum concurrent connections")
	pipeDepth := flag.Int("pipeline-depth", 64, "request frames a connection may queue behind the executing one")
	quiet := flag.Bool("quiet", false, "suppress per-connection logging")
	stmtTimeout := flag.Duration("stmt-timeout", 0, "default per-statement lock-wait deadline for every session (0 = none; sessions override with SET STATEMENT_TIMEOUT)")
	replicaOf := flag.String("replica-of", "", "start as a read replica of the primary at this address")
	maxInflight := flag.Int("max-inflight", 0, "statements executing at once under admission control (0 = admission off)")
	queueDepth := flag.Int("queue-depth", 0, "admission queue slots per priority class (0 = 2x max-inflight)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = profiling off)")
	flag.Parse()

	if *pprofAddr != "" {
		runtime.SetMutexProfileFraction(100)
		runtime.SetBlockProfileRate(100_000) // one sample per 100µs blocked
		pl, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("prisma-serve: pprof listen: %v", err)
		}
		fmt.Printf("prisma-serve: pprof on http://%s/debug/pprof/\n", pl.Addr())
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers.
			if err := http.Serve(pl, nil); err != nil {
				log.Printf("prisma-serve: pprof server: %v", err)
			}
		}()
	}

	eng, err := core.New(core.Config{NumPEs: *pes})
	if err != nil {
		log.Fatalf("prisma-serve: engine: %v", err)
	}
	defer eng.Close()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	// Every server carries a replication source so replicas can attach
	// — including a promoted ex-replica, which becomes a primary that
	// other replicas chain from.
	src := repl.NewSource(repl.SourceConfig{Engine: eng})
	defer src.Close()
	// Semi-synchronous commits: a commit acknowledges only once its
	// records have shipped to every attached replica (or none are
	// attached), so failover never loses an acknowledged commit.
	eng.Txns().SetCommitWait(src.WaitShipped)

	cfg := server.Config{Engine: eng, MaxConns: *maxConns, PipelineDepth: *pipeDepth,
		StatementTimeout: *stmtTimeout, Logf: logf, Source: src}
	if *maxInflight > 0 {
		cfg.Admission = admission.New(admission.Config{MaxInFlight: *maxInflight, QueueDepth: *queueDepth})
	}
	var replica *repl.Replica
	if *replicaOf != "" {
		replica, err = repl.StartReplica(repl.ReplicaConfig{Engine: eng, Primary: *replicaOf, Logf: logf})
		if err != nil {
			log.Fatalf("prisma-serve: replica: %v", err)
		}
		defer replica.Stop()
		cfg.PrimaryAddr = replica.Primary
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatalf("prisma-serve: %v", err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("prisma-serve: listen: %v", err)
	}
	if *replicaOf != "" {
		fmt.Printf("prisma-serve: %d-PE machine listening on %s (replica of %s)\n", *pes, l.Addr(), *replicaOf)
	} else {
		fmt.Printf("prisma-serve: %d-PE machine listening on %s\n", *pes, l.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Printf("prisma-serve: %s, shutting down\n", s)
		srv.Close()
	}()

	if err := srv.Serve(l); err != server.ErrServerClosed {
		log.Fatalf("prisma-serve: %v", err)
	}
	fmt.Println("prisma-serve: bye")
}
