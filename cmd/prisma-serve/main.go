// Command prisma-serve runs the PRISMA database machine behind a TCP
// front-end. Each connection gets its own session (and coordinator PE);
// statements are SQL by default, and the bundled Go client library
// (internal/client) speaks the same wire protocol programmatically.
//
// Usage:
//
//	prisma-serve [-addr 127.0.0.1:7070] [-pes 64] [-max-conns 64] [-pipeline-depth 64] [-stmt-timeout 0]
//
// Stop with SIGINT/SIGTERM; the server drains connections (aborting
// open transactions) before exiting.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	pes := flag.Int("pes", 64, "number of processing elements")
	maxConns := flag.Int("max-conns", 64, "maximum concurrent connections")
	pipeDepth := flag.Int("pipeline-depth", 64, "request frames a connection may queue behind the executing one")
	quiet := flag.Bool("quiet", false, "suppress per-connection logging")
	stmtTimeout := flag.Duration("stmt-timeout", 0, "default per-statement lock-wait deadline for every session (0 = none; sessions override with SET STATEMENT_TIMEOUT)")
	flag.Parse()

	eng, err := core.New(core.Config{NumPEs: *pes})
	if err != nil {
		log.Fatalf("prisma-serve: engine: %v", err)
	}
	defer eng.Close()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	srv, err := server.New(server.Config{Engine: eng, MaxConns: *maxConns, PipelineDepth: *pipeDepth, StatementTimeout: *stmtTimeout, Logf: logf})
	if err != nil {
		log.Fatalf("prisma-serve: %v", err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("prisma-serve: listen: %v", err)
	}
	fmt.Printf("prisma-serve: %d-PE machine listening on %s\n", *pes, l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Printf("prisma-serve: %s, shutting down\n", s)
		srv.Close()
	}()

	if err := srv.Serve(l); err != server.ErrServerClosed {
		log.Fatalf("prisma-serve: %v", err)
	}
	fmt.Println("prisma-serve: bye")
}
