package prisma

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func openTest(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Config{NumPEs: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func TestPublicAPIQuickstart(t *testing.T) {
	db := openTest(t)
	s := db.Session()
	defer s.Close()
	if _, err := s.Exec(`CREATE TABLE emp (id INT, dept VARCHAR, salary INT, PRIMARY KEY (id))
		FRAGMENT BY HASH(id) INTO 4 FRAGMENTS`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`INSERT INTO emp VALUES (1,'eng',100), (2,'ops',90), (3,'eng',120)`); err != nil {
		t.Fatal(err)
	}
	rel, err := s.Query(`SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept ORDER BY dept`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 || rel.Tuples[0][0].Str() != "eng" || rel.Tuples[0][1].Int() != 2 {
		t.Errorf("result = %v", rel.Tuples)
	}
	// Rendered output is a table.
	if !strings.Contains(rel.String(), "dept") {
		t.Errorf("String() = %q", rel.String())
	}
}

func TestPublicDatalog(t *testing.T) {
	db := openTest(t)
	s := db.Session()
	defer s.Close()
	if _, err := s.Exec(`CREATE TABLE edge (src INT, dst INT) FRAGMENT BY HASH(src) INTO 2 FRAGMENTS`); err != nil {
		t.Fatal(err)
	}
	var tuples []Tuple
	for i := int64(0); i < 10; i++ {
		tuples = append(tuples, Tuple{NewInt(i), NewInt(i + 1)})
	}
	if err := db.LoadTable("edge", tuples); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterRules(`
		reach(X, Y) :- edge(X, Y).
		reach(X, Y) :- edge(X, Z), reach(Z, Y).
	`); err != nil {
		t.Fatal(err)
	}
	rel, err := s.DatalogQuery(`reach(0, X)`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 10 {
		t.Errorf("reachable from 0 = %d", rel.Len())
	}
	answers, err := s.DatalogProgram(`?- reach(X, 10).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || answers[0].Len() != 10 {
		t.Errorf("program answers = %v", answers)
	}
	db.ClearRules()
}

func TestCrashRecoveryPublicAPI(t *testing.T) {
	db := openTest(t)
	s := db.Session()
	defer s.Close()
	if _, err := s.Exec(`CREATE TABLE acct (id INT, bal INT, PRIMARY KEY (id)) FRAGMENT BY HASH(id) INTO 2 FRAGMENTS`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`INSERT INTO acct VALUES (1, 100), (2, 200)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`UPDATE acct SET bal = bal - 50 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if err := db.CrashTable("acct"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.RecoverTable("acct"); err != nil {
		t.Fatal(err)
	}
	rel, err := s.Query(`SELECT bal FROM acct WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Tuples[0][0].Int() != 50 {
		t.Errorf("balance after recovery = %v", rel.Tuples[0])
	}
	if err := db.CheckpointTable("acct"); err != nil {
		t.Fatal(err)
	}
}

func TestInterpretedConfig(t *testing.T) {
	db, err := Open(Config{NumPEs: 16, Interpreted: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session()
	if _, err := s.Exec(`CREATE TABLE t (x INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`INSERT INTO t VALUES (1), (2), (3)`); err != nil {
		t.Fatal(err)
	}
	rel, err := s.Query(`SELECT x FROM t WHERE x > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Errorf("interpreted scan = %d rows", rel.Len())
	}
}

func TestOptimizerConfig(t *testing.T) {
	opts := OptimizerOptions{} // no rules
	db, err := Open(Config{NumPEs: 16, Optimizer: &opts})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session()
	if _, err := s.Exec(`CREATE TABLE t (x INT) FRAGMENT BY HASH(x) INTO 4 FRAGMENTS`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`INSERT INTO t VALUES (1), (2), (3), (4), (5)`); err != nil {
		t.Fatal(err)
	}
	rel, err := s.Query(`SELECT x FROM t WHERE x >= 4`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Errorf("no-rules query = %d rows", rel.Len())
	}
}

func TestRandomPlacementConfig(t *testing.T) {
	db, err := Open(Config{NumPEs: 16, RandomPlacement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session()
	if _, err := s.Exec(`CREATE TABLE t (x INT) FRAGMENT BY HASH(x) INTO 8 FRAGMENTS`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatedTimeVisible(t *testing.T) {
	db := openTest(t)
	s := db.Session()
	if _, err := s.Exec(`CREATE TABLE t (x INT) FRAGMENT BY HASH(x) INTO 4 FRAGMENTS`); err != nil {
		t.Fatal(err)
	}
	var rows []string
	for i := 0; i < 200; i++ {
		rows = append(rows, fmt.Sprintf("(%d)", i))
	}
	if _, err := s.Exec(`INSERT INTO t VALUES ` + strings.Join(rows, ",")); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(`SELECT COUNT(*) AS n FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimTime <= 0 {
		t.Errorf("SimTime = %v", res.SimTime)
	}
	if res.Rel.Tuples[0][0].Int() != 200 {
		t.Errorf("count = %v", res.Rel.Tuples[0])
	}
}

func TestConcurrentPublicSessions(t *testing.T) {
	db := openTest(t)
	s := db.Session()
	if _, err := s.Exec(`CREATE TABLE t (x INT, PRIMARY KEY (x)) FRAGMENT BY HASH(x) INTO 4 FRAGMENTS`); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.Session()
			defer sess.Close()
			for i := 0; i < 10; i++ {
				if _, err := sess.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, w*100+i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	rel, err := s.Query(`SELECT COUNT(*) AS n FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Tuples[0][0].Int() != 80 {
		t.Errorf("count = %v", rel.Tuples[0])
	}
}

func TestPublicStream(t *testing.T) {
	db := openTest(t)
	s := db.Session()
	defer s.Close()
	if _, err := s.Exec(`CREATE TABLE emp (id INT, dept VARCHAR, PRIMARY KEY (id))
		FRAGMENT BY HASH(id) INTO 4 FRAGMENTS`); err != nil {
		t.Fatal(err)
	}
	tuples := make([]Tuple, 1000)
	for i := range tuples {
		tuples[i] = Tuple{NewInt(int64(i)), NewString("eng")}
	}
	if err := db.LoadTable("emp", tuples); err != nil {
		t.Fatal(err)
	}
	cur, res, err := s.Stream(`SELECT * FROM emp`)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("SELECT produced a materialized result: %+v", res)
	}
	defer cur.Close()
	n := 0
	batches := 0
	for {
		rel, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rel == nil {
			break
		}
		n += rel.Len()
		batches++
	}
	if n != 1000 {
		t.Fatalf("streamed %d rows, want 1000", n)
	}
	if batches < 2 {
		t.Fatalf("expected fragment-at-a-time batches, got %d", batches)
	}
	// Non-SELECT statements come back materialized.
	_, res, err = s.Stream(`INSERT INTO emp VALUES (1000, 'ops')`)
	if err != nil || res == nil || res.Affected != 1 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestMustOpenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustOpen with bad config should panic")
		}
	}()
	MustOpen(Config{NumPEs: -1})
}
