// Quickstart: open a PRISMA database machine, create a fragmented table
// over SQL, insert rows, and query — the minimal end-to-end session.
package main

import (
	"fmt"
	"log"

	prisma "repro"
)

func main() {
	// A 16-PE machine keeps the example fast; the paper's prototype
	// uses 64 (the default).
	db, err := prisma.Open(prisma.Config{NumPEs: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	s := db.Session()
	defer s.Close()

	must := func(sql string) *prisma.Result {
		res, err := s.Exec(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return res
	}

	// The fragmentation clause is PRISMA's core idea: the table lives as
	// four one-fragment databases on four different processing elements.
	must(`CREATE TABLE emp (id INT, dept VARCHAR, salary INT, PRIMARY KEY (id))
	      FRAGMENT BY HASH(id) INTO 4 FRAGMENTS`)
	must(`INSERT INTO emp VALUES
	      (1, 'eng', 95000), (2, 'eng', 105000), (3, 'ops', 78000),
	      (4, 'ops', 82000), (5, 'hr', 67000), (6, 'eng', 99000)`)

	rel, err := s.Query(`SELECT dept, COUNT(*) AS n, AVG(salary) AS mean
	                     FROM emp GROUP BY dept ORDER BY dept`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Per-department statistics (computed fragment-parallel):")
	fmt.Print(rel)

	res := must(`SELECT * FROM emp WHERE id = 4`)
	fmt.Println("\nPoint lookup (pruned to a single fragment):")
	fmt.Print(res.Rel)
	fmt.Printf("\nsimulated 1988 response time: %v (wall: %v)\n", res.SimTime, res.WallTime)

	must(`UPDATE emp SET salary = salary + 5000 WHERE dept = 'hr'`)
	rel, err = s.Query(`SELECT salary FROM emp WHERE id = 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter the raise, employee 5 earns %s\n", rel.Tuples[0][0])
}
