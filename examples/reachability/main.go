// Reachability: PRISMAlog recursive queries over base tables — the
// knowledge-processing side of the machine (paper §2.3). A parts
// bill-of-materials and a network topology live in SQL tables; recursive
// rules derive containment and reachability.
package main

import (
	"fmt"
	"log"

	prisma "repro"
)

func main() {
	db, err := prisma.Open(prisma.Config{NumPEs: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	s := db.Session()
	defer s.Close()

	must := func(sql string) {
		if _, err := s.Exec(sql); err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
	}

	// Bill of materials: which part contains which subpart.
	must(`CREATE TABLE contains (part VARCHAR, sub VARCHAR, PRIMARY KEY (part))
	      FRAGMENT BY HASH(part) INTO 2 FRAGMENTS`)
	must(`INSERT INTO contains VALUES
	      ('car','engine'), ('car','body'),
	      ('engine','piston'), ('engine','crankshaft'),
	      ('body','door'), ('door','hinge'), ('piston','ring')`)

	// Direct links of a communications network.
	must(`CREATE TABLE link (a VARCHAR, b VARCHAR)
	      FRAGMENT BY HASH(a) INTO 2 FRAGMENTS`)
	must(`INSERT INTO link VALUES
	      ('amsterdam','utrecht'), ('utrecht','eindhoven'),
	      ('eindhoven','maastricht'), ('amsterdam','rotterdam'),
	      ('rotterdam','eindhoven')`)

	// Recursive views: rules are view definitions including recursion
	// (paper §2.3); the engine evaluates them set-at-a-time, bottom-up.
	if err := db.RegisterRules(`
		part_of(P, S) :- contains(P, S).
		part_of(P, S) :- contains(P, M), part_of(M, S).

		reaches(X, Y) :- link(X, Y).
		reaches(X, Y) :- link(X, Z), reaches(Z, Y).
	`); err != nil {
		log.Fatal(err)
	}

	rel, err := s.DatalogQuery(`part_of('car', X)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Everything a car transitively contains:")
	fmt.Print(rel)

	rel, err = s.DatalogQuery(`reaches('amsterdam', X)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCities reachable from amsterdam:")
	fmt.Print(rel)

	// A full program can mix extra rules and queries.
	answers, err := s.DatalogProgram(`
		hub(X) :- link(X, Y), link(X, Z), Y <> Z.
		?- hub(X).
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNetwork hubs (two or more outgoing links):")
	fmt.Print(answers[0])
}
