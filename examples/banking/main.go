// Banking: concurrent transfer transactions under two-phase locking and
// two-phase commit, followed by a crash and recovery from stable storage
// (paper §2.2 and §3.2). The invariant — total money is conserved — is
// checked before the crash, after recovery, and under concurrency.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"sync"

	prisma "repro"
)

const (
	accounts  = 64
	initial   = 1000
	transfers = 200
	workers   = 8
)

func main() {
	db, err := prisma.Open(prisma.Config{NumPEs: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	setup := db.Session()
	if _, err := setup.Exec(`CREATE TABLE acct (id INT, bal INT, PRIMARY KEY (id))
		FRAGMENT BY HASH(id) INTO 4 FRAGMENTS`); err != nil {
		log.Fatal(err)
	}
	var rows []string
	for i := 0; i < accounts; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d)", i, initial))
	}
	if _, err := setup.Exec(`INSERT INTO acct VALUES ` + strings.Join(rows, ", ")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d accounts with %d each; total = %d\n", accounts, initial, accounts*initial)

	// Concurrent transfers: each moves a random amount between two
	// accounts inside one transaction (BEGIN ... COMMIT). Deadlocks are
	// detected by the lock manager and surface as aborted transactions —
	// the worker simply retries.
	var wg sync.WaitGroup
	var deadlocks, committed int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			s := db.Session()
			defer s.Close()
			for i := 0; i < transfers/workers; i++ {
				from, to := r.Intn(accounts), r.Intn(accounts)
				if from == to {
					continue
				}
				amount := 1 + r.Intn(50)
				err := transfer(s, from, to, amount)
				mu.Lock()
				if err != nil {
					deadlocks++
				} else {
					committed++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("transfers committed: %d, aborted (deadlock/conflict): %d\n", committed, deadlocks)

	total := totalBalance(setup)
	fmt.Printf("total after transfers = %d (conserved: %v)\n", total, total == accounts*initial)

	// Crash every PE hosting the table; recover from the redo logs.
	fmt.Println("\ncrashing all fragments...")
	if err := db.CrashTable("acct"); err != nil {
		log.Fatal(err)
	}
	applied, err := db.RecoverTable("acct")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d redo records applied\n", applied)
	total = totalBalance(setup)
	fmt.Printf("total after recovery = %d (conserved: %v)\n", total, total == accounts*initial)
}

// transfer runs one money movement transactionally.
func transfer(s *prisma.Session, from, to, amount int) error {
	if _, err := s.Exec(`BEGIN`); err != nil {
		return err
	}
	rollback := func(err error) error {
		s.Exec(`ROLLBACK`)
		return err
	}
	if _, err := s.Exec(fmt.Sprintf(
		`UPDATE acct SET bal = bal - %d WHERE id = %d`, amount, from)); err != nil {
		return rollback(err)
	}
	if _, err := s.Exec(fmt.Sprintf(
		`UPDATE acct SET bal = bal + %d WHERE id = %d`, amount, to)); err != nil {
		return rollback(err)
	}
	if _, err := s.Exec(`COMMIT`); err != nil {
		return err
	}
	return nil
}

func totalBalance(s *prisma.Session) int64 {
	rel, err := s.Query(`SELECT SUM(bal) AS total FROM acct`)
	if err != nil {
		log.Fatal(err)
	}
	return rel.Tuples[0][0].Int()
}
