// Parallel analytics: the workload the paper's introduction motivates —
// a large relation fragmented over many processing elements, scanned,
// joined and aggregated in parallel. The example sweeps the fragment
// count and prints the simulated 1988 response time at each degree of
// parallelism (experiment E2's shape, through the public API).
package main

import (
	"fmt"
	"log"
	"math/rand"

	prisma "repro"
)

const rows = 20000

func main() {
	fmt.Printf("orders relation: %d rows; query: filtered join + group-by\n\n", rows)
	fmt.Printf("%-10s  %-14s  %-10s\n", "fragments", "sim response", "speedup")

	var base float64
	for _, frags := range []int{1, 2, 4, 8, 16, 32} {
		sim := runAt(frags)
		if base == 0 {
			base = sim
		}
		fmt.Printf("%-10d  %10.2f ms  %8.2fx\n", frags, sim, base/sim)
	}
	fmt.Println("\nresponse time falls near-linearly until coordination costs dominate —")
	fmt.Println("the coarse-grain parallelism PRISMA bets on (paper §2.2, §2.4).")
}

// runAt loads the workload at the given fragmentation degree and returns
// the simulated response time of the analytical query in milliseconds.
func runAt(frags int) float64 {
	db, err := prisma.Open(prisma.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	s := db.Session()
	defer s.Close()

	mustExec(s, fmt.Sprintf(`CREATE TABLE orders (id INT, cust INT, amount INT, region VARCHAR, PRIMARY KEY (id))
		FRAGMENT BY HASH(id) INTO %d FRAGMENTS`, frags))
	mustExec(s, `CREATE TABLE region (name VARCHAR, manager VARCHAR, PRIMARY KEY (name))`)
	mustExec(s, `INSERT INTO region VALUES ('north','ann'), ('south','bob'), ('east','carol'), ('west','dave')`)

	r := rand.New(rand.NewSource(7))
	regions := []string{"north", "south", "east", "west"}
	tuples := make([]prisma.Tuple, rows)
	for i := range tuples {
		tuples[i] = prisma.Tuple{
			prisma.NewInt(int64(i)),
			prisma.NewInt(r.Int63n(500)),
			prisma.NewInt(r.Int63n(10000)),
			prisma.NewString(regions[r.Intn(4)]),
		}
	}
	if err := db.LoadTable("orders", tuples); err != nil {
		log.Fatal(err)
	}

	query := `SELECT r.manager, COUNT(*) AS orders, SUM(o.amount) AS volume
		FROM orders o JOIN region r ON o.region = r.name
		WHERE o.amount > 5000
		GROUP BY r.manager`
	if _, err := s.Query(query); err != nil { // warm compiler caches
		log.Fatal(err)
	}
	db.Machine().ResetClocks()
	if _, err := s.Query(query); err != nil {
		log.Fatal(err)
	}
	return float64(db.Machine().MaxClock().Microseconds()) / 1000.0
}

func mustExec(s *prisma.Session, sql string) {
	if _, err := s.Exec(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
