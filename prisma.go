// Package prisma is a reproduction of the PRISMA database machine
// (Apers, Kersten, Oerlemans: "PRISMA Database Machine: A Distributed,
// Main-Memory Approach", EDBT 1988): a distributed, main-memory
// relational DBMS running on a simulated 64-node shared-nothing
// multi-computer, with SQL and PRISMAlog (Datalog) interfaces.
//
// A minimal session:
//
//	db, err := prisma.Open(prisma.Config{})
//	if err != nil { ... }
//	defer db.Close()
//	s := db.Session()
//	s.Exec(`CREATE TABLE emp (id INT, dept VARCHAR, salary INT, PRIMARY KEY (id))
//	        FRAGMENT BY HASH(id) INTO 8 FRAGMENTS`)
//	s.Exec(`INSERT INTO emp VALUES (1, 'eng', 100)`)
//	rel, err := s.Query(`SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept`)
//	fmt.Println(rel)
//
// The engine runs every One-Fragment Manager as a message-passing
// process pinned to a processing element of the simulated machine;
// statement results report both wall-clock time and the simulated
// response time under 1988 hardware parameters (64 PEs, 16 MB each,
// 4 × 10 Mbit/s links, disks on every 8th PE).
package prisma

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/fragment"
	"repro/internal/machine"
	"repro/internal/optimizer"
	"repro/internal/value"
)

// Re-exported result and data types. Relation is an in-memory table
// (String() renders it aligned); Result carries per-statement outcomes
// including the simulated 1988 response time.
type (
	// Relation is a schema-tagged set of tuples.
	Relation = value.Relation
	// Tuple is one row.
	Tuple = value.Tuple
	// Value is one typed scalar.
	Value = value.Value
	// Result is one statement's outcome.
	Result = core.Result
	// PreparedStmt is a parse-once/plan-once statement with parameter
	// slots ('?' or '$n'), executed via Session.ExecPrepared.
	PreparedStmt = core.PreparedStmt
	// Cursor drains a SELECT's result incrementally (Session.Stream):
	// batches arrive fragment-at-a-time instead of materializing the
	// whole relation at the coordinator.
	Cursor = core.Cursor
)

// Value constructors, re-exported for building tuples programmatically.
var (
	// NewInt makes an INTEGER value.
	NewInt = value.NewInt
	// NewFloat makes a FLOAT value.
	NewFloat = value.NewFloat
	// NewString makes a VARCHAR value.
	NewString = value.NewString
	// NewBool makes a BOOLEAN value.
	NewBool = value.NewBool
	// Null is the NULL value.
	Null = value.Null
)

// OptimizerOptions toggles the knowledge-based optimizer's rule groups
// (paper §2.4). The zero value disables everything; DefaultOptimizer()
// enables all rules.
type OptimizerOptions = optimizer.Options

// DefaultOptimizer enables the full rule base.
func DefaultOptimizer() OptimizerOptions { return optimizer.AllRules() }

// TCAlgorithm selects the transitive-closure evaluation strategy.
type TCAlgorithm = algebra.TCAlgorithm

// Transitive-closure strategies (experiment E5 compares them).
const (
	TCNaive     = algebra.TCNaive
	TCSemiNaive = algebra.TCSemiNaive
	TCSmart     = algebra.TCSmart
)

// Config assembles a database machine.
type Config struct {
	// NumPEs is the number of processing elements (default 64, the
	// paper's prototype size).
	NumPEs int
	// Interpreted forces interpreted expression evaluation in the OFMs
	// instead of the paper's compiled routines (experiment E4 baseline).
	Interpreted bool
	// Optimizer overrides the rule groups (nil = all rules).
	Optimizer *OptimizerOptions
	// NaiveDatalog forces naive fixpoint iteration for PRISMAlog
	// (default semi-naive).
	NaiveDatalog bool
	// RandomPlacement scatters fragments randomly instead of using the
	// central least-loaded allocation manager (experiment E10 baseline).
	RandomPlacement bool
	// MVCC controls snapshot-isolation reads (nil/true = MVCC: SELECTs
	// pin a snapshot and take no locks, writers keep exclusive locks
	// plus first-committer-wins; false = the all-2PL baseline where
	// reads take shared locks — experiment E16's comparison mode).
	MVCC *bool
	// Vectorized controls columnar batch execution (nil/true = eligible
	// read plans run over fragment column caches with selection vectors;
	// false forces tuple-at-a-time execution — experiment E20's baseline).
	Vectorized *bool
}

// DB is a PRISMA database machine instance.
type DB struct {
	eng *core.Engine
}

// Open builds a database machine.
func Open(cfg Config) (*DB, error) {
	compiled := !cfg.Interpreted
	semiNaive := !cfg.NaiveDatalog
	ccfg := core.Config{
		NumPEs:     cfg.NumPEs,
		Compiled:   &compiled,
		Optimizer:  cfg.Optimizer,
		SemiNaive:  &semiNaive,
		MVCC:       cfg.MVCC,
		Vectorized: cfg.Vectorized,
	}
	if cfg.RandomPlacement {
		ccfg.Allocator = fragment.RandomAllocator{Seed: 42}
	}
	eng, err := core.New(ccfg)
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng}, nil
}

// Close shuts the machine down (stops every OFM process).
func (db *DB) Close() { db.eng.Close() }

// Session opens a client session with its own coordinator PE.
func (db *DB) Session() *Session {
	return &Session{db: db, s: db.eng.NewSession()}
}

// Engine exposes the underlying engine for advanced use (experiments).
func (db *DB) Engine() *core.Engine { return db.eng }

// Machine exposes the simulated multi-computer (clocks, PEs, network).
func (db *DB) Machine() *machine.Machine { return db.eng.Machine() }

// RegisterRules adds PRISMAlog rules (views, possibly recursive) to the
// engine's rule base, e.g.:
//
//	db.RegisterRules(`
//	    ancestor(X, Y) :- parent(X, Y).
//	    ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
//	`)
func (db *DB) RegisterRules(src string) error { return db.eng.RegisterRules(src) }

// ClearRules empties the PRISMAlog rule base.
func (db *DB) ClearRules() { db.eng.ClearRules() }

// LoadTable bulk-loads tuples outside transaction control (setup data).
func (db *DB) LoadTable(name string, tuples []Tuple) error {
	return db.eng.LoadTable(name, tuples)
}

// CrashTable simulates the failure of every PE hosting the table:
// main-memory state is lost, stable storage survives.
func (db *DB) CrashTable(name string) error { return db.eng.CrashTable(name) }

// RecoverTable rebuilds the table from its checkpoint and redo log.
func (db *DB) RecoverTable(name string) (int, error) { return db.eng.RecoverTable(name) }

// CheckpointTable folds the table's state into its checkpoint, emptying
// the log.
func (db *DB) CheckpointTable(name string) error { return db.eng.CheckpointTable(name) }

// Session is one client connection. Sessions are not safe for
// concurrent use; open one per goroutine (they are cheap — the paper's
// design creates per-query component instances).
type Session struct {
	db *DB
	s  *core.Session
}

// Exec parses and executes one SQL statement.
func (s *Session) Exec(sql string) (*Result, error) { return s.s.Exec(sql) }

// Query executes a SELECT and returns its relation.
func (s *Session) Query(sql string) (*Relation, error) { return s.s.Query(sql) }

// Stream executes one statement with cursor-based result delivery: a
// SELECT returns a Cursor yielding batches as fragments produce them
// (time-to-first-tuple instead of time-to-last-tuple); anything else
// returns a materialized Result, exactly as Exec would. Exhausting or
// closing the cursor settles an autocommit transaction; inside an
// explicit transaction locks are held until COMMIT/ROLLBACK.
func (s *Session) Stream(sql string) (*Cursor, *Result, error) { return s.s.Stream(sql) }

// Prepare parses and plans a statement with '?' or '$n' placeholders
// once; ExecPrepared runs it with bound values, skipping the
// per-statement parse and optimize cost.
func (s *Session) Prepare(sql string) (*PreparedStmt, error) { return s.s.Prepare(sql) }

// ExecPrepared executes a prepared statement with one value per slot.
func (s *Session) ExecPrepared(ps *PreparedStmt, args ...Value) (*Result, error) {
	return s.s.ExecPrepared(ps, args)
}

// QueryPrepared executes a prepared SELECT and returns its relation.
func (s *Session) QueryPrepared(ps *PreparedStmt, args ...Value) (*Relation, error) {
	return s.s.QueryPrepared(ps, args)
}

// DatalogQuery answers a PRISMAlog query such as "ancestor('ann', X)"
// against the registered rules and the database's tables.
func (s *Session) DatalogQuery(query string) (*Relation, error) {
	return s.db.eng.DatalogQuery(s.s, query)
}

// DatalogProgram runs a full PRISMAlog program (facts, rules, queries)
// and returns the answer relation of each query in order.
func (s *Session) DatalogProgram(src string) ([]*Relation, error) {
	return s.db.eng.DatalogProgram(s.s, src)
}

// Close aborts any open transaction.
func (s *Session) Close() { s.s.Close() }

// MustOpen is Open that panics on error; for examples and tests.
func MustOpen(cfg Config) *DB {
	db, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("prisma: %v", err))
	}
	return db
}
