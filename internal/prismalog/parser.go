package prismalog

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/value"
)

// Parse parses a PRISMAlog program: facts, rules and queries.
//
//	parent('ann', 'bob').
//	ancestor(X, Y) :- parent(X, Y).
//	ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
//	?- ancestor('ann', X).
//
// Identifiers starting with an upper-case letter or '_' are variables;
// lower-case identifiers are string constants (Prolog atoms); numbers
// and quoted strings are constants. '%' starts a line comment.
func Parse(src string) (*Program, error) {
	toks, err := plex(src)
	if err != nil {
		return nil, err
	}
	p := &plparser{toks: toks}
	prog := &Program{}
	for !p.at(ptEOF, "") {
		if p.accept(ptOp, "?-") {
			body, err := p.parseBody()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(ptOp, "."); err != nil {
				return nil, err
			}
			prog.Queries = append(prog.Queries, Query{Body: body})
			continue
		}
		head, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		rule := Rule{Head: *head}
		if p.accept(ptOp, ":-") {
			body, err := p.parseBody()
			if err != nil {
				return nil, err
			}
			rule.Body = body
		}
		if _, err := p.expect(ptOp, "."); err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, rule)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseQuery parses a single query, with or without the "?-" prefix.
func ParseQuery(src string) (*Query, error) {
	s := strings.TrimSpace(src)
	if !strings.HasPrefix(s, "?-") {
		s = "?- " + s
	}
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	prog, err := Parse(s)
	if err != nil {
		return nil, err
	}
	if len(prog.Queries) != 1 || len(prog.Rules) != 0 {
		return nil, fmt.Errorf("prismalog: expected exactly one query")
	}
	return &prog.Queries[0], nil
}

// ---------- lexer ----------

type ptKind uint8

const (
	ptEOF ptKind = iota
	ptLower
	ptUpper
	ptInt
	ptFloat
	ptString
	ptOp
)

type ptoken struct {
	kind ptKind
	text string
	pos  int
}

func plex(src string) ([]ptoken, error) {
	var toks []ptoken
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '%':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c >= '0' && c <= '9':
			start := i
			kind := ptInt
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			if i+1 < len(src) && src[i] == '.' && src[i+1] >= '0' && src[i+1] <= '9' {
				kind = ptFloat
				i++
				for i < len(src) && src[i] >= '0' && src[i] <= '9' {
					i++
				}
			}
			toks = append(toks, ptoken{kind: kind, text: src[start:i], pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("prismalog: unterminated string at offset %d", start)
			}
			toks = append(toks, ptoken{kind: ptString, text: sb.String(), pos: start})
		case isLetter(c) || c == '_':
			start := i
			for i < len(src) && (isLetter(src[i]) || src[i] == '_' || (src[i] >= '0' && src[i] <= '9')) {
				i++
			}
			word := src[start:i]
			if word[0] == '_' || (word[0] >= 'A' && word[0] <= 'Z') {
				toks = append(toks, ptoken{kind: ptUpper, text: word, pos: start})
			} else {
				toks = append(toks, ptoken{kind: ptLower, text: word, pos: start})
			}
		default:
			start := i
			for _, op := range []string{"?-", ":-", "<>", "!=", "<=", ">=", "=<"} {
				if strings.HasPrefix(src[i:], op) {
					text := op
					if text == "!=" {
						text = "<>"
					}
					if text == "=<" {
						text = "<="
					}
					toks = append(toks, ptoken{kind: ptOp, text: text, pos: start})
					i += len(op)
					goto next
				}
			}
			switch c {
			case '(', ')', ',', '.', '=', '<', '>':
				toks = append(toks, ptoken{kind: ptOp, text: string(c), pos: start})
				i++
			default:
				return nil, fmt.Errorf("prismalog: unexpected character %q at offset %d", c, i)
			}
		next:
		}
	}
	toks = append(toks, ptoken{kind: ptEOF, pos: i})
	return toks, nil
}

func isLetter(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// ---------- parser ----------

type plparser struct {
	toks []ptoken
	pos  int
}

func (p *plparser) cur() ptoken  { return p.toks[p.pos] }
func (p *plparser) next() ptoken { t := p.toks[p.pos]; p.pos++; return t }

func (p *plparser) at(kind ptKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *plparser) accept(kind ptKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *plparser) expect(kind ptKind, text string) (ptoken, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return ptoken{}, fmt.Errorf("prismalog: offset %d: expected %q, found %q", p.cur().pos, text, p.cur().text)
}

func (p *plparser) parseBody() ([]Literal, error) {
	var body []Literal
	for {
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		body = append(body, lit)
		if !p.accept(ptOp, ",") {
			break
		}
	}
	return body, nil
}

var plCmpOps = map[string]expr.CmpOp{
	"=": expr.EQ, "<>": expr.NE, "<": expr.LT, "<=": expr.LE, ">": expr.GT, ">=": expr.GE,
}

func (p *plparser) parseLiteral() (Literal, error) {
	// An atom starts with lower-ident followed by '('; otherwise it is a
	// comparison between terms.
	if p.cur().kind == ptLower && p.pos+1 < len(p.toks) &&
		p.toks[p.pos+1].kind == ptOp && p.toks[p.pos+1].text == "(" {
		a, err := p.parseAtom()
		if err != nil {
			return Literal{}, err
		}
		return Literal{Atom: a}, nil
	}
	l, err := p.parseTerm()
	if err != nil {
		return Literal{}, err
	}
	opTok := p.cur()
	op, ok := plCmpOps[opTok.text]
	if opTok.kind != ptOp || !ok {
		return Literal{}, fmt.Errorf("prismalog: offset %d: expected a comparison operator, found %q", opTok.pos, opTok.text)
	}
	p.next()
	r, err := p.parseTerm()
	if err != nil {
		return Literal{}, err
	}
	return Literal{Cmp: &CmpLit{Op: op, L: l, R: r}}, nil
}

func (p *plparser) parseAtom() (*Atom, error) {
	nameTok, err := p.expect(ptLower, "")
	if err != nil {
		return nil, fmt.Errorf("prismalog: offset %d: expected a predicate name, found %q", p.cur().pos, p.cur().text)
	}
	if _, err := p.expect(ptOp, "("); err != nil {
		return nil, err
	}
	a := &Atom{Pred: nameTok.text}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		a.Args = append(a.Args, t)
		if !p.accept(ptOp, ",") {
			break
		}
	}
	if _, err := p.expect(ptOp, ")"); err != nil {
		return nil, err
	}
	return a, nil
}

func (p *plparser) parseTerm() (Term, error) {
	t := p.cur()
	switch t.kind {
	case ptUpper:
		p.next()
		return V(t.text), nil
	case ptLower:
		p.next()
		return C(value.NewString(t.text)), nil
	case ptString:
		p.next()
		return C(value.NewString(t.text)), nil
	case ptInt:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Term{}, fmt.Errorf("prismalog: bad integer %q", t.text)
		}
		return C(value.NewInt(n)), nil
	case ptFloat:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Term{}, fmt.Errorf("prismalog: bad float %q", t.text)
		}
		return C(value.NewFloat(f)), nil
	}
	return Term{}, fmt.Errorf("prismalog: offset %d: expected a term, found %q", t.pos, t.text)
}
