package prismalog

import (
	"strings"
	"testing"

	"repro/internal/value"
)

const familyProgram = `
% the classic family database
parent(ann, bob).
parent(ann, carol).
parent(bob, dave).
parent(carol, eve).
parent(dave, fred).

ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
`

func TestParseProgram(t *testing.T) {
	prog, err := Parse(familyProgram)
	if err != nil {
		t.Fatal(err)
	}
	facts := 0
	rules := 0
	for _, r := range prog.Rules {
		if r.IsFact() {
			facts++
		} else {
			rules++
		}
	}
	if facts != 5 || rules != 2 {
		t.Errorf("facts=%d rules=%d", facts, rules)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`parent(ann bob).`,     // missing comma
		`parent(ann, bob)`,     // missing period
		`ancestor(X, Y) :- .`,  // empty body
		`p(X).`,                // variable in fact
		`q(X) :- r(Y).`,        // unsafe head var
		`q(X) :- p(X), Y > 3.`, // unsafe comparison var
		`?- `,                  // empty query
		`p('unterminated).`,    // bad string
		`p(&).`,                // bad char
		`p(x) :- q(x), > 3.`,   // comparison missing lhs
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestRuleStringRoundTrip(t *testing.T) {
	prog, err := Parse(`ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y), X <> Y.`)
	if err != nil {
		t.Fatal(err)
	}
	s := prog.Rules[0].String()
	for _, frag := range []string{"ancestor(X, Y)", ":-", "parent(X, Z)", "X <> Y"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func evalFamily(t *testing.T, semiNaive bool) map[string]*value.Relation {
	t.Helper()
	prog, err := Parse(familyProgram)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Eval(prog, MapEDB{}, Options{SemiNaive: semiNaive})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAncestorFixpoint(t *testing.T) {
	for _, semi := range []bool{true, false} {
		out := evalFamily(t, semi)
		anc := out["ancestor/2"]
		if anc == nil {
			t.Fatal("no ancestor relation")
		}
		// parent pairs (5) + grandparents (ann-dave, ann-eve, bob-fred) +
		// great-grandparents (ann-fred) = 9.
		if anc.Len() != 9 {
			t.Errorf("semiNaive=%v: ancestor = %d pairs, want 9", semi, anc.Len())
		}
		found := false
		for _, tp := range anc.Tuples {
			if tp[0].Str() == "ann" && tp[1].Str() == "fred" {
				found = true
			}
		}
		if !found {
			t.Errorf("semiNaive=%v: (ann, fred) missing", semi)
		}
	}
}

func TestSemiNaiveDoesLessWork(t *testing.T) {
	// Long chain: naive rederives everything each round.
	var sb strings.Builder
	sb.WriteString("tc(X, Y) :- edge(X, Y).\n")
	sb.WriteString("tc(X, Y) :- edge(X, Z), tc(Z, Y).\n")
	edges := value.NewRelation(genericSchema(2, nil))
	for i := int64(0); i < 30; i++ {
		edges.Append(value.Ints(i, i+1))
	}
	prog, err := Parse(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	edb := MapEDB{"edge": edges}
	_, naiveStats, err := Eval(prog, edb, Options{SemiNaive: false})
	if err != nil {
		t.Fatal(err)
	}
	_, semiStats, err := Eval(prog, edb, Options{SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	if semiStats.TuplesDerived >= naiveStats.TuplesDerived {
		t.Errorf("semi-naive derived %d tuples, naive %d; expected strictly less",
			semiStats.TuplesDerived, naiveStats.TuplesDerived)
	}
}

func TestEDBIntegration(t *testing.T) {
	// ancestor over an EDB relation instead of program facts.
	edges := value.NewRelation(genericSchema(2, nil))
	edges.Append(
		value.NewTuple(value.NewString("a"), value.NewString("b")),
		value.NewTuple(value.NewString("b"), value.NewString("c")),
	)
	prog, err := Parse(`anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Eval(prog, MapEDB{"par": edges}, Options{SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	if out["anc/2"].Len() != 3 {
		t.Errorf("anc = %v", out["anc/2"].Tuples)
	}
	// Unknown predicate errors.
	prog2, err := Parse(`q(X) :- nosuch(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Eval(prog2, MapEDB{}, Options{}); err == nil {
		t.Error("unknown EDB predicate should error")
	}
	// Arity mismatch errors.
	prog3, err := Parse(`q(X) :- par(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Eval(prog3, MapEDB{"par": edges}, Options{}); err == nil {
		t.Error("arity mismatch should error")
	}
}

func TestQueryEvaluation(t *testing.T) {
	prog, err := Parse(familyProgram)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`ancestor(ann, X)`)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := EvalQuery(prog, q, MapEDB{}, Options{SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	// ann's descendants: bob, carol, dave, eve, fred.
	if out.Len() != 5 {
		t.Errorf("descendants of ann = %v", out.Tuples)
	}
	if out.Schema.Column(0).Name != "X" {
		t.Errorf("answer schema = %v", out.Schema)
	}
	// Ground query: true → one empty-ish tuple (single var bound).
	q2, err := ParseQuery(`?- ancestor(ann, fred).`)
	if err != nil {
		t.Fatal(err)
	}
	out2, _, err := EvalQuery(prog, q2, MapEDB{}, Options{SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	if out2.Len() != 1 {
		t.Errorf("ground query answers = %d, want 1", out2.Len())
	}
	// False ground query: empty.
	q3, err := ParseQuery(`ancestor(fred, ann)`)
	if err != nil {
		t.Fatal(err)
	}
	out3, _, err := EvalQuery(prog, q3, MapEDB{}, Options{SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	if out3.Len() != 0 {
		t.Errorf("false query answers = %v", out3.Tuples)
	}
}

func TestComparisonLiterals(t *testing.T) {
	prog, err := Parse(`
		num(1). num(2). num(3). num(4).
		big(X) :- num(X), X > 2.
		pairs(X, Y) :- num(X), num(Y), X < Y.
	`)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Eval(prog, MapEDB{}, Options{SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	if out["big/1"].Len() != 2 {
		t.Errorf("big = %v", out["big/1"].Tuples)
	}
	if out["pairs/2"].Len() != 6 {
		t.Errorf("pairs = %v", out["pairs/2"].Tuples)
	}
}

func TestRepeatedVariables(t *testing.T) {
	prog, err := Parse(`
		e(1, 1). e(1, 2). e(2, 2).
		loop(X) :- e(X, X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Eval(prog, MapEDB{}, Options{SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	if out["loop/1"].Len() != 2 {
		t.Errorf("loop = %v", out["loop/1"].Tuples)
	}
}

func TestNonLinearRecursion(t *testing.T) {
	// Same-generation: a classically non-linear recursive program.
	prog, err := Parse(`
		parent(a, b). parent(a, c). parent(b, d). parent(c, e).
		sg(X, X) :- parent(X, Y).
		sg(X, Y) :- parent(XP, X), sg(XP, YP), parent(YP, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	for _, semi := range []bool{true, false} {
		out, _, err := Eval(prog, MapEDB{}, Options{SemiNaive: semi})
		if err != nil {
			t.Fatal(err)
		}
		sg := out["sg/2"]
		// (b,c) are same generation (both children of a); (d,e) too.
		if !containsPair(sg, "b", "c") {
			t.Errorf("semiNaive=%v: (b,c) missing from %v", semi, sg.Tuples)
		}
		if !containsPair(sg, "d", "e") {
			t.Errorf("semiNaive=%v: (d,e) missing from %v", semi, sg.Tuples)
		}
	}
}

func containsPair(r *value.Relation, a, b string) bool {
	for _, t := range r.Tuples {
		if t[0].Str() == a && t[1].Str() == b {
			return true
		}
	}
	return false
}

func TestMutualRecursion(t *testing.T) {
	prog, err := Parse(`
		e(0, 1). e(1, 2). e(2, 3). e(3, 4).
		even(0).
		even(Y) :- odd(X), e(X, Y).
		odd(Y) :- even(X), e(X, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Eval(prog, MapEDB{}, Options{SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	if out["even/1"].Len() != 3 { // 0, 2, 4
		t.Errorf("even = %v", out["even/1"].Tuples)
	}
	if out["odd/1"].Len() != 2 { // 1, 3
		t.Errorf("odd = %v", out["odd/1"].Tuples)
	}
}

func TestNaiveAndSemiNaiveAgree(t *testing.T) {
	programs := []string{
		familyProgram,
		`e(1,2). e(2,3). e(3,1). tc(X,Y) :- e(X,Y). tc(X,Y) :- tc(X,Z), tc(Z,Y).`,
		`p(1). p(2). q(X,Y) :- p(X), p(Y).`,
	}
	for _, src := range programs {
		prog, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		a, _, err := Eval(prog, MapEDB{}, Options{SemiNaive: false})
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := Eval(prog, MapEDB{}, Options{SemiNaive: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("different predicate sets: %d vs %d", len(a), len(b))
		}
		for k, ra := range a {
			if rb := b[k]; rb == nil || !ra.SameSet(rb) {
				t.Errorf("program %q: %s differs between naive and semi-naive", src, k)
			}
		}
	}
}

func TestQueryWithComparison(t *testing.T) {
	prog, err := Parse(familyProgram)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`ancestor(X, Y), X <> ann`)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := EvalQuery(prog, q, MapEDB{}, Options{SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range out.Tuples {
		if tp[0].Str() == "ann" {
			t.Errorf("comparison filter failed: %v", tp)
		}
	}
	if out.Len() != 4 { // bob-dave, bob-fred, carol-eve, dave-fred
		t.Errorf("filtered ancestors = %v", out.Tuples)
	}
}

func TestNumericAndQuotedConstants(t *testing.T) {
	prog, err := Parse(`
		m(1, 2.5, 'hello world').
		pick(X, Y, Z) :- m(X, Y, Z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Eval(prog, MapEDB{}, Options{SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	row := out["pick/3"].Tuples[0]
	if row[0].Int() != 1 || row[1].Float() != 2.5 || row[2].Str() != "hello world" {
		t.Errorf("row = %v", row)
	}
}

func TestTermAndQueryString(t *testing.T) {
	q, err := ParseQuery(`ancestor(ann, X), X <> bob`)
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	if !strings.Contains(s, "?-") || !strings.Contains(s, "ancestor('ann', X)") {
		t.Errorf("query string = %q", s)
	}
	if got := q.Vars(); len(got) != 1 || got[0] != "X" {
		t.Errorf("query vars = %v", got)
	}
}
