// Package prismalog implements PRISMAlog, the logic programming language
// of the PRISMA DBMS (paper §2.3): "based on definite, function-free
// Horn clauses", Prolog-like syntax, but *set-oriented* — "one of the
// main differences between pure Prolog and PRISMAlog is that the latter
// is set-oriented, which makes it more suitable for parallel
// evaluation". Its semantics is given by extended relational algebra:
// facts are tuples, rules are view definitions including recursion.
//
// Programs are evaluated bottom-up against extensional relations
// resolved from the database (base tables double as EDB predicates),
// with naive or semi-naive fixpoint iteration.
package prismalog

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/value"
)

// Term is a constant or a variable.
type Term struct {
	IsVar bool
	Var   string      // variable name (IsVar)
	Val   value.Value // constant (otherwise)
}

// V makes a variable term.
func V(name string) Term { return Term{IsVar: true, Var: name} }

// C makes a constant term.
func C(v value.Value) Term { return Term{Val: v} }

func (t Term) String() string {
	if t.IsVar {
		return t.Var
	}
	return t.Val.Quoted()
}

// Atom is a predicate applied to terms: parent(X, 'ann').
type Atom struct {
	Pred string
	Args []Term
}

func (a *Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.Pred, strings.Join(parts, ", "))
}

// Vars returns the distinct variable names in order of appearance.
func (a *Atom) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range a.Args {
		if t.IsVar && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

// CmpLit is a built-in comparison literal: X > 5, X <> Y.
type CmpLit struct {
	Op   expr.CmpOp
	L, R Term
}

func (c *CmpLit) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// Literal is one body element: a relational atom or a comparison.
type Literal struct {
	Atom *Atom
	Cmp  *CmpLit
}

func (l Literal) String() string {
	if l.Atom != nil {
		return l.Atom.String()
	}
	return l.Cmp.String()
}

// Rule is a definite Horn clause: Head :- Body. An empty body makes it a
// fact (the head must then be ground).
type Rule struct {
	Head Atom
	Body []Literal
}

// IsFact reports whether the rule is a ground fact.
func (r *Rule) IsFact() bool { return len(r.Body) == 0 }

func (r *Rule) String() string {
	if r.IsFact() {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return fmt.Sprintf("%s :- %s.", r.Head.String(), strings.Join(parts, ", "))
}

// Query is a goal list: ?- ancestor('ann', X), X <> 'bob'.
type Query struct {
	Body []Literal
}

func (q *Query) String() string {
	parts := make([]string, len(q.Body))
	for i, l := range q.Body {
		parts[i] = l.String()
	}
	return "?- " + strings.Join(parts, ", ") + "."
}

// Vars returns the distinct variables of the query in appearance order —
// the output columns of its answer relation.
func (q *Query) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, l := range q.Body {
		if l.Atom == nil {
			continue
		}
		for _, t := range l.Atom.Args {
			if t.IsVar && !seen[t.Var] {
				seen[t.Var] = true
				out = append(out, t.Var)
			}
		}
	}
	return out
}

// Program is a set of facts and rules plus optional queries.
type Program struct {
	Rules   []Rule
	Queries []Query
}

// predKey identifies a predicate by name and arity.
type predKey struct {
	name  string
	arity int
}

func (k predKey) String() string { return fmt.Sprintf("%s/%d", k.name, k.arity) }

// Validate performs the safety checks of definite function-free Horn
// clauses: every head variable must occur in a positive body atom, and
// comparison literals may only use bound variables.
func (p *Program) Validate() error {
	for i := range p.Rules {
		if err := checkRule(&p.Rules[i]); err != nil {
			return err
		}
	}
	for i := range p.Queries {
		if err := checkBody(p.Queries[i].Body, nil, p.Queries[i].String()); err != nil {
			return err
		}
	}
	return nil
}

func checkRule(r *Rule) error {
	if r.IsFact() {
		for _, t := range r.Head.Args {
			if t.IsVar {
				return fmt.Errorf("prismalog: fact %s has variable %s", r.Head.String(), t.Var)
			}
		}
		return nil
	}
	return checkBody(r.Body, r.Head.Vars(), r.String())
}

func checkBody(body []Literal, headVars []string, clause string) error {
	if len(body) == 0 {
		return fmt.Errorf("prismalog: empty body in %s", clause)
	}
	bound := map[string]bool{}
	for _, l := range body {
		if l.Atom != nil {
			for _, v := range l.Atom.Vars() {
				bound[v] = true
			}
		}
	}
	for _, v := range headVars {
		if !bound[v] {
			return fmt.Errorf("prismalog: unsafe rule %s: head variable %s not bound by a body atom", clause, v)
		}
	}
	for _, l := range body {
		if l.Cmp == nil {
			continue
		}
		for _, t := range []Term{l.Cmp.L, l.Cmp.R} {
			if t.IsVar && !bound[t.Var] {
				return fmt.Errorf("prismalog: unsafe comparison in %s: variable %s not bound by a body atom", clause, t.Var)
			}
		}
	}
	return nil
}
