package prismalog

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/value"
)

// EDB resolves extensional predicates — in the PRISMA DBMS, base tables:
// "facts correspond to tuples in relations in the database" (§2.3).
type EDB interface {
	// Relation returns the extension of pred, or false if unknown.
	Relation(pred string) (*value.Relation, bool)
}

// MapEDB is an in-memory EDB for tests and standalone programs.
type MapEDB map[string]*value.Relation

// Relation implements EDB.
func (m MapEDB) Relation(pred string) (*value.Relation, bool) {
	r, ok := m[pred]
	return r, ok
}

// Options tunes the fixpoint evaluation.
type Options struct {
	// SemiNaive enables delta iteration (the default PRISMA strategy);
	// false forces naive re-evaluation, the E5 baseline.
	SemiNaive bool
	// MaxIterations guards against bugs; 0 means 1 << 20.
	MaxIterations int
}

// Stats reports evaluation effort.
type Stats struct {
	Iterations    int
	TuplesDerived int // candidate head tuples produced across all rounds
}

// genericSchema builds an n-column schema with the given names (or c0..).
func genericSchema(n int, names []string) *value.Schema {
	cols := make([]value.Column, n)
	for i := range cols {
		name := fmt.Sprintf("c%d", i)
		if names != nil && i < len(names) {
			name = names[i]
		}
		cols[i] = value.Column{Name: name, Kind: value.KindString}
	}
	return value.NewSchema(cols...)
}

// relSet tracks a predicate's total extension with O(1) membership.
type relSet struct {
	arity  int
	seen   map[string]struct{}
	tuples []value.Tuple
	delta  []value.Tuple
}

func newRelSet(arity int) *relSet {
	return &relSet{arity: arity, seen: map[string]struct{}{}}
}

func (rs *relSet) add(t value.Tuple) bool {
	k := t.Key()
	if _, dup := rs.seen[k]; dup {
		return false
	}
	rs.seen[k] = struct{}{}
	rs.tuples = append(rs.tuples, t)
	rs.delta = append(rs.delta, t)
	return true
}

// Eval computes the extensions of all intensional predicates of prog
// bottom-up over edb and returns them keyed "pred/arity".
func Eval(prog *Program, edb EDB, opts Options) (map[string]*value.Relation, Stats, error) {
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 1 << 20
	}
	if err := prog.Validate(); err != nil {
		return nil, Stats{}, err
	}

	// Classify predicates: IDB = appears in a rule head.
	idb := map[predKey]*relSet{}
	for i := range prog.Rules {
		r := &prog.Rules[i]
		k := predKey{r.Head.Pred, len(r.Head.Args)}
		if idb[k] == nil {
			idb[k] = newRelSet(k.arity)
		}
	}
	// Seed facts.
	stats := Stats{}
	for i := range prog.Rules {
		r := &prog.Rules[i]
		if !r.IsFact() {
			continue
		}
		k := predKey{r.Head.Pred, len(r.Head.Args)}
		t := make(value.Tuple, len(r.Head.Args))
		for j, a := range r.Head.Args {
			t[j] = a.Val
		}
		idb[k].add(t)
		stats.TuplesDerived++
	}
	// Check EDB availability for body atoms that are not IDB.
	for i := range prog.Rules {
		for _, l := range prog.Rules[i].Body {
			if l.Atom == nil {
				continue
			}
			k := predKey{l.Atom.Pred, len(l.Atom.Args)}
			if _, isIDB := idb[k]; isIDB {
				continue
			}
			rel, ok := edb.Relation(l.Atom.Pred)
			if !ok {
				return nil, stats, fmt.Errorf("prismalog: unknown predicate %s", k)
			}
			if rel.Schema.Len() != k.arity {
				return nil, stats, fmt.Errorf("prismalog: predicate %s used with arity %d but relation has %d columns",
					l.Atom.Pred, k.arity, rel.Schema.Len())
			}
		}
	}

	rules := make([]*Rule, 0, len(prog.Rules))
	for i := range prog.Rules {
		if !prog.Rules[i].IsFact() {
			rules = append(rules, &prog.Rules[i])
		}
	}

	// Fixpoint.
	for iter := 0; ; iter++ {
		if iter >= opts.MaxIterations {
			return nil, stats, fmt.Errorf("prismalog: fixpoint did not converge within %d iterations", opts.MaxIterations)
		}
		stats.Iterations++
		// Swap deltas: the tuples derived in the previous round.
		prevDelta := map[predKey][]value.Tuple{}
		for k, rs := range idb {
			prevDelta[k] = rs.delta
			rs.delta = nil
		}
		grew := false
		for _, r := range rules {
			variants := 1
			if opts.SemiNaive && iter > 0 {
				// One variant per IDB body atom, with that atom restricted
				// to the previous delta.
				variants = 0
				for _, l := range r.Body {
					if l.Atom != nil {
						if _, isIDB := idb[predKey{l.Atom.Pred, len(l.Atom.Args)}]; isIDB {
							variants++
						}
					}
				}
				if variants == 0 {
					continue // EDB-only rule saturates in round 0
				}
			}
			for v := 0; v < variants; v++ {
				deltaAt := -1
				if opts.SemiNaive && iter > 0 {
					// Find the v-th IDB atom.
					seen := 0
					for li, l := range r.Body {
						if l.Atom == nil {
							continue
						}
						if _, isIDB := idb[predKey{l.Atom.Pred, len(l.Atom.Args)}]; isIDB {
							if seen == v {
								deltaAt = li
								break
							}
							seen++
						}
					}
				}
				derived, err := evalRule(r, edb, idb, prevDelta, deltaAt)
				if err != nil {
					return nil, stats, err
				}
				stats.TuplesDerived += len(derived)
				k := predKey{r.Head.Pred, len(r.Head.Args)}
				for _, t := range derived {
					if idb[k].add(t) {
						grew = true
					}
				}
			}
		}
		if !grew {
			break
		}
		if iter == 0 && !opts.SemiNaive {
			continue
		}
	}

	out := map[string]*value.Relation{}
	for k, rs := range idb {
		rel := value.NewRelation(genericSchema(k.arity, nil))
		rel.Tuples = rs.tuples
		out[k.String()] = rel
	}
	return out, stats, nil
}

// bindings is an intermediate result: named variable columns over rows.
type bindings struct {
	vars []string
	rows []value.Tuple
}

func (b *bindings) varIndex(name string) int {
	for i, v := range b.vars {
		if v == name {
			return i
		}
	}
	return -1
}

// evalRule evaluates one rule body left-to-right, joining literals into
// the running bindings, and returns the derived head tuples. deltaAt
// (when ≥0) restricts that body literal to the previous round's delta.
func evalRule(r *Rule, edb EDB, idb map[predKey]*relSet, prevDelta map[predKey][]value.Tuple, deltaAt int) ([]value.Tuple, error) {
	b := &bindings{rows: []value.Tuple{{}}}
	for li, l := range r.Body {
		if l.Cmp != nil {
			if err := applyCmp(b, l.Cmp); err != nil {
				return nil, fmt.Errorf("prismalog: rule %s: %w", r.String(), err)
			}
			continue
		}
		tuples, err := atomTuples(l.Atom, edb, idb, prevDelta, li == deltaAt)
		if err != nil {
			return nil, fmt.Errorf("prismalog: rule %s: %w", r.String(), err)
		}
		joinAtom(b, l.Atom, tuples)
		if len(b.rows) == 0 {
			return nil, nil
		}
	}
	// Project the head.
	out := make([]value.Tuple, 0, len(b.rows))
	for _, row := range b.rows {
		t := make(value.Tuple, len(r.Head.Args))
		for i, a := range r.Head.Args {
			if a.IsVar {
				t[i] = row[b.varIndex(a.Var)]
			} else {
				t[i] = a.Val
			}
		}
		out = append(out, t)
	}
	return out, nil
}

// atomTuples fetches the current extension of an atom's predicate.
func atomTuples(a *Atom, edb EDB, idb map[predKey]*relSet, prevDelta map[predKey][]value.Tuple, useDelta bool) ([]value.Tuple, error) {
	k := predKey{a.Pred, len(a.Args)}
	if rs, isIDB := idb[k]; isIDB {
		if useDelta {
			return prevDelta[k], nil
		}
		return rs.tuples, nil
	}
	rel, ok := edb.Relation(a.Pred)
	if !ok {
		return nil, fmt.Errorf("unknown predicate %s", k)
	}
	return rel.Tuples, nil
}

// joinAtom joins the bindings with an atom's tuples: constants filter,
// repeated variables must agree, shared variables hash-join, and new
// variables extend the binding schema.
func joinAtom(b *bindings, a *Atom, tuples []value.Tuple) {
	// Classify argument positions.
	type varPos struct {
		arg  int
		bcol int // column in existing bindings, or -1 if new
	}
	var shared, fresh []varPos
	firstPos := map[string]int{} // var -> first arg position within the atom
	newVars := []string{}
	for i, t := range a.Args {
		if !t.IsVar {
			continue
		}
		if fp, dup := firstPos[t.Var]; dup {
			// Repeated var within the atom: equality filter vs firstPos.
			shared = append(shared, varPos{arg: i, bcol: -1000 - fp})
			continue
		}
		firstPos[t.Var] = i
		if bc := b.varIndex(t.Var); bc >= 0 {
			shared = append(shared, varPos{arg: i, bcol: bc})
		} else {
			fresh = append(fresh, varPos{arg: i, bcol: len(b.vars) + len(newVars)})
			newVars = append(newVars, t.Var)
		}
	}

	// Pre-filter the atom tuples on constants and intra-atom repeats.
	matches := tuples[:0:0]
	for _, t := range tuples {
		ok := true
		for i, arg := range a.Args {
			if !arg.IsVar {
				if !value.Equal(t[i], arg.Val) {
					ok = false
					break
				}
			}
		}
		if ok {
			for _, sp := range shared {
				if sp.bcol <= -1000 {
					fp := -1000 - sp.bcol
					if !value.Equal(t[sp.arg], t[fp]) {
						ok = false
						break
					}
				}
			}
		}
		if ok {
			matches = append(matches, t)
		}
	}

	// Hash join on the truly shared variables.
	var joinArgs []int // atom arg positions
	var joinCols []int // binding columns
	for _, sp := range shared {
		if sp.bcol >= 0 {
			joinArgs = append(joinArgs, sp.arg)
			joinCols = append(joinCols, sp.bcol)
		}
	}
	index := map[string][]value.Tuple{}
	for _, t := range matches {
		var key []byte
		for _, ai := range joinArgs {
			key = value.AppendValue(key, t[ai])
		}
		index[string(key)] = append(index[string(key)], t)
	}

	var outRows []value.Tuple
	for _, row := range b.rows {
		var key []byte
		for _, bc := range joinCols {
			key = value.AppendValue(key, row[bc])
		}
		for _, t := range index[string(key)] {
			extended := make(value.Tuple, len(b.vars)+len(newVars))
			copy(extended, row)
			for _, fp := range fresh {
				extended[fp.bcol] = t[fp.arg]
			}
			outRows = append(outRows, extended)
		}
	}
	b.vars = append(b.vars, newVars...)
	b.rows = outRows
}

// applyCmp filters bindings through a comparison literal.
func applyCmp(b *bindings, c *CmpLit) error {
	resolve := func(t Term, row value.Tuple) (value.Value, error) {
		if !t.IsVar {
			return t.Val, nil
		}
		ix := b.varIndex(t.Var)
		if ix < 0 {
			return value.Null, fmt.Errorf("comparison uses unbound variable %s", t.Var)
		}
		return row[ix], nil
	}
	kept := b.rows[:0:0]
	for _, row := range b.rows {
		l, err := resolve(c.L, row)
		if err != nil {
			return err
		}
		r, err := resolve(c.R, row)
		if err != nil {
			return err
		}
		if l.IsNull() || r.IsNull() {
			continue
		}
		if !value.Comparable(l, r) {
			continue
		}
		if cmpHolds(c.Op, value.Compare(l, r)) {
			kept = append(kept, row)
		}
	}
	b.rows = kept
	return nil
}

func cmpHolds(op expr.CmpOp, c int) bool {
	switch op {
	case expr.EQ:
		return c == 0
	case expr.NE:
		return c != 0
	case expr.LT:
		return c < 0
	case expr.LE:
		return c <= 0
	case expr.GT:
		return c > 0
	default:
		return c >= 0
	}
}

// EvalQuery evaluates all rules of prog and answers q. The answer's
// columns are the query's distinct variables in appearance order.
func EvalQuery(prog *Program, q *Query, edb EDB, opts Options) (*value.Relation, Stats, error) {
	// Rewrite the query as a rule with a reserved head predicate.
	vars := q.Vars()
	head := Atom{Pred: "__answer__"}
	for _, v := range vars {
		head.Args = append(head.Args, V(v))
	}
	aug := &Program{Rules: append(append([]Rule{}, prog.Rules...), Rule{Head: head, Body: q.Body})}
	results, stats, err := Eval(aug, edb, opts)
	if err != nil {
		return nil, stats, err
	}
	k := predKey{"__answer__", len(vars)}
	rel := results[k.String()]
	if rel == nil {
		rel = value.NewRelation(genericSchema(len(vars), vars))
	} else {
		rel.Schema = genericSchema(len(vars), vars)
	}
	return rel, stats, nil
}
