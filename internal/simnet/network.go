package simnet

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Config sets the physical parameters of the simulated network. The zero
// values of the rate fields are replaced by the paper's numbers.
type Config struct {
	Topology Topology
	// LinkBandwidthBps is the bandwidth of each link; the paper specifies
	// 10 Mbit/s. Links are full-duplex: each direction is a channel.
	LinkBandwidthBps float64
	// PacketBits is the fixed packet size; the paper specifies 256 bits.
	PacketBits int
	// RoutingDelay is the per-hop processing overhead added on top of
	// transmission time (switch latency).
	RoutingDelay time.Duration
}

// Defaults from paper §3.2.
const (
	DefaultLinkBandwidthBps = 10e6 // 10 Mbit/s
	DefaultPacketBits       = 256
	DefaultRoutingDelay     = 5 * time.Microsecond
)

func (c *Config) fill() error {
	if c.Topology == nil {
		return fmt.Errorf("simnet: Config.Topology is required")
	}
	if c.LinkBandwidthBps == 0 {
		c.LinkBandwidthBps = DefaultLinkBandwidthBps
	}
	if c.LinkBandwidthBps < 0 {
		return fmt.Errorf("simnet: negative bandwidth")
	}
	if c.PacketBits == 0 {
		c.PacketBits = DefaultPacketBits
	}
	if c.PacketBits < 0 {
		return fmt.Errorf("simnet: negative packet size")
	}
	if c.RoutingDelay == 0 {
		c.RoutingDelay = DefaultRoutingDelay
	}
	if c.RoutingDelay < 0 {
		c.RoutingDelay = 0 // negative means "explicitly zero"
	}
	return nil
}

// Network is a store-and-forward packet network over a Topology. It
// provides (a) a discrete-event simulator for synthetic traffic (E1) and
// (b) an analytic transfer-cost model used by the database engine.
type Network struct {
	cfg      Config
	n        int
	xmitTime float64 // seconds per packet per link
}

// New builds a Network; the Config is validated and defaulted.
func New(cfg Config) (*Network, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Network{
		cfg:      cfg,
		n:        cfg.Topology.Nodes(),
		xmitTime: float64(cfg.PacketBits) / cfg.LinkBandwidthBps,
	}, nil
}

// Topology returns the network's topology.
func (nw *Network) Topology() Topology { return nw.cfg.Topology }

// PacketTime returns the transmission time of one packet on one link.
func (nw *Network) PacketTime() time.Duration {
	return time.Duration(nw.xmitTime * float64(time.Second))
}

// TransferTime returns the simulated time to ship a message of the given
// byte size from src to dst, assuming pipelined store-and-forward over
// uncontended links: hops*routingDelay + (hops + packets - 1)*xmit.
// This is the cost the database engine charges for tuple shipping.
func (nw *Network) TransferTime(src, dst int, bytes int) time.Duration {
	if src == dst || bytes < 0 {
		return 0
	}
	hops := nw.cfg.Topology.Dist(src, dst)
	if hops <= 0 {
		return 0
	}
	packets := (bytes*8 + nw.cfg.PacketBits - 1) / nw.cfg.PacketBits
	if packets == 0 {
		packets = 1
	}
	seconds := float64(hops+packets-1) * nw.xmitTime
	return time.Duration(seconds*float64(time.Second)) + time.Duration(hops)*nw.cfg.RoutingDelay
}

// ---------- discrete-event traffic simulation ----------

type packet struct {
	src, dst int
	created  float64
	hops     int
}

type event struct {
	at   float64
	node int
	pkt  *packet
}

type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// TrafficResult reports one uniform-traffic simulation run.
type TrafficResult struct {
	Topology    string
	OfferedRate float64 // packets/sec/PE injected
	Duration    time.Duration
	Offered     int     // packets injected during the window
	Delivered   int     // packets delivered, including during the drain period
	InWindow    int     // packets delivered within the injection window
	InFlight    int     // packets still queued when the drain clock ran out
	Throughput  float64 // in-window delivered packets/sec/PE (sustained)
	AvgLatency  time.Duration
	MaxLatency  time.Duration
	AvgHops     float64
	LinkUtil    float64 // mean busy fraction over all directed links
	MaxLinkUtil float64
}

// Saturated reports whether the run shows congestion: sustained in-window
// deliveries lag offers, or queueing pushed average latency far past the
// uncongested baseline.
func (r TrafficResult) Saturated() bool {
	if r.Offered == 0 {
		return false
	}
	lag := float64(r.InWindow) / float64(r.Offered)
	return lag < 0.95 || r.AvgLatency > 2*time.Millisecond
}

// RunUniformTraffic injects Poisson traffic at `rate` packets/sec from
// every PE to uniformly random other PEs for the given duration, routing
// each packet hop by hop over exclusive links, and reports sustained
// throughput and latency. Deterministic for a given seed.
func (nw *Network) RunUniformTraffic(rate float64, duration time.Duration, seed int64) TrafficResult {
	top := nw.cfg.Topology
	n := nw.n
	r := rand.New(rand.NewSource(seed))
	dur := duration.Seconds()
	res := TrafficResult{
		Topology:    top.Name(),
		OfferedRate: rate,
		Duration:    duration,
	}
	if rate <= 0 || dur <= 0 {
		return res
	}

	// Directed link state: linkFree[from*n+to] = earliest time the link
	// (from→to) can start another transmission. Links are full duplex.
	linkFree := make([]float64, n*n)
	linkBusy := make([]float64, n*n)

	var h eventHeap
	// Pre-generate Poisson arrivals per PE.
	for pe := 0; pe < n; pe++ {
		t := 0.0
		for {
			t += r.ExpFloat64() / rate
			if t >= dur {
				break
			}
			dst := r.Intn(n - 1)
			if dst >= pe {
				dst++
			}
			h = append(h, event{at: t, node: pe, pkt: &packet{src: pe, dst: dst, created: t}})
			res.Offered++
		}
	}
	heap.Init(&h)

	routing := nw.cfg.RoutingDelay.Seconds()
	var sumLat, maxLat float64
	var sumHops int
	// Let the network drain for a grace period after injection stops, so
	// near-saturation runs still account their tail.
	deadline := dur * 2

	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		if ev.at > deadline {
			res.InFlight++
			continue
		}
		p := ev.pkt
		if ev.node == p.dst {
			lat := ev.at - p.created
			res.Delivered++
			if ev.at <= dur {
				res.InWindow++
			}
			sumLat += lat
			if lat > maxLat {
				maxLat = lat
			}
			sumHops += p.hops
			continue
		}
		next := top.NextHop(ev.node, p.dst)
		li := ev.node*n + next
		start := ev.at
		if linkFree[li] > start {
			start = linkFree[li]
		}
		depart := start + nw.xmitTime
		linkFree[li] = depart
		linkBusy[li] += nw.xmitTime
		p.hops++
		heap.Push(&h, event{at: depart + routing, node: next, pkt: p})
	}

	if res.Delivered > 0 {
		res.AvgLatency = time.Duration(sumLat / float64(res.Delivered) * float64(time.Second))
		res.MaxLatency = time.Duration(maxLat * float64(time.Second))
		res.AvgHops = float64(sumHops) / float64(res.Delivered)
		res.Throughput = float64(res.InWindow) / dur / float64(n)
	}

	// Utilization over the injection window, only counting links that
	// exist in the topology.
	links := 0
	var util, maxUtil float64
	for from := 0; from < n; from++ {
		for _, to := range top.Neighbors(from) {
			links++
			u := linkBusy[from*n+to] / dur
			if u > 1 {
				u = 1
			}
			util += u
			if u > maxUtil {
				maxUtil = u
			}
		}
	}
	if links > 0 {
		res.LinkUtil = util / float64(links)
	}
	res.MaxLinkUtil = maxUtil
	return res
}

// SaturationThroughput binary-searches the highest injection rate the
// network sustains without saturating and returns that run's result.
func (nw *Network) SaturationThroughput(duration time.Duration, seed int64) TrafficResult {
	// Upper bound: every PE's links fully busy with minimal-hop traffic.
	deg := float64(MaxDegree(nw.cfg.Topology))
	avgHops := AvgDistance(nw.cfg.Topology)
	upper := deg / (nw.xmitTime * avgHops) // capacity-bound packets/sec/PE
	lo, hi := 0.0, upper*1.5
	var best TrafficResult
	for i := 0; i < 12; i++ {
		mid := (lo + hi) / 2
		res := nw.RunUniformTraffic(mid, duration, seed)
		if res.Saturated() {
			hi = mid
		} else {
			lo = mid
			if res.Throughput > best.Throughput {
				best = res
			}
		}
	}
	return best
}

// TheoreticalPeak returns the analytic per-PE throughput bound for
// uniform traffic: degree / (xmitTime * avgHops). Each delivered packet
// consumes avgHops link-transmissions, and each PE owns `degree`
// outbound links.
func (nw *Network) TheoreticalPeak() float64 {
	deg := float64(MaxDegree(nw.cfg.Topology))
	avgHops := AvgDistance(nw.cfg.Topology)
	if avgHops == 0 {
		return math.Inf(1)
	}
	return deg / (nw.xmitTime * avgHops)
}
