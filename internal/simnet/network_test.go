package simnet

import (
	"testing"
	"time"
)

func newTestNet(t *testing.T, top Topology) *Network {
	t.Helper()
	nw, err := New(Config{Topology: top})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestConfigDefaults(t *testing.T) {
	top := mustMesh(t, 8, 8, true)
	nw := newTestNet(t, top)
	// 256 bits at 10 Mbit/s = 25.6 µs per packet per link.
	want := 25600 * time.Nanosecond
	if got := nw.PacketTime(); got != want {
		t.Errorf("PacketTime = %v, want %v", got, want)
	}
	if _, err := New(Config{}); err == nil {
		t.Error("missing topology should error")
	}
	if _, err := New(Config{Topology: top, LinkBandwidthBps: -1}); err == nil {
		t.Error("negative bandwidth should error")
	}
	if _, err := New(Config{Topology: top, PacketBits: -1}); err == nil {
		t.Error("negative packet size should error")
	}
}

func TestTransferTime(t *testing.T) {
	top := mustMesh(t, 8, 8, true)
	nw := newTestNet(t, top)
	if nw.TransferTime(3, 3, 1000) != 0 {
		t.Error("same-PE transfer must cost nothing")
	}
	if nw.TransferTime(0, 1, -5) != 0 {
		t.Error("negative size must cost nothing")
	}
	// One packet, one hop: xmit + routing delay.
	oneHop := nw.TransferTime(0, 1, 256/8)
	want := nw.PacketTime() + DefaultRoutingDelay
	if oneHop != want {
		t.Errorf("one-packet one-hop = %v, want %v", oneHop, want)
	}
	// Bigger messages cost more; farther nodes cost more.
	if nw.TransferTime(0, 1, 10000) <= nw.TransferTime(0, 1, 100) {
		t.Error("larger transfers must cost more")
	}
	far := 0
	for i := 0; i < top.Nodes(); i++ {
		if top.Dist(0, i) > top.Dist(0, far) {
			far = i
		}
	}
	if nw.TransferTime(0, far, 100) <= nw.TransferTime(0, 1, 100) {
		t.Error("farther transfers must cost more")
	}
	// Pipelining: doubling the message size must NOT double the time for
	// multi-hop paths (store-and-forward pipelining).
	small := nw.TransferTime(0, far, 3200)
	big := nw.TransferTime(0, far, 6400)
	if big >= 2*small {
		t.Errorf("pipelining lost: %v vs %v", small, big)
	}
}

func TestUniformTrafficLowLoad(t *testing.T) {
	nw := newTestNet(t, mustMesh(t, 8, 8, true))
	res := nw.RunUniformTraffic(1000, 50*time.Millisecond, 1)
	if res.Offered == 0 || res.Delivered == 0 {
		t.Fatalf("no traffic simulated: %+v", res)
	}
	if res.Saturated() {
		t.Errorf("1k pkts/s/PE must not saturate a torus: %+v", res)
	}
	// At low load every packet is delivered.
	if res.Delivered != res.Offered {
		t.Errorf("delivered %d of %d at low load", res.Delivered, res.Offered)
	}
	// Latency must be at least one packet time, at most a few dozen.
	if res.AvgLatency < nw.PacketTime() {
		t.Errorf("avg latency %v below one packet time", res.AvgLatency)
	}
	if res.AvgHops < 1 {
		t.Errorf("avg hops %v < 1", res.AvgHops)
	}
	// Uniform torus traffic averages ~4 hops on 8x8.
	if res.AvgHops < 3 || res.AvgHops > 5 {
		t.Errorf("avg hops %.2f outside [3,5]", res.AvgHops)
	}
}

func TestUniformTrafficDeterminism(t *testing.T) {
	nw := newTestNet(t, mustChordal(t, 64, 8))
	a := nw.RunUniformTraffic(5000, 20*time.Millisecond, 7)
	b := nw.RunUniformTraffic(5000, 20*time.Millisecond, 7)
	if a != b {
		t.Errorf("same seed should reproduce identical results:\n%+v\n%+v", a, b)
	}
	c := nw.RunUniformTraffic(5000, 20*time.Millisecond, 8)
	if a == c {
		t.Errorf("different seeds should differ")
	}
}

func TestSaturationDetection(t *testing.T) {
	nw := newTestNet(t, mustRing(t, 64))
	// A plain ring at 20k pkts/s/PE is far beyond capacity
	// (2 links / (25.6µs * 16 avg hops) ≈ 4.9k).
	res := nw.RunUniformTraffic(20000, 30*time.Millisecond, 3)
	if !res.Saturated() {
		t.Errorf("ring at 20k pkts/s/PE must saturate: %+v", res)
	}
	if res.LinkUtil <= 0 || res.MaxLinkUtil > 1 {
		t.Errorf("bad utilization: %+v", res)
	}
}

func TestZeroAndNegativeRates(t *testing.T) {
	nw := newTestNet(t, mustMesh(t, 4, 4, true))
	res := nw.RunUniformTraffic(0, time.Millisecond, 1)
	if res.Offered != 0 || res.Delivered != 0 {
		t.Errorf("zero rate should simulate nothing: %+v", res)
	}
	res = nw.RunUniformTraffic(-5, time.Millisecond, 1)
	if res.Offered != 0 {
		t.Errorf("negative rate should simulate nothing: %+v", res)
	}
}

func TestTheoreticalPeak(t *testing.T) {
	nwTorus := newTestNet(t, mustMesh(t, 8, 8, true))
	nwRing := newTestNet(t, mustRing(t, 64))
	if nwTorus.TheoreticalPeak() <= nwRing.TheoreticalPeak() {
		t.Errorf("torus peak %.0f should exceed ring peak %.0f",
			nwTorus.TheoreticalPeak(), nwRing.TheoreticalPeak())
	}
	// The paper's 20k pkts/s/PE claim must be within the torus's
	// theoretical envelope.
	if nwTorus.TheoreticalPeak() < 20000 {
		t.Errorf("torus theoretical peak %.0f cannot support the paper's 20k claim",
			nwTorus.TheoreticalPeak())
	}
}

// TestPaperThroughputClaim is the E1 headline: a degree-4 64-PE network
// with the paper's link and packet parameters sustains on the order of
// 20,000 packets/sec/PE. We accept ≥15k as reproducing the claim's shape
// (the paper says "up to 20.000").
func TestPaperThroughputClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation search is slow")
	}
	for _, top := range []Topology{mustMesh(t, 8, 8, true), mustChordal(t, 64, BestChord(64))} {
		nw := newTestNet(t, top)
		best := nw.SaturationThroughput(30*time.Millisecond, 42)
		if best.Throughput < 15000 {
			t.Errorf("%s sustained only %.0f pkts/s/PE, want ≥ 15000 (paper: up to 20000)",
				top.Name(), best.Throughput)
		}
		if best.Throughput > nw.TheoreticalPeak()*1.05 {
			t.Errorf("%s sustained %.0f above theoretical peak %.0f",
				top.Name(), best.Throughput, nw.TheoreticalPeak())
		}
	}
}

func TestSaturationMonotonicity(t *testing.T) {
	// Offered rate up => delivered throughput up until saturation, then
	// it stops improving much. Check weak monotonicity pre-saturation.
	nw := newTestNet(t, mustMesh(t, 4, 4, true))
	prev := 0.0
	for _, rate := range []float64{1000, 2000, 4000, 8000} {
		res := nw.RunUniformTraffic(rate, 20*time.Millisecond, 5)
		if res.Saturated() {
			break
		}
		if res.Throughput < prev*0.95 {
			t.Errorf("throughput fell pre-saturation: %.0f after %.0f", res.Throughput, prev)
		}
		prev = res.Throughput
	}
}
