package simnet

import "testing"

func TestMeshBasics(t *testing.T) {
	m, err := NewMesh(8, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes() != 64 {
		t.Fatalf("Nodes = %d", m.Nodes())
	}
	// Corner has 2 neighbors, edge 3, interior 4.
	if d := len(m.Neighbors(0)); d != 2 {
		t.Errorf("corner degree = %d, want 2", d)
	}
	if d := len(m.Neighbors(1)); d != 3 {
		t.Errorf("edge degree = %d, want 3", d)
	}
	if d := len(m.Neighbors(9)); d != 4 {
		t.Errorf("interior degree = %d, want 4", d)
	}
	// Distance across the diagonal of an 8x8 mesh is 14.
	if d := m.Dist(0, 63); d != 14 {
		t.Errorf("Dist(0,63) = %d, want 14", d)
	}
	if Diameter(m) != 14 {
		t.Errorf("Diameter = %d, want 14", Diameter(m))
	}
}

func TestTorusBasics(t *testing.T) {
	m, err := NewMesh(8, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	// Every node in a torus has exactly 4 links: the paper's budget.
	for i := 0; i < m.Nodes(); i++ {
		if d := len(m.Neighbors(i)); d != 4 {
			t.Fatalf("torus node %d degree = %d, want 4", i, d)
		}
	}
	// Wraparound halves the diameter: 4+4 = 8.
	if d := Diameter(m); d != 8 {
		t.Errorf("torus diameter = %d, want 8", d)
	}
	if m.Name() != "torus-8x8" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestMeshErrors(t *testing.T) {
	if _, err := NewMesh(0, 8, false); err == nil {
		t.Error("0-row mesh should error")
	}
	if _, err := NewMesh(1, 1, true); err == nil {
		t.Error("1x1 mesh should error")
	}
}

func TestSmallWrapNoDuplicateLinks(t *testing.T) {
	// A 2-wide wrapped dimension must not create duplicate or self links.
	m, err := NewMesh(2, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Nodes(); i++ {
		seen := map[int]bool{}
		for _, nb := range m.Neighbors(i) {
			if nb == i {
				t.Fatalf("node %d has a self link", i)
			}
			if seen[nb] {
				t.Fatalf("node %d has duplicate link to %d", i, nb)
			}
			seen[nb] = true
		}
	}
}

func TestChordalRing(t *testing.T) {
	c, err := NewChordalRing(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if d := len(c.Neighbors(i)); d != 4 {
			t.Fatalf("chordal ring node %d degree = %d, want 4", i, d)
		}
	}
	// Going 3 chords + up to 4 ring steps reaches any node: diameter must
	// be well under the plain ring's 32.
	if d := Diameter(c); d >= 16 {
		t.Errorf("chordal ring diameter = %d, want < 16", d)
	}
	if _, err := NewChordalRing(2, 2); err == nil {
		t.Error("tiny ring should error")
	}
	if _, err := NewChordalRing(64, 1); err == nil {
		t.Error("chord 1 should error")
	}
	if _, err := NewChordalRing(64, 33); err == nil {
		t.Error("chord > n/2 should error")
	}
}

func TestBestChordBeatsWorst(t *testing.T) {
	best := BestChord(64)
	cBest, err := NewChordalRing(64, best)
	if err != nil {
		t.Fatal(err)
	}
	cWorst, err := NewChordalRing(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if AvgDistance(cBest) > AvgDistance(cWorst) {
		t.Errorf("BestChord(64)=%d avg %.2f worse than chord 2 avg %.2f",
			best, AvgDistance(cBest), AvgDistance(cWorst))
	}
}

func TestRing(t *testing.T) {
	r, err := NewRing(64)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diameter(r); d != 32 {
		t.Errorf("ring diameter = %d, want 32", d)
	}
	if MaxDegree(r) != 2 {
		t.Errorf("ring degree = %d, want 2", MaxDegree(r))
	}
	if _, err := NewRing(2); err == nil {
		t.Error("2-node ring should error")
	}
}

func TestHypercube(t *testing.T) {
	h, err := NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	if h.Nodes() != 64 {
		t.Fatalf("Nodes = %d", h.Nodes())
	}
	if d := Diameter(h); d != 6 {
		t.Errorf("hypercube diameter = %d, want 6", d)
	}
	if MaxDegree(h) != 6 {
		t.Errorf("hypercube degree = %d, want 6", MaxDegree(h))
	}
	if _, err := NewHypercube(0); err == nil {
		t.Error("dimension 0 should error")
	}
	if _, err := NewHypercube(20); err == nil {
		t.Error("dimension 20 should error")
	}
}

// TestRoutingConvergesEverywhere is the key routing invariant: following
// NextHop from any node must reach any destination in exactly Dist hops.
func TestRoutingConvergesEverywhere(t *testing.T) {
	tops := []Topology{
		mustMesh(t, 8, 8, false),
		mustMesh(t, 8, 8, true),
		mustChordal(t, 64, 8),
		mustRing(t, 16),
		mustCube(t, 4),
	}
	for _, top := range tops {
		n := top.Nodes()
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				if from == to {
					continue
				}
				cur, hops := from, 0
				for cur != to {
					nh := top.NextHop(cur, to)
					if nh < 0 || nh >= n {
						t.Fatalf("%s: NextHop(%d,%d) = %d", top.Name(), cur, to, nh)
					}
					cur = nh
					hops++
					if hops > n {
						t.Fatalf("%s: routing loop from %d to %d", top.Name(), from, to)
					}
				}
				if hops != top.Dist(from, to) {
					t.Fatalf("%s: route %d->%d took %d hops, Dist says %d",
						top.Name(), from, to, hops, top.Dist(from, to))
				}
			}
		}
	}
}

// TestNextHopIsNeighbor: every next hop is an actual link.
func TestNextHopIsNeighbor(t *testing.T) {
	top := mustChordal(t, 32, 5)
	for from := 0; from < 32; from++ {
		nbs := map[int]bool{}
		for _, nb := range top.Neighbors(from) {
			nbs[nb] = true
		}
		for to := 0; to < 32; to++ {
			if to == from {
				continue
			}
			if !nbs[top.NextHop(from, to)] {
				t.Fatalf("NextHop(%d,%d) = %d is not a neighbor", from, to, top.NextHop(from, to))
			}
		}
	}
}

func TestDistSymmetry(t *testing.T) {
	// All topologies here are undirected: Dist must be symmetric.
	for _, top := range []Topology{mustMesh(t, 4, 5, false), mustChordal(t, 20, 4)} {
		n := top.Nodes()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if top.Dist(a, b) != top.Dist(b, a) {
					t.Fatalf("%s: Dist(%d,%d) != Dist(%d,%d)", top.Name(), a, b, b, a)
				}
			}
		}
	}
}

func TestAvgDistanceOrdering(t *testing.T) {
	// Richer topologies must have shorter average paths on 64 nodes.
	ring := mustRing(t, 64)
	chordal := mustChordal(t, 64, BestChord(64))
	torus := mustMesh(t, 8, 8, true)
	cube := mustCube(t, 6)
	if !(AvgDistance(cube) < AvgDistance(torus) && AvgDistance(torus) < AvgDistance(ring)) {
		t.Errorf("avg distances out of order: cube %.2f torus %.2f ring %.2f",
			AvgDistance(cube), AvgDistance(torus), AvgDistance(ring))
	}
	if AvgDistance(chordal) >= AvgDistance(ring) {
		t.Errorf("chordal ring %.2f should beat plain ring %.2f",
			AvgDistance(chordal), AvgDistance(ring))
	}
}

func mustMesh(t *testing.T, r, c int, wrap bool) *Mesh {
	t.Helper()
	m, err := NewMesh(r, c, wrap)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustChordal(t *testing.T, n, chord int) *ChordalRing {
	t.Helper()
	c, err := NewChordalRing(n, chord)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustRing(t *testing.T, n int) *Ring {
	t.Helper()
	r, err := NewRing(n)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustCube(t *testing.T, d int) *Hypercube {
	t.Helper()
	h, err := NewHypercube(d)
	if err != nil {
		t.Fatal(err)
	}
	return h
}
