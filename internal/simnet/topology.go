// Package simnet simulates the PRISMA multi-computer's message-passing
// network (paper §3.2): processing elements with four communication links
// running at 10 Mbit/s each, connected in a mesh-like topology or a
// variant of a chordal ring, exchanging 256-bit packets. The paper
// reports that "various simulations show an average network throughput of
// up to 20.000 packets (of 256 bits) per second for each processing
// element simultaneously"; this package rebuilds that simulation
// (experiment E1) and provides the transfer-cost model the database
// engine charges for shipping tuples between PEs.
package simnet

import (
	"fmt"
	"math"
)

// Topology describes a static interconnection network and its routing.
type Topology interface {
	// Name identifies the topology for reports.
	Name() string
	// Nodes returns the number of processing elements.
	Nodes() int
	// Neighbors returns the directly connected nodes of n, in a stable
	// order. Its length is the node degree (≤4 for PRISMA candidates).
	Neighbors(n int) []int
	// NextHop returns the neighbor of `from` on a shortest path to `to`.
	// from == to is invalid.
	NextHop(from, to int) int
	// Dist returns the hop count of the shortest path from a to b.
	Dist(a, b int) int
}

// routeTable holds BFS-computed shortest-path next hops and distances.
// Ties are broken by neighbor order, which keeps routing deterministic.
type routeTable struct {
	n        int
	adj      [][]int
	nextHop  []int32 // [from*n+to]
	dist     []int32 // [from*n+to]
	maxDeg   int
	diameter int
}

func newRouteTable(n int, adj [][]int) *routeTable {
	rt := &routeTable{
		n:       n,
		adj:     adj,
		nextHop: make([]int32, n*n),
		dist:    make([]int32, n*n),
	}
	for _, ns := range adj {
		if len(ns) > rt.maxDeg {
			rt.maxDeg = len(ns)
		}
	}
	// BFS from every destination, recording predecessors toward it. To
	// fill nextHop[from][to] we BFS from `to` over the reversed graph;
	// all our topologies are undirected, so the graph is its own reverse.
	queue := make([]int, 0, n)
	for to := 0; to < n; to++ {
		base := func(from int) int { return from*n + to }
		for from := 0; from < n; from++ {
			rt.dist[base(from)] = -1
			rt.nextHop[base(from)] = -1
		}
		rt.dist[base(to)] = 0
		queue = queue[:0]
		queue = append(queue, to)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			d := rt.dist[base(cur)]
			if int(d) > rt.diameter {
				rt.diameter = int(d)
			}
			for _, nb := range adj[cur] {
				if rt.dist[base(nb)] != -1 {
					continue
				}
				rt.dist[base(nb)] = d + 1
				// From nb, the first hop toward `to` is cur.
				rt.nextHop[base(nb)] = int32(cur)
				queue = append(queue, nb)
			}
		}
	}
	return rt
}

func (rt *routeTable) Nodes() int            { return rt.n }
func (rt *routeTable) Neighbors(i int) []int { return rt.adj[i] }

func (rt *routeTable) NextHop(from, to int) int {
	return int(rt.nextHop[from*rt.n+to])
}

func (rt *routeTable) Dist(a, b int) int {
	return int(rt.dist[a*rt.n+b])
}

// AvgDistance returns the mean shortest-path length over all ordered
// pairs of distinct nodes — the expected hop count of uniform traffic.
func AvgDistance(t Topology) float64 {
	n := t.Nodes()
	sum := 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				sum += t.Dist(a, b)
			}
		}
	}
	return float64(sum) / float64(n*(n-1))
}

// Diameter returns the maximum shortest-path length.
func Diameter(t Topology) int {
	n := t.Nodes()
	d := 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if t.Dist(a, b) > d {
				d = t.Dist(a, b)
			}
		}
	}
	return d
}

// MaxDegree returns the maximum node degree (PRISMA's PEs have 4 links).
func MaxDegree(t Topology) int {
	n := t.Nodes()
	d := 0
	for i := 0; i < n; i++ {
		if len(t.Neighbors(i)) > d {
			d = len(t.Neighbors(i))
		}
	}
	return d
}

// Mesh is a rows×cols grid. With Wrap it becomes a torus ("mesh-like"
// in the paper's terms) where every node has exactly degree 4.
type Mesh struct {
	*routeTable
	rows, cols int
	wrap       bool
}

// NewMesh builds a rows×cols mesh; wrap adds wraparound links (torus).
func NewMesh(rows, cols int, wrap bool) (*Mesh, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("simnet: mesh needs at least 2 nodes, got %dx%d", rows, cols)
	}
	n := rows * cols
	adj := make([][]int, n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			var ns []int
			add := func(rr, cc int) {
				if wrap {
					rr = (rr + rows) % rows
					cc = (cc + cols) % cols
				} else if rr < 0 || rr >= rows || cc < 0 || cc >= cols {
					return
				}
				nb := id(rr, cc)
				if nb == id(r, c) {
					return // degenerate wrap on 1-wide dimensions
				}
				for _, e := range ns {
					if e == nb {
						return
					}
				}
				ns = append(ns, nb)
			}
			add(r-1, c)
			add(r+1, c)
			add(r, c-1)
			add(r, c+1)
			adj[id(r, c)] = ns
		}
	}
	return &Mesh{routeTable: newRouteTable(n, adj), rows: rows, cols: cols, wrap: wrap}, nil
}

// Name implements Topology.
func (m *Mesh) Name() string {
	if m.wrap {
		return fmt.Sprintf("torus-%dx%d", m.rows, m.cols)
	}
	return fmt.Sprintf("mesh-%dx%d", m.rows, m.cols)
}

// ChordalRing is a ring of n nodes where node i additionally connects to
// i±chord — the degree-4 "variant of a chordal ring" the paper mentions.
type ChordalRing struct {
	*routeTable
	chord int
}

// NewChordalRing builds a chordal ring; chord must be in [2, n/2].
// A chord near sqrt(n) minimizes the diameter.
func NewChordalRing(n, chord int) (*ChordalRing, error) {
	if n < 3 {
		return nil, fmt.Errorf("simnet: chordal ring needs at least 3 nodes, got %d", n)
	}
	if chord < 2 || chord > n/2 {
		return nil, fmt.Errorf("simnet: chord %d out of range [2,%d]", chord, n/2)
	}
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		set := map[int]struct{}{}
		var ns []int
		for _, nb := range []int{(i + 1) % n, (i - 1 + n) % n, (i + chord) % n, (i - chord + n) % n} {
			if nb == i {
				continue
			}
			if _, dup := set[nb]; dup {
				continue
			}
			set[nb] = struct{}{}
			ns = append(ns, nb)
		}
		adj[i] = ns
	}
	return &ChordalRing{routeTable: newRouteTable(n, adj), chord: chord}, nil
}

// BestChord returns the chord length in [2, n/2] minimizing the average
// distance — what a machine designer would pick.
func BestChord(n int) int {
	best, bestAvg := 2, math.Inf(1)
	for c := 2; c <= n/2; c++ {
		cr, err := NewChordalRing(n, c)
		if err != nil {
			continue
		}
		if avg := AvgDistance(cr); avg < bestAvg {
			best, bestAvg = c, avg
		}
	}
	return best
}

// Name implements Topology.
func (c *ChordalRing) Name() string {
	return fmt.Sprintf("chordal-ring-%d/%d", c.n, c.chord)
}

// Ring is a plain bidirectional ring (degree 2); a baseline that shows
// why the paper's candidates need degree 4.
type Ring struct {
	*routeTable
}

// NewRing builds a bidirectional ring of n nodes.
func NewRing(n int) (*Ring, error) {
	if n < 3 {
		return nil, fmt.Errorf("simnet: ring needs at least 3 nodes, got %d", n)
	}
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		adj[i] = []int{(i + 1) % n, (i - 1 + n) % n}
	}
	return &Ring{routeTable: newRouteTable(n, adj)}, nil
}

// Name implements Topology.
func (r *Ring) Name() string { return fmt.Sprintf("ring-%d", r.n) }

// Hypercube connects 2^dim nodes along dimension bits (degree = dim).
// For 64 nodes the degree is 6 — more links than PRISMA's VLSI budget
// allows, included as an upper-bound comparator.
type Hypercube struct {
	*routeTable
	dim int
}

// NewHypercube builds a hypercube with 2^dim nodes.
func NewHypercube(dim int) (*Hypercube, error) {
	if dim < 1 || dim > 16 {
		return nil, fmt.Errorf("simnet: hypercube dimension %d out of range", dim)
	}
	n := 1 << dim
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		ns := make([]int, dim)
		for b := 0; b < dim; b++ {
			ns[b] = i ^ (1 << b)
		}
		adj[i] = ns
	}
	return &Hypercube{routeTable: newRouteTable(n, adj), dim: dim}, nil
}

// Name implements Topology.
func (h *Hypercube) Name() string { return fmt.Sprintf("hypercube-%d", h.dim) }
