// Package wire is the client/server wire protocol of the PRISMA
// front-end: length-prefixed frames carrying SQL / PRISMAlog statements
// toward the server and encoded value.Relation results back. It is the
// only protocol knowledge shared by internal/server and internal/client,
// and deliberately depends on nothing but the value encoding.
//
// Frame layout (all integers big-endian):
//
//	uint32  payload length (including the type byte)
//	byte    frame type
//	[]byte  payload
//
// A connection opens with a Hello frame ("PRSM" magic + version byte);
// the server answers HelloOK or Error. After the handshake the client
// sends Exec / Datalog frames, each answered by exactly one Result or
// Error frame.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/value"
)

// Magic opens every Hello frame.
const Magic = "PRSM"

// Version is the protocol version spoken by this build.
const Version = 1

// DefaultMaxFrame bounds a frame's payload (type byte + body). Statements
// and results beyond this are refused rather than buffered.
const DefaultMaxFrame = 8 << 20

// DefaultChunkRows and DefaultChunkBytes are the per-chunk budgets of a
// streamed result when neither side asks for specific ones. Both the
// server (Config.ChunkRows/ChunkBytes) and the client
// (Options.ChunkRows/ChunkBytes) default to these.
const (
	DefaultChunkRows  = 1024
	DefaultChunkBytes = 256 << 10
)

// Frame types. Client-to-server types have the high bit clear,
// server-to-client types have it set.
const (
	// TypeHello is the client handshake: Magic then a version byte.
	TypeHello byte = 0x01
	// TypeExec carries one SQL statement as UTF-8 text.
	TypeExec byte = 0x02
	// TypeDatalog carries one PRISMAlog query as UTF-8 text.
	TypeDatalog byte = 0x03
	// TypePrepare carries one SQL statement with '?'/'$n' placeholders;
	// the server answers PrepareOK (statement id + arity) or Error.
	TypePrepare byte = 0x04
	// TypeBindExec executes a prepared statement: a statement id and the
	// bound parameter values. Answered by Result or Error; an unknown or
	// closed statement id is a statement-level Error, not a disconnect.
	TypeBindExec byte = 0x05
	// TypeClosePrepared discards a prepared statement by id. Answered by
	// a Result whose Msg confirms the close (closing an unknown id is
	// also just a statement-level Error).
	TypeClosePrepared byte = 0x06
	// TypeExecStream carries one SQL statement for chunked execution:
	// a uint32 row budget and a uint32 byte budget per chunk (0 picks
	// the server default), then the statement text. A relation-producing
	// statement is answered by ResultHead, zero or more RowChunk frames
	// and a ResultEnd; anything else (DDL, DML, transaction control) by
	// a single Result frame, exactly as TypeExec would.
	TypeExecStream byte = 0x07
	// TypeBatch carries N statements in one frame, each either SQL text
	// or a prepared-statement execution (see BatchStmt). The server
	// answers with exactly N frames, one Result or Error per statement
	// in order; a statement-level error fails that statement only — the
	// rest of the batch still executes and the connection stays usable.
	TypeBatch byte = 0x08
	// TypeReplSubscribe turns the connection into a replication stream:
	// the subscriber's epoch and its durable per-log positions (see
	// repl.go). The server answers with a ReplStatus carrying the
	// catalog, then ships ReplRecords/ReplStatus frames until either
	// side disconnects. No other frame type is valid afterwards.
	TypeReplSubscribe byte = 0x09

	// TypeHelloOK acknowledges the handshake: a version byte then a
	// length-prefixed server banner, optionally followed by the server's
	// replication role, epoch and primary address (see EncodeHelloOK).
	TypeHelloOK byte = 0x81
	// TypeResult carries an encoded Result.
	TypeResult byte = 0x82
	// TypeError carries an error, either as a coded payload
	// ([NUL][code][text] — see EncodeError) or as legacy bare UTF-8
	// text. Statement errors leave the connection usable; handshake and
	// protocol errors are followed by a close. During a streamed result
	// (after ResultHead, before ResultEnd) an Error frame terminates the
	// stream in place of further chunks; the connection stays usable.
	TypeError byte = 0x83
	// TypePrepareOK answers a Prepare: uint32 statement id, uint16
	// parameter count.
	TypePrepareOK byte = 0x84
	// TypeResultHead opens a streamed result: status strings and the
	// relation schema, before any tuples exist. Tuples follow in
	// RowChunk frames.
	TypeResultHead byte = 0x85
	// TypeRowChunk carries one batch of a streamed result's tuples:
	// a uint32 count then each tuple in the relation encoding.
	TypeRowChunk byte = 0x86
	// TypeResultEnd closes a streamed result: the total row count and
	// the statement's simulated and wall-clock execution times (known
	// only once the last tuple has been produced).
	TypeResultEnd byte = 0x87
	// TypeReplRecords ships one fragment log's new bytes (or a full
	// fragment resync) to a subscribed replica.
	TypeReplRecords byte = 0x88
	// TypeReplStatus commits a shipped batch: the primary's epoch and
	// commit watermark; the first one also carries the table catalog.
	TypeReplStatus byte = 0x89
)

// ErrFrameTooLarge reports a frame whose declared payload exceeds the
// reader's limit.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// ---------- coded errors ----------

// Error classification codes carried in a coded Error frame. A coded
// payload opens with a NUL byte — legacy payloads are bare non-empty
// UTF-8 message text, which never starts with NUL — followed by the
// code, then the message. DecodeError accepts both formats, so either
// end may be older than the other.
const (
	// ErrCodeGeneric marks an error with no retry guidance: the
	// statement failed and re-running it is the caller's judgment call.
	ErrCodeGeneric byte = 0x00
	// ErrCodeRetryable marks a transient transaction failure (deadlock
	// victim, write-write conflict, clean abort): the transaction did
	// NOT commit and the client may safely re-run it from BEGIN.
	ErrCodeRetryable byte = 0x01
	// ErrCodeDeadline marks a statement that exceeded its lock-wait
	// deadline. The transaction aborted cleanly; retryable, but a
	// client may prefer to give up rather than queue again.
	ErrCodeDeadline byte = 0x02
	// ErrCodeRedirect marks a write rejected by a read-only replica: the
	// statement definitively did not run, and the message names the
	// primary to retry against. Routing clients re-probe roles and
	// re-run; a promotion may also turn the same endpoint writable.
	ErrCodeRedirect byte = 0x03
	// ErrCodeOverloaded marks a statement shed by admission control (or
	// a connection refused at the MaxConns limit): nothing ran, and the
	// client should back off and retry — client.Retry's decorrelated
	// backoff absorbs these, and routing clients may prefer another
	// endpoint first.
	ErrCodeOverloaded byte = 0x04
	// ErrCodeAuth marks an authentication or authorization failure:
	// bad credentials at handshake or a statement touching a table the
	// tenant holds no grant on. Never retryable — re-running cannot
	// succeed until an administrator changes the user or its grants.
	ErrCodeAuth byte = 0x05
)

// EncodeError builds a coded Error payload.
func EncodeError(code byte, msg string) []byte {
	buf := make([]byte, 0, 2+len(msg))
	buf = append(buf, 0x00, code)
	return append(buf, msg...)
}

// DecodeError reads an Error payload in either format: coded
// ([NUL][code][text]) or legacy bare text (decoded as ErrCodeGeneric).
func DecodeError(payload []byte) (code byte, msg string) {
	if len(payload) >= 2 && payload[0] == 0x00 {
		return payload[1], string(payload[2:])
	}
	return ErrCodeGeneric, string(payload)
}

// RetryableCode reports whether code promises the statement's
// transaction did not commit and may safely be re-run.
func RetryableCode(code byte) bool {
	return code == ErrCodeRetryable || code == ErrCodeDeadline ||
		code == ErrCodeRedirect || code == ErrCodeOverloaded
}

// ---------- frame/encode buffer reuse ----------

// maxPooledBuf caps the capacity of buffers returned to the pool so a
// single giant frame cannot pin its allocation forever.
const maxPooledBuf = 1 << 20

// bufPool recycles frame payload and encode buffers. Pipelined
// workloads read and encode thousands of frames per second; without
// reuse every frame is a fresh allocation the GC must chase.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuf takes a reusable byte buffer (length 0) from the pool.
func GetBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

// PutBuf returns a buffer to the pool. Safe only once nothing aliases
// the buffer's bytes — all Decode* helpers copy what they keep, so a
// frame payload may be recycled as soon as its statement has executed.
func PutBuf(b *[]byte) {
	if b == nil || cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame from r, refusing payloads larger than max
// (DefaultMaxFrame when max <= 0) before allocating anything.
func ReadFrame(r io.Reader, max int) (byte, []byte, error) {
	return ReadFrameBuf(r, max, nil)
}

// ReadFrameBuf is ReadFrame with payload-buffer reuse: when buf has
// enough capacity the payload is read into it (the returned slice
// aliases buf); otherwise a new buffer is allocated. Callers recycling
// buffers through GetBuf/PutBuf must not return one to the pool while
// its payload is still referenced.
func ReadFrameBuf(r io.Reader, max int, buf []byte) (byte, []byte, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:4]))
	if n < 1 {
		return 0, nil, fmt.Errorf("wire: frame with zero-length payload")
	}
	if n > max {
		return 0, nil, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooLarge, n, max)
	}
	var payload []byte
	if cap(buf) >= n-1 {
		payload = buf[:n-1]
	} else {
		payload = make([]byte, n-1)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: truncated frame body: %w", err)
	}
	return hdr[4], payload, nil
}

// EncodeHello builds the Hello payload.
func EncodeHello() []byte {
	return append([]byte(Magic), Version)
}

// HelloCreds are the optional tenant credentials a Hello frame carries
// after the magic and version byte: two length-prefixed strings. A
// legacy Hello stops at the version byte and decodes with nil creds —
// servers with no user table accept it, servers requiring auth refuse
// with a coded ErrCodeAuth Error.
type HelloCreds struct {
	Tenant string
	Secret string
}

// EncodeHelloCreds builds a Hello payload carrying tenant credentials.
func EncodeHelloCreds(tenant, secret string) []byte {
	buf := make([]byte, 0, len(Magic)+5+len(tenant)+len(secret))
	buf = append(buf, Magic...)
	buf = append(buf, Version)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(tenant)))
	buf = append(buf, tenant...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(secret)))
	return append(buf, secret...)
}

// DecodeHello validates a Hello payload, returning the client version.
// Credentialed Hellos (see EncodeHelloCreds) validate too — callers
// that don't authenticate simply ignore the trailer.
func DecodeHello(payload []byte) (int, error) {
	ver, _, err := DecodeHelloCreds(payload)
	return ver, err
}

// DecodeHelloCreds validates a Hello payload and extracts the optional
// credential trailer; creds is nil for a legacy credential-less Hello.
func DecodeHelloCreds(payload []byte) (ver int, creds *HelloCreds, err error) {
	if len(payload) < len(Magic)+1 || string(payload[:len(Magic)]) != Magic {
		return 0, nil, fmt.Errorf("wire: bad handshake magic")
	}
	ver = int(payload[len(Magic)])
	rest := payload[len(Magic)+1:]
	if len(rest) == 0 {
		return ver, nil, nil
	}
	tenant, n, err := decodeString16(rest)
	if err != nil {
		return 0, nil, fmt.Errorf("wire: Hello credential tenant: %w", err)
	}
	secret, m, err := decodeString16(rest[n:])
	if err != nil {
		return 0, nil, fmt.Errorf("wire: Hello credential secret: %w", err)
	}
	if n+m != len(rest) {
		return 0, nil, fmt.Errorf("wire: %d trailing bytes after Hello credentials", len(rest)-n-m)
	}
	if tenant == "" {
		return 0, nil, fmt.Errorf("wire: Hello credentials with empty tenant")
	}
	return ver, &HelloCreds{Tenant: tenant, Secret: secret}, nil
}

func decodeString16(buf []byte) (string, int, error) {
	if len(buf) < 2 {
		return "", 0, fmt.Errorf("wire: truncated string header")
	}
	n := int(binary.BigEndian.Uint16(buf))
	if len(buf) < 2+n {
		return "", 0, fmt.Errorf("wire: truncated string body (want %d bytes)", n)
	}
	return string(buf[2 : 2+n]), 2 + n, nil
}

// EncodePrepareOK builds a PrepareOK payload.
func EncodePrepareOK(id uint32, nparams int) []byte {
	var buf [6]byte
	binary.BigEndian.PutUint32(buf[:4], id)
	binary.BigEndian.PutUint16(buf[4:], uint16(nparams))
	return buf[:]
}

// DecodePrepareOK reads a PrepareOK payload.
func DecodePrepareOK(payload []byte) (id uint32, nparams int, err error) {
	if len(payload) != 6 {
		return 0, 0, fmt.Errorf("wire: PrepareOK payload of %d bytes", len(payload))
	}
	return binary.BigEndian.Uint32(payload[:4]), int(binary.BigEndian.Uint16(payload[4:])), nil
}

// MaxBindArgs is the largest argument count a BindExec frame can carry
// (the arity field is a uint16; sqlparse caps statement arity to match).
const MaxBindArgs = 1<<16 - 1

// EncodeBindExec builds a BindExec payload: statement id, arity, then
// each bound value in the relation encoding. The caller must keep
// len(args) within MaxBindArgs.
func EncodeBindExec(id uint32, args []value.Value) []byte {
	buf := make([]byte, 6, 6+len(args)*8)
	binary.BigEndian.PutUint32(buf[:4], id)
	binary.BigEndian.PutUint16(buf[4:6], uint16(len(args)))
	for _, v := range args {
		buf = value.AppendValue(buf, v)
	}
	return buf
}

// DecodeBindExec reads a BindExec payload.
func DecodeBindExec(payload []byte) (uint32, []value.Value, error) {
	if len(payload) < 6 {
		return 0, nil, fmt.Errorf("wire: truncated BindExec header")
	}
	id := binary.BigEndian.Uint32(payload[:4])
	n := int(binary.BigEndian.Uint16(payload[4:6]))
	args := make([]value.Value, 0, n)
	off := 6
	for i := 0; i < n; i++ {
		v, used, err := value.DecodeValue(payload[off:])
		if err != nil {
			return 0, nil, fmt.Errorf("wire: BindExec value %d: %w", i, err)
		}
		off += used
		args = append(args, v)
	}
	if off != len(payload) {
		return 0, nil, fmt.Errorf("wire: %d trailing bytes after BindExec", len(payload)-off)
	}
	return id, args, nil
}

// EncodeClosePrepared builds a ClosePrepared payload.
func EncodeClosePrepared(id uint32) []byte {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], id)
	return buf[:]
}

// DecodeClosePrepared reads a ClosePrepared payload.
func DecodeClosePrepared(payload []byte) (uint32, error) {
	if len(payload) != 4 {
		return 0, fmt.Errorf("wire: ClosePrepared payload of %d bytes", len(payload))
	}
	return binary.BigEndian.Uint32(payload), nil
}

// Result is one statement's outcome on the wire; it mirrors core.Result
// without importing the engine.
type Result struct {
	// Rel holds query output (SELECT / PRISMAlog); nil for DDL/DML.
	Rel *value.Relation
	// Affected counts rows touched by DML.
	Affected int
	// Msg describes DDL and transaction-control outcomes.
	Msg string
	// Plan is the optimized logical plan of a SELECT.
	Plan string
	// SimTime is the simulated 1988-machine response time.
	SimTime time.Duration
	// WallTime is the server's real execution time.
	WallTime time.Duration
	// QueueTime is how long the statement waited in the server's
	// admission queue before executing; zero when admission control is
	// off or the statement was admitted immediately. Encoded only when
	// nonzero, so pre-admission decoders still read the result.
	QueueTime time.Duration
}

const (
	resultHasRel   byte = 1 << 0
	resultHasQueue byte = 1 << 1
)

func appendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func decodeString(buf []byte) (string, int, error) {
	if len(buf) < 4 {
		return "", 0, fmt.Errorf("wire: truncated string header")
	}
	n := int(binary.BigEndian.Uint32(buf))
	if len(buf) < 4+n {
		return "", 0, fmt.Errorf("wire: truncated string body (want %d bytes)", n)
	}
	return string(buf[4 : 4+n]), 4 + n, nil
}

// EncodeResult encodes r for a Result frame.
func EncodeResult(r *Result) []byte {
	return AppendResult(nil, r)
}

// AppendResult appends r's Result-frame encoding to dst and returns it
// — the allocation-free form of EncodeResult for callers that reuse an
// encode buffer across statements (the server's reply writer).
func AppendResult(dst []byte, r *Result) []byte {
	var flags byte
	size := 41 + len(r.Msg) + len(r.Plan)
	if r.Rel != nil {
		flags |= resultHasRel
		size += r.Rel.Size() + 64
	}
	if r.QueueTime != 0 {
		flags |= resultHasQueue
	}
	if cap(dst)-len(dst) < size {
		grown := make([]byte, len(dst), len(dst)+size)
		copy(grown, dst)
		dst = grown
	}
	buf := append(dst, flags)
	buf = binary.BigEndian.AppendUint64(buf, uint64(int64(r.Affected)))
	buf = appendString(buf, r.Msg)
	buf = appendString(buf, r.Plan)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.SimTime.Nanoseconds()))
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.WallTime.Nanoseconds()))
	if r.QueueTime != 0 {
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.QueueTime.Nanoseconds()))
	}
	if r.Rel != nil {
		buf = value.AppendRelation(buf, r.Rel)
	}
	return buf
}

// DecodeResult decodes a Result frame payload.
func DecodeResult(buf []byte) (*Result, error) {
	if len(buf) < 9 {
		return nil, fmt.Errorf("wire: truncated result header")
	}
	flags := buf[0]
	r := &Result{Affected: int(int64(binary.BigEndian.Uint64(buf[1:9])))}
	off := 9
	var n int
	var err error
	if r.Msg, n, err = decodeString(buf[off:]); err != nil {
		return nil, err
	}
	off += n
	if r.Plan, n, err = decodeString(buf[off:]); err != nil {
		return nil, err
	}
	off += n
	if len(buf) < off+16 {
		return nil, fmt.Errorf("wire: truncated result timings")
	}
	r.SimTime = time.Duration(int64(binary.BigEndian.Uint64(buf[off:])))
	r.WallTime = time.Duration(int64(binary.BigEndian.Uint64(buf[off+8:])))
	off += 16
	if flags&resultHasQueue != 0 {
		if len(buf) < off+8 {
			return nil, fmt.Errorf("wire: truncated result queue timing")
		}
		r.QueueTime = time.Duration(int64(binary.BigEndian.Uint64(buf[off:])))
		off += 8
	}
	if flags&resultHasRel != 0 {
		rel, used, err := value.DecodeRelation(buf[off:])
		if err != nil {
			return nil, err
		}
		off += used
		r.Rel = rel
	}
	if off != len(buf) {
		return nil, fmt.Errorf("wire: %d trailing bytes after result", len(buf)-off)
	}
	return r, nil
}

// ---------- chunked result streaming ----------

// EncodeExecStream builds an ExecStream payload: per-chunk row and byte
// budgets (0 = server default) followed by the statement text.
func EncodeExecStream(chunkRows, chunkBytes int, sql string) []byte {
	buf := make([]byte, 0, 8+len(sql))
	buf = binary.BigEndian.AppendUint32(buf, uint32(chunkRows))
	buf = binary.BigEndian.AppendUint32(buf, uint32(chunkBytes))
	return append(buf, sql...)
}

// DecodeExecStream reads an ExecStream payload.
func DecodeExecStream(payload []byte) (chunkRows, chunkBytes int, sql string, err error) {
	if len(payload) < 8 {
		return 0, 0, "", fmt.Errorf("wire: truncated ExecStream header")
	}
	chunkRows = int(binary.BigEndian.Uint32(payload[:4]))
	chunkBytes = int(binary.BigEndian.Uint32(payload[4:8]))
	return chunkRows, chunkBytes, string(payload[8:]), nil
}

// ResultHead is the opening frame of a streamed result: everything a
// client needs before the first tuple arrives.
type ResultHead struct {
	// Msg mirrors Result.Msg (normally empty for relation results).
	Msg string
	// Plan is the optimized logical plan of the SELECT.
	Plan string
	// Schema is the result relation's schema.
	Schema *value.Schema
}

// EncodeResultHead encodes h for a ResultHead frame.
func EncodeResultHead(h *ResultHead) []byte {
	buf := make([]byte, 0, 16+len(h.Msg)+len(h.Plan)+8*h.Schema.Len())
	buf = appendString(buf, h.Msg)
	buf = appendString(buf, h.Plan)
	return value.AppendSchema(buf, h.Schema)
}

// DecodeResultHead decodes a ResultHead frame payload.
func DecodeResultHead(buf []byte) (*ResultHead, error) {
	h := &ResultHead{}
	var off, n int
	var err error
	if h.Msg, n, err = decodeString(buf); err != nil {
		return nil, err
	}
	off += n
	if h.Plan, n, err = decodeString(buf[off:]); err != nil {
		return nil, err
	}
	off += n
	if h.Schema, n, err = value.DecodeSchema(buf[off:]); err != nil {
		return nil, err
	}
	off += n
	if off != len(buf) {
		return nil, fmt.Errorf("wire: %d trailing bytes after result head", len(buf)-off)
	}
	return h, nil
}

// EncodeRowChunk encodes one batch of tuples for a RowChunk frame:
// a uint32 count then each tuple. (The server's streaming loop builds
// chunks incrementally against its byte budget; this helper is the
// reference encoding used by tests and small producers.)
func EncodeRowChunk(tuples []value.Tuple) []byte {
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(tuples)))
	for _, t := range tuples {
		buf = value.AppendTuple(buf, t)
	}
	return buf
}

// DecodeRowChunk decodes a RowChunk frame payload, validating each
// tuple's arity against the stream's schema.
func DecodeRowChunk(buf []byte, schema *value.Schema) ([]value.Tuple, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("wire: truncated row chunk header")
	}
	n := int(binary.BigEndian.Uint32(buf))
	off := 4
	// Every encoded tuple is at least 2 bytes; never trust the count
	// beyond what the payload could possibly hold.
	tuples := make([]value.Tuple, 0, min(n, (len(buf)-off)/2+1))
	for i := 0; i < n; i++ {
		t, used, err := value.DecodeTuple(buf[off:])
		if err != nil {
			return nil, fmt.Errorf("wire: chunk tuple %d: %w", i, err)
		}
		if schema != nil && len(t) != schema.Len() {
			return nil, fmt.Errorf("wire: chunk tuple %d has arity %d, schema has %d", i, len(t), schema.Len())
		}
		tuples = append(tuples, t)
		off += used
	}
	if off != len(buf) {
		return nil, fmt.Errorf("wire: %d trailing bytes after row chunk", len(buf)-off)
	}
	return tuples, nil
}

// ResultEnd closes a streamed result.
type ResultEnd struct {
	// Rows is the total number of tuples streamed.
	Rows int64
	// SimTime is the simulated 1988-machine response time.
	SimTime time.Duration
	// WallTime is the server's real execution time.
	WallTime time.Duration
}

// EncodeResultEnd encodes e for a ResultEnd frame.
func EncodeResultEnd(e *ResultEnd) []byte {
	buf := make([]byte, 0, 24)
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.Rows))
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.SimTime.Nanoseconds()))
	return binary.BigEndian.AppendUint64(buf, uint64(e.WallTime.Nanoseconds()))
}

// DecodeResultEnd decodes a ResultEnd frame payload.
func DecodeResultEnd(buf []byte) (*ResultEnd, error) {
	if len(buf) != 24 {
		return nil, fmt.Errorf("wire: ResultEnd payload of %d bytes", len(buf))
	}
	return &ResultEnd{
		Rows:     int64(binary.BigEndian.Uint64(buf[:8])),
		SimTime:  time.Duration(int64(binary.BigEndian.Uint64(buf[8:16]))),
		WallTime: time.Duration(int64(binary.BigEndian.Uint64(buf[16:24]))),
	}, nil
}

// ---------- batched execution ----------

// BatchStmt is one statement of a Batch frame: either SQL text or the
// execution of an already-prepared statement with bound values.
type BatchStmt struct {
	// SQL is the statement text (used when Bind is false).
	SQL string
	// Bind selects prepared-statement execution: ID names a statement
	// prepared on this connection and Args carries the bound values.
	Bind bool
	ID   uint32
	Args []value.Value
}

// Batch sub-statement kinds on the wire.
const (
	batchKindSQL  byte = 0
	batchKindBind byte = 1
)

// EncodeBatch builds a Batch payload: a uint32 statement count, then
// per statement a kind byte followed by either a length-prefixed SQL
// string or a BindExec-style id/arity/values block. Callers keep each
// statement's len(Args) within MaxBindArgs.
func EncodeBatch(stmts []BatchStmt) []byte {
	size := 4
	for i := range stmts {
		size += 11 + len(stmts[i].SQL) + 8*len(stmts[i].Args)
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(stmts)))
	for i := range stmts {
		st := &stmts[i]
		if !st.Bind {
			buf = append(buf, batchKindSQL)
			buf = appendString(buf, st.SQL)
			continue
		}
		buf = append(buf, batchKindBind)
		buf = binary.BigEndian.AppendUint32(buf, st.ID)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(st.Args)))
		for _, v := range st.Args {
			buf = value.AppendValue(buf, v)
		}
	}
	return buf
}

// DecodeBatch reads a Batch payload. Decoded statements never alias
// the payload buffer.
func DecodeBatch(payload []byte) ([]BatchStmt, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("wire: truncated Batch header")
	}
	n := int(binary.BigEndian.Uint32(payload))
	off := 4
	// Every encoded statement is at least 5 bytes; never trust the
	// count beyond what the payload could possibly hold.
	stmts := make([]BatchStmt, 0, min(n, (len(payload)-off)/5+1))
	for i := 0; i < n; i++ {
		if off >= len(payload) {
			return nil, fmt.Errorf("wire: truncated Batch statement %d", i)
		}
		kind := payload[off]
		off++
		switch kind {
		case batchKindSQL:
			sql, used, err := decodeString(payload[off:])
			if err != nil {
				return nil, fmt.Errorf("wire: Batch statement %d: %w", i, err)
			}
			off += used
			stmts = append(stmts, BatchStmt{SQL: sql})
		case batchKindBind:
			if len(payload)-off < 6 {
				return nil, fmt.Errorf("wire: truncated Batch bind header at statement %d", i)
			}
			id := binary.BigEndian.Uint32(payload[off:])
			nargs := int(binary.BigEndian.Uint16(payload[off+4:]))
			off += 6
			args := make([]value.Value, 0, min(nargs, len(payload)-off+1))
			for j := 0; j < nargs; j++ {
				v, used, err := value.DecodeValue(payload[off:])
				if err != nil {
					return nil, fmt.Errorf("wire: Batch statement %d value %d: %w", i, j, err)
				}
				off += used
				args = append(args, v)
			}
			stmts = append(stmts, BatchStmt{Bind: true, ID: id, Args: args})
		default:
			return nil, fmt.Errorf("wire: Batch statement %d has unknown kind 0x%02x", i, kind)
		}
	}
	if off != len(payload) {
		return nil, fmt.Errorf("wire: %d trailing bytes after Batch", len(payload)-off)
	}
	return stmts, nil
}
