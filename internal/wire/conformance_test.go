package wire

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/value"
)

// Conformance: every frame type's encoder and decoder are exact
// inverses, so a protocol change that skews one side cannot land
// silently. Each case encodes, decodes, and compares structurally.

func TestPrepareOKRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		id      uint32
		nparams int
	}{
		{0, 0}, {1, 3}, {1<<32 - 1, MaxBindArgs},
	} {
		id, n, err := DecodePrepareOK(EncodePrepareOK(tc.id, tc.nparams))
		if err != nil {
			t.Fatal(err)
		}
		if id != tc.id || n != tc.nparams {
			t.Fatalf("PrepareOK(%d, %d) decoded as (%d, %d)", tc.id, tc.nparams, id, n)
		}
	}
}

func TestClosePreparedRoundTrip(t *testing.T) {
	for _, want := range []uint32{0, 7, 1<<32 - 1} {
		id, err := DecodeClosePrepared(EncodeClosePrepared(want))
		if err != nil {
			t.Fatal(err)
		}
		if id != want {
			t.Fatalf("ClosePrepared(%d) decoded as %d", want, id)
		}
	}
}

// maxArityArgs builds a BindExec argument list at the wire format's
// arity ceiling, cycling through every value kind including NULL.
func maxArityArgs() []value.Value {
	args := make([]value.Value, MaxBindArgs)
	for i := range args {
		switch i % 5 {
		case 0:
			args[i] = value.NewInt(int64(i))
		case 1:
			args[i] = value.NewString("s")
		case 2:
			args[i] = value.Null
		case 3:
			args[i] = value.NewFloat(float64(i) / 3)
		default:
			args[i] = value.NewBool(i%2 == 0)
		}
	}
	return args
}

func TestBindExecRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		id   uint32
		args []value.Value
	}{
		{"no args", 1, nil},
		{"scalars", 42, []value.Value{value.NewInt(-7), value.NewFloat(2.5), value.NewString("ann"), value.NewBool(true)}},
		{"nulls", 3, []value.Value{value.Null, value.Null}},
		{"empty string", 4, []value.Value{value.NewString("")}},
		{"max arity", 1<<32 - 1, maxArityArgs()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			id, args, err := DecodeBindExec(EncodeBindExec(tc.id, tc.args))
			if err != nil {
				t.Fatal(err)
			}
			if id != tc.id {
				t.Fatalf("id = %d, want %d", id, tc.id)
			}
			if len(args) != len(tc.args) {
				t.Fatalf("len(args) = %d, want %d", len(args), len(tc.args))
			}
			for i := range args {
				if args[i].Kind() != tc.args[i].Kind() || args[i].String() != tc.args[i].String() {
					t.Fatalf("arg %d = %s (%s), want %s (%s)",
						i, args[i], args[i].Kind(), tc.args[i], tc.args[i].Kind())
				}
			}
		})
	}
}

// sameRelation compares schema and tuples structurally.
func sameRelation(t *testing.T, got, want *value.Relation) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("relation presence mismatch: got %v, want %v", got, want)
	}
	if got == nil {
		return
	}
	if got.Schema.Len() != want.Schema.Len() {
		t.Fatalf("schema arity %d, want %d", got.Schema.Len(), want.Schema.Len())
	}
	for i := 0; i < want.Schema.Len(); i++ {
		g, w := got.Schema.Column(i), want.Schema.Column(i)
		if g.Name != w.Name || g.Kind != w.Kind {
			t.Fatalf("schema column %d = %v, want %v", i, g, w)
		}
	}
	if !got.SameBag(want) {
		t.Fatalf("tuples differ:\n%v\nwant:\n%v", got, want)
	}
}

func TestResultConformance(t *testing.T) {
	schema := value.MustSchema("id", "INT", "name", "VARCHAR", "score", "FLOAT", "ok", "BOOL")
	full := value.NewRelation(schema)
	full.Append(
		value.NewTuple(value.NewInt(1), value.NewString("ann"), value.NewFloat(1.5), value.NewBool(true)),
		value.NewTuple(value.NewInt(-2), value.NewString(""), value.NewFloat(-0.25), value.NewBool(false)),
		value.NewTuple(value.Null, value.Null, value.Null, value.Null),
	)
	cases := []struct {
		name string
		res  *Result
	}{
		{"ddl message", &Result{Msg: "table t created", SimTime: time.Millisecond, WallTime: time.Microsecond}},
		{"dml affected", &Result{Affected: 17}},
		{"negative affected", &Result{Affected: -1}},
		{"empty relation", &Result{Rel: value.NewRelation(schema)}},
		{"relation with NULLs", &Result{Rel: full, Plan: "Scan(t) est=3", SimTime: 5 * time.Second, WallTime: 3 * time.Minute}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecodeResult(EncodeResult(tc.res))
			if err != nil {
				t.Fatal(err)
			}
			if got.Affected != tc.res.Affected || got.Msg != tc.res.Msg ||
				got.Plan != tc.res.Plan || got.SimTime != tc.res.SimTime || got.WallTime != tc.res.WallTime {
				t.Fatalf("scalar fields differ: got %+v, want %+v", got, tc.res)
			}
			sameRelation(t, got.Rel, tc.res.Rel)
		})
	}
}

func TestExecStreamRoundTrip(t *testing.T) {
	cases := []struct {
		rows, bytes int
		sql         string
	}{
		{0, 0, ""},
		{256, 64 << 10, "SELECT * FROM t"},
		{1, 1, "SELECT 'üñïçødé «quoted»'"},
	}
	for _, tc := range cases {
		rows, nbytes, sql, err := DecodeExecStream(EncodeExecStream(tc.rows, tc.bytes, tc.sql))
		if err != nil {
			t.Fatal(err)
		}
		if rows != tc.rows || nbytes != tc.bytes || sql != tc.sql {
			t.Fatalf("ExecStream(%d, %d, %q) decoded as (%d, %d, %q)",
				tc.rows, tc.bytes, tc.sql, rows, nbytes, sql)
		}
	}
}

func TestResultHeadRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		head *ResultHead
	}{
		{"empty schema", &ResultHead{Schema: value.NewSchema()}},
		{"plain", &ResultHead{Msg: "m", Plan: "Scan(t)\n", Schema: value.MustSchema("id", "INT", "name", "VARCHAR")}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecodeResultHead(EncodeResultHead(tc.head))
			if err != nil {
				t.Fatal(err)
			}
			if got.Msg != tc.head.Msg || got.Plan != tc.head.Plan {
				t.Fatalf("head = %+v, want %+v", got, tc.head)
			}
			if got.Schema.Len() != tc.head.Schema.Len() {
				t.Fatalf("schema arity %d, want %d", got.Schema.Len(), tc.head.Schema.Len())
			}
			for i := 0; i < got.Schema.Len(); i++ {
				g, w := got.Schema.Column(i), tc.head.Schema.Column(i)
				if g != w {
					t.Fatalf("schema column %d = %v, want %v", i, g, w)
				}
			}
		})
	}
}

func TestRowChunkRoundTrip(t *testing.T) {
	schema := value.MustSchema("id", "INT", "name", "VARCHAR")
	cases := []struct {
		name   string
		tuples []value.Tuple
	}{
		{"empty", nil},
		{"one", []value.Tuple{value.NewTuple(value.NewInt(1), value.NewString("a"))}},
		{"nulls", []value.Tuple{
			value.NewTuple(value.Null, value.Null),
			value.NewTuple(value.NewInt(2), value.Null),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecodeRowChunk(EncodeRowChunk(tc.tuples), schema)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.tuples) {
				t.Fatalf("len = %d, want %d", len(got), len(tc.tuples))
			}
			for i := range got {
				if !value.EqualTuples(got[i], tc.tuples[i]) {
					t.Fatalf("tuple %d = %v, want %v", i, got[i], tc.tuples[i])
				}
			}
		})
	}
	// Arity enforcement: a tuple not matching the stream schema is a
	// protocol error, not silently accepted.
	bad := EncodeRowChunk([]value.Tuple{value.NewTuple(value.NewInt(1))})
	if _, err := DecodeRowChunk(bad, schema); err == nil {
		t.Fatal("arity-mismatched chunk decoded without error")
	}
}

func TestResultEndRoundTrip(t *testing.T) {
	want := &ResultEnd{Rows: 1 << 40, SimTime: 98 * time.Millisecond, WallTime: 7 * time.Microsecond}
	got, err := DecodeResultEnd(EncodeResultEnd(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("end = %+v, want %+v", got, want)
	}
}

// TestDecodersRejectTruncation drives every decoder over every prefix
// of a valid encoding: all must error (never panic) on truncated input,
// except the empty-arity cases that are legitimately valid prefixes.
func TestBatchRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		stmts []BatchStmt
	}{
		{"empty", nil},
		{"one sql", []BatchStmt{{SQL: "SELECT 1"}}},
		{"sql with empty text", []BatchStmt{{SQL: ""}}},
		{"one bind no args", []BatchStmt{{Bind: true, ID: 7}}},
		{"bind with values", []BatchStmt{{Bind: true, ID: 1<<32 - 1, Args: []value.Value{
			value.NewInt(-7), value.NewFloat(2.5), value.NewString("ann"), value.NewBool(true), value.Null,
		}}}},
		{"mixed depth 5", []BatchStmt{
			{SQL: "BEGIN"},
			{Bind: true, ID: 3, Args: []value.Value{value.NewInt(1)}},
			{SQL: "UPDATE t SET x = 1 WHERE id = 2"},
			{Bind: true, ID: 3, Args: []value.Value{value.Null}},
			{SQL: "COMMIT"},
		}},
		{"max arity bind", []BatchStmt{{Bind: true, ID: 2, Args: maxArityArgs()}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecodeBatch(EncodeBatch(tc.stmts))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.stmts) {
				t.Fatalf("len = %d, want %d", len(got), len(tc.stmts))
			}
			for i := range got {
				g, w := &got[i], &tc.stmts[i]
				if g.Bind != w.Bind || g.SQL != w.SQL || g.ID != w.ID || len(g.Args) != len(w.Args) {
					t.Fatalf("stmt %d = %+v, want %+v", i, g, w)
				}
				for j := range g.Args {
					if g.Args[j].Kind() != w.Args[j].Kind() || g.Args[j].String() != w.Args[j].String() {
						t.Fatalf("stmt %d arg %d = %s, want %s", i, j, g.Args[j], w.Args[j])
					}
				}
			}
		})
	}
}

func TestDecodeBatchRejectsHostileInput(t *testing.T) {
	cases := map[string][]byte{
		"empty":              nil,
		"short header":       {0, 0, 1},
		"unknown kind":       append(binaryU32(1), 0x7f),
		"count past payload": binaryU32(1 << 30),
		"trailing bytes":     append(EncodeBatch([]BatchStmt{{SQL: "X"}}), 0xee),
		"bind header cut":    append(binaryU32(1), 1, 0, 0),
	}
	for name, buf := range cases {
		if _, err := DecodeBatch(buf); err == nil {
			t.Errorf("%s: hostile Batch decoded without error", name)
		}
	}
}

func binaryU32(n uint32) []byte {
	return []byte{byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
}

func TestDecodersRejectTruncation(t *testing.T) {
	schema := value.MustSchema("id", "INT", "name", "VARCHAR")
	rel := value.NewRelation(schema)
	rel.Append(value.NewTuple(value.NewInt(1), value.NewString("ann")))
	full := map[string][]byte{
		"Hello":         EncodeHello(),
		"PrepareOK":     EncodePrepareOK(1, 2),
		"ClosePrepared": EncodeClosePrepared(1),
		"BindExec":      EncodeBindExec(1, []value.Value{value.NewInt(1), value.NewString("x")}),
		"Result":        EncodeResult(&Result{Rel: rel, Msg: "m", Plan: "p"}),
		"ExecStream":    EncodeExecStream(1, 2, "SELECT"),
		"ResultHead":    EncodeResultHead(&ResultHead{Msg: "m", Plan: "p", Schema: schema}),
		"RowChunk":      EncodeRowChunk(rel.Tuples),
		"ResultEnd":     EncodeResultEnd(&ResultEnd{Rows: 1}),
		"Batch": EncodeBatch([]BatchStmt{
			{SQL: "SELECT 1"},
			{Bind: true, ID: 2, Args: []value.Value{value.NewInt(1)}},
		}),
	}
	decode := map[string]func([]byte) error{
		"Hello":         func(b []byte) error { _, err := DecodeHello(b); return err },
		"PrepareOK":     func(b []byte) error { _, _, err := DecodePrepareOK(b); return err },
		"ClosePrepared": func(b []byte) error { _, err := DecodeClosePrepared(b); return err },
		"BindExec":      func(b []byte) error { _, _, err := DecodeBindExec(b); return err },
		"Result":        func(b []byte) error { _, err := DecodeResult(b); return err },
		"ExecStream":    func(b []byte) error { _, _, _, err := DecodeExecStream(b); return err },
		"ResultHead":    func(b []byte) error { _, err := DecodeResultHead(b); return err },
		"RowChunk":      func(b []byte) error { _, err := DecodeRowChunk(b, schema); return err },
		"ResultEnd":     func(b []byte) error { _, err := DecodeResultEnd(b); return err },
		"Batch":         func(b []byte) error { _, err := DecodeBatch(b); return err },
	}
	// Truncations of these lengths happen to decode as shorter valid
	// payloads (an ExecStream's SQL text may be any suffix length, and
	// a BindExec whose value bytes are cut at a value boundary still
	// fails only on the trailing-byte check — which catches all of
	// them; none are silently *mis*decoded).
	for name, buf := range full {
		fn := decode[name]
		for n := 0; n < len(buf); n++ {
			if name == "ExecStream" && n >= 8 {
				continue // any SQL-text prefix is a valid shorter frame
			}
			if err := fn(buf[:n]); err == nil {
				t.Errorf("%s: decoding %d/%d-byte prefix succeeded", name, n, len(buf))
			}
		}
	}
}
