package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/value"
)

// Replication frame payloads. A replica subscribes with its epoch and
// the durable position of every fragment log it already holds; the
// primary answers with a ReplStatus carrying its epoch, commit
// watermark and table catalog, then ships batches: zero or more
// ReplRecords frames (one per fragment log with news) closed by a
// ReplStatus whose watermark makes the batch visible. Every shipped
// frame is stamped with the primary's epoch so a fenced-off stale
// primary's records are refused by the subscriber.

// Replica roles carried in the HelloOK trailer.
const (
	RolePrimary byte = 'p'
	RoleReplica byte = 'r'
)

// ReplRecords kinds.
const (
	// ReplIncremental appends raw log bytes at a known offset.
	ReplIncremental byte = 0
	// ReplFullSync replaces the fragment wholesale: a checkpoint image
	// plus the full log tail (sent on first contact, or when the
	// primary's log was checkpoint-truncated under the subscriber).
	ReplFullSync byte = 1
)

// ReplPosition is one fragment log's durable replication position.
type ReplPosition struct {
	Log string // fragment log segment name (wal-<table>#<i>)
	Gen uint64 // checkpoint generation the offset is relative to
	Off int64  // bytes of the log already durably applied
}

// ReplSubscribe is the client payload turning a connection into a
// replication stream.
type ReplSubscribe struct {
	Epoch     uint64
	Positions []ReplPosition
}

// EncodeReplSubscribe builds a ReplSubscribe payload.
func EncodeReplSubscribe(s *ReplSubscribe) []byte {
	buf := binary.BigEndian.AppendUint64(nil, s.Epoch)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.Positions)))
	for _, p := range s.Positions {
		buf = appendString(buf, p.Log)
		buf = binary.BigEndian.AppendUint64(buf, p.Gen)
		buf = binary.BigEndian.AppendUint64(buf, uint64(p.Off))
	}
	return buf
}

// DecodeReplSubscribe reads a ReplSubscribe payload.
func DecodeReplSubscribe(payload []byte) (*ReplSubscribe, error) {
	if len(payload) < 12 {
		return nil, fmt.Errorf("wire: truncated ReplSubscribe")
	}
	s := &ReplSubscribe{Epoch: binary.BigEndian.Uint64(payload)}
	n := int(binary.BigEndian.Uint32(payload[8:]))
	off := 12
	for i := 0; i < n; i++ {
		log, used, err := decodeString(payload[off:])
		if err != nil {
			return nil, fmt.Errorf("wire: ReplSubscribe position %d: %w", i, err)
		}
		off += used
		if len(payload) < off+16 {
			return nil, fmt.Errorf("wire: truncated ReplSubscribe position %d", i)
		}
		gen := binary.BigEndian.Uint64(payload[off:])
		o := int64(binary.BigEndian.Uint64(payload[off+8:]))
		off += 16
		s.Positions = append(s.Positions, ReplPosition{Log: log, Gen: gen, Off: o})
	}
	if off != len(payload) {
		return nil, fmt.Errorf("wire: %d trailing bytes after ReplSubscribe", len(payload)-off)
	}
	return s, nil
}

// ReplTableDef ships one table's definition so a fresh replica can
// create identical fragments (and thus identically named fragment
// logs) before records arrive.
type ReplTableDef struct {
	Name       string
	Schema     *value.Schema
	Strategy   byte
	Column     int
	N          int
	Bounds     []value.Value
	PrimaryKey []int
}

// ReplStatus closes one shipped batch (and opens the stream: the first
// status carries the catalog).
type ReplStatus struct {
	Epoch     uint64
	Watermark uint64
	Tables    []ReplTableDef // non-nil only on the first status
}

// EncodeReplStatus builds a ReplStatus payload.
func EncodeReplStatus(st *ReplStatus) []byte {
	buf := binary.BigEndian.AppendUint64(nil, st.Epoch)
	buf = binary.BigEndian.AppendUint64(buf, st.Watermark)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(st.Tables)))
	for _, t := range st.Tables {
		buf = appendString(buf, t.Name)
		buf = value.AppendSchema(buf, t.Schema)
		buf = append(buf, t.Strategy)
		buf = binary.BigEndian.AppendUint32(buf, uint32(t.Column))
		buf = binary.BigEndian.AppendUint32(buf, uint32(t.N))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(t.Bounds)))
		for _, b := range t.Bounds {
			buf = value.AppendValue(buf, b)
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(t.PrimaryKey)))
		for _, k := range t.PrimaryKey {
			buf = binary.BigEndian.AppendUint32(buf, uint32(k))
		}
	}
	return buf
}

// DecodeReplStatus reads a ReplStatus payload.
func DecodeReplStatus(payload []byte) (*ReplStatus, error) {
	if len(payload) < 20 {
		return nil, fmt.Errorf("wire: truncated ReplStatus")
	}
	st := &ReplStatus{
		Epoch:     binary.BigEndian.Uint64(payload),
		Watermark: binary.BigEndian.Uint64(payload[8:]),
	}
	n := int(binary.BigEndian.Uint32(payload[16:]))
	off := 20
	for i := 0; i < n; i++ {
		var t ReplTableDef
		var used int
		var err error
		if t.Name, used, err = decodeString(payload[off:]); err != nil {
			return nil, fmt.Errorf("wire: ReplStatus table %d: %w", i, err)
		}
		off += used
		if t.Schema, used, err = value.DecodeSchema(payload[off:]); err != nil {
			return nil, fmt.Errorf("wire: ReplStatus table %d schema: %w", i, err)
		}
		off += used
		if len(payload) < off+13 {
			return nil, fmt.Errorf("wire: truncated ReplStatus table %d", i)
		}
		t.Strategy = payload[off]
		t.Column = int(binary.BigEndian.Uint32(payload[off+1:]))
		t.N = int(binary.BigEndian.Uint32(payload[off+5:]))
		nb := int(binary.BigEndian.Uint32(payload[off+9:]))
		off += 13
		for j := 0; j < nb; j++ {
			v, used, err := value.DecodeValue(payload[off:])
			if err != nil {
				return nil, fmt.Errorf("wire: ReplStatus table %d bound %d: %w", i, j, err)
			}
			off += used
			t.Bounds = append(t.Bounds, v)
		}
		if len(payload) < off+4 {
			return nil, fmt.Errorf("wire: truncated ReplStatus table %d pk", i)
		}
		nk := int(binary.BigEndian.Uint32(payload[off:]))
		off += 4
		if nk > (len(payload)-off)/4 {
			return nil, fmt.Errorf("wire: ReplStatus table %d: %d pk columns exceed payload", i, nk)
		}
		for j := 0; j < nk; j++ {
			t.PrimaryKey = append(t.PrimaryKey, int(binary.BigEndian.Uint32(payload[off:])))
			off += 4
		}
		st.Tables = append(st.Tables, t)
	}
	if off != len(payload) {
		return nil, fmt.Errorf("wire: %d trailing bytes after ReplStatus", len(payload)-off)
	}
	return st, nil
}

// ReplRecords ships news for one fragment log: raw WAL bytes appended
// at Off (ReplIncremental) or a full resync image (ReplFullSync, with
// Ckpt holding the checkpoint segment and Data the whole log).
type ReplRecords struct {
	Epoch uint64
	Log   string
	Kind  byte
	Gen   uint64 // checkpoint generation Data's offsets are relative to
	Off   int64  // ReplIncremental: offset at which Data begins
	Ckpt  []byte // ReplFullSync: checkpoint segment image
	Data  []byte // raw WAL record bytes
}

// EncodeReplRecords builds a ReplRecords payload.
func EncodeReplRecords(r *ReplRecords) []byte {
	buf := binary.BigEndian.AppendUint64(nil, r.Epoch)
	buf = appendString(buf, r.Log)
	buf = append(buf, r.Kind)
	buf = binary.BigEndian.AppendUint64(buf, r.Gen)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Off))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Ckpt)))
	buf = append(buf, r.Ckpt...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Data)))
	return append(buf, r.Data...)
}

// DecodeReplRecords reads a ReplRecords payload.
func DecodeReplRecords(payload []byte) (*ReplRecords, error) {
	if len(payload) < 8 {
		return nil, fmt.Errorf("wire: truncated ReplRecords")
	}
	r := &ReplRecords{Epoch: binary.BigEndian.Uint64(payload)}
	off := 8
	log, used, err := decodeString(payload[off:])
	if err != nil {
		return nil, fmt.Errorf("wire: ReplRecords log name: %w", err)
	}
	r.Log = log
	off += used
	if len(payload) < off+21 {
		return nil, fmt.Errorf("wire: truncated ReplRecords header")
	}
	r.Kind = payload[off]
	r.Gen = binary.BigEndian.Uint64(payload[off+1:])
	r.Off = int64(binary.BigEndian.Uint64(payload[off+9:]))
	nc := int(binary.BigEndian.Uint32(payload[off+17:]))
	off += 21
	if nc > len(payload)-off {
		return nil, fmt.Errorf("wire: ReplRecords checkpoint of %d bytes exceeds payload", nc)
	}
	r.Ckpt = append([]byte(nil), payload[off:off+nc]...)
	off += nc
	if len(payload) < off+4 {
		return nil, fmt.Errorf("wire: truncated ReplRecords data header")
	}
	nd := int(binary.BigEndian.Uint32(payload[off:]))
	off += 4
	if nd != len(payload)-off {
		return nil, fmt.Errorf("wire: ReplRecords data of %d bytes in %d-byte payload", nd, len(payload)-off)
	}
	r.Data = append([]byte(nil), payload[off:]...)
	return r, nil
}

// HelloExtra is the optional HelloOK trailer a replication-aware
// server appends after the banner: its role, fencing epoch, and (for
// replicas) the primary's address for write redirects. Pre-replication
// clients stop reading after the banner; pre-replication servers send
// no trailer and DecodeHelloExtra reports a default primary role.
type HelloExtra struct {
	Role    byte
	Epoch   uint64
	Primary string
}

// AppendHelloExtra appends the role trailer to a HelloOK payload.
func AppendHelloExtra(buf []byte, ex *HelloExtra) []byte {
	buf = append(buf, ex.Role)
	buf = binary.BigEndian.AppendUint64(buf, ex.Epoch)
	return appendString(buf, ex.Primary)
}

// DecodeHelloOKExtra reads the role trailer of a full HelloOK payload
// ([version][banner len][banner][trailer...]), skipping past the
// banner itself.
func DecodeHelloOKExtra(payload []byte) (*HelloExtra, error) {
	if len(payload) < 3 {
		return nil, fmt.Errorf("wire: truncated HelloOK payload")
	}
	bannerLen := int(payload[1])<<8 | int(payload[2])
	off := 3 + bannerLen
	if off > len(payload) {
		return nil, fmt.Errorf("wire: HelloOK banner of %d bytes exceeds payload", bannerLen)
	}
	return DecodeHelloExtra(payload, off)
}

// DecodeHelloExtra reads the role trailer from a HelloOK payload,
// given the offset where the banner ended. A payload without a
// trailer decodes as a primary at epoch 0.
func DecodeHelloExtra(payload []byte, off int) (*HelloExtra, error) {
	if off >= len(payload) {
		return &HelloExtra{Role: RolePrimary}, nil
	}
	if len(payload) < off+9 {
		return nil, fmt.Errorf("wire: truncated HelloOK role trailer")
	}
	ex := &HelloExtra{Role: payload[off], Epoch: binary.BigEndian.Uint64(payload[off+1:])}
	primary, _, err := decodeString(payload[off+9:])
	if err != nil {
		return nil, fmt.Errorf("wire: HelloOK primary address: %w", err)
	}
	ex.Primary = primary
	return ex, nil
}
