package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/value"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("SELECT 1"), bytes.Repeat([]byte{0xab}, 4096)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		typ, got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != byte(i+1) {
			t.Fatalf("frame %d: type = %#x", i, typ)
		}
		if !bytes.Equal(got, p) && len(got)+len(p) > 0 {
			t.Fatalf("frame %d: payload mismatch (%d vs %d bytes)", i, len(got), len(p))
		}
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeExec, bytes.Repeat([]byte{'x'}, 100)); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadFrame(&buf, 50)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameRejectsDeclaredGiantWithoutAllocating(t *testing.T) {
	// A malicious header declaring 2 GiB must be refused from the 5
	// header bytes alone.
	hdr := make([]byte, 5)
	binary.BigEndian.PutUint32(hdr, 2<<30)
	hdr[4] = TypeExec
	_, _, err := ReadFrame(bytes.NewReader(hdr), DefaultMaxFrame)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameZeroLength(t *testing.T) {
	hdr := make([]byte, 5)
	_, _, err := ReadFrame(bytes.NewReader(hdr[:5]), 0)
	if err == nil || !strings.Contains(err.Error(), "zero-length") {
		t.Fatalf("err = %v, want zero-length payload error", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeExec, []byte("SELECT * FROM emp")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(full[:cut]), 0)
		if err == nil {
			t.Fatalf("cut at %d bytes: no error", cut)
		}
		if cut > 5 && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d bytes: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	ver, err := DecodeHello(EncodeHello())
	if err != nil {
		t.Fatal(err)
	}
	if ver != Version {
		t.Fatalf("version = %d", ver)
	}
	bad := [][]byte{nil, []byte("PRSM"), []byte("XXXX\x01"), []byte("PRSM\x01\x00")}
	for _, p := range bad {
		if _, err := DecodeHello(p); err == nil {
			t.Fatalf("DecodeHello(%q) accepted", p)
		}
	}
}

func TestHelloCredsRoundTrip(t *testing.T) {
	ver, creds, err := DecodeHelloCreds(EncodeHelloCreds("acme", "s3cret"))
	if err != nil {
		t.Fatal(err)
	}
	if ver != Version || creds == nil || creds.Tenant != "acme" || creds.Secret != "s3cret" {
		t.Fatalf("decoded ver=%d creds=%+v", ver, creds)
	}
	// A legacy Hello decodes cleanly with nil creds.
	ver, creds, err = DecodeHelloCreds(EncodeHello())
	if err != nil {
		t.Fatal(err)
	}
	if ver != Version || creds != nil {
		t.Fatalf("legacy decode ver=%d creds=%+v, want nil creds", ver, creds)
	}
	// Truncated credential trailers must error, never panic.
	full := EncodeHelloCreds("acme", "s3cret")
	for n := len(Magic) + 2; n < len(full); n++ {
		if _, _, err := DecodeHelloCreds(full[:n]); err == nil {
			t.Fatalf("truncated creds (%d bytes) accepted", n)
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	rel := value.NewRelation(value.MustSchema("id", "INTEGER", "name", "VARCHAR", "score", "FLOAT"))
	rel.Append(
		value.NewTuple(value.NewInt(1), value.NewString("ann"), value.NewFloat(0.5)),
		value.NewTuple(value.NewInt(2), value.NewString(""), value.Null),
	)
	cases := []*Result{
		{Msg: "table emp created"},
		{Affected: -3},
		{Affected: 42, SimTime: 17 * time.Millisecond, WallTime: time.Microsecond},
		{Rel: rel, Plan: "Project(id)\n  Scan(emp)"},
		{Msg: "ok", QueueTime: 350 * time.Microsecond},
		{Rel: rel, QueueTime: 2 * time.Millisecond, WallTime: time.Millisecond},
	}
	for i, in := range cases {
		out, err := DecodeResult(EncodeResult(in))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if out.Affected != in.Affected || out.Msg != in.Msg || out.Plan != in.Plan ||
			out.SimTime != in.SimTime || out.WallTime != in.WallTime ||
			out.QueueTime != in.QueueTime {
			t.Fatalf("case %d: got %+v want %+v", i, out, in)
		}
		if (out.Rel == nil) != (in.Rel == nil) {
			t.Fatalf("case %d: rel presence mismatch", i)
		}
		if in.Rel != nil {
			if !value.EqualSchema(out.Rel.Schema, in.Rel.Schema) {
				t.Fatalf("case %d: schema %v != %v", i, out.Rel.Schema, in.Rel.Schema)
			}
			if !out.Rel.SameSet(in.Rel) || out.Rel.Len() != in.Rel.Len() {
				t.Fatalf("case %d: tuples differ", i)
			}
		}
	}
}

// TestResultQueueTimeCompat pins the wire compatibility contract: a
// Result that never queued encodes without the queue flag, so its bytes
// are identical to what pre-admission servers emitted.
func TestResultQueueTimeCompat(t *testing.T) {
	enc := EncodeResult(&Result{Msg: "ok", Affected: 1})
	if enc[0]&resultHasQueue != 0 {
		t.Fatalf("zero QueueTime set the queue flag (flags=0x%02x)", enc[0])
	}
	if enc2 := EncodeResult(&Result{Msg: "ok", Affected: 1, QueueTime: time.Millisecond}); len(enc2) != len(enc)+8 {
		t.Fatalf("queued encoding adds %d bytes, want 8", len(enc2)-len(enc))
	}
}

// TestDecodeResultMalformed feeds every truncation of a valid encoding
// plus corrupted bodies; decoding must error, never panic.
func TestDecodeResultMalformed(t *testing.T) {
	rel := value.NewRelation(value.MustSchema("id", "INTEGER"))
	rel.Append(value.NewTuple(value.NewInt(7)))
	full := EncodeResult(&Result{Rel: rel, Msg: "ok", Plan: "Scan"})
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeResult(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage after a complete result.
	if _, err := DecodeResult(append(append([]byte{}, full...), 0xff)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	// A tuple value with an invalid kind tag. The last tuple encodes as
	// uint16 arity, a kind byte, then the 8-byte int payload — the kind
	// byte sits 9 bytes from the end.
	bad := append([]byte{}, full...)
	bad[len(bad)-9] = 0x7f
	if _, err := DecodeResult(bad); err == nil {
		t.Fatal("corrupted tuple accepted")
	}
}
