package wire

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/value"
)

// Fuzz targets for every hand-rolled binary decoder of the wire
// protocol. Each target asserts two properties on arbitrary input:
// decoders never panic, and a successful decode re-encodes to an
// equivalent value (where the format is canonical). CI runs each target
// for a short -fuzztime on every push; `go test` replays the corpus.

// fuzzSchema is the schema used to validate fuzzed row chunks.
var fuzzSchema = value.MustSchema("id", "INT", "name", "VARCHAR", "ok", "BOOL")

// sampleResult builds a representative Result for seed corpora.
func sampleResult() *Result {
	rel := value.NewRelation(fuzzSchema)
	rel.Append(
		value.NewTuple(value.NewInt(1), value.NewString("ann"), value.NewBool(true)),
		value.NewTuple(value.Null, value.NewString(""), value.Null),
	)
	return &Result{
		Rel:      rel,
		Affected: 3,
		Msg:      "ok",
		Plan:     "Scan(t)",
		SimTime:  15 * time.Millisecond,
		WallTime: 40 * time.Microsecond,
	}
}

func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, TypeExec, []byte("SELECT 1"))
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 1, TypeHello})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0})       // huge declared length
	f.Add([]byte{0, 0, 0, 0, 0})                   // zero-length payload
	f.Add([]byte{0, 0, 0, 10, TypeExec, 'S', 'E'}) // truncated body
	f.Fuzz(func(t *testing.T, data []byte) {
		const limit = 1 << 16
		typ, payload, err := ReadFrame(bytes.NewReader(data), limit)
		if err != nil {
			return
		}
		if len(payload)+1 > limit {
			t.Fatalf("ReadFrame returned %d payload bytes past the %d limit", len(payload), limit)
		}
		// A successful read must round-trip through WriteFrame.
		var out bytes.Buffer
		if err := WriteFrame(&out, typ, payload); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		typ2, payload2, err := ReadFrame(&out, limit)
		if err != nil || typ2 != typ || !bytes.Equal(payload, payload2) {
			t.Fatalf("round trip mismatch: %v", err)
		}
	})
}

func FuzzDecodeHello(f *testing.F) {
	f.Add(EncodeHello())
	f.Add([]byte("PRSM"))
	f.Add([]byte("PRSX\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ver, err := DecodeHello(data)
		if err != nil {
			return
		}
		if got := append([]byte(Magic), byte(ver)); !bytes.Equal(got, data) {
			t.Fatalf("decoded hello %d does not re-encode to input", ver)
		}
	})
}

func FuzzDecodePrepareOK(f *testing.F) {
	f.Add(EncodePrepareOK(7, 3))
	f.Add([]byte{0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, n, err := DecodePrepareOK(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodePrepareOK(id, n), data) {
			t.Fatalf("PrepareOK(%d, %d) does not re-encode to input", id, n)
		}
	})
}

func FuzzDecodeClosePrepared(f *testing.F) {
	f.Add(EncodeClosePrepared(42))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, err := DecodeClosePrepared(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeClosePrepared(id), data) {
			t.Fatalf("ClosePrepared(%d) does not re-encode to input", id)
		}
	})
}

func FuzzDecodeBindExec(f *testing.F) {
	f.Add(EncodeBindExec(1, []value.Value{value.NewInt(7), value.NewString("x"), value.Null}))
	f.Add(EncodeBindExec(0, nil))
	f.Add([]byte{0, 0, 0, 1, 0xff, 0xff}) // arity 65535, no values
	f.Fuzz(func(t *testing.T, data []byte) {
		id, args, err := DecodeBindExec(data)
		if err != nil {
			return
		}
		// Value payloads are not byte-canonical (e.g. any non-zero bool
		// byte decodes to true); assert the canonical fixed point: one
		// re-encode round trip, then stable bytes.
		enc := EncodeBindExec(id, args)
		id2, args2, err := DecodeBindExec(enc)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !bytes.Equal(EncodeBindExec(id2, args2), enc) {
			t.Fatalf("BindExec(%d, %d args) encoding is not a fixed point", id, len(args))
		}
	})
}

func FuzzDecodeBatch(f *testing.F) {
	f.Add(EncodeBatch([]BatchStmt{{SQL: "SELECT 1"}}))
	f.Add(EncodeBatch([]BatchStmt{
		{SQL: "BEGIN"},
		{Bind: true, ID: 3, Args: []value.Value{value.NewInt(7), value.NewString("x"), value.Null}},
		{SQL: "COMMIT"},
	}))
	f.Add(EncodeBatch(nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0})             // hostile count
	f.Add([]byte{0, 0, 0, 1, 1, 0, 0, 0, 1, 0xff, 0xff}) // bind, arity 65535, no values
	f.Fuzz(func(t *testing.T, data []byte) {
		stmts, err := DecodeBatch(data)
		if err != nil {
			return
		}
		// Value payloads are not byte-canonical; assert the canonical
		// fixed point after one re-encode round trip.
		enc := EncodeBatch(stmts)
		stmts2, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !bytes.Equal(EncodeBatch(stmts2), enc) {
			t.Fatalf("Batch of %d statements is not an encoding fixed point", len(stmts))
		}
	})
}

func FuzzDecodeResult(f *testing.F) {
	f.Add(EncodeResult(sampleResult()))
	f.Add(EncodeResult(&Result{Msg: "table t created"}))
	f.Add(EncodeResult(&Result{Rel: value.NewRelation(fuzzSchema)}))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResult(data)
		if err != nil {
			return
		}
		// Value payloads are not byte-canonical; assert the fixed point.
		enc := EncodeResult(r)
		r2, err := DecodeResult(enc)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !bytes.Equal(EncodeResult(r2), enc) {
			t.Fatalf("result encoding is not a fixed point")
		}
	})
}

func FuzzDecodeExecStream(f *testing.F) {
	f.Add(EncodeExecStream(256, 64<<10, "SELECT * FROM t"))
	f.Add(EncodeExecStream(0, 0, ""))
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, bytes_, sql, err := DecodeExecStream(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeExecStream(rows, bytes_, sql), data) {
			t.Fatalf("ExecStream(%d, %d, %q) does not re-encode to input", rows, bytes_, sql)
		}
	})
}

func FuzzDecodeResultHead(f *testing.F) {
	f.Add(EncodeResultHead(&ResultHead{Plan: "Scan(t)", Schema: fuzzSchema}))
	f.Add(EncodeResultHead(&ResultHead{Schema: value.NewSchema()}))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeResultHead(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeResultHead(h), data) {
			t.Fatalf("decoded result head does not re-encode to input")
		}
	})
}

func FuzzDecodeRowChunk(f *testing.F) {
	f.Add(EncodeRowChunk([]value.Tuple{
		value.NewTuple(value.NewInt(1), value.NewString("ann"), value.NewBool(true)),
		value.NewTuple(value.Null, value.NewString(""), value.Null),
	}))
	f.Add(EncodeRowChunk(nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0}) // hostile count
	f.Fuzz(func(t *testing.T, data []byte) {
		tuples, err := DecodeRowChunk(data, fuzzSchema)
		if err != nil {
			return
		}
		for i, tp := range tuples {
			if len(tp) != fuzzSchema.Len() {
				t.Fatalf("tuple %d has arity %d past schema validation", i, len(tp))
			}
		}
		// Value payloads are not byte-canonical; assert the fixed point.
		enc := EncodeRowChunk(tuples)
		tuples2, err := DecodeRowChunk(enc, fuzzSchema)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !bytes.Equal(EncodeRowChunk(tuples2), enc) {
			t.Fatalf("row chunk encoding is not a fixed point")
		}
	})
}

func FuzzDecodeResultEnd(f *testing.F) {
	f.Add(EncodeResultEnd(&ResultEnd{Rows: 12345, SimTime: time.Second, WallTime: time.Millisecond}))
	f.Add(make([]byte, 23))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeResultEnd(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeResultEnd(e), data) {
			t.Fatalf("decoded result end does not re-encode to input")
		}
	})
}
