package wire

import "testing"

func TestErrorCodedRoundTrip(t *testing.T) {
	for _, code := range []byte{ErrCodeGeneric, ErrCodeRetryable, ErrCodeDeadline} {
		payload := EncodeError(code, "txn: deadlock detected")
		if payload[0] != 0x00 {
			t.Fatalf("coded payload must open with NUL, got 0x%02x", payload[0])
		}
		gotCode, gotMsg := DecodeError(payload)
		if gotCode != code || gotMsg != "txn: deadlock detected" {
			t.Errorf("DecodeError = (0x%02x, %q), want (0x%02x, ...)", gotCode, gotMsg, code)
		}
	}
}

func TestErrorLegacyDecode(t *testing.T) {
	// A payload from a pre-coded server is bare text: it must decode as
	// a generic error with the full text preserved.
	code, msg := DecodeError([]byte("server: something broke"))
	if code != ErrCodeGeneric || msg != "server: something broke" {
		t.Errorf("legacy decode = (0x%02x, %q)", code, msg)
	}
	// Degenerate payloads stay safe.
	if code, msg := DecodeError(nil); code != ErrCodeGeneric || msg != "" {
		t.Errorf("empty decode = (0x%02x, %q)", code, msg)
	}
	if code, msg := DecodeError([]byte{0x00}); code != ErrCodeGeneric || msg != "\x00" {
		t.Errorf("single-NUL decode = (0x%02x, %q)", code, msg)
	}
}

func TestRetryableCode(t *testing.T) {
	if RetryableCode(ErrCodeGeneric) {
		t.Error("generic must not be retryable")
	}
	if !RetryableCode(ErrCodeRetryable) || !RetryableCode(ErrCodeDeadline) {
		t.Error("retryable/deadline codes must be retryable")
	}
	// An overload shed ran nothing — safe to retry elsewhere or later.
	if !RetryableCode(ErrCodeOverloaded) {
		t.Error("overloaded must be retryable")
	}
	// Bad credentials or a missing grant cannot succeed on retry.
	if RetryableCode(ErrCodeAuth) {
		t.Error("auth must not be retryable")
	}
}
