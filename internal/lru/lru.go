// Package lru provides the small least-recently-used map shared by the
// engine's plan cache and the server's per-connection prepared-statement
// registry. It is deliberately not synchronized: each owner brings the
// locking discipline its context requires (a mutex for the engine-wide
// cache, nothing for a per-connection registry touched by one goroutine).
package lru

import "container/list"

// Cache is an LRU map from K to V with a fixed capacity; inserting
// beyond capacity evicts the least-recently-used entry.
type Cache[K comparable, V any] struct {
	cap     int
	order   *list.List // of entry[K, V], front = most recently used
	entries map[K]*list.Element
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New builds a cache holding at most capacity entries.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	return &Cache[K, V]{cap: capacity, order: list.New(), entries: map[K]*list.Element{}}
}

// Get returns the value for key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	el, ok := c.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(entry[K, V]).val, true
}

// Put inserts or refreshes key, evicting the least-recently-used entry
// beyond capacity.
func (c *Cache[K, V]) Put(key K, val V) {
	if el, ok := c.entries[key]; ok {
		el.Value = entry[K, V]{key: key, val: val}
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(entry[K, V]{key: key, val: val})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(entry[K, V]).key)
	}
}

// Delete removes key, reporting whether it was present.
func (c *Cache[K, V]) Delete(key K) bool {
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.entries, key)
	return true
}

// Len reports the number of live entries.
func (c *Cache[K, V]) Len() int { return c.order.Len() }
