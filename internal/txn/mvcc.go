package txn

import "errors"

// Commit timestamps and snapshot management for multiversion reads.
//
// Writers still serialize per fragment through the strict-2PL lock
// manager, but readers no longer lock at all: a read pins a snapshot
// timestamp and sees exactly the versions committed at or before it.
// The Manager owns the commit clock. A committing transaction with
// participants allocates the next timestamp (beginCommit), applies its
// versions, and only then lets the watermark advance past it
// (endCommit). Snapshots always pin the watermark, so a snapshot is a
// consistent prefix of the commit order — no reader can observe a
// half-applied commit.

// ErrConflict is returned when first-committer-wins validation fails: a
// transaction tried to overwrite a row version committed after its
// snapshot. The transaction is aborted; the client should retry it.
var ErrConflict = errors.New("txn: write-write conflict (retry transaction)")

// IsRetryable reports whether err is a transient transaction failure
// (deadlock victim, snapshot write conflict, lock-wait timeout, or
// abort) that a client should respond to by retrying the whole
// transaction. An ErrIndeterminate commit is NOT retryable: the
// transaction may have committed, and re-running it could apply its
// effects twice.
func IsRetryable(err error) bool {
	if errors.Is(err, ErrIndeterminate) {
		return false
	}
	return errors.Is(err, ErrConflict) || errors.Is(err, ErrDeadlock) ||
		errors.Is(err, ErrAborted) || errors.Is(err, ErrTimeout)
}

// beginCommit allocates the next commit timestamp and registers it as
// in-flight: the watermark cannot pass it until endCommit is called, so
// no snapshot taken meanwhile can observe a later commit without also
// observing this one.
func (m *Manager) beginCommit() uint64 {
	m.tsMu.Lock()
	defer m.tsMu.Unlock()
	m.lastTS++
	ts := m.lastTS
	m.inflight[ts] = struct{}{}
	return ts
}

// endCommit deregisters a commit timestamp (after the commit's versions
// are applied, or after the commit aborted) and advances the watermark
// to the highest timestamp with no earlier in-flight commit.
func (m *Manager) endCommit(ts uint64) {
	m.tsMu.Lock()
	defer m.tsMu.Unlock()
	delete(m.inflight, ts)
	wm := m.lastTS
	for inflight := range m.inflight {
		if inflight-1 < wm {
			wm = inflight - 1
		}
	}
	m.watermark = wm
}

// Watermark returns the newest timestamp whose commit (and every
// earlier commit) is fully applied. Snapshots pin this value.
func (m *Manager) Watermark() uint64 {
	m.tsMu.Lock()
	defer m.tsMu.Unlock()
	return m.watermark
}

// PinSnapshot pins the current watermark as a snapshot timestamp and
// returns it with a release func. While pinned, the garbage-collection
// horizon cannot pass the snapshot, so every version it can see stays
// materialized. Release is idempotent.
func (m *Manager) PinSnapshot() (uint64, func()) {
	m.tsMu.Lock()
	ts := m.watermark
	m.pins[ts]++
	m.tsMu.Unlock()
	released := false
	return ts, func() {
		m.tsMu.Lock()
		defer m.tsMu.Unlock()
		if released {
			return
		}
		released = true
		if m.pins[ts]--; m.pins[ts] <= 0 {
			delete(m.pins, ts)
		}
	}
}

// Horizon returns the garbage-collection horizon: versions whose end
// timestamp is at or before it are invisible to every current and
// future snapshot and may be physically reclaimed.
func (m *Manager) Horizon() uint64 {
	m.tsMu.Lock()
	defer m.tsMu.Unlock()
	h := m.watermark
	for ts := range m.pins {
		if ts < h {
			h = ts
		}
	}
	return h
}

// AdvanceTo moves the commit clock and watermark forward to at least ts.
// Recovery calls this so timestamps allocated after a restart never
// collide with timestamps already stamped on recovered versions.
func (m *Manager) AdvanceTo(ts uint64) {
	m.tsMu.Lock()
	defer m.tsMu.Unlock()
	if ts > m.lastTS {
		m.lastTS = ts
	}
	if ts > m.watermark && len(m.inflight) == 0 {
		m.watermark = ts
	}
}
