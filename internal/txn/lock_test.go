package txn

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestSharedLocksCoexist(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, "f", Shared); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, "f", Shared); err != nil {
		t.Fatal(err)
	}
	holders := lm.Holders("f")
	if len(holders) != 2 {
		t.Errorf("holders = %v", holders)
	}
}

func TestExclusiveBlocks(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, "f", Exclusive); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- lm.Acquire(2, "f", Shared) }()
	select {
	case <-acquired:
		t.Fatal("S granted while X held")
	case <-time.After(50 * time.Millisecond):
	}
	lm.ReleaseAll(1)
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("lock never granted after release")
	}
}

func TestReacquireIsIdempotent(t *testing.T) {
	lm := NewLockManager()
	for i := 0; i < 3; i++ {
		if err := lm.Acquire(1, "f", Shared); err != nil {
			t.Fatal(err)
		}
	}
	if err := lm.Acquire(1, "f", Exclusive); err != nil {
		t.Fatal(err) // sole-holder upgrade
	}
	if err := lm.Acquire(1, "f", Shared); err != nil {
		t.Fatal(err) // X already covers S
	}
	if got := lm.HeldBy(1)["f"]; got != Exclusive {
		t.Errorf("mode after upgrade = %v", got)
	}
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, "f", Shared); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, "f", Shared); err != nil {
		t.Fatal(err)
	}
	upgraded := make(chan error, 1)
	go func() { upgraded <- lm.Acquire(1, "f", Exclusive) }()
	select {
	case <-upgraded:
		t.Fatal("upgrade granted while another reader holds S")
	case <-time.After(50 * time.Millisecond):
	}
	lm.ReleaseAll(2)
	select {
	case err := <-upgraded:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("upgrade never granted")
	}
}

func TestDeadlockDetected(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, "a", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, "b", Exclusive); err != nil {
		t.Fatal(err)
	}
	// 1 waits for b (held by 2).
	firstWait := make(chan error, 1)
	go func() { firstWait <- lm.Acquire(1, "b", Exclusive) }()
	time.Sleep(50 * time.Millisecond)
	// 2 requests a (held by 1): cycle — must be rejected immediately.
	err := lm.Acquire(2, "a", Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}
	// Victim releases; waiter 1 proceeds.
	lm.ReleaseAll(2)
	select {
	case err := <-firstWait:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("survivor never granted")
	}
}

func TestThreeWayDeadlock(t *testing.T) {
	lm := NewLockManager()
	for i := ID(1); i <= 3; i++ {
		if err := lm.Acquire(i, string(rune('a'+i-1)), Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	// 1→b, 2→c block; 3→a closes the cycle.
	go lm.Acquire(1, "b", Exclusive)
	time.Sleep(30 * time.Millisecond)
	go lm.Acquire(2, "c", Exclusive)
	time.Sleep(30 * time.Millisecond)
	err := lm.Acquire(3, "a", Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected 3-way deadlock, got %v", err)
	}
	lm.ReleaseAll(1)
	lm.ReleaseAll(2)
	lm.ReleaseAll(3)
}

func TestReleaseAllCancelsWaiters(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, "f", Exclusive); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- lm.Acquire(2, "f", Exclusive) }()
	time.Sleep(30 * time.Millisecond)
	// Txn 2 aborts while waiting: its queued request must be cancelled.
	lm.ReleaseAll(2)
	select {
	case err := <-got:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("cancelled waiter got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled waiter still blocked")
	}
	// And the lock is still held by 1.
	if _, ok := lm.Holders("f")[1]; !ok {
		t.Error("holder lost")
	}
}

func TestFIFOWithSharedBatching(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, "f", Exclusive); err != nil {
		t.Fatal(err)
	}
	order := make(chan ID, 3)
	var wg sync.WaitGroup
	enqueue := func(tx ID, mode LockMode) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := lm.Acquire(tx, "f", mode); err == nil {
				order <- tx
			}
		}()
		time.Sleep(30 * time.Millisecond) // deterministic queue order
	}
	enqueue(2, Shared)
	enqueue(3, Shared)
	enqueue(4, Exclusive)
	lm.ReleaseAll(1)
	// 2 and 3 (shared batch) should be granted; 4 still waits.
	deadline := time.After(time.Second)
	got := map[ID]bool{}
	for i := 0; i < 2; i++ {
		select {
		case tx := <-order:
			got[tx] = true
		case <-deadline:
			t.Fatal("shared batch not granted")
		}
	}
	if !got[2] || !got[3] {
		t.Fatalf("granted %v, want {2,3}", got)
	}
	select {
	case tx := <-order:
		t.Fatalf("tx %d granted too early", tx)
	case <-time.After(50 * time.Millisecond):
	}
	lm.ReleaseAll(2)
	lm.ReleaseAll(3)
	select {
	case tx := <-order:
		if tx != 4 {
			t.Fatalf("expected 4, got %d", tx)
		}
	case <-time.After(time.Second):
		t.Fatal("exclusive waiter never granted")
	}
	wg.Wait()
}

func TestManyConcurrentLockers(t *testing.T) {
	lm := NewLockManager()
	var wg sync.WaitGroup
	var counter int64
	var cmu sync.Mutex
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(tx ID) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := lm.Acquire(tx, "shared-resource", Exclusive); err != nil {
					continue // deadlock impossible here, but be safe
				}
				cmu.Lock()
				counter++
				cmu.Unlock()
				lm.ReleaseAll(tx)
			}
		}(ID(i + 1))
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("lock manager livelocked")
	}
	if counter != 32*20 {
		t.Errorf("critical section entered %d times, want %d", counter, 640)
	}
}

// TestSharedDoesNotBargePastQueuedExclusive pins the no-barging queue
// discipline: a shared request arriving while an exclusive request is
// queued must wait behind it. Barging would admit a holder the queued
// waiter's waits-for edges never recorded, making deadlocks through it
// undetectable (the hang found by core's concurrent-session stress test).
func TestSharedDoesNotBargePastQueuedExclusive(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, "f", Shared); err != nil {
		t.Fatal(err)
	}
	xGranted := make(chan error, 1)
	go func() { xGranted <- lm.Acquire(2, "f", Exclusive) }()
	waitForQueued(t, lm, "f", 1)

	sGranted := make(chan error, 1)
	go func() { sGranted <- lm.Acquire(3, "f", Shared) }()
	select {
	case <-sGranted:
		t.Fatal("S granted past a queued X waiter")
	case <-time.After(50 * time.Millisecond):
	}

	lm.ReleaseAll(1)
	if err := <-xGranted; err != nil {
		t.Fatal(err)
	}
	// The late S request is still behind the exclusive holder.
	select {
	case <-sGranted:
		t.Fatal("S granted while X held")
	case <-time.After(50 * time.Millisecond):
	}
	lm.ReleaseAll(2)
	if err := <-sGranted; err != nil {
		t.Fatal(err)
	}
}

// TestUpgradeBypassesQueue pins the converse: an S→X upgrade must NOT
// wait behind a queued exclusive request (which cannot be granted while
// the upgrader still holds S) — it parks at the queue front instead.
func TestUpgradeBypassesQueue(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, "f", Shared); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, "f", Shared); err != nil {
		t.Fatal(err)
	}
	xGranted := make(chan error, 1)
	go func() { xGranted <- lm.Acquire(3, "f", Exclusive) }()
	waitForQueued(t, lm, "f", 1)

	upGranted := make(chan error, 1)
	go func() { upGranted <- lm.Acquire(1, "f", Exclusive) }()
	select {
	case err := <-upGranted:
		t.Fatalf("upgrade granted while another S held (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}

	lm.ReleaseAll(2)
	if err := <-upGranted; err != nil {
		t.Fatalf("upgrade after S drain: %v", err)
	}
	select {
	case <-xGranted:
		t.Fatal("X granted while upgraded X held")
	case <-time.After(50 * time.Millisecond):
	}
	lm.ReleaseAll(1)
	if err := <-xGranted; err != nil {
		t.Fatal(err)
	}
}

// waitForQueued spins until n waiters are queued on resource.
func waitForQueued(t *testing.T, lm *LockManager, resource string, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if lm.queuedOn(resource) >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("never saw %d queued waiters on %q", n, resource)
}
