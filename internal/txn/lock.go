// Package txn provides the Global Data Handler's transaction machinery
// (paper §2.2: "the transaction manager, the concurrency control unit"):
// a strict two-phase-locking lock manager with waits-for deadlock
// detection, transaction lifecycle management, and a two-phase-commit
// coordinator that drives the One-Fragment Managers as participants.
//
// Lock granularity is the fragment: the paper notes queries proceed "in
// parallel, except for accesses to the same copy of base fragments of
// the database" — fragments are exactly the unit of conflict.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ID identifies a transaction.
type ID uint64

// LockMode is the strength of a lock.
type LockMode uint8

// Lock modes.
const (
	Shared LockMode = iota
	Exclusive
)

func (m LockMode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// ErrDeadlock is returned when granting a lock would create a cycle in
// the waits-for graph; the requesting transaction should abort.
var ErrDeadlock = errors.New("txn: deadlock detected")

// ErrAborted is returned for operations on an aborted transaction.
var ErrAborted = errors.New("txn: transaction aborted")

// ErrTimeout is returned when a lock wait exceeds the statement
// deadline; the requesting transaction is aborted (freeing its locks)
// and may be retried.
var ErrTimeout = errors.New("txn: lock wait timeout")

type waiter struct {
	tx      ID
	mode    LockMode
	granted chan error
}

type lockState struct {
	holders map[ID]LockMode
	queue   []*waiter
}

// lockShards partitions the lock table so unrelated fragments never
// contend on one mutex. Power of two; small enough that a per-shard
// sweep at transaction end stays cheap.
const lockShards = 16

// lockShard is one partition of the lock table: the lock states of the
// resources hashing here plus, per transaction, the locks it holds in
// this shard.
type lockShard struct {
	mu    sync.Mutex
	locks map[string]*lockState
	held  map[ID]map[string]LockMode
}

// LockManager grants fragment-granularity locks under strict 2PL: locks
// accumulate during the transaction and are released together at end.
//
// The lock table is sharded by a hash of the resource name, so point
// DML against different fragments takes different mutexes — the shared
// hot path of concurrent pipelined statements. The waits-for graph
// stays global (guarded by waitMu): a deadlock cycle can span shards,
// and every edge insertion plus its cycle check is serialized on
// waitMu, so whichever transaction adds the closing edge of a genuine
// cycle is guaranteed to see the whole cycle and become the victim.
// The lock order is always shard mutex → waitMu, never the reverse.
//
// Detection is conservatively eager: a cycle check may observe an edge
// whose waiter is concurrently being granted on another shard, making
// that transaction a victim of a cycle that was just breaking up. Such
// spurious victims are rare, safe (the victim aborts and retries, as
// deadlock victims must anyway), and the price of not serializing
// every grant behind one global mutex; a true cycle is never missed.
type LockManager struct {
	shards [lockShards]lockShard

	waitMu sync.Mutex
	waits  map[ID]map[ID]struct{} // edge tx -> txs it waits for

	acquires atomic.Int64 // total Acquire calls (tests assert lock-free reads)
}

// NewLockManager creates an empty lock manager.
func NewLockManager() *LockManager {
	lm := &LockManager{waits: map[ID]map[ID]struct{}{}}
	for i := range lm.shards {
		lm.shards[i].locks = map[string]*lockState{}
		lm.shards[i].held = map[ID]map[string]LockMode{}
	}
	return lm
}

// shardOf routes a resource name to its shard (FNV-1a).
func (lm *LockManager) shardOf(resource string) *lockShard {
	h := uint32(2166136261)
	for i := 0; i < len(resource); i++ {
		h ^= uint32(resource[i])
		h *= 16777619
	}
	return &lm.shards[h&(lockShards-1)]
}

// compatible reports whether a request can be granted alongside holders.
func compatible(st *lockState, tx ID, mode LockMode) bool {
	for holder, hmode := range st.holders {
		if holder == tx {
			continue // self-conflict handled as upgrade
		}
		if mode == Exclusive || hmode == Exclusive {
			return false
		}
	}
	return true
}

// Acquire blocks until tx holds the resource in the given mode, or
// returns ErrDeadlock if waiting would create a waits-for cycle. A
// shared lock held by tx upgrades to exclusive when requested.
func (lm *LockManager) Acquire(tx ID, resource string, mode LockMode) error {
	return lm.AcquireTimeout(tx, resource, mode, 0)
}

// AcquireTimeout is Acquire with a lock-wait deadline: when timeout is
// positive and the lock is not granted within it, the request is
// withdrawn and ErrTimeout returned (the statement's deadline expired
// while blocked — the caller aborts the transaction, freeing its
// locks). A grant that races the deadline wins: the lock is held and
// the call succeeds.
func (lm *LockManager) AcquireTimeout(tx ID, resource string, mode LockMode, timeout time.Duration) error {
	lm.acquires.Add(1)
	sh := lm.shardOf(resource)
	sh.mu.Lock()
	st := sh.locks[resource]
	if st == nil {
		st = &lockState{holders: map[ID]LockMode{}}
		sh.locks[resource] = st
	}
	if cur, mine := st.holders[tx]; mine && (cur == Exclusive || cur == mode) {
		sh.mu.Unlock()
		return nil // already strong enough
	}
	// An S→X upgrade of an existing hold may bypass the queue (it can
	// never be granted behind a queued X waiter while tx holds S); any
	// other request must queue behind earlier waiters even when it is
	// compatible with the current holders. Letting a shared request barge
	// past a queued exclusive waiter would create a holder the waiter's
	// waits-for edges never recorded — an undetectable deadlock.
	_, held := st.holders[tx]
	upgrade := held && mode == Exclusive
	if compatible(st, tx, mode) && (upgrade || len(st.queue) == 0) {
		lm.grant(sh, st, tx, resource, mode)
		sh.mu.Unlock()
		return nil
	}
	// Must wait: record waits-for edges and check for a cycle. The edges
	// are published and checked under waitMu while the shard mutex is
	// still held, so the blockers read from this shard cannot change
	// underneath the check.
	blockers := map[ID]struct{}{}
	for holder := range st.holders {
		if holder != tx {
			blockers[holder] = struct{}{}
		}
	}
	if !upgrade {
		// Queued waiters ahead of us also block us (FIFO fairness);
		// upgraders wait at the queue front, blocked only by holders.
		for _, w := range st.queue {
			if w.tx != tx {
				blockers[w.tx] = struct{}{}
			}
		}
	}
	lm.waitMu.Lock()
	lm.waits[tx] = blockers
	if lm.wouldDeadlock(tx) {
		delete(lm.waits, tx)
		lm.waitMu.Unlock()
		sh.mu.Unlock()
		return fmt.Errorf("%w: %d requesting %s on %q", ErrDeadlock, tx, mode, resource)
	}
	lm.waitMu.Unlock()
	w := &waiter{tx: tx, mode: mode, granted: make(chan error, 1)}
	if upgrade {
		// Upgraders park at the front: they are granted the moment the
		// other shared holders drain, and nothing behind them can run
		// while tx still holds S anyway.
		st.queue = append([]*waiter{w}, st.queue...)
	} else {
		st.queue = append(st.queue, w)
	}
	sh.mu.Unlock()

	if timeout <= 0 {
		return <-w.granted
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-w.granted:
		return err
	case <-timer.C:
	}
	// Deadline expired: withdraw the waiter. The grant path sends on
	// w.granted while holding sh.mu, so if we no longer find w in the
	// queue under sh.mu, a verdict is already buffered — take it (the
	// grant won the race; the lock is held).
	sh.mu.Lock()
	removed := false
	if st := sh.locks[resource]; st != nil {
		filtered := st.queue[:0]
		for _, q := range st.queue {
			if q == w {
				removed = true
				continue
			}
			filtered = append(filtered, q)
		}
		st.queue = filtered
		if removed {
			// Waiters queued behind the withdrawn request may be grantable
			// now (e.g. a shared request that sat behind our exclusive).
			lm.pump(sh, st, resource)
		}
	}
	sh.mu.Unlock()
	if !removed {
		return <-w.granted
	}
	lm.waitMu.Lock()
	delete(lm.waits, tx)
	lm.waitMu.Unlock()
	return fmt.Errorf("%w: %d requesting %s on %q after %v", ErrTimeout, tx, mode, resource, timeout)
}

// grant records the lock, upgrading S to X but never downgrading.
// Caller holds sh.mu.
func (lm *LockManager) grant(sh *lockShard, st *lockState, tx ID, resource string, mode LockMode) {
	if cur, mine := st.holders[tx]; !mine || (mode == Exclusive && cur == Shared) {
		st.holders[tx] = mode
	}
	h := sh.held[tx]
	if h == nil {
		h = map[string]LockMode{}
		sh.held[tx] = h
	}
	if cur, ok := h[resource]; !ok || (mode == Exclusive && cur == Shared) {
		h[resource] = mode
	}
	lm.waitMu.Lock()
	delete(lm.waits, tx)
	lm.waitMu.Unlock()
}

// wouldDeadlock reports whether tx participates in a waits-for cycle.
// Caller holds lm.waitMu.
func (lm *LockManager) wouldDeadlock(tx ID) bool {
	// DFS from tx through the waits-for graph looking for a path back.
	seen := map[ID]struct{}{}
	var stack []ID
	for b := range lm.waits[tx] {
		stack = append(stack, b)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == tx {
			return true
		}
		if _, dup := seen[cur]; dup {
			continue
		}
		seen[cur] = struct{}{}
		for b := range lm.waits[cur] {
			stack = append(stack, b)
		}
	}
	return false
}

// ReleaseAll frees every lock tx holds and cancels its queued waits
// (strict 2PL end-of-transaction release).
func (lm *LockManager) ReleaseAll(tx ID) {
	lm.waitMu.Lock()
	delete(lm.waits, tx)
	lm.waitMu.Unlock()
	for i := range lm.shards {
		sh := &lm.shards[i]
		sh.mu.Lock()
		for resource := range sh.held[tx] {
			st := sh.locks[resource]
			if st == nil {
				continue
			}
			delete(st.holders, tx)
			lm.pump(sh, st, resource)
			if len(st.holders) == 0 && len(st.queue) == 0 {
				delete(sh.locks, resource)
			}
		}
		delete(sh.held, tx)
		// Remove tx from queues it might still sit in (abort while
		// waiting) in this shard.
		for resource, st := range sh.locks {
			filtered := st.queue[:0]
			for _, w := range st.queue {
				if w.tx == tx {
					w.granted <- ErrAborted
					continue
				}
				filtered = append(filtered, w)
			}
			st.queue = filtered
			lm.pump(sh, st, resource)
		}
		sh.mu.Unlock()
	}
	// Drop waits-for edges pointing at tx: anything that was queued
	// behind it has been pumped (or still waits on remaining holders,
	// whose edges it also recorded).
	lm.waitMu.Lock()
	for _, blockers := range lm.waits {
		delete(blockers, tx)
	}
	lm.waitMu.Unlock()
}

// pump grants queued requests that are now compatible, preserving FIFO
// order with shared batching. Caller holds sh.mu.
func (lm *LockManager) pump(sh *lockShard, st *lockState, resource string) {
	for len(st.queue) > 0 {
		w := st.queue[0]
		if !compatible(st, w.tx, w.mode) {
			// Upgrade special case: sole holder waiting to upgrade.
			if cur, mine := st.holders[w.tx]; mine && cur == Shared && w.mode == Exclusive && len(st.holders) == 1 {
				// fall through to grant
			} else {
				return
			}
		}
		st.queue = st.queue[1:]
		lm.grant(sh, st, w.tx, resource, w.mode)
		w.granted <- nil
		if w.mode == Exclusive {
			return
		}
	}
}

// HeldBy returns the resources tx currently holds with their modes.
// Acquires returns the total number of Acquire calls seen, including
// re-entrant and failed ones. Isolation tests diff this counter around a
// SELECT to prove that snapshot reads never touch the lock manager.
func (lm *LockManager) Acquires() int64 { return lm.acquires.Load() }

func (lm *LockManager) HeldBy(tx ID) map[string]LockMode {
	out := map[string]LockMode{}
	for i := range lm.shards {
		sh := &lm.shards[i]
		sh.mu.Lock()
		for r, m := range sh.held[tx] {
			out[r] = m
		}
		sh.mu.Unlock()
	}
	return out
}

// Holders returns the transactions holding the resource.
func (lm *LockManager) Holders(resource string) map[ID]LockMode {
	sh := lm.shardOf(resource)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := map[ID]LockMode{}
	if st := sh.locks[resource]; st != nil {
		for tx, m := range st.holders {
			out[tx] = m
		}
	}
	return out
}

// queuedOn reports how many waiters are queued on the resource (tests).
func (lm *LockManager) queuedOn(resource string) int {
	sh := lm.shardOf(resource)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if st := sh.locks[resource]; st != nil {
		return len(st.queue)
	}
	return 0
}
