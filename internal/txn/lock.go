// Package txn provides the Global Data Handler's transaction machinery
// (paper §2.2: "the transaction manager, the concurrency control unit"):
// a strict two-phase-locking lock manager with waits-for deadlock
// detection, transaction lifecycle management, and a two-phase-commit
// coordinator that drives the One-Fragment Managers as participants.
//
// Lock granularity is the fragment: the paper notes queries proceed "in
// parallel, except for accesses to the same copy of base fragments of
// the database" — fragments are exactly the unit of conflict.
package txn

import (
	"errors"
	"fmt"
	"sync"
)

// ID identifies a transaction.
type ID uint64

// LockMode is the strength of a lock.
type LockMode uint8

// Lock modes.
const (
	Shared LockMode = iota
	Exclusive
)

func (m LockMode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// ErrDeadlock is returned when granting a lock would create a cycle in
// the waits-for graph; the requesting transaction should abort.
var ErrDeadlock = errors.New("txn: deadlock detected")

// ErrAborted is returned for operations on an aborted transaction.
var ErrAborted = errors.New("txn: transaction aborted")

type waiter struct {
	tx      ID
	mode    LockMode
	granted chan error
}

type lockState struct {
	holders map[ID]LockMode
	queue   []*waiter
}

// LockManager grants fragment-granularity locks under strict 2PL: locks
// accumulate during the transaction and are released together at end.
type LockManager struct {
	mu    sync.Mutex
	locks map[string]*lockState
	held  map[ID]map[string]LockMode
	waits map[ID]map[ID]struct{} // edge tx -> txs it waits for
}

// NewLockManager creates an empty lock manager.
func NewLockManager() *LockManager {
	return &LockManager{
		locks: map[string]*lockState{},
		held:  map[ID]map[string]LockMode{},
		waits: map[ID]map[ID]struct{}{},
	}
}

// compatible reports whether a request can be granted alongside holders.
func compatible(st *lockState, tx ID, mode LockMode) bool {
	for holder, hmode := range st.holders {
		if holder == tx {
			continue // self-conflict handled as upgrade
		}
		if mode == Exclusive || hmode == Exclusive {
			return false
		}
	}
	return true
}

// Acquire blocks until tx holds the resource in the given mode, or
// returns ErrDeadlock if waiting would create a waits-for cycle. A
// shared lock held by tx upgrades to exclusive when requested.
func (lm *LockManager) Acquire(tx ID, resource string, mode LockMode) error {
	lm.mu.Lock()
	st := lm.locks[resource]
	if st == nil {
		st = &lockState{holders: map[ID]LockMode{}}
		lm.locks[resource] = st
	}
	if cur, mine := st.holders[tx]; mine && (cur == Exclusive || cur == mode) {
		lm.mu.Unlock()
		return nil // already strong enough
	}
	// An S→X upgrade of an existing hold may bypass the queue (it can
	// never be granted behind a queued X waiter while tx holds S); any
	// other request must queue behind earlier waiters even when it is
	// compatible with the current holders. Letting a shared request barge
	// past a queued exclusive waiter would create a holder the waiter's
	// waits-for edges never recorded — an undetectable deadlock.
	_, held := st.holders[tx]
	upgrade := held && mode == Exclusive
	if compatible(st, tx, mode) && (upgrade || len(st.queue) == 0) {
		lm.grant(st, tx, resource, mode)
		lm.mu.Unlock()
		return nil
	}
	// Must wait: record waits-for edges and check for a cycle.
	blockers := map[ID]struct{}{}
	for holder := range st.holders {
		if holder != tx {
			blockers[holder] = struct{}{}
		}
	}
	if !upgrade {
		// Queued waiters ahead of us also block us (FIFO fairness);
		// upgraders wait at the queue front, blocked only by holders.
		for _, w := range st.queue {
			if w.tx != tx {
				blockers[w.tx] = struct{}{}
			}
		}
	}
	lm.waits[tx] = blockers
	if lm.wouldDeadlock(tx) {
		delete(lm.waits, tx)
		lm.mu.Unlock()
		return fmt.Errorf("%w: %d requesting %s on %q", ErrDeadlock, tx, mode, resource)
	}
	w := &waiter{tx: tx, mode: mode, granted: make(chan error, 1)}
	if upgrade {
		// Upgraders park at the front: they are granted the moment the
		// other shared holders drain, and nothing behind them can run
		// while tx still holds S anyway.
		st.queue = append([]*waiter{w}, st.queue...)
	} else {
		st.queue = append(st.queue, w)
	}
	lm.mu.Unlock()

	return <-w.granted
}

// grant records the lock, upgrading S to X but never downgrading.
// Caller holds lm.mu.
func (lm *LockManager) grant(st *lockState, tx ID, resource string, mode LockMode) {
	if cur, mine := st.holders[tx]; !mine || (mode == Exclusive && cur == Shared) {
		st.holders[tx] = mode
	}
	h := lm.held[tx]
	if h == nil {
		h = map[string]LockMode{}
		lm.held[tx] = h
	}
	if cur, ok := h[resource]; !ok || (mode == Exclusive && cur == Shared) {
		h[resource] = mode
	}
	delete(lm.waits, tx)
}

// wouldDeadlock reports whether tx participates in a waits-for cycle.
// Caller holds lm.mu.
func (lm *LockManager) wouldDeadlock(tx ID) bool {
	// DFS from tx through the waits-for graph looking for a path back.
	seen := map[ID]struct{}{}
	var stack []ID
	for b := range lm.waits[tx] {
		stack = append(stack, b)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == tx {
			return true
		}
		if _, dup := seen[cur]; dup {
			continue
		}
		seen[cur] = struct{}{}
		for b := range lm.waits[cur] {
			stack = append(stack, b)
		}
	}
	return false
}

// ReleaseAll frees every lock tx holds and cancels its queued waits
// (strict 2PL end-of-transaction release).
func (lm *LockManager) ReleaseAll(tx ID) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	delete(lm.waits, tx)
	for resource := range lm.held[tx] {
		st := lm.locks[resource]
		if st == nil {
			continue
		}
		delete(st.holders, tx)
		lm.pump(st, resource)
		if len(st.holders) == 0 && len(st.queue) == 0 {
			delete(lm.locks, resource)
		}
	}
	delete(lm.held, tx)
	// Remove tx from queues it might still sit in (abort while waiting),
	// and drop waits-for edges pointing at tx.
	for resource, st := range lm.locks {
		filtered := st.queue[:0]
		for _, w := range st.queue {
			if w.tx == tx {
				w.granted <- ErrAborted
				continue
			}
			filtered = append(filtered, w)
		}
		st.queue = filtered
		lm.pump(st, resource)
	}
	for _, blockers := range lm.waits {
		delete(blockers, tx)
	}
}

// pump grants queued requests that are now compatible, preserving FIFO
// order with shared batching. Caller holds lm.mu.
func (lm *LockManager) pump(st *lockState, resource string) {
	for len(st.queue) > 0 {
		w := st.queue[0]
		if !compatible(st, w.tx, w.mode) {
			// Upgrade special case: sole holder waiting to upgrade.
			if cur, mine := st.holders[w.tx]; mine && cur == Shared && w.mode == Exclusive && len(st.holders) == 1 {
				// fall through to grant
			} else {
				return
			}
		}
		st.queue = st.queue[1:]
		lm.grant(st, w.tx, resource, w.mode)
		w.granted <- nil
		if w.mode == Exclusive {
			return
		}
	}
}

// HeldBy returns the resources tx currently holds with their modes.
func (lm *LockManager) HeldBy(tx ID) map[string]LockMode {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	out := map[string]LockMode{}
	for r, m := range lm.held[tx] {
		out[r] = m
	}
	return out
}

// Holders returns the transactions holding the resource.
func (lm *LockManager) Holders(resource string) map[ID]LockMode {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	out := map[ID]LockMode{}
	if st := lm.locks[resource]; st != nil {
		for tx, m := range st.holders {
			out[tx] = m
		}
	}
	return out
}
