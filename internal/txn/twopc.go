package txn

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/fault"
)

// Fault points in the coordinator's two crash windows: after a
// unanimous yes-vote but before the decision is logged (recovery must
// presume abort), and after the decision is durable but before any
// participant learns it (recovery must resolve to commit).
var (
	fpAfterPrepare = fault.Register("twopc.after-prepare")
	fpBeforeCommit = fault.Register("twopc.before-commit")
)

// Participant is a two-phase-commit participant — in PRISMA, a
// One-Fragment Manager holding updates for the transaction. Prepare must
// make the transaction's effects durable-on-vote (flush redo to stable
// storage) before voting yes.
type Participant interface {
	// Name identifies the participant (stable per OFM).
	Name() string
	// Prepare flushes and votes: a nil return is a yes vote.
	Prepare(tx ID) error
	// Commit finalizes after a unanimous yes, stamping the transaction's
	// versions with the commit timestamp ts. It may fail transiently;
	// the coordinator retries, and a participant that stays unreachable
	// is left prepared for recovery to resolve from the decision log.
	Commit(tx ID, ts uint64) error
	// Abort rolls back; called on any no vote or on coordinator abort.
	Abort(tx ID) error
}

// DecisionLogger is the coordinator's durable decision record: a commit
// decision is forced here after a unanimous yes-vote and before any
// participant commits, and recovery consults it to resolve prepared
// transactions (no entry means presumed abort). wal.DecisionLog is the
// stable-storage implementation.
type DecisionLogger interface {
	RecordCommit(tx ID, ts uint64) error
	Decision(tx ID) (ts uint64, commit bool, known bool)
}

// ErrIndeterminate reports a commit whose decision is durably logged but
// whose phase 2 did not complete: the transaction IS committed — the
// decision log guarantees recovery will finish applying it — but the
// caller must not assume its effects are visible until restart. It is
// deliberately not retryable: re-running the transaction could apply it
// twice.
var ErrIndeterminate = errors.New("txn: commit outcome in doubt (decision logged; resolved at recovery)")

// Phase-2 retry policy: a transient participant failure (the kind the
// Error fault mode injects) is retried a few times with a short backoff
// before the participant is abandoned to recovery.
const (
	commitRetries   = 3
	commitRetryBase = 100 * time.Microsecond
)

// runTwoPhaseCommit drives the protocol: parallel prepare collecting
// every veto, a durable commit decision, then parallel commit with
// per-participant retry. Abort and commit errors are awaited and
// surfaced, never dropped in goroutines.
func (m *Manager) runTwoPhaseCommit(tx ID, ts uint64, parts []Participant) error {
	if len(parts) == 0 {
		return nil
	}
	// Phase 1: prepare in parallel (the paper's coarse-grain parallelism
	// applies to the commit protocol as well — each participant flushes
	// its own log).
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p Participant) {
			defer wg.Done()
			errs[i] = p.Prepare(tx)
		}(i, p)
	}
	wg.Wait()
	var vetoes []error
	for i, err := range errs {
		if err != nil {
			vetoes = append(vetoes, fmt.Errorf("participant %s voted no: %w", parts[i].Name(), err))
		}
	}
	if out := fpAfterPrepare.Eval(); out != nil {
		// The coordinator dies between collecting votes and logging the
		// decision: no decision exists, so this is an abort.
		vetoes = append(vetoes, fmt.Errorf("coordinator failed after prepare: %w", out.Err))
	}
	if len(vetoes) == 0 && m != nil && m.decisions != nil {
		// The decision point: once this force returns, the transaction is
		// committed no matter what happens to coordinator or participants.
		// If the force fails the decision was never made — abort.
		if err := m.decisions.RecordCommit(tx, ts); err != nil {
			vetoes = append(vetoes, fmt.Errorf("logging commit decision: %w", err))
		}
	}
	if len(vetoes) > 0 {
		// A vetoed or undecided transaction is cleanly aborted: retrying
		// it is safe, so the error classifies as ErrAborted. Abort errors
		// are awaited and reported; a participant whose abort failed
		// (e.g. its disk died) stays prepared and is presumed aborted at
		// recovery, which reaches the same outcome.
		err := fmt.Errorf("2pc: %w: %w", ErrAborted, errors.Join(vetoes...))
		if abortErr := abortAll(tx, parts); abortErr != nil {
			err = fmt.Errorf("%w (abort phase: %v)", err, abortErr)
		}
		return err
	}
	if out := fpBeforeCommit.Eval(); out != nil {
		// The coordinator dies after the decision is durable but before
		// any participant learns it: the classic in-doubt window. No
		// aborts — the decision stands; recovery commits the prepared
		// participants from the decision log.
		return fmt.Errorf("2pc: %w: %v", ErrIndeterminate, out.Err)
	}
	// Phase 2: commit in parallel, retrying each participant through
	// transient failures.
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p Participant) {
			defer wg.Done()
			errs[i] = commitWithRetry(tx, ts, p)
		}(i, p)
	}
	wg.Wait()
	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("participant %s: %w", parts[i].Name(), err))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("2pc: %w: %v", ErrIndeterminate, errors.Join(failed...))
	}
	return nil
}

// commitWithRetry drives one participant's commit through transient
// failures with a short linear backoff.
func commitWithRetry(tx ID, ts uint64, p Participant) error {
	var err error
	for attempt := 0; attempt <= commitRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(commitRetryBase * time.Duration(attempt))
		}
		if err = p.Commit(tx, ts); err == nil {
			return nil
		}
	}
	return fmt.Errorf("commit failed after %d retries: %w", commitRetries, err)
}

// abortAll aborts every participant in parallel, awaiting and joining
// their errors.
func abortAll(tx ID, parts []Participant) error {
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p Participant) {
			defer wg.Done()
			if err := p.Abort(tx); err != nil {
				errs[i] = fmt.Errorf("participant %s abort: %w", p.Name(), err)
			}
		}(i, p)
	}
	wg.Wait()
	return errors.Join(errs...)
}
