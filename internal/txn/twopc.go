package txn

import (
	"fmt"
	"sync"
)

// Participant is a two-phase-commit participant — in PRISMA, a
// One-Fragment Manager holding updates for the transaction. Prepare must
// make the transaction's effects durable-on-vote (flush redo to stable
// storage) before voting yes.
type Participant interface {
	// Name identifies the participant (stable per OFM).
	Name() string
	// Prepare flushes and votes: a nil return is a yes vote.
	Prepare(tx ID) error
	// Commit finalizes after a unanimous yes, stamping the transaction's
	// versions with the commit timestamp ts. It must not fail.
	Commit(tx ID, ts uint64) error
	// Abort rolls back; called on any no vote or on coordinator abort.
	Abort(tx ID) error
}

// runTwoPhaseCommit drives the protocol: parallel prepare, then parallel
// commit on unanimous yes, or parallel abort on any no.
func runTwoPhaseCommit(tx ID, ts uint64, parts []Participant) error {
	if len(parts) == 0 {
		return nil
	}
	// Phase 1: prepare in parallel (the paper's coarse-grain parallelism
	// applies to the commit protocol as well — each participant flushes
	// its own log).
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p Participant) {
			defer wg.Done()
			errs[i] = p.Prepare(tx)
		}(i, p)
	}
	wg.Wait()
	var veto error
	for i, err := range errs {
		if err != nil {
			veto = fmt.Errorf("2pc: participant %s voted no: %w", parts[i].Name(), err)
			break
		}
	}
	// Phase 2.
	if veto != nil {
		for _, p := range parts {
			wg.Add(1)
			go func(p Participant) {
				defer wg.Done()
				p.Abort(tx)
			}(p)
		}
		wg.Wait()
		return veto
	}
	for _, p := range parts {
		wg.Add(1)
		go func(p Participant) {
			defer wg.Done()
			p.Commit(tx, ts)
		}(p)
	}
	wg.Wait()
	return nil
}
