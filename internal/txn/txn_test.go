package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeParticipant records 2PC calls and can be told to veto.
type fakeParticipant struct {
	name string
	veto error

	mu       sync.Mutex
	prepared []ID
	commits  []ID
	aborts   []ID
}

func (f *fakeParticipant) Name() string { return f.name }

func (f *fakeParticipant) Prepare(tx ID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.veto != nil {
		return f.veto
	}
	f.prepared = append(f.prepared, tx)
	return nil
}

func (f *fakeParticipant) Commit(tx ID, ts uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.commits = append(f.commits, tx)
	return nil
}

func (f *fakeParticipant) Abort(tx ID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.aborts = append(f.aborts, tx)
	return nil
}

func (f *fakeParticipant) counts() (p, c, a int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.prepared), len(f.commits), len(f.aborts)
}

func TestCommitLifecycle(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	if tx.State() != Active {
		t.Fatalf("state = %v", tx.State())
	}
	if err := tx.Lock("frag-1", Exclusive); err != nil {
		t.Fatal(err)
	}
	p1, p2 := &fakeParticipant{name: "ofm-1"}, &fakeParticipant{name: "ofm-2"}
	tx.Enlist(p1)
	tx.Enlist(p2)
	tx.Enlist(p1) // duplicate collapses
	if len(tx.Participants()) != 2 {
		t.Errorf("participants = %d", len(tx.Participants()))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.State() != Committed {
		t.Errorf("state = %v", tx.State())
	}
	for _, p := range []*fakeParticipant{p1, p2} {
		prep, comm, ab := p.counts()
		if prep != 1 || comm != 1 || ab != 0 {
			t.Errorf("%s: prepare=%d commit=%d abort=%d", p.name, prep, comm, ab)
		}
	}
	// Locks released.
	if len(m.Locks().HeldBy(tx.ID())) != 0 {
		t.Error("locks survived commit")
	}
	if m.Commits() != 1 || m.Aborts() != 0 || m.ActiveCount() != 0 {
		t.Errorf("manager stats: commits=%d aborts=%d active=%d", m.Commits(), m.Aborts(), m.ActiveCount())
	}
	// Double commit fails.
	if err := tx.Commit(); err == nil {
		t.Error("second commit should error")
	}
}

func TestVetoAbortsEveryone(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	good := &fakeParticipant{name: "good"}
	bad := &fakeParticipant{name: "bad", veto: fmt.Errorf("disk full")}
	tx.Enlist(good)
	tx.Enlist(bad)
	err := tx.Commit()
	if err == nil || tx.State() != Aborted {
		t.Fatalf("commit = %v, state = %v", err, tx.State())
	}
	_, gc, ga := good.counts()
	if gc != 0 || ga != 1 {
		t.Errorf("good participant: commits=%d aborts=%d", gc, ga)
	}
	_, bc, ba := bad.counts()
	if bc != 0 || ba != 1 {
		t.Errorf("bad participant: commits=%d aborts=%d", bc, ba)
	}
	if m.Aborts() != 1 {
		t.Errorf("aborts = %d", m.Aborts())
	}
}

func TestUndoRunsInReverse(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	var order []int
	tx.OnAbort(func() { order = append(order, 1) })
	tx.OnAbort(func() { order = append(order, 2) })
	tx.Abort()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Errorf("undo order = %v", order)
	}
	// Abort twice is a no-op.
	tx.Abort()
	if len(order) != 2 {
		t.Error("double abort reran undo")
	}
	// Undo does NOT run on commit.
	tx2 := m.Begin()
	ran := false
	tx2.OnAbort(func() { ran = true })
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("undo ran on commit")
	}
}

func TestLockAfterAbortFails(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	tx.Abort()
	if err := tx.Lock("f", Shared); err == nil {
		t.Error("lock on aborted txn should error")
	}
}

func TestDeadlockAbortsRequester(t *testing.T) {
	m := NewManager()
	t1, t2 := m.Begin(), m.Begin()
	if err := t1.Lock("a", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := t2.Lock("b", Exclusive); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- t1.Lock("b", Exclusive) }()
	time.Sleep(50 * time.Millisecond)
	err := t2.Lock("a", Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}
	// t2 auto-aborted, freeing b: t1's waiting lock is granted.
	if t2.State() != Aborted {
		t.Errorf("victim state = %v", t2.State())
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("survivor lock failed: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("survivor still blocked after victim aborted")
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentTransfersSerialize(t *testing.T) {
	// The banking workload: concurrent increments under X locks must not
	// lose updates.
	m := NewManager()
	balance := 0
	var bmu sync.Mutex
	var wg sync.WaitGroup
	deadlocks := 0
	var dmu sync.Mutex
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				tx := m.Begin()
				if err := tx.Lock("account", Exclusive); err != nil {
					dmu.Lock()
					deadlocks++
					dmu.Unlock()
					continue
				}
				bmu.Lock()
				balance++
				bmu.Unlock()
				if err := tx.Commit(); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if balance != 16*25 {
		t.Errorf("balance = %d, want %d (lost updates)", balance, 400)
	}
	if deadlocks != 0 {
		t.Errorf("single-resource workload deadlocked %d times", deadlocks)
	}
	if m.Commits() != 400 {
		t.Errorf("commits = %d", m.Commits())
	}
}

func TestTwoPCNoParticipants(t *testing.T) {
	m := NewManager()
	if err := m.runTwoPhaseCommit(1, 1, nil); err != nil {
		t.Errorf("empty 2PC = %v", err)
	}
}
