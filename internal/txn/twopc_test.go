package txn

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakePart is a scriptable participant.
type fakePart struct {
	name       string
	prepareErr error
	abortErr   error
	commitErrs int // first N Commit calls fail
	commitErr  error

	mu       sync.Mutex
	prepares int
	commits  int
	aborts   int
}

func (p *fakePart) Name() string { return p.name }

func (p *fakePart) Prepare(tx ID) error {
	p.mu.Lock()
	p.prepares++
	p.mu.Unlock()
	return p.prepareErr
}

func (p *fakePart) Commit(tx ID, ts uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.commits++
	if p.commitErrs > 0 {
		p.commitErrs--
		if p.commitErr != nil {
			return p.commitErr
		}
		return fmt.Errorf("transient commit failure on %s", p.name)
	}
	return nil
}

func (p *fakePart) Abort(tx ID) error {
	p.mu.Lock()
	p.aborts++
	p.mu.Unlock()
	return p.abortErr
}

// fakeDecisions is an in-memory DecisionLogger.
type fakeDecisions struct {
	mu        sync.Mutex
	recorded  map[ID]uint64
	recordErr error
}

func newFakeDecisions() *fakeDecisions { return &fakeDecisions{recorded: map[ID]uint64{}} }

func (d *fakeDecisions) RecordCommit(tx ID, ts uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.recordErr != nil {
		return d.recordErr
	}
	d.recorded[tx] = ts
	return nil
}

func (d *fakeDecisions) Decision(tx ID) (uint64, bool, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ts, ok := d.recorded[tx]
	return ts, ok, ok
}

func TestTwoPCCollectsAllVetoes(t *testing.T) {
	m := NewManager()
	a := &fakePart{name: "a", prepareErr: errors.New("a is full")}
	b := &fakePart{name: "b"}
	c := &fakePart{name: "c", prepareErr: errors.New("c is broken")}
	err := m.runTwoPhaseCommit(1, 10, []Participant{a, b, c})
	if err == nil {
		t.Fatal("vetoed 2PC must fail")
	}
	for _, frag := range []string{"a is full", "c is broken"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing veto %q", err, frag)
		}
	}
	// A vetoed transaction is cleanly aborted, hence retryable.
	if !IsRetryable(err) {
		t.Errorf("veto error not retryable: %v", err)
	}
	for _, p := range []*fakePart{a, b, c} {
		if p.aborts != 1 {
			t.Errorf("participant %s aborted %d times, want 1", p.name, p.aborts)
		}
		if p.commits != 0 {
			t.Errorf("participant %s committed despite veto", p.name)
		}
	}
}

func TestTwoPCSurfacesAbortErrors(t *testing.T) {
	m := NewManager()
	a := &fakePart{name: "a", prepareErr: errors.New("veto")}
	b := &fakePart{name: "b", abortErr: errors.New("abort-disk-gone")}
	err := m.runTwoPhaseCommit(2, 10, []Participant{a, b})
	if err == nil || !strings.Contains(err.Error(), "abort-disk-gone") {
		t.Errorf("abort error dropped: %v", err)
	}
}

func TestTwoPCRetriesTransientCommit(t *testing.T) {
	m := NewManager()
	m.SetDecisionLog(newFakeDecisions())
	a := &fakePart{name: "a", commitErrs: 2} // fails twice, then succeeds
	b := &fakePart{name: "b"}
	if err := m.runTwoPhaseCommit(3, 30, []Participant{a, b}); err != nil {
		t.Fatalf("2PC failed despite transient-only errors: %v", err)
	}
	if a.commits != 3 {
		t.Errorf("participant a saw %d commit attempts, want 3", a.commits)
	}
	if a.aborts != 0 || b.aborts != 0 {
		t.Error("no participant may abort after the decision is logged")
	}
}

func TestTwoPCIndeterminateAfterDecision(t *testing.T) {
	m := NewManager()
	dl := newFakeDecisions()
	m.SetDecisionLog(dl)
	a := &fakePart{name: "a", commitErrs: commitRetries + 10} // never succeeds
	b := &fakePart{name: "b"}
	err := m.runTwoPhaseCommit(4, 40, []Participant{a, b})
	if !errors.Is(err, ErrIndeterminate) {
		t.Fatalf("persistent commit failure after decision = %v, want ErrIndeterminate", err)
	}
	if IsRetryable(err) {
		t.Error("an indeterminate commit must NOT be retryable")
	}
	if _, _, known := dl.Decision(4); !known {
		t.Error("decision must be logged before phase 2")
	}
	if a.aborts != 0 {
		t.Error("decided transaction must never be aborted")
	}
	if b.commits == 0 {
		t.Error("healthy participant should have committed")
	}
}

func TestTwoPCDecisionLogFailureAborts(t *testing.T) {
	m := NewManager()
	dl := newFakeDecisions()
	dl.recordErr = errors.New("decision disk dead")
	m.SetDecisionLog(dl)
	a := &fakePart{name: "a"}
	err := m.runTwoPhaseCommit(5, 50, []Participant{a})
	if err == nil || !strings.Contains(err.Error(), "decision disk dead") {
		t.Fatalf("decision-log failure must abort: %v", err)
	}
	if !IsRetryable(err) {
		t.Error("an undecided (aborted) commit is retryable")
	}
	if a.commits != 0 || a.aborts != 1 {
		t.Errorf("participant saw commits=%d aborts=%d, want 0/1", a.commits, a.aborts)
	}
}

func TestTxnCommitIndeterminateCountsCommitted(t *testing.T) {
	m := NewManager()
	m.SetDecisionLog(newFakeDecisions())
	tx := m.Begin()
	tx.Enlist(&fakePart{name: "a", commitErrs: commitRetries + 10})
	err := tx.Commit()
	if !errors.Is(err, ErrIndeterminate) {
		t.Fatalf("Commit = %v, want ErrIndeterminate", err)
	}
	if tx.State() != Committed {
		t.Errorf("state = %s; a decided transaction is committed", tx.State())
	}
	if m.Commits() != 1 || m.Aborts() != 0 {
		t.Errorf("commits=%d aborts=%d, want 1/0", m.Commits(), m.Aborts())
	}
}

func TestLockWaitTimeout(t *testing.T) {
	m := NewManager()
	holder := m.Begin()
	if err := holder.Lock("frag", Exclusive); err != nil {
		t.Fatal(err)
	}
	blocked := m.Begin()
	blocked.SetLockTimeout(30 * time.Millisecond)
	start := time.Now()
	err := blocked.Lock("frag", Exclusive)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Lock = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("timed out after %v", elapsed)
	}
	if !IsRetryable(err) {
		t.Error("lock timeout must be retryable")
	}
	if blocked.State() != Aborted {
		t.Errorf("blocked txn state = %s, want aborted (locks freed)", blocked.State())
	}
	// The holder is unaffected and the withdrawn waiter left no residue:
	// a third transaction can acquire once the holder commits.
	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
	third := m.Begin()
	third.SetLockTimeout(time.Second)
	if err := third.Lock("frag", Exclusive); err != nil {
		t.Fatalf("post-timeout acquire: %v", err)
	}
	third.Abort()
}

func TestLockTimeoutGrantRaceWins(t *testing.T) {
	// A grant landing at the same moment as the deadline must win: the
	// caller holds the lock and the call succeeds.
	m := NewManager()
	for i := 0; i < 50; i++ {
		holder := m.Begin()
		if err := holder.Lock("r", Exclusive); err != nil {
			t.Fatal(err)
		}
		waiter := m.Begin()
		waiter.SetLockTimeout(time.Millisecond)
		done := make(chan error, 1)
		go func() { done <- waiter.Lock("r", Exclusive) }()
		time.Sleep(time.Millisecond) // release near the deadline
		holder.Abort()
		err := <-done
		if err != nil && !errors.Is(err, ErrTimeout) {
			t.Fatalf("iteration %d: %v", i, err)
		}
		waiter.Abort()
	}
}

func TestLockTimeoutUnblocksQueueBehind(t *testing.T) {
	// S behind a timed-out X waiter must be pumped when the X withdraws.
	m := NewManager()
	holder := m.Begin()
	if err := holder.Lock("r", Shared); err != nil {
		t.Fatal(err)
	}
	xWaiter := m.Begin()
	xWaiter.SetLockTimeout(20 * time.Millisecond)
	xDone := make(chan error, 1)
	go func() { xDone <- xWaiter.Lock("r", Exclusive) }()
	time.Sleep(5 * time.Millisecond) // let X queue
	sWaiter := m.Begin()
	sDone := make(chan error, 1)
	go func() { sDone <- sWaiter.Lock("r", Shared) }()
	if err := <-xDone; !errors.Is(err, ErrTimeout) {
		t.Fatalf("X waiter = %v, want timeout", err)
	}
	select {
	case err := <-sDone:
		if err != nil {
			t.Fatalf("S waiter = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("S waiter still blocked after X withdrew")
	}
	holder.Abort()
	sWaiter.Abort()
	xWaiter.Abort()
}
