package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// State is a transaction's lifecycle state.
type State uint8

// Transaction states.
const (
	Active State = iota
	Preparing
	Committed
	Aborted
)

func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Preparing:
		return "preparing"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	}
	return "?"
}

// Txn is one transaction's control block.
type Txn struct {
	id  ID
	mgr *Manager

	mu           sync.Mutex
	state        State
	undo         []func() // volatile undo actions, run in reverse on abort
	participants []Participant

	snapTS      uint64 // snapshot timestamp, pinned lazily at first read
	snapRelease func()
	commitTS    uint64 // commit timestamp, 0 until committed (or read-only)

	lockTimeout time.Duration // per-statement lock-wait deadline; 0 = wait forever
}

// ID returns the transaction id.
func (t *Txn) ID() ID { return t.id }

// State returns the current lifecycle state.
func (t *Txn) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// Snapshot returns the transaction's snapshot timestamp, pinning the
// current watermark on first use. All of the transaction's reads see
// the versions committed at or before this timestamp, plus its own
// pending writes.
func (t *Txn) Snapshot() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.snapRelease == nil && t.state == Active {
		t.snapTS, t.snapRelease = t.mgr.PinSnapshot()
	}
	return t.snapTS
}

// CommitTS returns the commit timestamp stamped on the transaction's
// versions, or 0 if it has not committed (or committed read-only).
func (t *Txn) CommitTS() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.commitTS
}

// SetLockTimeout bounds every subsequent lock wait: a statement that
// cannot acquire its fragment lock within d aborts the transaction with
// ErrTimeout (retryable), freeing whatever locks it held. Zero waits
// forever. Sessions set this from the statement-timeout configuration.
func (t *Txn) SetLockTimeout(d time.Duration) {
	t.mu.Lock()
	t.lockTimeout = d
	t.mu.Unlock()
}

// Lock acquires a fragment lock under strict 2PL. On deadlock the
// transaction is aborted and ErrDeadlock returned; past the lock
// timeout it is aborted with ErrTimeout.
func (t *Txn) Lock(resource string, mode LockMode) error {
	if st := t.State(); st != Active {
		return fmt.Errorf("txn %d: lock in state %s", t.id, st)
	}
	t.mu.Lock()
	d := t.lockTimeout
	t.mu.Unlock()
	if err := t.mgr.locks.AcquireTimeout(t.id, resource, mode, d); err != nil {
		t.Abort()
		return err
	}
	return nil
}

// OnAbort registers an undo action (run in reverse order on abort) —
// how OFMs roll back volatile main-memory changes.
func (t *Txn) OnAbort(fn func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.undo = append(t.undo, fn)
}

// Enlist registers a two-phase-commit participant; duplicates (by Name)
// collapse.
func (t *Txn) Enlist(p Participant) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, q := range t.participants {
		if q.Name() == p.Name() {
			return
		}
	}
	t.participants = append(t.participants, p)
}

// Participants returns the enlisted participants.
func (t *Txn) Participants() []Participant {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Participant(nil), t.participants...)
}

// Commit runs two-phase commit over the enlisted participants and
// releases all locks. With no participants it is a trivial local commit.
// A transaction with participants draws a commit timestamp; its versions
// become visible to snapshots taken after the watermark passes it.
func (t *Txn) Commit() error {
	t.mu.Lock()
	if t.state != Active {
		st := t.state
		t.mu.Unlock()
		return fmt.Errorf("txn %d: commit in state %s", t.id, st)
	}
	t.state = Preparing
	parts := append([]Participant(nil), t.participants...)
	t.mu.Unlock()

	var ts uint64
	if len(parts) > 0 {
		ts = t.mgr.beginCommit()
	}
	err := t.mgr.runTwoPhaseCommit(t.id, ts, parts)
	if ts != 0 {
		// The watermark may pass this commit only once its versions are
		// fully applied (or it aborted) on every participant.
		t.mgr.endCommit(ts)
	}
	if err != nil {
		if errors.Is(err, ErrIndeterminate) {
			// The commit decision is durably logged: the transaction IS
			// committed and must not be rolled back — recovery finishes
			// applying it on any participant that never heard. Report the
			// in-doubt outcome to the caller, who must not blindly retry.
			t.mgr.waitCommitShipped(ts)
			t.mu.Lock()
			t.state = Committed
			t.commitTS = ts
			t.undo = nil
			t.mu.Unlock()
			t.mgr.finish(t)
			return fmt.Errorf("txn %d: %w", t.id, err)
		}
		// Phase 2 already aborted the participants; only roll back local
		// state here.
		t.rollback(false)
		return fmt.Errorf("txn %d: %w", t.id, err)
	}
	t.mgr.waitCommitShipped(ts)
	t.mu.Lock()
	t.state = Committed
	t.commitTS = ts
	t.undo = nil
	t.mu.Unlock()
	t.mgr.finish(t)
	return nil
}

// Abort rolls the transaction back: participants abort, undo actions run
// in reverse, locks release. Aborting twice is a no-op.
func (t *Txn) Abort() {
	t.mu.Lock()
	if t.state == Committed || t.state == Aborted {
		t.mu.Unlock()
		return
	}
	t.state = Aborted
	t.mu.Unlock()
	t.rollback(true)
}

// rollback reverses the transaction; abortParticipants is false when the
// two-phase-commit protocol has already sent aborts.
func (t *Txn) rollback(abortParticipants bool) {
	t.mu.Lock()
	parts := append([]Participant(nil), t.participants...)
	undo := t.undo
	t.undo = nil
	t.state = Aborted
	t.mu.Unlock()
	if abortParticipants {
		for _, p := range parts {
			p.Abort(t.id)
		}
	}
	for i := len(undo) - 1; i >= 0; i-- {
		undo[i]()
	}
	t.mgr.finish(t)
}

// Manager creates transactions and owns the lock manager. The paper runs
// one transaction-manager instance per query; Manager is cheap enough to
// share or instantiate per session.
type Manager struct {
	locks  *LockManager
	nextID atomic.Uint64

	mu     sync.Mutex
	active map[ID]*Txn

	commits atomic.Int64
	aborts  atomic.Int64

	// decisions is the coordinator's durable decision log, set once at
	// engine construction (nil disables decision logging; 2PC then runs
	// the legacy protocol without an in-doubt commit guarantee).
	decisions DecisionLogger

	// Commit clock and snapshot pins (see mvcc.go).
	tsMu      sync.Mutex
	lastTS    uint64              // last allocated commit timestamp
	inflight  map[uint64]struct{} // allocated but not yet fully applied
	watermark uint64              // all commits <= watermark are applied
	pins      map[uint64]int      // snapshot timestamp -> pin refcount

	// commitWait, when set, blocks a committing transaction after its
	// versions are applied but before its locks release and its caller
	// is acknowledged — the replication hook: a primary waits until the
	// commit has shipped to every live subscriber, so an acknowledged
	// commit is never lost to a primary crash plus failover.
	commitWait atomic.Pointer[func(ts uint64)]
}

// SetCommitWait installs (or, with nil, removes) the post-apply commit
// acknowledgment gate. See the commitWait field.
func (m *Manager) SetCommitWait(fn func(ts uint64)) {
	if fn == nil {
		m.commitWait.Store(nil)
		return
	}
	m.commitWait.Store(&fn)
}

// waitCommitShipped runs the commit acknowledgment gate, if installed.
func (m *Manager) waitCommitShipped(ts uint64) {
	if ts == 0 {
		return
	}
	if fn := m.commitWait.Load(); fn != nil {
		(*fn)(ts)
	}
}

// NewManager creates a transaction manager with a fresh lock space.
func NewManager() *Manager {
	return &Manager{
		locks:    NewLockManager(),
		active:   map[ID]*Txn{},
		inflight: map[uint64]struct{}{},
		pins:     map[uint64]int{},
	}
}

// SetDecisionLog installs the coordinator's durable decision log.
// Call once, before the manager carries traffic.
func (m *Manager) SetDecisionLog(dl DecisionLogger) { m.decisions = dl }

// DecisionLog returns the installed decision log (nil if none).
func (m *Manager) DecisionLog() DecisionLogger { return m.decisions }

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	t := &Txn{id: ID(m.nextID.Add(1)), mgr: m, state: Active}
	m.mu.Lock()
	m.active[t.id] = t
	m.mu.Unlock()
	return t
}

// finish releases locks and bookkeeping once a txn reaches a final state.
func (m *Manager) finish(t *Txn) {
	t.mu.Lock()
	rel := t.snapRelease
	t.snapRelease = nil
	t.mu.Unlock()
	if rel != nil {
		rel()
	}
	m.locks.ReleaseAll(t.id)
	m.mu.Lock()
	_, was := m.active[t.id]
	delete(m.active, t.id)
	m.mu.Unlock()
	if was {
		if t.State() == Committed {
			m.commits.Add(1)
		} else {
			m.aborts.Add(1)
		}
	}
}

// Locks exposes the lock manager (OFMs lock through the owning txn, but
// tests and tools can inspect).
func (m *Manager) Locks() *LockManager { return m.locks }

// ActiveCount returns the number of in-flight transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// Commits returns the number of committed transactions.
func (m *Manager) Commits() int64 { return m.commits.Load() }

// Aborts returns the number of aborted transactions.
func (m *Manager) Aborts() int64 { return m.aborts.Load() }
