package txn

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Sharding tests: the lock table is partitioned by resource hash, but
// deadlock detection, fairness, and end-of-transaction release must
// behave exactly as with one global mutex.

// resourcesInDistinctShards returns n resource names guaranteed to hash
// to n different shards.
func resourcesInDistinctShards(t *testing.T, lm *LockManager, n int) []string {
	t.Helper()
	if n > lockShards {
		t.Fatalf("cannot pick %d resources from %d shards", n, lockShards)
	}
	seen := map[*lockShard]bool{}
	var out []string
	for i := 0; len(out) < n && i < 100000; i++ {
		r := fmt.Sprintf("frag#%d", i)
		if sh := lm.shardOf(r); !seen[sh] {
			seen[sh] = true
			out = append(out, r)
		}
	}
	if len(out) < n {
		t.Fatalf("found only %d distinct shards", len(out))
	}
	return out
}

func TestShardSpread(t *testing.T) {
	lm := NewLockManager()
	seen := map[*lockShard]bool{}
	for i := 0; i < 1000; i++ {
		seen[lm.shardOf(fmt.Sprintf("emp#%d", i))] = true
	}
	if len(seen) < lockShards/2 {
		t.Errorf("1000 fragment names hit only %d of %d shards", len(seen), lockShards)
	}
}

// TestCrossShardDeadlock pins that a waits-for cycle spanning two
// shards is still detected: the graph is global even though the lock
// states are partitioned.
func TestCrossShardDeadlock(t *testing.T) {
	lm := NewLockManager()
	rs := resourcesInDistinctShards(t, lm, 2)
	a, b := rs[0], rs[1]
	if err := lm.Acquire(1, a, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, b, Exclusive); err != nil {
		t.Fatal(err)
	}
	firstWait := make(chan error, 1)
	go func() { firstWait <- lm.Acquire(1, b, Exclusive) }()
	deadline := time.Now().Add(2 * time.Second)
	for lm.queuedOn(b) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	err := lm.Acquire(2, a, Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("cross-shard cycle not detected: %v", err)
	}
	lm.ReleaseAll(2)
	select {
	case err := <-firstWait:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("survivor never granted after victim release")
	}
	lm.ReleaseAll(1)
}

// TestCrossShardThreeWayDeadlock drives a cycle through three shards.
func TestCrossShardThreeWayDeadlock(t *testing.T) {
	lm := NewLockManager()
	rs := resourcesInDistinctShards(t, lm, 3)
	for i, r := range rs {
		if err := lm.Acquire(ID(i+1), r, Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	go lm.Acquire(1, rs[1], Exclusive)
	deadline := time.Now().Add(2 * time.Second)
	for lm.queuedOn(rs[1]) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	go lm.Acquire(2, rs[2], Exclusive)
	for lm.queuedOn(rs[2]) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	err := lm.Acquire(3, rs[0], Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("three-way cross-shard cycle not detected: %v", err)
	}
	lm.ReleaseAll(1)
	lm.ReleaseAll(2)
	lm.ReleaseAll(3)
}

// TestNoBargingAcrossShards re-pins the PR-1 fairness fix on the
// sharded table: on every shard, a shared request arriving behind a
// queued exclusive waiter must wait, even while unrelated shards are
// granting freely.
func TestNoBargingAcrossShards(t *testing.T) {
	lm := NewLockManager()
	rs := resourcesInDistinctShards(t, lm, 4)
	for i, r := range rs {
		holder := ID(100 + i)
		if err := lm.Acquire(holder, r, Shared); err != nil {
			t.Fatal(err)
		}
		xGranted := make(chan error, 1)
		xTx := ID(200 + i)
		go func(r string) { xGranted <- lm.Acquire(xTx, r, Exclusive) }(r)
		deadline := time.Now().Add(2 * time.Second)
		for lm.queuedOn(r) == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}

		sGranted := make(chan error, 1)
		go func(r string) { sGranted <- lm.Acquire(ID(300+i), r, Shared) }(r)
		select {
		case <-sGranted:
			t.Fatalf("%s: S granted past a queued X waiter", r)
		case <-time.After(30 * time.Millisecond):
		}

		// Other shards keep working while this one has a queue.
		other := rs[(i+1)%len(rs)]
		if lm.shardOf(other) == lm.shardOf(r) {
			t.Fatalf("test resources share a shard")
		}
		probe := ID(400 + i)
		if err := lm.Acquire(probe, other, Shared); err != nil {
			t.Fatalf("independent shard blocked: %v", err)
		}
		lm.ReleaseAll(probe)

		lm.ReleaseAll(holder)
		if err := <-xGranted; err != nil {
			t.Fatal(err)
		}
		lm.ReleaseAll(xTx)
		if err := <-sGranted; err != nil {
			t.Fatal(err)
		}
		lm.ReleaseAll(ID(300 + i))
	}
}

// TestShardedContentionStress hammers the sharded table from 16
// goroutines taking multi-resource S/X lock sets across every shard,
// tolerating deadlock aborts, and verifies nothing leaks: every
// resource ends up holder-free and every successful transaction fully
// released. Run under -race in CI.
func TestShardedContentionStress(t *testing.T) {
	lm := NewLockManager()
	const (
		goroutines = 16
		resources  = 32
		iters      = 200
	)
	names := make([]string, resources)
	for i := range names {
		names[i] = fmt.Sprintf("emp#%d", i)
	}
	var nextTx atomic.Uint64
	var commits, aborts atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g) * 977))
			for i := 0; i < iters; i++ {
				tx := ID(nextTx.Add(1))
				ok := true
				// Ascending order keeps *some* discipline but overlapping
				// sets still deadlock through upgrades.
				a, b := r.Intn(resources), r.Intn(resources)
				if a > b {
					a, b = b, a
				}
				for _, ri := range []int{a, b} {
					mode := Shared
					if r.Intn(2) == 0 {
						mode = Exclusive
					}
					if err := lm.Acquire(tx, names[ri], mode); err != nil {
						if !errors.Is(err, ErrDeadlock) && !errors.Is(err, ErrAborted) {
							t.Errorf("unexpected acquire error: %v", err)
						}
						ok = false
						break
					}
				}
				lm.ReleaseAll(tx)
				if ok {
					commits.Add(1)
				} else {
					aborts.Add(1)
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("sharded lock manager deadlocked or livelocked")
	}
	if commits.Load()+aborts.Load() != goroutines*iters {
		t.Fatalf("accounted %d+%d of %d transactions", commits.Load(), aborts.Load(), goroutines*iters)
	}
	if commits.Load() == 0 {
		t.Fatal("no transaction ever succeeded")
	}
	for _, name := range names {
		if h := lm.Holders(name); len(h) != 0 {
			t.Errorf("%s still held by %v after all transactions finished", name, h)
		}
	}
}
