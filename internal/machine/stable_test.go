package machine

import (
	"bytes"
	"testing"
)

func newTestStore(t *testing.T) (*Machine, *StableStore) {
	t.Helper()
	m := newTestMachine(t, 16)
	pe := m.PE(m.DiskPEs()[0])
	s, err := NewStableStore(pe, DiskModel{})
	if err != nil {
		t.Fatal(err)
	}
	return m, s
}

func TestStableStoreAppendRead(t *testing.T) {
	_, s := newTestStore(t)
	off, err := s.Append("wal", []byte("hello "))
	if err != nil {
		t.Fatal(err)
	}
	if off != 0 {
		t.Errorf("first offset = %d", off)
	}
	off, err = s.Append("wal", []byte("world"))
	if err != nil {
		t.Fatal(err)
	}
	if off != 6 {
		t.Errorf("second offset = %d", off)
	}
	if got := s.ReadAll("wal"); !bytes.Equal(got, []byte("hello world")) {
		t.Errorf("ReadAll = %q", got)
	}
	if s.Size("wal") != 11 {
		t.Errorf("Size = %d", s.Size("wal"))
	}
	if got := s.ReadAll("missing"); len(got) != 0 {
		t.Errorf("missing segment read %q", got)
	}
	if s.Writes() != 2 {
		t.Errorf("Writes = %d", s.Writes())
	}
}

func TestStableStoreChargesDiskTime(t *testing.T) {
	_, s := newTestStore(t)
	before := s.PE().Clock()
	if _, err := s.Append("wal", make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	after := s.PE().Clock()
	if after <= before {
		t.Error("append must charge virtual disk time")
	}
	// The charge matches the disk model.
	if d := after - before; d != s.SimulatedWriteTime(4096) {
		t.Errorf("charged %v, model says %v", d, s.SimulatedWriteTime(4096))
	}
}

func TestStableStoreReplaceTruncate(t *testing.T) {
	_, s := newTestStore(t)
	if _, err := s.Append("seg", []byte("old")); err != nil {
		t.Fatal(err)
	}
	s.Replace("seg", []byte("new-contents"))
	if got := s.ReadAll("seg"); !bytes.Equal(got, []byte("new-contents")) {
		t.Errorf("after Replace = %q", got)
	}
	s.Truncate("seg")
	if s.Size("seg") != 0 {
		t.Errorf("after Truncate size = %d", s.Size("seg"))
	}
	if len(s.Segments()) != 0 {
		t.Errorf("segments = %v", s.Segments())
	}
}

func TestStableStoreValidation(t *testing.T) {
	m := newTestMachine(t, 16)
	if _, err := NewStableStore(nil, DiskModel{}); err == nil {
		t.Error("nil PE should error")
	}
	// PE 1 has no disk (disks on every 8th).
	if _, err := NewStableStore(m.PE(1), DiskModel{}); err == nil {
		t.Error("diskless PE should error")
	}
	_, s := newTestStore(t)
	if _, err := s.Append("", []byte("x")); err == nil {
		t.Error("empty segment name should error")
	}
}

func TestStableStoreIsolationBetweenSegments(t *testing.T) {
	_, s := newTestStore(t)
	if _, err := s.Append("a", []byte("aaa")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append("b", []byte("bb")); err != nil {
		t.Fatal(err)
	}
	if s.Size("a") != 3 || s.Size("b") != 2 {
		t.Errorf("sizes: a=%d b=%d", s.Size("a"), s.Size("b"))
	}
	if len(s.Segments()) != 2 {
		t.Errorf("segments = %v", s.Segments())
	}
	// Mutating a returned copy must not affect the store.
	got := s.ReadAll("a")
	got[0] = 'z'
	if s.ReadAll("a")[0] != 'a' {
		t.Error("ReadAll must return a copy")
	}
}
