// Package machine models the PRISMA multi-computer (paper §3.2): 64
// processing elements, each with local (16 MB) main memory, a CPU, four
// network links, and — on a subset of the PEs — a disk implementing
// stable storage.
//
// The engine executes real computation on goroutines, but *charges* every
// operation to a virtual per-PE clock using a cost model calibrated to
// 1988-era hardware. Simulated query response time is the maximum clock
// advance over the participating PEs; this is what the experiment tables
// report, independent of the host running the reproduction.
package machine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simnet"
)

// Config describes a multi-computer.
type Config struct {
	// NumPEs is the number of processing elements (paper prototype: 64).
	NumPEs int
	// MemoryPerPE is the local main-memory budget in bytes (paper: 16 MB).
	MemoryPerPE int64
	// DiskEvery attaches a disk to every k-th PE (paper: "some of the
	// processing elements will also be connected to secondary storage").
	// 0 defaults to 8; negative means no disks.
	DiskEvery int
	// Net provides the inter-PE transfer cost model. Nil builds the
	// default 8x8 torus with paper parameters when NumPEs is a perfect
	// grid, else a chordal ring.
	Net *simnet.Network
	// Cost is the CPU cost model; zero fields take 1988 defaults.
	Cost CostModel
	// Disk is the secondary-storage model; zero fields take 1988 defaults.
	Disk DiskModel
}

// Default machine parameters from paper §3.2.
const (
	DefaultNumPEs      = 64
	DefaultMemoryPerPE = 16 << 20 // 16 MB
	DefaultDiskEvery   = 8
)

// Machine is a simulated multi-computer.
type Machine struct {
	cfg      Config
	pes      []*PE
	net      *simnet.Network
	netBytes atomic.Int64 // cross-PE bytes shipped since construction
}

// New builds a Machine, validating and defaulting the Config.
func New(cfg Config) (*Machine, error) {
	if cfg.NumPEs == 0 {
		cfg.NumPEs = DefaultNumPEs
	}
	if cfg.NumPEs < 1 {
		return nil, fmt.Errorf("machine: need at least one PE, got %d", cfg.NumPEs)
	}
	if cfg.MemoryPerPE == 0 {
		cfg.MemoryPerPE = DefaultMemoryPerPE
	}
	if cfg.MemoryPerPE < 0 {
		return nil, fmt.Errorf("machine: negative memory budget")
	}
	if cfg.DiskEvery == 0 {
		cfg.DiskEvery = DefaultDiskEvery
	}
	cfg.Cost.fill()
	cfg.Disk.fill()
	if cfg.Net == nil {
		top, err := defaultTopology(cfg.NumPEs)
		if err != nil {
			return nil, err
		}
		net, err := simnet.New(simnet.Config{Topology: top})
		if err != nil {
			return nil, err
		}
		cfg.Net = net
	}
	if cfg.Net.Topology().Nodes() < cfg.NumPEs {
		return nil, fmt.Errorf("machine: topology has %d nodes for %d PEs",
			cfg.Net.Topology().Nodes(), cfg.NumPEs)
	}
	m := &Machine{cfg: cfg, net: cfg.Net}
	m.pes = make([]*PE, cfg.NumPEs)
	for i := range m.pes {
		hasDisk := cfg.DiskEvery > 0 && i%cfg.DiskEvery == 0
		m.pes[i] = &PE{id: i, memLimit: cfg.MemoryPerPE, hasDisk: hasDisk, m: m}
	}
	return m, nil
}

// defaultTopology picks a degree-4 topology for n PEs: a torus when n is
// a perfect square grid, otherwise the best chordal ring.
func defaultTopology(n int) (simnet.Topology, error) {
	for r := 2; r*r <= n; r++ {
		if r*r == n {
			return simnet.NewMesh(r, r, true)
		}
	}
	if n < 3 {
		return simnet.NewMesh(1, n, false)
	}
	chord := simnet.BestChord(n)
	return simnet.NewChordalRing(n, chord)
}

// NumPEs returns the number of processing elements.
func (m *Machine) NumPEs() int { return len(m.pes) }

// PE returns processing element i.
func (m *Machine) PE(i int) *PE { return m.pes[i] }

// PEs returns all processing elements.
func (m *Machine) PEs() []*PE { return m.pes }

// Net returns the interconnection network.
func (m *Machine) Net() *simnet.Network { return m.net }

// Cost returns the CPU cost model.
func (m *Machine) Cost() CostModel { return m.cfg.Cost }

// Disk returns the disk model.
func (m *Machine) Disk() DiskModel { return m.cfg.Disk }

// DiskPEs returns the ids of disk-attached PEs.
func (m *Machine) DiskPEs() []int {
	var out []int
	for _, pe := range m.pes {
		if pe.hasDisk {
			out = append(out, pe.id)
		}
	}
	return out
}

// NearestDiskPE returns the disk-attached PE closest to `from` (hop
// count), or -1 if the machine has no disks.
func (m *Machine) NearestDiskPE(from int) int {
	best, bestDist := -1, int(^uint(0)>>1)
	top := m.net.Topology()
	for _, pe := range m.pes {
		if !pe.hasDisk {
			continue
		}
		d := 0
		if pe.id != from {
			d = top.Dist(from, pe.id)
		}
		if d < bestDist {
			best, bestDist = pe.id, d
		}
	}
	return best
}

// ResetClocks zeroes every PE's virtual clock (start of an experiment).
func (m *Machine) ResetClocks() {
	for _, pe := range m.pes {
		pe.clock.Store(0)
	}
}

// MaxClock returns the largest virtual clock over all PEs — the simulated
// response time since the last ResetClocks.
func (m *Machine) MaxClock() time.Duration {
	var max time.Duration
	for _, pe := range m.pes {
		if c := pe.Clock(); c > max {
			max = c
		}
	}
	return max
}

// TotalClock returns the sum of all PE clocks — simulated total work.
func (m *Machine) TotalClock() time.Duration {
	var sum time.Duration
	for _, pe := range m.pes {
		sum += pe.Clock()
	}
	return sum
}

// Send charges a message of `bytes` from PE src to PE dst: the sender
// pays marshalling CPU, and the receiver's clock advances to no earlier
// than the send completion plus network transfer time. It returns the
// simulated arrival time on dst's clock.
func (m *Machine) Send(src, dst int, bytes int) time.Duration {
	sp := m.pes[src]
	cpu := m.cfg.Cost.MsgCost(bytes)
	sp.Advance(cpu)
	if src == dst {
		return sp.Clock()
	}
	m.netBytes.Add(int64(bytes))
	transfer := m.net.TransferTime(src, dst, bytes)
	arrive := sp.Clock() + transfer
	return m.pes[dst].AdvanceTo(arrive)
}

// NetBytes returns the total bytes shipped between distinct PEs since
// the machine was built — the data-movement bill of scans, exchanges
// and result gathering. Monotonic; diff around a statement to meter it.
func (m *Machine) NetBytes() int64 { return m.netBytes.Load() }

// Depart charges src's CPU for marshalling one message and returns its
// departure time on src's clock. Paired with Arrive, it splits Send into
// two phases so a fan-out stage (an exchange) can stamp every departure
// before any receiver advances — the same determinism discipline as the
// POOL runtime's CallAll: no message's start may depend on another
// message's arrival, even when a PE is both sender and receiver of the
// same stage.
func (m *Machine) Depart(src, bytes int) time.Duration {
	sp := m.pes[src]
	sp.Advance(m.cfg.Cost.MsgCost(bytes))
	return sp.Clock()
}

// Arrive completes a Depart-stamped transfer: dst's clock advances to
// the message's arrival (departure plus network transfer) and the
// cross-PE traffic is counted. Returns the arrival time.
func (m *Machine) Arrive(src, dst, bytes int, depart time.Duration) time.Duration {
	if src == dst {
		return m.pes[dst].AdvanceTo(depart)
	}
	m.netBytes.Add(int64(bytes))
	return m.pes[dst].AdvanceTo(depart + m.net.TransferTime(src, dst, bytes))
}

// CountReplyBytes records cross-PE reply traffic whose clock accounting
// the caller performs itself (the POOL runtime's batched fan-outs
// advance the caller once, to the latest arrival, instead of per reply).
func (m *Machine) CountReplyBytes(src, dst, bytes int) {
	if src != dst {
		m.netBytes.Add(int64(bytes))
	}
}

// PE is one processing element. The virtual clock is an atomic counter:
// it is by far the hottest shared word in the engine (every operator
// charges it, and every statement reads the machine-wide maximum twice),
// so it must not share the mutex that guards the memory accounting.
type PE struct {
	id       int
	hasDisk  bool
	m        *Machine
	clock    atomic.Int64 // virtual busy time in nanoseconds
	mu       sync.Mutex   // guards the memory fields below
	memUsed  int64
	memLimit int64
	memPeak  int64
}

// ID returns the PE's index.
func (pe *PE) ID() int { return pe.id }

// HasDisk reports whether the PE has secondary storage attached.
func (pe *PE) HasDisk() bool { return pe.hasDisk }

// Clock returns the PE's virtual busy time.
func (pe *PE) Clock() time.Duration {
	return time.Duration(pe.clock.Load())
}

// Advance adds d to the PE's virtual clock (CPU or disk busy time).
func (pe *PE) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	pe.clock.Add(int64(d))
}

// AdvanceTo moves the clock forward to at least t (waiting on an
// event), returning the resulting clock value.
func (pe *PE) AdvanceTo(t time.Duration) time.Duration {
	for {
		cur := pe.clock.Load()
		if int64(t) <= cur {
			return time.Duration(cur)
		}
		if pe.clock.CompareAndSwap(cur, int64(t)) {
			return t
		}
	}
}

// Alloc reserves n bytes of the PE's main memory; it fails when the 16 MB
// budget would be exceeded (the engine then spills or re-fragments).
func (pe *PE) Alloc(n int64) error {
	if n < 0 {
		return fmt.Errorf("machine: negative allocation")
	}
	pe.mu.Lock()
	defer pe.mu.Unlock()
	if pe.memUsed+n > pe.memLimit {
		return fmt.Errorf("machine: PE %d out of memory (%d used + %d requested > %d limit)",
			pe.id, pe.memUsed, n, pe.memLimit)
	}
	pe.memUsed += n
	if pe.memUsed > pe.memPeak {
		pe.memPeak = pe.memUsed
	}
	return nil
}

// Free releases n bytes of the PE's main memory.
func (pe *PE) Free(n int64) {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	pe.memUsed -= n
	if pe.memUsed < 0 {
		pe.memUsed = 0
	}
}

// MemUsed returns the bytes currently allocated.
func (pe *PE) MemUsed() int64 {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	return pe.memUsed
}

// MemPeak returns the allocation high-water mark.
func (pe *PE) MemPeak() int64 {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	return pe.memPeak
}

// MemLimit returns the PE's memory budget.
func (pe *PE) MemLimit() int64 { return pe.memLimit }
