package machine

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func testStore(t *testing.T) *StableStore {
	t.Helper()
	m, err := New(Config{NumPEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStableStore(m.PE(m.DiskPEs()[0]), m.Disk())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestGroupAppendSequential: with no concurrency, GroupAppend behaves
// exactly like Append — one force per call, correct offsets.
func TestGroupAppendSequential(t *testing.T) {
	s := testStore(t)
	off1, err := s.GroupAppend("log", []byte("aaa"))
	if err != nil || off1 != 0 {
		t.Fatalf("first append: off=%d err=%v", off1, err)
	}
	off2, err := s.GroupAppend("log", []byte("bb"))
	if err != nil || off2 != 3 {
		t.Fatalf("second append: off=%d err=%v", off2, err)
	}
	if got := s.ReadAll("log"); !bytes.Equal(got, []byte("aaabb")) {
		t.Fatalf("segment = %q", got)
	}
	if s.Writes() != 2 || s.Syncs() != 2 {
		t.Fatalf("writes=%d syncs=%d, want 2/2", s.Writes(), s.Syncs())
	}
}

// TestGroupAppendBatchesDeterministic builds a queue while the leader
// slot is artificially occupied, then releases the flush: every queued
// append must land with a single disk force.
func TestGroupAppendBatchesDeterministic(t *testing.T) {
	s := testStore(t)
	const n = 8
	s.gaMu.Lock()
	s.gaLeading = true // hold the leader slot so callers queue up
	s.gaMu.Unlock()

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.GroupAppend(fmt.Sprintf("log-%d", i%2), []byte{byte('0' + i)})
		}(i)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.gaMu.Lock()
		queued := len(s.gaQueue)
		s.gaMu.Unlock()
		if queued == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d appends queued", queued, n)
		}
		time.Sleep(time.Millisecond)
	}
	s.leadGroupFlush()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if s.Syncs() != 1 {
		t.Errorf("syncs = %d, want 1 (one force for the whole batch)", s.Syncs())
	}
	if s.Writes() != n {
		t.Errorf("writes = %d, want %d", s.Writes(), n)
	}
	if got := len(s.ReadAll("log-0")) + len(s.ReadAll("log-1")); got != n {
		t.Errorf("segments hold %d bytes, want %d", got, n)
	}
}

// TestGroupAppendConcurrent: under real concurrency every byte still
// lands durably and forces never exceed appends.
func TestGroupAppendConcurrent(t *testing.T) {
	s := testStore(t)
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.GroupAppend(fmt.Sprintf("log-%d", i%4), []byte("x")); err != nil {
				t.Errorf("append %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	total := 0
	for i := 0; i < 4; i++ {
		total += len(s.ReadAll(fmt.Sprintf("log-%d", i)))
	}
	if total != n {
		t.Fatalf("segments hold %d bytes, want %d", total, n)
	}
	if s.Writes() != n {
		t.Fatalf("writes = %d, want %d", s.Writes(), n)
	}
	if s.Syncs() > s.Writes() {
		t.Fatalf("syncs %d exceed writes %d", s.Syncs(), s.Writes())
	}
}
