package machine

import (
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
)

func newTestMachine(t *testing.T, n int) *Machine {
	t.Helper()
	m, err := New(Config{NumPEs: n})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefaults(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPEs() != 64 {
		t.Errorf("NumPEs = %d, want 64", m.NumPEs())
	}
	if m.PE(0).MemLimit() != 16<<20 {
		t.Errorf("MemLimit = %d, want 16 MB", m.PE(0).MemLimit())
	}
	// Every 8th PE has a disk by default: 8 disks on 64 PEs.
	if got := len(m.DiskPEs()); got != 8 {
		t.Errorf("disk PEs = %d, want 8", got)
	}
	// 64 PEs gets the 8x8 torus by default.
	if m.Net().Topology().Name() != "torus-8x8" {
		t.Errorf("default topology = %q", m.Net().Topology().Name())
	}
}

func TestNonSquareDefaultsToChordalRing(t *testing.T) {
	m := newTestMachine(t, 24)
	name := m.Net().Topology().Name()
	if len(name) < 7 || name[:7] != "chordal" {
		t.Errorf("24-PE default topology = %q, want chordal ring", name)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{NumPEs: -1}); err == nil {
		t.Error("negative PEs should error")
	}
	if _, err := New(Config{MemoryPerPE: -1}); err == nil {
		t.Error("negative memory should error")
	}
	// Topology smaller than the PE count should error.
	top, err := simnet.NewMesh(2, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	small, err := simnet.New(simnet.Config{Topology: top})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{NumPEs: 16, Net: small}); err == nil {
		t.Error("undersized topology should error")
	}
}

func TestNoDisks(t *testing.T) {
	m, err := New(Config{NumPEs: 8, DiskEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.DiskPEs()) != 0 {
		t.Errorf("DiskEvery=-1 should yield no disks")
	}
	if m.NearestDiskPE(3) != -1 {
		t.Errorf("NearestDiskPE should be -1 with no disks")
	}
}

func TestClockAccounting(t *testing.T) {
	m := newTestMachine(t, 4)
	pe := m.PE(1)
	pe.Advance(10 * time.Millisecond)
	pe.Advance(5 * time.Millisecond)
	pe.Advance(-1) // ignored
	if pe.Clock() != 15*time.Millisecond {
		t.Errorf("Clock = %v", pe.Clock())
	}
	pe.AdvanceTo(12 * time.Millisecond) // already past; no-op
	if pe.Clock() != 15*time.Millisecond {
		t.Errorf("AdvanceTo backwards moved the clock: %v", pe.Clock())
	}
	pe.AdvanceTo(20 * time.Millisecond)
	if pe.Clock() != 20*time.Millisecond {
		t.Errorf("AdvanceTo = %v", pe.Clock())
	}
	if m.MaxClock() != 20*time.Millisecond {
		t.Errorf("MaxClock = %v", m.MaxClock())
	}
	if m.TotalClock() != 20*time.Millisecond {
		t.Errorf("TotalClock = %v", m.TotalClock())
	}
	m.ResetClocks()
	if m.MaxClock() != 0 {
		t.Errorf("ResetClocks left %v", m.MaxClock())
	}
}

func TestMemoryAccounting(t *testing.T) {
	m, err := New(Config{NumPEs: 2, MemoryPerPE: 1000})
	if err != nil {
		t.Fatal(err)
	}
	pe := m.PE(0)
	if err := pe.Alloc(600); err != nil {
		t.Fatal(err)
	}
	if err := pe.Alloc(500); err == nil {
		t.Error("over-budget alloc should fail")
	}
	if err := pe.Alloc(400); err != nil {
		t.Errorf("exact-fit alloc failed: %v", err)
	}
	if pe.MemUsed() != 1000 || pe.MemPeak() != 1000 {
		t.Errorf("used %d peak %d", pe.MemUsed(), pe.MemPeak())
	}
	pe.Free(700)
	if pe.MemUsed() != 300 {
		t.Errorf("after free used = %d", pe.MemUsed())
	}
	if pe.MemPeak() != 1000 {
		t.Errorf("peak should persist, got %d", pe.MemPeak())
	}
	pe.Free(10000) // over-free clamps to zero
	if pe.MemUsed() != 0 {
		t.Errorf("over-free used = %d", pe.MemUsed())
	}
	if err := pe.Alloc(-1); err == nil {
		t.Error("negative alloc should error")
	}
}

func TestSendAdvancesReceiver(t *testing.T) {
	m := newTestMachine(t, 16)
	src, dst := m.PE(0), m.PE(5)
	src.Advance(time.Millisecond)
	arrive := m.Send(0, 5, 1024)
	if arrive <= time.Millisecond {
		t.Errorf("arrival %v not after send clock", arrive)
	}
	if dst.Clock() != arrive {
		t.Errorf("receiver clock %v != arrival %v", dst.Clock(), arrive)
	}
	// A busy receiver doesn't move backwards.
	busy := m.PE(9)
	busy.Advance(time.Second)
	arrive2 := m.Send(0, 9, 10)
	if arrive2 != time.Second {
		t.Errorf("busy receiver should stay at 1s, got %v", arrive2)
	}
	// Same-PE sends cost only CPU, no transfer.
	before := src.Clock()
	m.Send(0, 0, 1024)
	if src.Clock() <= before {
		t.Error("same-PE send should still charge marshalling CPU")
	}
}

func TestNearestDiskPE(t *testing.T) {
	m := newTestMachine(t, 64)
	// PE 0 has a disk itself.
	if got := m.NearestDiskPE(0); got != 0 {
		t.Errorf("NearestDiskPE(0) = %d", got)
	}
	got := m.NearestDiskPE(9)
	if got < 0 {
		t.Fatal("no disk found")
	}
	top := m.Net().Topology()
	for _, dp := range m.DiskPEs() {
		if dp == got {
			continue
		}
		if top.Dist(9, dp) < top.Dist(9, got) {
			t.Errorf("disk %d closer than chosen %d", dp, got)
		}
	}
}

func TestConcurrentClockSafety(t *testing.T) {
	m := newTestMachine(t, 4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.PE(j % 4).Advance(time.Microsecond)
				_ = m.PE(j % 4).Clock()
				m.Send(j%4, (j+1)%4, 64)
			}
		}()
	}
	wg.Wait()
	if m.TotalClock() <= 0 {
		t.Error("clocks should have advanced")
	}
}
