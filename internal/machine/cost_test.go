package machine

import (
	"testing"
	"time"
)

func TestCostModelDefaults(t *testing.T) {
	var c CostModel
	c.fill()
	if c.MIPS != 2.0 {
		t.Errorf("MIPS = %v", c.MIPS)
	}
	// 150 instructions at 2 MIPS = 75 µs per interpreted tuple.
	if got := c.ScanCost(1, false); got != 75*time.Microsecond {
		t.Errorf("interpreted scan = %v, want 75µs", got)
	}
	// The compiled/interpreted ratio is 10x: the §2.5 claim.
	interp := c.ScanCost(1000, false)
	comp := c.ScanCost(1000, true)
	if interp != 10*comp {
		t.Errorf("interpreted %v vs compiled %v: want exactly 10x default ratio", interp, comp)
	}
}

func TestCostScaling(t *testing.T) {
	var c CostModel
	c.fill()
	if c.ScanCost(2000, true) != 2*c.ScanCost(1000, true) {
		t.Error("scan cost must scale linearly")
	}
	if c.HashCost(100) <= c.CompareCost(100) {
		t.Error("hashing a tuple costs more than comparing")
	}
	if c.MsgCost(10000) <= c.MsgCost(10) {
		t.Error("bigger messages cost more")
	}
	if c.ScanCost(0, false) != 0 || c.HashCost(0) != 0 || c.BuildCost(0) != 0 {
		t.Error("zero-op costs must be zero")
	}
	if c.ScanCost(-5, false) != 0 {
		t.Error("negative counts must cost zero")
	}
	if c.CompileCost() <= 0 {
		t.Error("expression compilation must cost something")
	}
}

func TestSortCost(t *testing.T) {
	var c CostModel
	c.fill()
	if c.SortCost(1) != 0 || c.SortCost(0) != 0 {
		t.Error("sorting <2 tuples is free")
	}
	// n log n growth: 4x the tuples costs more than 4x.
	small := c.SortCost(1000)
	big := c.SortCost(4000)
	if big <= 4*small {
		t.Errorf("sort cost not superlinear: %v vs %v", small, big)
	}
}

func TestDiskModelDefaults(t *testing.T) {
	var d DiskModel
	d.fill()
	if d.Seek != 24*time.Millisecond {
		t.Errorf("Seek = %v", d.Seek)
	}
	// Reading 1 MB sequentially: 24 ms seek + 1 s transfer.
	got := d.SequentialRead(1 << 20)
	want := 24*time.Millisecond + time.Second
	if got != want {
		t.Errorf("SequentialRead(1MB) = %v, want %v", got, want)
	}
	if d.SequentialRead(0) != 0 || d.SequentialWrite(0) != 0 || d.RandomRead(0) != 0 {
		t.Error("zero-byte I/O is free")
	}
	// Random reads dominate: 100 scattered blocks cost ~100 seeks.
	if d.RandomRead(100) < 100*d.Seek {
		t.Errorf("RandomRead(100) = %v too cheap", d.RandomRead(100))
	}
	// Log appends amortize the seek.
	if d.SequentialWrite(4096) >= d.SequentialRead(4096) {
		t.Error("log append should be cheaper than a cold read")
	}
}

// TestMemoryVsDiskGap quantifies why PRISMA keeps data in main memory:
// scanning a fragment from memory (CPU only) versus paging it from disk
// differs by orders of magnitude under 1988 parameters.
func TestMemoryVsDiskGap(t *testing.T) {
	var c CostModel
	c.fill()
	var d DiskModel
	d.fill()
	const tuples = 10000
	const bytesPerTuple = 64
	memTime := c.ScanCost(tuples, true)
	diskTime := d.SequentialRead(tuples*bytesPerTuple) + memTime
	if diskTime < 5*memTime {
		t.Errorf("disk path %v should dwarf memory path %v", diskTime, memTime)
	}
}
