package machine

import "time"

// CostModel converts engine operations into virtual CPU time on a
// processing element. The defaults model a 1988-era PE (a 68020-class
// processor around 2 MIPS, as in the DOOM machine the paper builds on).
// Instruction counts per operation are rough but their *ratios* carry the
// experiments: compiled expression evaluation is ~10x cheaper than
// interpreted (paper §2.5), hashing costs more than comparing, and
// message handling costs per byte.
type CostModel struct {
	// MIPS is the PE's instruction rate in millions per second.
	MIPS float64
	// InstrScanInterp is instructions to evaluate one interpreted
	// predicate node-tree against one tuple.
	InstrScanInterp float64
	// InstrScanCompiled is instructions for the compiled equivalent.
	InstrScanCompiled float64
	// InstrCompare is instructions per tuple comparison (sort/merge).
	InstrCompare float64
	// InstrHash is instructions per hash+probe/insert of one tuple.
	InstrHash float64
	// InstrBuild is instructions to materialize one output tuple.
	InstrBuild float64
	// InstrMsgFixed is the fixed instruction cost to send one message.
	InstrMsgFixed float64
	// InstrMsgPerByte is instructions per message byte (marshalling).
	InstrMsgPerByte float64
	// InstrExprCompile is the one-time cost of compiling an expression
	// (the OFM expression compiler's price of admission).
	InstrExprCompile float64
}

func (c *CostModel) fill() {
	if c.MIPS == 0 {
		c.MIPS = 2.0
	}
	if c.InstrScanInterp == 0 {
		c.InstrScanInterp = 150
	}
	if c.InstrScanCompiled == 0 {
		c.InstrScanCompiled = 15
	}
	if c.InstrCompare == 0 {
		c.InstrCompare = 25
	}
	if c.InstrHash == 0 {
		c.InstrHash = 60
	}
	if c.InstrBuild == 0 {
		c.InstrBuild = 40
	}
	if c.InstrMsgFixed == 0 {
		c.InstrMsgFixed = 1000
	}
	if c.InstrMsgPerByte == 0 {
		c.InstrMsgPerByte = 2
	}
	if c.InstrExprCompile == 0 {
		c.InstrExprCompile = 50000
	}
}

// DefaultCostModel returns the 1988-calibrated cost model.
func DefaultCostModel() CostModel {
	var c CostModel
	c.fill()
	return c
}

// instr converts an instruction count to virtual time.
func (c CostModel) instr(n float64) time.Duration {
	if n <= 0 || c.MIPS <= 0 {
		return 0
	}
	return time.Duration(n / c.MIPS * 1e3) // n instr / (MIPS*1e6 instr/s) in ns
}

// ScanCost returns CPU time to filter n tuples, interpreted or compiled.
func (c CostModel) ScanCost(n int, compiled bool) time.Duration {
	per := c.InstrScanInterp
	if compiled {
		per = c.InstrScanCompiled
	}
	return c.instr(per * float64(n))
}

// CompileCost returns the one-time expression compilation cost.
func (c CostModel) CompileCost() time.Duration { return c.instr(c.InstrExprCompile) }

// CompareCost returns CPU time for n tuple comparisons.
func (c CostModel) CompareCost(n int) time.Duration { return c.instr(c.InstrCompare * float64(n)) }

// HashCost returns CPU time for n hash operations.
func (c CostModel) HashCost(n int) time.Duration { return c.instr(c.InstrHash * float64(n)) }

// BuildCost returns CPU time to materialize n output tuples.
func (c CostModel) BuildCost(n int) time.Duration { return c.instr(c.InstrBuild * float64(n)) }

// MsgCost returns sender CPU time for one message of the given size.
func (c CostModel) MsgCost(bytes int) time.Duration {
	return c.instr(c.InstrMsgFixed + c.InstrMsgPerByte*float64(bytes))
}

// SortCost returns CPU time to sort n tuples (n log2 n comparisons).
func (c CostModel) SortCost(n int) time.Duration {
	if n < 2 {
		return 0
	}
	log := 0
	for v := n; v > 1; v >>= 1 {
		log++
	}
	return c.CompareCost(n * log)
}

// DiskModel charges virtual time for secondary storage, calibrated to a
// late-1980s Winchester disk: ~24 ms average positioning, ~1 MB/s
// sustained transfer. The three-orders-of-magnitude gap between these
// numbers and main-memory access is the reason PRISMA is a main-memory
// machine (paper §2.1); experiment E3 measures it.
type DiskModel struct {
	// Seek is average seek plus rotational latency per random access.
	Seek time.Duration
	// TransferBps is sustained sequential transfer in bytes/second.
	TransferBps float64
	// BlockBytes is the granularity of one random access.
	BlockBytes int
}

func (d *DiskModel) fill() {
	if d.Seek == 0 {
		d.Seek = 24 * time.Millisecond
	}
	if d.TransferBps == 0 {
		d.TransferBps = 1 << 20 // 1 MB/s
	}
	if d.BlockBytes == 0 {
		d.BlockBytes = 4096
	}
}

// DefaultDiskModel returns the 1988-calibrated disk model.
func DefaultDiskModel() DiskModel {
	var d DiskModel
	d.fill()
	return d
}

// transfer returns pure transfer time for n bytes.
func (d DiskModel) transfer(bytes int) time.Duration {
	if bytes <= 0 || d.TransferBps <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / d.TransferBps * float64(time.Second))
}

// SequentialRead returns time for one positioned, contiguous read.
func (d DiskModel) SequentialRead(bytes int) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return d.Seek + d.transfer(bytes)
}

// SequentialWrite returns time for one positioned, contiguous write
// (appends to a log pay this; the seek amortizes to near zero on a
// dedicated log disk, so only a quarter of the seek is charged).
func (d DiskModel) SequentialWrite(bytes int) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return d.Seek/4 + d.transfer(bytes)
}

// RandomRead returns time to read n blocks scattered over the disk.
func (d DiskModel) RandomRead(blocks int) time.Duration {
	if blocks <= 0 {
		return 0
	}
	per := d.Seek + d.transfer(d.BlockBytes)
	return time.Duration(blocks) * per
}
