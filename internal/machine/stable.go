package machine

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fault"
)

// Fault points on the stable-storage write paths. The torn variants
// model a power failure mid-write: a prefix of the append lands, the
// rest is garbage, and the machine is dead from that instant.
var (
	fpAppendPre  = fault.Register("stable.append.pre")
	fpAppendTorn = fault.Register("stable.append.torn")
	fpGroupPre   = fault.Register("stable.groupcommit.pre")
	fpGroupTorn  = fault.Register("stable.groupcommit.torn")
	fpCkptSwap   = fault.Register("stable.checkpoint.swap")
)

// StableStore is the stable storage the paper's §3.2 describes: "some of
// the processing elements will also be connected to secondary storage
// (disk). Using these, the multi-computer system implements stable
// storage and automatic recovery upon system failures."
//
// It holds named append-only segments that survive simulated crashes
// (Crash clears nothing here — volatile state lives in the engine, which
// discards it and replays from these segments). Every operation charges
// virtual disk time to the owning PE.
type StableStore struct {
	pe   *PE
	disk DiskModel
	dom  *fault.Domain

	mu       sync.Mutex
	segments map[string][]byte
	writes   int
	syncs    int

	// Group commit: concurrent GroupAppend calls queue here; the first
	// arrival leads the flush, forcing the whole batch with one disk
	// charge (see GroupAppend).
	gaMu      sync.Mutex
	gaQueue   []*groupAppend
	gaLeading bool
}

// groupAppend is one queued append awaiting the group flush. A queued
// entry may instead be appointed leader (lead fires), making its
// goroutine flush the batch that contains it.
type groupAppend struct {
	name string
	data []byte
	off  int64
	done chan error
	lead chan struct{}
}

// NewStableStore attaches stable storage to a disk-equipped PE.
func NewStableStore(pe *PE, disk DiskModel) (*StableStore, error) {
	if pe == nil {
		return nil, fmt.Errorf("machine: stable store needs a PE")
	}
	if !pe.HasDisk() {
		return nil, fmt.Errorf("machine: PE %d has no disk", pe.ID())
	}
	(&disk).fill()
	return &StableStore{pe: pe, disk: disk, dom: fault.DefaultDomain, segments: map[string][]byte{}}, nil
}

// SetFaultDomain scopes this store's crash poison to dom (nil resets to
// the process-wide default). Multi-node tests give each simulated
// machine its own domain so one machine's crash leaves the others'
// disks writable.
func (s *StableStore) SetFaultDomain(dom *fault.Domain) {
	if dom == nil {
		dom = fault.DefaultDomain
	}
	s.dom = dom
}

// PE returns the owning processing element.
func (s *StableStore) PE() *PE { return s.pe }

// Append durably appends b to the named segment and returns the offset
// at which it was written. The PE is charged a sequential write.
func (s *StableStore) Append(name string, b []byte) (int64, error) {
	if name == "" {
		return 0, fmt.Errorf("machine: empty segment name")
	}
	if s.dom.Crashed() {
		return 0, fault.ErrCrashed
	}
	if out := fpAppendPre.Eval(); out != nil {
		return 0, out.Err
	}
	if out := fpAppendTorn.EvalWrite(len(b)); out != nil {
		return 0, s.tornWrite(name, b, out)
	}
	s.mu.Lock()
	seg := s.segments[name]
	off := int64(len(seg))
	s.segments[name] = append(seg, b...)
	s.writes++
	s.syncs++
	s.mu.Unlock()
	s.pe.Advance(s.disk.SequentialWrite(len(b)))
	return off, nil
}

// tornWrite lands only the prefix of b that a torn fault outcome allows
// (nothing when the fault fired without a tear offset) and reports the
// injected failure. The caller's bytes are partially down — exactly the
// state recovery's torn-tail handling exists for.
func (s *StableStore) tornWrite(name string, b []byte, out *fault.Outcome) error {
	if out.Tear > 0 {
		prefix := b
		if out.Tear < len(prefix) {
			prefix = prefix[:out.Tear]
		}
		s.mu.Lock()
		s.segments[name] = append(s.segments[name], prefix...)
		s.writes++
		s.syncs++
		s.mu.Unlock()
		s.pe.Advance(s.disk.SequentialWrite(len(prefix)))
	}
	return out.Err
}

// GroupAppend durably appends b to the named segment like Append, but
// batches the disk force with other GroupAppend calls in flight on this
// store — the group-commit path of the disk PE. The first caller to
// find no flush in progress becomes the leader (playing the commit
// daemon's role for one burst): it takes the queue as a batch, applies
// every queued append to its segment, and charges the PE a single
// sequential write of the combined size — one force instead of one per
// caller. A leader flushes exactly one batch (the one containing its
// own append); if more appends queued during the flush, it appoints
// the first of them leader of the next batch instead of looping, so no
// caller's latency grows with other transactions' arrivals. Callers
// return only once their bytes are down; under no concurrency the
// behavior and cost degenerate to a plain Append.
func (s *StableStore) GroupAppend(name string, b []byte) (int64, error) {
	if name == "" {
		return 0, fmt.Errorf("machine: empty segment name")
	}
	if s.dom.Crashed() {
		return 0, fault.ErrCrashed
	}
	if out := fpGroupPre.Eval(); out != nil {
		return 0, out.Err
	}
	if out := fpGroupTorn.EvalWrite(len(b)); out != nil {
		// The commit burst dies mid-force: this caller's record tears and
		// the machine crashes, so appends queued behind it fail whole in
		// leadGroupFlush.
		return 0, s.tornWrite(name, b, out)
	}
	ga := &groupAppend{name: name, data: b, done: make(chan error, 1), lead: make(chan struct{}, 1)}
	s.gaMu.Lock()
	s.gaQueue = append(s.gaQueue, ga)
	if s.gaLeading {
		s.gaMu.Unlock()
		select {
		case err := <-ga.done:
			// The running leader's batch included this append.
			if err != nil {
				return 0, err
			}
			return ga.off, nil
		case <-ga.lead:
			// Appointed leader of the batch containing this append.
		}
	} else {
		s.gaLeading = true
		s.gaMu.Unlock()
	}
	s.leadGroupFlush()
	if err := <-ga.done; err != nil {
		return 0, err
	}
	return ga.off, nil
}

// leadGroupFlush flushes the currently queued batch with one disk
// force, then appoints the next leader (if appends queued during the
// flush) or steps down. Called without gaMu held, by the goroutine
// holding leadership.
func (s *StableStore) leadGroupFlush() {
	s.gaMu.Lock()
	batch := s.gaQueue
	s.gaQueue = nil
	s.gaMu.Unlock()

	if s.dom.Crashed() {
		// The machine died before this force: the whole burst is lost.
		for _, ga := range batch {
			ga.done <- fault.ErrCrashed
		}
		s.gaMu.Lock()
		if len(s.gaQueue) > 0 {
			s.gaQueue[0].lead <- struct{}{}
		} else {
			s.gaLeading = false
		}
		s.gaMu.Unlock()
		return
	}

	total := 0
	s.mu.Lock()
	for _, ga := range batch {
		seg := s.segments[ga.name]
		ga.off = int64(len(seg))
		s.segments[ga.name] = append(seg, ga.data...)
		s.writes++
		total += len(ga.data)
	}
	if len(batch) > 0 {
		s.syncs++
	}
	s.mu.Unlock()
	// One positioned write covers the whole batch.
	s.pe.Advance(s.disk.SequentialWrite(total))
	for _, ga := range batch {
		ga.done <- nil
	}

	s.gaMu.Lock()
	if len(s.gaQueue) > 0 {
		s.gaQueue[0].lead <- struct{}{} // hand leadership to a queued append
	} else {
		s.gaLeading = false
	}
	s.gaMu.Unlock()
}

// ReadAll returns a copy of the named segment's full contents, charging
// one sequential read. A missing segment reads as empty.
func (s *StableStore) ReadAll(name string) []byte {
	s.mu.Lock()
	seg := s.segments[name]
	out := append([]byte(nil), seg...)
	s.mu.Unlock()
	s.pe.Advance(s.disk.SequentialRead(len(out)))
	return out
}

// Size returns the current length of the named segment without charging
// disk time (metadata is cached in memory).
func (s *StableStore) Size(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.segments[name]))
}

// Replace atomically replaces the named segment's contents (used by
// checkpointing: write the snapshot, then truncate the log).
func (s *StableStore) Replace(name string, b []byte) error {
	if s.dom.Crashed() {
		return fault.ErrCrashed
	}
	s.mu.Lock()
	s.segments[name] = append([]byte(nil), b...)
	s.writes++
	s.syncs++
	s.mu.Unlock()
	s.pe.Advance(s.disk.SequentialWrite(len(b)))
	return nil
}

// Truncate empties the named segment (log truncation after checkpoint).
func (s *StableStore) Truncate(name string) error {
	if s.dom.Crashed() {
		return fault.ErrCrashed
	}
	s.mu.Lock()
	delete(s.segments, name)
	s.mu.Unlock()
	s.pe.Advance(s.disk.SequentialWrite(0) + s.disk.Seek/4)
	return nil
}

// CheckpointSwap atomically installs a new checkpoint image and
// replaces the log segment it covers with logTail (normally empty; a
// checkpoint taken while transactions sit prepared-but-undecided
// carries their redo records forward so an in-doubt commit decision
// can still be honored after a crash), under one lock and one disk
// force. Doing all of it in one step closes the crash window a
// Replace-then-Truncate pair would leave (new snapshot plus stale log
// means committed work replays twice; new snapshot plus an empty log
// and a separate carry append loses an in-doubt transaction); a real
// disk implementation would write snapshot and tail to side files and
// rename them over the old ones.
func (s *StableStore) CheckpointSwap(ckptName string, snapshot []byte, logName string, logTail []byte) error {
	if s.dom.Crashed() {
		return fault.ErrCrashed
	}
	if out := fpCkptSwap.Eval(); out != nil {
		return out.Err
	}
	s.mu.Lock()
	s.segments[ckptName] = append([]byte(nil), snapshot...)
	if len(logTail) > 0 {
		s.segments[logName] = append([]byte(nil), logTail...)
	} else {
		delete(s.segments, logName)
	}
	s.writes++
	s.syncs++
	s.mu.Unlock()
	s.pe.Advance(s.disk.SequentialWrite(len(snapshot)) + s.disk.Seek/4)
	return nil
}

// TruncateTo shortens the named segment to n bytes — recovery's tail
// repair after a torn append: the garbage past the last valid record is
// cut so the next append lands on a clean prefix.
func (s *StableStore) TruncateTo(name string, n int64) error {
	if s.dom.Crashed() {
		return fault.ErrCrashed
	}
	s.mu.Lock()
	seg := s.segments[name]
	if n < 0 {
		n = 0
	}
	if n < int64(len(seg)) {
		s.segments[name] = seg[:n:n]
		s.writes++
		s.syncs++
	}
	s.mu.Unlock()
	s.pe.Advance(s.disk.SequentialWrite(0) + s.disk.Seek/4)
	return nil
}

// Segments lists the existing segment names (order unspecified).
func (s *StableStore) Segments() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.segments))
	for name := range s.segments {
		out = append(out, name)
	}
	return out
}

// Writes returns how many durable writes the store has performed.
func (s *StableStore) Writes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes
}

// Syncs returns how many disk forces the store has performed. With
// group commit, concurrent GroupAppend calls share one force, so syncs
// falls below writes under commit bursts.
func (s *StableStore) Syncs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}

// SimulatedWriteTime returns the virtual time one append of n bytes costs.
func (s *StableStore) SimulatedWriteTime(n int) time.Duration {
	return s.disk.SequentialWrite(n)
}
