package machine

import (
	"fmt"
	"sync"
	"time"
)

// StableStore is the stable storage the paper's §3.2 describes: "some of
// the processing elements will also be connected to secondary storage
// (disk). Using these, the multi-computer system implements stable
// storage and automatic recovery upon system failures."
//
// It holds named append-only segments that survive simulated crashes
// (Crash clears nothing here — volatile state lives in the engine, which
// discards it and replays from these segments). Every operation charges
// virtual disk time to the owning PE.
type StableStore struct {
	pe   *PE
	disk DiskModel

	mu       sync.Mutex
	segments map[string][]byte
	writes   int
	syncs    int
}

// NewStableStore attaches stable storage to a disk-equipped PE.
func NewStableStore(pe *PE, disk DiskModel) (*StableStore, error) {
	if pe == nil {
		return nil, fmt.Errorf("machine: stable store needs a PE")
	}
	if !pe.HasDisk() {
		return nil, fmt.Errorf("machine: PE %d has no disk", pe.ID())
	}
	(&disk).fill()
	return &StableStore{pe: pe, disk: disk, segments: map[string][]byte{}}, nil
}

// PE returns the owning processing element.
func (s *StableStore) PE() *PE { return s.pe }

// Append durably appends b to the named segment and returns the offset
// at which it was written. The PE is charged a sequential write.
func (s *StableStore) Append(name string, b []byte) (int64, error) {
	if name == "" {
		return 0, fmt.Errorf("machine: empty segment name")
	}
	s.mu.Lock()
	seg := s.segments[name]
	off := int64(len(seg))
	s.segments[name] = append(seg, b...)
	s.writes++
	s.syncs++
	s.mu.Unlock()
	s.pe.Advance(s.disk.SequentialWrite(len(b)))
	return off, nil
}

// ReadAll returns a copy of the named segment's full contents, charging
// one sequential read. A missing segment reads as empty.
func (s *StableStore) ReadAll(name string) []byte {
	s.mu.Lock()
	seg := s.segments[name]
	out := append([]byte(nil), seg...)
	s.mu.Unlock()
	s.pe.Advance(s.disk.SequentialRead(len(out)))
	return out
}

// Size returns the current length of the named segment without charging
// disk time (metadata is cached in memory).
func (s *StableStore) Size(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.segments[name]))
}

// Replace atomically replaces the named segment's contents (used by
// checkpointing: write the snapshot, then truncate the log).
func (s *StableStore) Replace(name string, b []byte) {
	s.mu.Lock()
	s.segments[name] = append([]byte(nil), b...)
	s.writes++
	s.syncs++
	s.mu.Unlock()
	s.pe.Advance(s.disk.SequentialWrite(len(b)))
}

// Truncate empties the named segment (log truncation after checkpoint).
func (s *StableStore) Truncate(name string) {
	s.mu.Lock()
	delete(s.segments, name)
	s.mu.Unlock()
	s.pe.Advance(s.disk.SequentialWrite(0) + s.disk.Seek/4)
}

// Segments lists the existing segment names (order unspecified).
func (s *StableStore) Segments() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.segments))
	for name := range s.segments {
		out = append(out, name)
	}
	return out
}

// Writes returns how many durable writes the store has performed.
func (s *StableStore) Writes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes
}

// SimulatedWriteTime returns the virtual time one append of n bytes costs.
func (s *StableStore) SimulatedWriteTime(n int) time.Duration {
	return s.disk.SequentialWrite(n)
}
