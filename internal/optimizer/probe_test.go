package optimizer

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/value"
)

func TestPointProbeRewrite(t *testing.T) {
	c := testCatalog(t)
	o := New(c, AllRules())

	// Equality on the single-column primary key becomes an IndexProbe.
	sc := scan(t, c, "emp")
	sc.Pred = bindOn(t, expr.NewCmp(expr.EQ, expr.NewCol("id"), expr.NewConst(value.NewInt(7))), sc.Out)
	root := o.Optimize(sc)
	pr, ok := root.(*plan.IndexProbe)
	if !ok {
		t.Fatalf("got %T, want IndexProbe:\n%s", root, plan.Format(root))
	}
	if pr.Col != 0 || pr.Rest != nil {
		t.Fatalf("probe = %s", pr)
	}
	if plan.EstRows(pr) != 1 {
		t.Errorf("EstRows = %d", plan.EstRows(pr))
	}

	// Extra conjuncts survive as the residual.
	sc = scan(t, c, "emp")
	sc.Pred = bindOn(t, expr.NewAnd(
		expr.NewCmp(expr.EQ, expr.NewCol("id"), expr.NewConst(value.NewInt(7))),
		expr.NewCmp(expr.GT, expr.NewCol("salary"), expr.NewConst(value.NewInt(10)))), sc.Out)
	root = o.Optimize(sc)
	pr, ok = root.(*plan.IndexProbe)
	if !ok {
		t.Fatalf("conjunct probe: got %T", root)
	}
	if pr.Rest == nil || !strings.Contains(pr.Rest.String(), "salary") {
		t.Errorf("residual = %v", pr.Rest)
	}

	// Parameters qualify too (the prepared point-query path).
	sc = scan(t, c, "emp")
	sc.Pred = bindOn(t, expr.NewCmp(expr.EQ, expr.NewCol("id"), expr.NewParam(0)), sc.Out)
	if _, ok := o.Optimize(sc).(*plan.IndexProbe); !ok {
		t.Error("param key did not qualify for the probe")
	}
}

func TestPointProbeDeclines(t *testing.T) {
	c := testCatalog(t)
	o := New(c, AllRules())

	// Equality on a non-key column stays a scan.
	sc := scan(t, c, "emp")
	sc.Pred = bindOn(t, expr.NewCmp(expr.EQ, expr.NewCol("dept"), expr.NewConst(value.NewString("eng"))), sc.Out)
	if _, ok := o.Optimize(sc).(*plan.IndexProbe); ok {
		t.Error("non-key equality got a probe")
	}

	// A FLOAT literal on an INT key would never match the encoded index
	// key; the rewrite must decline.
	sc = scan(t, c, "emp")
	sc.Pred = bindOn(t, expr.NewCmp(expr.EQ, expr.NewCol("id"), expr.NewConst(value.NewFloat(7))), sc.Out)
	if _, ok := o.Optimize(sc).(*plan.IndexProbe); ok {
		t.Error("kind-mismatched key got a probe")
	}

	// Range predicates stay scans.
	sc = scan(t, c, "emp")
	sc.Pred = bindOn(t, expr.NewCmp(expr.GT, expr.NewCol("id"), expr.NewConst(value.NewInt(7))), sc.Out)
	if _, ok := o.Optimize(sc).(*plan.IndexProbe); ok {
		t.Error("range predicate got a probe")
	}

	// With the rule off, nothing rewrites.
	opts := AllRules()
	opts.PointProbe = false
	o2 := New(c, opts)
	sc = scan(t, c, "emp")
	sc.Pred = bindOn(t, expr.NewCmp(expr.EQ, expr.NewCol("id"), expr.NewConst(value.NewInt(7))), sc.Out)
	if _, ok := o2.Optimize(sc).(*plan.IndexProbe); ok {
		t.Error("disabled rule still rewrote")
	}
}
