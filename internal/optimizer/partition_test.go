package optimizer

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/value"
)

// TestPartitionJoinOfJoins: the partition pass must plan the whole
// tree — an outer join whose left child is itself a join gets Exchange
// children and a distributed method instead of degrading to central.
func TestPartitionJoinOfJoins(t *testing.T) {
	c := testCatalog(t)
	o := New(c, AllRules())
	a, b, d := scan(t, c, "emp"), scan(t, c, "emp"), scan(t, c, "emp")
	inner := &plan.Join{Left: a, Right: b, LeftKeys: []int{2}, RightKeys: []int{2},
		Out: a.Out.Concat(b.Out)}
	// Outer joins the inner's salary-typed output col 1 (dept would be
	// col 1 of inner.Out) against emp col 1: a different key than the
	// inner join's, forcing a re-exchange of the intermediate.
	outer := &plan.Join{Left: inner, Right: d, LeftKeys: []int{1}, RightKeys: []int{1},
		Out: inner.Out.Concat(d.Out)}
	root := o.Optimize(outer)
	f := plan.Format(root)
	if strings.Contains(f, "method=central") {
		t.Fatalf("join of joins degraded to central:\n%s", f)
	}
	if outer.Method != plan.JoinRepartition {
		t.Errorf("outer method = %v, want repartition\n%s", outer.Method, f)
	}
	if _, ok := outer.Left.(*plan.Exchange); !ok {
		t.Errorf("outer left child is %T, want *plan.Exchange\n%s", outer.Left, f)
	}
	if inner.Method != plan.JoinRepartition {
		t.Errorf("inner method = %v, want repartition\n%s", inner.Method, f)
	}
}

// TestPartitionChainedJoinSameKey: when the outer join's key is exactly
// the inner join's output partitioning, the intermediate is consumed in
// place — no exchange above the inner join (colocated over
// intermediates; the method stays "repartition" because the scan side
// still exchanges).
func TestPartitionChainedJoinSameKey(t *testing.T) {
	c := testCatalog(t)
	o := New(c, AllRules())
	a, b, d := scan(t, c, "emp"), scan(t, c, "emp"), scan(t, c, "emp")
	inner := &plan.Join{Left: a, Right: b, LeftKeys: []int{2}, RightKeys: []int{2},
		Out: a.Out.Concat(b.Out)}
	outer := &plan.Join{Left: inner, Right: d, LeftKeys: []int{2}, RightKeys: []int{2},
		Out: inner.Out.Concat(d.Out)}
	root := o.Optimize(outer)
	f := plan.Format(root)
	if _, ok := outer.Left.(*plan.Exchange); ok {
		t.Errorf("outer re-exchanges an already-aligned intermediate:\n%s", f)
	}
	if _, ok := outer.Right.(*plan.Exchange); !ok {
		t.Errorf("outer right child is %T, want *plan.Exchange\n%s", outer.Right, f)
	}
	if outer.Method != plan.JoinRepartition {
		t.Errorf("outer method = %v\n%s", outer.Method, f)
	}
}

// TestPartitionBroadcastOverIntermediate: a tiny side joined against a
// partitioned intermediate broadcasts — marked by an
// Exchange(broadcast) over the small side.
func TestPartitionBroadcastOverIntermediate(t *testing.T) {
	c := testCatalog(t)
	o := New(c, AllRules())
	a, b := scan(t, c, "emp"), scan(t, c, "emp")
	inner := &plan.Join{Left: a, Right: b, LeftKeys: []int{2}, RightKeys: []int{2},
		Out: a.Out.Concat(b.Out)}
	small := scan(t, c, "dept") // 10 rows, single fragment
	outer := &plan.Join{Left: inner, Right: small, LeftKeys: []int{1}, RightKeys: []int{0},
		Out: inner.Out.Concat(small.Out)}
	root := o.Optimize(outer)
	f := plan.Format(root)
	if outer.Method != plan.JoinBroadcast {
		t.Fatalf("method = %v, want broadcast\n%s", outer.Method, f)
	}
	// orderJoins may have swapped the small side to the left; the
	// Exchange(broadcast) marker identifies it on either side.
	x, ok := outer.Right.(*plan.Exchange)
	if !ok {
		x, ok = outer.Left.(*plan.Exchange)
	}
	if !ok || x.Part.Kind != plan.PartBroadcast {
		t.Fatalf("no Exchange(broadcast) side on the join:\n%s", f)
	}
}

// TestPartitionProjectKeyRemap: a projection between the inner join and
// the outer join keeps the partitioning property when it passes the key
// column through (no re-exchange), and loses it when the key is
// projected away (re-exchange required).
func TestPartitionProjectKeyRemap(t *testing.T) {
	c := testCatalog(t)
	for _, keep := range []bool{true, false} {
		o := New(c, AllRules())
		a, b, d := scan(t, c, "emp"), scan(t, c, "emp"), scan(t, c, "emp")
		inner := &plan.Join{Left: a, Right: b, LeftKeys: []int{2}, RightKeys: []int{2},
			Out: a.Out.Concat(b.Out)}
		// Project either [salary(2), id(0)] (key kept, now at 0... key 2
		// moves to position 0) or [id(0)] (key dropped).
		exprs := []expr.Expr{expr.NewColIdx(2, value.KindInt)}
		names := []string{"salary"}
		out := []value.Column{{Name: "salary", Kind: value.KindInt}}
		if !keep {
			exprs = []expr.Expr{expr.NewColIdx(0, value.KindInt)}
			names = []string{"id"}
			out = []value.Column{{Name: "id", Kind: value.KindInt}}
		}
		proj := &plan.Project{Child: inner, Exprs: exprs, Names: names, Out: value.NewSchema(out...)}
		key := 0 // both variants put their single column at position 0
		outer := &plan.Join{Left: proj, Right: d, LeftKeys: []int{key}, RightKeys: []int{2},
			Out: proj.Out.Concat(d.Out)}
		root := o.Optimize(outer)
		f := plan.Format(root)
		_, exchanged := outer.Left.(*plan.Exchange)
		if keep && exchanged {
			t.Errorf("key-preserving projection re-exchanged:\n%s", f)
		}
		if !keep && !exchanged {
			t.Errorf("key-dropping projection not re-exchanged:\n%s", f)
		}
	}
}

// TestPartitionSortDistinctFlags: Sort and Distinct run parallel over
// partitioned children only.
func TestPartitionSortDistinctFlags(t *testing.T) {
	c := testCatalog(t)
	o := New(c, AllRules())
	srt := &plan.Sort{Child: scan(t, c, "emp"), Cols: []int{0}}
	o.Optimize(srt)
	if !srt.Parallel {
		t.Error("sort over fragmented scan not parallel")
	}
	o2 := New(c, AllRules())
	srt2 := &plan.Sort{Child: scan(t, c, "dept"), Cols: []int{0}}
	o2.Optimize(srt2)
	if srt2.Parallel {
		t.Error("sort over single-fragment scan marked parallel")
	}
	o3 := New(c, AllRules())
	dst := &plan.Distinct{Child: scan(t, c, "emp")}
	o3.Optimize(dst)
	if !dst.Parallel {
		t.Error("distinct over fragmented scan not parallel")
	}
}
