// Package optimizer is the knowledge-based query optimizer of the Global
// Data Handler (paper §2.4): "the knowledge base contains rules
// concerning logical transformations, estimating sizes of intermediate
// results, detection of common subexpressions, and applying parallelism
// to minimize response time."
//
// The knowledge base is literally a list of rewrite rules applied to the
// logical plan until fixpoint. Rule groups can be toggled independently,
// which is what the E9 ablation experiment sweeps.
package optimizer

import (
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/fragment"
	"repro/internal/plan"
)

// Options enables rule groups of the knowledge base.
type Options struct {
	// Pushdown moves selection predicates toward the scans.
	Pushdown bool
	// JoinOrder reorders join chains smallest-estimate-first.
	JoinOrder bool
	// CSE marks identical scan subtrees as shared.
	CSE bool
	// Parallel chooses distributed join methods and aggregate pushdown.
	Parallel bool
	// PointProbe compiles an equality predicate on a hash-indexed key
	// into a direct IndexProbe node instead of Scan→Select.
	PointProbe bool
	// Selectivity is the assumed fraction of rows a predicate keeps
	// (0 takes the default 0.33; equality on a key estimates sharper).
	Selectivity float64
}

// AllRules enables the complete knowledge base.
func AllRules() Options {
	return Options{Pushdown: true, JoinOrder: true, CSE: true, Parallel: true, PointProbe: true}
}

// Optimizer rewrites logical plans using catalog statistics.
type Optimizer struct {
	cat  *catalog.Catalog
	opts Options
}

// New builds an optimizer over a catalog.
func New(cat *catalog.Catalog, opts Options) *Optimizer {
	if opts.Selectivity <= 0 || opts.Selectivity >= 1 {
		opts.Selectivity = 0.33
	}
	return &Optimizer{cat: cat, opts: opts}
}

// Options returns the enabled rule groups.
func (o *Optimizer) Options() Options { return o.opts }

// Optimize rewrites the plan: estimation, pushdown, join ordering, CSE
// and parallelization, in that order.
func (o *Optimizer) Optimize(root plan.Node) plan.Node {
	root = o.estimate(root)
	if o.opts.Pushdown {
		root = o.pushdown(root)
		root = o.estimate(root)
	}
	if o.opts.JoinOrder {
		root = o.orderJoins(root)
		root = o.estimate(root)
	}
	if o.opts.CSE {
		o.markCommonScans(root)
	}
	if o.opts.Parallel {
		root = o.parallelize(root)
	}
	if o.opts.PointProbe {
		root = o.probeRewrite(root)
	}
	return root
}

// ---------- size estimation ----------

// estimate annotates cardinality estimates bottom-up.
func (o *Optimizer) estimate(n plan.Node) plan.Node {
	switch t := n.(type) {
	case *plan.Scan:
		rows := 1000
		if tab, err := o.cat.Get(t.Table); err == nil {
			rows = tab.Rows()
		}
		if t.Pred != nil {
			rows = o.filterEstimate(rows, t.Pred)
		}
		t.EstRows = rows
	case *plan.IndexProbe:
		t.EstRows = 1 // equality on a unique key
	case *plan.Select:
		o.estimate(t.Child)
		t.EstRows = o.filterEstimate(plan.EstRows(t.Child), t.Pred)
	case *plan.Project:
		o.estimate(t.Child)
		t.EstRows = plan.EstRows(t.Child)
	case *plan.Join:
		o.estimate(t.Left)
		o.estimate(t.Right)
		l, r := plan.EstRows(t.Left), plan.EstRows(t.Right)
		// Equi-join estimate: |L|*|R| / max(|L|,|R|) — the classic
		// distinct-keys heuristic.
		max := l
		if r > max {
			max = r
		}
		if max == 0 {
			t.EstRows = 0
		} else {
			t.EstRows = l * r / max
		}
		if t.Residual != nil {
			t.EstRows = o.filterEstimate(t.EstRows, t.Residual)
		}
	case *plan.Aggregate:
		o.estimate(t.Child)
		in := plan.EstRows(t.Child)
		if len(t.GroupBy) == 0 {
			t.EstRows = 1
		} else {
			// Assume ~sqrt(n) groups.
			g := 1
			for g*g < in {
				g++
			}
			t.EstRows = g
		}
	case *plan.Sort:
		o.estimate(t.Child)
	case *plan.Distinct:
		o.estimate(t.Child)
	case *plan.Limit:
		o.estimate(t.Child)
	}
	return n
}

// filterEstimate shrinks a row count through a predicate: each equality
// conjunct keeps selectivity²; other conjuncts keep selectivity.
func (o *Optimizer) filterEstimate(rows int, pred expr.Expr) int {
	sel := 1.0
	for _, c := range expr.SplitConjuncts(pred) {
		if cmp, ok := c.(*expr.Cmp); ok && cmp.Op == expr.EQ {
			sel *= o.opts.Selectivity * o.opts.Selectivity
		} else {
			sel *= o.opts.Selectivity
		}
	}
	est := int(float64(rows) * sel)
	if est < 1 && rows > 0 {
		est = 1
	}
	return est
}

// ---------- rule group: selection pushdown ----------

// pushdown moves Select predicates down toward scans. Conjuncts are
// split and pushed independently; whatever cannot sink stays in place.
func (o *Optimizer) pushdown(n plan.Node) plan.Node {
	switch t := n.(type) {
	case *plan.Select:
		t.Child = o.pushdown(t.Child)
		remaining := o.sink(t.Child, expr.SplitConjuncts(t.Pred))
		if len(remaining) == 0 {
			return t.Child
		}
		t.Pred = expr.Conjoin(remaining)
		return t
	case *plan.Project:
		t.Child = o.pushdown(t.Child)
	case *plan.Join:
		t.Left = o.pushdown(t.Left)
		t.Right = o.pushdown(t.Right)
		if t.Residual != nil {
			left := o.tryPushJoinSide(t, expr.SplitConjuncts(t.Residual))
			t.Residual = expr.Conjoin(left)
		}
	case *plan.Aggregate:
		t.Child = o.pushdown(t.Child)
	case *plan.Sort:
		t.Child = o.pushdown(t.Child)
	case *plan.Distinct:
		t.Child = o.pushdown(t.Child)
	case *plan.Limit:
		t.Child = o.pushdown(t.Child)
	}
	return n
}

// sink tries to absorb conjuncts into the subtree root; it returns the
// conjuncts that could not be absorbed.
func (o *Optimizer) sink(n plan.Node, conjuncts []expr.Expr) []expr.Expr {
	var rest []expr.Expr
	switch t := n.(type) {
	case *plan.Scan:
		for _, c := range conjuncts {
			t.Pred = expr.Conjoin([]expr.Expr{t.Pred, c})
		}
		return nil
	case *plan.Select:
		for _, c := range conjuncts {
			t.Pred = expr.NewAnd(t.Pred, c)
		}
		return nil
	case *plan.Join:
		lw := t.Left.Schema().Len()
		for _, c := range conjuncts {
			cols := expr.Columns(c)
			if allBelow(cols, lw) {
				t.Left = wrapSelect(t.Left, c)
			} else if allAtOrAbove(cols, lw) {
				shifted := expr.Clone(c)
				expr.MapCols(shifted, func(i int) int { return i - lw })
				t.Right = wrapSelect(t.Right, shifted)
			} else {
				rest = append(rest, c)
			}
		}
		// Recurse into the new selects.
		t.Left = o.pushdown(t.Left)
		t.Right = o.pushdown(t.Right)
		return rest
	default:
		return conjuncts
	}
}

// tryPushJoinSide pushes residual join conjuncts that reference only one
// side down to that side, returning what stays.
func (o *Optimizer) tryPushJoinSide(j *plan.Join, conjuncts []expr.Expr) []expr.Expr {
	var rest []expr.Expr
	lw := j.Left.Schema().Len()
	for _, c := range conjuncts {
		cols := expr.Columns(c)
		switch {
		case allBelow(cols, lw):
			j.Left = o.pushdown(wrapSelect(j.Left, c))
		case allAtOrAbove(cols, lw):
			shifted := expr.Clone(c)
			expr.MapCols(shifted, func(i int) int { return i - lw })
			j.Right = o.pushdown(wrapSelect(j.Right, shifted))
		default:
			rest = append(rest, c)
		}
	}
	return rest
}

func allBelow(cols []int, n int) bool {
	for _, c := range cols {
		if c >= n {
			return false
		}
	}
	return len(cols) > 0
}

func allAtOrAbove(cols []int, n int) bool {
	for _, c := range cols {
		if c < n {
			return false
		}
	}
	return len(cols) > 0
}

func wrapSelect(n plan.Node, pred expr.Expr) plan.Node {
	if s, ok := n.(*plan.Select); ok {
		s.Pred = expr.NewAnd(s.Pred, pred)
		return s
	}
	if sc, ok := n.(*plan.Scan); ok {
		sc.Pred = expr.Conjoin([]expr.Expr{sc.Pred, pred})
		return sc
	}
	return &plan.Select{Child: n, Pred: pred}
}

// ---------- rule group: join ordering ----------

// orderJoins flips each join so the smaller estimated input builds the
// hash table (left side), recursively.
func (o *Optimizer) orderJoins(n plan.Node) plan.Node {
	switch t := n.(type) {
	case *plan.Join:
		t.Left = o.orderJoins(t.Left)
		t.Right = o.orderJoins(t.Right)
		// Keep deep joins left-deep; swap when the right side is smaller
		// and the join is a pure equi-join (residuals reference the
		// concatenated schema and would need remapping).
		if t.Residual == nil && plan.EstRows(t.Right) < plan.EstRows(t.Left) {
			t.Left, t.Right = t.Right, t.Left
			t.LeftKeys, t.RightKeys = t.RightKeys, t.LeftKeys
			t.Swapped = !t.Swapped // executor restores the column order
		}
	case *plan.Select:
		t.Child = o.orderJoins(t.Child)
	case *plan.Project:
		t.Child = o.orderJoins(t.Child)
	case *plan.Aggregate:
		t.Child = o.orderJoins(t.Child)
	case *plan.Sort:
		t.Child = o.orderJoins(t.Child)
	case *plan.Distinct:
		t.Child = o.orderJoins(t.Child)
	case *plan.Limit:
		t.Child = o.orderJoins(t.Child)
	}
	return n
}

// ---------- rule group: common subexpression detection ----------

// markCommonScans finds scans of the same table with identical predicates
// and marks them shared, so the executor evaluates once and reuses.
func (o *Optimizer) markCommonScans(root plan.Node) {
	seen := map[string][]*plan.Scan{}
	plan.Walk(root, func(n plan.Node) {
		if sc, ok := n.(*plan.Scan); ok {
			key := sc.Table + "|"
			if sc.Pred != nil {
				key += sc.Pred.String()
			}
			seen[key] = append(seen[key], sc)
		}
	})
	for _, scans := range seen {
		if len(scans) > 1 {
			for _, sc := range scans {
				sc.Shared = true
			}
		}
	}
}

// ---------- rule group: parallelism ----------

// parallelize plans partitioned dataflow for the whole tree — "applying
// parallelism to minimize response time". It walks bottom-up computing
// the partitioning property each subtree's output can be produced with,
// inserts plan.Exchange nodes where a join needs its inputs
// repartitioned or broadcast, picks distributed join methods for
// arbitrary children (not just base-table scans), and marks grouped
// aggregation, Sort and Distinct over partitioned children to run
// partial-per-partition with a coordinator merge.
func (o *Optimizer) parallelize(root plan.Node) plan.Node {
	root, _ = o.partition(root)
	return root
}

// partProp is the partitioning property a subtree's output carries on
// the partitioned execution path.
type partProp struct {
	// n is the number of partitions the output is spread over (1 =
	// materialized at the coordinator, i.e. not partitioned).
	n int
	// keys are the output columns the partitions are hash-disjoint on.
	// Only exchange-established hash partitionings are recorded here:
	// native fragmentation schemes may hash differently, so they align
	// only through the scheme-equality colocated check, never with an
	// exchange.
	keys []int
}

func (p partProp) partitioned() bool { return p.n > 1 }

// defaultExchangeParts is the partition fan-out when neither join input
// is fragmented (e.g. both sides are materialized intermediates).
const defaultExchangeParts = 8

// partition rewrites one subtree and reports its output partitioning.
func (o *Optimizer) partition(n plan.Node) (plan.Node, partProp) {
	none := partProp{n: 1}
	switch t := n.(type) {
	case *plan.Scan:
		if tab, err := o.cat.Get(t.Table); err == nil && tab.NumFragments() > 1 {
			return t, partProp{n: tab.NumFragments()}
		}
		return t, none
	case *plan.Select:
		var p partProp
		t.Child, p = o.partition(t.Child)
		return t, p // filters preserve the child's partitioning
	case *plan.Project:
		var p partProp
		t.Child, p = o.partition(t.Child)
		return t, partProp{n: p.n, keys: remapProjectKeys(p.keys, t)}
	case *plan.Join:
		var lp, rp partProp
		t.Left, lp = o.partition(t.Left)
		t.Right, rp = o.partition(t.Right)
		return o.planJoin(t, lp, rp)
	case *plan.Aggregate:
		var p partProp
		t.Child, p = o.partition(t.Child)
		if sc, ok := t.Child.(*plan.Scan); ok {
			// Bare (possibly filtered) scan of a fragmented table: the
			// OFMs aggregate their fragments in place.
			if tab, err := o.cat.Get(sc.Table); err == nil && tab.NumFragments() > 1 {
				t.Pushdown = true
			}
		} else if p.partitioned() {
			// Any other partitioned child: partial aggregation runs on
			// each partition where it lives; the coordinator merges.
			t.Pushdown = true
		}
		return t, none
	case *plan.Sort:
		var p partProp
		t.Child, p = o.partition(t.Child)
		t.Parallel = p.partitioned()
		return t, none
	case *plan.Distinct:
		var p partProp
		t.Child, p = o.partition(t.Child)
		t.Parallel = p.partitioned()
		return t, none
	case *plan.Limit:
		t.Child, _ = o.partition(t.Child)
		return t, none
	}
	return n, none
}

// remapProjectKeys maps hash-partitioning key columns through a
// projection: a key survives only if some output expression is exactly
// that column. Lost keys drop the hash property (the output is still
// partitioned, just not provably disjoint on any columns).
func remapProjectKeys(keys []int, p *plan.Project) []int {
	if keys == nil {
		return nil
	}
	out := make([]int, len(keys))
	for ki, k := range keys {
		pos := -1
		for i, ex := range p.Exprs {
			if c, ok := ex.(*expr.Col); ok && c.Index == k {
				pos = i
				break
			}
		}
		if pos < 0 {
			return nil
		}
		out[ki] = pos
	}
	return out
}

// planJoin picks a distributed method for one join given its children's
// partitioning, inserting Exchange nodes as needed, and reports the
// partitioning of the join's output (in restored column order — the
// executor undoes Swapped before parents see the tuples).
func (o *Optimizer) planJoin(j *plan.Join, lp, rp partProp) (plan.Node, partProp) {
	none := partProp{n: 1}
	if j.Method != plan.JoinAuto {
		return j, none
	}

	// Native colocation: both inputs are scans of tables hash-fragmented
	// identically on the single join key — fragment pairs join in place.
	ls, lok := j.Left.(*plan.Scan)
	rs, rok := j.Right.(*plan.Scan)
	if lok && rok && len(j.LeftKeys) == 1 && len(j.RightKeys) == 1 {
		lt, lerr := o.cat.Get(ls.Table)
		rt, rerr := o.cat.Get(rs.Table)
		if lerr == nil && rerr == nil &&
			lt.Scheme.Strategy == fragment.Hash && rt.Scheme.Strategy == fragment.Hash &&
			lt.Scheme.N == rt.Scheme.N &&
			lt.Scheme.Column == j.LeftKeys[0] && rt.Scheme.Column == j.RightKeys[0] {
			j.Method = plan.JoinColocated
			// Output is partitioned, but by the native scheme hash —
			// no exchange-compatible key property.
			return j, partProp{n: lt.Scheme.N}
		}
	}

	// Exchange colocation: both inputs already hash-partitioned by
	// exchanges on exactly the join keys with matching fan-out — join
	// the aligned partitions in place, no data movement.
	if lp.keys != nil && rp.keys != nil && lp.n == rp.n &&
		keysEqual(lp.keys, j.LeftKeys) && keysEqual(rp.keys, j.RightKeys) {
		j.Method = plan.JoinColocated
		return j, partProp{n: lp.n, keys: joinOutKeys(j)}
	}

	// A tiny input joined with a partitioned one: replicate the small
	// side to every partition of the big one and join in place.
	const broadcastThreshold = 512
	lSmall := plan.EstRows(j.Left) <= broadcastThreshold
	rSmall := plan.EstRows(j.Right) <= broadcastThreshold
	if rSmall && lp.partitioned() && !rp.partitioned() {
		j.Right = &plan.Exchange{Child: j.Right,
			Part:    plan.Partitioning{Kind: plan.PartBroadcast, N: lp.n},
			EstRows: plan.EstRows(j.Right)}
		j.Method = plan.JoinBroadcast
		return j, partProp{n: lp.n, keys: mapThroughJoin(lp.keys, j, true)}
	}
	if lSmall && rp.partitioned() && !lp.partitioned() {
		j.Left = &plan.Exchange{Child: j.Left,
			Part:    plan.Partitioning{Kind: plan.PartBroadcast, N: rp.n},
			EstRows: plan.EstRows(j.Left)}
		j.Method = plan.JoinBroadcast
		return j, partProp{n: rp.n, keys: mapThroughJoin(rp.keys, j, false)}
	}

	// Two large inputs: hash-repartition each side that is not already
	// partitioned on its join keys and join the buckets in parallel.
	const repartitionThreshold = 2000
	if plan.EstRows(j.Left) > repartitionThreshold && plan.EstRows(j.Right) > repartitionThreshold {
		n := lp.n
		if rp.n > n {
			n = rp.n
		}
		if n < 2 {
			n = defaultExchangeParts
		}
		if !(lp.keys != nil && lp.n == n && keysEqual(lp.keys, j.LeftKeys)) {
			j.Left = &plan.Exchange{Child: j.Left,
				Part:    plan.Partitioning{Kind: plan.PartHash, Keys: append([]int(nil), j.LeftKeys...), N: n},
				EstRows: plan.EstRows(j.Left)}
		}
		if !(rp.keys != nil && rp.n == n && keysEqual(rp.keys, j.RightKeys)) {
			j.Right = &plan.Exchange{Child: j.Right,
				Part:    plan.Partitioning{Kind: plan.PartHash, Keys: append([]int(nil), j.RightKeys...), N: n},
				EstRows: plan.EstRows(j.Right)}
		}
		j.Method = plan.JoinRepartition
		return j, partProp{n: n, keys: joinOutKeys(j)}
	}
	j.Method = plan.JoinCentral
	return j, none
}

// keysEqual reports positional equality (hash order matters).
func keysEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// joinOutKeys returns the join-key positions in the join's restored
// output order (the executor undoes Swapped before parents run).
func joinOutKeys(j *plan.Join) []int {
	offset := 0
	if j.Swapped {
		// The tree's left side is the original right: after restore its
		// columns sit past the original-left (tree-right) width.
		offset = j.Right.Schema().Len()
	}
	out := make([]int, len(j.LeftKeys))
	for i, k := range j.LeftKeys {
		out[i] = k + offset
	}
	return out
}

// mapThroughJoin maps key positions of one join input into the restored
// output order. treeLeft says the keys index the tree's left child.
func mapThroughJoin(keys []int, j *plan.Join, treeLeft bool) []int {
	if keys == nil {
		return nil
	}
	offset := 0
	switch {
	case treeLeft && j.Swapped:
		offset = j.Right.Schema().Len()
	case !treeLeft && !j.Swapped:
		offset = j.Left.Schema().Len()
	}
	out := make([]int, len(keys))
	for i, k := range keys {
		out[i] = k + offset
	}
	return out
}

// ---------- rule group: point-query index probes ----------

// probeRewrite replaces filtered scans whose predicate pins the table's
// hash-indexed primary key with IndexProbe nodes. Scans directly under a
// Join keep their shape (the distributed join methods dispatch on Scan
// children), as do CSE-shared scans and pushdown-aggregate inputs.
func (o *Optimizer) probeRewrite(n plan.Node) plan.Node {
	switch t := n.(type) {
	case *plan.Scan:
		return o.tryProbe(t)
	case *plan.Exchange:
		// Partitioned pipelines keep their scan shape: an IndexProbe
		// under an exchange would serialize the repartition source.
		return t
	case *plan.Select:
		t.Child = o.probeRewrite(t.Child)
	case *plan.Project:
		t.Child = o.probeRewrite(t.Child)
	case *plan.Join:
		if _, ok := t.Left.(*plan.Scan); !ok {
			t.Left = o.probeRewrite(t.Left)
		}
		if _, ok := t.Right.(*plan.Scan); !ok {
			t.Right = o.probeRewrite(t.Right)
		}
	case *plan.Aggregate:
		if _, ok := t.Child.(*plan.Scan); !ok || !t.Pushdown {
			t.Child = o.probeRewrite(t.Child)
		}
	case *plan.Sort:
		t.Child = o.probeRewrite(t.Child)
	case *plan.Distinct:
		t.Child = o.probeRewrite(t.Child)
	case *plan.Limit:
		t.Child = o.probeRewrite(t.Child)
	}
	return n
}

// tryProbe converts one scan when its predicate contains `pk = const`
// (or `pk = $n`) on a single-column primary key, which DDL backs with a
// per-fragment hash index.
func (o *Optimizer) tryProbe(sc *plan.Scan) plan.Node {
	if sc.Shared || sc.Pred == nil {
		return sc
	}
	tab, err := o.cat.Get(sc.Table)
	if err != nil || len(tab.PrimaryKey) != 1 {
		return sc
	}
	pk := tab.PrimaryKey[0]
	pkKind := tab.Schema.Column(pk).Kind
	conjuncts := expr.SplitConjuncts(sc.Pred)
	for i, c := range conjuncts {
		cmp, ok := c.(*expr.Cmp)
		if !ok || cmp.Op != expr.EQ {
			continue
		}
		col, cok := cmp.L.(*expr.Col)
		key := cmp.R
		if !cok {
			col, cok = cmp.R.(*expr.Col)
			key = cmp.L
		}
		if !cok || col.Index != pk {
			continue
		}
		switch k := key.(type) {
		case *expr.Const:
			// Exact-kind match only: the hash index stores encoded
			// values, so INT keys never match FLOAT probes.
			if k.V.IsNull() || k.V.Kind() != pkKind {
				continue
			}
		case *expr.Param:
			// Bind-time coercion forces the value to the column kind.
		default:
			continue
		}
		rest := append(append([]expr.Expr{}, conjuncts[:i]...), conjuncts[i+1:]...)
		return &plan.IndexProbe{
			Table:   sc.Table,
			Col:     pk,
			Key:     key,
			Rest:    expr.Conjoin(rest),
			Out:     sc.Out,
			EstRows: 1,
		}
	}
	return sc
}
