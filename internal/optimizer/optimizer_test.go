package optimizer

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/fragment"
	"repro/internal/plan"
	"repro/internal/value"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	empSchema := value.MustSchema("id", "INT", "dept", "VARCHAR", "salary", "INT")
	deptSchema := value.MustSchema("name", "VARCHAR", "budget", "INT")
	emp, err := c.Create("emp",
		empSchema, &fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: 4},
		fragment.Placement{0, 1, 2, 3}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		emp.UpdateStats(i, 2500, 160000) // 10k rows total
	}
	dept, err := c.Create("dept",
		deptSchema, &fragment.Scheme{Strategy: fragment.Single, N: 1},
		fragment.Placement{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	dept.UpdateStats(0, 10, 640)
	return c
}

func scan(t *testing.T, c *catalog.Catalog, table string) *plan.Scan {
	t.Helper()
	tab, err := c.Get(table)
	if err != nil {
		t.Fatal(err)
	}
	return &plan.Scan{Table: table, Out: tab.Schema}
}

func bindOn(t *testing.T, e expr.Expr, s *value.Schema) expr.Expr {
	t.Helper()
	if _, err := expr.Bind(e, s); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEstimation(t *testing.T) {
	c := testCatalog(t)
	o := New(c, AllRules())
	sc := scan(t, c, "emp")
	o.Optimize(sc)
	if sc.EstRows != 10000 {
		t.Errorf("scan estimate = %d, want 10000", sc.EstRows)
	}
	// A filtered scan estimates fewer rows.
	sc2 := scan(t, c, "emp")
	sc2.Pred = bindOn(t, expr.NewCmp(expr.EQ, expr.NewCol("id"), expr.NewConst(value.NewInt(5))), sc2.Out)
	o.Optimize(sc2)
	if sc2.EstRows >= 10000 || sc2.EstRows < 1 {
		t.Errorf("filtered estimate = %d", sc2.EstRows)
	}
	// Unknown table defaults.
	unk := &plan.Scan{Table: "nosuch", Out: value.MustSchema("x", "INT")}
	o.Optimize(unk)
	if unk.EstRows != 1000 {
		t.Errorf("unknown-table estimate = %d", unk.EstRows)
	}
}

func TestPushdownIntoScan(t *testing.T) {
	c := testCatalog(t)
	o := New(c, Options{Pushdown: true})
	sc := scan(t, c, "emp")
	pred := bindOn(t, expr.NewCmp(expr.GT, expr.NewCol("salary"), expr.NewConst(value.NewInt(100))), sc.Out)
	root := o.Optimize(&plan.Select{Child: sc, Pred: pred})
	// The Select is gone; the predicate sits on the scan.
	got, ok := root.(*plan.Scan)
	if !ok {
		t.Fatalf("root = %T:\n%s", root, plan.Format(root))
	}
	if got.Pred == nil || !strings.Contains(got.Pred.String(), "salary > 100") {
		t.Errorf("scan pred = %v", got.Pred)
	}
}

func TestPushdownThroughJoin(t *testing.T) {
	c := testCatalog(t)
	o := New(c, Options{Pushdown: true})
	emp := scan(t, c, "emp")
	dept := scan(t, c, "dept")
	joined := emp.Out.Concat(dept.Out)
	j := &plan.Join{Left: emp, Right: dept, LeftKeys: []int{1}, RightKeys: []int{0}, Out: joined}
	// salary > 100 references only emp (col 2); budget > 5 only dept (col 4).
	pred := bindOn(t, expr.NewAnd(
		expr.NewCmp(expr.GT, expr.NewColIdx(2, value.KindInt), expr.NewConst(value.NewInt(100))),
		expr.NewCmp(expr.GT, expr.NewColIdx(4, value.KindInt), expr.NewConst(value.NewInt(5))),
	), joined)
	root := o.Optimize(&plan.Select{Child: j, Pred: pred})
	jj, ok := root.(*plan.Join)
	if !ok {
		t.Fatalf("root = %T:\n%s", root, plan.Format(root))
	}
	lsc, ok := jj.Left.(*plan.Scan)
	if !ok || lsc.Pred == nil {
		t.Errorf("left pred not pushed:\n%s", plan.Format(root))
	}
	rsc, ok := jj.Right.(*plan.Scan)
	if !ok || rsc.Pred == nil {
		t.Errorf("right pred not pushed:\n%s", plan.Format(root))
	}
	// The pushed right-side predicate is remapped to dept's schema.
	if ok && !strings.Contains(rsc.Pred.String(), "> 5") {
		t.Errorf("right pred = %v", rsc.Pred)
	}
}

func TestPushdownDisabled(t *testing.T) {
	c := testCatalog(t)
	o := New(c, Options{})
	sc := scan(t, c, "emp")
	pred := bindOn(t, expr.NewCmp(expr.GT, expr.NewCol("salary"), expr.NewConst(value.NewInt(100))), sc.Out)
	root := o.Optimize(&plan.Select{Child: sc, Pred: pred})
	if _, ok := root.(*plan.Select); !ok {
		t.Errorf("pushdown ran while disabled: %T", root)
	}
}

func TestJoinOrderSwapsSmallerFirst(t *testing.T) {
	c := testCatalog(t)
	o := New(c, Options{JoinOrder: true})
	emp := scan(t, c, "emp")   // 10000 rows
	dept := scan(t, c, "dept") // 10 rows
	j := &plan.Join{Left: emp, Right: dept, LeftKeys: []int{1}, RightKeys: []int{0},
		Out: emp.Out.Concat(dept.Out)}
	root := o.Optimize(j).(*plan.Join)
	if ls, ok := root.Left.(*plan.Scan); !ok || ls.Table != "dept" {
		t.Errorf("small side not first:\n%s", plan.Format(root))
	}
	if root.LeftKeys[0] != 0 || root.RightKeys[0] != 1 {
		t.Errorf("keys not swapped: %v/%v", root.LeftKeys, root.RightKeys)
	}
	// The output schema stays as built (the executor restores column
	// order), and the swap is flagged.
	if !root.Swapped {
		t.Error("swap not flagged")
	}
	if root.Out.Column(0).Name != "id" {
		t.Errorf("schema must stay in original order: %v", root.Out)
	}
}

func TestCSEMarksSharedScans(t *testing.T) {
	c := testCatalog(t)
	o := New(c, Options{CSE: true})
	a := scan(t, c, "emp")
	b := scan(t, c, "emp")
	j := &plan.Join{Left: a, Right: b, LeftKeys: []int{0}, RightKeys: []int{0},
		Out: a.Out.Concat(b.Out)}
	o.Optimize(j)
	if !a.Shared || !b.Shared {
		t.Error("identical scans not marked shared")
	}
	// Different predicates: not shared.
	a2 := scan(t, c, "emp")
	b2 := scan(t, c, "emp")
	b2.Pred = bindOn(t, expr.NewCmp(expr.GT, expr.NewCol("salary"), expr.NewConst(value.NewInt(1))), b2.Out)
	j2 := &plan.Join{Left: a2, Right: b2, LeftKeys: []int{0}, RightKeys: []int{0},
		Out: a2.Out.Concat(b2.Out)}
	o.Optimize(j2)
	if a2.Shared || b2.Shared {
		t.Error("different scans wrongly shared")
	}
}

func TestParallelizeAggregatesAndJoins(t *testing.T) {
	c := testCatalog(t)
	o := New(c, AllRules())
	// Aggregate over fragmented emp: pushdown.
	agg := &plan.Aggregate{Child: scan(t, c, "emp"), GroupBy: []int{1},
		Out: value.MustSchema("dept", "VARCHAR", "n", "INT")}
	o.Optimize(agg)
	if !agg.Pushdown {
		t.Error("aggregate pushdown not enabled for fragmented table")
	}
	// Aggregate over single-fragment dept: no pushdown.
	agg2 := &plan.Aggregate{Child: scan(t, c, "dept"), GroupBy: nil,
		Out: value.MustSchema("n", "INT")}
	o.Optimize(agg2)
	if agg2.Pushdown {
		t.Error("pushdown enabled for single fragment")
	}
	// emp ⋈ emp on the hash key: colocated.
	a, b := scan(t, c, "emp"), scan(t, c, "emp")
	j := &plan.Join{Left: a, Right: b, LeftKeys: []int{0}, RightKeys: []int{0},
		Out: a.Out.Concat(b.Out)}
	o.Optimize(j)
	if j.Method != plan.JoinColocated {
		t.Errorf("join method = %v, want colocated", j.Method)
	}
	// Join on a non-key column of two big tables: repartition.
	a2, b2 := scan(t, c, "emp"), scan(t, c, "emp")
	j2 := &plan.Join{Left: a2, Right: b2, LeftKeys: []int{2}, RightKeys: []int{2},
		Out: a2.Out.Concat(b2.Out)}
	o.Optimize(j2)
	if j2.Method != plan.JoinRepartition {
		t.Errorf("join method = %v, want repartition", j2.Method)
	}
	// Small join: central.
	a3, b3 := scan(t, c, "dept"), scan(t, c, "dept")
	j3 := &plan.Join{Left: a3, Right: b3, LeftKeys: []int{0}, RightKeys: []int{0},
		Out: a3.Out.Concat(b3.Out)}
	o.Optimize(j3)
	if j3.Method != plan.JoinCentral {
		t.Errorf("join method = %v, want central", j3.Method)
	}
}

func TestPlanFormatAndWalk(t *testing.T) {
	c := testCatalog(t)
	sc := scan(t, c, "emp")
	root := &plan.Limit{N: 5, Child: &plan.Sort{Cols: []int{0}, Child: &plan.Distinct{Child: sc}}}
	s := plan.Format(root)
	for _, frag := range []string{"Limit(5)", "Sort", "Distinct", "Scan(emp)"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Format missing %q:\n%s", frag, s)
		}
	}
	count := 0
	plan.Walk(root, func(plan.Node) { count++ })
	if count != 4 {
		t.Errorf("Walk visited %d nodes", count)
	}
	if plan.EstRows(root) > 5 {
		t.Errorf("limit bounds estimate: %d", plan.EstRows(root))
	}
}

func TestSelectivityOption(t *testing.T) {
	c := testCatalog(t)
	tight := New(c, Options{Selectivity: 0.01})
	loose := New(c, Options{Selectivity: 0.9})
	mk := func() *plan.Select {
		sc := scan(t, c, "emp")
		return &plan.Select{Child: sc,
			Pred: bindOn(t, expr.NewCmp(expr.GT, expr.NewCol("salary"), expr.NewConst(value.NewInt(0))), sc.Out)}
	}
	st := mk()
	tight.Optimize(st)
	sl := mk()
	loose.Optimize(sl)
	if st.EstRows >= sl.EstRows {
		t.Errorf("selectivity not honored: %d vs %d", st.EstRows, sl.EstRows)
	}
	// Out-of-range selectivity defaults.
	def := New(c, Options{Selectivity: 7})
	if def.Options().Selectivity != 0.33 {
		t.Errorf("default selectivity = %v", def.Options().Selectivity)
	}
}
