package ofm

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/value"
)

// The fragment column cache: a lazily built columnar image of EVERY
// tuple version in the fragment's store (live and dead), keyed by the
// store's mutation counter. Because each cached row carries its MVCC
// begin/end timestamps, one cache serves any snapshot: a scan at
// timestamp TS derives its visibility as a selection vector over the
// cached columns, so repeated snapshot scans pay the tuple-to-column
// transposition once per fragment version instead of materializing
// tuple-at-a-time on every query. Any write (insert, delete, update,
// vacuum, clear) bumps the store version and the next batch scan
// rebuilds; Vacuum therefore also drops reclaimed versions from the
// cache on its next rebuild.

// colCache is one built cache generation.
type colCache struct {
	version uint64 // store mutation counter the cache was built at
	rows    int
	begin   []uint64 // per-row MVCC begin timestamps
	end     []uint64 // per-row MVCC end timestamps (0 = current)
	cols    []*value.Vec
	// allCurrent short-circuits visibility: every cached version has
	// begin == 0 and end == 0 (bulk-loaded data, never mutated), so any
	// snapshot sees all rows and scans run dense with Sel == nil.
	allCurrent bool
	bytes      int64 // accounted against the PE budget
}

// vecBytes approximates a column vector's footprint.
func vecBytes(v *value.Vec) int64 {
	var n int64
	switch v.Kind {
	case value.KindString:
		n = int64(len(v.S)) * 16
		for _, s := range v.S {
			n += int64(len(s))
		}
	case value.KindFloat:
		n = int64(len(v.F)) * 8
	default:
		n = int64(len(v.I)) * 8
	}
	if v.Null != nil {
		n += int64(len(v.Null))
	}
	return n
}

// columnCache returns the current cache generation, rebuilding it when
// the store has mutated since the last build. It returns the cache plus
// the bytes newly allocated by a rebuild this call (0 on a hit), so the
// executor can charge the statement's tenant budget for the build.
// A nil cache means the fragment cannot be cached columnar (a column
// holds mixed kinds) and the caller must use the row path.
func (o *OFM) columnCache() (*colCache, int64) {
	o.ccMu.Lock()
	defer o.ccMu.Unlock()
	if o.cc != nil && o.cc.version == o.store.Version() {
		return o.cc, 0
	}
	tuples, begin, end, ver := o.store.SnapshotVersions()
	batch := value.NewBatchFrom(o.cfg.Schema, tuples)
	if batch == nil {
		// Heterogeneous column (possible only on transient fragments fed
		// by untyped intermediates): disable the cache for this version.
		if o.cc != nil {
			o.cfg.PE.Free(o.cc.bytes)
			o.cc = nil
		}
		return nil, 0
	}
	allCurrent := true
	for i := range begin {
		if begin[i] != 0 || end[i] != 0 {
			allCurrent = false
			break
		}
	}
	cc := &colCache{
		version:    ver,
		rows:       len(tuples),
		begin:      begin,
		end:        end,
		cols:       batch.Cols,
		allCurrent: allCurrent,
	}
	for _, vec := range cc.cols {
		cc.bytes += vecBytes(vec)
	}
	cc.bytes += int64(len(begin)+len(end)) * 8
	if o.cc != nil {
		o.cfg.PE.Free(o.cc.bytes)
	}
	_ = o.cfg.PE.Alloc(cc.bytes)
	// The transposition reads every version once.
	o.cfg.PE.Advance(o.costs().BuildCost(cc.rows))
	o.cc = cc
	return cc, cc.bytes
}

// compileVecFilter returns the cached vectorized filter for e, mirroring
// compilePred's cache-and-charge discipline.
func (o *OFM) compileVecFilter(e expr.Expr) (*expr.VecFilter, error) {
	key := e.String()
	o.vecMu.Lock()
	if f, ok := o.vecCache[key]; ok {
		o.vecMu.Unlock()
		return f, nil
	}
	o.vecMu.Unlock()
	f, err := expr.CompileVecFilter(expr.Clone(e), o.cfg.Schema)
	if err != nil {
		return nil, err
	}
	o.cfg.PE.Advance(o.costs().CompileCost())
	o.vecMu.Lock()
	o.vecCache[key] = f
	o.vecMu.Unlock()
	return f, nil
}

// ScanBatch is the columnar counterpart of Scan: it evaluates an
// optional predicate over the view and returns the matching rows as a
// batch over the fragment column cache, with visibility expressed as a
// selection vector — no tuples are materialized. built reports the bytes
// a cache rebuild allocated during this call (0 on a hit).
//
// A nil batch (with nil error) means the batch path declined and the
// caller must fall back to the row Scan: the fragment is uncacheable,
// the view's transaction has pending writes here (the overlay is row
// oriented), the OFM runs interpreted (Compiled=false — the E4
// baseline), or an equality predicate would be answered faster by the
// hash-index probe path.
func (o *OFM) ScanBatch(view View, pred expr.Expr, cols []int) (batch *value.Batch, built int64, err error) {
	if !o.cfg.Compiled {
		return nil, 0, nil
	}
	del, ins := o.overlay(view)
	if len(del) > 0 || len(ins) > 0 {
		return nil, 0, nil
	}
	if pred != nil {
		if hash, _, _ := o.eqIndexProbe(pred); hash != nil {
			return nil, 0, nil // point probe beats any scan, vectorized or not
		}
	}
	cc, built := o.columnCache()
	if cc == nil {
		return nil, 0, nil
	}
	cost := o.costs()

	var sel []int32
	if !cc.allCurrent {
		sel = value.GetSel()
		for i := 0; i < cc.rows; i++ {
			if cc.begin[i] <= view.TS && (cc.end[i] == 0 || cc.end[i] > view.TS) {
				sel = append(sel, int32(i))
			}
		}
		if len(sel) == cc.rows {
			value.PutSel(sel)
			sel = nil // every version visible: dense fast path
		}
	}
	batch = &value.Batch{Schema: o.cfg.Schema, Cols: cc.cols, Sel: sel, Rows: cc.rows}

	if pred == nil {
		o.cfg.PE.Advance(cost.BuildCost(batch.Len()))
	} else {
		f, ferr := o.compileVecFilter(pred)
		if ferr != nil {
			return nil, built, fmt.Errorf("ofm %s: %w", o.cfg.Name, ferr)
		}
		visible := batch.Len()
		out, _, serr := algebra.SelectBatch(batch, f)
		if serr != nil {
			return nil, built, fmt.Errorf("ofm %s: %w", o.cfg.Name, serr)
		}
		// Cost parity with the row path: the scan examined every visible
		// version with the compiled kernel.
		o.cfg.PE.Advance(cost.ScanCost(visible, true))
		batch = out
	}
	if cols != nil {
		batch = batch.Project(cols, o.cfg.Schema.Project(cols))
		o.cfg.PE.Advance(cost.BuildCost(batch.Len()))
	}
	return batch, built, nil
}
