package ofm

import (
	"fmt"
	"sort"

	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wal"
)

// Replica apply: the incremental sibling of Recover. A subscribed
// replica receives the primary's WAL records in log order and applies
// them against its own store — write sets buffer until their commit
// marker arrives, aborts drop them, and each commit installs versions
// with the primary's commit timestamp so the replica's MVCC snapshots
// line up with the primary's watermark.
//
// Commits are only applied up to the stream's last consistent status
// watermark. A commit spanning several fragments has one marker per
// fragment log, and those logs ship as separate frames: if the stream
// dies mid-batch one fragment may hold the marker while another does
// not. Applying eagerly would expose half a transaction at promotion.
// Instead a marker with ts above the limit parks in applyDeferred; a
// later status (whose batch, by the primary's watermark ordering, is
// guaranteed to carry every marker at or below it on every log)
// releases it via AdvanceApplied, and promotion resolves the leftovers
// atomically across fragments (see Engine.PromoteApply).
//
// All calls arrive through the fragment's serving process mailbox,
// serialized with scans.

// applyWS buffers one in-flight transaction's shipped write set.
type applyWS struct {
	inserts []value.Tuple
	deletes []value.Tuple
}

// ApplyRecords applies shipped (or locally replayed) WAL records in
// order. Commit markers with ts <= limit apply immediately; later ones
// defer until AdvanceApplied. Commits at or below the high-water mark
// of already-applied commit timestamps are skipped — per-fragment
// commit markers are TS-monotonic under strict 2PL, so a torn stream
// can safely re-apply an overlapping batch. Returns the highest commit
// timestamp applied.
func (o *OFM) ApplyRecords(recs []wal.Record, limit uint64) (uint64, error) {
	if o.cfg.Kind != Persistent {
		return 0, fmt.Errorf("ofm %s: transient OFMs do not replicate", o.cfg.Name)
	}
	o.mu.Lock()
	maxTS := o.appliedTS
	o.mu.Unlock()
	applied := 0
	for _, r := range recs {
		switch r.Type {
		case wal.RecInsert:
			ws := o.applyWSFor(r.Txn)
			ws.inserts = append(ws.inserts, r.Tuple)
		case wal.RecDelete:
			ws := o.applyWSFor(r.Txn)
			ws.deletes = append(ws.deletes, r.Tuple)
		case wal.RecPrepare:
			o.applyWSFor(r.Txn) // ensure the buffer exists, even if empty
		case wal.RecAbort:
			o.mu.Lock()
			delete(o.applyPend, r.Txn)
			delete(o.applyDeferred, r.Txn)
			o.mu.Unlock()
		case wal.RecCommit:
			o.mu.Lock()
			if r.TS > limit {
				// Park until a status watermark covers it.
				if o.applyDeferred == nil {
					o.applyDeferred = map[txn.ID]uint64{}
				}
				o.applyDeferred[r.Txn] = r.TS
				o.mu.Unlock()
				continue
			}
			ws := o.applyPend[r.Txn]
			delete(o.applyPend, r.Txn)
			delete(o.applyDeferred, r.Txn)
			skip := r.TS <= o.appliedTS
			if !skip {
				o.appliedTS = r.TS
			}
			o.mu.Unlock()
			if skip || ws == nil {
				continue
			}
			if err := o.applyCommit(ws, r.TS); err != nil {
				return maxTS, err
			}
			maxTS = r.TS
			applied += len(ws.inserts) + len(ws.deletes)
		}
	}
	if applied > 0 {
		o.cfg.PE.Advance(o.costs().BuildCost(applied))
	}
	return maxTS, nil
}

// AdvanceApplied applies every deferred commit at or below limit, in
// commit-timestamp order — called when a new status watermark arrives.
func (o *OFM) AdvanceApplied(limit uint64) (uint64, error) {
	type due struct {
		tx txn.ID
		ts uint64
	}
	o.mu.Lock()
	var ready []due
	for tx, ts := range o.applyDeferred {
		if ts <= limit {
			ready = append(ready, due{tx, ts})
		}
	}
	o.mu.Unlock()
	sort.Slice(ready, func(i, j int) bool { return ready[i].ts < ready[j].ts })
	applied := 0
	var maxTS uint64
	for _, d := range ready {
		o.mu.Lock()
		ws := o.applyPend[d.tx]
		delete(o.applyPend, d.tx)
		delete(o.applyDeferred, d.tx)
		skip := d.ts <= o.appliedTS
		if !skip {
			o.appliedTS = d.ts
		}
		o.mu.Unlock()
		if skip || ws == nil {
			continue
		}
		if err := o.applyCommit(ws, d.ts); err != nil {
			return maxTS, err
		}
		maxTS = d.ts
		applied += len(ws.inserts) + len(ws.deletes)
	}
	if applied > 0 {
		o.cfg.PE.Advance(o.costs().BuildCost(applied))
	}
	return maxTS, nil
}

// applyWSFor returns (creating if needed) a transaction's apply buffer.
func (o *OFM) applyWSFor(tx txn.ID) *applyWS {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.applyPend == nil {
		o.applyPend = map[txn.ID]*applyWS{}
	}
	ws := o.applyPend[tx]
	if ws == nil {
		ws = &applyWS{}
		o.applyPend[tx] = ws
	}
	return ws
}

// applyCommit installs one committed write set: deletes end the live
// matching version at the commit timestamp (version-ending, not
// physical — unlike crash recovery, a replica has live snapshot readers
// below the incoming commit), inserts begin new versions at it.
func (o *OFM) applyCommit(ws *applyWS, ts uint64) error {
	for _, tuple := range ws.deletes {
		var target storage.RowID = -1
		o.store.Scan(func(id storage.RowID, t value.Tuple) bool {
			if value.EqualTuples(t, tuple) {
				target = id
				return false
			}
			return true
		})
		if target >= 0 {
			o.store.DeleteVersion(target, ts)
		}
	}
	for _, tuple := range ws.inserts {
		if _, err := o.store.InsertVersion(tuple, ts); err != nil {
			return fmt.Errorf("ofm %s: apply insert: %w", o.cfg.Name, err)
		}
	}
	if o.cfg.StatsFn != nil {
		o.cfg.StatsFn(len(ws.inserts)-len(ws.deletes), int64(relApplyBytes(ws.inserts))-int64(relApplyBytes(ws.deletes)))
	}
	return nil
}

func relApplyBytes(tuples []value.Tuple) int {
	n := 0
	for _, t := range tuples {
		n += t.Size()
	}
	return n
}

// InstallSync replaces the fragment wholesale from a shipped sync
// image (checkpoint segment + raw log bytes) and replays it, returning
// the fragment's new durable offset and highest applied commit TS.
func (o *OFM) InstallSync(ckpt, logBytes []byte, gen, limit uint64) (int64, uint64, error) {
	if err := o.cfg.Log.InstallImage(ckpt, logBytes, gen); err != nil {
		return 0, 0, fmt.Errorf("ofm %s: install sync image: %w", o.cfg.Name, err)
	}
	return o.ReplayLocal(limit)
}

// ReplayLocal rebuilds the fragment's volatile store from its own
// durable checkpoint and log — the replica's crash recovery. Unlike
// Recover it performs no healing and no presumed-abort resolution:
// prepared-but-undecided transactions stay buffered, because their
// commit or abort marker is still in flight on the replication stream.
// Commits above limit (the replica's durable status watermark) defer,
// exactly as they did on first receipt. Returns the durable replication
// offset (valid log prefix) and the highest applied commit TS.
func (o *OFM) ReplayLocal(limit uint64) (int64, uint64, error) {
	if o.cfg.Kind != Persistent {
		return 0, 0, fmt.Errorf("ofm %s: transient OFMs do not replicate", o.cfg.Name)
	}
	snapshot, err := o.cfg.Log.LoadCheckpoint()
	if err != nil {
		return 0, 0, fmt.Errorf("ofm %s: replay checkpoint: %w", o.cfg.Name, err)
	}
	o.mu.Lock()
	o.pending = map[txn.ID]*writeSet{}
	o.applyPend = map[txn.ID]*applyWS{}
	o.applyDeferred = map[txn.ID]uint64{}
	o.appliedTS = 0
	o.mu.Unlock()
	o.store.Clear()
	if _, err := o.store.InsertBatch(snapshot); err != nil {
		return 0, 0, fmt.Errorf("ofm %s: replay snapshot: %w", o.cfg.Name, err)
	}
	recs, err := o.cfg.Log.Scan()
	if err != nil {
		return 0, 0, err
	}
	maxTS, err := o.ApplyRecords(recs, limit)
	if err != nil {
		return 0, 0, err
	}
	return o.cfg.Log.ValidSize(), maxTS, nil
}

// PendingApplied reports the fragment's unresolved shipped
// transactions: every buffered write set or deferred commit, mapped to
// the commit timestamp its marker carried (0 when no marker arrived).
// Promotion uses this to decide, across fragments, which in-flight
// transactions roll forward and which are presumed aborted.
func (o *OFM) PendingApplied() map[txn.ID]uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := map[txn.ID]uint64{}
	for tx := range o.applyPend {
		out[tx] = o.applyDeferred[tx]
	}
	for tx, ts := range o.applyDeferred {
		out[tx] = ts
	}
	return out
}

// ResolveApplied rolls one pending shipped transaction forward at
// promotion: the commit marker is durably healed into the local log if
// this fragment never received it (the replica is primary now — its
// log is the authority), then the write set installs at ts.
func (o *OFM) ResolveApplied(tx txn.ID, ts uint64) error {
	o.mu.Lock()
	ws := o.applyPend[tx]
	_, hadMarker := o.applyDeferred[tx]
	delete(o.applyPend, tx)
	delete(o.applyDeferred, tx)
	if ts > o.appliedTS {
		o.appliedTS = ts
	}
	o.mu.Unlock()
	if !hadMarker {
		if err := o.cfg.Log.Append(wal.Record{Type: wal.RecCommit, Txn: tx, TS: ts}); err != nil {
			return fmt.Errorf("ofm %s: promote commit %d: %w", o.cfg.Name, tx, err)
		}
	}
	if ws == nil {
		return nil
	}
	return o.applyCommit(ws, ts)
}

// AbortApplied presumed-aborts one pending shipped transaction at
// promotion, healing the abort marker into the local log.
func (o *OFM) AbortApplied(tx txn.ID) error {
	o.mu.Lock()
	_, ok := o.applyPend[tx]
	delete(o.applyPend, tx)
	delete(o.applyDeferred, tx)
	o.mu.Unlock()
	if !ok {
		return nil
	}
	if err := o.cfg.Log.Append(wal.Record{Type: wal.RecAbort, Txn: tx}); err != nil {
		return fmt.Errorf("ofm %s: promote abort %d: %w", o.cfg.Name, tx, err)
	}
	return nil
}

// DeferredCount reports how many shipped commits are parked waiting
// for a status watermark. The replica's status handler uses it to skip
// the per-fragment advance call entirely when it would be a no-op —
// status frames arrive every poll interval, and paying a message
// round-trip per fragment per poll would dwarf the read work the
// replica exists to serve.
func (o *OFM) DeferredCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.applyDeferred)
}

// AppliedTS returns the highest commit timestamp this fragment has
// applied from the replication stream.
func (o *OFM) AppliedTS() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.appliedTS
}
