// Package ofm implements the One-Fragment Manager, the heart of PRISMA's
// DBMS architecture (paper §2.5): "customized database systems that
// manage a single relation fragment. They contain all functions
// encountered in a full-blown DBMS; such as local query optimizer,
// transaction management, markings and cursor maintenance, and (various)
// storage structures."
//
// Two OFM kinds exist, per the paper's observation that "OFMs needed for
// query processing only do not require extensive crash recovery
// facilities": Persistent OFMs defer updates through a write-ahead log on
// stable storage and participate in two-phase commit; Transient OFMs
// hold intermediate results with no durability machinery at all.
//
// Every OFM owns an expression compiler (package expr) "to generate
// routines dynamically ... it avoids the otherwise excessive
// interpretation overhead incurred by a query expression interpreter";
// compiled predicates are cached per expression text. The Compiled
// config flag switches the scan path between the compiler and the
// interpreter so experiment E4 can measure exactly this design choice.
package ofm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/machine"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wal"
)

// Kind selects the OFM flavor.
type Kind uint8

// OFM kinds.
const (
	// Persistent OFMs manage base fragments: WAL, 2PC, recovery.
	Persistent Kind = iota
	// Transient OFMs hold intermediate results: no recovery facilities.
	Transient
)

func (k Kind) String() string {
	if k == Transient {
		return "transient"
	}
	return "persistent"
}

// Config describes one OFM.
type Config struct {
	// Name identifies the OFM (conventionally "table#fragment").
	Name string
	// Schema is the fragment's tuple layout.
	Schema *value.Schema
	// PE is the processing element the OFM lives on.
	PE *machine.PE
	// Machine provides message costs for remote logging; optional.
	Machine *machine.Machine
	// Kind selects persistent or transient behavior.
	Kind Kind
	// Log is the write-ahead log; required for Persistent OFMs.
	Log *wal.Log
	// Compiled selects the compiled scan path (default true). Set false
	// to force the interpreter (experiment E4's baseline).
	Compiled bool
	// Horizon, when set, returns the multiversion garbage-collection
	// horizon (the oldest snapshot any reader may still hold). Commits
	// use it to opportunistically vacuum dead versions.
	Horizon func() uint64
	// StatsFn, when set, observes (rowDelta, byteDelta) after commits —
	// the catalog's statistics feed.
	StatsFn func(rowDelta int, byteDelta int64)
	// Decide, when set, resolves in-doubt prepared transactions at
	// recovery by consulting the coordinator's decision log (absence of a
	// decision means presumed abort). Without it, in-doubt transactions
	// are reported but their effects are not redone.
	Decide wal.Decider
}

// writeSet buffers a transaction's deferred updates.
type writeSet struct {
	inserts  []value.Tuple
	deletes  []storage.RowID // resolved at delete time, applied at commit
	delTuple []value.Tuple   // tuple images for the redo log
	prepared bool
}

// OFM is a One-Fragment Manager.
type OFM struct {
	cfg   Config
	store *storage.Store

	mu            sync.Mutex
	pending       map[txn.ID]*writeSet
	recoveredTS   uint64              // highest commit TS seen by the last Recover
	lastRecovery  *wal.RecoveryResult // full report of the last Recover
	applyPend     map[txn.ID]*applyWS // replica: shipped write sets awaiting commit
	applyDeferred map[txn.ID]uint64   // replica: commit markers parked above the status watermark
	appliedTS     uint64              // replica: highest commit TS applied from the stream

	// ckptMu serializes Checkpoint against the commit-protocol writers:
	// Prepare/Commit/Abort hold it shared across their log append plus
	// store apply, Checkpoint holds it exclusive across snapshot plus
	// swap. Without it a commit landing between the checkpoint's store
	// snapshot and its log truncation survives only in volatile memory —
	// one fragment of a distributed transaction silently lost on crash.
	ckptMu sync.RWMutex

	lastGC atomic.Uint64 // GC horizon of the last vacuum pass

	predMu    sync.Mutex
	predCache map[string]*expr.Predicate

	vecMu    sync.Mutex
	vecCache map[string]*expr.VecFilter

	// ccMu guards the fragment column cache (colcache.go).
	ccMu sync.Mutex
	cc   *colCache
}

// New builds an OFM; Persistent OFMs must have a log.
func New(cfg Config) (*OFM, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("ofm: empty name")
	}
	if cfg.Schema == nil {
		return nil, fmt.Errorf("ofm: nil schema")
	}
	if cfg.PE == nil {
		return nil, fmt.Errorf("ofm: nil PE")
	}
	if cfg.Kind == Persistent && cfg.Log == nil {
		return nil, fmt.Errorf("ofm: persistent OFM %q needs a log", cfg.Name)
	}
	o := &OFM{
		cfg:       cfg,
		store:     storage.NewStore(cfg.Schema),
		pending:   map[txn.ID]*writeSet{},
		predCache: map[string]*expr.Predicate{},
		vecCache:  map[string]*expr.VecFilter{},
	}
	// Wire the 16 MB/PE budget: allocation failures surface as panics in
	// the accounting hook would be hostile; instead track best-effort.
	o.store.OnMemChange(func(delta int64) {
		if delta > 0 {
			// Ignore over-budget here; Insert checks the budget first.
			_ = cfg.PE.Alloc(delta)
		} else if delta < 0 {
			cfg.PE.Free(-delta)
		}
	})
	return o, nil
}

// Name returns the OFM's name (its 2PC participant identity).
func (o *OFM) Name() string { return o.cfg.Name }

// Kind returns the OFM's flavor.
func (o *OFM) Kind() Kind { return o.cfg.Kind }

// PE returns the hosting processing element.
func (o *OFM) PE() *machine.PE { return o.cfg.PE }

// Schema returns the fragment schema.
func (o *OFM) Schema() *value.Schema { return o.cfg.Schema }

// Store exposes the underlying storage (index creation, cursors).
func (o *OFM) Store() *storage.Store { return o.store }

// Rows returns the committed live tuple count.
func (o *OFM) Rows() int { return o.store.Len() }

// MemSize returns the fragment's approximate footprint.
func (o *OFM) MemSize() int64 { return o.store.MemSize() }

// cost shorthands.
func (o *OFM) costs() machine.CostModel {
	if o.cfg.Machine != nil {
		return o.cfg.Machine.Cost()
	}
	var c machine.CostModel
	return c
}

// compilePred returns the cached compiled predicate for e, charging the
// one-time compilation cost on a miss.
func (o *OFM) compilePred(e expr.Expr) (*expr.Predicate, error) {
	key := e.String()
	o.predMu.Lock()
	if p, ok := o.predCache[key]; ok {
		o.predMu.Unlock()
		return p, nil
	}
	o.predMu.Unlock()
	p, err := expr.CompilePredicate(expr.Clone(e), o.cfg.Schema)
	if err != nil {
		return nil, err
	}
	o.cfg.PE.Advance(o.costs().CompileCost())
	o.predMu.Lock()
	o.predCache[key] = p
	o.predMu.Unlock()
	return p, nil
}

// eqIndexProbe recognizes a predicate of the shape `col = const` (or a
// conjunction containing one) whose column has a hash index, returning
// the remaining predicate and the probe plan. This is the OFM's "local
// query optimizer" in miniature.
func (o *OFM) eqIndexProbe(e expr.Expr) (idx *storage.HashIndex, key value.Value, rest expr.Expr) {
	conjuncts := expr.SplitConjuncts(e)
	for i, c := range conjuncts {
		cmp, ok := c.(*expr.Cmp)
		if !ok || cmp.Op != expr.EQ {
			continue
		}
		col, cok := cmp.L.(*expr.Col)
		cst, vok := cmp.R.(*expr.Const)
		if !cok || !vok {
			col, cok = cmp.R.(*expr.Col)
			cst, vok = cmp.L.(*expr.Const)
		}
		if !cok || !vok || cst.V.IsNull() {
			continue
		}
		ix := o.cfg.Schema.Index(col.Name)
		if ix < 0 {
			continue
		}
		if cst.V.Kind() != o.cfg.Schema.Column(ix).Kind {
			// The index stores encoded values, so an INT key never
			// matches a FLOAT probe even when numerically equal (`id =
			// 2.0` must match id 2); leave those to the scan's generic
			// comparison.
			continue
		}
		hash, ok := o.store.HashIndexOn([]int{ix})
		if !ok {
			continue
		}
		remaining := append(append([]expr.Expr{}, conjuncts[:i]...), conjuncts[i+1:]...)
		return hash, cst.V, expr.Conjoin(remaining)
	}
	return nil, value.Null, e
}

// Scan evaluates an optional predicate over the view and returns the
// matching tuples, optionally projected to cols (nil = all). Virtual CPU
// time is charged per tuple examined; a hash index turns an equality
// scan into a probe. Only the versions visible at view.TS are read, so
// snapshot scans need no locks; when the view carries a transaction with
// pending writes on this fragment, the write set is merged in (and the
// index fast path skipped, since buffered inserts are not yet indexed).
func (o *OFM) Scan(view View, pred expr.Expr, cols []int) (*value.Relation, error) {
	cost := o.costs()
	del, ins := o.overlay(view)

	// Index probe path.
	if pred != nil && len(ins) == 0 {
		if hash, key, rest := o.eqIndexProbe(pred); hash != nil {
			ids := hash.Lookup([]value.Value{key})
			o.cfg.PE.Advance(cost.HashCost(1))
			rel := value.NewRelation(o.cfg.Schema)
			for _, id := range ids {
				if _, gone := del[id]; gone {
					continue
				}
				if t, ok := o.store.GetAt(id, view.TS); ok {
					rel.Append(t)
				}
			}
			o.cfg.PE.Advance(cost.BuildCost(rel.Len()))
			if rest != nil {
				return o.filterAndProject(rel, rest, cols)
			}
			return o.project(rel, cols)
		}
	}

	snapshot := value.NewRelation(o.cfg.Schema)
	snapshot.Tuples = make([]value.Tuple, 0, o.store.Len()+len(ins))
	o.store.ScanAt(view.TS, func(id storage.RowID, t value.Tuple) bool {
		if _, gone := del[id]; !gone {
			snapshot.Tuples = append(snapshot.Tuples, t)
		}
		return true
	})
	snapshot.Tuples = append(snapshot.Tuples, ins...)
	if pred == nil {
		o.cfg.PE.Advance(cost.BuildCost(snapshot.Len()))
		return o.project(snapshot, cols)
	}
	return o.filterAndProject(snapshot, pred, cols)
}

// ProbeEq answers an equality point query (col = key) with a direct
// hash-index lookup — the executor's IndexProbe fast path. Unlike Scan,
// no predicate is recognized, compiled or interpreted: the key arrives
// already resolved. rest, when non-nil, filters the probed tuples.
// A fragment without a matching index degrades to a filtered Scan, as
// does a view whose transaction has pending inserts here (they are not
// indexed yet).
func (o *OFM) ProbeEq(view View, col int, key value.Value, rest expr.Expr) (*value.Relation, error) {
	if key.IsNull() {
		// `col = NULL` is never true.
		return value.NewRelation(o.cfg.Schema), nil
	}
	del, ins := o.overlay(view)
	hash, ok := o.store.HashIndexOn([]int{col})
	if !ok || len(ins) > 0 {
		eq := expr.NewCmp(expr.EQ, expr.NewColIdx(col, o.cfg.Schema.Column(col).Kind), expr.NewConst(key))
		return o.Scan(view, expr.Conjoin([]expr.Expr{eq, rest}), nil)
	}
	cost := o.costs()
	ids := hash.Lookup([]value.Value{key})
	o.cfg.PE.Advance(cost.HashCost(1))
	rel := value.NewRelation(o.cfg.Schema)
	if len(ids) > 0 {
		rel.Tuples = make([]value.Tuple, 0, len(ids))
	}
	for _, id := range ids {
		if _, gone := del[id]; gone {
			continue
		}
		if t, ok := o.store.GetAt(id, view.TS); ok {
			rel.Append(t)
		}
	}
	o.cfg.PE.Advance(cost.BuildCost(rel.Len()))
	if rest != nil {
		return o.filterAndProject(rel, rest, nil)
	}
	return rel, nil
}

func (o *OFM) filterAndProject(rel *value.Relation, pred expr.Expr, cols []int) (*value.Relation, error) {
	cost := o.costs()
	var out *value.Relation
	var err error
	if o.cfg.Compiled {
		p, cerr := o.compilePred(pred)
		if cerr != nil {
			return nil, fmt.Errorf("ofm %s: %w", o.cfg.Name, cerr)
		}
		out, _, err = algebra.Select(rel, p)
		o.cfg.PE.Advance(cost.ScanCost(rel.Len(), true))
	} else {
		bound := expr.Clone(pred)
		if _, berr := expr.Bind(bound, o.cfg.Schema); berr != nil {
			return nil, fmt.Errorf("ofm %s: %w", o.cfg.Name, berr)
		}
		out, _, err = algebra.SelectInterpreted(rel, bound)
		o.cfg.PE.Advance(cost.ScanCost(rel.Len(), false))
	}
	if err != nil {
		return nil, fmt.Errorf("ofm %s: %w", o.cfg.Name, err)
	}
	return o.project(out, cols)
}

func (o *OFM) project(rel *value.Relation, cols []int) (*value.Relation, error) {
	if cols == nil {
		return rel, nil
	}
	out, _, err := algebra.Project(rel, cols)
	if err != nil {
		return nil, fmt.Errorf("ofm %s: %w", o.cfg.Name, err)
	}
	o.cfg.PE.Advance(o.costs().BuildCost(out.Len()))
	return out, nil
}

// Aggregate runs a local (per-fragment) aggregation, optionally filtered
// first — the pushdown step of distributed aggregation.
func (o *OFM) Aggregate(view View, pred expr.Expr, groupBy []int, specs []algebra.AggSpec) (*value.Relation, error) {
	in, err := o.Scan(view, pred, nil)
	if err != nil {
		return nil, err
	}
	out, st, err := algebra.Aggregate(in, groupBy, specs)
	if err != nil {
		return nil, fmt.Errorf("ofm %s: %w", o.cfg.Name, err)
	}
	o.cfg.PE.Advance(o.costs().HashCost(st.Hashes) + o.costs().BuildCost(st.TuplesEmitted))
	return out, nil
}

// Closure runs the transitive closure operator locally (paper §2.5).
func (o *OFM) Closure(view View, fromCol, toCol int, algo algebra.TCAlgorithm) (*value.Relation, error) {
	in := value.NewRelation(o.cfg.Schema)
	in.Tuples = o.visibleTuples(view)
	out, st, _, err := algebra.TransitiveClosure(in, fromCol, toCol, algo)
	if err != nil {
		return nil, fmt.Errorf("ofm %s: %w", o.cfg.Name, err)
	}
	o.cfg.PE.Advance(o.costs().HashCost(st.Hashes) + o.costs().BuildCost(st.TuplesEmitted))
	return out, nil
}

// Load bulk-inserts tuples outside any transaction (initial data
// placement by the data allocation manager). Persistent OFMs checkpoint
// the result so it survives crashes.
func (o *OFM) Load(tuples []value.Tuple) error {
	if _, err := o.store.InsertBatch(tuples); err != nil {
		return fmt.Errorf("ofm %s: load: %w", o.cfg.Name, err)
	}
	o.cfg.PE.Advance(o.costs().BuildCost(len(tuples)))
	if o.cfg.Kind == Persistent {
		if err := o.cfg.Log.Checkpoint(o.store.Snapshot()); err != nil {
			return fmt.Errorf("ofm %s: load checkpoint: %w", o.cfg.Name, err)
		}
	}
	if o.cfg.StatsFn != nil {
		var bytes int64
		for _, t := range tuples {
			bytes += int64(t.Size())
		}
		o.cfg.StatsFn(len(tuples), bytes)
	}
	return nil
}
