package ofm

import (
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
)

// LatestTS is the snapshot timestamp that sees the newest committed
// state (every committed version, no dead ones).
const LatestTS = ^uint64(0)

// View selects which tuple versions a read observes. Reads under MVCC
// carry a pinned snapshot timestamp and take no locks; the 2PL baseline
// and DML matching read Latest under fragment locks.
type View struct {
	// TS is the snapshot timestamp: the view contains exactly the
	// versions committed at or before TS (begin <= TS < end).
	TS uint64
	// Tx, when nonzero, overlays that transaction's own pending write
	// set — read-your-own-writes within a transaction.
	Tx txn.ID
}

// Latest is the view of the newest committed state with no overlay.
var Latest = View{TS: LatestTS}

// isSnapshot reports whether the view is a pinned snapshot (as opposed
// to Latest). Write paths use it to decide whether first-committer-wins
// validation applies.
func (v View) isSnapshot() bool { return v.TS != LatestTS }

// overlay returns the view transaction's pending write set on this
// fragment: the set of row ids it has deleted and a copy of the tuples
// it has inserted. Both are nil when the view carries no transaction or
// the transaction has no pending writes here.
func (o *OFM) overlay(view View) (del map[storage.RowID]struct{}, ins []value.Tuple) {
	if view.Tx == 0 {
		return nil, nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	w := o.pending[view.Tx]
	if w == nil {
		return nil, nil
	}
	if len(w.deletes) > 0 {
		del = make(map[storage.RowID]struct{}, len(w.deletes))
		for _, id := range w.deletes {
			del[id] = struct{}{}
		}
	}
	if len(w.inserts) > 0 {
		ins = append([]value.Tuple(nil), w.inserts...)
	}
	return del, ins
}

// visibleTuples materializes the view: committed versions visible at
// view.TS, minus the versions the view transaction deleted, plus the
// tuples it inserted.
func (o *OFM) visibleTuples(view View) []value.Tuple {
	del, ins := o.overlay(view)
	out := make([]value.Tuple, 0, o.store.Len()+len(ins))
	o.store.ScanAt(view.TS, func(id storage.RowID, t value.Tuple) bool {
		if _, gone := del[id]; !gone {
			out = append(out, t)
		}
		return true
	})
	return append(out, ins...)
}
