package ofm

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/fault"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wal"
)

// Fault points at the participant's three protocol entry points.
var (
	fpOFMPrepare = fault.Register("ofm.prepare.pre")
	fpOFMCommit  = fault.Register("ofm.commit.pre")
	fpOFMAbort   = fault.Register("ofm.abort.pre")
)

// Transactional updates use deferred write sets: mutations buffer in the
// OFM until two-phase commit applies them. Reads see committed state
// only. This file also implements txn.Participant and crash recovery.

func (o *OFM) ws(tx txn.ID) *writeSet {
	w := o.pending[tx]
	if w == nil {
		w = &writeSet{}
		o.pending[tx] = w
	}
	return w
}

// InsertTx buffers inserts for tx. The caller must already hold the
// fragment lock through the transaction layer.
func (o *OFM) InsertTx(tx txn.ID, tuples ...value.Tuple) error {
	// Validate eagerly so errors surface at insert, not commit.
	for _, t := range tuples {
		if err := storage.Conform(o.cfg.Schema, t); err != nil {
			return fmt.Errorf("ofm %s: %w", o.cfg.Name, err)
		}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	w := o.ws(tx)
	if w.prepared {
		return fmt.Errorf("ofm %s: txn %d already prepared", o.cfg.Name, tx)
	}
	w.inserts = append(w.inserts, tuples...)
	o.cfg.PE.Advance(o.costs().BuildCost(len(tuples)))
	return nil
}

// DeleteTx buffers the deletion of every tuple matching pred (nil = all)
// in the given view and returns how many will be deleted. The view's
// transaction overlay applies: the txn's own pending inserts are
// un-buffered when they match, and rows it already deleted are skipped.
// When the view is a pinned snapshot, first-committer-wins validation
// runs: matching a version that a later committer already superseded
// returns txn.ErrConflict and the caller must abort and retry.
func (o *OFM) DeleteTx(tx txn.ID, pred expr.Expr, view View) (int, error) {
	view.Tx = tx
	matching, err := o.matchRowIDs(view, pred)
	if err != nil {
		return 0, err
	}
	pendIdx, err := o.matchPending(tx, pred)
	if err != nil {
		return 0, err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	w := o.ws(tx)
	if w.prepared {
		return 0, fmt.Errorf("ofm %s: txn %d already prepared", o.cfg.Name, tx)
	}
	count := 0
	for _, id := range matching {
		t, ok := o.store.GetAt(id, view.TS)
		if !ok {
			continue
		}
		if err := o.checkConflict(view, id); err != nil {
			return 0, err
		}
		w.deletes = append(w.deletes, id)
		w.delTuple = append(w.delTuple, t)
		count++
	}
	count += w.dropInserts(pendIdx)
	return count, nil
}

// UpdateTx buffers an update in the given view: matching committed
// tuples are deleted and their transformed images inserted; the txn's
// own matching pending inserts are rewritten in place. set maps column
// index to an expression evaluated against the old tuple. Snapshot
// views get first-committer-wins validation as in DeleteTx.
func (o *OFM) UpdateTx(tx txn.ID, pred expr.Expr, set map[int]expr.Expr, view View) (int, error) {
	view.Tx = tx
	matching, err := o.matchRowIDs(view, pred)
	if err != nil {
		return 0, err
	}
	pendIdx, err := o.matchPending(tx, pred)
	if err != nil {
		return 0, err
	}
	// Bind the set expressions once.
	bound := map[int]expr.Expr{}
	for col, e := range set {
		if col < 0 || col >= o.cfg.Schema.Len() {
			return 0, fmt.Errorf("ofm %s: update column %d out of range", o.cfg.Name, col)
		}
		be := expr.Clone(e)
		if _, err := expr.Bind(be, o.cfg.Schema); err != nil {
			return 0, fmt.Errorf("ofm %s: %w", o.cfg.Name, err)
		}
		bound[col] = be
	}
	applySet := func(old value.Tuple) (value.Tuple, error) {
		updated := old.Clone()
		for col, e := range bound {
			v, err := e.Eval(old)
			if err != nil {
				return nil, fmt.Errorf("ofm %s: update: %w", o.cfg.Name, err)
			}
			updated[col] = v
		}
		return updated, nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	w := o.ws(tx)
	if w.prepared {
		return 0, fmt.Errorf("ofm %s: txn %d already prepared", o.cfg.Name, tx)
	}
	count := 0
	// Rewrite the txn's own matching buffered inserts first: pendIdx
	// indexes the pre-update insert list.
	for _, i := range pendIdx {
		updated, err := applySet(w.inserts[i])
		if err != nil {
			return count, err
		}
		w.inserts[i] = updated
		count++
	}
	for _, id := range matching {
		old, ok := o.store.GetAt(id, view.TS)
		if !ok {
			continue
		}
		if err := o.checkConflict(view, id); err != nil {
			return count, err
		}
		updated, err := applySet(old)
		if err != nil {
			return count, err
		}
		w.deletes = append(w.deletes, id)
		w.delTuple = append(w.delTuple, old)
		w.inserts = append(w.inserts, updated)
		count++
	}
	o.cfg.PE.Advance(o.costs().BuildCost(count))
	return count, nil
}

// checkConflict implements first-committer-wins: a snapshot-view writer
// that matched a version another transaction has since deleted (or
// replaced — updates are delete+insert) must abort. The fragment X-lock
// serializes writers, so by the time this transaction got the lock any
// competing writer has fully committed; a nonzero end timestamp on the
// matched version is exactly a write-write conflict.
func (o *OFM) checkConflict(view View, id storage.RowID) error {
	if !view.isSnapshot() {
		return nil
	}
	if _, end, ok := o.store.VersionTS(id); ok && end != 0 {
		return fmt.Errorf("ofm %s: row version superseded since snapshot %d: %w",
			o.cfg.Name, view.TS, txn.ErrConflict)
	}
	return nil
}

// dropInserts removes the buffered inserts at the given (sorted,
// pre-computed) indexes. Caller holds o.mu.
func (w *writeSet) dropInserts(idxs []int) int {
	if len(idxs) == 0 {
		return 0
	}
	gone := make(map[int]struct{}, len(idxs))
	for _, i := range idxs {
		gone[i] = struct{}{}
	}
	kept := w.inserts[:0]
	for i, t := range w.inserts {
		if _, g := gone[i]; !g {
			kept = append(kept, t)
		}
	}
	w.inserts = kept
	return len(idxs)
}

// matchPending returns the indexes of tx's buffered inserts matching
// pred (nil = all), read-your-own-writes for DML.
func (o *OFM) matchPending(tx txn.ID, pred expr.Expr) ([]int, error) {
	o.mu.Lock()
	var ins []value.Tuple
	if w := o.pending[tx]; w != nil && len(w.inserts) > 0 {
		ins = append([]value.Tuple(nil), w.inserts...)
	}
	o.mu.Unlock()
	if len(ins) == 0 {
		return nil, nil
	}
	if pred == nil {
		idxs := make([]int, len(ins))
		for i := range ins {
			idxs[i] = i
		}
		return idxs, nil
	}
	match, err := o.predMatcher(pred)
	if err != nil {
		return nil, err
	}
	var idxs []int
	for i, t := range ins {
		hit, err := match(t)
		if err != nil {
			return nil, fmt.Errorf("ofm %s: %w", o.cfg.Name, err)
		}
		if hit {
			idxs = append(idxs, i)
		}
	}
	return idxs, nil
}

// predMatcher returns a tuple matcher for pred honoring the OFM's
// compiled/interpreted configuration.
func (o *OFM) predMatcher(pred expr.Expr) (func(value.Tuple) (bool, error), error) {
	if o.cfg.Compiled {
		p, err := o.compilePred(pred)
		if err != nil {
			return nil, fmt.Errorf("ofm %s: %w", o.cfg.Name, err)
		}
		return p.Match, nil
	}
	bound := expr.Clone(pred)
	if _, err := expr.Bind(bound, o.cfg.Schema); err != nil {
		return nil, fmt.Errorf("ofm %s: %w", o.cfg.Name, err)
	}
	return func(t value.Tuple) (bool, error) {
		v, err := bound.Eval(t)
		if err != nil {
			return false, err
		}
		return expr.Truthy(v), nil
	}, nil
}

// matchRowIDs resolves pred against the versions visible in the view,
// skipping rows the view's transaction already deleted. An equality on a
// hash-indexed column probes the index instead of scanning the
// fragment — the point-UPDATE/DELETE fast path, mirroring what Scan
// does for point SELECTs (the E11 profile showed DML spending its time
// re-scanning fragments that the pk index answers in O(1)). The index
// also holds dead versions until Vacuum, so probe hits are re-checked
// against the view's visibility.
func (o *OFM) matchRowIDs(view View, pred expr.Expr) ([]storage.RowID, error) {
	del, _ := o.overlay(view)
	var ids []storage.RowID
	if pred == nil {
		o.store.ScanAt(view.TS, func(id storage.RowID, _ value.Tuple) bool {
			if _, gone := del[id]; !gone {
				ids = append(ids, id)
			}
			return true
		})
		o.cfg.PE.Advance(o.costs().ScanCost(len(ids), o.cfg.Compiled))
		return ids, nil
	}
	if hash, key, rest := o.eqIndexProbe(pred); hash != nil {
		probed := hash.Lookup([]value.Value{key})
		o.cfg.PE.Advance(o.costs().HashCost(1))
		var match func(value.Tuple) (bool, error)
		if rest != nil {
			var err error
			if match, err = o.predMatcher(rest); err != nil {
				return nil, err
			}
		}
		for _, id := range probed {
			if _, gone := del[id]; gone {
				continue
			}
			t, ok := o.store.GetAt(id, view.TS)
			if !ok {
				continue
			}
			if match != nil {
				hit, err := match(t)
				if err != nil {
					return nil, fmt.Errorf("ofm %s: %w", o.cfg.Name, err)
				}
				if !hit {
					continue
				}
			}
			ids = append(ids, id)
		}
		o.cfg.PE.Advance(o.costs().ScanCost(len(probed), true))
		return ids, nil
	}
	match, err := o.predMatcher(pred)
	if err != nil {
		return nil, err
	}
	scanned := 0
	var evalErr error
	o.store.ScanAt(view.TS, func(id storage.RowID, t value.Tuple) bool {
		scanned++
		if _, gone := del[id]; gone {
			return true
		}
		var hit bool
		hit, evalErr = match(t)
		if evalErr != nil {
			return false
		}
		if hit {
			ids = append(ids, id)
		}
		return true
	})
	o.cfg.PE.Advance(o.costs().ScanCost(scanned, o.cfg.Compiled))
	if evalErr != nil {
		return nil, fmt.Errorf("ofm %s: %w", o.cfg.Name, evalErr)
	}
	return ids, nil
}

// PendingFor reports the buffered write counts for tx (tests, tooling).
func (o *OFM) PendingFor(tx txn.ID) (inserts, deletes int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	w := o.pending[tx]
	if w == nil {
		return 0, 0
	}
	return len(w.inserts), len(w.deletes)
}

// ---------- txn.Participant ----------

// Prepare implements txn.Participant: the write set is forced to the
// redo log with a prepare marker. Transient OFMs vote yes with no I/O.
func (o *OFM) Prepare(tx txn.ID) error {
	if out := fpOFMPrepare.Eval(); out != nil {
		return fmt.Errorf("ofm %s: prepare: %w", o.cfg.Name, out.Err)
	}
	// Shared checkpoint latch across marking prepared AND forcing the
	// records: a checkpoint slipping between the two would carry the
	// write set forward and then see this append land on the fresh log —
	// the same redo replayed twice.
	o.ckptMu.RLock()
	defer o.ckptMu.RUnlock()
	o.mu.Lock()
	w := o.pending[tx]
	if w == nil {
		w = &writeSet{}
		o.pending[tx] = w
	}
	if w.prepared {
		o.mu.Unlock()
		return nil
	}
	w.prepared = true
	inserts := append([]value.Tuple(nil), w.inserts...)
	delTuples := append([]value.Tuple(nil), w.delTuple...)
	o.mu.Unlock()

	if o.cfg.Kind == Transient {
		return nil
	}
	// Redo records in apply order (deletes, then inserts), sealed by the
	// prepare marker, forced in one write.
	recs := make([]wal.Record, 0, len(inserts)+len(delTuples)+1)
	for _, t := range delTuples {
		recs = append(recs, wal.Record{Type: wal.RecDelete, Txn: tx, Tuple: t})
	}
	for _, t := range inserts {
		recs = append(recs, wal.Record{Type: wal.RecInsert, Txn: tx, Tuple: t})
	}
	recs = append(recs, wal.Record{Type: wal.RecPrepare, Txn: tx})
	o.chargeRemoteLog(len(recs))
	if err := o.cfg.Log.Append(recs...); err != nil {
		return fmt.Errorf("ofm %s: prepare: %w", o.cfg.Name, err)
	}
	return nil
}

// chargeRemoteLog charges the message cost of shipping log records from
// the OFM's PE to its (nearest) disk PE, where the allocator placed the
// stable store.
func (o *OFM) chargeRemoteLog(nRecords int) {
	if o.cfg.Machine == nil || o.cfg.Log == nil {
		return
	}
	bytes := nRecords * 64 // approximate record wire size
	diskPE := o.cfg.Machine.NearestDiskPE(o.cfg.PE.ID())
	if diskPE >= 0 && diskPE != o.cfg.PE.ID() {
		o.cfg.Machine.Send(o.cfg.PE.ID(), diskPE, bytes)
	}
}

// Commit implements txn.Participant: the commit marker (carrying the
// commit timestamp) is forced, then the write set is applied to the
// main-memory store as versions stamped with ts — deletes set the end
// timestamp (the tuple stays visible to older snapshots), inserts begin
// at ts. A zero ts (direct test use outside the timestamp-allocating
// transaction layer) degrades to physical deletes and load-visible
// inserts.
func (o *OFM) Commit(tx txn.ID, ts uint64) error {
	if out := fpOFMCommit.Eval(); out != nil {
		return fmt.Errorf("ofm %s: commit: %w", o.cfg.Name, out.Err)
	}
	// Shared checkpoint latch across the marker force AND the store
	// apply: a checkpoint interleaving between them would snapshot the
	// pre-commit store yet truncate the marker — the commit lost from
	// both stable images while living only in volatile memory.
	o.ckptMu.RLock()
	defer o.ckptMu.RUnlock()
	o.mu.Lock()
	w := o.pending[tx]
	o.mu.Unlock()
	if w == nil {
		return nil
	}
	if o.cfg.Kind == Persistent {
		// Group commit: the marker's disk force is shared with other
		// transactions committing on this log concurrently. The write set
		// stays pending until the marker is down, so a coordinator retry
		// after a transient failure re-runs a commit that still has its
		// work — popping it first would turn the retry into a silent no-op
		// that loses the transaction's effects.
		if err := o.cfg.Log.AppendCommit(tx, ts); err != nil {
			return fmt.Errorf("ofm %s: commit marker: %w", o.cfg.Name, err)
		}
	}
	o.mu.Lock()
	delete(o.pending, tx)
	o.mu.Unlock()
	var rowDelta int
	var byteDelta int64
	for i, id := range w.deletes {
		deleted := false
		if ts != 0 {
			deleted = o.store.DeleteVersion(id, ts)
		} else {
			deleted = o.store.Delete(id)
		}
		if deleted {
			rowDelta--
			byteDelta -= int64(w.delTuple[i].Size())
		}
	}
	for _, t := range w.inserts {
		if _, err := o.store.InsertVersion(t, ts); err != nil {
			return fmt.Errorf("ofm %s: commit apply: %w", o.cfg.Name, err)
		}
		rowDelta++
		byteDelta += int64(t.Size())
	}
	o.cfg.PE.Advance(o.costs().BuildCost(len(w.inserts) + len(w.deletes)))
	if o.cfg.StatsFn != nil && (rowDelta != 0 || byteDelta != 0) {
		o.cfg.StatsFn(rowDelta, byteDelta)
	}
	o.maybeVacuum()
	return nil
}

// vacuumThreshold is the dead-version count past which a commit triggers
// an opportunistic vacuum of the fragment.
const vacuumThreshold = 256

// maybeVacuum reclaims dead versions when enough have accumulated and a
// GC horizon is wired. The horizon is the oldest snapshot still pinned,
// so no reachable version is ever freed. A vacuum pass only runs when
// the horizon has advanced past the previous pass: versions that died
// since then carry newer end timestamps, so re-vacuuming at an unmoved
// horizon reclaims nothing — without the gate, a pinned horizon under a
// fast writer turns every commit into a full-store scan that starves
// readers of the store lock. A standalone OFM (no commit clock, so no
// snapshot can be reading old versions) reclaims eagerly at every
// commit, keeping the pre-MVCC memory profile.
func (o *OFM) maybeVacuum() {
	if o.cfg.Horizon == nil {
		if o.store.DeadVersions() > 0 {
			o.store.Vacuum(LatestTS)
		}
		return
	}
	if o.store.DeadVersions() < vacuumThreshold {
		return
	}
	h := o.cfg.Horizon()
	if h <= o.lastGC.Load() {
		return
	}
	o.lastGC.Store(h)
	o.store.Vacuum(h)
}

// Vacuum reclaims dead versions explicitly, up to the configured GC
// horizon (everything dead, when no horizon is wired). Returns the
// number of versions freed.
func (o *OFM) Vacuum() int {
	horizon := LatestTS
	if o.cfg.Horizon != nil {
		horizon = o.cfg.Horizon()
	}
	return o.store.Vacuum(horizon)
}

// Abort implements txn.Participant: the write set is dropped; a prepared
// persistent transaction logs an abort marker so recovery resolves it.
func (o *OFM) Abort(tx txn.ID) error {
	if out := fpOFMAbort.Eval(); out != nil {
		return fmt.Errorf("ofm %s: abort: %w", o.cfg.Name, out.Err)
	}
	// Shared checkpoint latch across dropping the write set AND logging
	// the abort marker, mirroring Prepare: a checkpoint between the two
	// would carry a write set that is no longer pending, resurrecting the
	// aborted transaction as in-doubt.
	o.ckptMu.RLock()
	defer o.ckptMu.RUnlock()
	o.mu.Lock()
	w := o.pending[tx]
	delete(o.pending, tx)
	o.mu.Unlock()
	if w == nil || o.cfg.Kind == Transient {
		return nil
	}
	if w.prepared {
		if err := o.cfg.Log.Append(wal.Record{Type: wal.RecAbort, Txn: tx}); err != nil {
			return fmt.Errorf("ofm %s: abort marker: %w", o.cfg.Name, err)
		}
	}
	return nil
}

// ---------- crash recovery ----------

// Crash simulates a PE failure: all volatile state (the store and any
// pending write sets) vanishes. Stable storage survives.
func (o *OFM) Crash() {
	o.mu.Lock()
	o.pending = map[txn.ID]*writeSet{}
	o.mu.Unlock()
	o.store.Clear()
}

// Recover rebuilds the fragment from stable storage: checkpoint image
// plus the redo records of committed transactions, with in-doubt
// prepared transactions resolved through the configured Decide hook
// (commit when the coordinator's decision log says so, presumed abort
// otherwise) and any torn log tail truncated to its valid prefix. Only
// Persistent OFMs can recover; a Transient OFM's contents are simply
// gone (its producer re-runs the query). Returns the number of redo
// records applied.
func (o *OFM) Recover() (int, error) {
	if o.cfg.Kind != Persistent {
		return 0, fmt.Errorf("ofm %s: transient OFMs do not recover", o.cfg.Name)
	}
	res, err := o.cfg.Log.RecoverResolved(o.cfg.Decide)
	if err != nil {
		return 0, fmt.Errorf("ofm %s: %w", o.cfg.Name, err)
	}
	o.store.Clear()
	if _, err := o.store.InsertBatch(res.Snapshot); err != nil {
		return 0, fmt.Errorf("ofm %s: recover snapshot: %w", o.cfg.Name, err)
	}
	applied := 0
	for _, r := range res.Redo {
		switch r.Type {
		case wal.RecInsert:
			// Replay with the original commit timestamp (stamped onto the
			// redo record by Recover) so post-restart snapshot visibility
			// matches the pre-crash committed state.
			if _, err := o.store.InsertVersion(r.Tuple, r.TS); err != nil {
				return applied, fmt.Errorf("ofm %s: redo insert: %w", o.cfg.Name, err)
			}
		case wal.RecDelete:
			// Delete by value: find one matching committed tuple. The
			// delete is physical — no pre-crash snapshot survives a crash,
			// so the dead version has no readers.
			var target storage.RowID = -1
			o.store.Scan(func(id storage.RowID, t value.Tuple) bool {
				if value.EqualTuples(t, r.Tuple) {
					target = id
					return false
				}
				return true
			})
			if target >= 0 {
				o.store.Delete(target)
			}
		}
		applied++
	}
	o.mu.Lock()
	o.recoveredTS = res.MaxTS
	o.lastRecovery = res
	o.mu.Unlock()
	o.cfg.PE.Advance(o.costs().BuildCost(len(res.Snapshot) + applied))
	return applied, nil
}

// RecoveredTS returns the highest commit timestamp seen by the last
// Recover; the restarted commit clock must advance past it.
func (o *OFM) RecoveredTS() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.recoveredTS
}

// LastRecovery returns the full report of the last Recover (nil before
// any recovery) — the crashpoint sweep asserts its in-doubt accounting.
func (o *OFM) LastRecovery() *wal.RecoveryResult {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.lastRecovery
}

// Checkpoint folds the committed store into the checkpoint segment and
// truncates the log (persistent OFMs only; transient is a no-op). It
// holds the checkpoint latch exclusive so no commit lands between the
// store snapshot and the log swap, and carries the redo records of
// transactions sitting prepared-but-undecided into the fresh log — the
// coordinator's decision log may yet declare them committed, so their
// redo must survive the truncation (their writes are not in the
// snapshot: write sets apply to the store only at commit).
func (o *OFM) Checkpoint() error {
	if o.cfg.Kind != Persistent {
		return nil
	}
	o.ckptMu.Lock()
	defer o.ckptMu.Unlock()
	o.mu.Lock()
	var carry []wal.Record
	for tx, w := range o.pending {
		if !w.prepared {
			continue
		}
		// Same shape Prepare forced: deletes, inserts, prepare seal.
		// Strict 2PL keeps concurrently-prepared write sets disjoint, so
		// inter-transaction order is immaterial.
		for _, t := range w.delTuple {
			carry = append(carry, wal.Record{Type: wal.RecDelete, Txn: tx, Tuple: t})
		}
		for _, t := range w.inserts {
			carry = append(carry, wal.Record{Type: wal.RecInsert, Txn: tx, Tuple: t})
		}
		carry = append(carry, wal.Record{Type: wal.RecPrepare, Txn: tx})
	}
	o.mu.Unlock()
	if err := o.cfg.Log.CheckpointWith(o.store.Snapshot(), carry); err != nil {
		return fmt.Errorf("ofm %s: checkpoint: %w", o.cfg.Name, err)
	}
	return nil
}
