package ofm

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wal"
)

// Transactional updates use deferred write sets: mutations buffer in the
// OFM until two-phase commit applies them. Reads see committed state
// only. This file also implements txn.Participant and crash recovery.

func (o *OFM) ws(tx txn.ID) *writeSet {
	w := o.pending[tx]
	if w == nil {
		w = &writeSet{}
		o.pending[tx] = w
	}
	return w
}

// InsertTx buffers inserts for tx. The caller must already hold the
// fragment lock through the transaction layer.
func (o *OFM) InsertTx(tx txn.ID, tuples ...value.Tuple) error {
	// Validate eagerly so errors surface at insert, not commit.
	for _, t := range tuples {
		if err := storage.Conform(o.cfg.Schema, t); err != nil {
			return fmt.Errorf("ofm %s: %w", o.cfg.Name, err)
		}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	w := o.ws(tx)
	if w.prepared {
		return fmt.Errorf("ofm %s: txn %d already prepared", o.cfg.Name, tx)
	}
	w.inserts = append(w.inserts, tuples...)
	o.cfg.PE.Advance(o.costs().BuildCost(len(tuples)))
	return nil
}

// DeleteTx buffers the deletion of every committed tuple matching pred
// (nil = all) and returns how many will be deleted.
func (o *OFM) DeleteTx(tx txn.ID, pred expr.Expr) (int, error) {
	matching, err := o.matchRowIDs(pred)
	if err != nil {
		return 0, err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	w := o.ws(tx)
	if w.prepared {
		return 0, fmt.Errorf("ofm %s: txn %d already prepared", o.cfg.Name, tx)
	}
	for _, id := range matching {
		if t, ok := o.store.Get(id); ok {
			w.deletes = append(w.deletes, id)
			w.delTuple = append(w.delTuple, t)
		}
	}
	return len(matching), nil
}

// UpdateTx buffers an update: matching tuples are deleted and their
// transformed images inserted. set maps column index to a bound
// expression evaluated against the old tuple.
func (o *OFM) UpdateTx(tx txn.ID, pred expr.Expr, set map[int]expr.Expr) (int, error) {
	matching, err := o.matchRowIDs(pred)
	if err != nil {
		return 0, err
	}
	// Bind the set expressions once.
	bound := map[int]expr.Expr{}
	for col, e := range set {
		if col < 0 || col >= o.cfg.Schema.Len() {
			return 0, fmt.Errorf("ofm %s: update column %d out of range", o.cfg.Name, col)
		}
		be := expr.Clone(e)
		if _, err := expr.Bind(be, o.cfg.Schema); err != nil {
			return 0, fmt.Errorf("ofm %s: %w", o.cfg.Name, err)
		}
		bound[col] = be
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	w := o.ws(tx)
	if w.prepared {
		return 0, fmt.Errorf("ofm %s: txn %d already prepared", o.cfg.Name, tx)
	}
	count := 0
	for _, id := range matching {
		old, ok := o.store.Get(id)
		if !ok {
			continue
		}
		updated := old.Clone()
		for col, e := range bound {
			v, err := e.Eval(old)
			if err != nil {
				return count, fmt.Errorf("ofm %s: update: %w", o.cfg.Name, err)
			}
			updated[col] = v
		}
		w.deletes = append(w.deletes, id)
		w.delTuple = append(w.delTuple, old)
		w.inserts = append(w.inserts, updated)
		count++
	}
	o.cfg.PE.Advance(o.costs().BuildCost(count))
	return count, nil
}

// matchRowIDs resolves pred against committed rows. An equality on a
// hash-indexed column probes the index instead of scanning the
// fragment — the point-UPDATE/DELETE fast path, mirroring what Scan
// does for point SELECTs (the E11 profile showed DML spending its time
// re-scanning fragments that the pk index answers in O(1)).
func (o *OFM) matchRowIDs(pred expr.Expr) ([]storage.RowID, error) {
	var ids []storage.RowID
	if pred == nil {
		o.store.Scan(func(id storage.RowID, _ value.Tuple) bool {
			ids = append(ids, id)
			return true
		})
		o.cfg.PE.Advance(o.costs().ScanCost(len(ids), o.cfg.Compiled))
		return ids, nil
	}
	if hash, key, rest := o.eqIndexProbe(pred); hash != nil {
		probed := hash.Lookup([]value.Value{key})
		o.cfg.PE.Advance(o.costs().HashCost(1))
		if rest == nil {
			return probed, nil
		}
		// Filter the probed rows by the remaining conjuncts.
		p, err := o.compilePred(rest)
		if err != nil {
			return nil, fmt.Errorf("ofm %s: %w", o.cfg.Name, err)
		}
		for _, id := range probed {
			t, ok := o.store.Get(id)
			if !ok {
				continue
			}
			hit, err := p.Match(t)
			if err != nil {
				return nil, fmt.Errorf("ofm %s: %w", o.cfg.Name, err)
			}
			if hit {
				ids = append(ids, id)
			}
		}
		o.cfg.PE.Advance(o.costs().ScanCost(len(probed), true))
		return ids, nil
	}
	var p *expr.Predicate
	var bound expr.Expr
	var err error
	if o.cfg.Compiled {
		p, err = o.compilePred(pred)
	} else {
		bound = expr.Clone(pred)
		_, err = expr.Bind(bound, o.cfg.Schema)
	}
	if err != nil {
		return nil, fmt.Errorf("ofm %s: %w", o.cfg.Name, err)
	}
	scanned := 0
	var evalErr error
	o.store.Scan(func(id storage.RowID, t value.Tuple) bool {
		scanned++
		var hit bool
		if p != nil {
			hit, evalErr = p.Match(t)
		} else {
			var v value.Value
			v, evalErr = bound.Eval(t)
			hit = expr.Truthy(v)
		}
		if evalErr != nil {
			return false
		}
		if hit {
			ids = append(ids, id)
		}
		return true
	})
	o.cfg.PE.Advance(o.costs().ScanCost(scanned, o.cfg.Compiled))
	if evalErr != nil {
		return nil, fmt.Errorf("ofm %s: %w", o.cfg.Name, evalErr)
	}
	return ids, nil
}

// PendingFor reports the buffered write counts for tx (tests, tooling).
func (o *OFM) PendingFor(tx txn.ID) (inserts, deletes int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	w := o.pending[tx]
	if w == nil {
		return 0, 0
	}
	return len(w.inserts), len(w.deletes)
}

// ---------- txn.Participant ----------

// Prepare implements txn.Participant: the write set is forced to the
// redo log with a prepare marker. Transient OFMs vote yes with no I/O.
func (o *OFM) Prepare(tx txn.ID) error {
	o.mu.Lock()
	w := o.pending[tx]
	if w == nil {
		w = &writeSet{}
		o.pending[tx] = w
	}
	if w.prepared {
		o.mu.Unlock()
		return nil
	}
	w.prepared = true
	inserts := append([]value.Tuple(nil), w.inserts...)
	delTuples := append([]value.Tuple(nil), w.delTuple...)
	o.mu.Unlock()

	if o.cfg.Kind == Transient {
		return nil
	}
	// Redo records in apply order (deletes, then inserts), sealed by the
	// prepare marker, forced in one write.
	recs := make([]wal.Record, 0, len(inserts)+len(delTuples)+1)
	for _, t := range delTuples {
		recs = append(recs, wal.Record{Type: wal.RecDelete, Txn: tx, Tuple: t})
	}
	for _, t := range inserts {
		recs = append(recs, wal.Record{Type: wal.RecInsert, Txn: tx, Tuple: t})
	}
	recs = append(recs, wal.Record{Type: wal.RecPrepare, Txn: tx})
	o.chargeRemoteLog(len(recs))
	if err := o.cfg.Log.Append(recs...); err != nil {
		return fmt.Errorf("ofm %s: prepare: %w", o.cfg.Name, err)
	}
	return nil
}

// chargeRemoteLog charges the message cost of shipping log records from
// the OFM's PE to its (nearest) disk PE, where the allocator placed the
// stable store.
func (o *OFM) chargeRemoteLog(nRecords int) {
	if o.cfg.Machine == nil || o.cfg.Log == nil {
		return
	}
	bytes := nRecords * 64 // approximate record wire size
	diskPE := o.cfg.Machine.NearestDiskPE(o.cfg.PE.ID())
	if diskPE >= 0 && diskPE != o.cfg.PE.ID() {
		o.cfg.Machine.Send(o.cfg.PE.ID(), diskPE, bytes)
	}
}

// Commit implements txn.Participant: the commit marker is forced, then
// the write set is applied to the main-memory store.
func (o *OFM) Commit(tx txn.ID) error {
	o.mu.Lock()
	w := o.pending[tx]
	delete(o.pending, tx)
	o.mu.Unlock()
	if w == nil {
		return nil
	}
	if o.cfg.Kind == Persistent {
		// Group commit: the marker's disk force is shared with other
		// transactions committing on this log concurrently.
		if err := o.cfg.Log.AppendCommit(tx); err != nil {
			return fmt.Errorf("ofm %s: commit marker: %w", o.cfg.Name, err)
		}
	}
	var rowDelta int
	var byteDelta int64
	for i, id := range w.deletes {
		if o.store.Delete(id) {
			rowDelta--
			byteDelta -= int64(w.delTuple[i].Size())
		}
	}
	for _, t := range w.inserts {
		if _, err := o.store.Insert(t); err != nil {
			return fmt.Errorf("ofm %s: commit apply: %w", o.cfg.Name, err)
		}
		rowDelta++
		byteDelta += int64(t.Size())
	}
	o.cfg.PE.Advance(o.costs().BuildCost(len(w.inserts) + len(w.deletes)))
	if o.cfg.StatsFn != nil && (rowDelta != 0 || byteDelta != 0) {
		o.cfg.StatsFn(rowDelta, byteDelta)
	}
	return nil
}

// Abort implements txn.Participant: the write set is dropped; a prepared
// persistent transaction logs an abort marker so recovery resolves it.
func (o *OFM) Abort(tx txn.ID) error {
	o.mu.Lock()
	w := o.pending[tx]
	delete(o.pending, tx)
	o.mu.Unlock()
	if w == nil || o.cfg.Kind == Transient {
		return nil
	}
	if w.prepared {
		if err := o.cfg.Log.Append(wal.Record{Type: wal.RecAbort, Txn: tx}); err != nil {
			return fmt.Errorf("ofm %s: abort marker: %w", o.cfg.Name, err)
		}
	}
	return nil
}

// ---------- crash recovery ----------

// Crash simulates a PE failure: all volatile state (the store and any
// pending write sets) vanishes. Stable storage survives.
func (o *OFM) Crash() {
	o.mu.Lock()
	o.pending = map[txn.ID]*writeSet{}
	o.mu.Unlock()
	o.store.Clear()
}

// Recover rebuilds the fragment from stable storage: checkpoint image
// plus the redo records of committed transactions. Only Persistent OFMs
// can recover; a Transient OFM's contents are simply gone (its producer
// re-runs the query). Returns the number of redo records applied.
func (o *OFM) Recover() (int, error) {
	if o.cfg.Kind != Persistent {
		return 0, fmt.Errorf("ofm %s: transient OFMs do not recover", o.cfg.Name)
	}
	res, err := o.cfg.Log.Recover()
	if err != nil {
		return 0, fmt.Errorf("ofm %s: %w", o.cfg.Name, err)
	}
	o.store.Clear()
	if _, err := o.store.InsertBatch(res.Snapshot); err != nil {
		return 0, fmt.Errorf("ofm %s: recover snapshot: %w", o.cfg.Name, err)
	}
	applied := 0
	for _, r := range res.Redo {
		switch r.Type {
		case wal.RecInsert:
			if _, err := o.store.Insert(r.Tuple); err != nil {
				return applied, fmt.Errorf("ofm %s: redo insert: %w", o.cfg.Name, err)
			}
		case wal.RecDelete:
			// Delete by value: find one matching committed tuple.
			var target storage.RowID = -1
			o.store.Scan(func(id storage.RowID, t value.Tuple) bool {
				if value.EqualTuples(t, r.Tuple) {
					target = id
					return false
				}
				return true
			})
			if target >= 0 {
				o.store.Delete(target)
			}
		}
		applied++
	}
	o.cfg.PE.Advance(o.costs().BuildCost(len(res.Snapshot) + applied))
	return applied, nil
}

// Checkpoint folds the committed store into the checkpoint segment and
// truncates the log (persistent OFMs only; transient is a no-op).
func (o *OFM) Checkpoint() error {
	if o.cfg.Kind != Persistent {
		return nil
	}
	if err := o.cfg.Log.Checkpoint(o.store.Snapshot()); err != nil {
		return fmt.Errorf("ofm %s: checkpoint: %w", o.cfg.Name, err)
	}
	return nil
}
