package ofm

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/machine"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wal"
)

func testSchema() *value.Schema {
	return value.MustSchema("id", "INT", "dept", "VARCHAR", "salary", "INT")
}

func emp(id int64, dept string, salary int64) value.Tuple {
	return value.NewTuple(value.NewInt(id), value.NewString(dept), value.NewInt(salary))
}

// newOFM builds a persistent OFM with its own machine, log and txn mgr.
func newOFM(t *testing.T, compiled bool) (*OFM, *machine.Machine, *txn.Manager) {
	t.Helper()
	m, err := machine.New(machine.Config{NumPEs: 16})
	if err != nil {
		t.Fatal(err)
	}
	store, err := machine.NewStableStore(m.PE(0), machine.DiskModel{})
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(store, "wal-emp-0")
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(Config{
		Name:     "emp#0",
		Schema:   testSchema(),
		PE:       m.PE(1),
		Machine:  m,
		Kind:     Persistent,
		Log:      log,
		Compiled: compiled,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o, m, txn.NewManager()
}

func load(t *testing.T, o *OFM, n int) {
	t.Helper()
	tuples := make([]value.Tuple, n)
	depts := []string{"eng", "ops", "hr"}
	for i := range tuples {
		tuples[i] = emp(int64(i), depts[i%3], int64(i*10))
	}
	if err := o.Load(tuples); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	m, err := machine.New(machine.Config{NumPEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Schema: testSchema(), PE: m.PE(0)}); err == nil {
		t.Error("empty name should error")
	}
	if _, err := New(Config{Name: "x", PE: m.PE(0)}); err == nil {
		t.Error("nil schema should error")
	}
	if _, err := New(Config{Name: "x", Schema: testSchema()}); err == nil {
		t.Error("nil PE should error")
	}
	if _, err := New(Config{Name: "x", Schema: testSchema(), PE: m.PE(0), Kind: Persistent}); err == nil {
		t.Error("persistent without log should error")
	}
	// Transient without log is fine.
	o, err := New(Config{Name: "x", Schema: testSchema(), PE: m.PE(0), Kind: Transient})
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind() != Transient || o.Kind().String() != "transient" {
		t.Errorf("kind = %v", o.Kind())
	}
}

func TestScanFullAndFiltered(t *testing.T) {
	for _, compiled := range []bool{true, false} {
		t.Run(fmt.Sprintf("compiled=%v", compiled), func(t *testing.T) {
			o, m, _ := newOFM(t, compiled)
			load(t, o, 30)
			all, err := o.Scan(Latest, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if all.Len() != 30 {
				t.Errorf("full scan = %d", all.Len())
			}
			pred := expr.NewCmp(expr.GE, expr.NewCol("salary"), expr.NewConst(value.NewInt(150)))
			some, err := o.Scan(Latest, pred, nil)
			if err != nil {
				t.Fatal(err)
			}
			if some.Len() != 15 {
				t.Errorf("filtered scan = %d, want 15", some.Len())
			}
			// Projection.
			proj, err := o.Scan(Latest, pred, []int{0})
			if err != nil {
				t.Fatal(err)
			}
			if proj.Schema.Len() != 1 || proj.Len() != 15 {
				t.Errorf("projected scan = %v", proj.Schema)
			}
			// Virtual time charged.
			if m.PE(1).Clock() <= 0 {
				t.Error("scan must charge virtual time")
			}
		})
	}
}

func TestCompiledVsInterpretedSameResults(t *testing.T) {
	oc, _, _ := newOFM(t, true)
	oi, _, _ := newOFM(t, false)
	load(t, oc, 50)
	load(t, oi, 50)
	preds := []expr.Expr{
		expr.NewCmp(expr.LT, expr.NewCol("id"), expr.NewConst(value.NewInt(25))),
		expr.NewAnd(
			expr.NewCmp(expr.EQ, expr.NewCol("dept"), expr.NewConst(value.NewString("eng"))),
			expr.NewCmp(expr.GT, expr.NewCol("salary"), expr.NewConst(value.NewInt(100)))),
		expr.NewLike(expr.NewCol("dept"), "e%", false),
	}
	for _, p := range preds {
		a, err := oc.Scan(Latest, expr.Clone(p), nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := oi.Scan(Latest, expr.Clone(p), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !a.SameBag(b) {
			t.Errorf("compiled and interpreted scans differ for %s", p)
		}
	}
}

func TestIndexProbe(t *testing.T) {
	o, m, _ := newOFM(t, true)
	load(t, o, 100)
	if _, err := o.Store().CreateHashIndex("by_id", []int{0}); err != nil {
		t.Fatal(err)
	}
	m.ResetClocks()
	pred := expr.NewCmp(expr.EQ, expr.NewCol("id"), expr.NewConst(value.NewInt(42)))
	out, err := o.Scan(Latest, pred, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Tuples[0][0].Int() != 42 {
		t.Fatalf("index probe = %v", out.Tuples)
	}
	probeTime := m.PE(1).Clock()

	// A non-indexed scan of the same data costs much more virtual time.
	m.ResetClocks()
	pred2 := expr.NewCmp(expr.EQ, expr.NewCol("salary"), expr.NewConst(value.NewInt(420)))
	if _, err := o.Scan(Latest, pred2, nil); err != nil {
		t.Fatal(err)
	}
	scanTime := m.PE(1).Clock()
	if probeTime >= scanTime {
		t.Errorf("index probe %v not cheaper than full scan %v", probeTime, scanTime)
	}

	// Compound predicate: index probe plus residual filter.
	pred3 := expr.NewAnd(
		expr.NewCmp(expr.EQ, expr.NewCol("id"), expr.NewConst(value.NewInt(42))),
		expr.NewCmp(expr.GT, expr.NewCol("salary"), expr.NewConst(value.NewInt(99999))))
	out, err = o.Scan(Latest, pred3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("residual filter ignored: %v", out.Tuples)
	}
	// Constant on the left also probes.
	pred4 := expr.NewCmp(expr.EQ, expr.NewConst(value.NewInt(7)), expr.NewCol("id"))
	out, err = o.Scan(Latest, pred4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Errorf("const-left probe = %v", out.Tuples)
	}
}

func TestAggregatePushdown(t *testing.T) {
	o, _, _ := newOFM(t, true)
	load(t, o, 30)
	out, err := o.Aggregate(Latest, nil, []int{1}, []algebra.AggSpec{
		{Func: algebra.Count, Col: -1, As: "n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("groups = %d", out.Len())
	}
	total := int64(0)
	for _, row := range out.Tuples {
		total += row[1].Int()
	}
	if total != 30 {
		t.Errorf("counts sum to %d", total)
	}
}

func TestClosureOperator(t *testing.T) {
	m, err := machine.New(machine.Config{NumPEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(Config{
		Name:   "edges#0",
		Schema: value.MustSchema("src", "INT", "dst", "INT"),
		PE:     m.PE(0),
		Kind:   Transient,
	})
	if err != nil {
		t.Fatal(err)
	}
	var edges []value.Tuple
	for i := int64(0); i < 10; i++ {
		edges = append(edges, value.Ints(i, i+1))
	}
	if err := o.Load(edges); err != nil {
		t.Fatal(err)
	}
	out, err := o.Closure(Latest, 0, 1, algebra.TCSemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 55 { // 10+9+...+1
		t.Errorf("closure = %d pairs, want 55", out.Len())
	}
}

func TestTransactionCommitFlow(t *testing.T) {
	o, _, mgr := newOFM(t, true)
	load(t, o, 10)
	tx := mgr.Begin()
	if err := tx.Lock(o.Name(), txn.Exclusive); err != nil {
		t.Fatal(err)
	}
	tx.Enlist(o)
	if err := o.InsertTx(tx.ID(), emp(100, "new", 999)); err != nil {
		t.Fatal(err)
	}
	// Deferred: not visible before commit.
	if o.Rows() != 10 {
		t.Errorf("insert visible before commit: %d rows", o.Rows())
	}
	ins, dels := o.PendingFor(tx.ID())
	if ins != 1 || dels != 0 {
		t.Errorf("pending = %d/%d", ins, dels)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if o.Rows() != 11 {
		t.Errorf("rows after commit = %d", o.Rows())
	}
	// The write set is gone.
	ins, dels = o.PendingFor(tx.ID())
	if ins != 0 || dels != 0 {
		t.Errorf("write set survived commit: %d/%d", ins, dels)
	}
}

func TestTransactionAbortDiscards(t *testing.T) {
	o, _, mgr := newOFM(t, true)
	load(t, o, 10)
	tx := mgr.Begin()
	tx.Enlist(o)
	if err := o.InsertTx(tx.ID(), emp(100, "new", 999)); err != nil {
		t.Fatal(err)
	}
	if _, err := o.DeleteTx(tx.ID(), nil, Latest); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if o.Rows() != 10 {
		t.Errorf("abort changed rows: %d", o.Rows())
	}
}

func TestDeleteTx(t *testing.T) {
	o, _, mgr := newOFM(t, true)
	load(t, o, 30)
	tx := mgr.Begin()
	tx.Enlist(o)
	pred := expr.NewCmp(expr.EQ, expr.NewCol("dept"), expr.NewConst(value.NewString("eng")))
	n, err := o.DeleteTx(tx.ID(), pred, Latest)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("matched %d, want 10", n)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if o.Rows() != 20 {
		t.Errorf("rows after delete = %d", o.Rows())
	}
	left, err := o.Scan(Latest, pred, nil)
	if err != nil {
		t.Fatal(err)
	}
	if left.Len() != 0 {
		t.Errorf("eng rows survived: %v", left.Tuples)
	}
}

func TestUpdateTx(t *testing.T) {
	o, _, mgr := newOFM(t, true)
	load(t, o, 10)
	tx := mgr.Begin()
	tx.Enlist(o)
	// UPDATE emp SET salary = salary + 1000 WHERE dept = 'eng'.
	pred := expr.NewCmp(expr.EQ, expr.NewCol("dept"), expr.NewConst(value.NewString("eng")))
	set := map[int]expr.Expr{
		2: expr.NewArith(expr.Add, expr.NewCol("salary"), expr.NewConst(value.NewInt(1000))),
	}
	n, err := o.UpdateTx(tx.ID(), pred, set, Latest)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 { // ids 0,3,6,9
		t.Errorf("updated %d, want 4", n)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	out, err := o.Scan(Latest, pred, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range out.Tuples {
		if row[2].Int() < 1000 {
			t.Errorf("update not applied: %v", row)
		}
	}
	if o.Rows() != 10 {
		t.Errorf("update changed cardinality: %d", o.Rows())
	}
	// Bad set column.
	tx2 := mgr.Begin()
	if _, err := o.UpdateTx(tx2.ID(), nil, map[int]expr.Expr{9: expr.NewConst(value.NewInt(1))}, Latest); err == nil {
		t.Error("bad set column should error")
	}
	tx2.Abort()
}

func TestMutationAfterPrepareRejected(t *testing.T) {
	o, _, mgr := newOFM(t, true)
	tx := mgr.Begin()
	if err := o.InsertTx(tx.ID(), emp(1, "x", 1)); err != nil {
		t.Fatal(err)
	}
	if err := o.Prepare(tx.ID()); err != nil {
		t.Fatal(err)
	}
	if err := o.InsertTx(tx.ID(), emp(2, "y", 2)); err == nil {
		t.Error("insert after prepare should error")
	}
	if _, err := o.DeleteTx(tx.ID(), nil, Latest); err == nil {
		t.Error("delete after prepare should error")
	}
	if err := o.Commit(tx.ID(), 0); err != nil {
		t.Fatal(err)
	}
	tx.Abort() // local txn cleanup; OFM already committed via direct calls
}

func TestCrashRecovery(t *testing.T) {
	o, _, mgr := newOFM(t, true)
	load(t, o, 20)

	// Committed txn: survives.
	tx1 := mgr.Begin()
	tx1.Enlist(o)
	if err := o.InsertTx(tx1.ID(), emp(100, "new", 1)); err != nil {
		t.Fatal(err)
	}
	pred := expr.NewCmp(expr.EQ, expr.NewCol("id"), expr.NewConst(value.NewInt(5)))
	if _, err := o.DeleteTx(tx1.ID(), pred, Latest); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}

	// Uncommitted txn: lost.
	tx2 := mgr.Begin()
	tx2.Enlist(o)
	if err := o.InsertTx(tx2.ID(), emp(200, "ghost", 2)); err != nil {
		t.Fatal(err)
	}

	before, err := o.Scan(Latest, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	o.Crash()
	if o.Rows() != 0 {
		t.Fatal("crash should clear volatile state")
	}
	applied, err := o.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 {
		t.Error("no redo applied")
	}
	after, err := o.Scan(Latest, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !after.SameSet(before) {
		t.Errorf("recovery diverged: %d rows vs %d", after.Len(), before.Len())
	}
	// The ghost insert is absent.
	ghost, err := o.Scan(Latest, expr.NewCmp(expr.EQ, expr.NewCol("id"), expr.NewConst(value.NewInt(200))), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ghost.Len() != 0 {
		t.Error("uncommitted insert survived the crash")
	}
}

func TestCheckpointShortensRecovery(t *testing.T) {
	o, _, mgr := newOFM(t, true)
	load(t, o, 5)
	for i := 0; i < 10; i++ {
		tx := mgr.Begin()
		tx.Enlist(o)
		if err := o.InsertTx(tx.ID(), emp(int64(1000+i), "x", 1)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// One more commit after the checkpoint.
	tx := mgr.Begin()
	tx.Enlist(o)
	if err := o.InsertTx(tx.ID(), emp(2000, "y", 2)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	o.Crash()
	applied, err := o.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// Only the post-checkpoint txn is redone.
	if applied != 1 {
		t.Errorf("redo after checkpoint = %d records, want 1", applied)
	}
	if o.Rows() != 16 {
		t.Errorf("rows after recovery = %d, want 16", o.Rows())
	}
}

func TestTransientOFMBehavior(t *testing.T) {
	m, err := machine.New(machine.Config{NumPEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(Config{Name: "tmp#0", Schema: testSchema(), PE: m.PE(0), Kind: Transient, Compiled: true})
	if err != nil {
		t.Fatal(err)
	}
	load(t, o, 10)
	mgr := txn.NewManager()
	tx := mgr.Begin()
	tx.Enlist(o)
	if err := o.InsertTx(tx.ID(), emp(99, "z", 9)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if o.Rows() != 11 {
		t.Errorf("rows = %d", o.Rows())
	}
	// No recovery for transient OFMs.
	o.Crash()
	if _, err := o.Recover(); err == nil {
		t.Error("transient recovery should error")
	}
	if err := o.Checkpoint(); err != nil {
		t.Errorf("transient checkpoint should be a no-op, got %v", err)
	}
}

func TestStatsCallback(t *testing.T) {
	m, err := machine.New(machine.Config{NumPEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	var bytes int64
	o, err := New(Config{
		Name: "s#0", Schema: testSchema(), PE: m.PE(0), Kind: Transient, Compiled: true,
		StatsFn: func(rd int, bd int64) { rows += rd; bytes += bd },
	})
	if err != nil {
		t.Fatal(err)
	}
	load(t, o, 10)
	if rows != 10 || bytes <= 0 {
		t.Errorf("stats after load: %d rows %d bytes", rows, bytes)
	}
	mgr := txn.NewManager()
	tx := mgr.Begin()
	tx.Enlist(o)
	if _, err := o.DeleteTx(tx.ID(), nil, Latest); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if rows != 0 {
		t.Errorf("stats after delete-all: %d rows", rows)
	}
}

func TestMemoryBudgetEnforced(t *testing.T) {
	m, err := machine.New(machine.Config{NumPEs: 2, MemoryPerPE: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(Config{Name: "m#0", Schema: testSchema(), PE: m.PE(0), Kind: Transient, Compiled: true})
	if err != nil {
		t.Fatal(err)
	}
	load(t, o, 100)
	if m.PE(0).MemUsed() <= 0 {
		t.Error("PE memory accounting not wired")
	}
	used := m.PE(0).MemUsed()
	mgr := txn.NewManager()
	tx := mgr.Begin()
	tx.Enlist(o)
	if _, err := o.DeleteTx(tx.ID(), nil, Latest); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.PE(0).MemUsed() >= used {
		t.Error("memory not released after delete")
	}
}

func TestLoadTypeErrors(t *testing.T) {
	o, _, _ := newOFM(t, true)
	err := o.Load([]value.Tuple{value.Ints(1)})
	if err == nil || !strings.Contains(err.Error(), "arity") {
		t.Errorf("bad load error = %v", err)
	}
}
