package ofm

import (
	"sync/atomic"
	"testing"

	"repro/internal/expr"
	"repro/internal/machine"
	"repro/internal/txn"
	"repro/internal/value"
)

// newMVCCOFM builds a transient compiled OFM with a controllable GC
// horizon, so commits stamp MVCC versions without the standalone eager
// vacuum reclaiming them out from under the snapshot tests.
func newMVCCOFM(t *testing.T, horizon *atomic.Uint64) (*OFM, *txn.Manager) {
	t.Helper()
	m, err := machine.New(machine.Config{NumPEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(Config{
		Name:     "cc#0",
		Schema:   testSchema(),
		PE:       m.PE(0),
		Kind:     Transient,
		Compiled: true,
		Horizon:  func() uint64 { return horizon.Load() },
	})
	if err != nil {
		t.Fatal(err)
	}
	return o, txn.NewManager()
}

// commitAt applies a buffered write set with an explicit commit
// timestamp, the way the engine's commit clock would.
func commitAt(t *testing.T, o *OFM, tx *txn.Txn, ts uint64) {
	t.Helper()
	if err := o.Prepare(tx.ID()); err != nil {
		t.Fatal(err)
	}
	if err := o.Commit(tx.ID(), ts); err != nil {
		t.Fatal(err)
	}
	tx.Abort() // local txn bookkeeping; the OFM already committed
}

func scanBatchLen(t *testing.T, o *OFM, view View) int {
	t.Helper()
	b, _, err := o.ScanBatch(view, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b == nil {
		t.Fatal("ScanBatch declined unexpectedly")
	}
	return b.Len()
}

// TestColumnCacheRebuildOnWrite pins the invalidation contract: the
// first batch scan builds the cache (reporting its bytes), repeated
// scans hit the same generation for free, and any committed write bumps
// the store version so the next batch scan rebuilds.
func TestColumnCacheRebuildOnWrite(t *testing.T) {
	var horizon atomic.Uint64
	o, mgr := newMVCCOFM(t, &horizon)
	load(t, o, 20)

	b, built, err := o.ScanBatch(Latest, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b == nil || b.Len() != 20 {
		t.Fatalf("first batch scan = %v", b)
	}
	if built <= 0 {
		t.Error("first batch scan must report the cache build bytes")
	}
	gen1 := o.cc
	if gen1 == nil {
		t.Fatal("no cache generation installed")
	}

	// A second scan is a hit: no bytes built, same generation.
	if _, built, err = o.ScanBatch(Latest, nil, nil); err != nil {
		t.Fatal(err)
	}
	if built != 0 {
		t.Errorf("cache hit built %d bytes", built)
	}
	if o.cc != gen1 {
		t.Error("cache rebuilt without a write")
	}

	// A committed insert invalidates: next scan rebuilds and sees it.
	tx := mgr.Begin()
	if err := o.InsertTx(tx.ID(), emp(100, "new", 999)); err != nil {
		t.Fatal(err)
	}
	commitAt(t, o, tx, 5)
	b, built, err = o.ScanBatch(Latest, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if built <= 0 {
		t.Error("post-write scan must rebuild the cache")
	}
	if o.cc == gen1 {
		t.Error("stale cache generation survived a committed write")
	}
	if b.Len() != 21 {
		t.Errorf("post-write batch scan = %d rows, want 21", b.Len())
	}
}

// TestColumnCacheServesOldSnapshots proves one cache generation answers
// any snapshot: after a delete and an insert commit at ts=10, a scan at
// an older watermark still sees the pre-commit image — with no rebuild
// between the two reads.
func TestColumnCacheServesOldSnapshots(t *testing.T) {
	var horizon atomic.Uint64
	horizon.Store(1) // pin GC below the commits so dead versions survive
	o, mgr := newMVCCOFM(t, &horizon)
	load(t, o, 10)

	tx := mgr.Begin()
	pred := expr.NewCmp(expr.LT, expr.NewCol("id"), expr.NewConst(value.NewInt(3)))
	if n, err := o.DeleteTx(tx.ID(), pred, Latest); err != nil || n != 3 {
		t.Fatalf("delete = %d, %v", n, err)
	}
	if err := o.InsertTx(tx.ID(), emp(100, "new", 999)); err != nil {
		t.Fatal(err)
	}
	commitAt(t, o, tx, 10)

	// New snapshot: 7 survivors + 1 insert.
	if n := scanBatchLen(t, o, View{TS: 15}); n != 8 {
		t.Errorf("scan at ts=15 = %d rows, want 8", n)
	}
	gen := o.cc
	// Old snapshot, same cache generation: the 10 original rows.
	if n := scanBatchLen(t, o, View{TS: 5}); n != 10 {
		t.Errorf("scan at ts=5 = %d rows, want 10", n)
	}
	if o.cc != gen {
		t.Error("old-snapshot scan rebuilt the cache")
	}
	// Latest sees the post-commit image.
	if n := scanBatchLen(t, o, Latest); n != 8 {
		t.Errorf("scan at latest = %d rows, want 8", n)
	}
}

// TestColumnCacheVacuumDropsDeadVersions: vacuuming reclaims dead
// versions from the store, which bumps the version counter so the next
// rebuild carries only the surviving rows.
func TestColumnCacheVacuumDropsDeadVersions(t *testing.T) {
	var horizon atomic.Uint64
	horizon.Store(1)
	o, mgr := newMVCCOFM(t, &horizon)
	load(t, o, 10)

	tx := mgr.Begin()
	pred := expr.NewCmp(expr.LT, expr.NewCol("id"), expr.NewConst(value.NewInt(4)))
	if _, err := o.DeleteTx(tx.ID(), pred, Latest); err != nil {
		t.Fatal(err)
	}
	commitAt(t, o, tx, 10)

	// The cache carries every version, dead ones included.
	if n := scanBatchLen(t, o, Latest); n != 6 {
		t.Fatalf("visible rows = %d, want 6", n)
	}
	if o.cc.rows != 10 {
		t.Fatalf("cached versions = %d, want 10 (dead versions cached)", o.cc.rows)
	}

	// Advance the horizon past the delete and vacuum: the next rebuild
	// drops the reclaimed versions from the cache.
	horizon.Store(20)
	if freed := o.Vacuum(); freed != 4 {
		t.Fatalf("vacuum freed %d, want 4", freed)
	}
	if n := scanBatchLen(t, o, Latest); n != 6 {
		t.Errorf("post-vacuum visible rows = %d, want 6", n)
	}
	if o.cc.rows != 6 {
		t.Errorf("post-vacuum cached versions = %d, want 6", o.cc.rows)
	}
	if !o.cc.allCurrent {
		t.Error("a fully vacuumed unversioned fragment should scan dense")
	}
}

// TestScanBatchDeclines pins every condition under which the batch path
// must hand the scan back to the row executor.
func TestScanBatchDeclines(t *testing.T) {
	// Interpreted OFM (the E4 baseline): no compiled kernels.
	oi, _, _ := newOFM(t, false)
	load(t, oi, 10)
	if b, _, err := oi.ScanBatch(Latest, nil, nil); err != nil || b != nil {
		t.Errorf("interpreted ScanBatch = %v, %v; want decline", b, err)
	}

	var horizon atomic.Uint64
	o, mgr := newMVCCOFM(t, &horizon)
	load(t, o, 50)

	// A transaction with pending writes here must see its own overlay:
	// the batch path declines for that transaction's view only.
	tx := mgr.Begin()
	if err := o.InsertTx(tx.ID(), emp(100, "new", 1)); err != nil {
		t.Fatal(err)
	}
	if b, _, err := o.ScanBatch(View{TS: LatestTS, Tx: tx.ID()}, nil, nil); err != nil || b != nil {
		t.Errorf("overlay ScanBatch = %v, %v; want decline", b, err)
	}
	if b, _, err := o.ScanBatch(Latest, nil, nil); err != nil || b == nil {
		t.Errorf("clean-view ScanBatch declined: %v, %v", b, err)
	}
	tx.Abort()

	// An indexed point predicate: the hash probe beats any scan.
	if _, err := o.Store().CreateHashIndex("by_id", []int{0}); err != nil {
		t.Fatal(err)
	}
	point := expr.NewCmp(expr.EQ, expr.NewCol("id"), expr.NewConst(value.NewInt(42)))
	if b, _, err := o.ScanBatch(Latest, point, nil); err != nil || b != nil {
		t.Errorf("point-probe ScanBatch = %v, %v; want decline", b, err)
	}
}

// TestScanBatchMatchesScan is the fragment-level differential: for a
// spread of predicates and projections the batch scan materializes to
// exactly what the row scan returns.
func TestScanBatchMatchesScan(t *testing.T) {
	var horizon atomic.Uint64
	horizon.Store(1)
	o, mgr := newMVCCOFM(t, &horizon)
	load(t, o, 60)
	// Mix in MVCC churn so visibility selection is exercised too.
	tx := mgr.Begin()
	if _, err := o.DeleteTx(tx.ID(), expr.NewCmp(expr.GE, expr.NewCol("id"), expr.NewConst(value.NewInt(55))), Latest); err != nil {
		t.Fatal(err)
	}
	if err := o.InsertTx(tx.ID(), emp(200, "eng", 75)); err != nil {
		t.Fatal(err)
	}
	commitAt(t, o, tx, 10)

	preds := []expr.Expr{
		nil,
		expr.NewCmp(expr.LT, expr.NewCol("id"), expr.NewConst(value.NewInt(25))),
		expr.NewAnd(
			expr.NewCmp(expr.EQ, expr.NewCol("dept"), expr.NewConst(value.NewString("eng"))),
			expr.NewCmp(expr.GT, expr.NewCol("salary"), expr.NewConst(value.NewInt(100)))),
		expr.NewOr(
			expr.NewCmp(expr.LE, expr.NewCol("salary"), expr.NewConst(value.NewInt(50))),
			expr.NewCmp(expr.GE, expr.NewCol("salary"), expr.NewConst(value.NewInt(400)))),
		expr.NewLike(expr.NewCol("dept"), "e%", false), // row-fallback kernel inside the vec filter
	}
	views := []View{Latest, {TS: 5}, {TS: 15}}
	for pi, p := range preds {
		for vi, v := range views {
			for _, cols := range [][]int{nil, {0}, {2, 0}} {
				var pc expr.Expr
				if p != nil {
					pc = expr.Clone(p)
				}
				want, err := o.Scan(v, pc, cols)
				if err != nil {
					t.Fatal(err)
				}
				if p != nil {
					pc = expr.Clone(p)
				}
				b, _, err := o.ScanBatch(v, pc, cols)
				if err != nil {
					t.Fatal(err)
				}
				if b == nil {
					t.Fatalf("pred %d view %d cols %v: batch path declined", pi, vi, cols)
				}
				got := b.Materialize()
				if !got.SameBag(want) {
					t.Errorf("pred %d view %d cols %v: batch %d rows vs row %d rows",
						pi, vi, cols, got.Len(), want.Len())
				}
			}
		}
	}
}
