package fragment

import (
	"math/rand"
	"testing"

	"repro/internal/machine"
	"repro/internal/value"
)

func schema() *value.Schema { return value.MustSchema("id", "INT", "name", "VARCHAR") }

func TestStrategyParseAndString(t *testing.T) {
	for _, s := range []string{"hash", "range", "round-robin", "single"} {
		st, err := ParseStrategy(s)
		if err != nil {
			t.Errorf("ParseStrategy(%q): %v", s, err)
		}
		if st.String() != s {
			t.Errorf("round trip %q -> %q", s, st.String())
		}
	}
	if _, err := ParseStrategy("sharding"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestValidate(t *testing.T) {
	s := schema()
	good := []*Scheme{
		{Strategy: Single, N: 1},
		{Strategy: Hash, Column: 0, N: 8},
		{Strategy: Range, Column: 0, N: 3, Bounds: []value.Value{value.NewInt(10), value.NewInt(20)}},
		{Strategy: RoundRobin, N: 4},
	}
	for _, sc := range good {
		if err := sc.Validate(s); err != nil {
			t.Errorf("Validate(%v/%d) = %v", sc.Strategy, sc.N, err)
		}
	}
	bad := []*Scheme{
		{Strategy: Hash, Column: 0, N: 0},
		{Strategy: Single, N: 2},
		{Strategy: Hash, Column: 9, N: 2},
		{Strategy: Range, Column: 0, N: 3, Bounds: []value.Value{value.NewInt(10)}},
		{Strategy: Range, Column: 0, N: 3, Bounds: []value.Value{value.NewInt(20), value.NewInt(10)}},
	}
	for _, sc := range bad {
		if err := sc.Validate(s); err == nil {
			t.Errorf("Validate(%v/%d) should fail", sc.Strategy, sc.N)
		}
	}
}

func TestHashRouting(t *testing.T) {
	sc := Scheme{Strategy: Hash, Column: 0, N: 8}
	counts := make([]int, 8)
	for i := int64(0); i < 8000; i++ {
		f := sc.FragmentOf(value.Ints(i, 0))
		counts[f]++
	}
	for f, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("hash fragment %d holds %d of 8000; poor spread", f, c)
		}
	}
	// Routing is deterministic.
	if sc.FragmentOf(value.Ints(42, 0)) != sc.FragmentOf(value.Ints(42, 1)) {
		t.Error("hash routing must depend only on the key column")
	}
}

func TestRangeRouting(t *testing.T) {
	sc := Scheme{Strategy: Range, Column: 0, N: 3,
		Bounds: []value.Value{value.NewInt(10), value.NewInt(20)}}
	cases := map[int64]int{5: 0, 10: 0, 11: 1, 20: 1, 21: 2, 100: 2}
	for k, want := range cases {
		if got := sc.FragmentOf(value.Ints(k, 0)); got != want {
			t.Errorf("key %d routed to %d, want %d", k, got, want)
		}
	}
	// NULL routes to fragment 0.
	if sc.FragmentOf(value.NewTuple(value.Null, value.NewInt(0))) != 0 {
		t.Error("NULL should route to fragment 0")
	}
}

func TestRoundRobinRouting(t *testing.T) {
	sc := Scheme{Strategy: RoundRobin, N: 3}
	got := []int{}
	for i := 0; i < 6; i++ {
		got = append(got, sc.FragmentOf(value.Ints(0, 0)))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin sequence = %v", got)
		}
	}
}

func TestFragmentsForEq(t *testing.T) {
	hash := Scheme{Strategy: Hash, Column: 0, N: 4}
	v := value.NewInt(77)
	frags := hash.FragmentsForEq(v)
	if len(frags) != 1 {
		t.Fatalf("hash eq pruning = %v", frags)
	}
	if got := hash.FragmentOf(value.NewTuple(v, value.NewString("x"))); got != frags[0] {
		t.Errorf("pruned fragment %d but tuple routes to %d", frags[0], got)
	}
	if hash.FragmentsForEq(value.Null) != nil {
		t.Error("NULL eq should not prune (no tuple matches, caller decides)")
	}
	rr := Scheme{Strategy: RoundRobin, N: 4}
	if rr.FragmentsForEq(v) != nil {
		t.Error("round robin cannot prune")
	}
	rng := Scheme{Strategy: Range, Column: 0, N: 3, Bounds: EvenRangeBounds(0, 29, 3)}
	if frags := rng.FragmentsForEq(value.NewInt(15)); len(frags) != 1 || frags[0] != 1 {
		t.Errorf("range eq pruning = %v", frags)
	}
}

func TestFragmentsForRange(t *testing.T) {
	sc := Scheme{Strategy: Range, Column: 0, N: 4, Bounds: EvenRangeBounds(0, 39, 4)}
	// Bounds are 9, 19, 29: fragment 1 covers 10..19.
	frags := sc.FragmentsForRange(value.NewInt(12), value.NewInt(25))
	if len(frags) != 2 || frags[0] != 1 || frags[1] != 2 {
		t.Errorf("range [12,25] pruning = %v", frags)
	}
	// Unbounded below.
	frags = sc.FragmentsForRange(value.Null, value.NewInt(9))
	if len(frags) != 1 || frags[0] != 0 {
		t.Errorf("range (-inf,9] pruning = %v", frags)
	}
	// Non-range schemes cannot prune.
	hash := Scheme{Strategy: Hash, Column: 0, N: 4}
	if hash.FragmentsForRange(value.NewInt(1), value.NewInt(2)) != nil {
		t.Error("hash range pruning should be nil")
	}
}

func TestPartitionRoundTrip(t *testing.T) {
	r := value.NewRelation(schema())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		r.Append(value.NewTuple(value.NewInt(rng.Int63n(1000)), value.NewString("x")))
	}
	for _, sc := range []*Scheme{
		{Strategy: Hash, Column: 0, N: 7},
		{Strategy: Range, Column: 0, N: 4, Bounds: EvenRangeBounds(0, 999, 4)},
		{Strategy: RoundRobin, N: 5},
		{Strategy: Single, N: 1},
	} {
		frags := sc.Partition(r)
		if len(frags) != sc.N {
			t.Fatalf("%v: %d fragments", sc.Strategy, len(frags))
		}
		total := 0
		merged := value.NewRelation(r.Schema)
		for _, f := range frags {
			total += f.Len()
			merged.Tuples = append(merged.Tuples, f.Tuples...)
		}
		if total != r.Len() {
			t.Errorf("%v: partition lost tuples: %d of %d", sc.Strategy, total, r.Len())
		}
		if !merged.SameBag(r) {
			t.Errorf("%v: partition changed the multiset", sc.Strategy)
		}
	}
}

func TestPartitionRouterAgreement(t *testing.T) {
	// Every tuple in fragment i must route back to i (hash and range).
	r := value.NewRelation(schema())
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		r.Append(value.NewTuple(value.NewInt(rng.Int63n(100)), value.NewString("x")))
	}
	for _, sc := range []*Scheme{
		{Strategy: Hash, Column: 0, N: 5},
		{Strategy: Range, Column: 0, N: 5, Bounds: EvenRangeBounds(0, 99, 5)},
	} {
		frags := sc.Partition(r)
		for fi, f := range frags {
			for _, tp := range f.Tuples {
				if got := sc.FragmentOf(tp); got != fi {
					t.Fatalf("%v: tuple %v in fragment %d routes to %d", sc.Strategy, tp, fi, got)
				}
			}
		}
	}
}

func TestPartitionByHash(t *testing.T) {
	tuples := make([]value.Tuple, 100)
	for i := range tuples {
		tuples[i] = value.Ints(int64(i%10), int64(i))
	}
	parts := PartitionByHash(tuples, []int{0}, 4)
	if len(parts) != 4 {
		t.Fatalf("%d parts", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 100 {
		t.Errorf("lost tuples: %d", total)
	}
	// Same key always lands in the same part.
	for _, p := range parts {
		seen := map[int64]bool{}
		for _, tp := range p {
			seen[tp[0].Int()] = true
		}
		for k := range seen {
			for pi2, p2 := range parts {
				if &p2 == &p {
					continue
				}
				for _, tp2 := range p2 {
					if tp2[0].Int() == k && !containsKey(p, k) {
						t.Fatalf("key %d split across parts (%d)", k, pi2)
					}
				}
			}
		}
	}
}

func containsKey(part []value.Tuple, k int64) bool {
	for _, tp := range part {
		if tp[0].Int() == k {
			return true
		}
	}
	return false
}

func TestEvenRangeBounds(t *testing.T) {
	b := EvenRangeBounds(0, 99, 4)
	if len(b) != 3 {
		t.Fatalf("bounds = %v", b)
	}
	if b[0].Int() != 24 || b[1].Int() != 49 || b[2].Int() != 74 {
		t.Errorf("bounds = %v", b)
	}
	if EvenRangeBounds(0, 9, 1) != nil {
		t.Error("single fragment needs no bounds")
	}
}

func newMachine(t *testing.T, n int) *machine.Machine {
	t.Helper()
	m, err := machine.New(machine.Config{NumPEs: n})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCentralAllocatorBalances(t *testing.T) {
	m := newMachine(t, 16)
	weights := make([]int64, 32)
	for i := range weights {
		weights[i] = 1000
	}
	p := CentralAllocator{}.Place(weights, m)
	if len(p) != 32 {
		t.Fatalf("placement = %v", p)
	}
	imb := Imbalance(weights, p, 16)
	if imb > 1.01 {
		t.Errorf("central allocator imbalance = %.3f on uniform weights", imb)
	}
	// Central beats random on skewed weights, usually dramatically.
	skewed := make([]int64, 32)
	for i := range skewed {
		skewed[i] = int64(1 + i*i*100)
	}
	pc := CentralAllocator{}.Place(skewed, m)
	pr := RandomAllocator{Seed: 7}.Place(skewed, m)
	if Imbalance(skewed, pc, 16) > Imbalance(skewed, pr, 16) {
		t.Errorf("central %.3f worse than random %.3f",
			Imbalance(skewed, pc, 16), Imbalance(skewed, pr, 16))
	}
}

func TestCentralAllocatorAccountsExistingLoad(t *testing.T) {
	m := newMachine(t, 4)
	// Pre-load PE 0 and 1 heavily.
	if err := m.PE(0).Alloc(1 << 20); err != nil {
		t.Fatal(err)
	}
	if err := m.PE(1).Alloc(1 << 20); err != nil {
		t.Fatal(err)
	}
	p := CentralAllocator{}.Place([]int64{100, 100}, m)
	for _, pe := range p {
		if pe == 0 || pe == 1 {
			t.Errorf("allocator placed on pre-loaded PE %d", pe)
		}
	}
}

func TestCentralAllocatorAvoidsDiskPEs(t *testing.T) {
	m := newMachine(t, 16) // disks on 0 and 8
	p := CentralAllocator{AvoidDiskPEs: true}.Place(make([]int64, 14), m)
	for _, pe := range p {
		if pe == 0 || pe == 8 {
			t.Errorf("fragment placed on disk PE %d", pe)
		}
	}
}

func TestRandomAndRoundRobinAllocators(t *testing.T) {
	m := newMachine(t, 8)
	weights := make([]int64, 16)
	pr := RandomAllocator{Seed: 1}.Place(weights, m)
	pr2 := RandomAllocator{Seed: 1}.Place(weights, m)
	for i := range pr {
		if pr[i] != pr2[i] {
			t.Fatal("random allocator must be deterministic per seed")
		}
		if pr[i] < 0 || pr[i] >= 8 {
			t.Fatalf("placement out of range: %d", pr[i])
		}
	}
	rr := RoundRobinAllocator{Start: 3}.Place(weights, m)
	if rr[0] != 3 || rr[1] != 4 || rr[7] != 2 {
		t.Errorf("round robin placement = %v", rr)
	}
}

func TestImbalanceEdgeCases(t *testing.T) {
	if Imbalance(nil, nil, 4) != 1 {
		t.Error("empty imbalance should be 1")
	}
	if Imbalance([]int64{0, 0}, Placement{0, 1}, 2) != 1 {
		t.Error("zero-weight imbalance should be 1")
	}
	// All weight on one of two PEs: max/mean = 2.
	if got := Imbalance([]int64{100}, Placement{0}, 2); got != 2 {
		t.Errorf("single placement imbalance = %v", got)
	}
}
