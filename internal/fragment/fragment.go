// Package fragment implements relation fragmentation and the data
// allocation manager (paper §2.2). PRISMA's unit of distribution is the
// fragment: each One-Fragment Manager owns exactly one, and query
// parallelism comes from running over many fragments at once. The
// allocation manager places fragments onto processing elements "to allow
// for a proper balance between storage, processing, and communication"
// (§3.1) — feasible to do centrally because of the machine's
// high-bandwidth network (§3.2).
package fragment

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/machine"
	"repro/internal/value"
)

// Strategy is a horizontal fragmentation scheme.
type Strategy uint8

// Fragmentation strategies.
const (
	// Single keeps the relation in one fragment (no parallelism).
	Single Strategy = iota
	// Hash fragments by a hash of a key column: even spread, exact
	// routing for equality predicates.
	Hash
	// Range fragments by split points on a key column: routing for both
	// equality and range predicates, but skew-prone.
	Range
	// RoundRobin deals tuples out cyclically: perfectly even, but every
	// query touches every fragment.
	RoundRobin
)

func (s Strategy) String() string {
	switch s {
	case Single:
		return "single"
	case Hash:
		return "hash"
	case Range:
		return "range"
	case RoundRobin:
		return "round-robin"
	}
	return "?"
}

// ParseStrategy maps a keyword onto a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "single", "SINGLE":
		return Single, nil
	case "hash", "HASH":
		return Hash, nil
	case "range", "RANGE":
		return Range, nil
	case "roundrobin", "round-robin", "ROUNDROBIN", "ROUND-ROBIN", "ROUND ROBIN":
		return RoundRobin, nil
	default:
		return Single, fmt.Errorf("fragment: unknown strategy %q", s)
	}
}

// Scheme describes how one relation is fragmented. A Scheme is used in
// place (tables share one instance); it must not be copied once routing
// has started, because the round-robin cursor is part of its state.
type Scheme struct {
	Strategy Strategy
	// Column is the fragmentation key position (Hash and Range).
	Column int
	// N is the number of fragments (≥1).
	N int
	// Bounds are the N-1 ascending split points for Range: fragment i
	// holds keys in (Bounds[i-1], Bounds[i]].
	Bounds []value.Value

	// rr is the round-robin cursor. Atomic so concurrent sessions
	// routing inserts through one table's scheme never serialize on a
	// routing mutex.
	rr atomic.Int64
}

// Validate checks the scheme against a schema.
func (sc *Scheme) Validate(schema *value.Schema) error {
	if sc.N < 1 {
		return fmt.Errorf("fragment: need at least one fragment, got %d", sc.N)
	}
	switch sc.Strategy {
	case Single:
		if sc.N != 1 {
			return fmt.Errorf("fragment: single strategy needs exactly one fragment")
		}
	case Hash, Range:
		if sc.Column < 0 || sc.Column >= schema.Len() {
			return fmt.Errorf("fragment: key column %d out of range for %s", sc.Column, schema)
		}
	}
	if sc.Strategy == Range {
		if len(sc.Bounds) != sc.N-1 {
			return fmt.Errorf("fragment: range needs %d bounds, got %d", sc.N-1, len(sc.Bounds))
		}
		for i := 1; i < len(sc.Bounds); i++ {
			if value.Compare(sc.Bounds[i-1], sc.Bounds[i]) >= 0 {
				return fmt.Errorf("fragment: range bounds not ascending at %d", i)
			}
		}
	}
	return nil
}

// FragmentOf routes a tuple to its fragment index. RoundRobin advances
// an internal atomic cursor, so routing inserts through a single Scheme
// instance spreads them evenly — and concurrent routers never block
// each other.
func (sc *Scheme) FragmentOf(t value.Tuple) int {
	switch sc.Strategy {
	case Single:
		return 0
	case Hash:
		return int(value.Hash64(t[sc.Column]) % uint64(sc.N))
	case Range:
		v := t[sc.Column]
		// NULLs route to fragment 0.
		if v.IsNull() {
			return 0
		}
		// First bound >= v; fragment i covers (bounds[i-1], bounds[i]].
		i := sort.Search(len(sc.Bounds), func(i int) bool {
			return value.Compare(sc.Bounds[i], v) >= 0
		})
		return i
	case RoundRobin:
		return int((sc.rr.Add(1) - 1) % int64(sc.N))
	}
	return 0
}

// FragmentsForEq returns the fragments that can hold tuples whose key
// column equals v — fragment pruning for selections. Nil means all.
func (sc *Scheme) FragmentsForEq(v value.Value) []int {
	switch sc.Strategy {
	case Single:
		return []int{0}
	case Hash:
		if v.IsNull() {
			return nil
		}
		return []int{int(value.Hash64(v) % uint64(sc.N))}
	case Range:
		if v.IsNull() {
			return []int{0}
		}
		i := sort.Search(len(sc.Bounds), func(i int) bool {
			return value.Compare(sc.Bounds[i], v) >= 0
		})
		return []int{i}
	default:
		return nil
	}
}

// FragmentsForRange returns the fragments that can hold keys in [lo, hi]
// (either bound may be the zero Value for unbounded). Nil means all.
func (sc *Scheme) FragmentsForRange(lo, hi value.Value) []int {
	if sc.Strategy != Range {
		if sc.Strategy == Single {
			return []int{0}
		}
		return nil
	}
	first := 0
	if !lo.IsNull() {
		first = sort.Search(len(sc.Bounds), func(i int) bool {
			return value.Compare(sc.Bounds[i], lo) >= 0
		})
	}
	last := sc.N - 1
	if !hi.IsNull() {
		last = sort.Search(len(sc.Bounds), func(i int) bool {
			return value.Compare(sc.Bounds[i], hi) >= 0
		})
	}
	out := make([]int, 0, last-first+1)
	for i := first; i <= last && i < sc.N; i++ {
		out = append(out, i)
	}
	return out
}

// Partition splits a relation into N fragments per the scheme (used for
// initial loading and for repartitioning intermediate results).
func (sc *Scheme) Partition(r *value.Relation) []*value.Relation {
	out := make([]*value.Relation, sc.N)
	for i := range out {
		out[i] = value.NewRelation(r.Schema)
	}
	for _, t := range r.Tuples {
		out[sc.FragmentOf(t)].Append(t)
	}
	return out
}

// PartitionByHash splits tuples into n buckets by hashing the given
// columns — the repartitioning step of a distributed hash join.
func PartitionByHash(tuples []value.Tuple, cols []int, n int) [][]value.Tuple {
	out := make([][]value.Tuple, n)
	for _, t := range tuples {
		b := int(value.HashTuple(t, cols) % uint64(n))
		out[b] = append(out[b], t)
	}
	return out
}

// EvenRangeBounds computes N-1 integer split points covering [lo, hi]
// evenly — a helper for building range schemes over synthetic data.
func EvenRangeBounds(lo, hi int64, n int) []value.Value {
	if n <= 1 {
		return nil
	}
	out := make([]value.Value, n-1)
	span := hi - lo + 1
	for i := 1; i < n; i++ {
		out[i-1] = value.NewInt(lo + span*int64(i)/int64(n) - 1)
	}
	return out
}

// ---------- allocation manager ----------

// Placement is an assignment of fragment index to PE id.
type Placement []int

// Allocator places fragments onto processing elements.
type Allocator interface {
	// Name identifies the policy for reports.
	Name() string
	// Place returns a PE id for each fragment weight (estimated bytes).
	Place(weights []int64, m *machine.Machine) Placement
}

// CentralAllocator is the paper's central resource manager: it places
// each fragment on the PE with the least allocated memory, breaking ties
// by PE id. Disk PEs are avoided for base data when possible, keeping
// them free for logging.
type CentralAllocator struct {
	// AvoidDiskPEs steers fragments away from disk-attached PEs.
	AvoidDiskPEs bool
}

// Name implements Allocator.
func (c CentralAllocator) Name() string { return "central-least-loaded" }

// Place implements Allocator.
func (c CentralAllocator) Place(weights []int64, m *machine.Machine) Placement {
	type peLoad struct {
		id   int
		load int64
	}
	loads := make([]peLoad, 0, m.NumPEs())
	for _, pe := range m.PEs() {
		if c.AvoidDiskPEs && pe.HasDisk() && m.NumPEs() > len(m.DiskPEs()) {
			continue
		}
		loads = append(loads, peLoad{pe.ID(), pe.MemUsed()})
	}
	out := make(Placement, len(weights))
	for i, w := range weights {
		best := 0
		for j := 1; j < len(loads); j++ {
			if loads[j].load < loads[best].load ||
				(loads[j].load == loads[best].load && loads[j].id < loads[best].id) {
				best = j
			}
		}
		out[i] = loads[best].id
		loads[best].load += w
	}
	return out
}

// RandomAllocator scatters fragments pseudo-randomly (deterministic for a
// seed) — the baseline E10 compares central management against.
type RandomAllocator struct {
	Seed int64
}

// Name implements Allocator.
func (r RandomAllocator) Name() string { return "random" }

// Place implements Allocator.
func (r RandomAllocator) Place(weights []int64, m *machine.Machine) Placement {
	out := make(Placement, len(weights))
	state := uint64(r.Seed)*2862933555777941757 + 3037000493
	for i := range weights {
		state = state*2862933555777941757 + 3037000493
		out[i] = int(state % uint64(m.NumPEs()))
	}
	return out
}

// RoundRobinAllocator deals fragments out cyclically starting at Start.
type RoundRobinAllocator struct {
	Start int
}

// Name implements Allocator.
func (rr RoundRobinAllocator) Name() string { return "round-robin" }

// Place implements Allocator.
func (rr RoundRobinAllocator) Place(weights []int64, m *machine.Machine) Placement {
	out := make(Placement, len(weights))
	for i := range weights {
		out[i] = (rr.Start + i) % m.NumPEs()
	}
	return out
}

// Imbalance summarizes a placement: the ratio of the most-loaded PE's
// weight to the mean PE weight (1.0 = perfectly even).
func Imbalance(weights []int64, p Placement, numPEs int) float64 {
	if len(weights) == 0 || numPEs == 0 {
		return 1
	}
	per := make([]int64, numPEs)
	var total int64
	for i, w := range weights {
		per[p[i]] += w
		total += w
	}
	var max int64
	for _, w := range per {
		if w > max {
			max = w
		}
	}
	mean := float64(total) / float64(numPEs)
	if mean == 0 {
		return 1
	}
	return float64(max) / mean
}
