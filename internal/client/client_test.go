package client

import (
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/wire"
)

// fakeServer accepts one connection and runs fn over it.
func fakeServer(t *testing.T, fn func(net.Conn)) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fn(conn)
	}()
	return l.Addr().String()
}

func TestDialRejectsNonPrismaServer(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		conn.Write([]byte("HTTP/1.1 400 Bad Request\r\n\r\n"))
	})
	if _, err := Dial(addr); err == nil {
		t.Fatal("Dial accepted a non-PRISMA server")
	}
}

func TestDialSurfacesHandshakeError(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		wire.ReadFrame(conn, 0)
		wire.WriteFrame(conn, wire.TypeError, []byte("server: connection limit reached"))
	})
	_, err := Dial(addr)
	se, ok := err.(*ServerError)
	if !ok {
		t.Fatalf("err = %T %v, want *ServerError", err, err)
	}
	if !strings.Contains(se.Msg, "connection limit") {
		t.Fatalf("msg = %q", se.Msg)
	}
}

func TestTransportFailureIsSticky(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		// Valid handshake, then hang up before the first statement reply.
		wire.ReadFrame(conn, 0)
		ok := []byte{wire.Version, 0, 0}
		wire.WriteFrame(conn, wire.TypeHelloOK, ok)
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("SELECT 1"); err == nil {
		t.Fatal("Exec succeeded against a hung-up server")
	}
	// Every later call fails fast with the sticky error, no new I/O.
	_, err = c.Exec("SELECT 2")
	if err == nil {
		t.Fatal("Exec succeeded on a broken client")
	}
	if _, ok := err.(*ServerError); ok {
		t.Fatal("transport failure mislabeled as server error")
	}
}

// TestConcurrentCallersSerialize checks the mutex discipline: many
// goroutines sharing one Client must each get a coherent reply.
func TestConcurrentCallersSerialize(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		wire.ReadFrame(conn, 0)
		wire.WriteFrame(conn, wire.TypeHelloOK, []byte{wire.Version, 0, 0})
		for {
			typ, payload, err := wire.ReadFrame(conn, 0)
			if err != nil {
				return
			}
			if typ != wire.TypeExec {
				return
			}
			// Echo the statement back in the result message.
			res := &wire.Result{Msg: string(payload)}
			wire.WriteFrame(conn, wire.TypeResult, wire.EncodeResult(res))
		}
	}()
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				stmt := strings.Repeat("x", g+1)
				res, err := c.Exec(stmt)
				if err != nil {
					errc <- err
					return
				}
				if res.Msg != stmt {
					errc <- &ServerError{Msg: "interleaved reply: got " + res.Msg + " want " + stmt}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestDialRejectsEmptyHelloOK(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		wire.ReadFrame(conn, 0)
		wire.WriteFrame(conn, wire.TypeHelloOK, nil) // type byte only
	})
	if _, err := Dial(addr); err == nil {
		t.Fatal("Dial accepted an empty HelloOK")
	}
}
