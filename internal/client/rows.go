package client

import (
	"fmt"

	"repro/internal/value"
	"repro/internal/wire"
)

// Rows iterates a streamed result. The usual loop:
//
//	rows, err := c.QueryStream(sql)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	    var id int64
//	    var name string
//	    if err := rows.Scan(&id, &name); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// The first tuple is available as soon as the server ships its first
// chunk — time-to-first-tuple instead of time-to-last-tuple — and no
// frame ever has to hold the whole relation, so results larger than the
// frame limit stream through fine.
//
// While a Rows is open it owns the connection (the protocol is strictly
// sequential); other statements on the same Client block until the
// stream ends or Close is called. Close before exhaustion drains the
// remaining frames so the connection stays usable. A Rows is not safe
// for concurrent use.
type Rows struct {
	c        *Client
	head     *wire.ResultHead
	res      *wire.Result // non-relation outcome (DDL/DML via streaming)
	end      *wire.ResultEnd
	batch    []value.Tuple
	i        int
	cur      value.Tuple
	err      error
	done     bool // no more frames belong to this stream
	released bool // the connection mutex has been handed back
	closed   bool
}

// QueryStream executes one SQL statement with chunked result delivery.
// For a relation-producing statement the returned Rows yields tuples as
// chunks arrive; for anything else (DDL, DML, transaction control) the
// Rows is already exhausted and Result returns the outcome. A
// statement-level error arrives as a *ServerError, with the connection
// still usable.
func (c *Client) QueryStream(sql string) (*Rows, error) {
	c.mu.Lock()
	if err := c.brokenErr(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	fail := func(err error) error {
		c.setBroken(err)
		c.mu.Unlock()
		return err
	}
	payload := wire.EncodeExecStream(c.chunkRows, c.chunkBytes, sql)
	if err := wire.WriteFrame(c.bw, wire.TypeExecStream, payload); err != nil {
		return nil, fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, fail(err)
	}
	typ, rp, err := c.readFrameLocked()
	if err != nil {
		return nil, fail(err)
	}
	switch typ {
	case wire.TypeResultHead:
		h, err := wire.DecodeResultHead(rp)
		if err != nil {
			return nil, fail(err)
		}
		// The mutex stays held until the stream ends: the connection
		// belongs to this Rows.
		return &Rows{c: c, head: h}, nil
	case wire.TypeResult:
		res, err := wire.DecodeResult(rp)
		if err != nil {
			return nil, fail(err)
		}
		c.mu.Unlock()
		return &Rows{c: c, res: res, done: true, released: true}, nil
	case wire.TypeError:
		c.mu.Unlock()
		return nil, serverError(rp)
	default:
		return nil, fail(fmt.Errorf("client: unexpected frame type 0x%02x", typ))
	}
}

// Next advances to the next tuple, reading further chunks off the wire
// as needed. It returns false at end of stream or on error (check Err).
func (r *Rows) Next() bool {
	for {
		if r.i < len(r.batch) {
			r.cur = r.batch[r.i]
			r.i++
			return true
		}
		if r.done || r.closed {
			return false
		}
		if !r.readStreamFrame(true) {
			return false
		}
	}
}

// readStreamFrame consumes one frame of the open stream, keeping the
// batch when keep is set (Close drains with keep=false). It returns
// false once no more frames belong to the stream.
func (r *Rows) readStreamFrame(keep bool) bool {
	typ, payload, err := r.c.readFrameLocked()
	if err != nil {
		r.finishBroken(err)
		return false
	}
	switch typ {
	case wire.TypeRowChunk:
		tuples, err := wire.DecodeRowChunk(payload, r.head.Schema)
		if err != nil {
			r.finishBroken(err)
			return false
		}
		if keep {
			r.batch, r.i = tuples, 0
		}
		return true
	case wire.TypeResultEnd:
		end, err := wire.DecodeResultEnd(payload)
		if err != nil {
			r.finishBroken(err)
			return false
		}
		r.end = end
		r.finish(nil)
		return false
	case wire.TypeError:
		// Error-at-any-point: the server reported a statement-level
		// failure mid-stream; the connection stays usable.
		r.finish(serverError(payload))
		return false
	default:
		r.finishBroken(fmt.Errorf("client: unexpected frame type 0x%02x mid-stream", typ))
		return false
	}
}

// finish ends the stream and hands the connection back.
func (r *Rows) finish(err error) {
	if err != nil && r.err == nil {
		r.err = err
	}
	r.done = true
	if !r.released {
		r.released = true
		r.c.mu.Unlock()
	}
}

// finishBroken ends the stream after a transport or protocol failure
// that leaves the connection unusable.
func (r *Rows) finishBroken(err error) {
	r.c.setBroken(err)
	r.finish(err)
}

// Tuple returns the current tuple (valid after Next returned true). The
// tuple is owned by the Rows until the next call to Next.
func (r *Rows) Tuple() value.Tuple { return r.cur }

// Scan copies the current tuple into dests: *int, *int64, *float64,
// *string, *bool, *value.Value or *any, one per column.
func (r *Rows) Scan(dests ...any) error {
	if r.cur == nil {
		return fmt.Errorf("client: Scan called without a successful Next")
	}
	if len(dests) != len(r.cur) {
		return fmt.Errorf("client: Scan wants %d destinations, got %d", len(r.cur), len(dests))
	}
	for i, d := range dests {
		v := r.cur[i]
		switch p := d.(type) {
		case *value.Value:
			*p = v
		case *any:
			switch v.Kind() {
			case value.KindNull:
				*p = nil
			case value.KindBool:
				*p = v.Bool()
			case value.KindInt:
				*p = v.Int()
			case value.KindFloat:
				*p = v.Float()
			case value.KindString:
				*p = v.Str()
			}
		case *int64:
			if v.Kind() != value.KindInt {
				return fmt.Errorf("client: column %d is %s, not INT", i, v.Kind())
			}
			*p = v.Int()
		case *int:
			if v.Kind() != value.KindInt {
				return fmt.Errorf("client: column %d is %s, not INT", i, v.Kind())
			}
			*p = int(v.Int())
		case *float64:
			if v.Kind() != value.KindFloat && v.Kind() != value.KindInt {
				return fmt.Errorf("client: column %d is %s, not FLOAT", i, v.Kind())
			}
			*p = v.Float()
		case *string:
			if v.Kind() != value.KindString {
				return fmt.Errorf("client: column %d is %s, not VARCHAR", i, v.Kind())
			}
			*p = v.Str()
		case *bool:
			if v.Kind() != value.KindBool {
				return fmt.Errorf("client: column %d is %s, not BOOL", i, v.Kind())
			}
			*p = v.Bool()
		default:
			return fmt.Errorf("client: cannot Scan into %T (column %d)", d, i)
		}
	}
	return nil
}

// Err returns the error that terminated iteration, if any. Exhausting
// the stream or closing early is not an error.
func (r *Rows) Err() error { return r.err }

// Schema returns the result schema, or nil when the statement produced
// no relation.
func (r *Rows) Schema() *value.Schema {
	if r.head == nil {
		return nil
	}
	return r.head.Schema
}

// Plan returns the optimized logical plan, when known.
func (r *Rows) Plan() string {
	if r.head == nil {
		return ""
	}
	return r.head.Plan
}

// End returns the stream's closing frame (total rows, timings), or nil
// if the stream has not completed normally.
func (r *Rows) End() *wire.ResultEnd { return r.end }

// Result returns the materialized outcome when the statement produced
// no relation (DDL, DML, transaction control), else nil.
func (r *Rows) Result() *wire.Result { return r.res }

// Close ends iteration. If the stream is still open the remaining
// frames are drained so the connection stays usable for the next
// statement. Close is idempotent and safe after errors.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.batch, r.i = nil, 0
	for !r.done {
		r.readStreamFrame(false)
	}
	return nil
}
