// Package client is the Go client library for the PRISMA network
// front-end (cmd/prisma-serve). It speaks the internal/wire protocol:
// Dial performs the handshake, then Exec/Query/Datalog each send one
// statement frame and read one Result or Error frame back.
//
// A Client multiplexes nothing: one statement is in flight at a time,
// guarded by an internal mutex, so a Client is safe for concurrent use
// but concurrent callers serialize. For parallel load (as experiment E11
// generates), open one Client per goroutine — server sessions are cheap,
// mirroring the paper's per-query component instances.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/value"
	"repro/internal/wire"
)

// Options tunes a connection.
type Options struct {
	// DialTimeout bounds the TCP connect (default 5s).
	DialTimeout time.Duration
	// MaxFrame bounds response frames (default wire.DefaultMaxFrame).
	MaxFrame int
	// ChunkRows asks the server for at most this many tuples per
	// streamed chunk (0 lets the server pick its default).
	ChunkRows int
	// ChunkBytes asks the server for at most roughly this many payload
	// bytes per streamed chunk (default wire.DefaultChunkBytes). It is
	// clamped to half of MaxFrame so the server's chunks — which may
	// overshoot the budget by one tuple — always fit this connection's
	// own frame limit (a single tuple larger than MaxFrame still cannot
	// be received).
	ChunkBytes int
	// StatementTimeout arms per-statement deadlines on both ends: the
	// session's lock waits are bounded server-side (`SET
	// STATEMENT_TIMEOUT`, surfacing a retryable deadline error), and
	// every reply read gets a client-side deadline with generous
	// headroom — if the server stops answering entirely, the read fails
	// and the connection is marked broken instead of hanging forever.
	// 0 disables both.
	StatementTimeout time.Duration
	// Tenant and Secret are the credentials presented at handshake.
	// A server whose catalog holds users authenticates them (failure
	// is a coded, non-retryable auth error); a server without users
	// ignores them. Leaving Tenant empty sends a legacy Hello with no
	// credential trailer.
	Tenant string
	Secret string
}

// ServerError is a statement error reported by the server. The
// connection remains usable after one.
type ServerError struct {
	// Code is the server's wire.ErrCode* classification (ErrCodeGeneric
	// for servers predating coded errors).
	Code byte
	Msg  string
}

// Error implements error.
func (e *ServerError) Error() string { return e.Msg }

// Retryable reports whether the server promised the statement's
// transaction did not commit, so the client may safely re-run it.
func (e *ServerError) Retryable() bool { return wire.RetryableCode(e.Code) }

// serverError decodes an Error frame payload (coded or legacy).
func serverError(payload []byte) *ServerError {
	code, msg := wire.DecodeError(payload)
	return &ServerError{Code: code, Msg: msg}
}

// IsRetryable reports whether err is a server-classified transient
// transaction failure (deadlock victim, write conflict, clean abort,
// lock-wait deadline): the transaction did NOT commit and re-running it
// is safe. Transport failures and broken connections are NOT retryable
// — an in-flight COMMIT may have landed before the connection died.
func IsRetryable(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Retryable()
}

// Client is one connection to a PRISMA server.
type Client struct {
	mu          sync.Mutex // serializes statements; held across an open Rows stream
	conn        net.Conn
	br          *bufio.Reader
	bw          *bufio.Writer
	max         int
	chunkRows   int
	chunkBytes  int
	stmtTimeout time.Duration

	stateMu sync.Mutex // guards broken; never held while blocking on I/O
	broken  error      // sticky protocol/transport failure

	frameMax atomic.Int64 // largest frame observed (diagnostics, E13)

	// Role metadata from the HelloOK trailer (see wire.HelloExtra).
	role    byte
	epoch   uint64
	primary string
}

// Role reports the server's replication role at handshake time:
// wire.RolePrimary or wire.RoleReplica. Servers predating replication
// report primary.
func (c *Client) Role() byte { return c.role }

// Epoch reports the server's replication fencing epoch at handshake
// time (0 for servers predating replication).
func (c *Client) Epoch() uint64 { return c.epoch }

// PrimaryAddr reports the primary address a replica advertised for
// write redirects ("" when unknown or when the server is the primary).
func (c *Client) PrimaryAddr() string { return c.primary }

// Broken reports the sticky transport/protocol failure that has made
// this connection permanently unusable (nil while healthy). Statement
// errors — including retryable sheds and auth denials — do NOT break a
// connection.
func (c *Client) Broken() error { return c.brokenErr() }

// brokenErr reports the sticky failure, if any.
func (c *Client) brokenErr() error {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	return c.broken
}

// setBroken records the first sticky failure and closes the socket,
// unblocking any in-flight read. It takes only stateMu, so Close works
// even while a streamed result holds the statement mutex.
func (c *Client) setBroken(err error) {
	c.stateMu.Lock()
	first := c.broken == nil
	if first {
		c.broken = err
	}
	c.stateMu.Unlock()
	if first {
		c.conn.Close()
	}
}

// readFrameLocked reads one frame with c.mu held, recording its size
// as counted against the MaxFrame limit (type byte + payload). With a
// statement timeout armed the read carries a deadline of twice the
// timeout plus a second — the server-side lock-wait deadline answers
// first in any healthy exchange, so tripping this one means the server
// is gone and the connection is abandoned rather than waited on.
func (c *Client) readFrameLocked() (byte, []byte, error) {
	if c.stmtTimeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(2*c.stmtTimeout + time.Second))
		defer c.conn.SetReadDeadline(time.Time{})
	}
	typ, payload, err := wire.ReadFrame(c.br, c.max)
	if err == nil {
		c.noteFrame(len(payload) + 1)
	}
	return typ, payload, err
}

// noteFrame tracks the largest frame seen on this connection.
func (c *Client) noteFrame(n int) {
	for {
		cur := c.frameMax.Load()
		if int64(n) <= cur || c.frameMax.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// MaxFrameObserved reports the largest frame this connection has
// received, in the units the MaxFrame limit uses (type byte + payload)
// — with streaming it stays near the chunk budget instead of growing
// with the result.
func (c *Client) MaxFrameObserved() int { return int(c.frameMax.Load()) }

// Dial connects to a PRISMA server and performs the handshake.
func Dial(addr string, opts ...Options) (*Client, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = wire.DefaultMaxFrame
	}
	conn, err := net.DialTimeout("tcp", addr, o.DialTimeout)
	if err != nil {
		return nil, err
	}
	chunkBytes := o.ChunkBytes
	if chunkBytes <= 0 {
		chunkBytes = wire.DefaultChunkBytes
	}
	if lim := o.MaxFrame / 2; chunkBytes > lim {
		chunkBytes = max(lim, 1)
	}
	c := &Client{
		conn:       conn,
		br:         bufio.NewReader(conn),
		bw:         bufio.NewWriter(conn),
		max:        o.MaxFrame,
		chunkRows:  o.ChunkRows,
		chunkBytes: chunkBytes,
	}
	hello := wire.EncodeHello()
	if o.Tenant != "" {
		hello = wire.EncodeHelloCreds(o.Tenant, o.Secret)
	}
	if err := wire.WriteFrame(c.bw, wire.TypeHello, hello); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	typ, payload, err := wire.ReadFrame(c.br, c.max)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	switch typ {
	case wire.TypeHelloOK:
		if len(payload) < 1 {
			conn.Close()
			return nil, fmt.Errorf("client: empty HelloOK payload")
		}
		if int(payload[0]) != wire.Version {
			conn.Close()
			return nil, fmt.Errorf("client: server speaks protocol version %d (want %d)", payload[0], wire.Version)
		}
		if ex, err := wire.DecodeHelloOKExtra(payload); err == nil {
			c.role, c.epoch, c.primary = ex.Role, ex.Epoch, ex.Primary
		} else {
			c.role = wire.RolePrimary
		}
	case wire.TypeError:
		conn.Close()
		return nil, serverError(payload)
	default:
		conn.Close()
		return nil, fmt.Errorf("client: unexpected handshake frame type 0x%02x", typ)
	}
	if o.StatementTimeout > 0 {
		c.stmtTimeout = o.StatementTimeout
		if _, err := c.Exec(fmt.Sprintf("SET STATEMENT_TIMEOUT = %d", o.StatementTimeout.Milliseconds())); err != nil {
			conn.Close()
			return nil, fmt.Errorf("client: arming statement timeout: %w", err)
		}
	}
	return c, nil
}

// Close releases the connection, even while a streamed result is being
// read (the stream's pending read fails and its Rows is poisoned). The
// server aborts any open transaction and releases any locks a
// mid-stream cursor still held.
func (c *Client) Close() error {
	c.setBroken(errors.New("client: closed"))
	return nil
}

// roundTripRaw sends one frame and reads the reply frame, marking the
// connection broken on any transport failure. Callers interpret the
// reply type (and use breakConn for replies that violate the protocol).
func (c *Client) roundTripRaw(typ byte, payload []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.brokenErr(); err != nil {
		return 0, nil, err
	}
	fail := func(err error) (byte, []byte, error) {
		c.setBroken(err)
		return 0, nil, err
	}
	if err := wire.WriteFrame(c.bw, typ, payload); err != nil {
		return fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return fail(err)
	}
	rtyp, rpayload, err := c.readFrameLocked()
	if err != nil {
		return fail(err)
	}
	return rtyp, rpayload, nil
}

// breakConn marks the connection unusable after a protocol violation
// and returns the error for the caller to propagate.
func (c *Client) breakConn(err error) error {
	c.setBroken(err)
	return err
}

// roundTrip sends one statement frame and reads its Result reply.
func (c *Client) roundTrip(typ byte, payload []byte) (*wire.Result, error) {
	rtyp, rpayload, err := c.roundTripRaw(typ, payload)
	if err != nil {
		return nil, err
	}
	switch rtyp {
	case wire.TypeResult:
		res, err := wire.DecodeResult(rpayload)
		if err != nil {
			return nil, c.breakConn(err)
		}
		return res, nil
	case wire.TypeError:
		// A statement-level failure: the session (and any transaction
		// the server kept open) is still live.
		return nil, serverError(rpayload)
	default:
		return nil, c.breakConn(fmt.Errorf("client: unexpected frame type 0x%02x", rtyp))
	}
}

// Exec executes one SQL statement and returns its full result.
func (c *Client) Exec(sql string) (*wire.Result, error) {
	return c.roundTrip(wire.TypeExec, []byte(sql))
}

// Query executes a SELECT (or other relation-producing statement) and
// returns the relation. It materializes over the streaming protocol, so
// — unlike Exec — the result may exceed the connection's frame limit:
// no single frame ever holds more than one chunk.
func (c *Client) Query(sql string) (*value.Relation, error) {
	rows, err := c.QueryStream(sql)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	if rows.Schema() == nil {
		// Statements that materialize without a cursor (EXPLAIN) answer
		// with a plain Result frame carrying the relation.
		if res := rows.Result(); res != nil && res.Rel != nil {
			return res.Rel, nil
		}
		return nil, fmt.Errorf("client: statement produced no relation")
	}
	rel := value.NewRelation(rows.Schema())
	for rows.Next() {
		rel.Tuples = append(rel.Tuples, rows.Tuple())
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return rel, nil
}

// Datalog answers a PRISMAlog query such as "ancestor('ann', X)".
func (c *Client) Datalog(query string) (*value.Relation, error) {
	res, err := c.roundTrip(wire.TypeDatalog, []byte(query))
	if err != nil {
		return nil, err
	}
	if res.Rel == nil {
		return nil, fmt.Errorf("client: datalog query produced no relation")
	}
	return res.Rel, nil
}

// Begin opens an explicit transaction on the server session.
func (c *Client) Begin() error {
	_, err := c.Exec("BEGIN")
	return err
}

// Commit commits the open transaction.
func (c *Client) Commit() error {
	_, err := c.Exec("COMMIT")
	return err
}

// Rollback aborts the open transaction.
func (c *Client) Rollback() error {
	_, err := c.Exec("ROLLBACK")
	return err
}
