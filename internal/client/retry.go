package client

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// RetryPolicy drives Retry: exponential backoff with seeded jitter
// around server-classified transient transaction failures. The zero
// value is a sensible default (5 attempts, 1ms..100ms backoff, ±50%
// jitter, IsRetryable classification).
type RetryPolicy struct {
	// MaxAttempts bounds total tries, including the first (default 5).
	MaxAttempts int
	// BaseBackoff is the sleep before the second attempt (default 1ms);
	// it doubles per retry up to MaxBackoff (default 100ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter spreads each sleep uniformly within ±Jitter of itself
	// (default 0.5), so a herd of aborted transactions doesn't re-collide
	// in lockstep. Negative disables jitter.
	Jitter float64
	// Seed makes the jitter sequence deterministic for tests; 0 (the
	// default) derives a distinct seed per Do call, so concurrent
	// zero-value clients spread out instead of replaying the identical
	// schedule and re-colliding in lockstep.
	Seed int64
	// Classify decides whether an error is worth another attempt
	// (default IsRetryable). Transport errors must stay non-retryable
	// unless the caller knows the work is idempotent: a connection that
	// died during COMMIT may have committed.
	Classify func(error) bool

	// sleep overrides time.Sleep in tests; nil uses the real clock.
	sleep func(time.Duration)
}

// retrySeq decorrelates default jitter seeds: each Do call under
// Seed==0 draws a fresh sequence number, mixed with the process start
// time so two processes started back to back differ too.
var (
	retrySeq  atomic.Int64
	retryBoot = time.Now().UnixNano()
)

// Retry runs fn under the zero-value RetryPolicy.
func Retry(fn func() error) error {
	return RetryPolicy{}.Do(fn)
}

// Do runs fn until it succeeds, fails non-retryably, or the attempt
// budget is spent (the last error is returned wrapped, still matching
// errors.As/Is probes).
func (p RetryPolicy) Do(fn func() error) error {
	return p.DoContext(context.Background(), fn)
}

// DoContext is Do with cancellation: backoff sleeps are cut short when
// ctx is done, and no further attempt starts after cancellation — a
// caller whose statement deadline has already passed is not forced to
// sit through the rest of the backoff ladder. The context error is
// returned wrapped around the last attempt's error (when there was
// one), so errors.Is(err, context.DeadlineExceeded) works.
func (p RetryPolicy) DoContext(ctx context.Context, fn func() error) error {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = 5
	}
	base := p.BaseBackoff
	if base <= 0 {
		base = time.Millisecond
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = 100 * time.Millisecond
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = 0.5
	} else if jitter < 0 {
		jitter = 0
	}
	classify := p.Classify
	if classify == nil {
		classify = IsRetryable
	}
	seed := p.Seed
	if seed == 0 {
		seed = retryBoot ^ (retrySeq.Add(1) * 0x9e3779b97f4a7c)
	}
	rng := rand.New(rand.NewSource(seed))
	backoff := base
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return fmt.Errorf("client: %w after %d attempts: %v", cerr, attempt-1, err)
			}
			return cerr
		}
		if err = fn(); err == nil || !classify(err) {
			return err
		}
		if attempt >= attempts {
			return fmt.Errorf("client: giving up after %d attempts: %w", attempts, err)
		}
		sleep := backoff
		if jitter > 0 {
			sleep = time.Duration(float64(backoff) * (1 + jitter*(2*rng.Float64()-1)))
		}
		if p.sleep != nil {
			p.sleep(sleep)
		} else if done := ctx.Done(); done != nil {
			t := time.NewTimer(sleep)
			select {
			case <-done:
				t.Stop()
				return fmt.Errorf("client: %w after %d attempts: %v", ctx.Err(), attempt, err)
			case <-t.C:
			}
		} else {
			time.Sleep(sleep)
		}
		if backoff *= 2; backoff > maxB {
			backoff = maxB
		}
	}
}
