package client

import (
	"fmt"
	"math/rand"
	"time"
)

// RetryPolicy drives Retry: exponential backoff with seeded jitter
// around server-classified transient transaction failures. The zero
// value is a sensible default (5 attempts, 1ms..100ms backoff, ±50%
// jitter, IsRetryable classification).
type RetryPolicy struct {
	// MaxAttempts bounds total tries, including the first (default 5).
	MaxAttempts int
	// BaseBackoff is the sleep before the second attempt (default 1ms);
	// it doubles per retry up to MaxBackoff (default 100ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter spreads each sleep uniformly within ±Jitter of itself
	// (default 0.5), so a herd of aborted transactions doesn't re-collide
	// in lockstep. Negative disables jitter.
	Jitter float64
	// Seed makes the jitter sequence deterministic; 0 picks a fixed
	// seed, so identical runs replay identical schedules.
	Seed int64
	// Classify decides whether an error is worth another attempt
	// (default IsRetryable). Transport errors must stay non-retryable
	// unless the caller knows the work is idempotent: a connection that
	// died during COMMIT may have committed.
	Classify func(error) bool
}

// Retry runs fn under the zero-value RetryPolicy.
func Retry(fn func() error) error {
	return RetryPolicy{}.Do(fn)
}

// Do runs fn until it succeeds, fails non-retryably, or the attempt
// budget is spent (the last error is returned wrapped, still matching
// errors.As/Is probes).
func (p RetryPolicy) Do(fn func() error) error {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = 5
	}
	base := p.BaseBackoff
	if base <= 0 {
		base = time.Millisecond
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = 100 * time.Millisecond
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = 0.5
	} else if jitter < 0 {
		jitter = 0
	}
	classify := p.Classify
	if classify == nil {
		classify = IsRetryable
	}
	seed := p.Seed
	if seed == 0 {
		seed = 88 // fixed: EDBT'88 — deterministic by default
	}
	rng := rand.New(rand.NewSource(seed))
	backoff := base
	var err error
	for attempt := 1; ; attempt++ {
		if err = fn(); err == nil || !classify(err) {
			return err
		}
		if attempt >= attempts {
			return fmt.Errorf("client: giving up after %d attempts: %w", attempts, err)
		}
		sleep := backoff
		if jitter > 0 {
			sleep = time.Duration(float64(backoff) * (1 + jitter*(2*rng.Float64()-1)))
		}
		time.Sleep(sleep)
		if backoff *= 2; backoff > maxB {
			backoff = maxB
		}
	}
}
