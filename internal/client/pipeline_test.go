package client

import (
	"net"
	"strings"
	"testing"

	"repro/internal/wire"
)

// pipelineFake runs a handshake then answers n Exec/BindExec/Batch
// statements with empty Results.
func pipelineFake(t *testing.T) string {
	return fakeServer(t, func(conn net.Conn) {
		wire.ReadFrame(conn, 0)
		var ok []byte
		ok = append(ok, wire.Version, 0, 0)
		wire.WriteFrame(conn, wire.TypeHelloOK, ok)
		for {
			typ, payload, err := wire.ReadFrame(conn, 0)
			if err != nil {
				return
			}
			n := 1
			if typ == wire.TypeBatch {
				stmts, err := wire.DecodeBatch(payload)
				if err != nil {
					return
				}
				n = len(stmts)
			}
			for i := 0; i < n; i++ {
				wire.WriteFrame(conn, wire.TypeResult, wire.EncodeResult(&wire.Result{Msg: "ok"}))
			}
		}
	})
}

func TestPipelineQueueingErrorReported(t *testing.T) {
	c, err := Dial(pipelineFake(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p := c.Pipeline()
	p.Exec(`SELECT 1`)
	p.ExecPrepared(&Stmt{c: c, id: 1}, struct{}{}) // unbindable argument
	if _, err := p.Run(); err == nil || !strings.Contains(err.Error(), "cannot bind") {
		t.Fatalf("Run error = %v, want bind failure", err)
	}
	// The failed Run cleared the pipeline; it is usable again.
	p.Exec(`SELECT 1`)
	results, err := p.Run()
	if err != nil || len(results) != 1 || results[0].Err != nil {
		t.Fatalf("pipeline after queueing error: %v %+v", err, results)
	}
}

func TestEmptyPipelineAndBatch(t *testing.T) {
	c, err := Dial(pipelineFake(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if results, err := c.Pipeline().Run(); err != nil || results != nil {
		t.Fatalf("empty pipeline: %v %v", err, results)
	}
	if results, err := c.SendBatch(); err != nil || results != nil {
		t.Fatalf("empty batch: %v %v", err, results)
	}
	st := &Stmt{c: c, id: 9}
	if results, err := st.ExecBatch(); err != nil || results != nil {
		t.Fatalf("empty ExecBatch: %v %v", err, results)
	}
}

func TestPipelineRepliesCounted(t *testing.T) {
	c, err := Dial(pipelineFake(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p := c.Pipeline()
	for i := 0; i < 10; i++ {
		p.Exec(`SELECT 1`)
	}
	results, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Fatalf("results = %d, want 10", len(results))
	}
	for i, r := range results {
		if r.Err != nil || r.Res == nil || r.Res.Msg != "ok" {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
}
