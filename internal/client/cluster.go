package client

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/value"
	"repro/internal/wire"
)

// Cluster is a role-aware connection set over a replicated deployment:
// writes route to the primary, reads round-robin across replicas (and
// fall back to the primary when none are up). Roles are learned from
// each endpoint's handshake; a write answered with a redirect (the
// endpoint demoted, or a replica was promoted under us) or a broken
// primary connection triggers a re-probe of every endpoint and a
// bounded retry, so a failover is absorbed without surfacing an error
// for retryable statements.
//
// Like Client, a Cluster serializes concurrent callers per underlying
// connection. For parallel load open one Cluster per goroutine.
type Cluster struct {
	addrs []string
	opts  Options

	mu    sync.Mutex
	conns map[string]*Client // live connections by address

	rr atomic.Uint64 // read round-robin cursor
}

// DialCluster connects to a replicated deployment. Every address is
// probed up front so roles are known; it succeeds as long as at least
// one endpoint answers.
func DialCluster(addrs []string, opts ...Options) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("client: DialCluster needs at least one address")
	}
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	cl := &Cluster{
		addrs: append([]string(nil), addrs...),
		opts:  o,
		conns: map[string]*Client{},
	}
	var lastErr error
	live := 0
	for _, addr := range cl.addrs {
		c, err := Dial(addr, cl.opts)
		if err != nil {
			lastErr = err
			continue
		}
		cl.conns[addr] = c
		live++
	}
	if live == 0 {
		return nil, fmt.Errorf("client: no cluster endpoint reachable: %w", lastErr)
	}
	return cl, nil
}

// Close releases every connection.
func (cl *Cluster) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for _, c := range cl.conns {
		c.Close()
	}
	cl.conns = map[string]*Client{}
	return nil
}

// conn returns the live connection to addr, dialing if needed.
func (cl *Cluster) conn(addr string) (*Client, error) {
	cl.mu.Lock()
	c := cl.conns[addr]
	cl.mu.Unlock()
	if c != nil && c.brokenErr() == nil {
		return c, nil
	}
	fresh, err := Dial(addr, cl.opts)
	if err != nil {
		return nil, err
	}
	cl.mu.Lock()
	if old := cl.conns[addr]; old != nil && old != c {
		// Raced another redial; keep the winner.
		fresh.Close()
		fresh = old
	} else {
		if c != nil {
			c.Close()
		}
		cl.conns[addr] = fresh
	}
	cl.mu.Unlock()
	return fresh, nil
}

// drop forgets a broken connection so the next use redials.
func (cl *Cluster) drop(addr string, c *Client) {
	c.Close()
	cl.mu.Lock()
	if cl.conns[addr] == c {
		delete(cl.conns, addr)
	}
	cl.mu.Unlock()
}

// primary returns a connection to the current primary, probing every
// endpoint's handshake role as needed.
func (cl *Cluster) primary() (string, *Client, error) {
	var lastErr error
	for _, addr := range cl.addrs {
		c, err := cl.conn(addr)
		if err != nil {
			lastErr = err
			continue
		}
		if c.Role() == wire.RolePrimary {
			return addr, c, nil
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("client: no primary among %v", cl.addrs)
	}
	return "", nil, lastErr
}

// reprobe forgets every connection's learned role by redialing it on
// next use — the failover recovery path.
func (cl *Cluster) reprobe() {
	cl.mu.Lock()
	conns := cl.conns
	cl.conns = map[string]*Client{}
	cl.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// readEndpoint picks the next read connection: replicas round-robin,
// the primary serves when no replica is reachable. The rotation is
// over the live replica set, not the address list — picking the first
// replica at-or-after a rotating address index would skew load onto
// whichever replica follows the primary in the list.
func (cl *Cluster) readEndpoint() (string, *Client, error) {
	var lastErr error
	type cand struct {
		addr string
		c    *Client
	}
	var replicas, any []cand
	for _, addr := range cl.addrs {
		c, err := cl.conn(addr)
		if err != nil {
			lastErr = err
			continue
		}
		any = append(any, cand{addr, c})
		if c.Role() == wire.RoleReplica {
			replicas = append(replicas, cand{addr, c})
		}
	}
	pool := replicas
	if len(pool) == 0 {
		pool = any
	}
	if len(pool) == 0 {
		if lastErr == nil {
			lastErr = fmt.Errorf("client: no cluster endpoint reachable")
		}
		return "", nil, lastErr
	}
	pick := pool[int(cl.rr.Add(1)-1)%len(pool)]
	return pick.addr, pick.c, nil
}

// isRedirect reports a write refused by a replica (stale role).
func isRedirect(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Code == wire.ErrCodeRedirect
}

// isOverloaded reports a statement shed by an endpoint's admission
// control (or refused at its connection limit): the statement did not
// run, so another endpoint may serve it immediately.
func isOverloaded(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Code == wire.ErrCodeOverloaded
}

// Exec executes one statement on the primary. A redirect or a broken
// primary connection re-probes roles and retries (bounded), absorbing
// a failover.
func (cl *Cluster) Exec(sql string) (*wire.Result, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		addr, c, err := cl.primary()
		if err != nil {
			lastErr = err
			cl.reprobe()
			continue
		}
		res, err := c.Exec(sql)
		if err == nil {
			return res, nil
		}
		lastErr = err
		switch {
		case isRedirect(err):
			// The endpoint we believed primary is a replica now.
			cl.reprobe()
		case c.brokenErr() != nil:
			// Transport failure: the primary may be gone. Re-route only
			// statements that are safe to re-run (no in-flight COMMIT
			// ambiguity): the caller's retry policy owns the rest.
			cl.drop(addr, c)
			return nil, err
		default:
			return nil, err
		}
	}
	return nil, lastErr
}

// Query executes a read on a replica (round-robin), falling back to
// the primary when none is reachable. Snapshot reads on a replica are
// watermark-bounded: they observe every commit the primary has shipped
// through the replica's replication watermark.
func (cl *Cluster) Query(sql string) (*value.Relation, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		addr, c, err := cl.readEndpoint()
		if err != nil {
			lastErr = err
			cl.reprobe()
			continue
		}
		rel, err := c.Query(sql)
		if err == nil {
			return rel, nil
		}
		lastErr = err
		switch {
		case c.brokenErr() != nil:
			cl.drop(addr, c)
			continue // reads are side-effect free: any endpoint will do
		case isOverloaded(err):
			// Shed before executing: a sibling replica may have spare
			// capacity, so rotate to the next endpoint before asking the
			// caller to back off. The connection itself stays healthy.
			continue
		}
		return nil, err
	}
	return nil, lastErr
}
