package client

import (
	"bytes"
	"fmt"

	"repro/internal/wire"
)

// PipeResult is one pipelined statement's outcome: a Result or a
// statement-level error. Transport failures are not per-statement —
// they surface as the error return of Run/SendBatch/ExecBatch and
// break the connection.
type PipeResult struct {
	Res *wire.Result
	Err error
}

// Pipeline queues statements client-side and ships them without
// awaiting intermediate replies: Run writes every queued frame in one
// syscall, then reads all replies in order. One statement's error
// fails that statement only (its PipeResult carries it); the rest of
// the pipeline still executes and the connection stays usable.
//
// Transaction semantics mid-pipeline: a statement error does not
// implicitly roll back an open transaction. If an error *aborts* the
// transaction (a deadlock victim), every later statement in that
// transaction answers "transaction is aborted; ROLLBACK to continue"
// until a ROLLBACK arrives — which may itself be queued later in the
// same pipeline, since ROLLBACK on an aborted transaction succeeds.
//
// A Pipeline is not safe for concurrent use. After Run it is empty and
// may be reused.
type Pipeline struct {
	c   *Client
	buf bytes.Buffer // queued frames, back to back
	n   int
	err error // first queueing failure, reported by Run
}

// Pipeline starts an empty statement pipeline on this connection.
func (c *Client) Pipeline() *Pipeline { return &Pipeline{c: c} }

// Exec queues one SQL statement.
func (p *Pipeline) Exec(sql string) {
	wire.WriteFrame(&p.buf, wire.TypeExec, []byte(sql))
	p.n++
}

// ExecPrepared queues one execution of a prepared statement. Argument
// conversion failures are reported by Run.
func (p *Pipeline) ExecPrepared(s *Stmt, args ...any) {
	vals, err := toValues(args)
	if err == nil && len(vals) > wire.MaxBindArgs {
		err = fmt.Errorf("client: %d arguments exceed the %d parameter limit", len(args), wire.MaxBindArgs)
	}
	if err != nil {
		if p.err == nil {
			p.err = err
		}
		return
	}
	wire.WriteFrame(&p.buf, wire.TypeBindExec, wire.EncodeBindExec(s.id, vals))
	p.n++
}

// Len reports how many statements are queued.
func (p *Pipeline) Len() int { return p.n }

// Run ships the queued statements and collects one PipeResult per
// statement, in order. The returned error is nil unless queueing or
// the transport failed; per-statement errors live in the results. On
// return the pipeline is empty and reusable.
func (p *Pipeline) Run() ([]PipeResult, error) {
	if p.err != nil {
		err := p.err
		p.buf.Reset()
		p.n, p.err = 0, nil
		return nil, err
	}
	n := p.n
	frames := p.buf.Bytes()
	results, err := p.c.sendAndCollect(frames, n)
	p.buf.Reset()
	p.n = 0
	return results, err
}

// SendBatch executes the statements as one Batch frame — the
// lowest-overhead form of pipelining: one frame carries every
// statement, and the replies (one per statement, in order) are read
// back together. Error semantics match Pipeline.
func (c *Client) SendBatch(sqls ...string) ([]PipeResult, error) {
	if len(sqls) == 0 {
		return nil, nil
	}
	stmts := make([]wire.BatchStmt, len(sqls))
	for i, sql := range sqls {
		stmts[i] = wire.BatchStmt{SQL: sql}
	}
	var buf bytes.Buffer
	wire.WriteFrame(&buf, wire.TypeBatch, wire.EncodeBatch(stmts))
	return c.sendAndCollect(buf.Bytes(), len(sqls))
}

// ExecBatch executes the prepared statement once per argument set, all
// in one Batch frame, returning one PipeResult per set in order.
func (s *Stmt) ExecBatch(argSets ...[]any) ([]PipeResult, error) {
	if len(argSets) == 0 {
		return nil, nil
	}
	stmts := make([]wire.BatchStmt, len(argSets))
	for i, args := range argSets {
		vals, err := toValues(args)
		if err != nil {
			return nil, fmt.Errorf("client: argument set %d: %w", i, err)
		}
		if len(vals) > wire.MaxBindArgs {
			return nil, fmt.Errorf("client: argument set %d: %d arguments exceed the %d parameter limit",
				i, len(vals), wire.MaxBindArgs)
		}
		stmts[i] = wire.BatchStmt{Bind: true, ID: s.id, Args: vals}
	}
	var buf bytes.Buffer
	wire.WriteFrame(&buf, wire.TypeBatch, wire.EncodeBatch(stmts))
	return s.c.sendAndCollect(buf.Bytes(), len(argSets))
}

// sendAndCollect writes pre-framed bytes and reads n Result/Error
// replies, holding the statement mutex across the whole exchange. The
// write happens on its own goroutine so replies are drained while
// later frames are still leaving: a window large enough to overflow
// the kernel buffers on both sides would otherwise deadlock (server
// blocked writing replies nobody reads, client blocked writing frames
// nobody reads).
func (c *Client) sendAndCollect(frames []byte, n int) ([]PipeResult, error) {
	if n == 0 {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.brokenErr(); err != nil {
		return nil, err
	}
	fail := func(err error) ([]PipeResult, error) {
		c.setBroken(err)
		return nil, err
	}
	wrote := make(chan struct{})
	go func() {
		defer close(wrote)
		_, err := c.bw.Write(frames)
		if err == nil {
			err = c.bw.Flush()
		}
		if err != nil {
			// Marking the connection broken closes the socket, so the
			// reads below fail instead of hanging on frames never sent.
			c.setBroken(err)
		}
	}()
	defer func() { <-wrote }()
	results := make([]PipeResult, 0, n)
	for i := 0; i < n; i++ {
		typ, payload, err := c.readFrameLocked()
		if err != nil {
			return fail(err)
		}
		switch typ {
		case wire.TypeResult:
			res, err := wire.DecodeResult(payload)
			if err != nil {
				return nil, c.breakConn(err)
			}
			results = append(results, PipeResult{Res: res})
		case wire.TypeError:
			results = append(results, PipeResult{Err: serverError(payload)})
		default:
			return nil, c.breakConn(fmt.Errorf("client: unexpected frame type 0x%02x in pipeline reply %d", typ, i))
		}
	}
	return results, nil
}
