package client

import (
	"fmt"

	"repro/internal/value"
	"repro/internal/wire"
)

// Stmt is a server-side prepared statement: parsed and planned once at
// Prepare, executed many times with bound parameter values. A Stmt is
// tied to the connection that prepared it; like the Client itself it is
// safe for concurrent use but callers serialize.
type Stmt struct {
	c       *Client
	id      uint32
	nParams int
}

// Prepare sends one SQL statement with '?' or '$n' placeholders to be
// parsed and planned server-side.
func (c *Client) Prepare(sql string) (*Stmt, error) {
	typ, payload, err := c.roundTripRaw(wire.TypePrepare, []byte(sql))
	if err != nil {
		return nil, err
	}
	switch typ {
	case wire.TypePrepareOK:
		id, nparams, err := wire.DecodePrepareOK(payload)
		if err != nil {
			return nil, c.breakConn(err)
		}
		return &Stmt{c: c, id: id, nParams: nparams}, nil
	case wire.TypeError:
		return nil, serverError(payload)
	default:
		return nil, c.breakConn(fmt.Errorf("client: unexpected frame type 0x%02x", typ))
	}
}

// NumParams returns the statement's parameter arity.
func (s *Stmt) NumParams() int { return s.nParams }

// Exec runs the statement with the given parameter values. Arguments
// may be value.Value or plain Go scalars (int variants, float32/64,
// string, bool, nil).
func (s *Stmt) Exec(args ...any) (*wire.Result, error) {
	if len(args) > wire.MaxBindArgs {
		// The wire arity field is a uint16; encoding more would produce
		// a malformed frame the server must treat as a protocol error.
		return nil, fmt.Errorf("client: %d arguments exceed the %d parameter limit", len(args), wire.MaxBindArgs)
	}
	vals, err := toValues(args)
	if err != nil {
		return nil, err
	}
	return s.c.roundTrip(wire.TypeBindExec, wire.EncodeBindExec(s.id, vals))
}

// Query runs the statement and returns its relation.
func (s *Stmt) Query(args ...any) (*value.Relation, error) {
	res, err := s.Exec(args...)
	if err != nil {
		return nil, err
	}
	if res.Rel == nil {
		return nil, fmt.Errorf("client: statement produced no relation")
	}
	return res.Rel, nil
}

// Close discards the server-side statement. The connection stays
// usable; executing a closed Stmt yields a statement error.
func (s *Stmt) Close() error {
	_, err := s.c.roundTrip(wire.TypeClosePrepared, wire.EncodeClosePrepared(s.id))
	return err
}

// toValues converts Go scalars to engine values.
func toValues(args []any) ([]value.Value, error) {
	out := make([]value.Value, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case nil:
			out[i] = value.Null
		case value.Value:
			out[i] = v
		case bool:
			out[i] = value.NewBool(v)
		case int:
			out[i] = value.NewInt(int64(v))
		case int32:
			out[i] = value.NewInt(int64(v))
		case int64:
			out[i] = value.NewInt(v)
		case float32:
			out[i] = value.NewFloat(float64(v))
		case float64:
			out[i] = value.NewFloat(v)
		case string:
			out[i] = value.NewString(v)
		default:
			return nil, fmt.Errorf("client: cannot bind %T as parameter %d", a, i+1)
		}
	}
	return out, nil
}
