package client

import (
	"errors"
	"testing"
	"time"

	"repro/internal/wire"
)

func retryableErr() error {
	return &ServerError{Code: wire.ErrCodeRetryable, Msg: "txn: aborted (retry transaction)"}
}

func TestIsRetryable(t *testing.T) {
	if !IsRetryable(retryableErr()) {
		t.Error("retryable-coded ServerError must be retryable")
	}
	if !IsRetryable(&ServerError{Code: wire.ErrCodeDeadline, Msg: "timeout"}) {
		t.Error("deadline-coded ServerError must be retryable")
	}
	if IsRetryable(&ServerError{Msg: "table does not exist"}) {
		t.Error("generic ServerError must not be retryable")
	}
	if IsRetryable(errors.New("connection reset")) {
		t.Error("transport errors must not be retryable")
	}
	if IsRetryable(nil) {
		t.Error("nil is not retryable")
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := RetryPolicy{BaseBackoff: time.Microsecond}.Do(func() error {
		calls++
		if calls < 3 {
			return retryableErr()
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil/3", err, calls)
	}
}

func TestRetryStopsOnNonRetryable(t *testing.T) {
	calls := 0
	fatal := &ServerError{Msg: "syntax error"}
	err := RetryPolicy{BaseBackoff: time.Microsecond}.Do(func() error {
		calls++
		return fatal
	})
	if !errors.Is(err, fatal) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want immediate give-up", err, calls)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	calls := 0
	err := RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Microsecond}.Do(func() error {
		calls++
		return retryableErr()
	})
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
	// The wrapped error still answers errors.As probes.
	var se *ServerError
	if !errors.As(err, &se) || !se.Retryable() {
		t.Fatalf("exhausted error lost its cause: %v", err)
	}
}

func TestRetryCustomClassify(t *testing.T) {
	calls := 0
	sentinel := errors.New("flaky")
	err := RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: time.Microsecond,
		Classify:    func(err error) bool { return errors.Is(err, sentinel) },
	}.Do(func() error {
		calls++
		if calls == 1 {
			return sentinel
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}
