package client

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

func retryableErr() error {
	return &ServerError{Code: wire.ErrCodeRetryable, Msg: "txn: aborted (retry transaction)"}
}

func TestIsRetryable(t *testing.T) {
	if !IsRetryable(retryableErr()) {
		t.Error("retryable-coded ServerError must be retryable")
	}
	if !IsRetryable(&ServerError{Code: wire.ErrCodeDeadline, Msg: "timeout"}) {
		t.Error("deadline-coded ServerError must be retryable")
	}
	if IsRetryable(&ServerError{Msg: "table does not exist"}) {
		t.Error("generic ServerError must not be retryable")
	}
	if IsRetryable(errors.New("connection reset")) {
		t.Error("transport errors must not be retryable")
	}
	if IsRetryable(nil) {
		t.Error("nil is not retryable")
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := RetryPolicy{BaseBackoff: time.Microsecond}.Do(func() error {
		calls++
		if calls < 3 {
			return retryableErr()
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil/3", err, calls)
	}
}

func TestRetryStopsOnNonRetryable(t *testing.T) {
	calls := 0
	fatal := &ServerError{Msg: "syntax error"}
	err := RetryPolicy{BaseBackoff: time.Microsecond}.Do(func() error {
		calls++
		return fatal
	})
	if !errors.Is(err, fatal) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want immediate give-up", err, calls)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	calls := 0
	err := RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Microsecond}.Do(func() error {
		calls++
		return retryableErr()
	})
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
	// The wrapped error still answers errors.As probes.
	var se *ServerError
	if !errors.As(err, &se) || !se.Retryable() {
		t.Fatalf("exhausted error lost its cause: %v", err)
	}
}

func TestRetryCustomClassify(t *testing.T) {
	calls := 0
	sentinel := errors.New("flaky")
	err := RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: time.Microsecond,
		Classify:    func(err error) bool { return errors.Is(err, sentinel) },
	}.Do(func() error {
		calls++
		if calls == 1 {
			return sentinel
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

// sleepRecorder captures the backoff schedule without sleeping.
func sleepRecorder(out *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *out = append(*out, d) }
}

func TestRetryDefaultSeedsDecorrelate(t *testing.T) {
	// Two zero-value policies must NOT replay the identical jitter
	// schedule: a herd of aborted clients that backs off in lockstep
	// re-collides forever. (This was a real bug: Seed==0 fell back to a
	// shared constant.)
	run := func() []time.Duration {
		var sleeps []time.Duration
		p := RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond, sleep: sleepRecorder(&sleeps)}
		p.Do(func() error { return retryableErr() })
		return sleeps
	}
	a, b := run(), run()
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("want 5 sleeps each, got %d and %d", len(a), len(b))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("two default-seeded clients replayed the identical backoff schedule: %v", a)
	}
}

func TestRetryExplicitSeedDeterministic(t *testing.T) {
	run := func() []time.Duration {
		var sleeps []time.Duration
		p := RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond, Seed: 42, sleep: sleepRecorder(&sleeps)}
		p.Do(func() error { return retryableErr() })
		return sleeps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("sleep counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Seed!=0 must be deterministic; sleep %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDoContextStopsAtDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	calls := 0
	start := time.Now()
	err := RetryPolicy{MaxAttempts: 10, BaseBackoff: 10 * time.Second}.DoContext(ctx, func() error {
		calls++
		return retryableErr()
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("DoContext slept through the deadline: %v", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (deadline hit during first backoff)", calls)
	}
	// The underlying cause is still visible in the message.
	if !strings.Contains(err.Error(), "retry") {
		t.Fatalf("error lost its cause: %v", err)
	}
}

func TestDoContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := RetryPolicy{}.DoContext(ctx, func() error { calls++; return nil })
	if calls != 0 {
		t.Fatalf("fn ran %d times under a cancelled context", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}
