package experiments

import (
	"testing"

	"repro/internal/fault"
)

// TestE17EveryRegisteredPointSurvivesCrash is the acceptance bar for
// the fault-injection tentpole: the sweep must cover EVERY registered
// fault point — a point added without crash-consistency coverage fails
// here — and every cell must pass its full invariant audit (E17 returns
// an error naming the point and the violated invariant otherwise).
func TestE17EveryRegisteredPointSurvivesCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	tb, err := E17Crashpoints(true)
	if err != nil {
		t.Fatal(err)
	}
	points := fault.Points()
	if len(tb.Rows) != len(points) {
		t.Fatalf("E17 produced %d rows for %d registered points:\n%s", len(tb.Rows), len(points), tb)
	}
	covered := map[string]bool{}
	for _, row := range tb.Rows {
		covered[row[0]] = true
		if verdict := row[len(row)-1]; verdict != "ok" {
			t.Errorf("point %s verdict = %q, want ok", row[0], verdict)
		}
	}
	for _, p := range points {
		if !covered[p] {
			t.Errorf("registered fault point %s missing from the E17 sweep:\n%s", p, tb)
		}
	}
}

// TestE17TornPointsReportTornBytes pins that the *.torn cells exercise
// the torn-write path for real: a seeded tear must leave trailing
// garbage for recovery to truncate at least once across the sweep's
// torn cells (a tear at offset 0 legitimately leaves nothing).
func TestE17TornPointsReportTornBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	tb, err := E17Crashpoints(true)
	if err != nil {
		t.Fatal(err)
	}
	tornCells := 0
	for _, row := range tb.Rows {
		if row[1] == "tear" {
			tornCells++
		}
	}
	if tornCells < 2 {
		t.Errorf("expected >= 2 tear-mode cells (stable.append.torn, stable.groupcommit.torn), got %d:\n%s", tornCells, tb)
	}
}
