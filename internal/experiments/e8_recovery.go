package experiments

import (
	"fmt"
	"time"

	"repro/internal/expr"
	"repro/internal/machine"
	"repro/internal/ofm"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wal"
)

// E8RecoveryOverhead measures what stable storage buys and costs (§3.2):
// the per-transaction logging overhead of a Persistent OFM versus a
// Transient one, and crash-recovery time as a function of transactions
// since the last checkpoint.
func E8RecoveryOverhead(quick bool) (*Table, error) {
	txnCounts := []int{10, 50, 200}
	if quick {
		txnCounts = []int{10, 50}
	}
	schema := value.MustSchema("id", "INT", "bal", "INT")

	t := &Table{
		ID:    "E8",
		Title: "logging overhead and crash recovery (update transactions on one fragment)",
		Header: []string{"txns since ckpt", "sim commit/txn (WAL)", "sim commit/txn (transient)",
			"WAL overhead", "log bytes", "recovery redo", "sim recovery time"},
	}
	for _, n := range txnCounts {
		m, err := machine.New(machine.Config{NumPEs: 16})
		if err != nil {
			return nil, err
		}
		store, err := machine.NewStableStore(m.PE(0), m.Disk())
		if err != nil {
			return nil, err
		}
		log, err := wal.Open(store, "wal-acct")
		if err != nil {
			return nil, err
		}
		persistent, err := ofm.New(ofm.Config{
			Name: "acct#0", Schema: schema, PE: m.PE(1), Machine: m,
			Kind: ofm.Persistent, Log: log, Compiled: true,
		})
		if err != nil {
			return nil, err
		}
		transient, err := ofm.New(ofm.Config{
			Name: "acct-t#0", Schema: schema, PE: m.PE(2), Machine: m,
			Kind: ofm.Transient, Compiled: true,
		})
		if err != nil {
			return nil, err
		}
		seed := make([]value.Tuple, 100)
		for i := range seed {
			seed[i] = value.Ints(int64(i), 1000)
		}
		if err := persistent.Load(seed); err != nil {
			return nil, err
		}
		if err := transient.Load(seed); err != nil {
			return nil, err
		}

		runTxns := func(o *ofm.OFM, pe int) (time.Duration, error) {
			mgr := txn.NewManager()
			before := m.PE(pe).Clock() + m.PE(0).Clock()
			for i := 0; i < n; i++ {
				tx := mgr.Begin()
				tx.Enlist(o)
				pred := expr.NewCmp(expr.EQ, expr.NewCol("id"), expr.NewConst(value.NewInt(int64(i%100))))
				set := map[int]expr.Expr{1: expr.NewArith(expr.Add, expr.NewCol("bal"), expr.NewConst(value.NewInt(1)))}
				if _, err := o.UpdateTx(tx.ID(), pred, set, ofm.Latest); err != nil {
					return 0, err
				}
				if err := tx.Commit(); err != nil {
					return 0, err
				}
			}
			return (m.PE(pe).Clock() + m.PE(0).Clock() - before) / time.Duration(n), nil
		}

		perWAL, err := runTxns(persistent, 1)
		if err != nil {
			return nil, err
		}
		perTransient, err := runTxns(transient, 2)
		if err != nil {
			return nil, err
		}
		logBytes := log.Bytes()

		// Crash and recover the persistent fragment.
		persistent.Crash()
		recStart := m.PE(1).Clock() + m.PE(0).Clock()
		applied, err := persistent.Recover()
		if err != nil {
			return nil, err
		}
		recTime := m.PE(1).Clock() + m.PE(0).Clock() - recStart
		if persistent.Rows() != 100 {
			return nil, fmt.Errorf("E8: recovery produced %d rows", persistent.Rows())
		}
		overhead := "n/a"
		if perTransient > 0 {
			overhead = fmt.Sprintf("%.1fx", float64(perWAL)/float64(perTransient))
		}
		t.AddRow(n,
			perWAL.Round(time.Microsecond).String(),
			perTransient.Round(time.Microsecond).String(),
			overhead,
			logBytes,
			applied,
			recTime.Round(time.Microsecond).String())
	}
	t.Notes = append(t.Notes,
		"WAL commits pay two log forces (prepare + commit marker) per transaction; transient OFMs pay none",
		"recovery time grows with the redo log; checkpointing resets it — exactly the paper's 'automatic recovery' trade")
	return t, nil
}
