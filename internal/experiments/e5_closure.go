package experiments

import (
	"fmt"
	"time"

	"repro/internal/algebra"
	"repro/internal/value"
)

// E5TransitiveClosure exercises the OFM transitive-closure operator
// (§2.5) and PRISMAlog's set-oriented recursion (§2.3): naive vs
// semi-naive vs smart evaluation over chain, tree and random graphs.
func E5TransitiveClosure(quick bool) (*Table, error) {
	chainLen := 256
	randNodes, randEdges := 300, 900
	if quick {
		chainLen = 64
		randNodes, randEdges = 80, 240
	}
	graphs := []struct {
		name  string
		edges []value.Tuple
	}{
		{fmt.Sprintf("chain-%d", chainLen), chainEdges(chainLen)},
		{"tree-depth-10", treeEdges(10)},
		{fmt.Sprintf("random-%dn-%de", randNodes, randEdges), genEdges(randNodes, randEdges, 17)},
	}
	schema := value.MustSchema("src", "INT", "dst", "INT")

	t := &Table{
		ID:     "E5",
		Title:  "transitive closure: naive vs semi-naive vs smart",
		Header: []string{"graph", "algorithm", "pairs", "rounds", "join probes", "wall time"},
	}
	for _, g := range graphs {
		rel := value.NewRelation(schema)
		rel.Tuples = g.edges
		var wantPairs int
		for _, algo := range []algebra.TCAlgorithm{algebra.TCNaive, algebra.TCSemiNaive, algebra.TCSmart} {
			start := time.Now()
			out, stats, rounds, err := algebra.TransitiveClosure(rel, 0, 1, algo)
			if err != nil {
				return nil, err
			}
			wall := time.Since(start)
			if algo == algebra.TCNaive {
				wantPairs = out.Len()
			} else if out.Len() != wantPairs {
				return nil, fmt.Errorf("E5: %s disagreed on %s: %d vs %d pairs", algo, g.name, out.Len(), wantPairs)
			}
			t.AddRow(g.name, algo.String(), out.Len(), rounds, stats.Hashes,
				wall.Round(10*time.Microsecond).String())
		}
	}
	t.Notes = append(t.Notes,
		"semi-naive joins only each round's delta: far fewer probes than naive on deep graphs",
		"smart (squaring) trades more probes per round for logarithmically few rounds — the win when rounds are expensive (distributed barriers)")
	return t, nil
}

// treeEdges builds a binary tree with the given depth.
func treeEdges(depth int) []value.Tuple {
	var out []value.Tuple
	max := int64(1) << depth
	for i := int64(1); 2*i+1 < max; i++ {
		out = append(out, value.Ints(i, 2*i), value.Ints(i, 2*i+1))
	}
	return out
}
