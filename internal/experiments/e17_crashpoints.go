package experiments

import (
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fragment"
	"repro/internal/server"
	"repro/internal/txn"
	"repro/internal/value"
)

// E17 workload geometry: accounts [0, e17Rows). Account 0 carries the
// committed marker (+100 before the fault arms), account 1 the
// rolled-back marker (set to 9999, then ROLLBACK); workers transfer
// between accounts [2, e17Rows). The invariant sum is therefore
// e17Rows*100 + 100 no matter which in-flight transfers survive the
// crash — transfers are zero-sum.
const (
	e17Rows     = 64
	e17Transfer = 10
)

// E17Crashpoints is the fault-injection payoff experiment: for EVERY
// registered fault point it runs a concurrent transfer workload, fires
// a deterministic crash (or torn write) at that point, restarts, and
// checks the crash-consistency contract — money conserved, a committed
// marker durable, a rolled-back marker absent, zero unresolved in-doubt
// transactions, and balances explainable as the acknowledged ledger
// plus some subset of the transfers whose COMMIT got an indeterminate
// answer. The paper's §5 promises exactly this class of robustness from
// the 2PC + logging design; this sweep is the falsifiable version.
func E17Crashpoints(quick bool) (*Table, error) {
	workers := 4
	numPEs := 16
	warmup := 25 * time.Millisecond
	if quick {
		workers = 3
		numPEs = 8
		warmup = 10 * time.Millisecond
	}

	t := &Table{
		ID: "E17",
		Title: fmt.Sprintf("crashpoint sweep: %d-account transfer workload (%d workers, %d PEs), one injected crash per registered fault point",
			e17Rows, workers, numPEs),
		Header: []string{"fault point", "mode", "commits", "in-flight", "redo", "resolved", "presumed", "torn B", "recovery", "invariants"},
		Notes: []string{
			"each row: fresh engine, concurrent transfers + rollbacks + checkpoints, fault armed after warmup, crash on first hit, restart, recover",
			"in-flight counts transactions whose COMMIT got an ambiguous answer (crash mid-protocol); recovery must settle every one via the decision log or presumed abort",
			"invariants: sum conserved, committed marker durable, rolled-back marker absent, zero unresolved in-doubt txns, balances = acked ledger + a subset of in-flight transfers, engine functional after recovery",
			"*.torn points tear the write at a seeded byte offset instead of failing cleanly; recovery truncates the torn tail (torn B)",
			"server.frame.write runs over TCP: the fault drops a reply frame, the client treats the dead connection as indeterminate (never auto-retried), and a fresh connection audits the ledger",
			"admission.* and auth.check run over TCP behind a saturating admission controller with authenticated tenants: injected sheds and auth denials always land before execution, so the workload absorbs them (retry or rollback) and the ledger stays exact",
		},
	}

	for i, name := range fault.Points() {
		var row []string
		var err error
		switch {
		case name == "server.frame.write":
			row, err = runE17WireCell(name, workers, numPEs, warmup)
		case strings.HasPrefix(name, "admission.") || name == "auth.check":
			row, err = runE17AdmissionCell(name, workers, numPEs, warmup)
		default:
			row, err = runE17CrashCell(name, int64(i), workers, numPEs, warmup)
		}
		if err != nil {
			return nil, fmt.Errorf("E17 %s: %w", name, err)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// e17Ledger is what the workload knows happened, against which the
// recovered balances are audited.
type e17Ledger struct {
	mu      sync.Mutex
	commits int           // acknowledged COMMITs
	acked   map[int]int64 // per-account delta from acknowledged transfers
	maybe   [][2]int      // transfers whose COMMIT was ambiguous
}

func newE17Ledger() *e17Ledger { return &e17Ledger{acked: make(map[int]int64)} }

func (l *e17Ledger) ack(a, b int) {
	l.mu.Lock()
	l.commits++
	l.acked[a] -= e17Transfer
	l.acked[b] += e17Transfer
	l.mu.Unlock()
}

func (l *e17Ledger) ambiguous(a, b int) {
	l.mu.Lock()
	l.maybe = append(l.maybe, [2]int{a, b})
	l.mu.Unlock()
}

// explains reports whether the recovered balances equal the
// acknowledged ledger plus some subset of the ambiguous transfers —
// each in-flight transaction landed atomically or not at all. The
// subset is searched exhaustively (each worker contributes at most one
// ambiguous transfer, so the space is tiny).
func (l *e17Ledger) explains(bal map[int]int64) bool {
	for mask := 0; mask < 1<<len(l.maybe); mask++ {
		want := make(map[int]int64, len(l.acked))
		for id, d := range l.acked {
			want[id] = d
		}
		for i, tr := range l.maybe {
			if mask&(1<<i) != 0 {
				want[tr[0]] -= e17Transfer
				want[tr[1]] += e17Transfer
			}
		}
		ok := true
		for id := 2; id < e17Rows && ok; id++ {
			ok = bal[id] == 100+want[id]
		}
		if ok {
			return true
		}
	}
	return false
}

// e17Engine builds a fresh engine with the standard E17 table: accounts
// 0..e17Rows-1 at 100 each, then the committed marker (account 0 +100)
// and the rolled-back marker (account 1 set to 9999, rolled back).
func e17Engine(numPEs int) (*core.Engine, error) {
	mvcc := false
	eng, err := core.New(core.Config{NumPEs: numPEs, MVCC: &mvcc})
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			eng.Close()
		}
	}()
	if err := eng.CreateTable("acct", value.MustSchema("id", "INT", "bal", "INT"),
		&fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: 4}, []int{0}); err != nil {
		return nil, err
	}
	tuples := make([]value.Tuple, e17Rows)
	for i := range tuples {
		tuples[i] = value.Ints(int64(i), 100)
	}
	if err := eng.LoadTable("acct", tuples); err != nil {
		return nil, err
	}
	s := eng.NewSession()
	defer s.Close()
	for _, sql := range []string{
		`UPDATE acct SET bal = bal + 100 WHERE id = 0`,
		`BEGIN`, `UPDATE acct SET bal = 9999 WHERE id = 1`, `ROLLBACK`,
	} {
		if _, err := s.Exec(sql); err != nil {
			return nil, err
		}
	}
	ok = true
	return eng, nil
}

// e17Balances reads every account through a fresh session.
func e17Balances(eng *core.Engine) (map[int]int64, int64, error) {
	s := eng.NewSession()
	defer s.Close()
	rel, err := s.Query(`SELECT id, bal FROM acct`)
	if err != nil {
		return nil, 0, err
	}
	bal := make(map[int]int64, e17Rows)
	var sum int64
	for _, tu := range rel.Tuples {
		bal[int(tu[0].Int())] = tu[1].Int()
		sum += tu[1].Int()
	}
	return bal, sum, nil
}

// e17Worker runs transfer transactions (80%) and rollback probes (20%)
// until stop, recording acknowledged and ambiguous outcomes. A
// retryable failure is a clean abort — the server promised nothing
// committed — so the worker rolls back and moves on; any other COMMIT
// failure is ambiguous and ends the worker.
func e17Worker(eng *core.Engine, seed int64, stop *atomic.Bool, ledger *e17Ledger) {
	s := eng.NewSession()
	defer s.Close()
	r := rand.New(rand.NewSource(seed))
	for !stop.Load() {
		a := 2 + r.Intn(e17Rows-2)
		b := 2 + r.Intn(e17Rows-2)
		if r.Intn(5) == 0 {
			// Rollback probe: its write must never survive.
			s.Exec(`BEGIN`)
			s.Exec(fmt.Sprintf(`UPDATE acct SET bal = bal + 7 WHERE id = %d`, a))
			s.Exec(`ROLLBACK`)
			continue
		}
		_, err := s.Exec(`BEGIN`)
		if err == nil {
			_, err = s.Exec(fmt.Sprintf(`UPDATE acct SET bal = bal - %d WHERE id = %d`, e17Transfer, a))
		}
		if err == nil {
			_, err = s.Exec(fmt.Sprintf(`UPDATE acct SET bal = bal + %d WHERE id = %d`, e17Transfer, b))
		}
		if err != nil {
			// The transaction never reached COMMIT: nothing durable.
			if s.InTransaction() {
				s.Exec(`ROLLBACK`)
			}
			if fault.Crashed() {
				return
			}
			continue
		}
		_, err = s.Exec(`COMMIT`)
		switch {
		case err == nil:
			ledger.ack(a, b)
		case txn.IsRetryable(err):
			// Clean abort: the commit protocol promised no effects.
			if s.InTransaction() {
				s.Exec(`ROLLBACK`)
			}
		default:
			// Indeterminate: the crash hit mid-protocol. Recovery decides.
			ledger.ambiguous(a, b)
			return
		}
		if fault.Crashed() {
			return
		}
	}
}

// runE17CrashCell runs one engine-side fault point: workload, armed
// crash, restart, recovery, audit.
func runE17CrashCell(point string, idx int64, workers, numPEs int, warmup time.Duration) ([]string, error) {
	defer fault.DisarmAll()
	defer fault.ClearCrash()

	eng, err := e17Engine(numPEs)
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	ledger := newE17Ledger()
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e17Worker(eng, idx*100+int64(w)+1, &stop, ledger)
		}(w)
	}
	// Checkpoint driver: gives the checkpoint-path fault points traffic
	// and exercises recovery-from-checkpoint for the rest.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() && !fault.Crashed() {
			eng.CheckpointTable("acct")
			time.Sleep(2 * time.Millisecond)
		}
	}()

	time.Sleep(warmup)
	spec := fault.Spec{Mode: fault.Crash, N: 1}
	if strings.HasSuffix(point, ".torn") {
		spec = fault.Spec{Mode: fault.Tear, N: 1, TearAt: -1, Seed: 88 + idx}
	}
	if err := fault.Arm(point, spec); err != nil {
		stop.Store(true)
		wg.Wait()
		return nil, err
	}
	pt := fault.Lookup(point)
	deadline := time.Now().Add(5 * time.Second)
	for pt.Fired() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if pt.Fired() == 0 {
		return nil, fmt.Errorf("fault point never fired under the workload")
	}

	// The machine died here: wipe volatile state, clear the injected
	// poison, and restart from stable storage.
	if err := eng.CrashTable("acct"); err != nil {
		return nil, err
	}
	fault.DisarmAll()
	fault.ClearCrash()
	rep, err := eng.RecoverTableReport("acct")
	if err != nil {
		return nil, fmt.Errorf("recovery: %w", err)
	}

	if err := e17Audit(eng, ledger, rep.Unresolved); err != nil {
		return nil, err
	}
	return []string{
		point, spec.Mode.String(),
		fmt.Sprint(ledger.commits), fmt.Sprint(len(ledger.maybe)),
		fmt.Sprint(rep.Redo), fmt.Sprint(rep.ResolvedCommits), fmt.Sprint(rep.PresumedAborts),
		fmt.Sprint(rep.TornBytes),
		rep.Wall.Round(10 * time.Microsecond).String(),
		"ok",
	}, nil
}

// e17Audit checks every crash-consistency invariant after recovery,
// including that the engine still commits new work.
func e17Audit(eng *core.Engine, ledger *e17Ledger, unresolved int) error {
	if unresolved != 0 {
		return fmt.Errorf("%d in-doubt transactions leaked unresolved", unresolved)
	}
	bal, sum, err := e17Balances(eng)
	if err != nil {
		return fmt.Errorf("post-recovery read: %w", err)
	}
	const wantSum = int64(e17Rows*100 + 100)
	if sum != wantSum {
		return fmt.Errorf("sum = %d, want %d: money not conserved", sum, wantSum)
	}
	if bal[0] != 200 {
		return fmt.Errorf("committed marker lost: bal(0) = %d, want 200", bal[0])
	}
	if bal[1] != 100 {
		return fmt.Errorf("rolled-back write survived: bal(1) = %d, want 100", bal[1])
	}
	if !ledger.explains(bal) {
		return fmt.Errorf("balances not explainable as acked ledger + subset of %d in-flight transfers", len(ledger.maybe))
	}
	// Liveness: the recovered engine must still commit.
	s := eng.NewSession()
	defer s.Close()
	for _, sql := range []string{
		`BEGIN`,
		`UPDATE acct SET bal = bal - 1 WHERE id = 2`,
		`UPDATE acct SET bal = bal + 1 WHERE id = 3`,
		`COMMIT`,
	} {
		if _, err := s.Exec(sql); err != nil {
			return fmt.Errorf("post-recovery transaction: %w", err)
		}
	}
	if _, sum, err := e17Balances(eng); err != nil || sum != wantSum {
		return fmt.Errorf("post-recovery transfer broke conservation: sum=%d err=%v", sum, err)
	}
	return nil
}

// runE17WireCell exercises server.frame.write over real TCP: the fault
// makes one reply-frame write fail, which kills that connection AFTER
// its statement executed. The client contract is the inverse of the
// engine cells: the error is NOT retryable (the commit may have
// landed), the worker records it as in-flight, and a fresh connection
// audits the ledger — no recovery pass, because the engine never died.
func runE17WireCell(point string, workers, numPEs int, warmup time.Duration) ([]string, error) {
	defer fault.DisarmAll()
	defer fault.ClearCrash()

	eng, err := e17Engine(numPEs)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	srv, err := server.New(server.Config{Engine: eng, MaxConns: 64, StatementTimeout: time.Second})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan struct{})
	go func() { srv.Serve(l); close(serveDone) }()
	defer func() { srv.Close(); <-serveDone }()
	addr := l.Addr().String()

	ledger := newE17Ledger()
	var stop atomic.Bool
	var wg sync.WaitGroup
	var wireErr error
	var errOnce sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := e17WireWorker(addr, int64(w)+1, &stop, ledger); err != nil {
				errOnce.Do(func() { wireErr = err })
				stop.Store(true)
			}
		}(w)
	}

	time.Sleep(warmup)
	if err := fault.Arm(point, fault.Spec{Mode: fault.Error, N: 1}); err != nil {
		stop.Store(true)
		wg.Wait()
		return nil, err
	}
	pt := fault.Lookup(point)
	deadline := time.Now().Add(5 * time.Second)
	for pt.Fired() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Let the survivors keep committing briefly past the fault, then stop.
	time.Sleep(warmup)
	stop.Store(true)
	wg.Wait()
	if wireErr != nil {
		return nil, wireErr
	}
	if pt.Fired() == 0 {
		return nil, fmt.Errorf("fault point never fired under the workload")
	}
	fault.DisarmAll()

	// The engine never crashed: audit directly over a fresh connection's
	// view (via the embedded engine — same state the wire serves).
	if err := e17Audit(eng, ledger, 0); err != nil {
		return nil, err
	}
	return []string{
		point, "error",
		fmt.Sprint(ledger.commits), fmt.Sprint(len(ledger.maybe)),
		"0", "0", "0", "0", "n/a", "ok",
	}, nil
}

// runE17AdmissionCell exercises the overload and authorization fault
// points (admission.enqueue, admission.shed, auth.check) over real TCP:
// a deliberately tiny admission controller (one statement in flight)
// keeps the slow path hot, and the workers run as an authenticated
// tenant so every statement crosses the grant check. All three points
// reject a statement BEFORE it executes — a shed is coded retryable,
// an auth denial coded non-retryable — so the workload absorbs the
// injection without ambiguity and the ledger must stay exact.
func runE17AdmissionCell(point string, workers, numPEs int, warmup time.Duration) ([]string, error) {
	defer fault.DisarmAll()
	defer fault.ClearCrash()

	eng, err := e17Engine(numPEs)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	admin := eng.NewSession()
	for _, sql := range []string{
		`CREATE USER tenant PASSWORD 'pw'`,
		`GRANT ALL ON acct TO tenant`,
	} {
		if _, err := admin.Exec(sql); err != nil {
			admin.Close()
			return nil, err
		}
	}
	admin.Close()
	ctl := admission.New(admission.Config{
		MaxInFlight: 1, QueueDepth: 2 * workers, PerTenantQueue: 2 * workers,
		WaitTimeout: 250 * time.Millisecond,
	})
	srv, err := server.New(server.Config{Engine: eng, MaxConns: 64, StatementTimeout: time.Second, Admission: ctl})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan struct{})
	go func() { srv.Serve(l); close(serveDone) }()
	defer func() { srv.Close(); <-serveDone }()
	addr := l.Addr().String()

	ledger := newE17Ledger()
	var stop atomic.Bool
	var wg sync.WaitGroup
	var cellErr error
	var errOnce sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := e17AdmWorker(addr, int64(w)+1, &stop, ledger); err != nil {
				errOnce.Do(func() { cellErr = err })
				stop.Store(true)
			}
		}(w)
	}
	// Autocommit readers keep the single execution slot occupied for
	// whole table scans, so concurrent statements actually queue — the
	// transfer workers alone gate only their (instant) BEGINs, which
	// would leave admission.enqueue cold.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e17AdmReader(addr, &stop)
		}(w)
	}

	time.Sleep(warmup)
	if err := fault.Arm(point, fault.Spec{Mode: fault.Error, N: 1}); err != nil {
		stop.Store(true)
		wg.Wait()
		return nil, err
	}
	pt := fault.Lookup(point)
	deadline := time.Now().Add(5 * time.Second)
	for pt.Fired() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Let the survivors keep committing briefly past the fault, then stop.
	time.Sleep(warmup)
	stop.Store(true)
	wg.Wait()
	if cellErr != nil {
		return nil, cellErr
	}
	if pt.Fired() == 0 {
		return nil, fmt.Errorf("fault point never fired under the workload")
	}
	fault.DisarmAll()

	if err := e17Audit(eng, ledger, 0); err != nil {
		return nil, err
	}
	return []string{
		point, "error",
		fmt.Sprint(ledger.commits), fmt.Sprint(len(ledger.maybe)),
		"0", "0", "0", "0", "n/a", "ok",
	}, nil
}

// e17AdmWorker runs credentialed transfers through the admission
// queue. Sheds are retryable (the statement never ran) and injected
// auth denials land before execution, so both are absorbed in place:
// roll back whatever transaction is open and try again.
func e17AdmWorker(addr string, seed int64, stop *atomic.Bool, ledger *e17Ledger) error {
	c, err := client.Dial(addr, client.Options{StatementTimeout: time.Second, Tenant: "tenant", Secret: "pw"})
	if err != nil {
		return err
	}
	defer c.Close()
	r := rand.New(rand.NewSource(seed))
	step := func(sql string) error {
		for {
			_, err := c.Exec(sql)
			if err == nil || !client.IsRetryable(err) {
				return err
			}
			if stop.Load() {
				return err
			}
			time.Sleep(time.Duration(100+r.Intn(400)) * time.Microsecond)
		}
	}
	for !stop.Load() {
		a := 2 + r.Intn(e17Rows-2)
		b := 2 + r.Intn(e17Rows-2)
		var committing bool
		err := step(`BEGIN`)
		if err == nil {
			err = step(fmt.Sprintf(`UPDATE acct SET bal = bal - %d WHERE id = %d`, e17Transfer, a))
		}
		if err == nil {
			err = step(fmt.Sprintf(`UPDATE acct SET bal = bal + %d WHERE id = %d`, e17Transfer, b))
		}
		if err == nil {
			committing = true
			err = step(`COMMIT`)
		}
		switch {
		case err == nil:
			ledger.ack(a, b)
		case c.Broken() != nil:
			// Transport failure: the session died, aborting any open
			// transaction server-side — unless the connection broke with
			// the COMMIT in flight, which is indeterminate.
			if committing {
				ledger.ambiguous(a, b)
			}
			return nil
		default:
			// Pre-execution rejection (injected shed on BEGIN, injected
			// auth denial anywhere): the statement never ran, so abort
			// the transaction and move on.
			c.Exec(`ROLLBACK`)
		}
	}
	return nil
}

// e17AdmReader floods autocommit scans through the admission queue;
// every outcome — result, shed, injected denial — is acceptable, it
// exists only to hold the execution slot and force queueing.
func e17AdmReader(addr string, stop *atomic.Bool) {
	c, err := client.Dial(addr, client.Options{StatementTimeout: time.Second, Tenant: "tenant", Secret: "pw"})
	if err != nil {
		return
	}
	defer c.Close()
	for !stop.Load() {
		if _, err := c.Exec(`SELECT id, bal FROM acct`); err != nil && c.Broken() != nil {
			return
		}
	}
}

// e17WireWorker is e17Worker over TCP. client.Retry drives the
// transient-failure path (lock-wait deadlines, clean aborts); a broken
// connection after COMMIT is ambiguous — recorded, never re-run.
func e17WireWorker(addr string, seed int64, stop *atomic.Bool, ledger *e17Ledger) error {
	c, err := client.Dial(addr, client.Options{StatementTimeout: time.Second})
	if err != nil {
		return err
	}
	defer c.Close()
	r := rand.New(rand.NewSource(seed))
	for !stop.Load() {
		a := 2 + r.Intn(e17Rows-2)
		b := 2 + r.Intn(e17Rows-2)
		var committed bool
		err := client.RetryPolicy{MaxAttempts: 10, BaseBackoff: 200 * time.Microsecond, Seed: seed}.Do(func() error {
			committed = false
			if _, err := c.Exec(`BEGIN`); err != nil {
				return err
			}
			if _, err := c.Exec(fmt.Sprintf(`UPDATE acct SET bal = bal - %d WHERE id = %d`, e17Transfer, a)); err != nil {
				c.Exec(`ROLLBACK`)
				return err
			}
			if _, err := c.Exec(fmt.Sprintf(`UPDATE acct SET bal = bal + %d WHERE id = %d`, e17Transfer, b)); err != nil {
				c.Exec(`ROLLBACK`)
				return err
			}
			if _, err := c.Exec(`COMMIT`); err != nil {
				if client.IsRetryable(err) {
					c.Exec(`ROLLBACK`)
				} else {
					committed = true // ambiguous: COMMIT may have landed
				}
				return err
			}
			committed = true
			return nil
		})
		switch {
		case err == nil:
			ledger.ack(a, b)
		case committed:
			// The connection died with a COMMIT in flight: indeterminate.
			ledger.ambiguous(a, b)
			return nil
		case client.IsRetryable(err):
			// Retry budget spent on clean aborts: nothing committed.
		default:
			// Transport failure outside COMMIT (the dropped frame hit
			// BEGIN/UPDATE): the open transaction died with its session —
			// aborted server-side, nothing durable.
			return nil
		}
	}
	return nil
}
