package experiments

import (
	"testing"
	"time"
)

// TestE19OverloadGraceful is the acceptance bar for the overload
// tentpole: at ~4x offered load the front door must shed instead of
// collapse. Goodput stays within 80% of the calibrated capacity,
// admitted-statement p99 stays bounded (the admission queue's wait
// timeout plus execution — far below what an unbounded queue would
// show at 4x), the misbehaving batch tenant cannot push a well-behaved
// tenant below a third of its fair share, and every refusal the
// clients saw was a coded retryable shed.
func TestE19OverloadGraceful(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	st, err := runE19(true)
	if err != nil {
		t.Fatal(err)
	}

	// Goodput under saturation stays near capacity: the queue keeps the
	// execution slots busy, shedding only the excess.
	if goodput := st.goodput(); goodput < 0.8*st.capacity {
		t.Errorf("goodput %.0f stmts/s under overload, want >= 80%% of capacity %.0f", goodput, st.capacity)
	}

	// Fair sharing: with 3 tenants the fair share is C/3; a flooding
	// batch tenant must not push an interactive tenant below a third of
	// that.
	floor := st.capacity / 9
	secs := st.dur.Seconds()
	for _, tn := range st.tenants[:2] { // alpha, beta
		if rate := float64(tn.admitted) / secs; rate < floor {
			t.Errorf("tenant %s admitted %.0f stmts/s, want >= %.0f (1/3 of fair share)", tn.name, rate, floor)
		}
	}

	// The overload has to be real: the misbehaving tenant was shed.
	mallory := st.tenants[2]
	if mallory.shed == 0 {
		t.Errorf("mallory was never shed at 2x-capacity offered load")
	}
	if st.globalShed == 0 {
		t.Errorf("SHOW ADMISSION reports zero global sheds under 4x load")
	}

	// Every refusal is coded retryable — anything else is a contract
	// violation (hard errors would make clients give up or retry
	// non-idempotently).
	for _, tn := range st.tenants {
		if len(tn.hard) > 0 {
			t.Errorf("tenant %s saw %d non-retryable errors, first: %v", tn.name, len(tn.hard), tn.hard[0])
		}
	}

	// Bounded latency for admitted statements: queue wait is capped at
	// the 100ms admission timeout, execution adds a few ms — p99 beyond
	// 500ms would mean the queue is not doing its job.
	for _, tn := range st.tenants {
		if p99 := e19Percentile(tn.lats, 0.99); p99 > 500*time.Millisecond {
			t.Errorf("tenant %s admitted p99 = %s, want <= 500ms", tn.name, p99)
		}
	}

	// Observability: queue wait surfaced in Result timings, and SHOW
	// ADMISSION rendered every tenant plus the global row.
	if !st.queueTimeSeen {
		t.Errorf("no admitted Result carried QueueTime > 0 under standing overload")
	}
	if st.admissionRows < 4 {
		t.Errorf("SHOW ADMISSION rendered %d rows, want >= 4 (3 tenants + global)", st.admissionRows)
	}
}
