package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestE18ReplicasScaleReadsAndSurviveFailover is the acceptance bar
// for the replication tentpole: the grid must show >= 1.7x aggregate
// read capacity at 2 replicas over the no-replica baseline, report a
// replication lag p99, and the audited failover cell must pass every
// invariant — ledger conserved, no acknowledged commit lost, torn
// stream resubscribed, stale-epoch primary fenced (E18 returns an
// error naming the violated invariant otherwise).
func TestE18ReplicasScaleReadsAndSurviveFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	tb, err := E18Replication(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("E18 produced %d rows, want 4 grid cells + failover:\n%s", len(tb.Rows), tb)
	}
	var speedup2 float64
	for _, row := range tb.Rows {
		switch row[0] {
		case "2":
			s := strings.TrimSuffix(row[3], "x")
			speedup2, err = strconv.ParseFloat(s, 64)
			if err != nil {
				t.Fatalf("2-replica speedup cell %q: %v", row[3], err)
			}
			if row[6] == "n/a" {
				t.Errorf("2-replica row reports no lag p99:\n%s", tb)
			}
		case "failover":
			if !strings.HasPrefix(row[len(row)-1], "ok") {
				t.Errorf("failover verdict = %q, want ok:\n%s", row[len(row)-1], tb)
			}
		}
	}
	if speedup2 < 1.7 {
		t.Errorf("2-replica read capacity speedup = %.2fx, want >= 1.7x:\n%s", speedup2, tb)
	}
}
