package experiments

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fragment"
	"repro/internal/server"
	"repro/internal/value"
)

// E19 is the standing-overload experiment for the multi-tenant front
// door. Phase 1 measures the server's capacity C with a closed loop
// sized to the admission controller's in-flight cap. Phase 2 offers
// roughly 4x C across three authenticated tenants — alpha and beta
// well-behaved interactive tenants pacing at C each, mallory a
// misbehaving batch tenant pacing at 2C — and the admission queue must
// degrade gracefully: goodput stays near C, admitted-statement latency
// stays bounded by the queue's wait timeout, every shed is a coded
// retryable refusal, and mallory cannot starve alpha or beta below a
// fraction of their fair share.

// e19Tenant accumulates one tenant's overload-phase outcomes.
type e19Tenant struct {
	name  string
	class string
	rate  float64 // offered statements/sec target

	mu       sync.Mutex
	offered  int64 // tokens issued (attempted + dropped)
	dropped  int64 // tokens dropped client-side: the tenant's own pool was saturated
	admitted int64
	shed     int64 // retryable refusals (queue full, wait timeout)
	hard     []error
	lats     []time.Duration
}

func (t *e19Tenant) record(lat time.Duration, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch {
	case err == nil:
		t.admitted++
		t.lats = append(t.lats, lat)
	case client.IsRetryable(err):
		t.shed++
	default:
		t.hard = append(t.hard, err)
	}
}

// e19Stats is everything the E19 acceptance test asserts on.
type e19Stats struct {
	capacity      float64 // calibrated statements/sec
	calP50        time.Duration
	calP99        time.Duration
	dur           time.Duration // overload phase wall time
	queueTimeSeen bool          // some admitted Result carried QueueTime > 0
	globalShed    int64         // SHOW ADMISSION's controller-side shed count
	admissionRows int           // rows SHOW ADMISSION rendered
	tenants       []*e19Tenant  // alpha, beta, mallory
}

func (st *e19Stats) goodput() float64 {
	var n int64
	for _, t := range st.tenants {
		n += t.admitted
	}
	return float64(n) / st.dur.Seconds()
}

func e19Percentile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(p * float64(len(s)-1))
	return s[i]
}

const e19Stmt = `SELECT SUM(bal) FROM acct`

// runE19 builds the server, calibrates, overloads, and audits. The
// admission geometry: 4 statements in flight server-wide, 2 per
// tenant, a 12-deep queue (4 per tenant) and a 100ms wait bound — so
// under 4x load the queue is never empty (goodput stays near C) and
// no admitted statement can have waited more than 100ms.
func runE19(quick bool) (*e19Stats, error) {
	rows, numPEs := 2048, 16
	calDur, loadDur := 800*time.Millisecond, 3*time.Second
	workers := 8 // per tenant, overload phase
	if quick {
		rows, numPEs = 1024, 8
		calDur, loadDur = 300*time.Millisecond, 1200*time.Millisecond
		workers = 6
	}
	const (
		maxInFlight = 4
		perTenant   = 2
		waitTimeout = 100 * time.Millisecond
	)

	mvcc := true
	eng, err := core.New(core.Config{NumPEs: numPEs, MVCC: &mvcc})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	if err := eng.CreateTable("acct", value.MustSchema("id", "INT", "bal", "INT"),
		&fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: 4}, []int{0}); err != nil {
		return nil, err
	}
	tuples := make([]value.Tuple, rows)
	for i := range tuples {
		tuples[i] = value.Ints(int64(i), int64(i%97))
	}
	if err := eng.LoadTable("acct", tuples); err != nil {
		return nil, err
	}

	ctl := admission.New(admission.Config{
		MaxInFlight: maxInFlight, QueueDepth: 3 * maxInFlight,
		PerTenantQueue: maxInFlight, WaitTimeout: waitTimeout,
	})
	srv, err := server.New(server.Config{Engine: eng, MaxConns: 64, StatementTimeout: time.Second, Admission: ctl})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan struct{})
	go func() { srv.Serve(l); close(serveDone) }()
	defer func() { srv.Close(); <-serveDone }()
	addr := l.Addr().String()

	// Phase 1 — calibration: a closed loop exactly as wide as the
	// in-flight cap, before any users exist (so the uncredentialed
	// legacy path is what gets measured). C is its completion rate.
	st := &e19Stats{}
	{
		var n int64
		var latMu sync.Mutex
		var lats []time.Duration
		var stop atomic.Bool
		var wg sync.WaitGroup
		var calErr error
		var errOnce sync.Once
		for w := 0; w < maxInFlight; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := client.Dial(addr, client.Options{StatementTimeout: time.Second})
				if err != nil {
					errOnce.Do(func() { calErr = err })
					return
				}
				defer c.Close()
				for !stop.Load() {
					t0 := time.Now()
					if _, err := c.Exec(e19Stmt); err != nil {
						if client.IsRetryable(err) {
							continue
						}
						errOnce.Do(func() { calErr = err })
						return
					}
					lat := time.Since(t0)
					atomic.AddInt64(&n, 1)
					latMu.Lock()
					lats = append(lats, lat)
					latMu.Unlock()
				}
			}()
		}
		t0 := time.Now()
		time.Sleep(calDur)
		stop.Store(true)
		wg.Wait()
		if calErr != nil {
			return nil, fmt.Errorf("calibration: %w", calErr)
		}
		elapsed := time.Since(t0)
		if n == 0 {
			return nil, fmt.Errorf("calibration completed no statements")
		}
		st.capacity = float64(n) / elapsed.Seconds()
		st.calP50 = e19Percentile(lats, 0.50)
		st.calP99 = e19Percentile(lats, 0.99)
	}

	// Tenants: secrets at rest hashed in the catalog, per-table grants.
	admin := eng.NewSession()
	for _, sql := range []string{
		fmt.Sprintf(`CREATE USER alpha PASSWORD 'pw-alpha' PRIORITY interactive MAX_CONCURRENT %d`, perTenant),
		fmt.Sprintf(`CREATE USER beta PASSWORD 'pw-beta' PRIORITY interactive MAX_CONCURRENT %d`, perTenant),
		fmt.Sprintf(`CREATE USER mallory PASSWORD 'pw-mallory' PRIORITY batch MAX_CONCURRENT %d`, perTenant),
		`GRANT SELECT ON acct TO alpha`,
		`GRANT SELECT ON acct TO beta`,
		`GRANT SELECT ON acct TO mallory`,
	} {
		if _, err := admin.Exec(sql); err != nil {
			admin.Close()
			return nil, err
		}
	}

	// Phase 2 — standing overload at ~4x capacity: alpha and beta pace
	// at C each, mallory floods at 2C. Semi-open loop: a pacer drips
	// tokens at the offered rate into a small buffer; when the tenant's
	// own worker pool can't keep up (every worker stuck in the
	// admission queue), excess tokens are dropped client-side and
	// counted — they never reach the server.
	st.tenants = []*e19Tenant{
		{name: "alpha", class: "interactive", rate: st.capacity},
		{name: "beta", class: "interactive", rate: st.capacity},
		{name: "mallory", class: "batch", rate: 2 * st.capacity},
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	var qtSeen atomic.Bool
	for _, tn := range st.tenants {
		tokens := make(chan struct{}, 64)
		wg.Add(1)
		go func(tn *e19Tenant) { // pacer
			defer wg.Done()
			const tick = 2 * time.Millisecond
			carry := 0.0
			for !stop.Load() {
				time.Sleep(tick)
				carry += tn.rate * tick.Seconds()
				for ; carry >= 1; carry-- {
					tn.mu.Lock()
					tn.offered++
					tn.mu.Unlock()
					select {
					case tokens <- struct{}{}:
					default:
						tn.mu.Lock()
						tn.dropped++
						tn.mu.Unlock()
					}
				}
			}
		}(tn)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(tn *e19Tenant) {
				defer wg.Done()
				c, err := client.Dial(addr, client.Options{
					StatementTimeout: time.Second,
					Tenant:           tn.name, Secret: "pw-" + tn.name,
				})
				if err != nil {
					tn.mu.Lock()
					tn.hard = append(tn.hard, err)
					tn.mu.Unlock()
					return
				}
				defer c.Close()
				for !stop.Load() {
					select {
					case <-tokens:
					default:
						time.Sleep(time.Millisecond)
						continue
					}
					t0 := time.Now()
					res, err := c.Exec(e19Stmt)
					tn.record(time.Since(t0), err)
					if err == nil && res.QueueTime > 0 {
						qtSeen.Store(true)
					}
					if c.Broken() != nil {
						return
					}
				}
			}(tn)
		}
	}
	t0 := time.Now()
	time.Sleep(loadDur)
	stop.Store(true)
	wg.Wait()
	st.dur = time.Since(t0)
	st.queueTimeSeen = qtSeen.Load()

	// Observability: SHOW ADMISSION must render every tenant plus the
	// global row, and the controller must have shed for real.
	res, err := admin.Exec(`SHOW ADMISSION`)
	admin.Close()
	if err != nil {
		return nil, fmt.Errorf("SHOW ADMISSION: %w", err)
	}
	if res.Rel != nil {
		st.admissionRows = len(res.Rel.Tuples)
		for _, tu := range res.Rel.Tuples {
			if tu[0].Str() == "(global)" {
				st.globalShed = tu[4].Int()
			}
		}
	}
	return st, nil
}

// E19Overload renders the overload experiment as a table: the
// calibration row, one row per tenant, and the totals row.
func E19Overload(quick bool) (*Table, error) {
	st, err := runE19(quick)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E19",
		Title: fmt.Sprintf("standing overload: ~4x capacity offered across 3 tenants (capacity %.0f stmts/s, %s run)",
			st.capacity, st.dur.Round(10*time.Millisecond)),
		Header: []string{"tenant", "class", "offered/s", "admitted/s", "shed", "dropped", "p50", "p99"},
		Notes: []string{
			"calibration: closed loop as wide as the in-flight cap, uncredentialed, before the overload phase",
			"alpha and beta pace at capacity each (interactive), mallory floods at 2x capacity (batch): ~4x total",
			"shed counts coded retryable refusals from the admission queue; dropped counts tokens the tenant's own saturated pool never sent",
			"admitted p99 is bounded by the admission wait timeout plus execution; sheds keep the queue finite instead of letting latency collapse",
		},
	}
	t.Rows = append(t.Rows, []string{
		"(calibration)", "closed-loop",
		fmt.Sprintf("%.0f", st.capacity), fmt.Sprintf("%.0f", st.capacity),
		"0", "0",
		st.calP50.Round(10 * time.Microsecond).String(),
		st.calP99.Round(10 * time.Microsecond).String(),
	})
	secs := st.dur.Seconds()
	for _, tn := range st.tenants {
		t.Rows = append(t.Rows, []string{
			tn.name, tn.class,
			fmt.Sprintf("%.0f", float64(tn.offered)/secs),
			fmt.Sprintf("%.0f", float64(tn.admitted)/secs),
			fmt.Sprint(tn.shed), fmt.Sprint(tn.dropped),
			e19Percentile(tn.lats, 0.50).Round(10 * time.Microsecond).String(),
			e19Percentile(tn.lats, 0.99).Round(10 * time.Microsecond).String(),
		})
	}
	var allLats []time.Duration
	var offered, admitted, shed, dropped int64
	for _, tn := range st.tenants {
		offered += tn.offered
		admitted += tn.admitted
		shed += tn.shed
		dropped += tn.dropped
		allLats = append(allLats, tn.lats...)
	}
	t.Rows = append(t.Rows, []string{
		"(all)", "",
		fmt.Sprintf("%.0f", float64(offered)/secs),
		fmt.Sprintf("%.0f", float64(admitted)/secs),
		fmt.Sprint(shed), fmt.Sprint(dropped),
		e19Percentile(allLats, 0.50).Round(10 * time.Microsecond).String(),
		e19Percentile(allLats, 0.99).Round(10 * time.Microsecond).String(),
	})
	return t, nil
}
