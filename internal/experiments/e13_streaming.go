package experiments

import (
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fragment"
	"repro/internal/server"
	"repro/internal/value"
	"repro/internal/wire"
)

// E13Streaming measures what chunked result streaming buys on large
// scans: time-to-first-tuple (the paper's pipelined tuple flow between
// One-Fragment Managers, extended across the TCP front-end) and the
// peak frame size a client must buffer.
//
// The same full-table SELECT is delivered two ways:
//
//  1. materialized — one Result frame holding the whole relation: the
//     client sees nothing until the last fragment has been scanned,
//     concatenated and encoded, and the frame grows with the result
//     (failing outright past MaxFrame);
//  2. streamed — ResultHead / RowChunk* / ResultEnd: the first chunk
//     ships while later fragments are still scanning, and no frame
//     exceeds the chunk budget.
//
// A second pair of rows runs against a server whose MaxFrame is far
// smaller than the result to show the cap being lifted: materialized
// delivery refuses the statement, streaming completes it.
func E13Streaming(quick bool) (*Table, error) {
	rows := 80000
	numPEs := 64
	frags := 8
	if quick {
		rows = 16000
		numPEs = 16
	}

	eng, err := core.New(core.Config{NumPEs: numPEs})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	schema := value.MustSchema("id", "INT", "payload", "VARCHAR")
	if err := eng.CreateTable("big", schema,
		&fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: frags}, []int{0}); err != nil {
		return nil, err
	}
	pad := strings.Repeat("x", 64)
	tuples := make([]value.Tuple, rows)
	encoded := 0
	for i := range tuples {
		tuples[i] = value.NewTuple(value.NewInt(int64(i)), value.NewString(pad))
		if i == 0 {
			encoded = len(value.AppendTuple(nil, tuples[i]))
		}
	}
	encoded *= rows
	if err := eng.LoadTable("big", tuples); err != nil {
		return nil, err
	}

	t := &Table{
		ID: "E13",
		Title: fmt.Sprintf("chunked result streaming, SELECT * over %d rows (~%d KiB encoded) across %d fragments (%d PEs)",
			rows, encoded>>10, frags, numPEs),
		Header: []string{"mode", "rows", "first tuple", "total", "peak frame"},
		Notes: []string{
			"first tuple: wall time until the client can read the first row; total: until the result is fully drained",
			"peak frame: largest wire frame the client had to accept — streaming holds it near the chunk budget",
			"the small-MaxFrame rows show streaming lifting the materialized result-size cap",
		},
	}

	sql := `SELECT * FROM big`
	addRun := func(mode string, r e13Run) {
		if r.err != nil {
			t.AddRow(mode, "-", "-", "-", fmt.Sprintf("fails: %v", r.err))
			return
		}
		t.AddRow(mode, r.rows,
			r.ttft.Round(time.Microsecond).String(),
			r.total.Round(time.Microsecond).String(),
			fmt.Sprintf("%d KiB", r.peak>>10))
	}

	// Default frame limit: both modes succeed, streaming wins on TTFT
	// and peak frame.
	if err := withE13Server(eng, 0, func(addr string) {
		addRun("materialized (one Result frame)", e13Materialized(addr, sql, rows))
		addRun("streamed (default chunks)", e13Streamed(addr, sql, 0, rows))
		addRun("streamed (64 KiB chunks)", e13Streamed(addr, sql, 64<<10, rows))
	}); err != nil {
		return nil, err
	}

	// Frame limit well under the encoded result: only streaming survives.
	smallFrame := 256 << 10
	if encoded <= smallFrame {
		smallFrame = encoded / 4
	}
	if err := withE13Server(eng, smallFrame, func(addr string) {
		addRun(fmt.Sprintf("materialized, MaxFrame %d KiB", smallFrame>>10), e13Materialized(addr, sql, rows))
		addRun(fmt.Sprintf("streamed, MaxFrame %d KiB", smallFrame>>10), e13Streamed(addr, sql, 0, rows))
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// withE13Server runs fn against a fresh server over the shared engine.
func withE13Server(eng *core.Engine, maxFrame int, fn func(addr string)) error {
	srv, err := server.New(server.Config{Engine: eng, MaxConns: 16, MaxFrame: maxFrame})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveDone := make(chan struct{})
	go func() { srv.Serve(l); close(serveDone) }()
	defer func() { srv.Close(); <-serveDone }()
	fn(l.Addr().String())
	return nil
}

// e13Run is one delivery measurement.
type e13Run struct {
	ttft  time.Duration
	total time.Duration
	peak  int
	rows  int
	err   error
}

// e13Materialized times single-frame delivery: the first tuple is
// available only when the whole result has arrived.
func e13Materialized(addr, sql string, want int) e13Run {
	c, err := client.Dial(addr, client.Options{MaxFrame: 64 << 20})
	if err != nil {
		return e13Run{err: err}
	}
	defer c.Close()
	start := time.Now()
	res, err := c.Exec(sql)
	took := time.Since(start)
	if err != nil {
		return e13Run{err: err}
	}
	if res.Rel == nil || res.Rel.Len() != want {
		return e13Run{err: fmt.Errorf("materialized run returned %v rows, want %d", res.Rel, want)}
	}
	return e13Run{ttft: took, total: took, peak: c.MaxFrameObserved(), rows: res.Rel.Len()}
}

// e13Streamed times chunked delivery: first tuple at the first chunk,
// total when the stream is drained.
func e13Streamed(addr, sql string, chunkBytes, want int) e13Run {
	c, err := client.Dial(addr, client.Options{MaxFrame: 64 << 20, ChunkBytes: chunkBytes})
	if err != nil {
		return e13Run{err: err}
	}
	defer c.Close()
	start := time.Now()
	rows, err := c.QueryStream(sql)
	if err != nil {
		return e13Run{err: err}
	}
	defer rows.Close()
	var ttft time.Duration
	n := 0
	for rows.Next() {
		if n == 0 {
			ttft = time.Since(start)
		}
		n++
	}
	total := time.Since(start)
	if err := rows.Err(); err != nil {
		return e13Run{err: err}
	}
	if n != want {
		return e13Run{err: fmt.Errorf("streamed run returned %d rows, want %d", n, want)}
	}
	var end *wire.ResultEnd
	if end = rows.End(); end == nil || end.Rows != int64(n) {
		return e13Run{err: fmt.Errorf("stream end reports %v, want %d rows", end, n)}
	}
	return e13Run{ttft: ttft, total: total, peak: c.MaxFrameObserved(), rows: n}
}
