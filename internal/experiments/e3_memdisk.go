package experiments

import (
	"fmt"
	"time"

	"repro/internal/machine"
	"repro/internal/storage"
	"repro/internal/value"
)

// E3MainMemoryVsDisk quantifies the paper's founding bet (§2.1): "a very
// large main-memory as primary storage". The same selection scan runs
// against a main-memory fragment (CPU cost only) and against the same
// data laid out in 4 KB pages on a 1988 disk (24 ms positioning, 1 MB/s).
func E3MainMemoryVsDisk(quick bool) (*Table, error) {
	sizes := []int{1000, 10000, 50000}
	if quick {
		sizes = []int{1000, 10000}
	}
	cost := machine.DefaultCostModel()
	disk := machine.DefaultDiskModel()

	t := &Table{
		ID:     "E3",
		Title:  "main-memory vs disk-resident scan (simulated 1988 hardware)",
		Header: []string{"rows", "bytes", "memory scan", "disk scan", "disk/memory ratio"},
	}
	for _, n := range sizes {
		tuples := genEmployees(n, 11)
		pf, err := storage.NewPageFile(value.MustSchema("id", "INT", "dept", "VARCHAR", "salary", "INT"), 0)
		if err != nil {
			return nil, err
		}
		if err := pf.AppendAll(tuples); err != nil {
			return nil, err
		}
		// Memory path: compiled predicate over resident tuples.
		memTime := cost.ScanCost(n, true)
		// Disk path: sequential page reads + the same CPU work.
		var diskTime time.Duration
		diskTime += disk.SequentialRead(pf.Bytes())
		diskTime += cost.ScanCost(n, true)
		ratio := float64(diskTime) / float64(memTime)
		t.AddRow(n, pf.Bytes(),
			memTime.Round(time.Microsecond).String(),
			diskTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", ratio))
	}
	t.Notes = append(t.Notes,
		"even a purely sequential disk layout costs an order of magnitude more than memory residency; random access would be far worse",
		"this gap is why PRISMA keeps base fragments entirely in the PEs' 16 MB memories")
	return t, nil
}
