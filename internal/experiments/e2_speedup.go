package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fragment"
	"repro/internal/value"
)

// E2ParallelSpeedup reproduces the core architectural claim (§2.1/§2.2):
// response time improves with fragment-level parallelism. One relation
// is fragmented over 1..64 OFMs on a 64-PE machine and the same
// filter + group-by query runs at each degree; simulated response time
// and speedup versus one fragment are reported.
func E2ParallelSpeedup(quick bool) (*Table, error) {
	rows := 20000
	degrees := []int{1, 2, 4, 8, 16, 32, 64}
	if quick {
		rows = 4000
		degrees = []int{1, 4, 16}
	}
	tuples := genEmployees(rows, 7)

	t := &Table{
		ID:     "E2",
		Title:  fmt.Sprintf("parallel query speedup, %d-row relation, SELECT+GROUP BY over N fragments (64 PEs)", rows),
		Header: []string{"fragments", "sim response", "speedup", "wall time"},
	}
	var base time.Duration
	for _, n := range degrees {
		eng, err := core.New(core.Config{NumPEs: 64})
		if err != nil {
			return nil, err
		}
		schema := value.MustSchema("id", "INT", "dept", "VARCHAR", "salary", "INT")
		scheme := &fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: n}
		if n == 1 {
			scheme = &fragment.Scheme{Strategy: fragment.Single, N: 1}
		}
		if err := eng.CreateTable("emp", schema, scheme, []int{0}); err != nil {
			eng.Close()
			return nil, err
		}
		if err := eng.LoadTable("emp", tuples); err != nil {
			eng.Close()
			return nil, err
		}
		s := eng.NewSession()
		query := `SELECT dept, COUNT(*) AS n, AVG(salary) AS mean FROM emp WHERE salary > 10000 GROUP BY dept`
		// Warm the OFM expression-compiler caches: steady-state response
		// time is what the speedup claim is about.
		if _, err := s.Exec(query); err != nil {
			eng.Close()
			return nil, err
		}
		eng.Machine().ResetClocks()
		wallStart := time.Now()
		res, err := s.Exec(query)
		if err != nil {
			eng.Close()
			return nil, err
		}
		wall := time.Since(wallStart)
		sim := eng.Machine().MaxClock()
		_ = res
		if n == degrees[0] {
			base = sim
		}
		speedup := float64(base) / float64(sim)
		t.AddRow(n, sim.Round(time.Microsecond).String(), speedup, wall.Round(time.Microsecond).String())
		eng.Close()
	}
	t.Notes = append(t.Notes,
		"speedup is near-linear until coordination and result-merge costs dominate (Amdahl tail)",
		"simulated time uses the 1988 cost model: 2 MIPS PEs, 10 Mbit/s links")
	return t, nil
}
