package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/fragment"
	"repro/internal/optimizer"
	"repro/internal/value"
)

// E9OptimizerAblation toggles the knowledge base's rule groups (§2.4)
// and measures simulated response time of a selective two-table join
// with aggregation — the query shape every rule group contributes to.
func E9OptimizerAblation(quick bool) (*Table, error) {
	rows := 6000
	if quick {
		rows = 1500
	}
	configs := []struct {
		name string
		opts optimizer.Options
	}{
		{"no rules", optimizer.Options{}},
		{"+pushdown", optimizer.Options{Pushdown: true}},
		{"+join order", optimizer.Options{Pushdown: true, JoinOrder: true}},
		{"+parallelism", optimizer.Options{Pushdown: true, JoinOrder: true, Parallel: true}},
		{"all rules (+CSE)", optimizer.AllRules()},
	}
	empTuples := genEmployees(rows, 31)
	deptNames := []string{"eng", "ops", "hr", "sales", "legal", "mkt", "fin", "it"}
	var deptTuples []value.Tuple
	for i, d := range deptNames {
		deptTuples = append(deptTuples, value.NewTuple(value.NewString(d), value.NewInt(int64(1000*(i+1)))))
	}
	empSchema := value.MustSchema("id", "INT", "dept", "VARCHAR", "salary", "INT")
	deptSchema := value.MustSchema("name", "VARCHAR", "budget", "INT")
	query := `SELECT d.name, COUNT(*) AS n
		FROM emp e JOIN dept d ON e.dept = d.name
		WHERE e.salary > 80000 AND d.budget > 2000
		GROUP BY d.name`

	t := &Table{
		ID:     "E9",
		Title:  "knowledge-based optimizer ablation (filtered join + aggregation)",
		Header: []string{"rule set", "sim response", "vs no rules"},
	}
	var base time.Duration
	for _, cfg := range configs {
		opts := cfg.opts
		eng, err := core.New(core.Config{NumPEs: 64, Optimizer: &opts})
		if err != nil {
			return nil, err
		}
		if err := eng.CreateTable("emp", empSchema,
			&fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: 8}, []int{0}); err != nil {
			eng.Close()
			return nil, err
		}
		if err := eng.CreateTable("dept", deptSchema, nil, []int{0}); err != nil {
			eng.Close()
			return nil, err
		}
		if err := eng.LoadTable("emp", empTuples); err != nil {
			eng.Close()
			return nil, err
		}
		if err := eng.LoadTable("dept", deptTuples); err != nil {
			eng.Close()
			return nil, err
		}
		s := eng.NewSession()
		if _, err := s.Exec(query); err != nil { // warm compiler caches
			eng.Close()
			return nil, err
		}
		eng.Machine().ResetClocks()
		if _, err := s.Exec(query); err != nil {
			eng.Close()
			return nil, err
		}
		sim := eng.Machine().MaxClock()
		if cfg.name == configs[0].name {
			base = sim
		}
		speedup := float64(base) / float64(sim)
		t.AddRow(cfg.name, sim.Round(time.Microsecond).String(), speedup)
		eng.Close()
	}
	t.Notes = append(t.Notes,
		"pushdown filters at the fragments before data moves; join order builds the hash table on the small side",
		"the parallel rules spread the join and aggregate over the fragment PEs")
	return t, nil
}
