package experiments

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fragment"
	"repro/internal/server"
	"repro/internal/value"
)

// E14PipelinedThroughput measures statement pipelining over TCP: the
// PR-2 baselines showed point queries ~5x faster in-process than over
// the wire, because a request/reply protocol pays one loopback round
// trip — two syscalls each way — per statement. With pipelining a
// client ships a window of statements in one write and the server
// coalesces the window's replies into (ideally) one flush, so the
// round-trip cost amortizes across the window.
//
// The grid is pipeline depth d ∈ {1,4,16,64} × N ∈ {1,4,16} clients,
// all running E11/E12-style point SELECTs on the primary key. Depth 1
// is the unpipelined baseline (a window of one is exactly the old
// round trip). Reported per row: statements/sec, p50/p99 *window*
// latency (what a caller awaiting that window observes), and
// allocations per statement across client and server (both live in
// this process), the metric the frame-buffer pooling targets.
func E14PipelinedThroughput(quick bool) (*Table, error) {
	rows := 4000
	stmtsPer := 768
	depths := []int{1, 4, 16, 64}
	clients := []int{1, 4, 16}
	numPEs := 64
	if quick {
		rows = 1000
		stmtsPer = 192
		numPEs = 16
	}

	eng, err := core.New(core.Config{NumPEs: numPEs})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	schema := value.MustSchema("id", "INT", "region", "VARCHAR", "balance", "INT")
	if err := eng.CreateTable("acct", schema,
		&fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: 8}, []int{0}); err != nil {
		return nil, err
	}
	regions := []string{"eu", "us", "apac", "latam"}
	tuples := make([]value.Tuple, rows)
	for i := range tuples {
		tuples[i] = value.NewTuple(
			value.NewInt(int64(i)),
			value.NewString(regions[i%len(regions)]),
			value.NewInt(1000),
		)
	}
	if err := eng.LoadTable("acct", tuples); err != nil {
		return nil, err
	}

	srv, err := server.New(server.Config{Engine: eng, MaxConns: 64})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan struct{})
	go func() { srv.Serve(l); close(serveDone) }()
	defer func() { srv.Close(); <-serveDone }()
	addr := l.Addr().String()

	t := &Table{
		ID: "E14",
		Title: fmt.Sprintf("pipelined point queries over TCP, %d statements/client on a %d-row relation over 8 fragments (%d PEs)",
			stmtsPer, rows, numPEs),
		Header: []string{"clients", "depth", "statements", "wall time", "stmts/sec", "p50 window", "p99 window", "allocs/op"},
		Notes: []string{
			"workload: SELECT * FROM acct WHERE id = k point queries; depth = statements per pipelined window (1 = plain round trips)",
			"window latency is the client-observed time to ship a window and collect all its replies",
			"allocs/op counts mallocs per statement across client and server (same process)",
		},
	}

	for _, nc := range clients {
		for _, depth := range depths {
			lats := make([][]time.Duration, nc)
			total := 0
			errCh := make(chan error, nc)
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			var wg sync.WaitGroup
			start := time.Now()
			for c := 0; c < nc; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					ls, err := runE14Client(addr, c, nc, depth, rows, stmtsPer)
					if err != nil {
						errCh <- fmt.Errorf("client %d/%d depth %d: %w", c, nc, depth, err)
						return
					}
					lats[c] = ls
				}(c)
			}
			wg.Wait()
			wall := time.Since(start)
			runtime.ReadMemStats(&m1)
			select {
			case err := <-errCh:
				return nil, err
			default:
			}
			var all []time.Duration
			for _, ls := range lats {
				all = append(all, ls...)
				total += len(ls) // one latency sample per window
			}
			stmts := nc * stmtsPer
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			t.AddRow(
				nc,
				depth,
				stmts,
				wall.Round(time.Millisecond).String(),
				float64(stmts)/wall.Seconds(),
				percentile(all, 0.50).Round(time.Microsecond).String(),
				percentile(all, 0.99).Round(time.Microsecond).String(),
				fmt.Sprintf("%.0f", float64(m1.Mallocs-m0.Mallocs)/float64(stmts)),
			)
		}
	}
	return t, nil
}

// runE14Client opens one connection and runs its statements in
// pipelined windows of the given depth, returning one latency sample
// per window.
func runE14Client(addr string, id, nc, depth, rows, stmts int) ([]time.Duration, error) {
	c, err := client.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	r := rand.New(rand.NewSource(int64(id)*6151 + int64(nc*depth)))
	lats := make([]time.Duration, 0, stmts/depth+1)
	p := c.Pipeline()
	for done := 0; done < stmts; {
		n := depth
		if rest := stmts - done; n > rest {
			n = rest
		}
		keys := make([]int, n)
		for i := 0; i < n; i++ {
			keys[i] = r.Intn(rows)
			p.Exec(fmt.Sprintf(`SELECT * FROM acct WHERE id = %d`, keys[i]))
		}
		start := time.Now()
		results, err := p.Run()
		if err != nil {
			return nil, err
		}
		lats = append(lats, time.Since(start))
		for i, res := range results {
			if res.Err != nil {
				return nil, res.Err
			}
			if res.Res.Rel == nil || res.Res.Rel.Len() != 1 {
				return nil, fmt.Errorf("point query for id %d returned %v", keys[i], res.Res.Rel)
			}
			if got := res.Res.Rel.Tuples[0][0].Int(); got != int64(keys[i]) {
				return nil, fmt.Errorf("window reply %d carries id %d, want %d (ordering broken)", i, got, keys[i])
			}
		}
		done += n
	}
	return lats, nil
}
