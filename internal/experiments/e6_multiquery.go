package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fragment"
	"repro/internal/value"
)

// E6MultiQueryThroughput reproduces §2.2's inter-query parallelism
// claim: "evaluation of several queries and updates can be done in
// parallel". N concurrent sessions each run a mix of read queries
// against the same fragmented relation; total throughput versus N is
// reported.
func E6MultiQueryThroughput(quick bool) (*Table, error) {
	rows := 8000
	queriesPer := 12
	clients := []int{1, 2, 4, 8, 16}
	if quick {
		rows = 2000
		queriesPer = 4
		clients = []int{1, 4}
	}
	eng, err := core.New(core.Config{NumPEs: 64})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	schema := value.MustSchema("id", "INT", "dept", "VARCHAR", "salary", "INT")
	if err := eng.CreateTable("emp", schema,
		&fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: 16}, []int{0}); err != nil {
		return nil, err
	}
	if err := eng.LoadTable("emp", genEmployees(rows, 23)); err != nil {
		return nil, err
	}
	queries := []string{
		`SELECT COUNT(*) AS n FROM emp WHERE salary > 50000`,
		`SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept`,
		`SELECT id, salary FROM emp WHERE id = 100`,
		`SELECT MAX(salary) AS hi FROM emp WHERE dept = 'eng'`,
	}

	t := &Table{
		ID:     "E6",
		Title:  fmt.Sprintf("multi-query throughput, %d-row relation over 16 fragments (64 PEs)", rows),
		Header: []string{"concurrent sessions", "total queries", "wall time", "queries/sec", "scale vs 1 client"},
	}
	var base float64
	for _, nc := range clients {
		var wg sync.WaitGroup
		errCh := make(chan error, nc)
		start := time.Now()
		for c := 0; c < nc; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				s := eng.NewSession()
				defer s.Close()
				for q := 0; q < queriesPer; q++ {
					if _, err := s.Exec(queries[(c+q)%len(queries)]); err != nil {
						errCh <- err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			return nil, err
		}
		wall := time.Since(start)
		qps := float64(nc*queriesPer) / wall.Seconds()
		if nc == clients[0] {
			base = qps
		}
		t.AddRow(nc, nc*queriesPer, wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", qps), fmt.Sprintf("%.1fx", qps/base))
	}
	t.Notes = append(t.Notes,
		"per-query component instances (sessions) run concurrently; shared-lock reads do not conflict",
		"scaling flattens when all host cores or all fragment processes are busy")
	return t, nil
}
