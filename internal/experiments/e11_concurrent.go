package experiments

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fragment"
	"repro/internal/server"
	"repro/internal/value"
)

// E11ConcurrentClients measures the network front-end: N client
// goroutines connect to prisma-serve's server over a real TCP socket and
// run a mixed OLTP/analytics workload (point SELECTs, single-row
// UPDATEs, INSERT+DELETE pairs, GROUP BY scans and explicit
// BEGIN..COMMIT transfers). The paper's architecture is multi-user —
// each query gets its own coordinator instance, "possibly running at its
// own processor" (§2.2) — and this experiment is the throughput baseline
// for it: statements/sec plus p50/p99 client-observed latency per client
// count. Unlike E6 it pays the full wire cost: framing, relation
// encoding and TCP round trips.
func E11ConcurrentClients(quick bool) (*Table, error) {
	rows := 4000
	stmtsPer := 200
	clients := []int{1, 4, 16}
	numPEs := 64
	if quick {
		rows = 1000
		stmtsPer = 60
		numPEs = 16
	}

	eng, err := core.New(core.Config{NumPEs: numPEs})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	schema := value.MustSchema("id", "INT", "region", "VARCHAR", "balance", "INT")
	if err := eng.CreateTable("acct", schema,
		&fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: 8}, []int{0}); err != nil {
		return nil, err
	}
	regions := []string{"eu", "us", "apac", "latam"}
	tuples := make([]value.Tuple, rows)
	for i := range tuples {
		tuples[i] = value.NewTuple(
			value.NewInt(int64(i)),
			value.NewString(regions[i%len(regions)]),
			value.NewInt(1000),
		)
	}
	if err := eng.LoadTable("acct", tuples); err != nil {
		return nil, err
	}

	srv, err := server.New(server.Config{Engine: eng, MaxConns: 64})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan struct{})
	go func() { srv.Serve(l); close(serveDone) }()
	defer func() { srv.Close(); <-serveDone }()
	addr := l.Addr().String()

	t := &Table{
		ID: "E11",
		Title: fmt.Sprintf("concurrent clients over TCP, %d-row relation over 8 fragments (%d PEs)",
			rows, numPEs),
		Header: []string{"clients", "statements", "wall time", "stmts/sec", "p50 latency", "p99 latency", "allocs/op"},
		Notes: []string{
			"mixed workload per statement: 50% point SELECT, 20% UPDATE, 10% INSERT+DELETE, 10% GROUP BY, 10% BEGIN/transfer/COMMIT",
			"latency is client-observed round-trip over the wire protocol (length-prefixed frames, encoded relations)",
			"allocs/op counts mallocs per statement across client and server (same process)",
		},
	}

	for _, nc := range clients {
		lats := make([][]time.Duration, nc)
		var wg sync.WaitGroup
		errCh := make(chan error, nc)
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for c := 0; c < nc; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				ls, err := runE11Client(addr, c, nc, rows, stmtsPer)
				if err != nil {
					errCh <- fmt.Errorf("client %d/%d: %w", c, nc, err)
					return
				}
				lats[c] = ls
			}(c)
		}
		wg.Wait()
		wall := time.Since(start)
		runtime.ReadMemStats(&m1)
		select {
		case err := <-errCh:
			return nil, err
		default:
		}
		var all []time.Duration
		for _, ls := range lats {
			all = append(all, ls...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		total := len(all)
		t.AddRow(
			nc,
			total,
			wall.Round(time.Millisecond).String(),
			float64(total)/wall.Seconds(),
			percentile(all, 0.50).Round(time.Microsecond).String(),
			percentile(all, 0.99).Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(m1.Mallocs-m0.Mallocs)/float64(max(total, 1))),
		)
	}
	return t, nil
}

// runE11Client opens one connection and runs the statement mix,
// returning the per-statement round-trip latencies. A statement is one
// logical unit: the explicit-transaction case counts its BEGIN, two
// UPDATEs and COMMIT as one.
func runE11Client(addr string, id, nc, rows, stmts int) ([]time.Duration, error) {
	c, err := client.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	r := rand.New(rand.NewSource(int64(id)*7919 + int64(nc)))
	lats := make([]time.Duration, 0, stmts)
	// Each client owns a disjoint key slab for INSERT/DELETE churn so the
	// workload never depends on cross-client ordering.
	scratchBase := rows + (id+1)*1_000_000
	for i := 0; i < stmts; i++ {
		k := r.Intn(rows)
		start := time.Now()
		switch p := r.Intn(10); {
		case p < 5: // point SELECT on the primary key
			_, err = c.Query(fmt.Sprintf(`SELECT * FROM acct WHERE id = %d`, k))
		case p < 7: // single-row UPDATE
			_, err = c.Exec(fmt.Sprintf(`UPDATE acct SET balance = balance + %d WHERE id = %d`, r.Intn(20)-10, k))
		case p < 8: // INSERT then DELETE of a private key
			key := scratchBase + i
			if _, err = c.Exec(fmt.Sprintf(`INSERT INTO acct VALUES (%d, 'tmp', 1)`, key)); err == nil {
				_, err = c.Exec(fmt.Sprintf(`DELETE FROM acct WHERE id = %d`, key))
			}
		case p < 9: // analytics scan
			_, err = c.Query(`SELECT region, COUNT(*) AS n, SUM(balance) AS total FROM acct GROUP BY region`)
		default: // explicit transaction: transfer between two accounts
			a, b := r.Intn(rows), r.Intn(rows)
			if err = c.Begin(); err == nil {
				if _, err = c.Exec(fmt.Sprintf(`UPDATE acct SET balance = balance - 1 WHERE id = %d`, a)); err == nil {
					_, err = c.Exec(fmt.Sprintf(`UPDATE acct SET balance = balance + 1 WHERE id = %d`, b))
				}
				if err == nil {
					err = c.Commit()
				} else if isContention(err) {
					// Deadlock victim: roll back and carry on — aborts are
					// part of a concurrent workload, not a failure.
					c.Rollback()
					err = nil
				}
			}
		}
		if err != nil {
			if isContention(err) {
				err = nil
				continue
			}
			return nil, err
		}
		lats = append(lats, time.Since(start))
	}
	return lats, nil
}

// isContention reports deadlock-victim and write-write-conflict errors
// (first-committer-wins under snapshot isolation), which a concurrent
// workload must tolerate by retrying or moving on.
func isContention(err error) bool {
	if err == nil {
		return false
	}
	msg := err.Error()
	return strings.Contains(msg, "deadlock") || strings.Contains(msg, "abort") ||
		strings.Contains(msg, "write-write conflict")
}

// percentile reads the p-quantile from sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	ix := int(p * float64(len(sorted)-1))
	return sorted[ix]
}
