package experiments

import (
	"fmt"
	"time"

	"repro/internal/simnet"
)

// E1NetworkThroughput reproduces §3.2's simulation claim: "an average
// network throughput of up to 20.000 packets (of 256 bits) per second
// for each processing element simultaneously" on a 64-PE machine with
// four 10 Mbit/s links per PE. It sweeps offered load on each candidate
// topology and binary-searches the sustained saturation throughput.
func E1NetworkThroughput(quick bool) (*Table, error) {
	dur := 40 * time.Millisecond
	if quick {
		dur = 10 * time.Millisecond
	}
	tops := []simnet.Topology{}
	mesh, err := simnet.NewMesh(8, 8, false)
	if err != nil {
		return nil, err
	}
	torus, err := simnet.NewMesh(8, 8, true)
	if err != nil {
		return nil, err
	}
	chordal, err := simnet.NewChordalRing(64, simnet.BestChord(64))
	if err != nil {
		return nil, err
	}
	ring, err := simnet.NewRing(64)
	if err != nil {
		return nil, err
	}
	cube, err := simnet.NewHypercube(6)
	if err != nil {
		return nil, err
	}
	tops = append(tops, ring, mesh, torus, chordal, cube)

	t := &Table{
		ID:    "E1",
		Title: "network throughput, 64 PEs, 10 Mbit/s links, 256-bit packets (paper claim: up to 20k pkts/s/PE)",
		Header: []string{"topology", "degree", "avg hops", "diameter",
			"peak sustained pkts/s/PE", "theoretical bound", "avg latency @peak"},
	}
	for _, top := range tops {
		nw, err := simnet.New(simnet.Config{Topology: top})
		if err != nil {
			return nil, err
		}
		best := nw.SaturationThroughput(dur, 42)
		t.AddRow(
			top.Name(),
			simnet.MaxDegree(top),
			simnet.AvgDistance(top),
			simnet.Diameter(top),
			fmt.Sprintf("%.0f", best.Throughput),
			fmt.Sprintf("%.0f", nw.TheoreticalPeak()),
			best.AvgLatency.Round(time.Microsecond).String(),
		)
	}
	t.Notes = append(t.Notes,
		"the degree-4 candidates (torus, chordal ring) sustain ≈20k pkts/s/PE, matching the paper; the plain ring cannot",
		"the hypercube exceeds the paper's 4-link VLSI budget and is shown as an upper bound")
	return t, nil
}
