// Package experiments implements the reproduction's experiment suite
// E1–E20. The paper is a project overview without numbered tables or
// figures; each experiment regenerates one of its quantitative or
// architectural claims (the doc comment on each experiment function
// names the claim, and the README's "Experiment suite" section lists
// them all). cmd/prisma-bench prints every table; the root
// bench_test.go wraps each experiment as a testing.B benchmark.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/value"
)

// Table is one experiment's printable result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, formatting each cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table aligned.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// genEmployees builds n synthetic employee tuples (id, dept, salary).
func genEmployees(n int, seed int64) []value.Tuple {
	r := rand.New(rand.NewSource(seed))
	depts := []string{"eng", "ops", "hr", "sales", "legal", "mkt", "fin", "it"}
	out := make([]value.Tuple, n)
	for i := range out {
		out[i] = value.NewTuple(
			value.NewInt(int64(i)),
			value.NewString(depts[r.Intn(len(depts))]),
			value.NewInt(r.Int63n(100000)),
		)
	}
	return out
}

// genEdges builds a random graph's edge tuples over n nodes.
func genEdges(nodes, edges int, seed int64) []value.Tuple {
	r := rand.New(rand.NewSource(seed))
	out := make([]value.Tuple, edges)
	for i := range out {
		out[i] = value.Ints(r.Int63n(int64(nodes)), r.Int63n(int64(nodes)))
	}
	return out
}

// chainEdges builds a linear chain 0→1→…→n.
func chainEdges(n int) []value.Tuple {
	out := make([]value.Tuple, n)
	for i := range out {
		out[i] = value.Ints(int64(i), int64(i+1))
	}
	return out
}
