package experiments

import (
	"fmt"
	"time"

	"repro/internal/expr"
	"repro/internal/machine"
	"repro/internal/value"
)

// E4CompiledVsInterpreted measures the OFM expression compiler's payoff
// (§2.5: compilation "avoids the otherwise excessive interpretation
// overhead incurred by a query expression interpreter"). The same
// predicates are evaluated tuple-at-a-time by the interpreter and by the
// compiled kernels; both measured wall time per tuple and the 1988 cost
// model's view are reported.
func E4CompiledVsInterpreted(quick bool) (*Table, error) {
	n := 500000
	if quick {
		n = 50000
	}
	tuples := genEmployees(n, 13)
	schema := value.MustSchema("id", "INT", "dept", "VARCHAR", "salary", "INT")

	preds := []struct {
		name string
		e    func() expr.Expr
	}{
		{"salary > 50000", func() expr.Expr {
			return expr.NewCmp(expr.GT, expr.NewCol("salary"), expr.NewConst(value.NewInt(50000)))
		}},
		{"dept = 'eng' AND salary > 50000", func() expr.Expr {
			return expr.NewAnd(
				expr.NewCmp(expr.EQ, expr.NewCol("dept"), expr.NewConst(value.NewString("eng"))),
				expr.NewCmp(expr.GT, expr.NewCol("salary"), expr.NewConst(value.NewInt(50000))))
		}},
		{"id % 7 = 0 OR salary < 1000", func() expr.Expr {
			return expr.NewOr(
				expr.NewCmp(expr.EQ, expr.NewArith(expr.Mod, expr.NewCol("id"), expr.NewConst(value.NewInt(7))), expr.NewConst(value.NewInt(0))),
				expr.NewCmp(expr.LT, expr.NewCol("salary"), expr.NewConst(value.NewInt(1000))))
		}},
	}

	cost := machine.DefaultCostModel()
	t := &Table{
		ID:    "E4",
		Title: fmt.Sprintf("compiled vs interpreted predicate evaluation, %d tuples", n),
		Header: []string{"predicate", "interpreted ns/tuple", "compiled ns/tuple",
			"measured speedup", "1988 model speedup", "matches"},
	}
	for _, p := range preds {
		interp := p.e()
		if _, err := expr.Bind(interp, schema); err != nil {
			return nil, err
		}
		start := time.Now()
		interpCount := 0
		for _, tp := range tuples {
			v, err := interp.Eval(tp)
			if err != nil {
				return nil, err
			}
			if expr.Truthy(v) {
				interpCount++
			}
		}
		interpTime := time.Since(start)

		pred, err := expr.CompilePredicate(p.e(), schema)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		compCount, err := pred.Count(tuples)
		if err != nil {
			return nil, err
		}
		compTime := time.Since(start)
		if compCount != interpCount {
			return nil, fmt.Errorf("E4: compiled selected %d, interpreted %d", compCount, interpCount)
		}
		modelSpeedup := float64(cost.ScanCost(n, false)) / float64(cost.ScanCost(n, true))
		t.AddRow(
			p.name,
			fmt.Sprintf("%.1f", float64(interpTime.Nanoseconds())/float64(n)),
			fmt.Sprintf("%.1f", float64(compTime.Nanoseconds())/float64(n)),
			fmt.Sprintf("%.1fx", float64(interpTime)/float64(compTime)),
			fmt.Sprintf("%.1fx", modelSpeedup),
			fmt.Sprintf("%d rows", compCount),
		)
	}
	t.Notes = append(t.Notes,
		"the compiled path specializes comparisons on static types and strips per-node dispatch and error plumbing",
		"the 1988 model column is the cost-model ratio used for simulated times (150 vs 15 instructions/tuple)")
	return t, nil
}
