package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fragment"
	"repro/internal/txn"
	"repro/internal/value"
)

// E16SnapshotReads measures the MVCC tentpole claim: snapshot reads
// never block behind writers, so reader throughput stays flat as the
// writer population grows — where the all-2PL baseline's readers
// collapse, serialized behind exclusive fragment locks. The grid runs
// the same mixed workload (full-scan aggregate readers vs single-row
// update writers) against two engines that differ only in
// core.Config.MVCC, at writer counts 1→16. The paper's PRISMA machine
// leans on a locking scheduler (§3.2); this experiment records what the
// snapshot-read redesign buys over it on the identical hardware budget.
func E16SnapshotReads(quick bool) (*Table, error) {
	rows := 4000
	numPEs := 32
	readers := 8
	writerCounts := []int{1, 4, 16}
	cell := 400 * time.Millisecond
	pace := 8 * time.Millisecond
	think := 2 * time.Millisecond
	if quick {
		rows = 1000
		numPEs = 16
		readers = 4
		cell = 250 * time.Millisecond
		pace = 8 * time.Millisecond
	}

	t := &Table{
		ID: "E16",
		Title: fmt.Sprintf("snapshot reads vs 2PL under writer load, %d-row relation over 8 fragments (%d PEs, %d readers)",
			rows, numPEs, readers),
		Header: []string{"mode", "writers", "reads/sec", "read p99", "commits/sec", "aborts"},
		Notes: []string{
			"readers run full-scan aggregates (SUM/COUNT over every fragment); writers run paced two-row transfer transactions holding locks across a client think-time pause",
			"mvcc: reads pin a snapshot and take no locks; 2pl: reads take shared fragment locks and queue behind writers",
			"aborts counts retryable writer conflicts (deadlock victims under 2pl, first-committer-wins under mvcc)",
			"the claim under test: mvcc reads/sec stays flat (±15%) from 1 to 16 writers; 2pl degrades",
		},
	}

	for _, mode := range []struct {
		name string
		mvcc bool
	}{{"mvcc", true}, {"2pl", false}} {
		for _, nw := range writerCounts {
			row, err := runE16Cell(mode.name, mode.mvcc, rows, numPEs, readers, nw, cell, pace, think)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// runE16Cell builds a fresh engine in the given concurrency mode and
// runs readers against nw writers for one wall-clock window. Writers
// are paced (one transaction per pace interval) so the grid offers a
// fixed per-writer load: growing the writer count then grows lock
// pressure proportionally instead of letting one unthrottled loop
// saturate the host's cores, which would measure CPU scheduling rather
// than the locking design. Each transfer holds its exclusive locks
// across a client think-time pause — the interactive-transaction shape
// locking schedulers handle worst: the pause costs no CPU, so any
// reader slowdown as writers grow is pure lock blocking.
func runE16Cell(mode string, mvcc bool, rows, numPEs, readers, nw int, window, pace, think time.Duration) ([]string, error) {
	eng, err := core.New(core.Config{NumPEs: numPEs, MVCC: &mvcc})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	schema := value.MustSchema("id", "INT", "bal", "INT")
	if err := eng.CreateTable("acct", schema,
		&fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: 8}, []int{0}); err != nil {
		return nil, err
	}
	tuples := make([]value.Tuple, rows)
	for i := range tuples {
		tuples[i] = value.Ints(int64(i), 1000)
	}
	if err := eng.LoadTable("acct", tuples); err != nil {
		return nil, err
	}

	var (
		stop    atomic.Bool
		commits atomic.Int64
		aborts  atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		lats    []time.Duration
		readErr error
	)
	fail := func(err error) {
		mu.Lock()
		if readErr == nil {
			readErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}

	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := eng.NewSession()
			defer s.Close()
			r := rand.New(rand.NewSource(int64(w) + 1))
			tick := time.NewTicker(pace)
			defer tick.Stop()
			for !stop.Load() {
				// One transfer transaction: exclusive locks held across
				// both statements, the think-time pause, and the
				// two-phase commit.
				a, b := r.Intn(rows), r.Intn(rows)
				_, err := s.Exec(`BEGIN`)
				if err == nil {
					_, err = s.Exec(fmt.Sprintf(`UPDATE acct SET bal = bal - 1 WHERE id = %d`, a))
				}
				if err == nil {
					time.Sleep(think)
					_, err = s.Exec(fmt.Sprintf(`UPDATE acct SET bal = bal + 1 WHERE id = %d`, b))
				}
				if err == nil {
					_, err = s.Exec(`COMMIT`)
				}
				switch {
				case err == nil:
					commits.Add(1)
				case txn.IsRetryable(err):
					aborts.Add(1)
					if s.InTransaction() {
						s.Exec(`ROLLBACK`)
					}
				default:
					fail(fmt.Errorf("E16 %s writers=%d: writer: %w", mode, nw, err))
					return
				}
				<-tick.C
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			s := eng.NewSession()
			defer s.Close()
			var mine []time.Duration
			for !stop.Load() {
				start := time.Now()
				_, err := s.Query(`SELECT COUNT(*) AS n, SUM(bal) AS total FROM acct`)
				switch {
				case err == nil:
					mine = append(mine, time.Since(start))
				case txn.IsRetryable(err):
					// 2PL deadlock victim: part of the measured cost.
				default:
					fail(fmt.Errorf("E16 %s writers=%d: reader: %w", mode, nw, err))
					return
				}
			}
			mu.Lock()
			lats = append(lats, mine...)
			mu.Unlock()
		}(rd)
	}

	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	if readErr != nil {
		return nil, readErr
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return []string{
		mode,
		fmt.Sprint(nw),
		fmt.Sprintf("%.2f", float64(len(lats))/window.Seconds()),
		percentile(lats, 0.99).Round(time.Microsecond).String(),
		fmt.Sprintf("%.2f", float64(commits.Load())/window.Seconds()),
		fmt.Sprint(aborts.Load()),
	}, nil
}
