package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fragment"
	"repro/internal/optimizer"
	"repro/internal/value"
)

// E15MultiJoinParallelism measures the partitioned dataflow executor on
// the query shape the old executor could not distribute: a 3-table star
// join with grouped aggregation, whose inner join feeds an outer join —
// previously any join over a non-scan child silently degraded to a
// central hash join at the coordinator. The exchange-based executor
// repartitions intermediates across the PEs (plan.Exchange nodes),
// joins and pre-aggregates the partitions where they live, and gathers
// only the final groups; the central fallback collects everything at
// one PE. Reported per machine size: wall time, simulated response time
// (max PE clock), total simulated PE work, and bytes shipped between
// PEs. The experiment fails if the exchange plan still contains a
// central join — EXPLAIN must prove the tree runs partitioned.
func E15MultiJoinParallelism(quick bool) (*Table, error) {
	factRows, dimRows := 24000, 3000
	if quick {
		factRows, dimRows = 6000, 2200
	}
	pes := []int{4, 16, 64}

	factSchema := value.MustSchema("id", "INT", "a", "INT", "b", "INT", "amt", "INT")
	dim1Schema := value.MustSchema("id", "INT", "w", "INT")
	dim2Schema := value.MustSchema("id", "INT", "cat", "VARCHAR")
	cats := []string{"red", "green", "blue", "gray", "teal", "pink", "cyan", "gold"}
	fact := make([]value.Tuple, factRows)
	for i := range fact {
		fact[i] = value.NewTuple(
			value.NewInt(int64(i)), value.NewInt(int64(i%dimRows)),
			value.NewInt(int64((i*13)%dimRows)), value.NewInt(int64(i%97)))
	}
	dim1 := make([]value.Tuple, dimRows)
	dim2 := make([]value.Tuple, dimRows)
	for i := range dim1 {
		dim1[i] = value.NewTuple(value.NewInt(int64(i)), value.NewInt(int64(i%7)))
		dim2[i] = value.NewTuple(value.NewInt(int64(i)), value.NewString(cats[i%len(cats)]))
	}

	query := `SELECT d2.cat, COUNT(*) AS n, SUM(f.amt) AS total
		FROM fact f JOIN dim1 d1 ON f.a = d1.id JOIN dim2 d2 ON f.b = d2.id
		GROUP BY d2.cat`

	modes := []struct {
		name string
		opts optimizer.Options
	}{
		{"central", optimizer.Options{Pushdown: true, JoinOrder: true, CSE: true, PointProbe: true}},
		{"exchange", optimizer.AllRules()},
	}

	t := &Table{
		ID: "E15",
		Title: fmt.Sprintf("multi-join parallelism: 3-table star join + GROUP BY (%d fact rows, %d per dim)",
			factRows, dimRows),
		Header: []string{"PEs", "executor", "rows", "wall", "sim response", "total PE work", "bytes exchanged", "sim speedup"},
		Notes: []string{
			"central: every join over a non-scan child collects at the coordinator (the pre-exchange executor's fallback)",
			"exchange: plan.Exchange repartitions intermediates; joins, filters and partial aggregation run per partition",
			"sim speedup = central sim response / exchange sim response on the same machine size",
		},
	}

	for _, numPE := range pes {
		var centralSim time.Duration
		for _, mode := range modes {
			opts := mode.opts
			eng, err := core.New(core.Config{NumPEs: numPE, Optimizer: &opts})
			if err != nil {
				return nil, err
			}
			factFrags := numPE
			if factFrags > 16 {
				factFrags = 16
			}
			dimFrags := numPE
			if dimFrags > 8 {
				dimFrags = 8
			}
			load := func(name string, schema *value.Schema, n int, tuples []value.Tuple) error {
				if err := eng.CreateTable(name, schema,
					&fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: n}, []int{0}); err != nil {
					return err
				}
				return eng.LoadTable(name, tuples)
			}
			if err := load("fact", factSchema, factFrags, fact); err != nil {
				eng.Close()
				return nil, err
			}
			if err := load("dim1", dim1Schema, dimFrags, dim1); err != nil {
				eng.Close()
				return nil, err
			}
			if err := load("dim2", dim2Schema, dimFrags, dim2); err != nil {
				eng.Close()
				return nil, err
			}
			s := eng.NewSession()
			// The exchange plan must prove itself partitioned: no
			// central join anywhere in the tree.
			plan, err := s.Query("EXPLAIN " + query)
			if err != nil {
				eng.Close()
				return nil, err
			}
			var planStr strings.Builder
			for _, row := range plan.Tuples {
				planStr.WriteString(row[0].Str())
				planStr.WriteByte('\n')
			}
			if mode.name == "exchange" {
				if strings.Contains(planStr.String(), "method=central") || !strings.Contains(planStr.String(), "Exchange(") {
					eng.Close()
					return nil, fmt.Errorf("E15: exchange plan is not fully partitioned at %d PEs:\n%s", numPE, planStr.String())
				}
			}
			if _, err := s.Exec(query); err != nil { // warm compile + plan caches
				eng.Close()
				return nil, err
			}
			eng.Machine().ResetClocks()
			bytes0 := eng.Machine().NetBytes()
			wallStart := time.Now()
			res, err := s.Exec(query)
			if err != nil {
				eng.Close()
				return nil, err
			}
			wall := time.Since(wallStart)
			sim := eng.Machine().MaxClock()
			work := eng.Machine().TotalClock()
			bytes := eng.Machine().NetBytes() - bytes0
			speedup := "-"
			if mode.name == "central" {
				centralSim = sim
			} else if sim > 0 {
				speedup = fmt.Sprintf("%.2f", float64(centralSim)/float64(sim))
			}
			t.AddRow(numPE, mode.name, res.Rel.Len(),
				wall.Round(10*time.Microsecond).String(),
				sim.Round(time.Microsecond).String(),
				work.Round(time.Microsecond).String(),
				fmt.Sprintf("%d", bytes),
				speedup)
			eng.Close()
		}
	}
	return t, nil
}
