package experiments

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fragment"
	"repro/internal/optimizer"
	"repro/internal/server"
	"repro/internal/value"
)

// E12PreparedPointQuery measures what the prepared-statement pipeline
// buys on the E11-style point-query workload. The same workload — N
// clients over TCP, each running point SELECTs on the primary key — is
// executed four ways:
//
//  1. unprepared against the PR-1 engine configuration (no plan cache,
//     no index-probe rule): every statement re-lexes, re-parses and
//     re-optimizes, the cost ROADMAP.md identifies as dominating E11
//     point-query latency;
//  2. unprepared against the default engine: the plan cache normalizes
//     the text, lifts the literal and reuses the optimized plan;
//  3. prepared (Prepare once, Bind-Execute per statement) with the
//     index-probe rule disabled: parse/plan amortized, execution still
//     Scan→Select;
//  4. prepared with the full pipeline: the plan is a direct HashIndex
//     probe on the owning fragment.
//
// This is the paper's §2.2 XPRS-style discipline — compile a query once
// into a parallel execution plan, run it many times — measured against
// the interpret-every-time baseline.
func E12PreparedPointQuery(quick bool) (*Table, error) {
	rows := 4000
	queries := 400
	clients := 16
	numPEs := 64
	if quick {
		rows = 1000
		queries = 100
		numPEs = 16
	}

	noProbe := optimizer.AllRules()
	noProbe.PointProbe = false
	off := false

	type mode struct {
		name     string
		planOff  bool
		opts     *optimizer.Options
		prepared bool
	}
	// Each row adds exactly one variable over the previous: plan cache,
	// then prepared execution, then the index-probe rule.
	modes := []mode{
		{"unprepared (PR-1 path)", true, &noProbe, false},
		{"unprepared + plan cache", false, &noProbe, false},
		{"prepared, no index probe", false, &noProbe, true},
		{"prepared + index probe", false, nil, true},
	}

	t := &Table{
		ID: "E12",
		Title: fmt.Sprintf("prepared point queries, %d clients x %d SELECTs on a %d-row relation over 8 fragments (%d PEs)",
			clients, queries, rows, numPEs),
		Header: []string{"transport", "mode", "stmts/sec", "p50 latency", "p99 latency", "speedup", "allocs/op"},
		Notes: []string{
			"workload: SELECT * FROM acct WHERE id = ? on the hash-fragmented primary key",
			"in-process rows isolate the engine pipeline; tcp rows add framing, result encoding and round trips",
			"speedup is statements/sec relative to the unprepared PR-1 configuration on the same transport",
			"allocs/op counts mallocs per statement during the query phase (setup and load excluded)",
		},
	}

	for _, overTCP := range []bool{false, true} {
		transport := "in-process"
		if overTCP {
			transport = "tcp"
		}
		var baseline float64
		for _, m := range modes {
			cfg := core.Config{NumPEs: numPEs, Optimizer: m.opts}
			if m.planOff {
				cfg.PlanCache = &off
			}
			rate, lats, allocs, err := runE12Mode(cfg, overTCP, m.prepared, rows, queries, clients)
			if err != nil {
				return nil, fmt.Errorf("E12 %s/%s: %w", transport, m.name, err)
			}
			if baseline == 0 {
				baseline = rate
			}
			t.AddRow(
				transport,
				m.name,
				rate,
				percentile(lats, 0.50).Round(time.Microsecond).String(),
				percentile(lats, 0.99).Round(time.Microsecond).String(),
				fmt.Sprintf("%.2fx", rate/baseline),
				fmt.Sprintf("%.0f", allocs),
			)
		}
	}
	return t, nil
}

// runE12Mode stands up a fresh engine (and, for the tcp transport, a
// server) with the mode's configuration, loads the relation, and
// hammers it with point queries.
func runE12Mode(cfg core.Config, overTCP, prepared bool, rows, queries, clients int) (float64, []time.Duration, float64, error) {
	eng, err := core.New(cfg)
	if err != nil {
		return 0, nil, 0, err
	}
	defer eng.Close()
	schema := value.MustSchema("id", "INT", "region", "VARCHAR", "balance", "INT")
	if err := eng.CreateTable("acct", schema,
		&fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: 8}, []int{0}); err != nil {
		return 0, nil, 0, err
	}
	regions := []string{"eu", "us", "apac", "latam"}
	tuples := make([]value.Tuple, rows)
	for i := range tuples {
		tuples[i] = value.NewTuple(
			value.NewInt(int64(i)),
			value.NewString(regions[i%len(regions)]),
			value.NewInt(1000),
		)
	}
	if err := eng.LoadTable("acct", tuples); err != nil {
		return 0, nil, 0, err
	}

	addr := ""
	if overTCP {
		srv, err := server.New(server.Config{Engine: eng, MaxConns: 64})
		if err != nil {
			return 0, nil, 0, err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, nil, 0, err
		}
		serveDone := make(chan struct{})
		go func() { srv.Serve(l); close(serveDone) }()
		defer func() { srv.Close(); <-serveDone }()
		addr = l.Addr().String()
	}

	lats := make([][]time.Duration, clients)
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var ls []time.Duration
			var err error
			if overTCP {
				ls, err = runE12Client(addr, prepared, c, rows, queries)
			} else {
				ls, err = runE12Session(eng, prepared, c, rows, queries)
			}
			if err != nil {
				errCh <- err
				return
			}
			lats[c] = ls
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	select {
	case err := <-errCh:
		return 0, nil, 0, err
	default:
	}
	var all []time.Duration
	for _, ls := range lats {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	allocs := float64(m1.Mallocs-m0.Mallocs) / float64(max(len(all), 1))
	return float64(len(all)) / wall.Seconds(), all, allocs, nil
}

// runE12Session runs one in-process session's share of the point
// queries, verifying every lookup finds its row.
func runE12Session(eng *core.Engine, prepared bool, id, rows, queries int) ([]time.Duration, error) {
	sess := eng.NewSession()
	defer sess.Close()
	r := rand.New(rand.NewSource(int64(id)*104729 + 17))
	lats := make([]time.Duration, 0, queries)
	var ps *core.PreparedStmt
	var err error
	if prepared {
		if ps, err = sess.Prepare(`SELECT * FROM acct WHERE id = ?`); err != nil {
			return nil, err
		}
	}
	for i := 0; i < queries; i++ {
		k := r.Intn(rows)
		start := time.Now()
		var rel *value.Relation
		if prepared {
			rel, err = sess.QueryPrepared(ps, []value.Value{value.NewInt(int64(k))})
		} else {
			rel, err = sess.Query(fmt.Sprintf(`SELECT * FROM acct WHERE id = %d`, k))
		}
		if err != nil {
			return nil, err
		}
		lats = append(lats, time.Since(start))
		if rel.Len() != 1 {
			return nil, fmt.Errorf("point query for id %d returned %d rows", k, rel.Len())
		}
	}
	return lats, nil
}

// runE12Client runs one connection's share of the point queries,
// verifying every lookup finds its row.
func runE12Client(addr string, prepared bool, id, rows, queries int) ([]time.Duration, error) {
	c, err := client.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	r := rand.New(rand.NewSource(int64(id)*104729 + 17))
	lats := make([]time.Duration, 0, queries)
	var stmt *client.Stmt
	if prepared {
		if stmt, err = c.Prepare(`SELECT * FROM acct WHERE id = ?`); err != nil {
			return nil, err
		}
		defer stmt.Close()
	}
	for i := 0; i < queries; i++ {
		k := r.Intn(rows)
		start := time.Now()
		var rel *value.Relation
		if prepared {
			rel, err = stmt.Query(k)
		} else {
			rel, err = c.Query(fmt.Sprintf(`SELECT * FROM acct WHERE id = %d`, k))
		}
		if err != nil {
			return nil, err
		}
		lats = append(lats, time.Since(start))
		if rel.Len() != 1 {
			return nil, fmt.Errorf("point query for id %d returned %d rows", k, rel.Len())
		}
	}
	return lats, nil
}
