// History checker: an elle-style consistency harness for the MVCC
// engine. Concurrent register transactions (read-modify-write one key,
// or read every key in one snapshot) run against a live engine while a
// logical event clock brackets each operation; the recorded history is
// then checked — deterministically, with no knowledge of the engine's
// internals — against the snapshot-isolation contract:
//
//   - no lost updates: each key's committed writes form the exact
//     contiguous value sequence 1..n (two overlapping committed
//     read-modify-writes would duplicate or skip a value);
//   - consistent commit-order prefix: a snapshot never sees a write W'
//     while missing a write W that had fully committed before W'
//     started (a torn or future-leaking snapshot shows up as exactly
//     that pattern);
//   - no reads from the future: a snapshot cannot observe a write whose
//     transaction started after the reads completed.
//
// Recency is deliberately NOT checked: the commit clock publishes
// snapshots by watermark (the newest prefix of commit order with no
// commit still in flight), so a snapshot may trail the very latest
// commits — that is the documented consistent-prefix semantics, not a
// violation.
package experiments

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/txn"
)

// HistoryConfig sizes a history run.
type HistoryConfig struct {
	Keys           int // registers (rows)
	Writers        int // concurrent read-modify-write sessions
	OpsPerWriter   int // committed increments each writer must land
	Readers        int // concurrent whole-snapshot reader sessions
	ReadsPerReader int // snapshots each reader takes
}

// WriteOp is one committed read-modify-write: the transaction read
// Val-1 at its snapshot and committed Val. Start brackets the moment
// before the transaction's first read (its snapshot is at least this
// late); End the moment after COMMIT returned.
type WriteOp struct {
	Key   int
	Val   int64
	Start int64
	End   int64
}

// ReadOp is one committed whole-table snapshot: Vals[k] is the value
// observed for key k. Start precedes the transaction's first read; End
// follows its last read.
type ReadOp struct {
	Vals  []int64
	Start int64
	End   int64
}

// History is a recorded run.
type History struct {
	Keys   int
	Writes []WriteOp
	Reads  []ReadOp
}

// historyRetryCap bounds per-op conflict retries; first-committer-wins
// guarantees global progress, so hitting the cap means a livelock bug.
const historyRetryCap = 10_000

// RunHistory drives the workload against an engine whose `reg` table
// (id INT PRIMARY KEY, val INT) holds cfg.Keys rows initialized to 0,
// and returns the recorded history. Retryable aborts (write-write
// conflicts, deadlocks) are rolled back and retried; any other error
// fails the run.
func RunHistory(eng *core.Engine, cfg HistoryConfig) (*History, error) {
	var clock atomic.Int64
	evt := func() int64 { return clock.Add(1) }

	var mu sync.Mutex
	h := &History{Keys: cfg.Keys}
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := eng.NewSession()
			defer s.Close()
			for i := 0; i < cfg.OpsPerWriter; i++ {
				key := (w + i) % cfg.Keys
				op, err := historyWrite(s, key, evt)
				if err != nil {
					fail(fmt.Errorf("writer %d op %d: %w", w, i, err))
					return
				}
				mu.Lock()
				h.Writes = append(h.Writes, op)
				mu.Unlock()
			}
		}(w)
	}
	for r := 0; r < cfg.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := eng.NewSession()
			defer s.Close()
			for i := 0; i < cfg.ReadsPerReader; i++ {
				op, err := historyRead(s, cfg.Keys, evt)
				if err != nil {
					fail(fmt.Errorf("reader %d op %d: %w", r, i, err))
					return
				}
				mu.Lock()
				h.Reads = append(h.Reads, op)
				mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return h, nil
}

// historyWrite lands one committed increment of key, retrying
// first-committer-wins aborts from a fresh snapshot each time.
func historyWrite(s *core.Session, key int, evt func() int64) (WriteOp, error) {
	for attempt := 0; attempt < historyRetryCap; attempt++ {
		start := evt()
		if _, err := s.Exec(`BEGIN`); err != nil {
			return WriteOp{}, err
		}
		rel, err := s.Query(fmt.Sprintf(`SELECT val FROM reg WHERE id = %d`, key))
		if err == nil && rel.Len() != 1 {
			err = fmt.Errorf("key %d: %d rows", key, rel.Len())
		}
		var val int64
		if err == nil {
			val = rel.Tuples[0][0].Int() + 1
			_, err = s.Exec(fmt.Sprintf(`UPDATE reg SET val = %d WHERE id = %d`, val, key))
		}
		if err == nil {
			_, err = s.Exec(`COMMIT`)
			if err == nil {
				return WriteOp{Key: key, Val: val, Start: start, End: evt()}, nil
			}
		}
		if !txn.IsRetryable(err) {
			return WriteOp{}, err
		}
		if s.InTransaction() {
			if _, rerr := s.Exec(`ROLLBACK`); rerr != nil {
				return WriteOp{}, rerr
			}
		}
	}
	return WriteOp{}, fmt.Errorf("key %d: no commit in %d attempts (livelock?)", key, historyRetryCap)
}

// historyRead takes one whole-table snapshot, one key per statement so
// a torn snapshot would have every chance to show.
func historyRead(s *core.Session, keys int, evt func() int64) (ReadOp, error) {
	start := evt()
	if _, err := s.Exec(`BEGIN`); err != nil {
		return ReadOp{}, err
	}
	vals := make([]int64, keys)
	for k := 0; k < keys; k++ {
		rel, err := s.Query(fmt.Sprintf(`SELECT val FROM reg WHERE id = %d`, k))
		if err != nil {
			s.Exec(`ROLLBACK`)
			return ReadOp{}, err
		}
		if rel.Len() != 1 {
			s.Exec(`ROLLBACK`)
			return ReadOp{}, fmt.Errorf("key %d: %d rows", k, rel.Len())
		}
		vals[k] = rel.Tuples[0][0].Int()
	}
	end := evt()
	if _, err := s.Exec(`COMMIT`); err != nil {
		return ReadOp{}, err
	}
	return ReadOp{Vals: vals, Start: start, End: end}, nil
}

// CheckHistory verifies a recorded history against the SI contract
// described in the package comment, returning the first violation.
func CheckHistory(h *History) error {
	// Per-key committed writes must be the contiguous sequence 1..n.
	perKey := make(map[int][]int64)
	for _, w := range h.Writes {
		perKey[w.Key] = append(perKey[w.Key], w.Val)
	}
	maxVal := make(map[int]int64)
	for k, vals := range perKey {
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for i, v := range vals {
			if v != int64(i+1) {
				return fmt.Errorf("key %d: committed values %v are not contiguous 1..%d (lost or duplicated update at position %d)",
					k, vals, len(vals), i)
			}
		}
		maxVal[k] = int64(len(vals))
	}

	for ri, r := range h.Reads {
		if len(r.Vals) != h.Keys {
			return fmt.Errorf("read %d: %d values for %d keys", ri, len(r.Vals), h.Keys)
		}
		// Every observed value must have been committed (or be the
		// initial 0), and not come from a transaction that started
		// after the reads completed.
		for k, v := range r.Vals {
			if v < 0 || v > maxVal[k] {
				return fmt.Errorf("read %d: key %d shows %d, never committed (max %d)", ri, k, v, maxVal[k])
			}
		}
		// Consistent prefix: no write may be invisible while a write
		// that happens-after it (started after it fully committed) is
		// visible. A write is visible iff the snapshot's value for its
		// key is at or past it (values are per-key monotone).
		minEndInvisible := int64(1<<62 - 1)
		maxStartVisible := int64(-1)
		var wInv, wVis WriteOp
		for _, w := range h.Writes {
			if r.Vals[w.Key] >= w.Val {
				if w.Start > maxStartVisible {
					maxStartVisible, wVis = w.Start, w
				}
				if w.Start >= r.End {
					return fmt.Errorf("read %d (ended %d): observed key %d ≥ %d from a write that started at %d, after the reads finished",
						ri, r.End, w.Key, w.Val, w.Start)
				}
			} else if w.End < minEndInvisible {
				minEndInvisible, wInv = w.End, w
			}
		}
		if maxStartVisible > minEndInvisible {
			return fmt.Errorf("read %d: torn snapshot — saw key %d = %d (write started %d) but missed key %d = %d (committed by %d)",
				ri, wVis.Key, wVis.Val, wVis.Start, wInv.Key, wInv.Val, wInv.End)
		}
	}
	return nil
}
