package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fragment"
	"repro/internal/value"
)

// E20Vectorized measures the columnar batch executor against the
// tuple-at-a-time baseline on the shapes the vectorization tentpole
// targets: filter-heavy scans across a selectivity sweep, an equi-join,
// and grouped aggregation. Two engines over identical data differ only
// in Config.Vectorized; EXPLAIN must prove the vectorized engine's
// plans actually run columnar (and the baseline's row-at-a-time) before
// anything is timed. Runs interleave vec/row and report medians, so
// scheduler noise hits both sides alike. Reported per shape and
// selectivity: median wall per executor, wall speedup, vectorized scan
// throughput, and the simulated response times. The cost model charges
// both executors with the same per-operator formulas; the residual sim
// gap on projecting shapes is real modeled savings — a columnar
// projection is a pointer remap at the data, so narrower batches cross
// the simulated network — while the wall speedup is host work avoided.
func E20Vectorized(quick bool) (*Table, error) {
	factRows, dimRows := 60000, 2200
	runs := 9
	if quick {
		factRows, runs = 20000, 5
	}

	factSchema := value.MustSchema("id", "INT", "a", "INT", "b", "INT", "amt", "INT")
	dimSchema := value.MustSchema("id", "INT", "w", "INT")
	fact := make([]value.Tuple, factRows)
	for i := range fact {
		fact[i] = value.NewTuple(
			value.NewInt(int64(i)), value.NewInt(int64(i%dimRows)),
			value.NewInt(int64((i*13)%dimRows)), value.NewInt(int64(i%97)))
	}
	dim := make([]value.Tuple, dimRows)
	for i := range dim {
		dim[i] = value.NewTuple(value.NewInt(int64(i)), value.NewInt(int64(i%7)))
	}

	vecOn, vecOff := true, false
	engines := []struct {
		name string
		cfg  core.Config
		want string // EXPLAIN execution line that must appear
	}{
		{"vec", core.Config{NumPEs: 16, Vectorized: &vecOn}, "execution: vectorized (columnar batches)"},
		{"row", core.Config{NumPEs: 16, Vectorized: &vecOff}, "execution: row-at-a-time"},
	}
	type engState struct {
		eng *core.Engine
		s   *core.Session
	}
	states := make([]engState, len(engines))
	for i, ec := range engines {
		eng, err := core.New(ec.cfg)
		if err != nil {
			return nil, err
		}
		defer eng.Close()
		load := func(name string, schema *value.Schema, tuples []value.Tuple) error {
			if err := eng.CreateTable(name, schema,
				&fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: 8}, []int{0}); err != nil {
				return err
			}
			return eng.LoadTable(name, tuples)
		}
		if err := load("fact", factSchema, fact); err != nil {
			return nil, err
		}
		if err := load("dim1", dimSchema, dim); err != nil {
			return nil, err
		}
		states[i] = engState{eng: eng, s: eng.NewSession()}
	}

	// amt is uniform over [0, 97); a threshold of sel*97 keeps ~sel of
	// the rows.
	sel := func(f float64) int { return int(f * 97) }
	grid := []struct {
		shape       string
		selectivity float64
		query       string
	}{
		{"filter-scan", 0.01, fmt.Sprintf("SELECT id, amt FROM fact WHERE amt < %d", sel(0.01))},
		{"filter-scan", 0.10, fmt.Sprintf("SELECT id, amt FROM fact WHERE amt < %d", sel(0.10))},
		{"filter-scan", 0.50, fmt.Sprintf("SELECT id, amt FROM fact WHERE amt < %d", sel(0.50))},
		{"filter-scan", 0.90, fmt.Sprintf("SELECT id, amt FROM fact WHERE amt < %d", sel(0.90))},
		{"join", 0.50, fmt.Sprintf(
			"SELECT COUNT(*) AS n FROM fact f JOIN dim1 d1 ON f.a = d1.id WHERE f.amt < %d", sel(0.50))},
		{"aggregate", 0.50, fmt.Sprintf(
			"SELECT a, COUNT(*) AS n, SUM(amt) AS s FROM fact WHERE amt < %d GROUP BY a", sel(0.50))},
	}

	t := &Table{
		ID: "E20",
		Title: fmt.Sprintf("vectorized columnar execution vs tuple-at-a-time (%d fact rows, %d runs interleaved, medians)",
			factRows, runs),
		Header: []string{"shape", "selectivity", "rows", "vec wall", "row wall", "wall speedup", "vec rows/sec", "vec sim", "row sim"},
		Notes: []string{
			"vec: Config.Vectorized=true — scans filter over OFM column caches with selection vectors, operators stay columnar to the root",
			"row: Config.Vectorized=false — the tuple-at-a-time executor (the pre-E20 engine)",
			"EXPLAIN gates every timed plan: the vec engine must report 'execution: vectorized (columnar batches)'",
			"sim uses identical per-operator cost formulas; the vec sim advantage on projecting shapes is narrower batches crossing the simulated network (columnar projection happens at the data), wall speedup is host work avoided",
			"vec rows/sec = fact rows scanned / median vec wall",
		},
	}

	for _, g := range grid {
		// EXPLAIN gate + warm-up (compiles plans, builds column caches).
		for i, ec := range engines {
			plan, err := states[i].s.Query("EXPLAIN " + g.query)
			if err != nil {
				return nil, err
			}
			var planStr strings.Builder
			for _, row := range plan.Tuples {
				planStr.WriteString(row[0].Str())
				planStr.WriteByte('\n')
			}
			if !strings.Contains(planStr.String(), ec.want) {
				return nil, fmt.Errorf("E20: %s engine plan for %q lacks %q:\n%s",
					ec.name, g.query, ec.want, planStr.String())
			}
			if _, err := states[i].s.Exec(g.query); err != nil {
				return nil, err
			}
		}
		// Interleaved timed runs.
		walls := make([][]time.Duration, len(engines))
		for r := 0; r < runs; r++ {
			for i := range engines {
				start := time.Now()
				if _, err := states[i].s.Exec(g.query); err != nil {
					return nil, err
				}
				walls[i] = append(walls[i], time.Since(start))
			}
		}
		// Simulated response: deterministic, one measurement each.
		sims := make([]time.Duration, len(engines))
		for i := range engines {
			states[i].eng.Machine().ResetClocks()
			if _, err := states[i].s.Exec(g.query); err != nil {
				return nil, err
			}
			sims[i] = states[i].eng.Machine().MaxClock()
		}
		vecWall, rowWall := median(walls[0]), median(walls[1])
		speedup := 0.0
		if vecWall > 0 {
			speedup = float64(rowWall) / float64(vecWall)
		}
		rowsPerSec := 0.0
		if vecWall > 0 {
			rowsPerSec = float64(factRows) / vecWall.Seconds()
		}
		t.AddRow(g.shape, fmt.Sprintf("%.2f", g.selectivity), factRows,
			vecWall.Round(time.Microsecond).String(),
			rowWall.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2f", speedup),
			fmt.Sprintf("%.0f", rowsPerSec),
			sims[0].Round(time.Microsecond).String(),
			sims[1].Round(time.Microsecond).String())
	}
	return t, nil
}

// median returns the middle value of the (unsorted) durations.
func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}
