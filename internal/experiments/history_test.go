package experiments

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
)

// historyEngine builds an engine with the checker's register table.
func historyEngine(t *testing.T, keys int) *core.Engine {
	t.Helper()
	eng, err := core.New(core.Config{NumPEs: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	s := eng.NewSession()
	defer s.Close()
	if _, err := s.Exec(`CREATE TABLE reg (id INT, val INT, PRIMARY KEY (id))
		FRAGMENT BY HASH(id) INTO 4 FRAGMENTS`); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keys; k++ {
		if _, err := s.Exec(fmt.Sprintf(`INSERT INTO reg VALUES (%d, 0)`, k)); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// TestHistoryChecker runs concurrent register transactions against a
// live engine and verifies the recorded history is snapshot-consistent.
// Sizes scale through PRISMA_HISTORY_OPS (committed increments per
// writer) so CI's -race job can run a heavier schedule than tier-1.
func TestHistoryChecker(t *testing.T) {
	ops := 6
	if v := os.Getenv("PRISMA_HISTORY_OPS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad PRISMA_HISTORY_OPS=%q", v)
		}
		ops = n
	}
	cfg := HistoryConfig{Keys: 4, Writers: 6, OpsPerWriter: ops, Readers: 4, ReadsPerReader: ops}
	eng := historyEngine(t, cfg.Keys)
	h, err := RunHistory(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(h.Writes); got != cfg.Writers*cfg.OpsPerWriter {
		t.Fatalf("recorded %d writes, want %d", got, cfg.Writers*cfg.OpsPerWriter)
	}
	if err := CheckHistory(h); err != nil {
		t.Fatal(err)
	}
}

// TestCheckHistoryCatchesViolations proves the checker is not
// vacuous: synthetic histories with a lost update, a torn snapshot,
// and a read from the future must each be rejected.
func TestCheckHistoryCatchesViolations(t *testing.T) {
	ok := &History{
		Keys: 2,
		Writes: []WriteOp{
			{Key: 0, Val: 1, Start: 1, End: 2},
			{Key: 1, Val: 1, Start: 3, End: 4},
		},
		Reads: []ReadOp{{Vals: []int64{1, 0}, Start: 2, End: 3}},
	}
	if err := CheckHistory(ok); err != nil {
		t.Fatalf("clean history rejected: %v", err)
	}

	lost := &History{
		Keys: 1,
		Writes: []WriteOp{
			{Key: 0, Val: 1, Start: 1, End: 3},
			{Key: 0, Val: 1, Start: 2, End: 4}, // duplicate: both read 0
		},
	}
	if err := CheckHistory(lost); err == nil {
		t.Error("lost update not detected")
	}

	torn := &History{
		Keys: 2,
		Writes: []WriteOp{
			{Key: 0, Val: 1, Start: 1, End: 2},
			{Key: 1, Val: 1, Start: 5, End: 6}, // happens strictly after
		},
		// Sees the later write but not the earlier one.
		Reads: []ReadOp{{Vals: []int64{0, 1}, Start: 7, End: 8}},
	}
	if err := CheckHistory(torn); err == nil {
		t.Error("torn snapshot not detected")
	}

	future := &History{
		Keys:   1,
		Writes: []WriteOp{{Key: 0, Val: 1, Start: 9, End: 10}},
		Reads:  []ReadOp{{Vals: []int64{1}, Start: 2, End: 3}},
	}
	if err := CheckHistory(future); err == nil {
		t.Error("read from the future not detected")
	}
}
