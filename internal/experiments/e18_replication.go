package experiments

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fragment"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/value"
)

// E18Replication measures WAL-shipping read replicas: a primary under
// an E11-style write load ships its logs to {0,1,2,4} replicas, read
// clients load-balance point SELECTs across the replica set through
// the role-aware cluster client, and the table reports aggregate read
// capacity (simulated busy time of the serving endpoints — the metric
// that scales with machines even on a one-core host), replication lag
// percentiles, and the speedup over the no-replica baseline.
//
// The final row is the audited failover cell: an E17-style ledger
// workload runs against the primary until a deterministic fault
// (ofm.commit.pre, scoped to the primary's fault domain) kills it
// mid-commit; the most-caught-up replica is promoted via PROMOTE, the
// survivor re-points to it, and the audit verifies the ledger sum is
// conserved, every acknowledged commit survived, the recovered old
// primary's stale-epoch stream is fenced off, and a torn replica
// stream earlier in the run resubscribed idempotently.
func E18Replication(quick bool) (*Table, error) {
	rows := 2000
	totalReads := 2000
	readers := 4
	writers := 2
	lagSamples := 40
	numPEs := 16
	replicaPEs := 8
	if quick {
		rows = 500
		totalReads = 600
		readers = 3
		writers = 2
		lagSamples = 10
		numPEs = 8
	}

	t := &Table{
		ID: "E18",
		Title: fmt.Sprintf("WAL-shipping read replicas: %d-row relation, %d readers + %d paced writers, point-SELECT/scan mix vs replica count",
			rows, readers, writers),
		Header: []string{"replicas", "reads", "rd capacity/s", "speedup", "writes", "lag p50", "lag p99", "invariants"},
		Notes: []string{
			"capacity = reads / max simulated busy time over the endpoints serving reads (replicas when present, else the primary, which also carries the write load)",
			"lag = acknowledged primary commit -> replica replay watermark catches up, sampled by a heartbeat prober; commits are semi-synchronous (acked once shipped to every attached replica)",
			"reads route through the cluster client: replicas round-robin, writes to the primary, redirects re-probe roles",
			"failover row: ledger workload, deterministic crash at ofm.commit.pre in the primary's fault domain, PROMOTE of the most-caught-up replica, survivor re-pointed; audit = sum conserved, acked commits present, torn replica stream resubscribed idempotently, recovered stale primary fenced by epoch",
		},
	}

	var baseline float64
	for _, nr := range []int{0, 1, 2, 4} {
		row, capacity, err := runE18GridCell(nr, rows, totalReads, readers, writers, lagSamples, numPEs, replicaPEs, baseline)
		if err != nil {
			return nil, fmt.Errorf("E18 %d replicas: %w", nr, err)
		}
		if nr == 0 {
			baseline = capacity
		}
		t.Rows = append(t.Rows, row)
	}

	row, err := runE18FailoverCell(replicaPEs, quick)
	if err != nil {
		return nil, fmt.Errorf("E18 failover: %w", err)
	}
	t.Rows = append(t.Rows, row)
	return t, nil
}

// e18Node is one simulated machine: engine, WAL-ship source, TCP
// server, and (on replicas) the subscription to the primary.
type e18Node struct {
	eng  *core.Engine
	src  *repl.Source
	srv  *server.Server
	rep  *repl.Replica
	addr string
	done chan struct{}
}

// e18StartNode boots an engine behind a server on a loopback port. A
// non-empty primary address makes it a replica of that node. Every
// node gets its own fault domain so a crash kills one machine only.
func e18StartNode(numPEs int, primary string) (*e18Node, error) {
	eng, err := core.New(core.Config{NumPEs: numPEs, FaultDomain: &fault.Domain{}})
	if err != nil {
		return nil, err
	}
	src := repl.NewSource(repl.SourceConfig{Engine: eng, PollInterval: 2 * time.Millisecond})
	eng.Txns().SetCommitWait(src.WaitShipped)
	n := &e18Node{eng: eng, src: src, done: make(chan struct{})}
	cfg := server.Config{Engine: eng, MaxConns: 64, Source: src}
	if primary != "" {
		rep, err := repl.StartReplica(repl.ReplicaConfig{Engine: eng, Primary: primary, RetryBackoff: 5 * time.Millisecond})
		if err != nil {
			src.Close()
			eng.Close()
			return nil, err
		}
		n.rep = rep
		cfg.PrimaryAddr = rep.Primary
	}
	srv, err := server.New(cfg)
	if err != nil {
		n.close()
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		n.close()
		return nil, err
	}
	n.srv = srv
	n.addr = l.Addr().String()
	go func() { srv.Serve(l); close(n.done) }()
	return n, nil
}

func (n *e18Node) close() {
	if n.rep != nil {
		n.rep.Stop()
	}
	if n.srv != nil {
		n.srv.Close()
		<-n.done
	}
	n.src.Close()
	n.eng.Close()
}

// e18WaitCaughtUp blocks until the replica's replay watermark reaches
// the primary's commit watermark.
func e18WaitCaughtUp(rep *repl.Replica, w uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for rep.Watermark() < w {
		if time.Now().After(deadline) {
			return fmt.Errorf("replica watermark stuck at %d, want %d", rep.Watermark(), w)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// runE18GridCell measures one replica count: write load on the
// primary, reads through the cluster client, lag sampled by a prober.
func runE18GridCell(nr, rows, totalReads, readers, writers, lagSamples, numPEs, replicaPEs int, baseline float64) ([]string, float64, error) {
	primary, err := e18StartNode(numPEs, "")
	if err != nil {
		return nil, 0, err
	}
	defer primary.close()

	schema := value.MustSchema("id", "INT", "balance", "INT")
	if err := primary.eng.CreateTable("acct", schema,
		&fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: 4}, []int{0}); err != nil {
		return nil, 0, err
	}
	tuples := make([]value.Tuple, rows)
	for i := range tuples {
		tuples[i] = value.Ints(int64(i), 1000)
	}
	if err := primary.eng.LoadTable("acct", tuples); err != nil {
		return nil, 0, err
	}

	nodes := []*e18Node{primary}
	for i := 0; i < nr; i++ {
		n, err := e18StartNode(replicaPEs, primary.addr)
		if err != nil {
			for _, m := range nodes[1:] {
				m.close()
			}
			return nil, 0, err
		}
		defer n.close()
		nodes = append(nodes, n)
	}
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.addr
	}

	// A marker commit forces the initial full sync and proves every
	// replica is attached before the measured phase.
	pc, err := client.Dial(primary.addr)
	if err != nil {
		return nil, 0, err
	}
	defer pc.Close()
	if _, err := pc.Exec(`UPDATE acct SET balance = balance + 0 WHERE id = 0`); err != nil {
		return nil, 0, err
	}
	w0 := primary.eng.Txns().Watermark()
	for _, n := range nodes[1:] {
		if err := e18WaitCaughtUp(n.rep, w0, 10*time.Second); err != nil {
			return nil, 0, err
		}
	}

	// Write load: autocommit balance bumps on random keys, running for
	// the whole read phase. Writers pace themselves off read progress —
	// one write per writePerReads completed reads — so the write:read
	// ratio is identical in every cell regardless of replica count or
	// host load. Wall-clock pacing would let a slow host squeeze more
	// writes into a cell's read phase and silently shift the workload.
	const writePerReads = 50
	var stop atomic.Bool
	var writesAcked, readsDone atomic.Int64
	var wg sync.WaitGroup
	workerErr := make(chan error, writers+1)
	for wk := 0; wk < writers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			c, err := client.Dial(primary.addr)
			if err != nil {
				workerErr <- err
				return
			}
			defer c.Close()
			r := rand.New(rand.NewSource(int64(nr*100 + wk)))
			for !stop.Load() {
				if writesAcked.Load() >= readsDone.Load()/writePerReads+1 {
					time.Sleep(200 * time.Microsecond)
					continue
				}
				k := 1 + r.Intn(rows-1)
				if _, err := c.Exec(fmt.Sprintf(`UPDATE acct SET balance = balance + 1 WHERE id = %d`, k)); err != nil {
					if isContention(err) {
						continue
					}
					workerErr <- err
					return
				}
				writesAcked.Add(1)
			}
		}(wk)
	}

	// Lag prober: commit a heartbeat on the primary, then time how long
	// the slowest replica takes to replay past it.
	var lags []time.Duration
	if nr > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(primary.addr)
			if err != nil {
				workerErr <- err
				return
			}
			defer c.Close()
			for i := 0; i < lagSamples && !stop.Load(); i++ {
				if _, err := c.Exec(`UPDATE acct SET balance = balance + 1 WHERE id = 0`); err != nil {
					if isContention(err) {
						continue
					}
					workerErr <- err
					return
				}
				w := primary.eng.Txns().Watermark()
				t0 := time.Now()
				for _, n := range nodes[1:] {
					if err := e18WaitCaughtUp(n.rep, w, 10*time.Second); err != nil {
						workerErr <- err
						return
					}
				}
				lags = append(lags, time.Since(t0))
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	// Read phase: fixed read count spread over the cluster client's
	// round-robin, against freshly zeroed simulated clocks.
	for _, n := range nodes {
		n.eng.Machine().ResetClocks()
	}
	var rwg sync.WaitGroup
	readErr := make(chan error, readers)
	per := totalReads / readers
	for rd := 0; rd < readers; rd++ {
		rwg.Add(1)
		go func(rd int) {
			defer rwg.Done()
			cl, err := client.DialCluster(addrs)
			if err != nil {
				readErr <- err
				return
			}
			defer cl.Close()
			r := rand.New(rand.NewSource(int64(nr*1000 + rd)))
			for i := 0; i < per; i++ {
				// E11-style read mix: mostly point SELECTs, one analytics
				// scan in nine. The scan period is coprime with every
				// replica count in the grid so the client's round-robin
				// never aliases all scans onto one replica.
				q := fmt.Sprintf(`SELECT * FROM acct WHERE id = %d`, r.Intn(rows))
				if i%9 == 8 {
					q = `SELECT COUNT(*) AS n, SUM(balance) AS total FROM acct`
				}
				if _, err := cl.Query(q); err != nil {
					readErr <- fmt.Errorf("reader %d: %w", rd, err)
					return
				}
				readsDone.Add(1)
			}
		}(rd)
	}
	rwg.Wait()
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-readErr:
		return nil, 0, err
	case err := <-workerErr:
		return nil, 0, err
	default:
	}

	// Capacity: the busiest endpoint that served reads bounds the
	// deployment. With replicas the primary's clock (write load) is
	// excluded — reads never touch it.
	serving := nodes[1:]
	if nr == 0 {
		serving = nodes[:1]
	}
	var busiest time.Duration
	for _, n := range serving {
		if c := n.eng.Machine().MaxClock(); c > busiest {
			busiest = c
		}
	}
	if busiest <= 0 {
		return nil, 0, fmt.Errorf("no simulated busy time recorded on serving endpoints")
	}
	reads := per * readers
	capacity := float64(reads) / busiest.Seconds()
	speedup := "1.00x"
	if baseline > 0 {
		speedup = fmt.Sprintf("%.2fx", capacity/baseline)
	} else if nr != 0 {
		speedup = "n/a"
	}
	p50, p99 := "n/a", "n/a"
	if len(lags) > 0 {
		sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
		p50 = percentile(lags, 0.50).Round(10 * time.Microsecond).String()
		p99 = percentile(lags, 0.99).Round(10 * time.Microsecond).String()
	}
	return []string{
		fmt.Sprint(nr), fmt.Sprint(reads), fmt.Sprintf("%.0f", capacity), speedup,
		fmt.Sprint(writesAcked.Load()), p50, p99, "ok",
	}, capacity, nil
}

// runE18FailoverCell is the audited failover: ledger workload, torn
// replica stream mid-run, deterministic primary crash, promotion,
// stale-epoch fencing of the recovered old primary, full audit.
func runE18FailoverCell(numPEs int, quick bool) ([]string, error) {
	defer fault.DisarmAll()
	defer fault.ClearCrash()

	workers := 3
	warmup := 25 * time.Millisecond
	if quick {
		warmup = 10 * time.Millisecond
	}

	primary, err := e18StartNode(numPEs, "")
	if err != nil {
		return nil, err
	}
	defer primary.close()
	if err := e18LedgerSetup(primary.eng); err != nil {
		return nil, err
	}
	var reps []*e18Node
	for i := 0; i < 2; i++ {
		n, err := e18StartNode(numPEs, primary.addr)
		if err != nil {
			return nil, err
		}
		defer n.close()
		reps = append(reps, n)
	}
	// Attach proof: one commit, both replicas replay it.
	{
		c, err := client.Dial(primary.addr)
		if err != nil {
			return nil, err
		}
		_, err = c.Exec(`UPDATE acct SET bal = bal + 0 WHERE id = 0`)
		c.Close()
		if err != nil {
			return nil, err
		}
		w := primary.eng.Txns().Watermark()
		for _, n := range reps {
			if err := e18WaitCaughtUp(n.rep, w, 10*time.Second); err != nil {
				return nil, err
			}
		}
	}

	ledger := newE17Ledger()
	var stop atomic.Bool
	var wg sync.WaitGroup
	var wireErr error
	var errOnce sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := e17WireWorker(primary.addr, int64(w)+301, &stop, ledger); err != nil {
				errOnce.Do(func() { wireErr = err })
				stop.Store(true)
			}
		}(w)
	}

	// Torn stream (satellite of the failover audit): crash replica 1
	// mid-stream; it must resubscribe from its durable offsets and
	// re-apply idempotently before the real fault even lands.
	time.Sleep(warmup)
	if err := reps[1].rep.CrashRecover(); err != nil {
		stop.Store(true)
		wg.Wait()
		return nil, fmt.Errorf("torn stream: %w", err)
	}
	time.Sleep(warmup)

	// The deterministic kill: first commit after arming dies inside the
	// primary's fault domain only — the replicas' stores stay healthy.
	if err := fault.Arm("ofm.commit.pre", fault.Spec{Mode: fault.Crash, N: 1, Domain: primary.eng.FaultDomain()}); err != nil {
		stop.Store(true)
		wg.Wait()
		return nil, err
	}
	pt := fault.Lookup("ofm.commit.pre")
	deadline := time.Now().Add(5 * time.Second)
	for pt.Fired() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if wireErr != nil {
		return nil, wireErr
	}
	if pt.Fired() == 0 {
		return nil, fmt.Errorf("fault point never fired under the workload")
	}
	fault.DisarmAll()

	// The primary machine is gone: take its endpoint down.
	primary.srv.Close()
	<-primary.done
	primary.src.Close()

	// Promote the most-caught-up replica; the survivor re-points at it.
	win, lose := reps[0], reps[1]
	if lose.rep.Watermark() > win.rep.Watermark() {
		win, lose = lose, win
	}
	pc, err := client.Dial(win.addr)
	if err != nil {
		return nil, err
	}
	res, err := pc.Exec(`PROMOTE`)
	pc.Close()
	if err != nil {
		return nil, fmt.Errorf("promote: %w", err)
	}
	lose.rep.Stop()
	rep2, err := repl.StartReplica(repl.ReplicaConfig{Engine: lose.eng, Primary: win.addr, RetryBackoff: 5 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	defer rep2.Stop()
	lose.rep = rep2

	// Audit: conservation + every acknowledged commit present, on the
	// new primary's own state.
	if err := e18FailoverAudit(win.eng, ledger); err != nil {
		return nil, err
	}

	// Liveness through the cluster client: the dead endpoint and the
	// demoted survivor are skipped, the write lands on the new primary.
	cl, err := client.DialCluster([]string{primary.addr, win.addr, lose.addr})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	for _, sql := range []string{
		`UPDATE acct SET bal = bal - 1 WHERE id = 2`,
		`UPDATE acct SET bal = bal + 1 WHERE id = 3`,
	} {
		if _, err := cl.Exec(sql); err != nil {
			return nil, fmt.Errorf("post-failover write: %w", err)
		}
	}
	if _, sum, err := e17Balances(win.eng); err != nil || sum != int64(e17Rows*100+100) {
		return nil, fmt.Errorf("post-failover transfer broke conservation: sum=%d err=%v", sum, err)
	}

	// Stale-epoch fencing: revive the old primary (it still believes it
	// is epoch-1 primary) and stream from it into the promoted node —
	// every frame must be refused.
	primary.eng.FaultDomain().ClearCrash()
	if err := primary.eng.CrashTable("acct"); err != nil {
		return nil, err
	}
	if _, err := primary.eng.RecoverTableReport("acct"); err != nil {
		return nil, fmt.Errorf("old primary recovery: %w", err)
	}
	oldSrv, err := server.New(server.Config{Engine: primary.eng, Source: repl.NewSource(repl.SourceConfig{Engine: primary.eng, PollInterval: 2 * time.Millisecond})})
	if err != nil {
		return nil, err
	}
	ol, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	oldDone := make(chan struct{})
	go func() { oldSrv.Serve(ol); close(oldDone) }()
	defer func() { oldSrv.Close(); <-oldDone }()
	fenced, err := repl.StartReplica(repl.ReplicaConfig{Engine: win.eng, Primary: ol.Addr().String(), RetryBackoff: 2 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	fenceDeadline := time.Now().Add(5 * time.Second)
	for fenced.StaleEpochRefusals() == 0 && time.Now().Before(fenceDeadline) {
		time.Sleep(time.Millisecond)
	}
	fenced.Stop()
	win.eng.SetReadOnly(false) // StartReplica flipped the promoted node
	if fenced.StaleEpochRefusals() == 0 {
		return nil, fmt.Errorf("promoted node accepted the stale primary's stream")
	}
	if _, sum, err := e17Balances(win.eng); err != nil || sum != int64(e17Rows*100+100) {
		return nil, fmt.Errorf("stale primary corrupted the promoted node: sum=%d err=%v", sum, err)
	}

	return []string{
		"failover", "-", "-", "-",
		fmt.Sprintf("%d acked, %d in-flight", ledger.commits, len(ledger.maybe)),
		"-", "-",
		fmt.Sprintf("ok (%s, %d stale frames refused)", res.Msg, fenced.StaleEpochRefusals()),
	}, nil
}

// e18LedgerSetup builds the E17 ledger on an already-running engine:
// e17Rows accounts at 100, committed marker on 0, rolled-back marker
// probe on 1.
func e18LedgerSetup(eng *core.Engine) error {
	if err := eng.CreateTable("acct", value.MustSchema("id", "INT", "bal", "INT"),
		&fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: 4}, []int{0}); err != nil {
		return err
	}
	tuples := make([]value.Tuple, e17Rows)
	for i := range tuples {
		tuples[i] = value.Ints(int64(i), 100)
	}
	if err := eng.LoadTable("acct", tuples); err != nil {
		return err
	}
	s := eng.NewSession()
	defer s.Close()
	for _, sql := range []string{
		`UPDATE acct SET bal = bal + 100 WHERE id = 0`,
		`BEGIN`, `UPDATE acct SET bal = 9999 WHERE id = 1`, `ROLLBACK`,
	} {
		if _, err := s.Exec(sql); err != nil {
			return err
		}
	}
	return nil
}

// e18FailoverAudit checks the promoted replica against the workload's
// ledger: money conserved, markers intact, balances explainable as the
// acknowledged commits plus some subset of the in-flight transfers.
func e18FailoverAudit(eng *core.Engine, ledger *e17Ledger) error {
	bal, sum, err := e17Balances(eng)
	if err != nil {
		return fmt.Errorf("post-promotion read: %w", err)
	}
	const wantSum = int64(e17Rows*100 + 100)
	if sum != wantSum {
		return fmt.Errorf("sum = %d, want %d: money not conserved across failover", sum, wantSum)
	}
	if bal[0] != 200 {
		return fmt.Errorf("committed marker lost in failover: bal(0) = %d, want 200", bal[0])
	}
	if bal[1] != 100 {
		return fmt.Errorf("rolled-back write surfaced on the replica: bal(1) = %d, want 100", bal[1])
	}
	if !ledger.explains(bal) {
		return fmt.Errorf("promoted state not explainable as acked ledger + subset of %d in-flight transfers: an acknowledged commit was lost", len(ledger.maybe))
	}
	return nil
}
