package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fragment"
	"repro/internal/value"
)

// E7Fragmentation compares the fragmentation strategies (§2.2/§2.5):
// storage balance, fragment pruning for point queries, and the join
// method each strategy enables (colocated for matching hash schemes,
// repartitioned otherwise).
func E7Fragmentation(quick bool) (*Table, error) {
	rows := 8000
	if quick {
		rows = 2000
	}
	strategies := []struct {
		name   string
		scheme func() *fragment.Scheme
	}{
		{"hash", func() *fragment.Scheme { return &fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: 8} }},
		{"range", func() *fragment.Scheme {
			return &fragment.Scheme{Strategy: fragment.Range, Column: 0, N: 8,
				Bounds: fragment.EvenRangeBounds(0, int64(rows)-1, 8)}
		}},
		{"round-robin", func() *fragment.Scheme { return &fragment.Scheme{Strategy: fragment.RoundRobin, N: 8} }},
	}
	tuples := genEmployees(rows, 29)
	schema := value.MustSchema("id", "INT", "dept", "VARCHAR", "salary", "INT")

	t := &Table{
		ID:    "E7",
		Title: fmt.Sprintf("fragmentation strategies, %d rows over 8 fragments", rows),
		Header: []string{"strategy", "balance (max/mean)", "point query sim", "full scan sim",
			"self-join method", "join sim"},
	}
	for _, st := range strategies {
		eng, err := core.New(core.Config{NumPEs: 64})
		if err != nil {
			return nil, err
		}
		if err := eng.CreateTable("emp", schema, st.scheme(), []int{0}); err != nil {
			eng.Close()
			return nil, err
		}
		if err := eng.LoadTable("emp", tuples); err != nil {
			eng.Close()
			return nil, err
		}
		// Balance.
		tab, err := eng.Catalog().Get("emp")
		if err != nil {
			eng.Close()
			return nil, err
		}
		maxRows, total := 0, 0
		for i := 0; i < tab.NumFragments(); i++ {
			r := tab.FragRows(i)
			total += r
			if r > maxRows {
				maxRows = r
			}
		}
		balance := float64(maxRows) / (float64(total) / float64(tab.NumFragments()))

		s := eng.NewSession()
		// Warm compiler caches so steady-state costs are measured.
		for _, q := range []string{`SELECT * FROM emp WHERE id = 1234`,
			`SELECT COUNT(*) AS n FROM emp WHERE salary > 0`,
			`SELECT a.id FROM emp a JOIN emp b ON a.id = b.id`} {
			if _, err := s.Exec(q); err != nil {
				eng.Close()
				return nil, err
			}
		}
		// Point query (prunes to one fragment for hash and range).
		eng.Machine().ResetClocks()
		if _, err := s.Exec(`SELECT * FROM emp WHERE id = 1234`); err != nil {
			eng.Close()
			return nil, err
		}
		pointSim := eng.Machine().MaxClock()
		// Full scan.
		eng.Machine().ResetClocks()
		if _, err := s.Exec(`SELECT COUNT(*) AS n FROM emp WHERE salary > 0`); err != nil {
			eng.Close()
			return nil, err
		}
		scanSim := eng.Machine().MaxClock()
		// Self equi-join on the key: colocated only for hash.
		eng.Machine().ResetClocks()
		res, err := s.Exec(`SELECT a.id FROM emp a JOIN emp b ON a.id = b.id`)
		if err != nil {
			eng.Close()
			return nil, err
		}
		joinSim := eng.Machine().MaxClock()
		method := "central"
		for _, m := range []string{"colocated", "repartition"} {
			if containsStr(res.Plan, m) {
				method = m
			}
		}
		t.AddRow(st.name, fmt.Sprintf("%.2f", balance),
			pointSim.Round(time.Microsecond).String(),
			scanSim.Round(time.Microsecond).String(),
			method,
			joinSim.Round(time.Microsecond).String())
		eng.Close()
	}
	t.Notes = append(t.Notes,
		"hash: even balance + one-fragment point queries + colocated key joins — the default for a reason",
		"range: prunes range predicates too, but key skew shows in balance; round-robin: perfect balance, no pruning, repartitioned joins")
	return t, nil
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
