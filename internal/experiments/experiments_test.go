package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// All returns every experiment in quick mode; used by tests and benches.
func runAll(t *testing.T) []*Table {
	t.Helper()
	fns := []func(bool) (*Table, error){
		E1NetworkThroughput,
		E2ParallelSpeedup,
		E3MainMemoryVsDisk,
		E4CompiledVsInterpreted,
		E5TransitiveClosure,
		E6MultiQueryThroughput,
		E7Fragmentation,
		E8RecoveryOverhead,
		E9OptimizerAblation,
		E10Allocation,
		E11ConcurrentClients,
	}
	var out []*Table
	for _, fn := range fns {
		tb, err := fn(true)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tb)
	}
	return out
}

func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	tables := runAll(t)
	if len(tables) != 11 {
		t.Fatalf("%d experiments", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s produced no rows", tb.ID)
		}
		s := tb.String()
		if !strings.Contains(s, tb.ID) || !strings.Contains(s, tb.Header[0]) {
			t.Errorf("%s renders badly:\n%s", tb.ID, s)
		}
	}
}

// TestE15ExchangeBeatsCentral pins the partitioned-executor acceptance
// bar: on the 3-table star join + GROUP BY at 64 PEs the exchange-based
// executor must answer at least 2x faster (simulated response time)
// than the central fallback. E15 itself fails if EXPLAIN still shows a
// central join in the exchange plan, so a passing run also proves the
// tree executes partitioned.
func TestE15ExchangeBeatsCentral(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	tb, err := E15MultiJoinParallelism(true)
	if err != nil {
		t.Fatal(err)
	}
	speedupCol := len(tb.Header) - 1
	checked := false
	for _, row := range tb.Rows {
		if row[0] != "64" || row[1] != "exchange" {
			continue
		}
		checked = true
		var speedup float64
		if _, err := fmt.Sscanf(row[speedupCol], "%f", &speedup); err != nil {
			t.Fatalf("bad speedup cell %q: %v", row[speedupCol], err)
		}
		if speedup < 2 {
			t.Errorf("exchange executor speedup at 64 PEs = %.2fx, want >= 2x\n%s", speedup, tb)
		}
	}
	if !checked {
		t.Fatalf("no 64-PE exchange row in E15:\n%s", tb)
	}
}

// TestE16SnapshotReadRetention pins the MVCC acceptance bar: reader
// throughput under snapshot reads must hold up as the writer population
// grows 1→16 (the issue's target is ±15%; the test bar is looser to
// absorb shared-runner noise), and must hold up decisively better than
// the all-2PL baseline measured in the same run. The thresholds are far
// from the observed values (MVCC retains ~85%+ of its reader
// throughput; 2PL's readers starve behind exclusive locks held across
// writer think time) so only a real regression trips them.
func TestE16SnapshotReadRetention(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	tb, err := E16SnapshotReads(true)
	if err != nil {
		t.Fatal(err)
	}
	reads := map[string]float64{} // "mode/writers" -> reads/sec
	for _, row := range tb.Rows {
		var v float64
		if _, err := fmt.Sscanf(row[2], "%f", &v); err != nil {
			t.Fatalf("bad reads/sec cell %q: %v", row[2], err)
		}
		reads[row[0]+"/"+row[1]] = v
	}
	for _, k := range []string{"mvcc/1", "mvcc/16", "2pl/1", "2pl/16"} {
		if reads[k] == 0 && k != "2pl/16" {
			t.Fatalf("missing or zero row %s in E16:\n%s", k, tb)
		}
	}
	mvccRet := reads["mvcc/16"] / reads["mvcc/1"]
	pessRet := reads["2pl/16"] / reads["2pl/1"]
	if mvccRet < 0.6 {
		t.Errorf("mvcc reader retention 1→16 writers = %.2f, want >= 0.6\n%s", mvccRet, tb)
	}
	if mvccRet < pessRet+0.3 {
		t.Errorf("mvcc retention %.2f not decisively above 2pl retention %.2f\n%s", mvccRet, pessRet, tb)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{ID: "X", Title: "test", Header: []string{"a", "bb"}}
	tb.AddRow("hello", 3.14159)
	tb.AddRow(42, "x")
	tb.Notes = append(tb.Notes, "a note")
	s := tb.String()
	for _, frag := range []string{"X — test", "hello", "3.14", "42", "note: a note"} {
		if !strings.Contains(s, frag) {
			t.Errorf("missing %q in:\n%s", frag, s)
		}
	}
}

func TestGenerators(t *testing.T) {
	emps := genEmployees(100, 1)
	if len(emps) != 100 || len(emps[0]) != 3 {
		t.Fatalf("genEmployees shape wrong")
	}
	// Deterministic.
	emps2 := genEmployees(100, 1)
	for i := range emps {
		if emps[i][2].Int() != emps2[i][2].Int() {
			t.Fatal("genEmployees not deterministic")
		}
	}
	edges := genEdges(10, 30, 2)
	if len(edges) != 30 {
		t.Fatal("genEdges count")
	}
	chain := chainEdges(5)
	if len(chain) != 5 || chain[4][1].Int() != 5 {
		t.Fatalf("chainEdges = %v", chain)
	}
	tree := treeEdges(4)
	if len(tree) == 0 {
		t.Fatal("treeEdges empty")
	}
}
