package experiments

import (
	"strconv"
	"testing"
)

// TestE20VectorizedSpeedup is the E20 acceptance gate: the columnar
// executor must beat the tuple-at-a-time baseline by a wide margin on
// filter-heavy scans. The experiment itself hard-fails if EXPLAIN does
// not prove the vec engine's plans run vectorized, so a pass here also
// certifies the benchmark measured the columnar path, not a silent row
// fallback. The threshold (2x on the best filter selectivity, medians
// of interleaved runs) sits below the ~3.5–7x observed locally to
// absorb CI scheduler noise.
func TestE20VectorizedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	tab, err := E20Vectorized(true)
	if err != nil {
		t.Fatal(err)
	}
	shapeCol := headerIdx(t, tab.Header, "shape")
	speedupCol := headerIdx(t, tab.Header, "wall speedup")
	best := 0.0
	filters := 0
	for _, row := range tab.Rows {
		if row[shapeCol] != "filter-scan" {
			continue
		}
		filters++
		s, err := strconv.ParseFloat(row[speedupCol], 64)
		if err != nil {
			t.Fatalf("speedup cell %q: %v", row[speedupCol], err)
		}
		if s > best {
			best = s
		}
	}
	if filters < 4 {
		t.Fatalf("expected 4 filter-scan selectivities, got %d", filters)
	}
	if best < 2.0 {
		t.Errorf("best filter-scan wall speedup = %.2fx; want >= 2x (vectorized scan not paying off)", best)
	}
	// The other shapes must not be pathologically slower than the row
	// executor (grouped aggregation is hash-dominated, so its speedup
	// hovers near 1x and wobbles with scheduler noise — hence the loose
	// floor).
	for _, row := range tab.Rows {
		s, err := strconv.ParseFloat(row[speedupCol], 64)
		if err != nil {
			t.Fatal(err)
		}
		if s < 0.5 {
			t.Errorf("shape %s sel %s: wall speedup %.2fx — vectorized pathologically slower than row", row[shapeCol], row[1], s)
		}
	}
}

func headerIdx(t *testing.T, header []string, name string) int {
	t.Helper()
	for i, h := range header {
		if h == name {
			return i
		}
	}
	t.Fatalf("header %q missing from %v", name, header)
	return -1
}
