package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fragment"
	"repro/internal/value"
)

// E10Allocation tests the feasibility claim of §3.2: the high-bandwidth
// network makes *central* resource management practical. The central
// least-loaded allocator is compared with random and round-robin
// placement on storage balance and query response time.
func E10Allocation(quick bool) (*Table, error) {
	rows := 6000
	if quick {
		rows = 1500
	}
	allocators := []fragment.Allocator{
		fragment.CentralAllocator{AvoidDiskPEs: true},
		fragment.RandomAllocator{Seed: 99},
		fragment.RoundRobinAllocator{},
	}
	tuples := genEmployees(rows, 37)
	schema := value.MustSchema("id", "INT", "dept", "VARCHAR", "salary", "INT")

	t := &Table{
		ID:     "E10",
		Title:  fmt.Sprintf("fragment allocation policies, 3 tables x 8 fragments on 64 PEs, %d rows each", rows),
		Header: []string{"allocator", "PEs used", "max fragments/PE", "scan sim", "3-table concurrent sim"},
	}
	for _, alloc := range allocators {
		eng, err := core.New(core.Config{NumPEs: 64, Allocator: alloc})
		if err != nil {
			return nil, err
		}
		// Several tables stress placement interference.
		for _, name := range []string{"a", "b", "c"} {
			if err := eng.CreateTable(name, schema,
				&fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: 8}, []int{0}); err != nil {
				eng.Close()
				return nil, err
			}
			if err := eng.LoadTable(name, tuples); err != nil {
				eng.Close()
				return nil, err
			}
		}
		// Placement spread: how many fragments stack on one PE.
		perPE := map[int]int{}
		for _, name := range []string{"a", "b", "c"} {
			tab, err := eng.Catalog().Get(name)
			if err != nil {
				eng.Close()
				return nil, err
			}
			for i := 0; i < tab.NumFragments(); i++ {
				perPE[tab.PEOf(i)]++
			}
		}
		maxStack := 0
		for _, n := range perPE {
			if n > maxStack {
				maxStack = n
			}
		}

		queries := []string{
			`SELECT COUNT(*) AS n FROM a WHERE salary > 0`,
			`SELECT COUNT(*) AS n FROM b WHERE salary > 0`,
			`SELECT COUNT(*) AS n FROM c WHERE salary > 0`,
		}
		s := eng.NewSession()
		for _, q := range queries { // warm compiler caches
			if _, err := s.Exec(q); err != nil {
				eng.Close()
				return nil, err
			}
		}
		eng.Machine().ResetClocks()
		if _, err := s.Exec(queries[0]); err != nil {
			eng.Close()
			return nil, err
		}
		scanSim := eng.Machine().MaxClock()

		// Three sessions scan the three tables concurrently: stacked
		// placements serialize on their PEs' virtual clocks.
		eng.Machine().ResetClocks()
		var wg sync.WaitGroup
		errs := make([]error, len(queries))
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q string) {
				defer wg.Done()
				sess := eng.NewSession()
				defer sess.Close()
				_, errs[i] = sess.Exec(q)
			}(i, q)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				eng.Close()
				return nil, err
			}
		}
		concSim := eng.Machine().MaxClock()
		t.AddRow(alloc.Name(), len(perPE), maxStack,
			scanSim.Round(time.Microsecond).String(),
			concSim.Round(time.Microsecond).String())
		eng.Close()
	}
	t.Notes = append(t.Notes,
		"central placement spreads the 24 fragments over 24 distinct PEs; the baselines stack several fragments per PE, serializing concurrent work",
		"per the paper, central management is affordable because placement decisions ride a high-bandwidth network")
	return t, nil
}
