package expr

import (
	"fmt"

	"repro/internal/value"
)

// Param is a statement parameter placeholder ('?' or '$n' in SQL text).
// A prepared plan carries Params in its expressions; before execution the
// engine substitutes each one with a bound constant via SubstParams.
// Evaluating or compiling an unsubstituted Param is an error — parameters
// never survive into a running scan.
type Param struct {
	// Ord is the 0-based parameter slot ($1 has Ord 0).
	Ord int
}

// NewParam returns a placeholder for slot ord (0-based).
func NewParam(ord int) *Param { return &Param{Ord: ord} }

// Eval implements Expr; it always fails — Params must be substituted.
func (p *Param) Eval(value.Tuple) (value.Value, error) {
	return value.Null, fmt.Errorf("expr: parameter $%d not bound", p.Ord+1)
}

func (p *Param) String() string { return fmt.Sprintf("$%d", p.Ord+1) }

// SubstParams returns a deep copy of e with every Param replaced by the
// corresponding constant from args. An out-of-range slot is an error.
func SubstParams(e Expr, args []value.Value) (Expr, error) {
	if e == nil {
		return nil, nil
	}
	var serr error
	out := MapExpr(e, func(x Expr) Expr {
		p, ok := x.(*Param)
		if !ok {
			return nil
		}
		if p.Ord < 0 || p.Ord >= len(args) {
			if serr == nil {
				serr = fmt.Errorf("expr: parameter $%d out of range (%d bound)", p.Ord+1, len(args))
			}
			return NewConst(value.Null)
		}
		return NewConst(args[p.Ord])
	})
	if serr != nil {
		return nil, serr
	}
	return out, nil
}

// MapExpr deep-copies e pre-order, replacing any node for which repl
// returns non-nil by the replacement (children of a replaced node are
// not visited). Children are visited left to right, i.e. in source
// order — the Normalize/Parameterize interlock depends on that.
func MapExpr(e Expr, repl func(Expr) Expr) Expr {
	if r := repl(e); r != nil {
		return r
	}
	switch n := e.(type) {
	case *Cmp:
		return &Cmp{Op: n.Op, L: MapExpr(n.L, repl), R: MapExpr(n.R, repl)}
	case *Arith:
		return &Arith{Op: n.Op, L: MapExpr(n.L, repl), R: MapExpr(n.R, repl)}
	case *And:
		return &And{L: MapExpr(n.L, repl), R: MapExpr(n.R, repl)}
	case *Or:
		return &Or{L: MapExpr(n.L, repl), R: MapExpr(n.R, repl)}
	case *Not:
		return &Not{E: MapExpr(n.E, repl)}
	case *Neg:
		return &Neg{E: MapExpr(n.E, repl)}
	case *IsNull:
		return &IsNull{E: MapExpr(n.E, repl), Negate: n.Negate}
	case *In:
		return &In{E: MapExpr(n.E, repl), List: append([]value.Value(nil), n.List...), Negate: n.Negate}
	case *Like:
		return &Like{E: MapExpr(n.E, repl), Pattern: n.Pattern, Negate: n.Negate, matcher: n.matcher}
	case *Call:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = MapExpr(a, repl)
		}
		return &Call{Name: n.Name, Args: args}
	}
	return Clone(e)
}

// MaxParamOrd returns the largest parameter slot referenced by e, or -1
// when e holds no parameters.
func MaxParamOrd(e Expr) int {
	max := -1
	walkParams(e, func(p *Param) {
		if p.Ord > max {
			max = p.Ord
		}
	})
	return max
}

// HasParams reports whether e references any parameter.
func HasParams(e Expr) bool { return MaxParamOrd(e) >= 0 }

func walkParams(e Expr, fn func(*Param)) {
	switch n := e.(type) {
	case *Param:
		fn(n)
	case *Cmp:
		walkParams(n.L, fn)
		walkParams(n.R, fn)
	case *Arith:
		walkParams(n.L, fn)
		walkParams(n.R, fn)
	case *And:
		walkParams(n.L, fn)
		walkParams(n.R, fn)
	case *Or:
		walkParams(n.L, fn)
		walkParams(n.R, fn)
	case *Not:
		walkParams(n.E, fn)
	case *Neg:
		walkParams(n.E, fn)
	case *IsNull:
		walkParams(n.E, fn)
	case *In:
		walkParams(n.E, fn)
	case *Like:
		walkParams(n.E, fn)
	case *Call:
		for _, a := range n.Args {
			walkParams(a, fn)
		}
	}
}

// InferParamKinds records the expected kind of each parameter slot into
// kinds (len = statement arity, KindNull = unknown) by inspecting the
// bound expression: a Param compared with — or assigned from — a node of
// known kind inherits that kind. Conflicting evidence leaves the earlier
// inference in place; binding still fails later if a value truly cannot
// be coerced.
func InferParamKinds(e Expr, kinds []value.Kind) {
	learn := func(p *Param, k value.Kind) {
		if p.Ord >= 0 && p.Ord < len(kinds) && kinds[p.Ord] == value.KindNull {
			kinds[p.Ord] = k
		}
	}
	var walk func(Expr)
	sibling := func(a, b Expr) {
		p, ok := a.(*Param)
		if !ok {
			return
		}
		if k, known := staticKind(b); known && k != value.KindNull {
			learn(p, k)
		}
	}
	walk = func(e Expr) {
		switch n := e.(type) {
		case *Cmp:
			sibling(n.L, n.R)
			sibling(n.R, n.L)
			walk(n.L)
			walk(n.R)
		case *Arith:
			sibling(n.L, n.R)
			sibling(n.R, n.L)
			walk(n.L)
			walk(n.R)
		case *And:
			walk(n.L)
			walk(n.R)
		case *Or:
			walk(n.L)
			walk(n.R)
		case *Not:
			walk(n.E)
		case *Neg:
			walk(n.E)
		case *IsNull:
			walk(n.E)
		case *In:
			walk(n.E)
		case *Like:
			if p, ok := n.E.(*Param); ok {
				learn(p, value.KindString)
			}
			walk(n.E)
		case *Call:
			for _, a := range n.Args {
				walk(a)
			}
		}
	}
	walk(e)
}
