package expr

import (
	"cmp"
	"fmt"

	"repro/internal/value"
)

// This file is the columnar counterpart of compile.go: predicates compile
// to kernels that run over a value.Batch's typed column slices and emit a
// selection vector of qualifying physical row indices — set bits, no
// tuple materialization. The kernels are specialized on the same static
// shapes the row compiler exploits (int/float/string column vs constant,
// int column vs column); every other node shape falls back to the row
// predicate evaluated over a per-call scratch tuple, so vectorized and
// row execution agree on every expression the binder accepts.

// vecKernel appends the qualifying physical row indices of b to dst and
// returns it. sel lists candidate rows in ascending order; nil means all
// of b's physical rows. Kernels preserve ascending order.
type vecKernel func(b *value.Batch, sel []int32, dst []int32) []int32

// VecFilter is a compiled vectorized boolean filter. It is stateless and
// safe for concurrent use (the OFM caches one per predicate per fragment).
type VecFilter struct {
	kernel vecKernel
	src    string
}

// CompileVecFilter binds e (which must be boolean) against s and compiles
// it to a vectorized filter.
func CompileVecFilter(e Expr, s *value.Schema) (*VecFilter, error) {
	k, err := Bind(e, s)
	if err != nil {
		return nil, err
	}
	if k != value.KindBool && k != value.KindNull {
		return nil, fmt.Errorf("expr: predicate has kind %s, want BOOLEAN", k)
	}
	kern, err := compileVecTri(e)
	if err != nil {
		return nil, err
	}
	return &VecFilter{kernel: kern, src: e.String()}, nil
}

// String returns the source form of the filter.
func (f *VecFilter) String() string { return f.src }

// Filter appends the physical row indices of b satisfying the predicate
// to dst, considering only rows in sel (nil = all rows). One recover
// boundary covers the whole batch, like Predicate.FilterInto.
func (f *VecFilter) Filter(b *value.Batch, sel, dst []int32) (out []int32, err error) {
	defer catch(&err)
	return f.kernel(b, sel, dst), nil
}

func compileVecTri(e Expr) (vecKernel, error) {
	switch n := e.(type) {
	case *Cmp:
		return compileVecCmp(n)

	case *And:
		l, err := compileVecTri(n.L)
		if err != nil {
			return nil, err
		}
		r, err := compileVecTri(n.R)
		if err != nil {
			return nil, err
		}
		// Sequential filtering: the right kernel only sees rows the left
		// kept. Rows where the left is NULL are dropped before the right
		// runs — same output as the row path (l NULL never yields TRUE),
		// though a right side that faults on such rows won't fire here.
		return func(b *value.Batch, sel, dst []int32) []int32 {
			tmp := value.GetSel()
			tmp = l(b, sel, tmp)
			dst = r(b, tmp, dst)
			value.PutSel(tmp)
			return dst
		}, nil

	case *Or:
		l, err := compileVecTri(n.L)
		if err != nil {
			return nil, err
		}
		r, err := compileVecTri(n.R)
		if err != nil {
			return nil, err
		}
		// Left keeps first; the right kernel runs only over the left's
		// rejects; the two kept sets merge back into ascending order.
		return func(b *value.Batch, sel, dst []int32) []int32 {
			lkeep := value.GetSel()
			lkeep = l(b, sel, lkeep)
			rest := value.GetSel()
			li := 0
			if sel == nil {
				for row := 0; row < b.Rows; row++ {
					if li < len(lkeep) && lkeep[li] == int32(row) {
						li++
						continue
					}
					rest = append(rest, int32(row))
				}
			} else {
				for _, row := range sel {
					if li < len(lkeep) && lkeep[li] == row {
						li++
						continue
					}
					rest = append(rest, row)
				}
			}
			rkeep := value.GetSel()
			rkeep = r(b, rest, rkeep)
			dst = mergeSel(dst, lkeep, rkeep)
			value.PutSel(lkeep)
			value.PutSel(rest)
			value.PutSel(rkeep)
			return dst
		}, nil
	}

	// Everything else — NOT, IS NULL, IN, LIKE, boolean columns, generic
	// comparisons — reuses the row compiler over a per-call scratch tuple.
	tf, err := compileTri(e)
	if err != nil {
		return nil, err
	}
	return rowFallbackKernel(tf), nil
}

// rowFallbackKernel adapts a row predicate to the kernel contract. The
// scratch tuple is allocated per call so a cached filter stays safe for
// concurrent scans.
func rowFallbackKernel(tf triFn) vecKernel {
	return func(b *value.Batch, sel, dst []int32) []int32 {
		scratch := make(value.Tuple, len(b.Cols))
		fill := func(row int32) {
			for c, vec := range b.Cols {
				scratch[c] = vec.Value(int(row))
			}
		}
		if sel == nil {
			for row := 0; row < b.Rows; row++ {
				fill(int32(row))
				if tf(scratch) == triTrue {
					dst = append(dst, int32(row))
				}
			}
			return dst
		}
		for _, row := range sel {
			fill(row)
			if tf(scratch) == triTrue {
				dst = append(dst, row)
			}
		}
		return dst
	}
}

// mergeSel merges two ascending selection vectors into dst (ascending,
// duplicates impossible: the inputs are disjoint by construction).
func mergeSel(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// compileVecCmp specializes comparisons on the same operand shapes as the
// row compiler: typed column vs constant and int column vs int column run
// tight loops over the column slices; anything else (and any batch whose
// vector kind disagrees with the binder's static kind) falls back to the
// row comparison.
func compileVecCmp(n *Cmp) (vecKernel, error) {
	// The row fallback doubles as the safety net inside specialized
	// kernels when the vector kind is unexpected.
	tf, err := compileCmp(n)
	if err != nil {
		return nil, err
	}
	fallback := rowFallbackKernel(tf)

	l, r, op := n.L, n.R, n.Op
	if _, lc := l.(*Const); lc {
		if _, rc := r.(*Col); rc {
			l, r, op = r, l, op.Swap()
		}
	}
	lcol, ok := l.(*Col)
	if !ok || lcol.Index < 0 {
		return fallback, nil
	}
	ix := lcol.Index

	if rconst, ok := r.(*Const); ok {
		switch {
		case lcol.kind == value.KindInt && rconst.V.Kind() == value.KindInt:
			c := rconst.V.Int()
			return func(b *value.Batch, sel, dst []int32) []int32 {
				vec := b.Cols[ix]
				if vec.Kind != value.KindInt {
					return fallback(b, sel, dst)
				}
				return cmpConstLoop(vec.I, vec.Null, c, op, b.Rows, sel, dst)
			}, nil
		case lcol.kind == value.KindFloat && (rconst.V.Kind() == value.KindFloat || rconst.V.Kind() == value.KindInt):
			c := rconst.V.Float()
			return func(b *value.Batch, sel, dst []int32) []int32 {
				vec := b.Cols[ix]
				if vec.Kind != value.KindFloat {
					return fallback(b, sel, dst)
				}
				return cmpConstLoop(vec.F, vec.Null, c, op, b.Rows, sel, dst)
			}, nil
		case lcol.kind == value.KindString && rconst.V.Kind() == value.KindString:
			c := rconst.V.Str()
			return func(b *value.Batch, sel, dst []int32) []int32 {
				vec := b.Cols[ix]
				if vec.Kind != value.KindString {
					return fallback(b, sel, dst)
				}
				return cmpConstLoop(vec.S, vec.Null, c, op, b.Rows, sel, dst)
			}, nil
		}
		return fallback, nil
	}

	if rcol, ok := r.(*Col); ok && rcol.Index >= 0 &&
		lcol.kind == value.KindInt && rcol.kind == value.KindInt {
		rix := rcol.Index
		return func(b *value.Batch, sel, dst []int32) []int32 {
			lv, rv := b.Cols[ix], b.Cols[rix]
			if lv.Kind != value.KindInt || rv.Kind != value.KindInt {
				return fallback(b, sel, dst)
			}
			return cmpColLoop(lv.I, lv.Null, rv.I, rv.Null, op, b.Rows, sel, dst)
		}, nil
	}
	return fallback, nil
}

// cmpConstLoop is the column-vs-constant comparison kernel, shared by the
// int, float and string specializations. The NULL-free dense case — a
// freshly built column cache with no NULLs and no prior selection — runs
// a branch-light loop straight down the slice.
func cmpConstLoop[T cmp.Ordered](data []T, null []bool, c T, op CmpOp, rows int, sel, dst []int32) []int32 {
	if null == nil {
		if sel == nil {
			for row := 0; row < rows; row++ {
				if cmpHit(data[row], c, op) {
					dst = append(dst, int32(row))
				}
			}
			return dst
		}
		for _, row := range sel {
			if cmpHit(data[row], c, op) {
				dst = append(dst, row)
			}
		}
		return dst
	}
	if sel == nil {
		for row := 0; row < rows; row++ {
			if !null[row] && cmpHit(data[row], c, op) {
				dst = append(dst, int32(row))
			}
		}
		return dst
	}
	for _, row := range sel {
		if !null[row] && cmpHit(data[row], c, op) {
			dst = append(dst, row)
		}
	}
	return dst
}

// cmpColLoop is the int column-vs-column comparison kernel.
func cmpColLoop(lv []int64, lnull []bool, rv []int64, rnull []bool, op CmpOp, rows int, sel, dst []int32) []int32 {
	keep := func(row int32) bool {
		if lnull != nil && lnull[row] || rnull != nil && rnull[row] {
			return false
		}
		return cmpHit(lv[row], rv[row], op)
	}
	if sel == nil {
		for row := 0; row < rows; row++ {
			if keep(int32(row)) {
				dst = append(dst, int32(row))
			}
		}
		return dst
	}
	for _, row := range sel {
		if keep(row) {
			dst = append(dst, row)
		}
	}
	return dst
}

// cmpHit applies a comparison operator to ordered scalars. Small enough
// to inline into the kernels above.
func cmpHit[T cmp.Ordered](a, b T, op CmpOp) bool {
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	default:
		return a >= b
	}
}

// ColumnIndices reports whether every expression is a plain column
// reference against s, returning the referenced positions. Exec uses it
// to turn a projection into a pure column remap.
func ColumnIndices(es []Expr, s *value.Schema) ([]int, bool) {
	idxs := make([]int, len(es))
	for i, e := range es {
		col, ok := e.(*Col)
		if !ok {
			return nil, false
		}
		if _, err := Bind(col, s); err != nil {
			return nil, false
		}
		if col.Index < 0 {
			return nil, false
		}
		idxs[i] = col.Index
	}
	return idxs, true
}
