package expr

// likeMatcher is a compiled SQL LIKE pattern. '%' matches any run of
// characters (including empty), '_' matches exactly one. Patterns are
// compiled once per expression and reused per tuple.
type likeMatcher struct {
	// segments between '%' wildcards; each segment must appear in order.
	// Within a segment '_' matches any single byte.
	segments    []string
	leadingPct  bool
	trailingPct bool
}

func compileLike(pattern string) *likeMatcher {
	m := &likeMatcher{}
	var cur []byte
	flush := func() {
		m.segments = append(m.segments, string(cur))
		cur = cur[:0]
	}
	first := true
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == '%' {
			if first && len(cur) == 0 {
				m.leadingPct = true
			} else {
				flush()
			}
			// Collapse runs of %.
			for i+1 < len(pattern) && pattern[i+1] == '%' {
				i++
			}
			if i == len(pattern)-1 {
				m.trailingPct = true
			}
			first = false
			continue
		}
		first = false
		cur = append(cur, pattern[i])
	}
	if len(cur) > 0 || len(m.segments) == 0 {
		flush()
	}
	return m
}

// segMatchAt reports whether segment seg matches s starting at position i.
func segMatchAt(s, seg string, i int) bool {
	if i+len(seg) > len(s) {
		return false
	}
	for j := 0; j < len(seg); j++ {
		if seg[j] != '_' && seg[j] != s[i+j] {
			return false
		}
	}
	return true
}

// segFind returns the first position >= from where seg matches s, or -1.
func segFind(s, seg string, from int) int {
	for i := from; i+len(seg) <= len(s); i++ {
		if segMatchAt(s, seg, i) {
			return i
		}
	}
	return -1
}

func (m *likeMatcher) match(s string) bool {
	segs := m.segments
	if len(segs) == 0 {
		return m.leadingPct || s == ""
	}
	pos := 0
	for i, seg := range segs {
		isFirst := i == 0
		isLast := i == len(segs)-1
		switch {
		case isFirst && !m.leadingPct && isLast && !m.trailingPct:
			// Exact match (with _ wildcards).
			return len(s) == len(seg) && segMatchAt(s, seg, 0)
		case isFirst && !m.leadingPct:
			// Anchored prefix.
			if !segMatchAt(s, seg, 0) {
				return false
			}
			pos = len(seg)
		case isLast && !m.trailingPct:
			// Anchored suffix; it must also start at or after pos.
			start := len(s) - len(seg)
			return start >= pos && segMatchAt(s, seg, start)
		default:
			// Floating segment.
			at := segFind(s, seg, pos)
			if at < 0 {
				return false
			}
			pos = at + len(seg)
		}
	}
	return true
}
