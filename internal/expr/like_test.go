package expr

import "testing"

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"abc", "ab", false},
		{"abc", "abcd", false},
		{"a%", "abc", true},
		{"a%", "a", true},
		{"a%", "ba", false},
		{"%c", "abc", true},
		{"%c", "c", true},
		{"%c", "cb", false},
		{"%b%", "abc", true},
		{"%b%", "b", true},
		{"%b%", "ac", false},
		{"a%c", "abc", true},
		{"a%c", "ac", true},
		{"a%c", "abd", false},
		{"a%b%c", "aXbYc", true},
		{"a%b%c", "abc", true},
		{"a%b%c", "acb", false},
		{"_", "a", true},
		{"_", "", false},
		{"_", "ab", false},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"_b%", "abc", true},
		{"_b%", "bbc", true},
		{"_b%", "bca", false},
		{"%", "", true},
		{"%", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"%%", "x", true},      // collapsed %
		{"a%%b", "aXb", true},  // collapsed % inside
		{"%a_", "za b", false}, // suffix segment with _
		{"%a_", "zaX", true},   //
		{"abc%", "abc", true},  // trailing % matches empty
		{"abc%", "ab", false},  //
		{"%abc", "abc", true},  // leading % matches empty
		{"a%a", "a", false},    // overlapping anchors need two chars
		{"a%a", "aa", true},    //
		{"__", "ab", true},     // two underscores
		{"__", "a", false},     //
		{"x_%", "xy", true},    // underscore then any
		{"x_%", "x", false},    //
	}
	for _, c := range cases {
		m := compileLike(c.pattern)
		if got := m.match(c.s); got != c.want {
			t.Errorf("LIKE %q on %q = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestLikeSuffixAfterFloating(t *testing.T) {
	// The suffix anchor must not overlap a floating segment already
	// consumed: "%ab%b" on "ab" must be false ("ab" then a later "b").
	m := compileLike("%ab%b")
	if m.match("ab") {
		t.Error("pattern pct-ab-pct-b should not match ab")
	}
	if !m.match("abb") {
		t.Error("pattern pct-ab-pct-b should match abb")
	}
	if !m.match("abXb") {
		t.Error("pattern pct-ab-pct-b should match abXb")
	}
}
