package expr

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

// randTuple produces a random tuple matching testSchema, with occasional
// NULLs to exercise three-valued logic.
func randTuple(r *rand.Rand) value.Tuple {
	t := make(value.Tuple, 4)
	if r.Intn(10) == 0 {
		t[0] = value.Null
	} else {
		t[0] = value.NewInt(r.Int63n(1000))
	}
	names := []string{"ann", "bob", "cat", "dave", "eve", ""}
	t[1] = value.NewString(names[r.Intn(len(names))])
	t[2] = value.NewFloat(r.Float64() * 100)
	t[3] = value.NewBool(r.Intn(2) == 0)
	return t
}

// exprCorpus returns a set of predicates covering every compiled shape.
func exprCorpus() []Expr {
	col := func(n string) Expr { return NewCol(n) }
	ic := func(i int64) Expr { return NewConst(value.NewInt(i)) }
	return []Expr{
		NewCmp(EQ, col("id"), ic(500)),
		NewCmp(NE, col("id"), ic(500)),
		NewCmp(LT, col("id"), ic(500)),
		NewCmp(LE, col("id"), ic(500)),
		NewCmp(GT, col("id"), ic(500)),
		NewCmp(GE, col("id"), ic(500)),
		NewCmp(LT, ic(500), col("id")), // const-on-left normalization
		NewCmp(EQ, col("name"), NewConst(value.NewString("bob"))),
		NewCmp(GE, col("name"), NewConst(value.NewString("c"))),
		NewCmp(GT, col("score"), NewConst(value.NewFloat(50))),
		NewCmp(LE, col("score"), NewConst(value.NewInt(25))),
		NewCmp(LT, col("id"), col("id")),
		NewAnd(NewCmp(GT, col("id"), ic(100)), NewCmp(LT, col("id"), ic(900))),
		NewOr(NewCmp(LT, col("id"), ic(100)), NewCmp(GT, col("id"), ic(900))),
		NewNot(NewCmp(EQ, col("id"), ic(500))),
		NewIsNull(col("id"), false),
		NewIsNull(col("id"), true),
		NewIn(col("id"), []value.Value{value.NewInt(1), value.NewInt(2), value.NewInt(3)}, false),
		NewIn(col("id"), []value.Value{value.NewInt(1)}, true),
		NewIn(col("name"), []value.Value{value.NewString("ann"), value.NewString("eve")}, false),
		NewLike(col("name"), "a%", false),
		NewLike(col("name"), "%v%", false),
		NewLike(col("name"), "_o_", false),
		NewLike(col("name"), "b%", true),
		col("active"),
		NewAnd(col("active"), NewCmp(GT, col("score"), NewConst(value.NewFloat(10)))),
		NewCmp(EQ, NewArith(Mod, col("id"), ic(7)), ic(0)),
		NewCmp(GT, NewArith(Add, col("id"), ic(5)), ic(500)),
		NewCmp(LT, NewArith(Mul, col("id"), ic(2)), NewArith(Sub, col("id"), ic(-100))),
		NewCmp(GT, NewCall("abs", NewArith(Sub, col("id"), ic(500))), ic(250)),
		NewCmp(EQ, NewCall("length", col("name")), ic(3)),
	}
}

// TestCompiledMatchesInterpreted is the central equivalence property: for
// every predicate shape and thousands of random tuples, the compiled
// program and the interpreter must agree exactly (including NULL).
func TestCompiledMatchesInterpreted(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	tuples := make([]value.Tuple, 2000)
	for i := range tuples {
		tuples[i] = randTuple(r)
	}
	for _, e := range exprCorpus() {
		interp := Clone(e)
		if _, err := Bind(interp, testSchema); err != nil {
			t.Fatalf("bind %s: %v", e, err)
		}
		pred, err := CompilePredicate(Clone(e), testSchema)
		if err != nil {
			t.Fatalf("compile %s: %v", e, err)
		}
		for _, tup := range tuples {
			iv, err := interp.Eval(tup)
			if err != nil {
				t.Fatalf("interpret %s on %v: %v", e, tup, err)
			}
			cv, err := pred.Match(tup)
			if err != nil {
				t.Fatalf("compiled %s on %v: %v", e, tup, err)
			}
			if Truthy(iv) != cv {
				t.Fatalf("%s on %v: interpreted %v, compiled %v", e, tup, iv, cv)
			}
		}
	}
}

func TestCompiledProgramMatchesInterpretedValues(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	tuples := make([]value.Tuple, 500)
	for i := range tuples {
		tuples[i] = randTuple(r)
	}
	exprs := []Expr{
		NewArith(Add, NewCol("id"), NewConst(value.NewInt(3))),
		NewArith(Mul, NewCol("score"), NewConst(value.NewFloat(2))),
		NewArith(Sub, NewCol("id"), NewCol("id")),
		NewCall("upper", NewCol("name")),
		NewCall("abs", NewNeg(NewCol("id"))),
		NewCmp(GT, NewCol("id"), NewConst(value.NewInt(10))),
	}
	for _, e := range exprs {
		interp := Clone(e)
		if _, err := Bind(interp, testSchema); err != nil {
			t.Fatalf("bind %s: %v", e, err)
		}
		prog, err := Compile(Clone(e), testSchema)
		if err != nil {
			t.Fatalf("compile %s: %v", e, err)
		}
		for _, tup := range tuples {
			iv, ierr := interp.Eval(tup)
			cv, cerr := prog.Eval(tup)
			if (ierr == nil) != (cerr == nil) {
				t.Fatalf("%s on %v: interp err %v, compiled err %v", e, tup, ierr, cerr)
			}
			if ierr == nil && !sameNullable(iv, cv) {
				t.Fatalf("%s on %v: interpreted %v, compiled %v", e, tup, iv, cv)
			}
		}
	}
}

func TestFilterInto(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	tuples := make([]value.Tuple, 1000)
	for i := range tuples {
		tuples[i] = randTuple(r)
	}
	pred, err := CompilePredicate(
		NewCmp(LT, NewCol("id"), NewConst(value.NewInt(500))), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	out, err := pred.FilterInto(nil, tuples)
	if err != nil {
		t.Fatal(err)
	}
	n, err := pred.Count(tuples)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("FilterInto kept %d, Count says %d", len(out), n)
	}
	for _, tup := range out {
		if tup[0].IsNull() || tup[0].Int() >= 500 {
			t.Fatalf("filter kept bad tuple %v", tup)
		}
	}
}

func TestCompiledRuntimeFault(t *testing.T) {
	// Division by zero in compiled code must surface as an error, not a
	// panic, at every API boundary.
	e := NewCmp(GT, NewArith(Div, NewConst(value.NewInt(1)), NewCol("id")), NewConst(value.NewInt(0)))
	pred, err := CompilePredicate(e, testSchema)
	if err != nil {
		t.Fatal(err)
	}
	zero := value.NewTuple(value.NewInt(0), value.NewString(""), value.NewFloat(0), value.NewBool(false))
	if _, err := pred.Match(zero); err == nil {
		t.Error("Match should report division by zero")
	}
	if _, err := pred.FilterInto(nil, []value.Tuple{zero}); err == nil {
		t.Error("FilterInto should report division by zero")
	}
	if _, err := pred.Count([]value.Tuple{zero}); err == nil {
		t.Error("Count should report division by zero")
	}
	prog, err := Compile(NewArith(Div, NewConst(value.NewInt(1)), NewCol("id")), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Eval(zero); err == nil {
		t.Error("Eval should report division by zero")
	}
	if _, err := prog.EvalBatch(nil, []value.Tuple{zero}); err == nil {
		t.Error("EvalBatch should report division by zero")
	}
}

func TestCompilePredicateRejectsNonBool(t *testing.T) {
	if _, err := CompilePredicate(NewCol("id"), testSchema); err == nil {
		t.Error("int-typed predicate should be rejected")
	}
	if _, err := CompilePredicate(NewCol("nosuch"), testSchema); err == nil {
		t.Error("unknown column should be rejected")
	}
}

func TestProjector(t *testing.T) {
	proj, err := CompileProjector(
		[]Expr{NewCol("name"), NewArith(Mul, NewCol("id"), NewConst(value.NewInt(10)))},
		[]string{"who", "tenfold"},
		testSchema,
	)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Schema().Column(0).Name != "who" || proj.Schema().Column(1).Name != "tenfold" {
		t.Errorf("projector schema = %v", proj.Schema())
	}
	if proj.Schema().Column(1).Kind != value.KindInt {
		t.Errorf("projected kind = %v", proj.Schema().Column(1).Kind)
	}
	out, err := proj.Apply(row(4, "ann", 0, true))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Str() != "ann" || out[1].Int() != 40 {
		t.Errorf("Apply gave %v", out)
	}
	batch, err := proj.ApplyBatch([]value.Tuple{row(1, "a", 0, true), row(2, "b", 0, true)})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 || batch[1][1].Int() != 20 {
		t.Errorf("ApplyBatch gave %v", batch)
	}
	// Autonamed column.
	proj2, err := CompileProjector([]Expr{NewCol("id")}, nil, testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if proj2.Schema().Column(0).Name != "id" {
		t.Errorf("autoname = %q", proj2.Schema().Column(0).Name)
	}
}

func TestCompiledNullHandling(t *testing.T) {
	nullID := value.NewTuple(value.Null, value.NewString("x"), value.NewFloat(1), value.NewBool(true))
	pred, err := CompilePredicate(NewCmp(EQ, NewCol("id"), NewConst(value.NewInt(1))), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := pred.Match(nullID)
	if err != nil || ok {
		t.Errorf("NULL = 1 must not match; got %v, %v", ok, err)
	}
	// NOT (NULL = 1) is NULL, still no match.
	pred2, err := CompilePredicate(NewNot(NewCmp(EQ, NewCol("id"), NewConst(value.NewInt(1)))), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = pred2.Match(nullID)
	if err != nil || ok {
		t.Errorf("NOT (NULL = 1) must not match; got %v, %v", ok, err)
	}
	// id IS NULL matches.
	pred3, err := CompilePredicate(NewIsNull(NewCol("id"), false), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = pred3.Match(nullID)
	if err != nil || !ok {
		t.Errorf("id IS NULL must match; got %v, %v", ok, err)
	}
}

func TestProgramMetadata(t *testing.T) {
	prog, err := Compile(NewArith(Add, NewCol("id"), NewConst(value.NewInt(1))), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Kind() != value.KindInt {
		t.Errorf("Kind = %v", prog.Kind())
	}
	if prog.String() == "" {
		t.Error("String should render the source expression")
	}
}
