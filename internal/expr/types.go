package expr

import (
	"fmt"

	"repro/internal/value"
)

// Bind resolves column references in e against schema s and infers the
// static result kind. It must be called before Compile; Eval works on
// bound expressions only (unbound columns error at run time).
// KindNull in the result means "unknown" (a bare NULL literal).
func Bind(e Expr, s *value.Schema) (value.Kind, error) {
	switch n := e.(type) {
	case *Col:
		if n.Index < 0 {
			ix := s.Index(n.Name)
			if ix < 0 {
				return value.KindNull, fmt.Errorf("expr: unknown column %q in %s", n.Name, s)
			}
			n.Index = ix
		}
		if n.Index >= s.Len() {
			return value.KindNull, fmt.Errorf("expr: column index %d out of range for %s", n.Index, s)
		}
		n.kind = s.Column(n.Index).Kind
		return n.kind, nil

	case *Const:
		return n.V.Kind(), nil

	case *Param:
		// A placeholder's kind is unknown until a value is bound;
		// KindNull compares with anything.
		return value.KindNull, nil

	case *Cmp:
		lk, err := Bind(n.L, s)
		if err != nil {
			return value.KindNull, err
		}
		rk, err := Bind(n.R, s)
		if err != nil {
			return value.KindNull, err
		}
		if !kindsComparable(lk, rk) {
			return value.KindNull, fmt.Errorf("expr: cannot compare %s with %s in %s", lk, rk, n)
		}
		return value.KindBool, nil

	case *Arith:
		lk, err := Bind(n.L, s)
		if err != nil {
			return value.KindNull, err
		}
		rk, err := Bind(n.R, s)
		if err != nil {
			return value.KindNull, err
		}
		return arithKind(n.Op, lk, rk, n)

	case *And:
		if err := bindBool(n.L, s, "AND"); err != nil {
			return value.KindNull, err
		}
		if err := bindBool(n.R, s, "AND"); err != nil {
			return value.KindNull, err
		}
		return value.KindBool, nil

	case *Or:
		if err := bindBool(n.L, s, "OR"); err != nil {
			return value.KindNull, err
		}
		if err := bindBool(n.R, s, "OR"); err != nil {
			return value.KindNull, err
		}
		return value.KindBool, nil

	case *Not:
		if err := bindBool(n.E, s, "NOT"); err != nil {
			return value.KindNull, err
		}
		return value.KindBool, nil

	case *Neg:
		k, err := Bind(n.E, s)
		if err != nil {
			return value.KindNull, err
		}
		if k != value.KindInt && k != value.KindFloat && k != value.KindNull {
			return value.KindNull, fmt.Errorf("expr: cannot negate %s", k)
		}
		return k, nil

	case *IsNull:
		if _, err := Bind(n.E, s); err != nil {
			return value.KindNull, err
		}
		return value.KindBool, nil

	case *In:
		k, err := Bind(n.E, s)
		if err != nil {
			return value.KindNull, err
		}
		for _, item := range n.List {
			if !kindsComparable(k, item.Kind()) {
				return value.KindNull, fmt.Errorf("expr: IN list item %s incomparable with %s", item.Quoted(), k)
			}
		}
		return value.KindBool, nil

	case *Like:
		k, err := Bind(n.E, s)
		if err != nil {
			return value.KindNull, err
		}
		if k != value.KindString && k != value.KindNull {
			return value.KindNull, fmt.Errorf("expr: LIKE over %s", k)
		}
		return value.KindBool, nil

	case *Call:
		for _, a := range n.Args {
			if _, err := Bind(a, s); err != nil {
				return value.KindNull, err
			}
		}
		switch n.Name {
		case "ABS":
			if len(n.Args) != 1 {
				return value.KindNull, fmt.Errorf("expr: ABS takes 1 argument")
			}
			k, _ := Bind(n.Args[0], s)
			return k, nil
		case "LENGTH":
			if len(n.Args) != 1 {
				return value.KindNull, fmt.Errorf("expr: LENGTH takes 1 argument")
			}
			return value.KindInt, nil
		case "LOWER", "UPPER":
			if len(n.Args) != 1 {
				return value.KindNull, fmt.Errorf("expr: %s takes 1 argument", n.Name)
			}
			return value.KindString, nil
		default:
			return value.KindNull, fmt.Errorf("expr: unknown function %s", n.Name)
		}
	}
	return value.KindNull, fmt.Errorf("expr: unknown node %T", e)
}

func bindBool(e Expr, s *value.Schema, ctx string) error {
	k, err := Bind(e, s)
	if err != nil {
		return err
	}
	if k != value.KindBool && k != value.KindNull {
		return fmt.Errorf("expr: %s over non-boolean %s", ctx, k)
	}
	return nil
}

func kindsComparable(a, b value.Kind) bool {
	if a == b || a == value.KindNull || b == value.KindNull {
		return true
	}
	num := func(k value.Kind) bool { return k == value.KindInt || k == value.KindFloat }
	return num(a) && num(b)
}

func arithKind(op ArithOp, lk, rk value.Kind, n Expr) (value.Kind, error) {
	num := func(k value.Kind) bool { return k == value.KindInt || k == value.KindFloat }
	switch {
	case lk == value.KindNull || rk == value.KindNull:
		return value.KindNull, nil
	case op == Add && lk == value.KindString && rk == value.KindString:
		return value.KindString, nil
	case op == Mod:
		if lk == value.KindInt && rk == value.KindInt {
			return value.KindInt, nil
		}
		return value.KindNull, fmt.Errorf("expr: %% needs integers in %s", n)
	case num(lk) && num(rk):
		if lk == value.KindInt && rk == value.KindInt {
			return value.KindInt, nil
		}
		return value.KindFloat, nil
	default:
		return value.KindNull, fmt.Errorf("expr: cannot apply %s to %s and %s in %s", op, lk, rk, n)
	}
}

// Columns returns the sorted set of column indexes referenced by a bound
// expression. The optimizer uses it for pushdown and fragment pruning.
func Columns(e Expr) []int {
	set := map[int]struct{}{}
	collectCols(e, set)
	out := make([]int, 0, len(set))
	for ix := range set {
		out = append(out, ix)
	}
	// insertion sort; sets are tiny
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func collectCols(e Expr, set map[int]struct{}) {
	switch n := e.(type) {
	case *Col:
		set[n.Index] = struct{}{}
	case *Cmp:
		collectCols(n.L, set)
		collectCols(n.R, set)
	case *Arith:
		collectCols(n.L, set)
		collectCols(n.R, set)
	case *And:
		collectCols(n.L, set)
		collectCols(n.R, set)
	case *Or:
		collectCols(n.L, set)
		collectCols(n.R, set)
	case *Not:
		collectCols(n.E, set)
	case *Neg:
		collectCols(n.E, set)
	case *IsNull:
		collectCols(n.E, set)
	case *In:
		collectCols(n.E, set)
	case *Like:
		collectCols(n.E, set)
	case *Call:
		for _, a := range n.Args {
			collectCols(a, set)
		}
	}
}

// ColumnNames returns the set of column names referenced by an unbound
// expression, in first-appearance order.
func ColumnNames(e Expr) []string {
	var out []string
	seen := map[string]struct{}{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case *Col:
			if _, dup := seen[n.Name]; !dup {
				seen[n.Name] = struct{}{}
				out = append(out, n.Name)
			}
		case *Cmp:
			walk(n.L)
			walk(n.R)
		case *Arith:
			walk(n.L)
			walk(n.R)
		case *And:
			walk(n.L)
			walk(n.R)
		case *Or:
			walk(n.L)
			walk(n.R)
		case *Not:
			walk(n.E)
		case *Neg:
			walk(n.E)
		case *IsNull:
			walk(n.E)
		case *In:
			walk(n.E)
		case *Like:
			walk(n.E)
		case *Call:
			for _, a := range n.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}

// Clone deep-copies an expression tree, so that rewrites on one plan
// alternative never corrupt another.
func Clone(e Expr) Expr {
	switch n := e.(type) {
	case *Col:
		c := *n
		return &c
	case *Const:
		c := *n
		return &c
	case *Param:
		c := *n
		return &c
	case *Cmp:
		return &Cmp{Op: n.Op, L: Clone(n.L), R: Clone(n.R)}
	case *Arith:
		return &Arith{Op: n.Op, L: Clone(n.L), R: Clone(n.R)}
	case *And:
		return &And{L: Clone(n.L), R: Clone(n.R)}
	case *Or:
		return &Or{L: Clone(n.L), R: Clone(n.R)}
	case *Not:
		return &Not{E: Clone(n.E)}
	case *Neg:
		return &Neg{E: Clone(n.E)}
	case *IsNull:
		return &IsNull{E: Clone(n.E), Negate: n.Negate}
	case *In:
		return &In{E: Clone(n.E), List: append([]value.Value(nil), n.List...), Negate: n.Negate}
	case *Like:
		return &Like{E: Clone(n.E), Pattern: n.Pattern, Negate: n.Negate, matcher: n.matcher}
	case *Call:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Clone(a)
		}
		return &Call{Name: n.Name, Args: args}
	}
	return e
}

// MapCols rewrites every column index through f (used when predicates
// move through projections or join sides). The expression must be bound.
func MapCols(e Expr, f func(int) int) {
	switch n := e.(type) {
	case *Col:
		n.Index = f(n.Index)
	case *Cmp:
		MapCols(n.L, f)
		MapCols(n.R, f)
	case *Arith:
		MapCols(n.L, f)
		MapCols(n.R, f)
	case *And:
		MapCols(n.L, f)
		MapCols(n.R, f)
	case *Or:
		MapCols(n.L, f)
		MapCols(n.R, f)
	case *Not:
		MapCols(n.E, f)
	case *Neg:
		MapCols(n.E, f)
	case *IsNull:
		MapCols(n.E, f)
	case *In:
		MapCols(n.E, f)
	case *Like:
		MapCols(n.E, f)
	case *Call:
		for _, a := range n.Args {
			MapCols(a, f)
		}
	}
}
