package expr

import (
	"strings"
	"testing"

	"repro/internal/value"
)

var testSchema = value.MustSchema(
	"id", "INT",
	"name", "VARCHAR",
	"score", "FLOAT",
	"active", "BOOL",
)

func row(id int64, name string, score float64, active bool) value.Tuple {
	return value.NewTuple(value.NewInt(id), value.NewString(name), value.NewFloat(score), value.NewBool(active))
}

// evalOn binds e and interprets it against t, failing the test on error.
func evalOn(t *testing.T, e Expr, tup value.Tuple) value.Value {
	t.Helper()
	if _, err := Bind(e, testSchema); err != nil {
		t.Fatalf("bind %s: %v", e, err)
	}
	v, err := e.Eval(tup)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v
}

func TestColAndConst(t *testing.T) {
	tup := row(7, "ann", 1.5, true)
	if v := evalOn(t, NewCol("id"), tup); v.Int() != 7 {
		t.Errorf("id = %v", v)
	}
	if v := evalOn(t, NewCol("NAME"), tup); v.Str() != "ann" {
		t.Errorf("case-insensitive col = %v", v)
	}
	if v := evalOn(t, NewConst(value.NewInt(3)), tup); v.Int() != 3 {
		t.Errorf("const = %v", v)
	}
}

func TestUnboundColErrors(t *testing.T) {
	c := NewCol("id")
	if _, err := c.Eval(row(1, "x", 0, false)); err == nil {
		t.Error("unbound column should error at Eval")
	}
	if _, err := Bind(NewCol("nosuch"), testSchema); err == nil {
		t.Error("binding unknown column should error")
	}
}

func TestComparisons(t *testing.T) {
	tup := row(7, "ann", 1.5, true)
	cases := []struct {
		e    Expr
		want bool
	}{
		{NewCmp(EQ, NewCol("id"), NewConst(value.NewInt(7))), true},
		{NewCmp(NE, NewCol("id"), NewConst(value.NewInt(7))), false},
		{NewCmp(LT, NewCol("id"), NewConst(value.NewInt(10))), true},
		{NewCmp(LE, NewCol("id"), NewConst(value.NewInt(7))), true},
		{NewCmp(GT, NewCol("id"), NewConst(value.NewInt(7))), false},
		{NewCmp(GE, NewCol("id"), NewConst(value.NewInt(7))), true},
		{NewCmp(EQ, NewCol("name"), NewConst(value.NewString("ann"))), true},
		{NewCmp(LT, NewCol("name"), NewConst(value.NewString("zzz"))), true},
		{NewCmp(GT, NewCol("score"), NewConst(value.NewFloat(1.0))), true},
		{NewCmp(EQ, NewCol("score"), NewConst(value.NewInt(1))), false},
		{NewCmp(EQ, NewConst(value.NewInt(7)), NewCol("id")), true},
	}
	for _, c := range cases {
		v := evalOn(t, c.e, tup)
		if v.Kind() != value.KindBool || v.Bool() != c.want {
			t.Errorf("%s = %v, want %v", c.e, v, c.want)
		}
	}
}

func TestCmpNullSemantics(t *testing.T) {
	tup := value.NewTuple(value.Null, value.NewString("x"), value.NewFloat(0), value.NewBool(true))
	e := NewCmp(EQ, NewCol("id"), NewConst(value.NewInt(1)))
	if v := evalOn(t, e, tup); !v.IsNull() {
		t.Errorf("NULL = 1 should be NULL, got %v", v)
	}
}

func TestArithEval(t *testing.T) {
	tup := row(6, "x", 1.5, true)
	e := NewArith(Add, NewArith(Mul, NewCol("id"), NewConst(value.NewInt(2))), NewConst(value.NewInt(1)))
	if v := evalOn(t, e, tup); v.Int() != 13 {
		t.Errorf("6*2+1 = %v", v)
	}
	f := NewArith(Div, NewCol("score"), NewConst(value.NewFloat(0.5)))
	if v := evalOn(t, f, tup); v.Float() != 3.0 {
		t.Errorf("1.5/0.5 = %v", v)
	}
	m := NewArith(Mod, NewCol("id"), NewConst(value.NewInt(4)))
	if v := evalOn(t, m, tup); v.Int() != 2 {
		t.Errorf("6%%4 = %v", v)
	}
}

func TestDivisionByZeroErrors(t *testing.T) {
	e := NewArith(Div, NewCol("id"), NewConst(value.NewInt(0)))
	if _, err := Bind(e, testSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Eval(row(1, "x", 0, false)); err == nil {
		t.Error("interpreter should report division by zero")
	}
}

func TestLogic(t *testing.T) {
	tup := row(7, "ann", 1.5, true)
	tr := NewConst(value.NewBool(true))
	fa := NewConst(value.NewBool(false))
	nu := NewConst(value.Null)
	cases := []struct {
		e    Expr
		want value.Value
	}{
		{NewAnd(tr, tr), value.NewBool(true)},
		{NewAnd(tr, fa), value.NewBool(false)},
		{NewAnd(fa, nu), value.NewBool(false)}, // false AND NULL = false
		{NewAnd(tr, nu), value.Null},
		{NewOr(fa, fa), value.NewBool(false)},
		{NewOr(fa, tr), value.NewBool(true)},
		{NewOr(tr, nu), value.NewBool(true)}, // true OR NULL = true
		{NewOr(fa, nu), value.Null},
		{NewNot(tr), value.NewBool(false)},
		{NewNot(fa), value.NewBool(true)},
		{NewNot(nu), value.Null},
	}
	for _, c := range cases {
		v := evalOn(t, c.e, tup)
		if !sameNullable(v, c.want) {
			t.Errorf("%s = %v, want %v", c.e, v, c.want)
		}
	}
}

func sameNullable(a, b value.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() == b.IsNull()
	}
	return value.Equal(a, b)
}

func TestNegIsNullIn(t *testing.T) {
	tup := row(7, "ann", 1.5, true)
	if v := evalOn(t, NewNeg(NewCol("id")), tup); v.Int() != -7 {
		t.Errorf("-id = %v", v)
	}
	if v := evalOn(t, NewIsNull(NewCol("id"), false), tup); v.Bool() {
		t.Error("id IS NULL should be false")
	}
	if v := evalOn(t, NewIsNull(NewCol("id"), true), tup); !v.Bool() {
		t.Error("id IS NOT NULL should be true")
	}
	in := NewIn(NewCol("id"), []value.Value{value.NewInt(1), value.NewInt(7)}, false)
	if v := evalOn(t, in, tup); !v.Bool() {
		t.Error("id IN (1,7) should be true")
	}
	notIn := NewIn(NewCol("id"), []value.Value{value.NewInt(1)}, true)
	if v := evalOn(t, notIn, tup); !v.Bool() {
		t.Error("id NOT IN (1) should be true")
	}
	inNull := NewIn(NewConst(value.Null), []value.Value{value.NewInt(1)}, false)
	if v := evalOn(t, inNull, tup); !v.IsNull() {
		t.Error("NULL IN (...) should be NULL")
	}
}

func TestCallBuiltins(t *testing.T) {
	tup := row(-4, "MiXeD", 1.5, true)
	if v := evalOn(t, NewCall("abs", NewCol("id")), tup); v.Int() != 4 {
		t.Errorf("ABS(-4) = %v", v)
	}
	if v := evalOn(t, NewCall("length", NewCol("name")), tup); v.Int() != 5 {
		t.Errorf("LENGTH = %v", v)
	}
	if v := evalOn(t, NewCall("lower", NewCol("name")), tup); v.Str() != "mixed" {
		t.Errorf("LOWER = %v", v)
	}
	if v := evalOn(t, NewCall("upper", NewCol("name")), tup); v.Str() != "MIXED" {
		t.Errorf("UPPER = %v", v)
	}
	if _, err := Bind(NewCall("nosuch", NewCol("id")), testSchema); err == nil {
		t.Error("unknown function should fail to bind")
	}
	if _, err := Bind(NewCall("abs"), testSchema); err == nil {
		t.Error("ABS with no args should fail to bind")
	}
}

func TestBindTypeErrors(t *testing.T) {
	bad := []Expr{
		NewCmp(EQ, NewCol("id"), NewConst(value.NewString("x"))),
		NewArith(Add, NewCol("active"), NewConst(value.NewInt(1))),
		NewArith(Mod, NewCol("score"), NewConst(value.NewInt(2))),
		NewAnd(NewCol("id"), NewConst(value.NewBool(true))),
		NewOr(NewConst(value.NewBool(true)), NewCol("name")),
		NewNot(NewCol("id")),
		NewNeg(NewCol("name")),
		NewLike(NewCol("id"), "a%", false),
		NewIn(NewCol("id"), []value.Value{value.NewString("x")}, false),
	}
	for _, e := range bad {
		if _, err := Bind(e, testSchema); err == nil {
			t.Errorf("Bind(%s) should fail", e)
		}
	}
}

func TestBindInferredKinds(t *testing.T) {
	cases := []struct {
		e    Expr
		want value.Kind
	}{
		{NewCol("id"), value.KindInt},
		{NewCol("score"), value.KindFloat},
		{NewArith(Add, NewCol("id"), NewCol("id")), value.KindInt},
		{NewArith(Add, NewCol("id"), NewCol("score")), value.KindFloat},
		{NewArith(Add, NewCol("name"), NewCol("name")), value.KindString},
		{NewCmp(LT, NewCol("id"), NewCol("score")), value.KindBool},
		{NewIsNull(NewCol("name"), false), value.KindBool},
	}
	for _, c := range cases {
		k, err := Bind(c.e, testSchema)
		if err != nil {
			t.Fatalf("bind %s: %v", c.e, err)
		}
		if k != c.want {
			t.Errorf("kind of %s = %v, want %v", c.e, k, c.want)
		}
	}
}

func TestConjoinSplit(t *testing.T) {
	a := NewCmp(GT, NewCol("id"), NewConst(value.NewInt(1)))
	b := NewCmp(LT, NewCol("id"), NewConst(value.NewInt(9)))
	c := NewIsNull(NewCol("name"), true)
	e := Conjoin([]Expr{a, nil, b, c})
	parts := SplitConjuncts(e)
	if len(parts) != 3 {
		t.Fatalf("SplitConjuncts returned %d parts", len(parts))
	}
	if Conjoin(nil) != nil {
		t.Error("Conjoin(nil) should be nil")
	}
	if got := Conjoin([]Expr{a}); got != a {
		t.Error("Conjoin of one element should be that element")
	}
	if parts := SplitConjuncts(nil); parts != nil {
		t.Error("SplitConjuncts(nil) should be nil")
	}
}

func TestColumnsAndNames(t *testing.T) {
	e := NewAnd(
		NewCmp(GT, NewCol("score"), NewConst(value.NewFloat(0))),
		NewCmp(EQ, NewCol("id"), NewConst(value.NewInt(1))),
	)
	if _, err := Bind(e, testSchema); err != nil {
		t.Fatal(err)
	}
	cols := Columns(e)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 {
		t.Errorf("Columns = %v, want [0 2]", cols)
	}
	names := ColumnNames(e)
	if len(names) != 2 || names[0] != "score" || names[1] != "id" {
		t.Errorf("ColumnNames = %v", names)
	}
}

func TestCloneIsDeep(t *testing.T) {
	e := NewAnd(
		NewCmp(GT, NewCol("id"), NewConst(value.NewInt(0))),
		NewLike(NewCol("name"), "a%", false),
	)
	cl := Clone(e).(*And)
	if _, err := Bind(cl, testSchema); err != nil {
		t.Fatal(err)
	}
	// The original is still unbound: clone binding must not leak.
	origCol := e.L.(*Cmp).L.(*Col)
	if origCol.Index != -1 {
		t.Error("Clone shared Col nodes with the original")
	}
}

func TestMapCols(t *testing.T) {
	e := NewCmp(EQ, NewCol("id"), NewCol("score"))
	if _, err := Bind(e, testSchema); err != nil {
		t.Fatal(err)
	}
	MapCols(e, func(i int) int { return i + 10 })
	if e.L.(*Col).Index != 10 || e.R.(*Col).Index != 12 {
		t.Errorf("MapCols gave %d, %d", e.L.(*Col).Index, e.R.(*Col).Index)
	}
}

func TestStringRendering(t *testing.T) {
	e := NewAnd(
		NewCmp(GE, NewCol("id"), NewConst(value.NewInt(1))),
		NewOr(NewLike(NewCol("name"), "a%", false), NewNot(NewCol("active"))),
	)
	s := e.String()
	for _, frag := range []string{"id >= 1", "LIKE 'a%'", "NOT", "AND", "OR"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestTruthy(t *testing.T) {
	if Truthy(value.Null) || Truthy(value.NewBool(false)) || Truthy(value.NewInt(1)) {
		t.Error("only boolean true is truthy")
	}
	if !Truthy(value.NewBool(true)) {
		t.Error("boolean true is truthy")
	}
}

func TestCmpOpSwap(t *testing.T) {
	cases := map[CmpOp]CmpOp{EQ: EQ, NE: NE, LT: GT, LE: GE, GT: LT, GE: LE}
	for op, want := range cases {
		if op.Swap() != want {
			t.Errorf("%v.Swap() = %v, want %v", op, op.Swap(), want)
		}
	}
}
