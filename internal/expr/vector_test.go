package expr

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

// TestVecFilterMatchesRowPredicate is the kernel equivalence property:
// for every predicate shape in the compile corpus — specialized
// comparisons, AND/OR rewiring, and row-fallback shapes (NOT, IN, LIKE,
// IS NULL, arithmetic) — the vectorized filter selects exactly the rows
// the compiled row predicate accepts, dense and under a prior selection.
func TestVecFilterMatchesRowPredicate(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tuples := make([]value.Tuple, 1500)
	for i := range tuples {
		tuples[i] = randTuple(r)
	}
	batch := value.NewBatchFrom(testSchema, tuples)
	if batch == nil {
		t.Fatal("NewBatchFrom declined the test relation")
	}
	var sel []int32 // every third row, a prior selection
	for i := 0; i < len(tuples); i += 3 {
		sel = append(sel, int32(i))
	}
	for _, e := range exprCorpus() {
		pred, err := CompilePredicate(Clone(e), testSchema)
		if err != nil {
			t.Fatalf("compile %s: %v", e, err)
		}
		vf, err := CompileVecFilter(Clone(e), testSchema)
		if err != nil {
			t.Fatalf("compile vec %s: %v", e, err)
		}
		var wantDense, wantSel []int32
		for i, tup := range tuples {
			ok, err := pred.Match(tup)
			if err != nil {
				t.Fatalf("%s: %v", e, err)
			}
			if ok {
				wantDense = append(wantDense, int32(i))
				if i%3 == 0 {
					wantSel = append(wantSel, int32(i))
				}
			}
		}
		got, err := vf.Filter(batch, nil, nil)
		if err != nil {
			t.Fatalf("vec filter %s: %v", e, err)
		}
		if !equalSel(got, wantDense) {
			t.Errorf("%s dense: %d rows kept, row path kept %d", e, len(got), len(wantDense))
		}
		got, err = vf.Filter(batch, sel, nil)
		if err != nil {
			t.Fatalf("vec filter %s over sel: %v", e, err)
		}
		if !equalSel(got, wantSel) {
			t.Errorf("%s over sel: %d rows kept, row path kept %d", e, len(got), len(wantSel))
		}
	}
}

func equalSel(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestVecFilterKindMismatchFallsBack: a specialized kernel compiled for
// one kind must still answer correctly when the runtime vector carries
// another (possible on untyped transient intermediates) by dropping to
// the row comparison in-kernel.
func TestVecFilterKindMismatchFallsBack(t *testing.T) {
	// Schema says INT; the batch actually holds floats.
	s := value.MustSchema("x", "INT")
	vf, err := CompileVecFilter(NewCmp(GT, NewCol("x"), NewConst(value.NewInt(2))), s)
	if err != nil {
		t.Fatal(err)
	}
	batch := &value.Batch{
		Schema: s,
		Cols:   []*value.Vec{{Kind: value.KindFloat, F: []float64{1.5, 2.5, 3.5}}},
		Rows:   3,
	}
	got, err := vf.Filter(batch, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSel(got, []int32{1, 2}) {
		t.Errorf("mismatch fallback kept %v, want [1 2]", got)
	}
}

// TestCompileVecFilterRejectsNonBoolean mirrors CompilePredicate's
// contract.
func TestCompileVecFilterRejectsNonBoolean(t *testing.T) {
	if _, err := CompileVecFilter(NewCol("id"), testSchema); err == nil {
		t.Error("non-boolean expression accepted")
	}
	if _, err := CompileVecFilter(NewCol("nosuch"), testSchema); err == nil {
		t.Error("unknown column accepted")
	}
}

// TestColumnIndices: plain column lists resolve to positions; anything
// computed or unresolvable reports false.
func TestColumnIndices(t *testing.T) {
	idxs, ok := ColumnIndices([]Expr{NewCol("score"), NewCol("id")}, testSchema)
	if !ok || idxs[0] != 2 || idxs[1] != 0 {
		t.Errorf("ColumnIndices = %v, %v", idxs, ok)
	}
	if _, ok := ColumnIndices([]Expr{NewArith(Add, NewCol("id"), NewConst(value.NewInt(1)))}, testSchema); ok {
		t.Error("computed expression treated as a column remap")
	}
	if _, ok := ColumnIndices([]Expr{NewCol("nosuch")}, testSchema); ok {
		t.Error("unknown column treated as a column remap")
	}
}
