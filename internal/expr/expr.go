// Package expr implements scalar expressions over tuples: a tree
// representation with a straightforward interpreter, plus the dynamic
// expression compiler that PRISMA's One-Fragment Managers use to "avoid
// the otherwise excessive interpretation overhead incurred by a query
// expression interpreter" (paper §2.5). The compiler turns a bound,
// type-checked tree into specialized Go closures.
package expr

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Expr is a scalar expression node. Expressions are built by the SQL and
// PRISMAlog front ends with column names, bound against a schema (which
// resolves names to positions and infers types), and then either
// interpreted with Eval or compiled with Compile.
type Expr interface {
	// Eval interprets the expression against one tuple.
	Eval(t value.Tuple) (value.Value, error)
	// String renders the expression in SQL-ish syntax.
	String() string
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// holds reports whether the three-way comparison result c satisfies op.
func (op CmpOp) holds(c int) bool {
	switch op {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	}
	return false
}

// Swap returns the operator with operands reversed (a op b == b Swap(op) a).
func (op CmpOp) Swap() CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default:
		return op
	}
}

// ArithOp is an arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Mod
)

func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	case Mod:
		return "%"
	}
	return "?"
}

// Col references a column, by name before binding and by position after.
type Col struct {
	Name  string
	Index int // -1 until bound
	kind  value.Kind
}

// NewCol returns an unbound column reference.
func NewCol(name string) *Col { return &Col{Name: name, Index: -1} }

// NewColIdx returns a pre-bound column reference (used by the planner when
// it knows positions already).
func NewColIdx(i int, k value.Kind) *Col {
	return &Col{Name: fmt.Sprintf("$%d", i), Index: i, kind: k}
}

// Eval implements Expr.
func (c *Col) Eval(t value.Tuple) (value.Value, error) {
	if c.Index < 0 {
		return value.Null, fmt.Errorf("expr: column %q not bound", c.Name)
	}
	if c.Index >= len(t) {
		return value.Null, fmt.Errorf("expr: column %d out of range for tuple of %d", c.Index, len(t))
	}
	return t[c.Index], nil
}

func (c *Col) String() string { return c.Name }

// Kind returns the column's kind (meaningful after Bind).
func (c *Col) Kind() value.Kind { return c.kind }

// Const is a literal value.
type Const struct{ V value.Value }

// NewConst returns a literal expression.
func NewConst(v value.Value) *Const { return &Const{V: v} }

// Eval implements Expr.
func (c *Const) Eval(value.Tuple) (value.Value, error) { return c.V, nil }

func (c *Const) String() string { return c.V.Quoted() }

// Cmp compares two sub-expressions. NULL operands make the result NULL
// (treated as false by filters), following SQL three-valued logic.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// NewCmp builds a comparison node.
func NewCmp(op CmpOp, l, r Expr) *Cmp { return &Cmp{Op: op, L: l, R: r} }

// Eval implements Expr.
func (c *Cmp) Eval(t value.Tuple) (value.Value, error) {
	l, err := c.L.Eval(t)
	if err != nil {
		return value.Null, err
	}
	r, err := c.R.Eval(t)
	if err != nil {
		return value.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	if !value.Comparable(l, r) {
		return value.Null, fmt.Errorf("expr: cannot compare %s with %s", l.Kind(), r.Kind())
	}
	return value.NewBool(c.Op.holds(value.Compare(l, r))), nil
}

func (c *Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// Arith applies an arithmetic operator to two sub-expressions.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// NewArith builds an arithmetic node.
func NewArith(op ArithOp, l, r Expr) *Arith { return &Arith{Op: op, L: l, R: r} }

// Eval implements Expr.
func (a *Arith) Eval(t value.Tuple) (value.Value, error) {
	l, err := a.L.Eval(t)
	if err != nil {
		return value.Null, err
	}
	r, err := a.R.Eval(t)
	if err != nil {
		return value.Null, err
	}
	switch a.Op {
	case Add:
		return value.Add(l, r)
	case Sub:
		return value.Sub(l, r)
	case Mul:
		return value.Mul(l, r)
	case Div:
		return value.Div(l, r)
	case Mod:
		return value.Mod(l, r)
	}
	return value.Null, fmt.Errorf("expr: bad arithmetic op %d", a.Op)
}

func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// And is logical conjunction with SQL three-valued semantics.
type And struct{ L, R Expr }

// NewAnd builds a conjunction; see also Conjoin.
func NewAnd(l, r Expr) *And { return &And{L: l, R: r} }

// Eval implements Expr.
func (a *And) Eval(t value.Tuple) (value.Value, error) {
	l, err := a.L.Eval(t)
	if err != nil {
		return value.Null, err
	}
	if l.Kind() == value.KindBool && !l.Bool() {
		return value.NewBool(false), nil
	}
	r, err := a.R.Eval(t)
	if err != nil {
		return value.Null, err
	}
	if r.Kind() == value.KindBool && !r.Bool() {
		return value.NewBool(false), nil
	}
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	if l.Kind() != value.KindBool || r.Kind() != value.KindBool {
		return value.Null, fmt.Errorf("expr: AND over non-boolean")
	}
	return value.NewBool(true), nil
}

func (a *And) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }

// Or is logical disjunction with SQL three-valued semantics.
type Or struct{ L, R Expr }

// NewOr builds a disjunction.
func NewOr(l, r Expr) *Or { return &Or{L: l, R: r} }

// Eval implements Expr.
func (o *Or) Eval(t value.Tuple) (value.Value, error) {
	l, err := o.L.Eval(t)
	if err != nil {
		return value.Null, err
	}
	if l.Kind() == value.KindBool && l.Bool() {
		return value.NewBool(true), nil
	}
	r, err := o.R.Eval(t)
	if err != nil {
		return value.Null, err
	}
	if r.Kind() == value.KindBool && r.Bool() {
		return value.NewBool(true), nil
	}
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	if l.Kind() != value.KindBool || r.Kind() != value.KindBool {
		return value.Null, fmt.Errorf("expr: OR over non-boolean")
	}
	return value.NewBool(false), nil
}

func (o *Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// Not is logical negation.
type Not struct{ E Expr }

// NewNot builds a negation.
func NewNot(e Expr) *Not { return &Not{E: e} }

// Eval implements Expr.
func (n *Not) Eval(t value.Tuple) (value.Value, error) {
	v, err := n.E.Eval(t)
	if err != nil {
		return value.Null, err
	}
	if v.IsNull() {
		return value.Null, nil
	}
	if v.Kind() != value.KindBool {
		return value.Null, fmt.Errorf("expr: NOT over non-boolean")
	}
	return value.NewBool(!v.Bool()), nil
}

func (n *Not) String() string { return fmt.Sprintf("(NOT %s)", n.E) }

// Neg is arithmetic negation.
type Neg struct{ E Expr }

// NewNeg builds an arithmetic negation.
func NewNeg(e Expr) *Neg { return &Neg{E: e} }

// Eval implements Expr.
func (n *Neg) Eval(t value.Tuple) (value.Value, error) {
	v, err := n.E.Eval(t)
	if err != nil {
		return value.Null, err
	}
	return value.Neg(v)
}

func (n *Neg) String() string { return fmt.Sprintf("(-%s)", n.E) }

// IsNull tests for NULL (IS NULL / IS NOT NULL via Negate).
type IsNull struct {
	E      Expr
	Negate bool
}

// NewIsNull builds an IS [NOT] NULL test.
func NewIsNull(e Expr, negate bool) *IsNull { return &IsNull{E: e, Negate: negate} }

// Eval implements Expr.
func (n *IsNull) Eval(t value.Tuple) (value.Value, error) {
	v, err := n.E.Eval(t)
	if err != nil {
		return value.Null, err
	}
	return value.NewBool(v.IsNull() != n.Negate), nil
}

func (n *IsNull) String() string {
	if n.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", n.E)
	}
	return fmt.Sprintf("(%s IS NULL)", n.E)
}

// In tests membership in a literal list.
type In struct {
	E      Expr
	List   []value.Value
	Negate bool
}

// NewIn builds an IN-list test.
func NewIn(e Expr, list []value.Value, negate bool) *In {
	return &In{E: e, List: list, Negate: negate}
}

// Eval implements Expr.
func (in *In) Eval(t value.Tuple) (value.Value, error) {
	v, err := in.E.Eval(t)
	if err != nil {
		return value.Null, err
	}
	if v.IsNull() {
		return value.Null, nil
	}
	for _, item := range in.List {
		if value.Equal(v, item) {
			return value.NewBool(!in.Negate), nil
		}
	}
	return value.NewBool(in.Negate), nil
}

func (in *In) String() string {
	items := make([]string, len(in.List))
	for i, v := range in.List {
		items[i] = v.Quoted()
	}
	not := ""
	if in.Negate {
		not = "NOT "
	}
	return fmt.Sprintf("(%s %sIN (%s))", in.E, not, strings.Join(items, ", "))
}

// Like is the SQL LIKE pattern match ('%' any run, '_' any single char).
type Like struct {
	E       Expr
	Pattern string
	Negate  bool
	matcher *likeMatcher
}

// NewLike builds a LIKE test; the pattern is pre-compiled.
func NewLike(e Expr, pattern string, negate bool) *Like {
	return &Like{E: e, Pattern: pattern, Negate: negate, matcher: compileLike(pattern)}
}

// Eval implements Expr.
func (l *Like) Eval(t value.Tuple) (value.Value, error) {
	v, err := l.E.Eval(t)
	if err != nil {
		return value.Null, err
	}
	if v.IsNull() {
		return value.Null, nil
	}
	if v.Kind() != value.KindString {
		return value.Null, fmt.Errorf("expr: LIKE over %s", v.Kind())
	}
	return value.NewBool(l.matcher.match(v.Str()) != l.Negate), nil
}

func (l *Like) String() string {
	not := ""
	if l.Negate {
		not = "NOT "
	}
	return fmt.Sprintf("(%s %sLIKE '%s')", l.E, not, l.Pattern)
}

// Call invokes a builtin scalar function.
type Call struct {
	Name string
	Args []Expr
}

// NewCall builds a builtin function call.
func NewCall(name string, args ...Expr) *Call {
	return &Call{Name: strings.ToUpper(name), Args: args}
}

// Eval implements Expr.
func (c *Call) Eval(t value.Tuple) (value.Value, error) {
	args := make([]value.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(t)
		if err != nil {
			return value.Null, err
		}
		args[i] = v
	}
	fn, ok := builtins[c.Name]
	if !ok {
		return value.Null, fmt.Errorf("expr: unknown function %s", c.Name)
	}
	return fn(args)
}

func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(parts, ", "))
}

// builtins are the scalar functions available to both front ends.
var builtins = map[string]func([]value.Value) (value.Value, error){
	"ABS": func(args []value.Value) (value.Value, error) {
		if len(args) != 1 {
			return value.Null, fmt.Errorf("expr: ABS takes 1 argument")
		}
		v := args[0]
		switch v.Kind() {
		case value.KindNull:
			return value.Null, nil
		case value.KindInt:
			if v.Int() < 0 {
				return value.NewInt(-v.Int()), nil
			}
			return v, nil
		case value.KindFloat:
			if v.Float() < 0 {
				return value.NewFloat(-v.Float()), nil
			}
			return v, nil
		}
		return value.Null, fmt.Errorf("expr: ABS over %s", v.Kind())
	},
	"LENGTH": func(args []value.Value) (value.Value, error) {
		if len(args) != 1 {
			return value.Null, fmt.Errorf("expr: LENGTH takes 1 argument")
		}
		v := args[0]
		if v.IsNull() {
			return value.Null, nil
		}
		if v.Kind() != value.KindString {
			return value.Null, fmt.Errorf("expr: LENGTH over %s", v.Kind())
		}
		return value.NewInt(int64(len(v.Str()))), nil
	},
	"LOWER": func(args []value.Value) (value.Value, error) {
		if len(args) != 1 {
			return value.Null, fmt.Errorf("expr: LOWER takes 1 argument")
		}
		v := args[0]
		if v.IsNull() {
			return value.Null, nil
		}
		if v.Kind() != value.KindString {
			return value.Null, fmt.Errorf("expr: LOWER over %s", v.Kind())
		}
		return value.NewString(strings.ToLower(v.Str())), nil
	},
	"UPPER": func(args []value.Value) (value.Value, error) {
		if len(args) != 1 {
			return value.Null, fmt.Errorf("expr: UPPER takes 1 argument")
		}
		v := args[0]
		if v.IsNull() {
			return value.Null, nil
		}
		if v.Kind() != value.KindString {
			return value.Null, fmt.Errorf("expr: UPPER over %s", v.Kind())
		}
		return value.NewString(strings.ToUpper(v.Str())), nil
	},
}

// Conjoin ANDs a list of predicates together; nil for an empty list.
func Conjoin(preds []Expr) Expr {
	var out Expr
	for _, p := range preds {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = NewAnd(out, p)
		}
	}
	return out
}

// SplitConjuncts flattens nested ANDs into a list of conjuncts.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(*And); ok {
		return append(SplitConjuncts(a.L), SplitConjuncts(a.R)...)
	}
	return []Expr{e}
}

// Truthy reports whether v should pass a WHERE filter: true only for a
// boolean true (NULL and false both fail, per SQL).
func Truthy(v value.Value) bool {
	return v.Kind() == value.KindBool && v.Bool()
}
