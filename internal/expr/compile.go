package expr

import (
	"fmt"

	"repro/internal/value"
)

// This file is the OFM expression compiler (paper §2.5): "each OFM is
// equipped with an expression compiler to generate routines dynamically
// ... it avoids the otherwise excessive interpretation overhead incurred
// by a query expression interpreter."
//
// Compilation turns a bound, type-checked expression tree into nested Go
// closures, specialized on the static kinds the binder inferred: integer
// column-vs-constant comparisons compare raw int64 payloads, boolean
// connectives operate on a three-valued byte instead of boxed Values, and
// per-node error returns disappear (runtime faults such as division by
// zero unwind via panic and are recovered once per batch).

// tri is three-valued logic: false, true, unknown (NULL).
const (
	triFalse uint8 = 0
	triTrue  uint8 = 1
	triNull  uint8 = 2
)

type triFn func(value.Tuple) uint8
type valFn func(value.Tuple) value.Value

// fault carries a runtime evaluation error up to the recover boundary.
type fault struct{ err error }

func throw(format string, args ...any) {
	panic(fault{fmt.Errorf(format, args...)})
}

// catch converts a fault panic into err; other panics propagate.
func catch(err *error) {
	if r := recover(); r != nil {
		f, ok := r.(fault)
		if !ok {
			panic(r)
		}
		*err = f.err
	}
}

// Program is a compiled scalar expression.
type Program struct {
	fn   valFn
	src  string
	kind value.Kind
}

// Compile binds e against s and compiles it to a Program.
func Compile(e Expr, s *value.Schema) (*Program, error) {
	k, err := Bind(e, s)
	if err != nil {
		return nil, err
	}
	fn, err := compileVal(e)
	if err != nil {
		return nil, err
	}
	return &Program{fn: fn, src: e.String(), kind: k}, nil
}

// Kind returns the static result kind.
func (p *Program) Kind() value.Kind { return p.kind }

// String returns the source form of the compiled expression.
func (p *Program) String() string { return p.src }

// Eval runs the program on one tuple.
func (p *Program) Eval(t value.Tuple) (v value.Value, err error) {
	defer catch(&err)
	return p.fn(t), nil
}

// EvalBatch runs the program over a batch with a single recover boundary,
// appending results to dst.
func (p *Program) EvalBatch(dst []value.Value, src []value.Tuple) (out []value.Value, err error) {
	defer catch(&err)
	for _, t := range src {
		dst = append(dst, p.fn(t))
	}
	return dst, nil
}

// Predicate is a compiled boolean filter.
type Predicate struct {
	fn  triFn
	src string
}

// CompilePredicate binds e (which must be boolean) against s and compiles
// it to a Predicate.
func CompilePredicate(e Expr, s *value.Schema) (*Predicate, error) {
	k, err := Bind(e, s)
	if err != nil {
		return nil, err
	}
	if k != value.KindBool && k != value.KindNull {
		return nil, fmt.Errorf("expr: predicate has kind %s, want BOOLEAN", k)
	}
	fn, err := compileTri(e)
	if err != nil {
		return nil, err
	}
	return &Predicate{fn: fn, src: e.String()}, nil
}

// String returns the source form of the predicate.
func (p *Predicate) String() string { return p.src }

// Match runs the predicate on one tuple (NULL counts as no-match).
func (p *Predicate) Match(t value.Tuple) (ok bool, err error) {
	defer catch(&err)
	return p.fn(t) == triTrue, nil
}

// FilterInto appends the tuples of src that satisfy the predicate to dst.
// One recover boundary covers the whole batch: this is the compiled scan
// kernel an OFM runs over its fragment.
func (p *Predicate) FilterInto(dst []value.Tuple, src []value.Tuple) (out []value.Tuple, err error) {
	defer catch(&err)
	fn := p.fn
	for _, t := range src {
		if fn(t) == triTrue {
			dst = append(dst, t)
		}
	}
	return dst, nil
}

// Count returns how many tuples of src satisfy the predicate.
func (p *Predicate) Count(src []value.Tuple) (n int, err error) {
	defer catch(&err)
	fn := p.fn
	for _, t := range src {
		if fn(t) == triTrue {
			n++
		}
	}
	return n, nil
}

// Projector is a compiled list of expressions producing output tuples.
type Projector struct {
	fns    []valFn
	schema *value.Schema
}

// CompileProjector binds and compiles each expression; names gives output
// column names (len(names) must equal len(es), or nil to autoname).
func CompileProjector(es []Expr, names []string, s *value.Schema) (*Projector, error) {
	fns := make([]valFn, len(es))
	cols := make([]value.Column, len(es))
	for i, e := range es {
		k, err := Bind(e, s)
		if err != nil {
			return nil, err
		}
		fn, err := compileVal(e)
		if err != nil {
			return nil, err
		}
		fns[i] = fn
		name := ""
		if names != nil {
			name = names[i]
		}
		if name == "" {
			name = e.String()
		}
		cols[i] = value.Column{Name: name, Kind: k}
	}
	return &Projector{fns: fns, schema: value.NewSchema(cols...)}, nil
}

// Schema returns the output schema of the projector.
func (p *Projector) Schema() *value.Schema { return p.schema }

// Apply projects one tuple.
func (p *Projector) Apply(t value.Tuple) (out value.Tuple, err error) {
	defer catch(&err)
	out = make(value.Tuple, len(p.fns))
	for i, fn := range p.fns {
		out[i] = fn(t)
	}
	return out, nil
}

// ApplyBatch projects a batch with one recover boundary. Output rows
// are carved from one flat backing array sized by the input cardinality
// — one allocation for the batch instead of one per tuple.
func (p *Projector) ApplyBatch(src []value.Tuple) (out []value.Tuple, err error) {
	defer catch(&err)
	out = make([]value.Tuple, len(src))
	width := len(p.fns)
	flat := make([]value.Value, len(src)*width)
	for ti, t := range src {
		row := flat[ti*width : (ti+1)*width : (ti+1)*width]
		for i, fn := range p.fns {
			row[i] = fn(t)
		}
		out[ti] = row
	}
	return out, nil
}

// ---------- value compilation ----------

func compileVal(e Expr) (valFn, error) {
	switch n := e.(type) {
	case *Col:
		ix := n.Index
		if ix < 0 {
			return nil, fmt.Errorf("expr: compile of unbound column %q", n.Name)
		}
		return func(t value.Tuple) value.Value { return t[ix] }, nil

	case *Const:
		v := n.V
		return func(value.Tuple) value.Value { return v }, nil

	case *Arith:
		return compileArith(n)

	case *Neg:
		sub, err := compileVal(n.E)
		if err != nil {
			return nil, err
		}
		return func(t value.Tuple) value.Value {
			v, err := value.Neg(sub(t))
			if err != nil {
				throw("%v", err)
			}
			return v
		}, nil

	case *Call:
		fns := make([]valFn, len(n.Args))
		for i, a := range n.Args {
			fn, err := compileVal(a)
			if err != nil {
				return nil, err
			}
			fns[i] = fn
		}
		impl, ok := builtins[n.Name]
		if !ok {
			return nil, fmt.Errorf("expr: unknown function %s", n.Name)
		}
		return func(t value.Tuple) value.Value {
			args := make([]value.Value, len(fns))
			for i, fn := range fns {
				args[i] = fn(t)
			}
			v, err := impl(args)
			if err != nil {
				throw("%v", err)
			}
			return v
		}, nil

	// Boolean-valued nodes compile through tri logic and box at the edge.
	case *Cmp, *And, *Or, *Not, *IsNull, *In, *Like:
		tf, err := compileTri(e)
		if err != nil {
			return nil, err
		}
		return func(t value.Tuple) value.Value {
			switch tf(t) {
			case triTrue:
				return value.NewBool(true)
			case triFalse:
				return value.NewBool(false)
			default:
				return value.Null
			}
		}, nil
	}
	return nil, fmt.Errorf("expr: cannot compile %T", e)
}

func compileArith(n *Arith) (valFn, error) {
	l, err := compileVal(n.L)
	if err != nil {
		return nil, err
	}
	r, err := compileVal(n.R)
	if err != nil {
		return nil, err
	}
	// Specialize int column/const arithmetic: the overwhelmingly common
	// case in the workloads, and the shape the paper's compiler targets.
	lk, lok := staticKind(n.L)
	rk, rok := staticKind(n.R)
	if lok && rok && lk == value.KindInt && rk == value.KindInt {
		switch n.Op {
		case Add:
			return func(t value.Tuple) value.Value {
				a, b := l(t), r(t)
				if a.Kind() == value.KindInt && b.Kind() == value.KindInt {
					return value.NewInt(a.Int() + b.Int())
				}
				return slowArith(Add, a, b)
			}, nil
		case Sub:
			return func(t value.Tuple) value.Value {
				a, b := l(t), r(t)
				if a.Kind() == value.KindInt && b.Kind() == value.KindInt {
					return value.NewInt(a.Int() - b.Int())
				}
				return slowArith(Sub, a, b)
			}, nil
		case Mul:
			return func(t value.Tuple) value.Value {
				a, b := l(t), r(t)
				if a.Kind() == value.KindInt && b.Kind() == value.KindInt {
					return value.NewInt(a.Int() * b.Int())
				}
				return slowArith(Mul, a, b)
			}, nil
		}
	}
	op := n.Op
	return func(t value.Tuple) value.Value {
		return slowArith(op, l(t), r(t))
	}, nil
}

func slowArith(op ArithOp, a, b value.Value) value.Value {
	var v value.Value
	var err error
	switch op {
	case Add:
		v, err = value.Add(a, b)
	case Sub:
		v, err = value.Sub(a, b)
	case Mul:
		v, err = value.Mul(a, b)
	case Div:
		v, err = value.Div(a, b)
	case Mod:
		v, err = value.Mod(a, b)
	}
	if err != nil {
		throw("%v", err)
	}
	return v
}

// staticKind reports the statically known kind of a bound node, when the
// compiler can rely on it for specialization.
func staticKind(e Expr) (value.Kind, bool) {
	switch n := e.(type) {
	case *Col:
		return n.kind, n.kind != value.KindNull
	case *Const:
		return n.V.Kind(), !n.V.IsNull()
	}
	return value.KindNull, false
}

// ---------- tri (boolean) compilation ----------

func compileTri(e Expr) (triFn, error) {
	switch n := e.(type) {
	case *Cmp:
		return compileCmp(n)

	case *And:
		l, err := compileTri(n.L)
		if err != nil {
			return nil, err
		}
		r, err := compileTri(n.R)
		if err != nil {
			return nil, err
		}
		return func(t value.Tuple) uint8 {
			lv := l(t)
			if lv == triFalse {
				return triFalse
			}
			rv := r(t)
			if rv == triFalse {
				return triFalse
			}
			if lv == triNull || rv == triNull {
				return triNull
			}
			return triTrue
		}, nil

	case *Or:
		l, err := compileTri(n.L)
		if err != nil {
			return nil, err
		}
		r, err := compileTri(n.R)
		if err != nil {
			return nil, err
		}
		return func(t value.Tuple) uint8 {
			lv := l(t)
			if lv == triTrue {
				return triTrue
			}
			rv := r(t)
			if rv == triTrue {
				return triTrue
			}
			if lv == triNull || rv == triNull {
				return triNull
			}
			return triFalse
		}, nil

	case *Not:
		sub, err := compileTri(n.E)
		if err != nil {
			return nil, err
		}
		return func(t value.Tuple) uint8 {
			switch sub(t) {
			case triTrue:
				return triFalse
			case triFalse:
				return triTrue
			default:
				return triNull
			}
		}, nil

	case *IsNull:
		sub, err := compileVal(n.E)
		if err != nil {
			return nil, err
		}
		negate := n.Negate
		return func(t value.Tuple) uint8 {
			if sub(t).IsNull() != negate {
				return triTrue
			}
			return triFalse
		}, nil

	case *In:
		sub, err := compileVal(n.E)
		if err != nil {
			return nil, err
		}
		list := n.List
		negate := n.Negate
		// Hash-set specialization for int lists.
		allInt := true
		for _, v := range list {
			if v.Kind() != value.KindInt {
				allInt = false
				break
			}
		}
		if allInt && len(list) > 0 {
			set := make(map[int64]struct{}, len(list))
			for _, v := range list {
				set[v.Int()] = struct{}{}
			}
			return func(t value.Tuple) uint8 {
				v := sub(t)
				if v.IsNull() {
					return triNull
				}
				hit := false
				if v.Kind() == value.KindInt {
					_, hit = set[v.Int()]
				} else {
					for _, item := range list {
						if value.Equal(v, item) {
							hit = true
							break
						}
					}
				}
				if hit != negate {
					return triTrue
				}
				return triFalse
			}, nil
		}
		return func(t value.Tuple) uint8 {
			v := sub(t)
			if v.IsNull() {
				return triNull
			}
			hit := false
			for _, item := range list {
				if value.Equal(v, item) {
					hit = true
					break
				}
			}
			if hit != negate {
				return triTrue
			}
			return triFalse
		}, nil

	case *Like:
		sub, err := compileVal(n.E)
		if err != nil {
			return nil, err
		}
		m := n.matcher
		negate := n.Negate
		return func(t value.Tuple) uint8 {
			v := sub(t)
			if v.IsNull() {
				return triNull
			}
			if v.Kind() != value.KindString {
				throw("expr: LIKE over %s", v.Kind())
			}
			if m.match(v.Str()) != negate {
				return triTrue
			}
			return triFalse
		}, nil

	// Value-typed nodes used in boolean position (bool column or const).
	case *Col, *Const, *Call:
		sub, err := compileVal(e)
		if err != nil {
			return nil, err
		}
		return func(t value.Tuple) uint8 {
			v := sub(t)
			if v.IsNull() {
				return triNull
			}
			if v.Kind() != value.KindBool {
				throw("expr: filter over non-boolean %s", v.Kind())
			}
			if v.Bool() {
				return triTrue
			}
			return triFalse
		}, nil
	}
	return nil, fmt.Errorf("expr: cannot compile boolean %T", e)
}

// compileCmp specializes comparisons on the operand shapes the binder
// proved: int col vs int const, int col vs int col, string col vs string
// const, falling back to generic Value comparison otherwise.
func compileCmp(n *Cmp) (triFn, error) {
	// Normalize const-on-left to col-on-right shape.
	l, r, op := n.L, n.R, n.Op
	if _, lc := l.(*Const); lc {
		if _, rc := r.(*Col); rc {
			l, r, op = r, l, op.Swap()
		}
	}

	if lcol, ok := l.(*Col); ok && lcol.Index >= 0 {
		ix := lcol.Index
		if rconst, ok := r.(*Const); ok {
			switch {
			case lcol.kind == value.KindInt && rconst.V.Kind() == value.KindInt:
				c := rconst.V.Int()
				return intConstCmp(ix, c, op), nil
			case lcol.kind == value.KindString && rconst.V.Kind() == value.KindString:
				c := rconst.V.Str()
				return strConstCmp(ix, c, op), nil
			case lcol.kind == value.KindFloat && (rconst.V.Kind() == value.KindFloat || rconst.V.Kind() == value.KindInt):
				c := rconst.V.Float()
				return floatConstCmp(ix, c, op), nil
			}
		}
		if rcol, ok := r.(*Col); ok && rcol.Index >= 0 &&
			lcol.kind == value.KindInt && rcol.kind == value.KindInt {
			return intColCmp(ix, rcol.Index, op), nil
		}
	}

	lf, err := compileVal(l)
	if err != nil {
		return nil, err
	}
	rf, err := compileVal(r)
	if err != nil {
		return nil, err
	}
	return func(t value.Tuple) uint8 {
		a, b := lf(t), rf(t)
		if a.IsNull() || b.IsNull() {
			return triNull
		}
		if !value.Comparable(a, b) {
			throw("expr: cannot compare %s with %s", a.Kind(), b.Kind())
		}
		if op.holds(value.Compare(a, b)) {
			return triTrue
		}
		return triFalse
	}, nil
}

func intConstCmp(ix int, c int64, op CmpOp) triFn {
	// One direct closure per operator: the per-tuple path is a bounds
	// check, a kind test and one integer compare.
	switch op {
	case EQ:
		return func(t value.Tuple) uint8 {
			v := t[ix]
			if v.Kind() == value.KindInt {
				if v.Int() == c {
					return triTrue
				}
				return triFalse
			}
			return intCmpSlow(v, c, EQ)
		}
	case NE:
		return func(t value.Tuple) uint8 {
			v := t[ix]
			if v.Kind() == value.KindInt {
				if v.Int() != c {
					return triTrue
				}
				return triFalse
			}
			return intCmpSlow(v, c, NE)
		}
	case LT:
		return func(t value.Tuple) uint8 {
			v := t[ix]
			if v.Kind() == value.KindInt {
				if v.Int() < c {
					return triTrue
				}
				return triFalse
			}
			return intCmpSlow(v, c, LT)
		}
	case LE:
		return func(t value.Tuple) uint8 {
			v := t[ix]
			if v.Kind() == value.KindInt {
				if v.Int() <= c {
					return triTrue
				}
				return triFalse
			}
			return intCmpSlow(v, c, LE)
		}
	case GT:
		return func(t value.Tuple) uint8 {
			v := t[ix]
			if v.Kind() == value.KindInt {
				if v.Int() > c {
					return triTrue
				}
				return triFalse
			}
			return intCmpSlow(v, c, GT)
		}
	default:
		return func(t value.Tuple) uint8 {
			v := t[ix]
			if v.Kind() == value.KindInt {
				if v.Int() >= c {
					return triTrue
				}
				return triFalse
			}
			return intCmpSlow(v, c, GE)
		}
	}
}

// intCmpSlow handles the off-type cases (NULL, float) of an int-column
// comparison.
func intCmpSlow(v value.Value, c int64, op CmpOp) uint8 {
	if v.IsNull() {
		return triNull
	}
	if op.holds(value.Compare(v, value.NewInt(c))) {
		return triTrue
	}
	return triFalse
}

func floatConstCmp(ix int, c float64, op CmpOp) triFn {
	return func(t value.Tuple) uint8 {
		v := t[ix]
		if v.IsNull() {
			return triNull
		}
		a := v.Float()
		var hit bool
		switch op {
		case EQ:
			hit = a == c
		case NE:
			hit = a != c
		case LT:
			hit = a < c
		case LE:
			hit = a <= c
		case GT:
			hit = a > c
		default:
			hit = a >= c
		}
		if hit {
			return triTrue
		}
		return triFalse
	}
}

func strConstCmp(ix int, c string, op CmpOp) triFn {
	return func(t value.Tuple) uint8 {
		v := t[ix]
		if v.IsNull() {
			return triNull
		}
		if v.Kind() != value.KindString {
			throw("expr: cannot compare %s with VARCHAR", v.Kind())
		}
		a := v.Str()
		var hit bool
		switch op {
		case EQ:
			hit = a == c
		case NE:
			hit = a != c
		case LT:
			hit = a < c
		case LE:
			hit = a <= c
		case GT:
			hit = a > c
		default:
			hit = a >= c
		}
		if hit {
			return triTrue
		}
		return triFalse
	}
}

func intColCmp(lix, rix int, op CmpOp) triFn {
	return func(t value.Tuple) uint8 {
		a, b := t[lix], t[rix]
		if a.Kind() == value.KindInt && b.Kind() == value.KindInt {
			var hit bool
			ai, bi := a.Int(), b.Int()
			switch op {
			case EQ:
				hit = ai == bi
			case NE:
				hit = ai != bi
			case LT:
				hit = ai < bi
			case LE:
				hit = ai <= bi
			case GT:
				hit = ai > bi
			default:
				hit = ai >= bi
			}
			if hit {
				return triTrue
			}
			return triFalse
		}
		if a.IsNull() || b.IsNull() {
			return triNull
		}
		if op.holds(value.Compare(a, b)) {
			return triTrue
		}
		return triFalse
	}
}
