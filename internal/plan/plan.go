// Package plan defines the logical query plans the Global Data Handler
// produces from SQL and PRISMAlog and the knowledge-based optimizer
// rewrites (paper §2.4). A plan is a tree of relational operators; every
// node carries its output schema and a cardinality estimate that the
// optimizer maintains.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/value"
)

// Node is one operator of a logical plan.
type Node interface {
	// Schema is the node's output schema.
	Schema() *value.Schema
	// Children returns the input nodes.
	Children() []Node
	// String renders one line (children not included).
	String() string
}

// Scan reads a base table, optionally filtered and with fragment-level
// parallelism decided by the optimizer.
type Scan struct {
	Table  string
	Out    *value.Schema
	Pred   expr.Expr // pushed-down predicate, bound to Out
	Shared bool      // marked by CSE: result reused by multiple parents

	// EstRows is the optimizer's cardinality estimate.
	EstRows int
}

// Schema implements Node.
func (s *Scan) Schema() *value.Schema { return s.Out }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

func (s *Scan) String() string {
	b := fmt.Sprintf("Scan(%s)", s.Table)
	if s.Pred != nil {
		b += fmt.Sprintf(" filter=%s", s.Pred)
	}
	if s.Shared {
		b += " [shared]"
	}
	return fmt.Sprintf("%s est=%d", b, s.EstRows)
}

// IndexProbe answers an equality point query with a direct hash-index
// lookup on the owning fragment(s), bypassing the Scan→Select
// materialization path entirely: the executor resolves Key to a value,
// routes to the fragment(s) the fragmentation scheme allows, and each
// OFM probes its hash index. Rest carries any residual conjuncts, bound
// to Out.
type IndexProbe struct {
	Table string
	Col   int       // indexed column position (table schema order)
	Key   expr.Expr // Const, or Param until bound
	Rest  expr.Expr // residual predicate over Out, or nil
	Out   *value.Schema

	EstRows int
}

// Schema implements Node.
func (p *IndexProbe) Schema() *value.Schema { return p.Out }

// Children implements Node.
func (p *IndexProbe) Children() []Node { return nil }

func (p *IndexProbe) String() string {
	b := fmt.Sprintf("IndexProbe(%s.%s = %s)", p.Table, p.Out.Column(p.Col).Name, p.Key)
	if p.Rest != nil {
		b += fmt.Sprintf(" filter=%s", p.Rest)
	}
	return fmt.Sprintf("%s est=%d", b, p.EstRows)
}

// Select filters its child.
type Select struct {
	Child   Node
	Pred    expr.Expr // bound to Child.Schema()
	EstRows int
}

// Schema implements Node.
func (s *Select) Schema() *value.Schema { return s.Child.Schema() }

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.Child} }

func (s *Select) String() string { return fmt.Sprintf("Select(%s) est=%d", s.Pred, s.EstRows) }

// Project computes output expressions.
type Project struct {
	Child   Node
	Exprs   []expr.Expr
	Names   []string
	Out     *value.Schema
	EstRows int
}

// Schema implements Node.
func (p *Project) Schema() *value.Schema { return p.Out }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

func (p *Project) String() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return fmt.Sprintf("Project(%s) est=%d", strings.Join(parts, ", "), p.EstRows)
}

// JoinMethod selects the physical join strategy.
type JoinMethod uint8

// Join methods the executor implements.
const (
	// JoinAuto lets the executor pick (colocated, repartitioned or
	// centralized) from the fragmentation schemes.
	JoinAuto JoinMethod = iota
	// JoinColocated joins fragment pairs in place.
	JoinColocated
	// JoinRepartition hash-partitions both sides across PEs.
	JoinRepartition
	// JoinBroadcast ships a small input to every fragment of the other.
	JoinBroadcast
	// JoinCentral collects both sides at the coordinator.
	JoinCentral
)

func (m JoinMethod) String() string {
	switch m {
	case JoinColocated:
		return "colocated"
	case JoinRepartition:
		return "repartition"
	case JoinBroadcast:
		return "broadcast"
	case JoinCentral:
		return "central"
	default:
		return "auto"
	}
}

// Join equi-joins two inputs; extra theta conditions live in Residual.
// When the optimizer swaps the sides (smaller input first), Swapped is
// set and the executor restores the original column order, so Out — and
// every expression bound upstream — stays valid.
type Join struct {
	Left, Right Node
	LeftKeys    []int
	RightKeys   []int
	Residual    expr.Expr // bound to the concatenated schema (Out)
	Method      JoinMethod
	Swapped     bool
	Out         *value.Schema
	EstRows     int
}

// Schema implements Node.
func (j *Join) Schema() *value.Schema { return j.Out }

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

func (j *Join) String() string {
	swapped := ""
	if j.Swapped {
		swapped = " swapped"
	}
	return fmt.Sprintf("Join(l=%v, r=%v, method=%s%s) est=%d", j.LeftKeys, j.RightKeys, j.Method, swapped, j.EstRows)
}

// PartKind describes how an Exchange distributes its input across
// processing elements.
type PartKind uint8

// Exchange partitionings.
const (
	// PartHash splits tuples by hash of the key columns, so rows that
	// agree on the keys land in the same partition — the repartitioning
	// step of a distributed join or aggregate.
	PartHash PartKind = iota
	// PartBroadcast replicates the full input to every consumer
	// partition (the small side of a broadcast join).
	PartBroadcast
	// PartSingleton gathers everything to the coordinator.
	PartSingleton
)

func (k PartKind) String() string {
	switch k {
	case PartHash:
		return "hash"
	case PartBroadcast:
		return "broadcast"
	case PartSingleton:
		return "singleton"
	default:
		return "?"
	}
}

// Partitioning is the partitioning property an Exchange establishes:
// how its output tuples are distributed over PEs.
type Partitioning struct {
	Kind PartKind
	// Keys are the hash key columns (positions in the child schema)
	// when Kind is PartHash.
	Keys []int
	// N is the number of output partitions (PartHash); the executor
	// maps partition slots onto PEs deterministically so sibling
	// exchanges with equal N are always aligned.
	N int
}

func (p Partitioning) String() string {
	switch p.Kind {
	case PartHash:
		return fmt.Sprintf("hash%v x%d", p.Keys, p.N)
	default:
		return p.Kind.String()
	}
}

// Exchange repartitions the stream of its child across processing
// elements — the dataflow boundary of the partitioned executor. Between
// exchanges, operators run partition-parallel where the data lives; the
// coordinator materializes only at the plan root.
type Exchange struct {
	Child   Node
	Part    Partitioning
	EstRows int
}

// Schema implements Node.
func (x *Exchange) Schema() *value.Schema { return x.Child.Schema() }

// Children implements Node.
func (x *Exchange) Children() []Node { return []Node{x.Child} }

func (x *Exchange) String() string {
	return fmt.Sprintf("Exchange(%s) est=%d", x.Part, x.EstRows)
}

// Aggregate groups and aggregates; the executor pushes partials to the
// fragments when Pushdown is set.
type Aggregate struct {
	Child    Node
	GroupBy  []int
	Specs    []algebra.AggSpec
	Pushdown bool
	Out      *value.Schema
	EstRows  int
}

// Schema implements Node.
func (a *Aggregate) Schema() *value.Schema { return a.Out }

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Child} }

func (a *Aggregate) String() string {
	return fmt.Sprintf("Aggregate(groupBy=%v, %d specs, pushdown=%v) est=%d", a.GroupBy, len(a.Specs), a.Pushdown, a.EstRows)
}

// Sort orders its input. With Parallel set the executor sorts each
// partition of the child where it lives and k-way-merges the sorted
// runs at the coordinator.
type Sort struct {
	Child    Node
	Cols     []int
	Desc     []bool
	Parallel bool
}

// Schema implements Node.
func (s *Sort) Schema() *value.Schema { return s.Child.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Child} }

func (s *Sort) String() string {
	par := ""
	if s.Parallel {
		par = " parallel"
	}
	return fmt.Sprintf("Sort(%v desc=%v%s)", s.Cols, s.Desc, par)
}

// Distinct removes duplicates. With Parallel set the executor dedups
// each partition of the child in place before the coordinator's final
// merge dedup.
type Distinct struct {
	Child    Node
	Parallel bool
}

// Schema implements Node.
func (d *Distinct) Schema() *value.Schema { return d.Child.Schema() }

// Children implements Node.
func (d *Distinct) Children() []Node { return []Node{d.Child} }

func (d *Distinct) String() string {
	if d.Parallel {
		return "Distinct parallel"
	}
	return "Distinct"
}

// Limit truncates its input.
type Limit struct {
	Child Node
	N     int
}

// Schema implements Node.
func (l *Limit) Schema() *value.Schema { return l.Child.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Child} }

func (l *Limit) String() string { return fmt.Sprintf("Limit(%d)", l.N) }

// Format renders the whole plan tree, indented.
func Format(n Node) string {
	var b strings.Builder
	var walk func(Node, int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.String())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}

// Walk visits every node pre-order.
func Walk(n Node, fn func(Node)) {
	fn(n)
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}

// EstRows returns a node's cardinality estimate (0 when unknown).
func EstRows(n Node) int {
	switch t := n.(type) {
	case *Scan:
		return t.EstRows
	case *IndexProbe:
		return t.EstRows
	case *Select:
		return t.EstRows
	case *Project:
		return t.EstRows
	case *Join:
		return t.EstRows
	case *Aggregate:
		return t.EstRows
	case *Exchange:
		return t.EstRows
	case *Sort:
		return EstRows(t.Child)
	case *Distinct:
		return EstRows(t.Child)
	case *Limit:
		est := EstRows(t.Child)
		if t.N < est {
			return t.N
		}
		return est
	}
	return 0
}
