package plan

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/value"
)

func testScan() *Scan {
	return &Scan{Table: "t", Out: value.MustSchema("a", "INT", "b", "VARCHAR"), EstRows: 100}
}

func TestSchemasPropagate(t *testing.T) {
	sc := testScan()
	sel := &Select{Child: sc, Pred: expr.NewCmp(expr.GT, expr.NewColIdx(0, value.KindInt), expr.NewConst(value.NewInt(1)))}
	if sel.Schema() != sc.Out {
		t.Error("Select must pass through its child's schema")
	}
	srt := &Sort{Child: sel, Cols: []int{0}}
	dst := &Distinct{Child: srt}
	lim := &Limit{Child: dst, N: 10}
	if lim.Schema() != sc.Out || dst.Schema() != sc.Out || srt.Schema() != sc.Out {
		t.Error("pass-through nodes must preserve schema")
	}
	j := &Join{Left: sc, Right: testScan(), LeftKeys: []int{0}, RightKeys: []int{0},
		Out: sc.Out.Concat(sc.Out)}
	if j.Schema().Len() != 4 {
		t.Errorf("join schema = %v", j.Schema())
	}
	if len(j.Children()) != 2 || len(lim.Children()) != 1 || sc.Children() != nil {
		t.Error("Children arity wrong")
	}
}

func TestJoinMethodStrings(t *testing.T) {
	for m, want := range map[JoinMethod]string{
		JoinAuto: "auto", JoinColocated: "colocated", JoinRepartition: "repartition",
		JoinBroadcast: "broadcast", JoinCentral: "central",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestNodeStrings(t *testing.T) {
	sc := testScan()
	sc.Shared = true
	sc.Pred = expr.NewCmp(expr.GT, expr.NewColIdx(0, value.KindInt), expr.NewConst(value.NewInt(5)))
	if s := sc.String(); !strings.Contains(s, "Scan(t)") || !strings.Contains(s, "[shared]") || !strings.Contains(s, "> 5") {
		t.Errorf("Scan.String() = %q", s)
	}
	j := &Join{Left: sc, Right: testScan(), LeftKeys: []int{0}, RightKeys: []int{1},
		Method: JoinBroadcast, Swapped: true, Out: sc.Out.Concat(sc.Out)}
	if s := j.String(); !strings.Contains(s, "broadcast") || !strings.Contains(s, "swapped") {
		t.Errorf("Join.String() = %q", s)
	}
	agg := &Aggregate{Child: sc, GroupBy: []int{1}, Specs: []algebra.AggSpec{{Func: algebra.Count, Col: -1}},
		Pushdown: true, Out: value.MustSchema("b", "VARCHAR", "n", "INT")}
	if s := agg.String(); !strings.Contains(s, "pushdown=true") {
		t.Errorf("Aggregate.String() = %q", s)
	}
	p := &Project{Child: sc, Exprs: []expr.Expr{expr.NewColIdx(0, value.KindInt)},
		Names: []string{"a"}, Out: value.MustSchema("a", "INT")}
	if s := p.String(); !strings.Contains(s, "Project") {
		t.Errorf("Project.String() = %q", s)
	}
}

func TestFormatIndentsTree(t *testing.T) {
	root := &Limit{N: 3, Child: &Sort{Cols: []int{0}, Child: testScan()}}
	s := Format(root)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("Format lines = %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[1], "  ") || !strings.HasPrefix(lines[2], "    ") {
		t.Errorf("indentation wrong:\n%s", s)
	}
}

func TestEstRowsPropagation(t *testing.T) {
	sc := testScan() // 100
	if EstRows(&Distinct{Child: sc}) != 100 {
		t.Error("Distinct estimate")
	}
	if EstRows(&Sort{Child: sc}) != 100 {
		t.Error("Sort estimate")
	}
	if EstRows(&Limit{Child: sc, N: 7}) != 7 {
		t.Error("Limit caps estimate")
	}
	if EstRows(&Limit{Child: sc, N: 1000}) != 100 {
		t.Error("Limit above child estimate")
	}
	agg := &Aggregate{Child: sc, EstRows: 12}
	if EstRows(agg) != 12 {
		t.Error("Aggregate estimate")
	}
}

func TestWalkOrder(t *testing.T) {
	sc := testScan()
	j := &Join{Left: sc, Right: testScan(), Out: sc.Out.Concat(sc.Out)}
	var kinds []string
	Walk(&Limit{Child: j, N: 1}, func(n Node) {
		switch n.(type) {
		case *Limit:
			kinds = append(kinds, "limit")
		case *Join:
			kinds = append(kinds, "join")
		case *Scan:
			kinds = append(kinds, "scan")
		}
	})
	want := []string{"limit", "join", "scan", "scan"}
	if len(kinds) != len(want) {
		t.Fatalf("walk visited %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("walk order %v, want %v", kinds, want)
		}
	}
}
