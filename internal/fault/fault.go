// Package fault is a deterministic, seeded fault-injection registry for
// crash testing the engine's recovery paths. Production code declares
// named fault points at the places where failures actually land (a WAL
// append, the window between 2PC prepare and commit, a server frame
// write); tests and the E17 crashpoint sweep arm a point to fire an
// action — return an error, simulate a crash, tear a write at byte k,
// or delay — on the Nth hit or with seeded probability.
//
// Disarmed points are effectively free: Point.Eval is one atomic
// pointer load and a nil check, so the registry can stay threaded
// through hot paths permanently.
//
// A fired Crash or Tear fault additionally "poisons" the process
// (Crashed returns true): stable-storage writes fail from that instant
// on, modeling the fact that after a machine dies nothing more reaches
// disk — without it, graceful error-path cleanup (abort markers,
// rollbacks) would quietly resolve the very in-doubt states recovery
// exists to handle. The test harness then discards volatile state,
// calls ClearCrash, and runs recovery against exactly the bytes that
// made it down before the crash instant.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the root of every injected failure; errors.Is
// classifies any fault-caused error through it.
var ErrInjected = errors.New("fault: injected failure")

// ErrCrashed is returned by stable-storage operations attempted after a
// crash-mode fault fired: the simulated machine is dead, nothing more
// reaches disk until ClearCrash.
var ErrCrashed = fmt.Errorf("%w: machine crashed", ErrInjected)

// Mode selects what an armed fault point does when it fires.
type Mode uint8

// Fault modes.
const (
	// Error makes the injection site return an error; the process keeps
	// running (a transient failure — retry paths see exactly this).
	Error Mode = iota
	// Crash makes the site return an error and poisons all subsequent
	// stable writes (Crashed() turns true) — the machine died here.
	Crash
	// Tear applies to write sites: only the first TearAt bytes of the
	// write land, then the machine crashes (a torn page / partial
	// append at the moment of failure).
	Tear
	// Delay sleeps for Spec.Delay at the site, then continues normally
	// (a slow disk or network stall, for timeout testing).
	Delay
)

func (m Mode) String() string {
	switch m {
	case Error:
		return "error"
	case Crash:
		return "crash"
	case Tear:
		return "tear"
	case Delay:
		return "delay"
	}
	return "?"
}

// Domain is one crash scope: a set of stable stores that die together
// when a crash-mode fault fires against it. The zero of the package —
// every store and every Spec with a nil Domain — shares DefaultDomain,
// preserving the original process-wide semantics. Multi-node tests
// (replication failover) give each simulated machine its own Domain so
// crashing the primary does not poison the replica's disk.
type Domain struct {
	crashed atomic.Bool
}

// DefaultDomain is the process-wide crash scope used when no explicit
// Domain is configured.
var DefaultDomain = &Domain{}

// Crashed reports whether a crash-mode fault has fired in this domain.
func (d *Domain) Crashed() bool { return d.crashed.Load() }

// ClearCrash revives this domain's simulated machine.
func (d *Domain) ClearCrash() { d.crashed.Store(false) }

// SetCrashed poisons this domain's stable writes directly.
func (d *Domain) SetCrashed() { d.crashed.Store(true) }

// Spec describes how an armed point fires.
type Spec struct {
	// Mode selects the action (default Error).
	Mode Mode
	// N fires the fault on exactly the Nth hit (1-based) after arming.
	// Zero with P zero fires on every hit.
	N int
	// P fires the fault with probability P per hit, drawn from a
	// deterministic generator seeded with Seed (ignored when N > 0).
	P float64
	// Seed seeds the probability and tear-offset generator; runs with
	// the same seed fire identically.
	Seed int64
	// TearAt is the number of bytes of the write that land in Tear
	// mode. Negative picks a seeded random offset within the write.
	TearAt int
	// Delay is how long Delay mode sleeps.
	Delay time.Duration
	// Err overrides the error the site returns (default wraps
	// ErrInjected with the point name).
	Err error
	// Domain scopes Crash/Tear poison to one simulated machine; nil
	// poisons DefaultDomain (the whole process), the original behavior.
	Domain *Domain
}

// Outcome tells an injection site what to do; nil means proceed.
type Outcome struct {
	// Err is the error the site should return (nil in Delay mode).
	Err error
	// Tear, when >= 0, instructs a write site to persist only the
	// first Tear bytes of the write before failing.
	Tear int
}

// armed is the live state of one armed point.
type armed struct {
	spec  Spec
	hits  atomic.Int64
	rngMu sync.Mutex
	rng   *rand.Rand
}

// Point is one named fault-injection site.
type Point struct {
	name  string
	armed atomic.Pointer[armed]
	fired atomic.Int64
}

var (
	regMu    sync.Mutex
	registry = map[string]*Point{}
)

// Register declares a fault point; call once per name, at package init
// of the package owning the injection site. Registering a name twice
// returns the existing point, so tests that re-register are harmless.
func Register(name string) *Point {
	regMu.Lock()
	defer regMu.Unlock()
	if p, ok := registry[name]; ok {
		return p
	}
	p := &Point{name: name}
	registry[name] = p
	return p
}

// Points lists every registered fault point name, sorted.
func Points() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup finds a registered point by name (nil when absent).
func Lookup(name string) *Point {
	regMu.Lock()
	defer regMu.Unlock()
	return registry[name]
}

// Arm arms a registered point with the given spec, resetting its hit
// and fired counters. Arming an unregistered name is an error — the
// sweep must only name real injection sites.
func Arm(name string, spec Spec) error {
	p := Lookup(name)
	if p == nil {
		return fmt.Errorf("fault: unregistered point %q", name)
	}
	a := &armed{spec: spec}
	if spec.N <= 0 && (spec.P > 0 || spec.TearAt < 0) {
		a.rng = rand.New(rand.NewSource(spec.Seed))
	} else if spec.TearAt < 0 {
		a.rng = rand.New(rand.NewSource(spec.Seed))
	}
	p.fired.Store(0)
	p.armed.Store(a)
	return nil
}

// Disarm disarms a point; pending hits proceed normally afterwards.
func Disarm(name string) {
	if p := Lookup(name); p != nil {
		p.armed.Store(nil)
	}
}

// DisarmAll disarms every registered point (crash poison stays until
// ClearCrash — the machine does not revive just because the test
// stopped injecting).
func DisarmAll() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, p := range registry {
		p.armed.Store(nil)
	}
}

// Crashed reports whether a crash-mode fault has fired in the default
// domain; stable-storage operations there fail while true.
func Crashed() bool { return DefaultDomain.Crashed() }

// ClearCrash revives the default domain's simulated machine — the
// harness calls it after discarding volatile state, before running
// recovery.
func ClearCrash() { DefaultDomain.ClearCrash() }

// SetCrashed poisons default-domain stable writes directly (tests that
// simulate a crash without going through an armed point).
func SetCrashed() { DefaultDomain.SetCrashed() }

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

// Fired reports how many times the point has fired since last armed.
func (p *Point) Fired() int64 { return p.fired.Load() }

// Eval evaluates the point: nil when disarmed or not firing on this
// hit. Delay mode sleeps here and returns nil, so sites only need to
// handle the error/tear outcomes. Eval costs one atomic load while
// disarmed.
func (p *Point) Eval() *Outcome {
	a := p.armed.Load()
	if a == nil {
		return nil
	}
	return p.evalArmed(a, -1)
}

// EvalWrite is Eval for write sites: writeLen is the length of the
// pending write, bounding the torn offset.
func (p *Point) EvalWrite(writeLen int) *Outcome {
	a := p.armed.Load()
	if a == nil {
		return nil
	}
	return p.evalArmed(a, writeLen)
}

func (p *Point) evalArmed(a *armed, writeLen int) *Outcome {
	hit := a.hits.Add(1)
	switch {
	case a.spec.N > 0:
		if hit != int64(a.spec.N) {
			return nil
		}
	case a.spec.P > 0:
		a.rngMu.Lock()
		miss := a.rng.Float64() >= a.spec.P
		a.rngMu.Unlock()
		if miss {
			return nil
		}
	}
	p.fired.Add(1)
	if a.spec.Mode == Delay {
		time.Sleep(a.spec.Delay)
		return nil
	}
	err := a.spec.Err
	if err == nil {
		err = fmt.Errorf("%w at %s", ErrInjected, p.name)
	}
	out := &Outcome{Err: err, Tear: -1}
	dom := a.spec.Domain
	if dom == nil {
		dom = DefaultDomain
	}
	switch a.spec.Mode {
	case Crash:
		dom.crashed.Store(true)
		out.Err = fmt.Errorf("%w at %s", ErrCrashed, p.name)
	case Tear:
		tear := a.spec.TearAt
		if tear < 0 && writeLen > 0 {
			a.rngMu.Lock()
			tear = a.rng.Intn(writeLen)
			a.rngMu.Unlock()
		}
		if tear < 0 {
			tear = 0
		}
		if writeLen >= 0 && tear > writeLen {
			tear = writeLen
		}
		out.Tear = tear
		dom.crashed.Store(true)
		out.Err = fmt.Errorf("%w at %s (torn at byte %d)", ErrCrashed, p.name, tear)
	}
	return out
}

// EnvVar is the environment variable ArmFromEnv reads:
// semicolon-separated point specs, each
//
//	name=mode[:n][:arg]
//
// where mode is error|crash|tear|delay, n is the 1-based hit to fire
// on (0 = every hit), and arg is the tear byte offset (tear) or delay
// duration (delay). Example:
//
//	PRISMA_FAULTPOINTS='wal.append.pre-sync=crash:3;server.frame.write=error:0'
const EnvVar = "PRISMA_FAULTPOINTS"

// ArmFromEnv arms points from the EnvVar specification; unset or empty
// is a no-op. Unknown points or malformed specs are errors, so a typo
// in a torture-run configuration fails loudly instead of silently not
// injecting.
func ArmFromEnv() error {
	return armFromSpec(os.Getenv(EnvVar))
}

func armFromSpec(env string) error {
	if strings.TrimSpace(env) == "" {
		return nil
	}
	for _, entry := range strings.Split(env, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("fault: malformed spec %q (want name=mode[:n][:arg])", entry)
		}
		parts := strings.Split(rest, ":")
		var spec Spec
		switch parts[0] {
		case "error":
			spec.Mode = Error
		case "crash":
			spec.Mode = Crash
		case "tear":
			spec.Mode = Tear
			spec.TearAt = -1
		case "delay":
			spec.Mode = Delay
			spec.Delay = 10 * time.Millisecond
		default:
			return fmt.Errorf("fault: spec %q: unknown mode %q", entry, parts[0])
		}
		if len(parts) > 1 {
			n, err := strconv.Atoi(parts[1])
			if err != nil {
				return fmt.Errorf("fault: spec %q: bad hit count %q", entry, parts[1])
			}
			spec.N = n
		}
		if len(parts) > 2 {
			switch spec.Mode {
			case Tear:
				k, err := strconv.Atoi(parts[2])
				if err != nil {
					return fmt.Errorf("fault: spec %q: bad tear offset %q", entry, parts[2])
				}
				spec.TearAt = k
			case Delay:
				d, err := time.ParseDuration(parts[2])
				if err != nil {
					return fmt.Errorf("fault: spec %q: bad delay %q", entry, parts[2])
				}
				spec.Delay = d
			default:
				return fmt.Errorf("fault: spec %q: mode %s takes no argument", entry, spec.Mode)
			}
		}
		if err := Arm(strings.TrimSpace(name), spec); err != nil {
			return err
		}
	}
	return nil
}
