package fault

import (
	"errors"
	"testing"
	"time"
)

func reset(t *testing.T) {
	t.Helper()
	DisarmAll()
	ClearCrash()
	t.Cleanup(func() {
		DisarmAll()
		ClearCrash()
	})
}

func TestDisarmedIsNil(t *testing.T) {
	reset(t)
	p := Register("test.disarmed")
	for i := 0; i < 100; i++ {
		if out := p.Eval(); out != nil {
			t.Fatalf("disarmed point fired: %+v", out)
		}
	}
}

func TestNthHit(t *testing.T) {
	reset(t)
	p := Register("test.nth")
	if err := Arm("test.nth", Spec{Mode: Error, N: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		out := p.Eval()
		if i == 3 {
			if out == nil {
				t.Fatalf("hit %d: expected fire", i)
			}
			if !errors.Is(out.Err, ErrInjected) {
				t.Fatalf("hit %d: error %v not ErrInjected", i, out.Err)
			}
		} else if out != nil {
			t.Fatalf("hit %d: unexpected fire %+v", i, out)
		}
	}
	if got := p.Fired(); got != 1 {
		t.Fatalf("fired = %d, want 1", got)
	}
}

func TestEveryHit(t *testing.T) {
	reset(t)
	p := Register("test.every")
	if err := Arm("test.every", Spec{Mode: Error}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if p.Eval() == nil {
			t.Fatalf("hit %d: expected fire on every hit", i)
		}
	}
}

func TestSeededProbabilityDeterministic(t *testing.T) {
	reset(t)
	p := Register("test.prob")
	run := func() []bool {
		if err := Arm("test.prob", Spec{Mode: Error, P: 0.3, Seed: 42}); err != nil {
			t.Fatal(err)
		}
		var fires []bool
		for i := 0; i < 50; i++ {
			fires = append(fires, p.Eval() != nil)
		}
		return fires
	}
	a, b := run(), run()
	any := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d: runs diverged with same seed", i)
		}
		any = any || a[i]
	}
	if !any {
		t.Fatal("p=0.3 over 50 hits never fired")
	}
}

func TestCrashPoisons(t *testing.T) {
	reset(t)
	p := Register("test.crash")
	if err := Arm("test.crash", Spec{Mode: Crash, N: 1}); err != nil {
		t.Fatal(err)
	}
	out := p.Eval()
	if out == nil || !errors.Is(out.Err, ErrCrashed) {
		t.Fatalf("expected ErrCrashed, got %+v", out)
	}
	if !Crashed() {
		t.Fatal("Crashed() false after crash fault")
	}
	DisarmAll()
	if !Crashed() {
		t.Fatal("DisarmAll must not revive the machine")
	}
	ClearCrash()
	if Crashed() {
		t.Fatal("Crashed() true after ClearCrash")
	}
}

func TestTearOutcome(t *testing.T) {
	reset(t)
	p := Register("test.tear")
	if err := Arm("test.tear", Spec{Mode: Tear, N: 1, TearAt: 7}); err != nil {
		t.Fatal(err)
	}
	out := p.EvalWrite(100)
	if out == nil || out.Tear != 7 {
		t.Fatalf("expected tear at 7, got %+v", out)
	}
	if !Crashed() {
		t.Fatal("tear must poison the machine")
	}
	ClearCrash()

	// Tear offset is clamped to the write length.
	if err := Arm("test.tear", Spec{Mode: Tear, N: 1, TearAt: 500}); err != nil {
		t.Fatal(err)
	}
	out = p.EvalWrite(10)
	if out == nil || out.Tear != 10 {
		t.Fatalf("expected tear clamped to 10, got %+v", out)
	}
}

func TestSeededTearOffsetDeterministic(t *testing.T) {
	reset(t)
	p := Register("test.tearrand")
	tearAt := func(seed int64) int {
		if err := Arm("test.tearrand", Spec{Mode: Tear, N: 1, TearAt: -1, Seed: seed}); err != nil {
			t.Fatal(err)
		}
		out := p.EvalWrite(1000)
		if out == nil {
			t.Fatal("expected fire")
		}
		ClearCrash()
		return out.Tear
	}
	if a, b := tearAt(7), tearAt(7); a != b {
		t.Fatalf("same seed gave tear %d then %d", a, b)
	}
}

func TestDelayMode(t *testing.T) {
	reset(t)
	p := Register("test.delay")
	if err := Arm("test.delay", Spec{Mode: Delay, N: 1, Delay: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if out := p.Eval(); out != nil {
		t.Fatalf("delay mode must not return an outcome, got %+v", out)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("delay mode only slept %v", elapsed)
	}
}

func TestArmUnregistered(t *testing.T) {
	reset(t)
	if err := Arm("test.no-such-point", Spec{}); err == nil {
		t.Fatal("arming an unregistered point must fail")
	}
}

func TestArmFromSpec(t *testing.T) {
	reset(t)
	a := Register("test.env.a")
	b := Register("test.env.b")
	err := armFromSpec("test.env.a=crash:2; test.env.b=tear:1:13")
	if err != nil {
		t.Fatal(err)
	}
	if a.Eval() != nil {
		t.Fatal("a fired on hit 1, armed for hit 2")
	}
	if out := a.Eval(); out == nil || !errors.Is(out.Err, ErrCrashed) {
		t.Fatalf("a hit 2: want crash, got %+v", out)
	}
	ClearCrash()
	if out := b.EvalWrite(100); out == nil || out.Tear != 13 {
		t.Fatalf("b: want tear at 13, got %+v", out)
	}
	ClearCrash()

	for _, bad := range []string{
		"nonsense",
		"test.env.a=explode",
		"test.env.a=crash:x",
		"test.env.a=error:1:arg",
		"test.unregistered=crash",
	} {
		if err := armFromSpec(bad); err == nil {
			t.Fatalf("spec %q: expected error", bad)
		}
	}
	if err := armFromSpec(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
}

func TestPointsSorted(t *testing.T) {
	Register("test.z")
	Register("test.a")
	pts := Points()
	for i := 1; i < len(pts); i++ {
		if pts[i-1] >= pts[i] {
			t.Fatalf("Points() not sorted/unique at %d: %v", i, pts)
		}
	}
}
