package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func TestNormalizeSharesShapes(t *testing.T) {
	k1, l1, ok1 := Normalize(`SELECT * FROM emp WHERE id = 7`)
	k2, l2, ok2 := Normalize(`select  *  from emp WHERE id=42`)
	if !ok1 || !ok2 {
		t.Fatal("point queries not cacheable")
	}
	if k1 != k2 {
		t.Fatalf("keys differ:\n%q\n%q", k1, k2)
	}
	if len(l1) != 1 || l1[0].Int() != 7 || len(l2) != 1 || l2[0].Int() != 42 {
		t.Fatalf("literals %v / %v", l1, l2)
	}
	k3, _, _ := Normalize(`SELECT * FROM emp WHERE id = 'x'`)
	if k3 != k1 {
		// Same shape: the key does not encode the literal's kind; the
		// engine verifies against the AST before caching.
		t.Logf("string key differs from int key (fine): %q", k3)
	}
}

func TestNormalizeRejects(t *testing.T) {
	for _, src := range []string{
		`BEGIN`,
		`CREATE TABLE t (x INT)`,
		`DROP TABLE t`,
		`SELECT * FROM t WHERE id = ?`,  // explicit params are Prepare's job
		`SELECT * FROM t WHERE id = $1`, //
		`nonsense`,
	} {
		if _, _, ok := Normalize(src); ok {
			t.Errorf("Normalize(%q) cacheable, want not", src)
		}
	}
}

// TestNormalizeAlignsWithParameterize is the interlock the plan cache
// relies on: for every statement the cache would admit, the token-level
// literals and the AST-lifted constants must agree exactly.
func TestNormalizeAlignsWithParameterize(t *testing.T) {
	aligned := []string{
		`SELECT * FROM emp WHERE id = 7`,
		`SELECT * FROM emp WHERE salary > -10 AND salary < 100`,
		`SELECT * FROM emp WHERE salary + -5 > 2.5`,
		`INSERT INTO emp VALUES (1, 'eng', 100), (2, 'ops', -3)`,
		`UPDATE emp SET salary = salary + 10 WHERE id = 4`,
		`DELETE FROM emp WHERE dept = 'hr'`,
		`SELECT 5 AS five, id FROM emp WHERE dept = 'x'`,
		`SELECT * FROM emp WHERE dept LIKE 'e%'`,  // pattern stays in key
		`SELECT * FROM emp WHERE id IN (1, 2, 3)`, // list stays in key
		`SELECT id FROM emp ORDER BY id LIMIT 5`,  // limit stays in key
		`SELECT e.id FROM emp e JOIN d ON e.x = d.y WHERE e.id = 3`,
	}
	for _, src := range aligned {
		key, lits, ok := Normalize(src)
		if !ok {
			t.Errorf("Normalize(%q) not cacheable", src)
			continue
		}
		st, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		pst, vals, pok := Parameterize(st)
		if !pok {
			t.Errorf("Parameterize(%q) failed", src)
			continue
		}
		if pst == nil {
			t.Errorf("Parameterize(%q) returned nil stmt", src)
		}
		if len(vals) != len(lits) {
			t.Errorf("%q: %d lifted consts vs %d token literals (key %q)", src, len(vals), len(lits), key)
			continue
		}
		for i := range vals {
			if vals[i].Kind() != lits[i].Kind() || !value.Equal(vals[i], lits[i]) {
				t.Errorf("%q: slot %d AST %s vs token %s", src, i, vals[i].Quoted(), lits[i].Quoted())
			}
		}
	}
}

func TestNormalizeKeepsStructuralLiterals(t *testing.T) {
	// Different LIKE patterns / IN lists / LIMIT counts are different
	// plans and must not share a key.
	pairs := [][2]string{
		{`SELECT * FROM t WHERE a LIKE 'x%'`, `SELECT * FROM t WHERE a LIKE 'y%'`},
		{`SELECT * FROM t WHERE a IN (1, 2)`, `SELECT * FROM t WHERE a IN (3, 4)`},
		{`SELECT * FROM t LIMIT 5`, `SELECT * FROM t LIMIT 6`},
	}
	for _, p := range pairs {
		k1, _, ok1 := Normalize(p[0])
		k2, _, ok2 := Normalize(p[1])
		if !ok1 || !ok2 {
			t.Errorf("not cacheable: %q / %q", p[0], p[1])
			continue
		}
		if k1 == k2 {
			t.Errorf("structural literals collapsed into one key: %q and %q", p[0], p[1])
		}
	}
}

func TestParseStmtParams(t *testing.T) {
	_, n, err := ParseStmt(`SELECT * FROM t WHERE a = ? AND b = ?`)
	if err != nil || n != 2 {
		t.Fatalf("qmarks: n=%d err=%v", n, err)
	}
	_, n, err = ParseStmt(`SELECT * FROM t WHERE a = $3`)
	if err != nil || n != 3 {
		t.Fatalf("dollar: n=%d err=%v", n, err)
	}
	if _, err := Parse(`SELECT * FROM t WHERE a = ?`); err == nil {
		t.Error("Parse accepted placeholders")
	}
	if _, _, err := ParseStmt(`SELECT * FROM t WHERE a = $0`); err == nil {
		t.Error("$0 accepted")
	}
	if _, _, err := ParseStmt(`SELECT * FROM t WHERE a = $`); err == nil {
		t.Error("bare $ accepted")
	}
	// '?' slots are capped like '$n' ordinals: the wire arity field is
	// a uint16, and an uncapped count would truncate in PrepareOK.
	var b strings.Builder
	b.WriteString(`INSERT INTO t VALUES (?`)
	for i := 1; i < MaxParams+1; i++ {
		b.WriteString(`, ?`)
	}
	b.WriteString(`)`)
	if _, _, err := ParseStmt(b.String()); err == nil ||
		!strings.Contains(err.Error(), "exceed") {
		t.Errorf("%d '?' slots accepted: %v", MaxParams+1, err)
	}
}
