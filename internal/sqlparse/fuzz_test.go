package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParseStmt drives the SQL parser with hostile input, the way the
// wire package fuzzes its ten frame decoders: the parser must never
// panic, never exhaust the stack on deep nesting, and every accepted
// statement must satisfy its own invariants (a statement value, a sane
// parameter count, and a Normalize pass that doesn't crash on the same
// text). Seeded with the DDL / DML / placeholder / EXPLAIN shapes the
// engine actually serves.
func FuzzParseStmt(f *testing.F) {
	seeds := []string{
		// DDL with fragmentation clauses.
		`CREATE TABLE emp (id INT, name VARCHAR, salary FLOAT, PRIMARY KEY (id)) FRAGMENT BY HASH(id) INTO 8 FRAGMENTS`,
		`CREATE TABLE log (ts INT) FRAGMENT BY RANGE(ts) VALUES (100, 200) INTO 3 FRAGMENTS`,
		`CREATE TABLE tmp (x INT, b BOOL) FRAGMENT BY ROUND ROBIN INTO 4 FRAGMENTS`,
		`DROP TABLE emp;`,
		// DML.
		`INSERT INTO emp (id, name) VALUES (1, 'a'), (2, 'b')`,
		`UPDATE emp SET salary = salary * 1.1, name = 'x' WHERE id = 7 AND name LIKE 'a%'`,
		`DELETE FROM emp WHERE id IN (1, 2, 3) OR name IS NOT NULL`,
		// SELECT shapes: joins, aggregation, grouping, ordering.
		`SELECT * FROM emp`,
		`SELECT e.id, d.name AS dept FROM emp e JOIN dept d ON e.dept = d.name WHERE e.salary > 100 OR NOT (e.id < 5)`,
		`SELECT dept, COUNT(*) AS n, AVG(salary) FROM emp GROUP BY dept HAVING n > 3 ORDER BY n DESC LIMIT 10`,
		`SELECT DISTINCT a.x FROM t a, u b WHERE a.x = b.y AND a.z % 3 = -1`,
		// Placeholder parameters, both styles.
		`SELECT * FROM emp WHERE id = ?`,
		`SELECT * FROM emp WHERE id = $1 AND salary > $2`,
		`INSERT INTO emp VALUES (?, ?, ?)`,
		// EXPLAIN.
		`EXPLAIN SELECT e.id FROM emp e JOIN dept d ON e.dept = d.name GROUP BY e.id`,
		`EXPLAIN SELECT * FROM emp WHERE id = 5;`,
		// Transaction control and junk.
		`BEGIN`, `COMMIT`, `ROLLBACK;`,
		`SELECT (((1)))`, `SELECT - - - 1 FROM t`, `SELECT NOT NOT TRUE FROM t`,
		``, `;`, `(`, `SELECT`, `'unterminated`, "SELECT \x00 FROM t",
		strings.Repeat("(", 300) + "1" + strings.Repeat(")", 300),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return // bound fuzz cost; the lexer is linear anyway
		}
		st, nparams, err := ParseStmt(src)
		if err != nil {
			return
		}
		if st == nil {
			t.Fatalf("ParseStmt(%q): nil statement without error", src)
		}
		if nparams < 0 || nparams > MaxParams {
			t.Fatalf("ParseStmt(%q): parameter count %d out of range", src, nparams)
		}
		// Parse (the no-placeholder entry) must agree with ParseStmt on
		// whether placeholders are present.
		if _, perr := Parse(src); (perr != nil) != (nparams > 0) {
			t.Fatalf("Parse(%q) err=%v but nparams=%d", src, perr, nparams)
		}
		// The plan-cache normalizer must never panic on parseable input,
		// and when it claims a key, re-parsing its parameterized form
		// must agree with the literal count.
		key, lits, ok := Normalize(src)
		if ok {
			if key == "" {
				t.Fatalf("Normalize(%q): ok with empty key", src)
			}
			pst, vals, pok := Parameterize(st)
			if pok {
				if pst == nil {
					t.Fatalf("Parameterize(%q): ok with nil statement", src)
				}
				if len(vals) != len(lits) {
					// Alignment is verified value-by-value in core; here
					// just require both passes to see the same count.
					t.Fatalf("Parameterize(%q): %d lifted values vs %d normalized literals", src, len(vals), len(lits))
				}
			}
		}
	})
}
