package sqlparse

import (
	"repro/internal/expr"
	"repro/internal/fragment"
	"repro/internal/value"
)

// Stmt is a parsed SQL statement.
type Stmt interface{ stmt() }

// CreateTable is CREATE TABLE with PRISMA's fragmentation clause:
//
//	CREATE TABLE emp (id INT, name VARCHAR, PRIMARY KEY (id))
//	  FRAGMENT BY HASH(id) INTO 8 FRAGMENTS
//	CREATE TABLE log (ts INT) FRAGMENT BY RANGE(ts) VALUES (100, 200) INTO 3 FRAGMENTS
//	CREATE TABLE tmp (x INT) FRAGMENT BY ROUND ROBIN INTO 4 FRAGMENTS
type CreateTable struct {
	Name       string
	Cols       []value.Column
	PrimaryKey []string
	Frag       *FragClause
}

// FragClause is the fragmentation declaration.
type FragClause struct {
	Strategy fragment.Strategy
	Column   string // key column for hash/range
	N        int
	Bounds   []value.Value // range split points
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

// Insert is INSERT INTO t [(cols)] VALUES (...), (...).
type Insert struct {
	Table string
	Cols  []string // optional explicit column list
	Rows  [][]expr.Expr
}

// SelectItem is one output column of a SELECT.
type SelectItem struct {
	Star bool      // SELECT *
	Expr expr.Expr // scalar expression (nil for Star and Agg items)
	Agg  *AggItem  // aggregate call
	As   string    // output name (optional)
}

// AggItem is an aggregate invocation in the select list.
type AggItem struct {
	Func string    // COUNT, SUM, AVG, MIN, MAX (canonical upper)
	Star bool      // COUNT(*)
	Arg  expr.Expr // argument column/expression
}

// FromItem is a base table reference with an optional alias.
type FromItem struct {
	Table string
	Alias string
}

// JoinClause is an explicit JOIN t [alias] ON cond.
type JoinClause struct {
	Table string
	Alias string
	On    expr.Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Col  string
	Desc bool
}

// Select is a SELECT statement over one or more relations.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Joins    []JoinClause
	Where    expr.Expr
	GroupBy  []string
	Having   expr.Expr
	OrderBy  []OrderItem
	Limit    int // -1 = none
}

// SetClause is one column assignment of an UPDATE.
type SetClause struct {
	Col  string
	Expr expr.Expr
}

// Update is UPDATE t SET ... [WHERE ...].
type Update struct {
	Table string
	Set   []SetClause
	Where expr.Expr
}

// Delete is DELETE FROM t [WHERE ...].
type Delete struct {
	Table string
	Where expr.Expr
}

// Explain is EXPLAIN <stmt>: return the optimized plan of the wrapped
// statement as a one-column result, without executing it or taking any
// locks.
type Explain struct{ Stmt Stmt }

// Begin, Commit and Rollback control explicit transactions in the shell.
type Begin struct{}

// Commit commits the session's open transaction.
type Commit struct{}

// Rollback aborts the session's open transaction.
type Rollback struct{}

func (*CreateTable) stmt() {}
func (*Explain) stmt()     {}
func (*DropTable) stmt()   {}
func (*Insert) stmt()      {}
func (*Select) stmt()      {}
func (*Update) stmt()      {}
func (*Delete) stmt()      {}
func (*Begin) stmt()       {}
func (*Commit) stmt()      {}
func (*Rollback) stmt()    {}
