package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/fragment"
	"repro/internal/value"
)

func parseOK(t *testing.T, src string) Stmt {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func TestCreateTable(t *testing.T) {
	st := parseOK(t, `CREATE TABLE emp (id INT, name VARCHAR, salary FLOAT, PRIMARY KEY (id))
		FRAGMENT BY HASH(id) INTO 8 FRAGMENTS;`)
	ct, ok := st.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ct.Name != "emp" || len(ct.Cols) != 3 {
		t.Errorf("table = %q, cols = %v", ct.Name, ct.Cols)
	}
	if ct.Cols[0].Kind != value.KindInt || ct.Cols[1].Kind != value.KindString || ct.Cols[2].Kind != value.KindFloat {
		t.Errorf("column kinds = %v", ct.Cols)
	}
	if len(ct.PrimaryKey) != 1 || ct.PrimaryKey[0] != "id" {
		t.Errorf("primary key = %v", ct.PrimaryKey)
	}
	if ct.Frag == nil || ct.Frag.Strategy != fragment.Hash || ct.Frag.Column != "id" || ct.Frag.N != 8 {
		t.Errorf("frag = %+v", ct.Frag)
	}
}

func TestCreateTableRangeAndRoundRobin(t *testing.T) {
	st := parseOK(t, `CREATE TABLE log (ts INT, msg VARCHAR)
		FRAGMENT BY RANGE(ts) VALUES (100, 200) INTO 3 FRAGMENTS`)
	ct := st.(*CreateTable)
	if ct.Frag.Strategy != fragment.Range || len(ct.Frag.Bounds) != 2 || ct.Frag.Bounds[1].Int() != 200 {
		t.Errorf("range frag = %+v", ct.Frag)
	}
	st = parseOK(t, `CREATE TABLE tmp (x INT) FRAGMENT BY ROUND ROBIN INTO 4 FRAGMENTS`)
	ct = st.(*CreateTable)
	if ct.Frag.Strategy != fragment.RoundRobin || ct.Frag.N != 4 {
		t.Errorf("rr frag = %+v", ct.Frag)
	}
	// No fragment clause: nil.
	st = parseOK(t, `CREATE TABLE plain (x INT)`)
	if st.(*CreateTable).Frag != nil {
		t.Error("expected nil frag clause")
	}
}

func TestCreateTableErrors(t *testing.T) {
	bad := []string{
		`CREATE TABLE`,
		`CREATE TABLE t`,
		`CREATE TABLE t (x BLOB)`,
		`CREATE TABLE t (x INT) FRAGMENT BY HASH(x) INTO 0 FRAGMENTS`,
		`CREATE TABLE t (x INT) FRAGMENT BY RANGE(x) VALUES (1) INTO 5 FRAGMENTS`,
		`CREATE TABLE t (x INT) FRAGMENT BY MAGIC(x) INTO 2 FRAGMENTS`,
		`CREATE TABLE t (x INT) FRAGMENT BY ROUND ROBIN INTO two FRAGMENTS`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestDropTable(t *testing.T) {
	st := parseOK(t, `DROP TABLE emp`)
	if dt, ok := st.(*DropTable); !ok || dt.Name != "emp" {
		t.Errorf("got %#v", st)
	}
}

func TestInsert(t *testing.T) {
	st := parseOK(t, `INSERT INTO emp VALUES (1, 'ann', 100.5), (2, 'bob', -3)`)
	ins := st.(*Insert)
	if ins.Table != "emp" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Fatalf("insert = %+v", ins)
	}
	// Negative literal folded.
	c, ok := ins.Rows[1][2].(*expr.Const)
	if !ok || c.V.Int() != -3 {
		t.Errorf("negative literal = %v", ins.Rows[1][2])
	}
	// Explicit column list.
	st = parseOK(t, `INSERT INTO emp (id, name) VALUES (1, 'x')`)
	if cols := st.(*Insert).Cols; len(cols) != 2 || cols[1] != "name" {
		t.Errorf("cols = %v", cols)
	}
}

func TestSelectBasic(t *testing.T) {
	st := parseOK(t, `SELECT * FROM emp`)
	sel := st.(*Select)
	if !sel.Items[0].Star || len(sel.From) != 1 || sel.From[0].Table != "emp" {
		t.Errorf("select = %+v", sel)
	}
	if sel.Limit != -1 || sel.Distinct {
		t.Errorf("defaults wrong: %+v", sel)
	}
}

func TestSelectFull(t *testing.T) {
	st := parseOK(t, `SELECT DISTINCT dept, COUNT(*) AS n, AVG(salary) mean
		FROM emp e
		WHERE salary > 100 AND dept <> 'hr'
		GROUP BY dept
		HAVING n > 2
		ORDER BY dept DESC, n
		LIMIT 10`)
	sel := st.(*Select)
	if !sel.Distinct {
		t.Error("DISTINCT lost")
	}
	if len(sel.Items) != 3 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	if sel.Items[1].Agg == nil || sel.Items[1].Agg.Func != "COUNT" || !sel.Items[1].Agg.Star || sel.Items[1].As != "n" {
		t.Errorf("item 1 = %+v", sel.Items[1])
	}
	if sel.Items[2].Agg == nil || sel.Items[2].Agg.Func != "AVG" || sel.Items[2].As != "mean" {
		t.Errorf("item 2 = %+v", sel.Items[2])
	}
	if sel.From[0].Alias != "e" {
		t.Errorf("alias = %q", sel.From[0].Alias)
	}
	if sel.Where == nil || sel.Having == nil {
		t.Error("where/having lost")
	}
	if len(sel.GroupBy) != 1 || sel.GroupBy[0] != "dept" {
		t.Errorf("group by = %v", sel.GroupBy)
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order by = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d", sel.Limit)
	}
}

func TestSelectJoins(t *testing.T) {
	st := parseOK(t, `SELECT e.name, d.budget FROM emp e JOIN dept d ON e.dept = d.name WHERE e.salary > 10`)
	sel := st.(*Select)
	if len(sel.Joins) != 1 || sel.Joins[0].Table != "dept" || sel.Joins[0].Alias != "d" {
		t.Fatalf("joins = %+v", sel.Joins)
	}
	if sel.Joins[0].On == nil {
		t.Error("join condition lost")
	}
	// Implicit join (comma list).
	st = parseOK(t, `SELECT * FROM a, b WHERE a.x = b.y`)
	sel = st.(*Select)
	if len(sel.From) != 2 {
		t.Errorf("from = %+v", sel.From)
	}
	// INNER JOIN keyword.
	st = parseOK(t, `SELECT * FROM a INNER JOIN b ON a.x = b.y`)
	if len(st.(*Select).Joins) != 1 {
		t.Error("INNER JOIN not parsed")
	}
}

func TestUpdateDelete(t *testing.T) {
	st := parseOK(t, `UPDATE emp SET salary = salary * 2, dept = 'eng' WHERE id = 5`)
	up := st.(*Update)
	if up.Table != "emp" || len(up.Set) != 2 || up.Set[0].Col != "salary" || up.Where == nil {
		t.Errorf("update = %+v", up)
	}
	st = parseOK(t, `DELETE FROM emp WHERE dept = 'hr'`)
	del := st.(*Delete)
	if del.Table != "emp" || del.Where == nil {
		t.Errorf("delete = %+v", del)
	}
	st = parseOK(t, `DELETE FROM emp`)
	if st.(*Delete).Where != nil {
		t.Error("unconditional delete should have nil where")
	}
}

func TestTransactionStatements(t *testing.T) {
	if _, ok := parseOK(t, "BEGIN").(*Begin); !ok {
		t.Error("BEGIN")
	}
	if _, ok := parseOK(t, "COMMIT").(*Commit); !ok {
		t.Error("COMMIT")
	}
	if _, ok := parseOK(t, "ROLLBACK").(*Rollback); !ok {
		t.Error("ROLLBACK")
	}
	if _, ok := parseOK(t, "ABORT;").(*Rollback); !ok {
		t.Error("ABORT")
	}
}

func TestExpressionParsing(t *testing.T) {
	// Render back via expr.String and check structure survived.
	cases := map[string]string{
		`SELECT a + b * c FROM t`:                        "(a + (b * c))",
		`SELECT (a + b) * c FROM t`:                      "((a + b) * c)",
		`SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3`: "(x = 1 OR (y = 2 AND z = 3))",
		`SELECT a FROM t WHERE NOT x = 1`:                "(NOT x = 1)",
		`SELECT a FROM t WHERE x IS NOT NULL`:            "(x IS NOT NULL)",
		`SELECT a FROM t WHERE name LIKE 'a%'`:           "(name LIKE 'a%')",
		`SELECT a FROM t WHERE name NOT LIKE 'a%'`:       "(name NOT LIKE 'a%')",
		`SELECT a FROM t WHERE id IN (1, 2, 3)`:          "(id IN (1, 2, 3))",
		`SELECT a FROM t WHERE id NOT IN (1)`:            "(id NOT IN (1))",
		`SELECT a FROM t WHERE x % 2 = 0`:                "(x % 2) = 0",
		`SELECT a FROM t WHERE -x < 5`:                   "(-x) < 5",
		`SELECT a FROM t WHERE abs(x - 5) > 2`:           "ABS((x - 5)) > 2",
		`SELECT a FROM t WHERE t.x >= 1.5`:               "t.x >= 1.5",
	}
	for src, want := range cases {
		st := parseOK(t, src)
		sel := st.(*Select)
		var e expr.Expr
		if sel.Where != nil {
			e = sel.Where
		} else {
			e = sel.Items[0].Expr
		}
		if got := e.String(); got != want {
			t.Errorf("%q parsed to %q, want %q", src, got, want)
		}
	}
}

func TestLexerFeatures(t *testing.T) {
	// String escapes, comments, != alias.
	st := parseOK(t, `SELECT a FROM t -- a comment
		WHERE name = 'o''brien' AND x != 2`)
	sel := st.(*Select)
	s := sel.Where.String()
	if !strings.Contains(s, "o'brien") || !strings.Contains(s, "<>") {
		t.Errorf("where = %q", s)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT * FROM`,
		`SELECT * FROM t WHERE`,
		`SELECT * FROM t LIMIT x`,
		`SELECT * FROM t GROUP`,
		`INSERT INTO t`,
		`INSERT INTO t VALUES`,
		`INSERT INTO t VALUES (1`,
		`UPDATE t`,
		`UPDATE t SET`,
		`DELETE t`,
		`SELECT * FROM t;;EXTRA`,
		`SELECT * FROM t WHERE x LIKE 5`,
		`SELECT * FROM t WHERE x NOT 5`,
		`SELECT 'unterminated FROM t`,
		`SELECT 1x FROM t`,
		`SELECT * FROM t WHERE x @ 1`,
		`SELECT * FROM t JOIN u`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	st := parseOK(t, `select id from emp where id > 1 order by id desc limit 5`)
	sel := st.(*Select)
	if sel.Limit != 5 || !sel.OrderBy[0].Desc {
		t.Errorf("lower-case parse = %+v", sel)
	}
}
