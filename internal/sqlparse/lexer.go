// Package sqlparse implements the SQL interface of the PRISMA DBMS
// (paper §2.1/§2.2: the Global Data Handler contains "the parsers for
// SQL and PRISMAlog"). The subset covers the experiments: CREATE TABLE
// with fragmentation clauses, INSERT, SELECT with joins / aggregation /
// grouping / ordering, UPDATE and DELETE.
package sqlparse

import (
	"fmt"
	"strings"
)

// tokKind classifies a lexer token.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokOp    // operators and punctuation
	tokParam // placeholder parameter: text "" for '?', digits for '$n'
)

type token struct {
	kind tokKind
	text string // canonical: keywords upper-cased, operators literal
	pos  int    // byte offset, for error messages
}

// keywords recognized by the lexer (canonical upper case).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "ASC": true, "DESC": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "TABLE": true, "DROP": true,
	"PRIMARY": true, "KEY": true, "FRAGMENT": true, "HASH": true,
	"RANGE": true, "ROUND": true, "ROBIN": true, "FRAGMENTS": true,
	"AND": true, "OR": true, "NOT": true, "IS": true, "NULL": true,
	"TRUE": true, "FALSE": true, "LIKE": true, "IN": true, "AS": true,
	"JOIN": true, "ON": true, "DISTINCT": true, "UNION": true, "ALL": true,
	"INNER": true, "BEGIN": true, "COMMIT": true, "ABORT": true, "ROLLBACK": true,
	"EXPLAIN": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isDigit(c):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case isIdentStart(c):
			l.lexIdent()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '?':
			l.toks = append(l.toks, token{kind: tokParam, pos: l.pos})
			l.pos++
		case c == '$':
			if err := l.lexDollarParam(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func (l *lexer) lexNumber() error {
	start := l.pos
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	kind := tokInt
	if l.pos < len(l.src) && l.src[l.pos] == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
		kind = tokFloat
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && isIdentStart(l.src[l.pos]) {
		return fmt.Errorf("sql: malformed number at offset %d", start)
	}
	l.toks = append(l.toks, token{kind: kind, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: upper, pos: start})
		return
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: word, pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at offset %d", start)
}

// lexDollarParam lexes a '$n' placeholder (n = 1-based slot number).
func (l *lexer) lexDollarParam() error {
	start := l.pos
	l.pos++ // '$'
	digits := l.pos
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos == digits {
		return fmt.Errorf("sql: '$' must be followed by a parameter number at offset %d", start)
	}
	l.toks = append(l.toks, token{kind: tokParam, text: l.src[digits:l.pos], pos: start})
	return nil
}

func (l *lexer) lexOp() error {
	start := l.pos
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<>", "<=", ">=", "!=":
		text := two
		if text == "!=" {
			text = "<>"
		}
		l.toks = append(l.toks, token{kind: tokOp, text: text, pos: start})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', ';', '.':
		l.toks = append(l.toks, token{kind: tokOp, text: string(c), pos: start})
		l.pos++
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
}
