package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/fragment"
	"repro/internal/value"
)

// Parse parses one SQL statement (a trailing semicolon is allowed).
// Placeholder parameters are rejected — statements with '?' or '$n'
// slots go through ParseStmt and the engine's prepared-statement path.
func Parse(src string) (Stmt, error) {
	st, nparams, err := ParseStmt(src)
	if err != nil {
		return nil, err
	}
	if nparams > 0 {
		return nil, fmt.Errorf("sql: statement has %d parameter placeholders; prepare it and bind values", nparams)
	}
	return st, nil
}

// ParseStmt parses one SQL statement that may contain '?' or '$n'
// placeholder parameters, returning the statement and its parameter
// count ('?' slots number left to right; '$n' slots are explicit and the
// two styles cannot mix).
func ParseStmt(src string) (Stmt, int, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, 0, err
	}
	p := &parser{toks: toks}
	st, err := p.parseStmt()
	if err != nil {
		return nil, 0, err
	}
	p.accept(tokOp, ";")
	if !p.at(tokEOF, "") {
		return nil, 0, p.errf("trailing input %q", p.cur().text)
	}
	nparams := p.qmarks
	if p.maxDollar > nparams {
		nparams = p.maxDollar
	}
	if nparams > MaxParams {
		return nil, 0, fmt.Errorf("sql: %d parameters exceed the %d limit", nparams, MaxParams)
	}
	return st, nparams, nil
}

type parser struct {
	toks []token
	pos  int

	qmarks    int // '?' placeholders seen so far
	maxDollar int // largest '$n' slot seen
	depth     int // expression nesting, bounded by maxExprDepth
}

// maxExprDepth bounds expression-grammar recursion so hostile input
// (kilobytes of '((((' or 'NOT NOT NOT') fails with a parse error
// instead of exhausting the goroutine stack.
const maxExprDepth = 200

func (p *parser) enter() error {
	p.depth++
	if p.depth > maxExprDepth {
		return p.errf("expression nested deeper than %d levels", maxExprDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

// param consumes the current tokParam token and returns its expression.
func (p *parser) param() (expr.Expr, error) {
	t := p.next()
	if t.text == "" { // '?'
		if p.maxDollar > 0 {
			return nil, p.errf("cannot mix '?' and '$n' parameters")
		}
		ord := p.qmarks
		p.qmarks++
		return expr.NewParam(ord), nil
	}
	if p.qmarks > 0 {
		return nil, p.errf("cannot mix '?' and '$n' parameters")
	}
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 1 || n > MaxParams {
		return nil, p.errf("bad parameter number $%s (1..%d)", t.text, MaxParams)
	}
	if n > p.maxDollar {
		p.maxDollar = n
	}
	return expr.NewParam(n - 1), nil
}

// MaxParams caps a statement's parameter arity. The wire protocol
// carries arity as a uint16, and an unchecked `$9000000000000000000`
// would size a server-side slice from a tiny hostile frame.
const MaxParams = 1<<16 - 1

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, p.errf("expected %s, found %q", want, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.accept(tokKeyword, "EXPLAIN"):
		if p.at(tokKeyword, "EXPLAIN") {
			return nil, p.errf("EXPLAIN cannot be nested")
		}
		inner, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &Explain{Stmt: inner}, nil
	case p.at(tokKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(tokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(tokKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.at(tokKeyword, "DELETE"):
		return p.parseDelete()
	case p.at(tokKeyword, "CREATE"):
		return p.parseCreate()
	case p.at(tokKeyword, "DROP"):
		return p.parseDrop()
	case p.accept(tokKeyword, "BEGIN"):
		return &Begin{}, nil
	case p.accept(tokKeyword, "COMMIT"):
		return &Commit{}, nil
	case p.accept(tokKeyword, "ABORT"), p.accept(tokKeyword, "ROLLBACK"):
		return &Rollback{}, nil
	}
	return nil, p.errf("expected a statement, found %q", p.cur().text)
}

// ---------- DDL ----------

func (p *parser) parseCreate() (Stmt, error) {
	p.next() // CREATE
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		if p.accept(tokKeyword, "PRIMARY") {
			if _, err := p.expect(tokKeyword, "KEY"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, "("); err != nil {
				return nil, err
			}
			for {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				ct.PrimaryKey = append(ct.PrimaryKey, col)
				if !p.accept(tokOp, ",") {
					break
				}
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			typ := p.cur().text
			if !p.accept(tokIdent, "") && !p.accept(tokKeyword, "") {
				return nil, p.errf("expected a type for column %s", col)
			}
			kind, err := value.ParseKind(typ)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			ct.Cols = append(ct.Cols, value.Column{Name: col, Kind: kind})
		}
		if p.accept(tokOp, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "FRAGMENT") {
		fc, err := p.parseFragClause()
		if err != nil {
			return nil, err
		}
		ct.Frag = fc
	}
	return ct, nil
}

func (p *parser) parseFragClause() (*FragClause, error) {
	if _, err := p.expect(tokKeyword, "BY"); err != nil {
		return nil, err
	}
	fc := &FragClause{N: 1}
	switch {
	case p.accept(tokKeyword, "HASH"):
		fc.Strategy = fragment.Hash
		col, err := p.parenIdent()
		if err != nil {
			return nil, err
		}
		fc.Column = col
	case p.accept(tokKeyword, "RANGE"):
		fc.Strategy = fragment.Range
		col, err := p.parenIdent()
		if err != nil {
			return nil, err
		}
		fc.Column = col
		if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			fc.Bounds = append(fc.Bounds, v)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
	case p.accept(tokKeyword, "ROUND"):
		if _, err := p.expect(tokKeyword, "ROBIN"); err != nil {
			return nil, err
		}
		fc.Strategy = fragment.RoundRobin
	default:
		return nil, p.errf("expected HASH, RANGE or ROUND ROBIN")
	}
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	nTok, err := p.expect(tokInt, "")
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(nTok.text)
	if err != nil || n < 1 {
		return nil, p.errf("bad fragment count %q", nTok.text)
	}
	fc.N = n
	if _, err := p.expect(tokKeyword, "FRAGMENTS"); err != nil {
		return nil, err
	}
	if fc.Strategy == fragment.Range && len(fc.Bounds) != n-1 {
		return nil, p.errf("RANGE with %d fragments needs %d bounds, got %d", n, n-1, len(fc.Bounds))
	}
	return fc, nil
}

func (p *parser) parseDrop() (Stmt, error) {
	p.next() // DROP
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name}, nil
}

// ---------- DML ----------

func (p *parser) parseInsert() (Stmt, error) {
	p.next() // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.accept(tokOp, "(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Cols = append(ins.Cols, col)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		var row []expr.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (Stmt, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	up := &Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, SetClause{Col: col, Expr: e})
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Where = e
	}
	return up, nil
}

func (p *parser) parseDelete() (Stmt, error) {
	p.next() // DELETE
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = e
	}
	return del, nil
}

func (p *parser) parseSelect() (*Select, error) {
	p.next() // SELECT
	sel := &Select{Limit: -1}
	sel.Distinct = p.accept(tokKeyword, "DISTINCT")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(tokOp, ",") {
			break
		}
	}

	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		fi, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, fi)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	for p.accept(tokKeyword, "INNER") || p.at(tokKeyword, "JOIN") {
		if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
			return nil, err
		}
		fi, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, JoinClause{Table: fi.Table, Alias: fi.Alias, On: on})
	}

	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.qualifiedIdent()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, col)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.qualifiedIdent()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: col}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		nTok, err := p.expect(tokInt, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(nTok.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad limit %q", nTok.text)
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokOp, "*") {
		return SelectItem{Star: true}, nil
	}
	// Aggregate?
	if p.cur().kind == tokIdent {
		if _, isAgg := aggNames[strings.ToUpper(p.cur().text)]; isAgg &&
			p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokOp && p.toks[p.pos+1].text == "(" {
			fn := strings.ToUpper(p.next().text)
			p.next() // (
			item := SelectItem{Agg: &AggItem{Func: fn}}
			if p.accept(tokOp, "*") {
				item.Agg.Star = true
			} else {
				arg, err := p.parseExpr()
				if err != nil {
					return SelectItem{}, err
				}
				item.Agg.Arg = arg
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return SelectItem{}, err
			}
			if as, err := p.parseAlias(); err != nil {
				return SelectItem{}, err
			} else {
				item.As = as
			}
			return item, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if as, err := p.parseAlias(); err != nil {
		return SelectItem{}, err
	} else {
		item.As = as
	}
	return item, nil
}

var aggNames = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (p *parser) parseAlias() (string, error) {
	if p.accept(tokKeyword, "AS") {
		return p.ident()
	}
	if p.cur().kind == tokIdent {
		return p.next().text, nil
	}
	return "", nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	table, err := p.ident()
	if err != nil {
		return FromItem{}, err
	}
	fi := FromItem{Table: table}
	if p.accept(tokKeyword, "AS") {
		alias, err := p.ident()
		if err != nil {
			return FromItem{}, err
		}
		fi.Alias = alias
	} else if p.cur().kind == tokIdent {
		fi.Alias = p.next().text
	}
	return fi, nil
}

// ---------- identifiers and literals ----------

func (p *parser) ident() (string, error) {
	if p.cur().kind == tokIdent {
		return p.next().text, nil
	}
	return "", p.errf("expected an identifier, found %q", p.cur().text)
}

// qualifiedIdent parses ident or ident.ident.
func (p *parser) qualifiedIdent() (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.accept(tokOp, ".") {
		suffix, err := p.ident()
		if err != nil {
			return "", err
		}
		return name + "." + suffix, nil
	}
	return name, nil
}

func (p *parser) parenIdent() (string, error) {
	if _, err := p.expect(tokOp, "("); err != nil {
		return "", err
	}
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return "", err
	}
	return name, nil
}

func (p *parser) literal() (value.Value, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return value.Null, p.errf("bad integer %q", t.text)
		}
		return value.NewInt(n), nil
	case t.kind == tokFloat:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return value.Null, p.errf("bad float %q", t.text)
		}
		return value.NewFloat(f), nil
	case t.kind == tokString:
		p.next()
		return value.NewString(t.text), nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.next()
		return value.NewBool(true), nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.next()
		return value.NewBool(false), nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.next()
		return value.Null, nil
	case t.kind == tokOp && t.text == "-":
		if err := p.enter(); err != nil {
			return value.Null, err
		}
		p.next()
		v, err := p.literal()
		p.leave()
		if err != nil {
			return value.Null, err
		}
		neg, err := value.Neg(v)
		if err != nil {
			return value.Null, p.errf("%v", err)
		}
		return neg, nil
	}
	return value.Null, p.errf("expected a literal, found %q", t.text)
}

// ---------- expressions (precedence climbing) ----------

// parseExpr parses OR-level expressions.
func (p *parser) parseExpr() (expr.Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = expr.NewOr(left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = expr.NewAnd(left, right)
	}
	return left, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	if p.accept(tokKeyword, "NOT") {
		sub, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return expr.NewNot(sub), nil
	}
	return p.parseComparison()
}

var cmpOps = map[string]expr.CmpOp{
	"=": expr.EQ, "<>": expr.NE, "<": expr.LT, "<=": expr.LE, ">": expr.GT, ">=": expr.GE,
}

func (p *parser) parseComparison() (expr.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL.
	if p.accept(tokKeyword, "IS") {
		negate := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return expr.NewIsNull(left, negate), nil
	}
	// [NOT] LIKE / IN.
	negate := false
	if p.at(tokKeyword, "NOT") &&
		p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokKeyword &&
		(p.toks[p.pos+1].text == "LIKE" || p.toks[p.pos+1].text == "IN") {
		p.next()
		negate = true
	}
	if p.accept(tokKeyword, "LIKE") {
		pat := p.cur()
		if pat.kind != tokString {
			return nil, p.errf("LIKE needs a string pattern")
		}
		p.next()
		return expr.NewLike(left, pat.text, negate), nil
	}
	if p.accept(tokKeyword, "IN") {
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		var list []value.Value
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			list = append(list, v)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return expr.NewIn(left, list, negate), nil
	}
	if negate {
		return nil, p.errf("dangling NOT")
	}
	if p.cur().kind == tokOp {
		if op, ok := cmpOps[p.cur().text]; ok {
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return expr.NewCmp(op, left, right), nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (expr.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokOp, "+"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = expr.NewArith(expr.Add, left, right)
		case p.accept(tokOp, "-"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = expr.NewArith(expr.Sub, left, right)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMultiplicative() (expr.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokOp, "*"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = expr.NewArith(expr.Mul, left, right)
		case p.accept(tokOp, "/"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = expr.NewArith(expr.Div, left, right)
		case p.accept(tokOp, "%"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = expr.NewArith(expr.Mod, left, right)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	if p.accept(tokOp, "-") {
		sub, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negated literals.
		if c, ok := sub.(*expr.Const); ok {
			v, err := value.Neg(c.V)
			if err == nil {
				return expr.NewConst(v), nil
			}
		}
		return expr.NewNeg(sub), nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt, t.kind == tokFloat, t.kind == tokString,
		t.kind == tokKeyword && (t.text == "TRUE" || t.text == "FALSE" || t.text == "NULL"):
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		return expr.NewConst(v), nil

	case t.kind == tokParam:
		return p.param()

	case t.kind == tokOp && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil

	case t.kind == tokIdent:
		name := p.next().text
		// Function call?
		if p.at(tokOp, "(") {
			p.next()
			var args []expr.Expr
			if !p.at(tokOp, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(tokOp, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return expr.NewCall(name, args...), nil
		}
		// Qualified column?
		if p.accept(tokOp, ".") {
			suffix, err := p.ident()
			if err != nil {
				return nil, err
			}
			return expr.NewCol(name + "." + suffix), nil
		}
		return expr.NewCol(name), nil
	}
	return nil, p.errf("expected an expression, found %q", t.text)
}
