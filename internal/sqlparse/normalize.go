package sqlparse

import (
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/value"
)

// Normalize builds a plan-cache key for one SQL statement by lifting
// literal constants out as positional parameters: `SELECT * FROM acct
// WHERE id = 7` and `... WHERE id = 42` normalize to the same key with
// literals [7] and [42]. The engine caches the optimized plan under the
// key and re-executes it with the literals bound — the XPRS-style
// compile-once discipline applied even to unprepared statements.
//
// Literals stay verbatim in the key (and out of the literal list) where
// the grammar consumes them structurally rather than as scalar
// expressions: LIKE patterns, LIMIT counts, and IN lists. Only SELECT,
// INSERT, UPDATE and DELETE are cacheable; anything else — and any
// statement carrying explicit '?'/'$n' placeholders — returns ok=false.
func Normalize(src string) (key string, literals []value.Value, ok bool) {
	toks, err := lex(src)
	if err != nil {
		return "", nil, false
	}
	if len(toks) == 0 || toks[0].kind != tokKeyword {
		return "", nil, false
	}
	switch toks[0].text {
	case "SELECT", "INSERT", "UPDATE", "DELETE":
	default:
		return "", nil, false
	}

	var b strings.Builder
	b.Grow(len(src))
	verbatim := func(t token) {
		switch t.kind {
		case tokString:
			b.WriteByte('\'')
			b.WriteString(strings.ReplaceAll(t.text, "'", "''"))
			b.WriteByte('\'')
		default:
			b.WriteString(t.text)
		}
	}

	// IN-list tracking: depth of the paren group whose literals stay in
	// the key (-1 = not inside one).
	depth, inListDepth := 0, -1
	// Select-list literals shape the output schema (`SELECT 5 AS five`,
	// `salary * 2`), so they stay in the key rather than becoming
	// untyped parameters: inSelectList is true from SELECT until the
	// top-level FROM (the grammar has no subqueries).
	inSelectList := toks[0].text == "SELECT"
	// prev is the last token written (zero kind at start).
	var prev token
	havePrev := false

	// unaryMinus reports whether a '-' at this position is a sign rather
	// than subtraction, mirroring the parser's operand positions.
	unaryMinus := func() bool {
		if !havePrev {
			return true
		}
		switch prev.kind {
		case tokOp:
			return prev.text != ")"
		case tokKeyword:
			return prev.text != "TRUE" && prev.text != "FALSE" && prev.text != "NULL"
		}
		return false
	}

	litValue := func(t token) (value.Value, bool) {
		switch t.kind {
		case tokInt:
			n, err := strconv.ParseInt(t.text, 10, 64)
			if err != nil {
				return value.Null, false
			}
			return value.NewInt(n), true
		case tokFloat:
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return value.Null, false
			}
			return value.NewFloat(f), true
		case tokString:
			return value.NewString(t.text), true
		}
		return value.Null, false
	}

	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.kind == tokEOF {
			break
		}
		if t.kind == tokParam {
			return "", nil, false // already parameterized: Prepare owns it
		}
		sep := func() {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
		}
		if inSelectList && t.kind == tokKeyword && t.text == "FROM" && depth == 0 {
			inSelectList = false
		}
		inVerbatimList := inListDepth >= 0 || inSelectList
		switch {
		case t.kind == tokOp && t.text == "(":
			depth++
			sep()
			verbatim(t)
		case t.kind == tokOp && t.text == ")":
			if inListDepth == depth {
				inListDepth = -1
			}
			depth--
			sep()
			verbatim(t)
		case t.kind == tokKeyword && t.text == "IN":
			// Literals inside IN (...) live in expr.In.List, not Const
			// nodes; keep them in the key.
			inListDepth = depth + 1
			sep()
			verbatim(t)
		case t.kind == tokKeyword && (t.text == "LIKE" || t.text == "LIMIT"):
			// The next literal is structural (pattern / count).
			sep()
			verbatim(t)
			if i+1 < len(toks) && litKind(toks[i+1].kind) {
				i++
				b.WriteByte(' ')
				verbatim(toks[i])
				prev = toks[i]
				continue
			}
		case litKind(t.kind) && !inVerbatimList:
			v, okv := litValue(t)
			if !okv {
				return "", nil, false
			}
			literals = append(literals, v)
			sep()
			b.WriteByte('?')
		case t.kind == tokOp && t.text == "-" && !inVerbatimList &&
			i+1 < len(toks) && litKind(toks[i+1].kind) && toks[i+1].kind != tokString && unaryMinus():
			// Fold the sign into the literal, as the parser does.
			v, okv := litValue(toks[i+1])
			if !okv {
				return "", nil, false
			}
			neg, err := value.Neg(v)
			if err != nil {
				return "", nil, false
			}
			literals = append(literals, neg)
			i++
			sep()
			b.WriteByte('?')
			prev = toks[i]
			continue
		default:
			sep()
			verbatim(t)
		}
		prev = t
		havePrev = true
	}
	return b.String(), literals, true
}

func litKind(k tokKind) bool { return k == tokInt || k == tokFloat || k == tokString }

// Parameterize rewrites st (a freshly parsed, unshared AST) so that
// every literal Const that Normalize would have lifted becomes a Param,
// and returns the lifted values in slot order. It mirrors Normalize's
// traversal; the caller must verify the returned values match the
// literals Normalize extracted (count and value) before trusting the
// rewritten statement — a mismatch means the statement uses literals in
// a position the normalizer keeps verbatim, and is not cacheable.
func Parameterize(st Stmt) (Stmt, []value.Value, bool) {
	p := &paramLifter{}
	switch t := st.(type) {
	case *Select:
		out := *t
		// Select-list expressions are NOT lifted: their literal kinds
		// flow into the output schema, and a parameter's kind is
		// unknown at plan time. Normalize keeps those literals in the
		// cache key for the same reason.
		out.Joins = append([]JoinClause(nil), t.Joins...)
		for i := range out.Joins {
			out.Joins[i].On = p.lift(out.Joins[i].On)
		}
		if t.Where != nil {
			out.Where = p.lift(t.Where)
		}
		if t.Having != nil {
			out.Having = p.lift(t.Having)
		}
		return &out, p.values, true
	case *Insert:
		out := *t
		out.Rows = make([][]expr.Expr, len(t.Rows))
		for i, row := range t.Rows {
			out.Rows[i] = make([]expr.Expr, len(row))
			for j, e := range row {
				out.Rows[i][j] = p.lift(e)
			}
		}
		return &out, p.values, true
	case *Update:
		out := *t
		out.Set = append([]SetClause(nil), t.Set...)
		for i := range out.Set {
			out.Set[i].Expr = p.lift(out.Set[i].Expr)
		}
		if t.Where != nil {
			out.Where = p.lift(t.Where)
		}
		return &out, p.values, true
	case *Delete:
		out := *t
		if t.Where != nil {
			out.Where = p.lift(t.Where)
		}
		return &out, p.values, true
	}
	return st, nil, false
}

// paramLifter rebuilds expression trees via expr.MapExpr, replacing
// liftable literals with Params in traversal (= source) order. IN-list
// values are untouched — they live in expr.In.List, not Const nodes,
// and Normalize keeps them in the key.
type paramLifter struct {
	values []value.Value
}

func (p *paramLifter) lift(e expr.Expr) expr.Expr {
	return expr.MapExpr(e, func(x expr.Expr) expr.Expr {
		c, ok := x.(*expr.Const)
		if !ok {
			return nil
		}
		switch c.V.Kind() {
		case value.KindInt, value.KindFloat, value.KindString:
			ord := len(p.values)
			p.values = append(p.values, c.V)
			return expr.NewParam(ord)
		}
		return c
	})
}
