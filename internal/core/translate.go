package core

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/sqlparse"
	"repro/internal/value"
)

// translateSelect turns a parsed SELECT into a logical plan over the
// catalog. The result is unoptimized; the knowledge-based optimizer
// rewrites it afterwards.
func (e *Engine) translateSelect(sel *sqlparse.Select) (plan.Node, error) {
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("core: SELECT without FROM")
	}

	// Build the base relations with alias-qualified schemas.
	type rel struct {
		node   plan.Node
		schema *value.Schema
	}
	var rels []rel
	addTable := func(tableName, alias string) error {
		t, err := e.lookupTable(tableName)
		if err != nil {
			return err
		}
		qual := alias
		if qual == "" {
			qual = t.def.Name
		}
		schema := t.def.Schema.Rename(qual)
		rels = append(rels, rel{
			node:   &plan.Scan{Table: t.def.Name, Out: schema},
			schema: schema,
		})
		return nil
	}
	for _, fi := range sel.From {
		if err := addTable(fi.Table, fi.Alias); err != nil {
			return nil, err
		}
	}

	// Explicit JOIN clauses chain onto the first relation group.
	type pendingJoin struct {
		on expr.Expr
	}
	var joins []pendingJoin
	for _, jc := range sel.Joins {
		if err := addTable(jc.Table, jc.Alias); err != nil {
			return nil, err
		}
		joins = append(joins, pendingJoin{on: jc.On})
	}

	// Fold everything into a left-deep join tree. WHERE conjuncts and ON
	// conditions are collected; equi-join conditions become join keys as
	// the tree is built, the rest is applied as a final Select.
	var conds []expr.Expr
	for _, j := range joins {
		conds = append(conds, expr.SplitConjuncts(j.on)...)
	}
	if sel.Where != nil {
		conds = append(conds, expr.SplitConjuncts(sel.Where)...)
	}

	cur := rels[0].node
	for i := 1; i < len(rels); i++ {
		right := rels[i]
		joined := cur.Schema().Concat(right.schema)
		// Find an equi-join condition usable for this join.
		var lkeys, rkeys []int
		var used []int
		for ci, c := range conds {
			cmp, ok := c.(*expr.Cmp)
			if !ok || cmp.Op != expr.EQ {
				continue
			}
			lcol, lok := cmp.L.(*expr.Col)
			rcol, rok := cmp.R.(*expr.Col)
			if !lok || !rok {
				continue
			}
			li := joined.Index(lcol.Name)
			ri := joined.Index(rcol.Name)
			if li < 0 || ri < 0 {
				continue
			}
			lw := cur.Schema().Len()
			// One side in cur, the other in right.
			switch {
			case li < lw && ri >= lw:
				lkeys = append(lkeys, li)
				rkeys = append(rkeys, ri-lw)
				used = append(used, ci)
			case ri < lw && li >= lw:
				lkeys = append(lkeys, ri)
				rkeys = append(rkeys, li-lw)
				used = append(used, ci)
			}
		}
		if len(lkeys) == 0 {
			return nil, fmt.Errorf("core: no equi-join condition between %s and %s (cross products are not supported)",
				cur.Schema(), right.schema)
		}
		// Remove the consumed conditions.
		kept := conds[:0:0]
		for ci, c := range conds {
			consumed := false
			for _, u := range used {
				if ci == u {
					consumed = true
					break
				}
			}
			if !consumed {
				kept = append(kept, c)
			}
		}
		conds = kept
		cur = &plan.Join{Left: cur, Right: right.node, LeftKeys: lkeys, RightKeys: rkeys, Out: joined}
	}

	// Remaining conditions become a Select over the join tree.
	if rest := expr.Conjoin(conds); rest != nil {
		if _, err := expr.Bind(rest, cur.Schema()); err != nil {
			return nil, err
		}
		cur = &plan.Select{Child: cur, Pred: rest}
	}

	// Aggregation?
	hasAgg := len(sel.GroupBy) > 0
	for _, item := range sel.Items {
		if item.Agg != nil {
			hasAgg = true
		}
	}
	if hasAgg {
		node, err := e.translateAggregate(sel, cur)
		if err != nil {
			return nil, err
		}
		cur = node
	} else {
		node, err := translateProjection(sel, cur)
		if err != nil {
			return nil, err
		}
		cur = node
	}

	if sel.Distinct {
		cur = &plan.Distinct{Child: cur}
	}
	if len(sel.OrderBy) > 0 {
		var cols []int
		var desc []bool
		for _, ob := range sel.OrderBy {
			ix := cur.Schema().Index(ob.Col)
			if ix < 0 {
				return nil, fmt.Errorf("core: ORDER BY column %q not in output %s", ob.Col, cur.Schema())
			}
			cols = append(cols, ix)
			desc = append(desc, ob.Desc)
		}
		cur = &plan.Sort{Child: cur, Cols: cols, Desc: desc}
	}
	if sel.Limit >= 0 {
		cur = &plan.Limit{Child: cur, N: sel.Limit}
	}
	return cur, nil
}

// translateProjection handles the non-aggregate select list.
func translateProjection(sel *sqlparse.Select, child plan.Node) (plan.Node, error) {
	// SELECT * alone: identity.
	if len(sel.Items) == 1 && sel.Items[0].Star {
		return child, nil
	}
	var exprs []expr.Expr
	var names []string
	var cols []value.Column
	for _, item := range sel.Items {
		if item.Star {
			for i := 0; i < child.Schema().Len(); i++ {
				c := child.Schema().Column(i)
				exprs = append(exprs, expr.NewColIdx(i, c.Kind))
				names = append(names, c.Name)
				cols = append(cols, c)
			}
			continue
		}
		k, err := expr.Bind(item.Expr, child.Schema())
		if err != nil {
			return nil, err
		}
		name := item.As
		if name == "" {
			name = item.Expr.String()
		}
		exprs = append(exprs, item.Expr)
		names = append(names, name)
		cols = append(cols, value.Column{Name: name, Kind: k})
	}
	return &plan.Project{Child: child, Exprs: exprs, Names: names, Out: value.NewSchema(cols...)}, nil
}

// translateAggregate builds the Aggregate node (plus HAVING filter and
// final projection ordering).
func (e *Engine) translateAggregate(sel *sqlparse.Select, child plan.Node) (plan.Node, error) {
	in := child.Schema()
	var groupBy []int
	for _, g := range sel.GroupBy {
		ix := in.Index(g)
		if ix < 0 {
			return nil, fmt.Errorf("core: GROUP BY column %q not found in %s", g, in)
		}
		groupBy = append(groupBy, ix)
	}

	// The aggregate's output: group columns then one column per agg item,
	// in select-list order. Non-agg select items must be group columns.
	var specs []algebra.AggSpec
	type outCol struct {
		fromGroup int // index into groupBy, or -1
		fromSpec  int // index into specs, or -1
		name      string
		kind      value.Kind
	}
	var outCols []outCol
	for _, item := range sel.Items {
		if item.Star {
			return nil, fmt.Errorf("core: SELECT * cannot be combined with aggregation")
		}
		if item.Agg != nil {
			fn, ok := algebra.ParseAggFunc(item.Agg.Func)
			if !ok {
				return nil, fmt.Errorf("core: unknown aggregate %s", item.Agg.Func)
			}
			col := -1
			kind := value.KindInt
			if !item.Agg.Star {
				c, ok := item.Agg.Arg.(*expr.Col)
				if !ok {
					return nil, fmt.Errorf("core: aggregate arguments must be plain columns, got %s", item.Agg.Arg)
				}
				col = in.Index(c.Name)
				if col < 0 {
					return nil, fmt.Errorf("core: aggregate column %q not found in %s", c.Name, in)
				}
				kind = in.Column(col).Kind
			} else if fn != algebra.Count {
				return nil, fmt.Errorf("core: %s(*) is not defined", item.Agg.Func)
			}
			name := item.As
			if name == "" {
				if item.Agg.Star {
					name = "COUNT(*)"
				} else {
					name = fmt.Sprintf("%s(%s)", item.Agg.Func, strings.ToLower(item.Agg.Arg.String()))
				}
			}
			specs = append(specs, algebra.AggSpec{Func: fn, Col: col, As: name})
			switch fn {
			case algebra.Count:
				kind = value.KindInt
			case algebra.Avg:
				kind = value.KindFloat
			}
			outCols = append(outCols, outCol{fromGroup: -1, fromSpec: len(specs) - 1, name: name, kind: kind})
			continue
		}
		// Plain item: must be a group-by column.
		c, ok := item.Expr.(*expr.Col)
		if !ok {
			return nil, fmt.Errorf("core: select item %s must be a grouping column or aggregate", item.Expr)
		}
		ix := in.Index(c.Name)
		gpos := -1
		for gi, g := range groupBy {
			if g == ix {
				gpos = gi
				break
			}
		}
		if ix < 0 || gpos < 0 {
			return nil, fmt.Errorf("core: column %q must appear in GROUP BY", c.Name)
		}
		name := item.As
		if name == "" {
			name = c.Name
		}
		outCols = append(outCols, outCol{fromGroup: gpos, fromSpec: -1, name: name, kind: in.Column(ix).Kind})
	}

	// The Aggregate node's raw output is groupBy columns then specs.
	aggCols := make([]value.Column, 0, len(groupBy)+len(specs))
	for _, g := range groupBy {
		aggCols = append(aggCols, in.Column(g))
	}
	for si, sp := range specs {
		kind := value.KindFloat
		switch sp.Func {
		case algebra.Count:
			kind = value.KindInt
		case algebra.Sum, algebra.Min, algebra.Max:
			if sp.Col >= 0 {
				kind = in.Column(sp.Col).Kind
			}
		}
		_ = si
		aggCols = append(aggCols, value.Column{Name: sp.As, Kind: kind})
	}
	agg := &plan.Aggregate{Child: child, GroupBy: groupBy, Specs: specs, Out: value.NewSchema(aggCols...)}

	var cur plan.Node = agg
	// HAVING filters the aggregate output.
	if sel.Having != nil {
		if _, err := expr.Bind(sel.Having, cur.Schema()); err != nil {
			return nil, err
		}
		cur = &plan.Select{Child: cur, Pred: sel.Having}
	}
	// Final projection reorders to the select-list order.
	var exprs []expr.Expr
	var names []string
	var finalCols []value.Column
	for _, oc := range outCols {
		var ix int
		if oc.fromGroup >= 0 {
			ix = oc.fromGroup
		} else {
			ix = len(groupBy) + oc.fromSpec
		}
		exprs = append(exprs, expr.NewColIdx(ix, oc.kind))
		names = append(names, oc.name)
		finalCols = append(finalCols, value.Column{Name: oc.name, Kind: oc.kind})
	}
	return &plan.Project{Child: cur, Exprs: exprs, Names: names, Out: value.NewSchema(finalCols...)}, nil
}
