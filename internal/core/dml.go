package core

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/fragment"
	"repro/internal/ofm"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
)

// writeView is the view a DML statement matches rows under. An explicit
// transaction under MVCC matches at its pinned snapshot: a matched row
// superseded by a later committer aborts the statement with a retryable
// write-write conflict (first-committer-wins). Autocommit DML and the
// 2PL baseline match the latest committed state — under the exclusive
// fragment lock no committed writer can have intervened, so there is
// nothing to conflict with.
func (e *Engine) writeView(tx *txn.Txn, autocommit bool) ofm.View {
	if e.mvcc && !autocommit {
		return ofm.View{TS: tx.Snapshot(), Tx: tx.ID()}
	}
	return ofm.View{TS: ofm.LatestTS, Tx: tx.ID()}
}

// execInsert routes literal rows to their fragments, locks them
// exclusively, buffers the inserts and commits via two-phase commit
// (unless the session holds an open transaction, which then owns them).
func (e *Engine) execInsert(s *Session, ins *sqlparse.Insert) (int, error) {
	if e.IsReadOnly() {
		return 0, e.readOnlyErr("INSERT")
	}
	t, err := e.lookupTable(ins.Table)
	if err != nil {
		return 0, err
	}
	schema := t.def.Schema

	// Resolve the optional column list.
	colMap := make([]int, 0, schema.Len())
	if ins.Cols == nil {
		for i := 0; i < schema.Len(); i++ {
			colMap = append(colMap, i)
		}
	} else {
		for _, name := range ins.Cols {
			ix := schema.Index(name)
			if ix < 0 {
				return 0, fmt.Errorf("core: column %q not in %s", name, ins.Table)
			}
			colMap = append(colMap, ix)
		}
	}

	// Evaluate literal rows.
	tuples := make([]value.Tuple, 0, len(ins.Rows))
	for _, row := range ins.Rows {
		if len(row) != len(colMap) {
			return 0, fmt.Errorf("core: INSERT row has %d values for %d columns", len(row), len(colMap))
		}
		tuple := make(value.Tuple, schema.Len()) // unset = NULL
		for i, ex := range row {
			v, err := ex.Eval(value.Tuple{})
			if err != nil {
				return 0, fmt.Errorf("core: INSERT value %d: %w", i, err)
			}
			tuple[colMap[i]] = v
		}
		if err := storage.Conform(schema, tuple); err != nil {
			return 0, err
		}
		tuples = append(tuples, tuple)
	}

	// Route to fragments (round-robin advances the scheme's atomic
	// cursor; no table lock needed).
	parts := make([][]value.Tuple, len(t.frags))
	for _, tp := range tuples {
		i := t.def.Scheme.FragmentOf(tp)
		parts[i] = append(parts[i], tp)
	}

	tx, autocommit, err := s.transaction()
	if err != nil {
		return 0, err
	}
	for i, f := range t.frags {
		if len(parts[i]) == 0 {
			continue
		}
		if err := tx.Lock(f.ofm.Name(), txn.Exclusive); err != nil {
			if autocommit {
				tx.Abort()
			}
			return 0, err
		}
		tx.Enlist(&ofmParticipant{eng: e, frag: f, coordPE: s.pe})
		if _, err := e.rt.Call(s.pe, f.proc, "insert",
			insertReq{tx: tx.ID(), tuples: parts[i]}, relBytes(parts[i])); err != nil {
			tx.Abort()
			return 0, err
		}
	}
	if autocommit {
		if err := tx.Commit(); err != nil {
			return 0, err
		}
	}
	return len(tuples), nil
}

// execDelete broadcasts the predicate to the (pruned) fragments.
func (e *Engine) execDelete(s *Session, del *sqlparse.Delete) (int, error) {
	if e.IsReadOnly() {
		return 0, e.readOnlyErr("DELETE")
	}
	t, err := e.lookupTable(del.Table)
	if err != nil {
		return 0, err
	}
	var pred expr.Expr
	if del.Where != nil {
		pred = del.Where
		if _, err := expr.Bind(expr.Clone(pred), t.def.Schema); err != nil {
			return 0, err
		}
	}
	frags := e.pruneFragments(t, pred)
	tx, autocommit, err := s.transaction()
	if err != nil {
		return 0, err
	}
	view := e.writeView(tx, autocommit)
	total := 0
	for _, fi := range frags {
		f := t.frags[fi]
		if err := tx.Lock(f.ofm.Name(), txn.Exclusive); err != nil {
			if autocommit {
				tx.Abort()
			}
			return 0, err
		}
		tx.Enlist(&ofmParticipant{eng: e, frag: f, coordPE: s.pe})
		res, err := e.rt.Call(s.pe, f.proc, "delete", deleteReq{tx: tx.ID(), pred: pred, view: view}, 128)
		if err != nil {
			tx.Abort()
			return 0, err
		}
		total += res.(int)
	}
	if autocommit {
		if err := tx.Commit(); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// execUpdate resolves SET clauses and broadcasts to fragments. Updates
// that change the fragmentation key would require tuple migration; they
// are rejected (as early distributed systems did).
func (e *Engine) execUpdate(s *Session, up *sqlparse.Update) (int, error) {
	if e.IsReadOnly() {
		return 0, e.readOnlyErr("UPDATE")
	}
	t, err := e.lookupTable(up.Table)
	if err != nil {
		return 0, err
	}
	schema := t.def.Schema
	set := map[int]expr.Expr{}
	for _, sc := range up.Set {
		ix := schema.Index(sc.Col)
		if ix < 0 {
			return 0, fmt.Errorf("core: column %q not in %s", sc.Col, up.Table)
		}
		if err := fragKeyGuard(t, ix); err != nil {
			return 0, err
		}
		if _, err := expr.Bind(expr.Clone(sc.Expr), schema); err != nil {
			return 0, err
		}
		set[ix] = sc.Expr
	}
	var pred expr.Expr
	if up.Where != nil {
		pred = up.Where
		if _, err := expr.Bind(expr.Clone(pred), schema); err != nil {
			return 0, err
		}
	}
	frags := e.pruneFragments(t, pred)
	tx, autocommit, err := s.transaction()
	if err != nil {
		return 0, err
	}
	view := e.writeView(tx, autocommit)
	total := 0
	for _, fi := range frags {
		f := t.frags[fi]
		if err := tx.Lock(f.ofm.Name(), txn.Exclusive); err != nil {
			if autocommit {
				tx.Abort()
			}
			return 0, err
		}
		tx.Enlist(&ofmParticipant{eng: e, frag: f, coordPE: s.pe})
		res, err := e.rt.Call(s.pe, f.proc, "update", updateReq{tx: tx.ID(), pred: pred, set: set, view: view}, 192)
		if err != nil {
			tx.Abort()
			return 0, err
		}
		total += res.(int)
	}
	if autocommit {
		if err := tx.Commit(); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// fragKeyGuard rejects updates to the fragmentation key.
func fragKeyGuard(t *table, col int) error {
	sc := t.def.Scheme
	switch sc.Strategy {
	case fragment.Hash, fragment.Range:
		if sc.Column == col {
			return fmt.Errorf("core: updating fragmentation key column %s is not supported (requires migration)",
				t.def.Schema.Column(col).Name)
		}
	}
	return nil
}

// pruneFragments narrows the target fragments of a predicate using the
// fragmentation scheme (an equality on the key hits exactly one hash or
// range fragment). Nil predicates touch everything.
func (e *Engine) pruneFragments(t *table, pred expr.Expr) []int {
	all := make([]int, len(t.frags))
	for i := range all {
		all[i] = i
	}
	if pred == nil {
		return all
	}
	sc := t.def.Scheme
	if sc.Strategy != fragment.Hash && sc.Strategy != fragment.Range {
		return all
	}
	for _, c := range expr.SplitConjuncts(pred) {
		cmp, ok := c.(*expr.Cmp)
		if !ok || cmp.Op != expr.EQ {
			continue
		}
		col, cok := cmp.L.(*expr.Col)
		cst, vok := cmp.R.(*expr.Const)
		if !cok || !vok {
			col, cok = cmp.R.(*expr.Col)
			cst, vok = cmp.L.(*expr.Const)
		}
		if !cok || !vok {
			continue
		}
		if t.def.Schema.Index(col.Name) != sc.Column {
			continue
		}
		if frags := sc.FragmentsForEq(cst.V); frags != nil {
			return frags
		}
	}
	return all
}
