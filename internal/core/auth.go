package core

// Multi-tenant authorization: sessions may be bound to a catalog user
// (the server does this after authenticating the Hello handshake);
// every statement execution then checks the user's per-table grants.
// Checks run per execution, NOT per plan — compiled plans are shared
// across sessions via the plan cache, and a revocation must bite on
// the very next statement even when the plan is cached.
//
// The administration statements (CREATE USER, DROP USER, GRANT,
// REVOKE, SHOW ADMISSION) are intercepted before the SQL parser, like
// SET STATEMENT_TIMEOUT and PROMOTE, and are gated to administrators.

import (
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"

	"repro/internal/admission"
	"repro/internal/catalog"
	"repro/internal/fault"
	"repro/internal/sqlparse"
	"repro/internal/value"
)

// fpAuthCheck fires inside the per-statement grant check of an
// authenticated session; an injected error rejects the statement with
// the non-retryable authorization error, so E17 can prove a mid-flight
// auth failure neither wedges the connection nor corrupts the ledger.
var fpAuthCheck = fault.Register("auth.check")

// ErrAuth tags authentication and authorization failures. Never
// retryable: the server maps it to wire.ErrCodeAuth.
var ErrAuth = errors.New("core: not authorized")

// ErrMemBudget tags a statement aborted for exceeding its tenant's
// working-memory budget (the spill-to-abort discipline: the engine has
// no disk to spill sorts and join builds to, so a breach aborts the
// statement instead). Not retryable — the same statement would breach
// again.
var ErrMemBudget = errors.New("core: working-memory budget exceeded")

// SetUser binds the session to an authenticated tenant (nil reverts to
// the unrestricted local/administrator mode) and adopts the user's
// working-memory budget.
func (s *Session) SetUser(u *catalog.User) {
	s.user = u
	if u != nil {
		s.memBudget = u.MemBudget
	} else {
		s.memBudget = 0
	}
}

// User returns the tenant the session is bound to (nil for local
// sessions).
func (s *Session) User() *catalog.User { return s.user }

// SetMemBudget overrides the session's per-statement working-memory
// budget in bytes (0 = unlimited).
func (s *Session) SetMemBudget(n int64) { s.memBudget = n }

// isAdmin reports whether the session may run administration
// statements: local (unbound) sessions and admin users.
func (s *Session) isAdmin() bool { return s.user == nil || s.user.Admin }

// tableAccess is one table a statement touches and the privilege it
// needs.
type tableAccess struct {
	table string
	priv  catalog.Priv
}

// stmtAccess lists the grants a statement requires.
func stmtAccess(st sqlparse.Stmt) []tableAccess {
	switch t := st.(type) {
	case *sqlparse.Select:
		out := make([]tableAccess, 0, len(t.From)+len(t.Joins))
		for _, f := range t.From {
			out = append(out, tableAccess{f.Table, catalog.PrivSelect})
		}
		for _, j := range t.Joins {
			out = append(out, tableAccess{j.Table, catalog.PrivSelect})
		}
		return out
	case *sqlparse.Insert:
		return []tableAccess{{t.Table, catalog.PrivInsert}}
	case *sqlparse.Update:
		return []tableAccess{{t.Table, catalog.PrivUpdate}}
	case *sqlparse.Delete:
		return []tableAccess{{t.Table, catalog.PrivDelete}}
	case *sqlparse.DropTable:
		return []tableAccess{{t.Name, catalog.PrivAll}}
	case *sqlparse.Explain:
		return stmtAccess(t.Stmt)
	}
	return nil
}

// checkAccess enforces the session user's grants over the listed
// tables. Unbound sessions pass unconditionally without evaluating the
// fault point.
func (s *Session) checkAccess(access []tableAccess) error {
	if s.user == nil {
		return nil
	}
	if out := fpAuthCheck.Eval(); out != nil && out.Err != nil {
		return fmt.Errorf("%w: %v", ErrAuth, out.Err)
	}
	for _, a := range access {
		if !s.user.Can(a.table, a.priv) {
			return fmt.Errorf("%w: tenant %q lacks %s on table %q",
				ErrAuth, s.user.Name, a.priv, a.table)
		}
	}
	return nil
}

// checkStmt is checkAccess for an AST about to execute.
func (s *Session) checkStmt(st sqlparse.Stmt) error {
	if s.user == nil {
		return nil
	}
	return s.checkAccess(stmtAccess(st))
}

// ---------- administration statements ----------

var (
	createUserRe = regexp.MustCompile(`(?i)^\s*CREATE\s+USER\s+([A-Za-z_][A-Za-z0-9_]*)\s+PASSWORD\s+'([^']*)'\s*((?:\s*(?:PRIORITY\s+[A-Za-z]+|MAX_CONCURRENT\s+\d+|MEM_BUDGET\s+\d+|ADMIN))*)\s*;?\s*$`)
	userOptRe    = regexp.MustCompile(`(?i)(PRIORITY\s+([A-Za-z]+)|MAX_CONCURRENT\s+(\d+)|MEM_BUDGET\s+(\d+)|ADMIN)`)
	dropUserRe   = regexp.MustCompile(`(?i)^\s*DROP\s+USER\s+([A-Za-z_][A-Za-z0-9_]*)\s*;?\s*$`)
	grantRe      = regexp.MustCompile(`(?i)^\s*GRANT\s+([A-Za-z,\s]+?)\s+ON\s+([A-Za-z_][A-Za-z0-9_]*)\s+TO\s+([A-Za-z_][A-Za-z0-9_]*)\s*;?\s*$`)
	revokeRe     = regexp.MustCompile(`(?i)^\s*REVOKE\s+([A-Za-z,\s]+?)\s+ON\s+([A-Za-z_][A-Za-z0-9_]*)\s+FROM\s+([A-Za-z_][A-Za-z0-9_]*)\s*;?\s*$`)
	showAdmRe    = regexp.MustCompile(`(?i)^\s*SHOW\s+ADMISSION\s*;?\s*$`)
	showUsersRe  = regexp.MustCompile(`(?i)^\s*SHOW\s+USERS\s*;?\s*$`)
)

// adminCandidate cheaply rules out the overwhelmingly common case (a
// plain SQL statement) before any admin regex runs on the hot path.
func adminCandidate(sql string) bool {
	i := 0
	for i < len(sql) && (sql[i] == ' ' || sql[i] == '\t' || sql[i] == '\n' || sql[i] == '\r') {
		i++
	}
	if i >= len(sql) {
		return false
	}
	switch sql[i] | 0x20 { // ASCII lowercase
	case 'g', 'r', 's': // GRANT, REVOKE, SHOW (REVOKE/ROLLBACK and SELECT/SET miss the regexes)
		return true
	case 'c', 'd': // CREATE USER / DROP USER, not CREATE TABLE / DROP TABLE
		rest := sql[i:]
		if sp := strings.IndexAny(rest, " \t\n\r"); sp > 0 {
			rest = strings.TrimLeft(rest[sp:], " \t\n\r")
			return len(rest) >= 4 && strings.EqualFold(rest[:4], "user")
		}
	}
	return false
}

// execAdmin intercepts the user/grant administration statements;
// handled reports whether sql was one.
func (s *Session) execAdmin(sql string) (*Result, bool, error) {
	if !adminCandidate(sql) {
		return nil, false, nil
	}
	switch {
	case showAdmRe.MatchString(sql):
		res, err := s.gateAdmin("SHOW ADMISSION", s.showAdmission)
		return res, true, err

	case showUsersRe.MatchString(sql):
		res, err := s.gateAdmin("SHOW USERS", s.showUsers)
		return res, true, err

	case createUserRe.MatchString(sql):
		m := createUserRe.FindStringSubmatch(sql)
		res, err := s.gateAdmin("CREATE USER", func() (*Result, error) {
			opts, err := parseUserOpts(m[3])
			if err != nil {
				return nil, err
			}
			if err := s.e.cat.CreateUser(m[1], m[2], opts); err != nil {
				return nil, err
			}
			return &Result{Msg: fmt.Sprintf("user %s created", strings.ToLower(m[1]))}, nil
		})
		return res, true, err

	case dropUserRe.MatchString(sql):
		m := dropUserRe.FindStringSubmatch(sql)
		res, err := s.gateAdmin("DROP USER", func() (*Result, error) {
			if err := s.e.cat.DropUser(m[1]); err != nil {
				return nil, err
			}
			return &Result{Msg: fmt.Sprintf("user %s dropped", strings.ToLower(m[1]))}, nil
		})
		return res, true, err

	case grantRe.MatchString(sql):
		m := grantRe.FindStringSubmatch(sql)
		res, err := s.gateAdmin("GRANT", func() (*Result, error) {
			priv, err := parsePrivList(m[1])
			if err != nil {
				return nil, err
			}
			if err := s.e.cat.Grant(m[3], m[2], priv); err != nil {
				return nil, err
			}
			return &Result{Msg: fmt.Sprintf("granted %s on %s to %s", priv, strings.ToLower(m[2]), strings.ToLower(m[3]))}, nil
		})
		return res, true, err

	case revokeRe.MatchString(sql):
		m := revokeRe.FindStringSubmatch(sql)
		res, err := s.gateAdmin("REVOKE", func() (*Result, error) {
			priv, err := parsePrivList(m[1])
			if err != nil {
				return nil, err
			}
			if err := s.e.cat.Revoke(m[3], m[2], priv); err != nil {
				return nil, err
			}
			return &Result{Msg: fmt.Sprintf("revoked %s on %s from %s", priv, strings.ToLower(m[2]), strings.ToLower(m[3]))}, nil
		})
		return res, true, err
	}
	return nil, false, nil
}

// gateAdmin runs fn only for administrator sessions.
func (s *Session) gateAdmin(what string, fn func() (*Result, error)) (*Result, error) {
	if !s.isAdmin() {
		return nil, fmt.Errorf("%w: %s requires an administrator", ErrAuth, what)
	}
	return fn()
}

// parseUserOpts reads the optional CREATE USER attribute list.
func parseUserOpts(opts string) (catalog.UserOpts, error) {
	var out catalog.UserOpts
	for _, m := range userOptRe.FindAllStringSubmatch(opts, -1) {
		switch {
		case m[2] != "": // PRIORITY
			out.Priority = strings.ToLower(m[2])
		case m[3] != "": // MAX_CONCURRENT
			n, err := strconv.Atoi(m[3])
			if err != nil {
				return out, fmt.Errorf("core: MAX_CONCURRENT %q: %w", m[3], err)
			}
			out.MaxConcurrent = n
		case m[4] != "": // MEM_BUDGET
			n, err := strconv.ParseInt(m[4], 10, 64)
			if err != nil {
				return out, fmt.Errorf("core: MEM_BUDGET %q: %w", m[4], err)
			}
			out.MemBudget = n
		default: // ADMIN
			out.Admin = true
		}
	}
	return out, nil
}

// parsePrivList reads a GRANT/REVOKE privilege list: ALL or a
// comma-separated subset of SELECT, INSERT, UPDATE, DELETE.
func parsePrivList(list string) (catalog.Priv, error) {
	var priv catalog.Priv
	for _, p := range strings.Split(list, ",") {
		switch strings.ToUpper(strings.TrimSpace(p)) {
		case "ALL":
			priv |= catalog.PrivAll
		case "SELECT":
			priv |= catalog.PrivSelect
		case "INSERT":
			priv |= catalog.PrivInsert
		case "UPDATE":
			priv |= catalog.PrivUpdate
		case "DELETE":
			priv |= catalog.PrivDelete
		case "":
		default:
			return 0, fmt.Errorf("core: unknown privilege %q", strings.TrimSpace(p))
		}
	}
	if priv == 0 {
		return 0, fmt.Errorf("core: empty privilege list")
	}
	return priv, nil
}

// SetAdmission hands the engine the server's admission controller so
// SHOW ADMISSION can report it. Nil detaches.
func (e *Engine) SetAdmission(c *admission.Controller) {
	e.mu.Lock()
	e.adm = c
	e.mu.Unlock()
}

// Admission returns the attached admission controller (nil when
// admission control is off).
func (e *Engine) Admission() *admission.Controller {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.adm
}

// showAdmission renders the admission controller's counters: one row
// per tenant plus a (global) summary row.
func (s *Session) showAdmission() (*Result, error) {
	ctl := s.e.Admission()
	rel := value.NewRelation(value.MustSchema(
		"tenant", "VARCHAR", "in_flight", "INTEGER", "queued", "INTEGER",
		"admitted", "INTEGER", "shed", "INTEGER", "avg_wait_us", "INTEGER"))
	if ctl == nil {
		return &Result{Rel: rel, Msg: "admission control off"}, nil
	}
	st := ctl.Stats()
	var admitted int64
	for _, t := range st.Tenants {
		admitted += t.Admitted
		rel.Append(value.NewTuple(
			value.NewString(t.Tenant), value.NewInt(int64(t.InFlight)), value.NewInt(int64(t.Queued)),
			value.NewInt(t.Admitted), value.NewInt(t.Shed), value.NewInt(t.AvgWait.Microseconds())))
	}
	rel.Append(value.NewTuple(
		value.NewString("(global)"), value.NewInt(int64(st.InFlight)), value.NewInt(int64(st.Queued)),
		value.NewInt(admitted), value.NewInt(st.Shed), value.NewInt(0)))
	return &Result{Rel: rel,
		Msg: fmt.Sprintf("max_in_flight=%d queue_depth=%d", st.MaxInFlight, st.QueueDepth)}, nil
}

// showUsers renders the user table (names and attributes; never
// secrets).
func (s *Session) showUsers() (*Result, error) {
	rel := value.NewRelation(value.MustSchema(
		"user", "VARCHAR", "priority", "VARCHAR", "max_concurrent", "INTEGER",
		"mem_budget", "INTEGER", "admin", "INTEGER", "grants", "VARCHAR"))
	for _, name := range s.e.cat.Users() {
		u, err := s.e.cat.GetUser(name)
		if err != nil {
			continue // dropped concurrently
		}
		admin := int64(0)
		if u.Admin {
			admin = 1
		}
		rel.Append(value.NewTuple(
			value.NewString(u.Name), value.NewString(u.Priority),
			value.NewInt(int64(u.MaxConcurrent)), value.NewInt(u.MemBudget),
			value.NewInt(admin), value.NewString(strings.Join(u.Grants(), "; "))))
	}
	return &Result{Rel: rel}, nil
}

// ---------- working-memory accounting ----------

// memAcct tracks one statement's materialized working memory against
// the session's budget. Sticky: once breached, every later charge
// fails too, so partitioned paths that cannot return an error mid-
// gather still abort at the next checkpoint.
type memAcct struct {
	limit int64
	used  int64
	mu    sync.Mutex
	err   error
}

func (m *memAcct) charge(n int64) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	m.used += n
	if m.used > m.limit {
		m.err = fmt.Errorf("%w: statement materialized %d bytes (budget %d)", ErrMemBudget, m.used, m.limit)
		return m.err
	}
	return nil
}

func (m *memAcct) breach() error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// chargeRel charges one materialized relation against the statement's
// budget; a no-op (not even a Size() walk) when no budget applies.
func (ctx *execCtx) chargeRel(rel *value.Relation) error {
	if ctx.mem == nil || rel == nil {
		return nil
	}
	return ctx.mem.charge(int64(rel.Size()))
}
