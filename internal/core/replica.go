package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/fragment"
	"repro/internal/machine"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wal"
)

// Replica role: a read-only engine that mirrors a primary by appending
// the primary's shipped WAL bytes to identically named local logs and
// applying them through each fragment's serving process, so MVCC
// snapshot reads serve at the replication watermark while writes are
// refused with a redirect. Promotion fences the old primary behind an
// epoch bump and resolves in-flight shipped transactions atomically
// across fragments.

// ErrReadOnly rejects writes on a replica. The server maps it to the
// wire redirect error code so clients retry against the primary.
var ErrReadOnly = errors.New("core: read-only replica")

// replWatermarkSeg is the stable-storage segment persisting the last
// consistent replication status watermark (see SetReplWatermark).
const replWatermarkSeg = "repl-watermark"

// SetReadOnly flips the engine's role: a read-only engine refuses DML
// and DDL arriving through sessions (replication apply bypasses the
// gate — it goes straight to the fragments).
func (e *Engine) SetReadOnly(ro bool) { e.readOnly.Store(ro) }

// IsReadOnly reports whether the engine is serving as a read replica.
func (e *Engine) IsReadOnly() bool { return e.readOnly.Load() }

// Epoch returns the replication epoch this engine believes in. Epochs
// fence failovers: every shipped frame carries the primary's epoch, a
// replica refuses frames below its own, and promotion bumps it so a
// partitioned stale primary can never feed a promoted replica.
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// SetEpoch adopts a replication epoch (learned from a subscribe
// handshake or a promotion).
func (e *Engine) SetEpoch(ep uint64) { e.epoch.Store(ep) }

// SetPromoteHook installs the PROMOTE statement's implementation — the
// replication runtime wires it to stop the stream, fence the epoch and
// reopen the engine for writes. Nil removes it.
func (e *Engine) SetPromoteHook(fn func() error) {
	if fn == nil {
		e.promoteHook.Store(nil)
		return
	}
	e.promoteHook.Store(&fn)
}

// Promote runs the installed promotion hook — the engine side of the
// admin PROMOTE statement.
func (e *Engine) Promote() error {
	if fn := e.promoteHook.Load(); fn != nil {
		return (*fn)()
	}
	if !e.IsReadOnly() {
		return fmt.Errorf("core: already primary (epoch %d)", e.Epoch())
	}
	return fmt.Errorf("core: engine has no promotion hook installed")
}

// readOnlyErr builds the statement-level rejection for a write reaching
// a replica.
func (e *Engine) readOnlyErr(what string) error {
	return fmt.Errorf("%w: %s must go to the primary", ErrReadOnly, what)
}

// ---------- catalog shipping ----------

// TableDef is the shippable description of one table — everything a
// replica needs to rebuild an identical fragment layout. The fragment
// scheme travels by value: schemes hold routing state that must be
// rebuilt fresh, never aliased across engines.
type TableDef struct {
	Name       string
	Schema     *value.Schema
	Strategy   fragment.Strategy
	Column     int
	N          int
	Bounds     []value.Value
	PrimaryKey []int
}

// TableDefs snapshots every live table's shippable definition.
func (e *Engine) TableDefs() []TableDef {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]TableDef, 0, len(e.tables))
	for _, t := range e.tables {
		sc := t.def.Scheme
		out = append(out, TableDef{
			Name:       t.def.Name,
			Schema:     t.def.Schema,
			Strategy:   sc.Strategy,
			Column:     sc.Column,
			N:          sc.N,
			Bounds:     append([]value.Value(nil), sc.Bounds...),
			PrimaryKey: append([]int(nil), t.def.PrimaryKey...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// EnsureTable creates a table from a shipped definition if it does not
// exist yet. Existing tables are left alone: fragment layout is assumed
// to match (it was built from the same definition).
func (e *Engine) EnsureTable(def TableDef) error {
	e.mu.RLock()
	_, ok := e.tables[canonical(def.Name)]
	e.mu.RUnlock()
	if ok {
		return nil
	}
	scheme := &fragment.Scheme{
		Strategy: def.Strategy,
		Column:   def.Column,
		N:        def.N,
		Bounds:   append([]value.Value(nil), def.Bounds...),
	}
	return e.CreateTable(def.Name, def.Schema, scheme, def.PrimaryKey)
}

// ---------- log addressing ----------

// LogPosition names one fragment log plus a durable byte position in
// it, qualified by the checkpoint generation the offset belongs to.
type LogPosition struct {
	Log string
	Gen uint64
	Off int64
}

// ReplPositions reports every fragment log's durable replication
// position — on a replica, where shipped bytes should resume.
func (e *Engine) ReplPositions() []LogPosition {
	e.mu.RLock()
	tables := make([]*table, 0, len(e.tables))
	for _, t := range e.tables {
		tables = append(tables, t)
	}
	e.mu.RUnlock()
	var out []LogPosition
	for _, t := range tables {
		for i := range t.frags {
			log := e.fragLog(t, i)
			if log == nil {
				continue
			}
			out = append(out, LogPosition{
				Log: log.Name(),
				Gen: log.Generation(),
				Off: log.ValidSize(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Log < out[j].Log })
	return out
}

// ShipPositions reports every fragment log's current size and
// generation from in-memory counters — the primary's per-batch probe.
// Unlike ReplPositions it never scans the disk, so an idle shipping
// poll costs nothing.
func (e *Engine) ShipPositions() []LogPosition {
	e.mu.RLock()
	tables := make([]*table, 0, len(e.tables))
	for _, t := range e.tables {
		tables = append(tables, t)
	}
	e.mu.RUnlock()
	var out []LogPosition
	for _, t := range tables {
		for i := range t.frags {
			log := e.fragLog(t, i)
			if log == nil {
				continue
			}
			size, gen := log.ShipSize()
			out = append(out, LogPosition{Log: log.Name(), Gen: gen, Off: size})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Log < out[j].Log })
	return out
}

// fragByLog resolves a fragment log name ("wal-<table>#<i>") to its
// table and fragment index.
func (e *Engine) fragByLog(logName string) (*table, int, error) {
	name := strings.TrimPrefix(logName, "wal-")
	hash := strings.LastIndex(name, "#")
	if !strings.HasPrefix(logName, "wal-") || hash < 0 {
		return nil, 0, fmt.Errorf("core: %q is not a fragment log name", logName)
	}
	var idx int
	if _, err := fmt.Sscanf(name[hash+1:], "%d", &idx); err != nil {
		return nil, 0, fmt.Errorf("core: bad fragment index in %q", logName)
	}
	t, err := e.lookupTable(name[:hash])
	if err != nil {
		return nil, 0, err
	}
	if idx < 0 || idx >= len(t.frags) {
		return nil, 0, fmt.Errorf("core: fragment %d out of range for %q", idx, name[:hash])
	}
	return t, idx, nil
}

// ---------- primary side: shipping ----------

// ShipLog reads the raw bytes of one fragment log from off to its
// current end, with the log's total size and checkpoint generation.
func (e *Engine) ShipLog(logName string, off int64) (data []byte, size int64, gen uint64, err error) {
	t, i, err := e.fragByLog(logName)
	if err != nil {
		return nil, 0, 0, err
	}
	log := e.fragLog(t, i)
	if log == nil {
		return nil, 0, 0, fmt.Errorf("core: no log for %q", logName)
	}
	data, size, gen = log.ReadFrom(off)
	return data, size, gen, nil
}

// FragSyncImage captures one fragment's full-resync image: raw
// checkpoint segment, raw log segment, and their generation.
func (e *Engine) FragSyncImage(logName string) (ckpt, logBytes []byte, gen uint64, err error) {
	t, i, err := e.fragByLog(logName)
	if err != nil {
		return nil, nil, 0, err
	}
	log := e.fragLog(t, i)
	if log == nil {
		return nil, nil, 0, fmt.Errorf("core: no log for %q", logName)
	}
	ckpt, logBytes, gen = log.SyncImage()
	return ckpt, logBytes, gen, nil
}

// ---------- replica side: applying ----------

// ApplyShipped durably appends one shipped frame's bytes to the local
// fragment log and applies the decoded records through the fragment's
// serving process. Frames the replica already holds (a resubscribe
// overlap) are skipped; a gap refuses the frame — the stream must
// resubscribe from the durable position.
func (e *Engine) ApplyShipped(logName string, data []byte, off int64) error {
	t, i, err := e.fragByLog(logName)
	if err != nil {
		return err
	}
	log := e.fragLog(t, i)
	if log == nil {
		return fmt.Errorf("core: no log for %q", logName)
	}
	size := log.Bytes()
	if off+int64(len(data)) <= size {
		return nil // already have every byte of this frame
	}
	if off < size {
		data = data[size-off:] // overlap: keep only the new suffix
		off = size
	}
	recs, valid := wal.DecodeRecords(data)
	if valid == 0 {
		return nil
	}
	// Only the decodable prefix lands: a torn tail (the primary died
	// mid-append) is re-shipped whole after the primary recovers.
	if err := log.AppendRaw(data[:valid], off); err != nil {
		return err
	}
	f := t.frags[i]
	_, err = e.rt.Call(e.coordinatorPE(), f.proc, "apply",
		applyReq{recs: recs, limit: e.ReplWatermark()}, int(valid))
	return err
}

// SyncFragment installs a shipped full-resync image, replacing the
// fragment's durable and volatile state wholesale. Returns the
// fragment's new durable replication offset.
func (e *Engine) SyncFragment(logName string, ckpt, logBytes []byte, gen uint64) (int64, error) {
	t, i, err := e.fragByLog(logName)
	if err != nil {
		return 0, err
	}
	f := t.frags[i]
	res, err := e.rt.Call(e.coordinatorPE(), f.proc, "sync",
		syncReq{ckpt: ckpt, logBytes: logBytes, gen: gen, limit: e.ReplWatermark()},
		len(ckpt)+len(logBytes))
	if err != nil {
		return 0, err
	}
	return res.(int64), nil
}

// replWatermarkPersistEvery bounds how far the in-memory replication
// watermark may run ahead of its durable copy. Persisting every status
// batch would cost a disk write per batch; a stale durable watermark is
// merely conservative — crash replay defers commits above it, and the
// resumed stream (or promotion, which reads the in-memory state of a
// live replica) settles them.
const replWatermarkPersistEvery = 16

// AdvanceReplica processes one replication status: every fragment
// applies its deferred commits up to w (the batch that carried this
// status is guaranteed, by the primary's watermark ordering, to have
// shipped every commit marker at or below w on every log), the
// watermark persists (lazily, every replWatermarkPersistEvery steps),
// and snapshot reads advance to it.
func (e *Engine) AdvanceReplica(w uint64) error {
	if w <= e.ReplWatermark() {
		return nil
	}
	e.mu.RLock()
	tables := make([]*table, 0, len(e.tables))
	for _, t := range e.tables {
		tables = append(tables, t)
	}
	e.mu.RUnlock()
	for _, t := range tables {
		for _, f := range t.frags {
			// Only fragments with parked commits need the call; for the
			// rest AdvanceApplied would be a no-op, and a message round
			// trip per fragment per status frame is the dominant cost of
			// an otherwise idle replica under write load.
			if f.ofm.DeferredCount() == 0 {
				continue
			}
			if _, err := e.rt.Call(e.coordinatorPE(), f.proc, "advance", advanceReq{limit: w}, 16); err != nil {
				return err
			}
		}
	}
	e.replW.Store(w)
	if w >= e.replWDur.Load()+replWatermarkPersistEvery {
		if err := e.persistReplWatermark(w); err != nil {
			return err
		}
	}
	e.txns.AdvanceTo(w)
	return nil
}

// ReplWatermark returns the last consistent replication status
// watermark — the timestamp the replica's snapshot reads serve at.
func (e *Engine) ReplWatermark() uint64 { return e.replW.Load() }

// persistReplWatermark durably records w so crash recovery replays to
// a consistent cut no newer than the logs it will find.
func (e *Engine) persistReplWatermark(w uint64) error {
	e.replW.Store(w)
	store := e.firstStore()
	if store == nil {
		return nil
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], w)
	if err := store.Replace(replWatermarkSeg, buf[:]); err != nil {
		return err
	}
	e.replWDur.Store(w)
	return nil
}

// loadReplWatermark reads the durable status watermark (0 if never
// persisted).
func (e *Engine) loadReplWatermark() uint64 {
	store := e.firstStore()
	if store == nil {
		return 0
	}
	b := store.ReadAll(replWatermarkSeg)
	if len(b) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// firstStore returns the first disk PE's stable store (nil on diskless
// test machines).
func (e *Engine) firstStore() *machine.StableStore {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, pe := range e.m.DiskPEs() {
		return e.stores[pe]
	}
	return nil
}

// RecoverReplica rebuilds every fragment from its own durable state
// after a replica crash: volatile stores replay from checkpoint plus
// log up to the durable status watermark, with prepared-but-undecided
// write sets left buffered for the stream to finish. The MVCC clock
// advances to the watermark so reads resume at the same consistent
// cut. Returns the per-log durable positions to resubscribe from.
func (e *Engine) RecoverReplica() ([]LogPosition, error) {
	w := e.loadReplWatermark()
	e.replW.Store(w)
	e.replWDur.Store(w)
	e.mu.RLock()
	tables := make([]*table, 0, len(e.tables))
	for _, t := range e.tables {
		tables = append(tables, t)
	}
	e.mu.RUnlock()
	for _, t := range tables {
		for _, f := range t.frags {
			if _, err := e.rt.Call(e.coordinatorPE(), f.proc, "replay", replayReq{limit: w}, 16); err != nil {
				return nil, err
			}
		}
	}
	e.txns.AdvanceTo(w)
	return e.ReplPositions(), nil
}

// PromoteApply resolves every in-flight shipped transaction at
// promotion, atomically across fragments: a transaction whose commit
// marker reached at least one fragment log rolls forward everywhere at
// that timestamp (the marker proves the old primary committed it); one
// whose marker reached no fragment is presumed aborted everywhere (it
// was never acknowledged — the primary's commit gate waits for
// shipping). The commit clock then advances past everything applied,
// so the promoted primary's first commit draws a fresh timestamp.
func (e *Engine) PromoteApply() (committed, aborted int, err error) {
	e.mu.RLock()
	tables := make([]*table, 0, len(e.tables))
	for _, t := range e.tables {
		tables = append(tables, t)
	}
	e.mu.RUnlock()

	type fragHandle struct {
		t *table
		i int
	}
	var frags []fragHandle
	decide := map[txn.ID]uint64{} // tx -> marker ts (0 = none seen anywhere)
	perFrag := map[fragHandle]map[txn.ID]uint64{}
	for _, t := range tables {
		for i, f := range t.frags {
			h := fragHandle{t, i}
			frags = append(frags, h)
			res, err := e.rt.Call(e.coordinatorPE(), f.proc, "pending", pendingReq{}, 16)
			if err != nil {
				return 0, 0, err
			}
			pend := res.(map[txn.ID]uint64)
			perFrag[h] = pend
			for tx, ts := range pend {
				if ts > decide[tx] {
					decide[tx] = ts
				}
			}
		}
	}

	var maxTS uint64
	for _, h := range frags {
		f := h.t.frags[h.i]
		for tx := range perFrag[h] {
			ts := decide[tx]
			if ts == 0 {
				if _, err := e.rt.Call(e.coordinatorPE(), f.proc, "abort-apply", abortApplyReq{tx: tx}, 16); err != nil {
					return committed, aborted, err
				}
				continue
			}
			if _, err := e.rt.Call(e.coordinatorPE(), f.proc, "resolve", resolveReq{tx: tx, ts: ts}, 16); err != nil {
				return committed, aborted, err
			}
			if ts > maxTS {
				maxTS = ts
			}
		}
		if ts := f.ofm.AppliedTS(); ts > maxTS {
			maxTS = ts
		}
	}
	for tx, ts := range decide {
		if ts == 0 {
			aborted++
		} else {
			committed++
			_ = tx
		}
	}
	if w := e.ReplWatermark(); w > maxTS {
		maxTS = w
	}
	if maxTS > 0 {
		if err := e.persistReplWatermark(maxTS); err != nil {
			return committed, aborted, err
		}
		e.txns.AdvanceTo(maxTS)
	}
	return committed, aborted, nil
}
