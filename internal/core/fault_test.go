package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/txn"
)

// faultCleanup makes sure no armed point or crash poison leaks into
// other tests in the package.
func faultCleanup(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		fault.DisarmAll()
		fault.ClearCrash()
	})
}

// TestInDoubtResolvedByDecisionLog exercises the full crash-consistent
// commit path: the coordinator crashes after forcing its commit decision
// but before any participant learns of it. The client sees
// ErrIndeterminate (NOT retryable), the fragments are left prepared and
// in doubt, and recovery must resolve them to commit via the engine's
// decision log — making the transaction's effects durable even though
// phase 2 never ran.
func TestInDoubtResolvedByDecisionLog(t *testing.T) {
	faultCleanup(t)
	e, s := isoEngine(t)
	defer s.Close()

	// Rows 2 and 3 hash to different fragments: a two-participant 2PC.
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `UPDATE acct SET bal = bal - 40 WHERE id = 2`)
	mustExec(t, s, `UPDATE acct SET bal = bal + 40 WHERE id = 3`)
	if err := fault.Arm("twopc.before-commit", fault.Spec{Mode: fault.Crash, N: 1}); err != nil {
		t.Fatal(err)
	}
	_, err := s.Exec(`COMMIT`)
	if !errors.Is(err, txn.ErrIndeterminate) {
		t.Fatalf("COMMIT across crash point = %v, want ErrIndeterminate", err)
	}
	if txn.IsRetryable(err) {
		t.Error("an indeterminate commit must not be retryable")
	}

	// The machine is down: volatile state goes, stable storage survives.
	if err := e.CrashTable("acct"); err != nil {
		t.Fatal(err)
	}
	fault.DisarmAll()
	fault.ClearCrash()

	rep, err := e.RecoverTableReport("acct")
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResolvedCommits == 0 {
		t.Errorf("recovery resolved no in-doubt commits: %+v", rep)
	}
	if rep.Unresolved != 0 {
		t.Errorf("recovery leaked %d unresolved in-doubt transactions", rep.Unresolved)
	}
	// The decided transaction's effects are durable.
	if got := balance(t, s, 2); got != 160 {
		t.Errorf("bal(2) = %d, want 160 (resolved commit lost)", got)
	}
	if got := balance(t, s, 3); got != 340 {
		t.Errorf("bal(3) = %d, want 340 (resolved commit lost)", got)
	}

	// A second restart needs no resolver: the logs were healed with
	// explicit outcome markers.
	if err := e.CrashTable("acct"); err != nil {
		t.Fatal(err)
	}
	rep2, err := e.RecoverTableReport("acct")
	if err != nil {
		t.Fatal(err)
	}
	if rep2.ResolvedCommits != 0 || rep2.Unresolved != 0 {
		t.Errorf("healed log still has in-doubt work: %+v", rep2)
	}
	if got := balance(t, s, 2); got != 160 {
		t.Errorf("second recovery: bal(2) = %d, want 160", got)
	}
}

// TestPresumedAbortOnPrepareCrash: a crash between prepare and the
// decision force leaves prepared fragments with NO logged decision —
// recovery must presume abort and the transaction's effects must never
// surface.
func TestPresumedAbortOnPrepareCrash(t *testing.T) {
	faultCleanup(t)
	e, s := isoEngine(t)
	defer s.Close()

	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `UPDATE acct SET bal = 9999 WHERE id = 2`)
	mustExec(t, s, `UPDATE acct SET bal = 9999 WHERE id = 3`)
	if err := fault.Arm("twopc.after-prepare", fault.Spec{Mode: fault.Crash, N: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`COMMIT`); err == nil {
		t.Fatal("COMMIT across pre-decision crash must fail")
	} else if errors.Is(err, txn.ErrIndeterminate) {
		t.Fatalf("no decision was logged, outcome is determined (abort): %v", err)
	}

	if err := e.CrashTable("acct"); err != nil {
		t.Fatal(err)
	}
	fault.DisarmAll()
	fault.ClearCrash()

	rep, err := e.RecoverTableReport("acct")
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResolvedCommits != 0 {
		t.Errorf("undecided transaction resolved to commit: %+v", rep)
	}
	if rep.Unresolved != 0 {
		t.Errorf("recovery leaked %d unresolved in-doubt transactions", rep.Unresolved)
	}
	if got := balance(t, s, 2); got != 200 {
		t.Errorf("bal(2) = %d, want 200 (presumed-abort effects surfaced)", got)
	}
	if got := balance(t, s, 3); got != 300 {
		t.Errorf("bal(3) = %d, want 300 (presumed-abort effects surfaced)", got)
	}
}

// TestStatementTimeoutSQL: SET STATEMENT_TIMEOUT bounds lock waits and
// surfaces a retryable timeout instead of blocking forever behind a
// lock holder.
func TestStatementTimeoutSQL(t *testing.T) {
	e, holder := isoEngine(t)
	defer holder.Close()

	mustExec(t, holder, `BEGIN`)
	mustExec(t, holder, `UPDATE acct SET bal = 1 WHERE id = 1`)

	blocked := e.NewSession()
	defer blocked.Close()
	res := mustExec(t, blocked, `SET STATEMENT_TIMEOUT = 40`)
	if res.Msg == "" {
		t.Error("SET returned no message")
	}
	start := time.Now()
	_, err := blocked.Exec(`UPDATE acct SET bal = 2 WHERE id = 1`)
	if !errors.Is(err, txn.ErrTimeout) {
		t.Fatalf("blocked UPDATE = %v, want ErrTimeout", err)
	}
	if !txn.IsRetryable(err) {
		t.Error("lock-wait timeout must be retryable")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}

	// The holder is unaffected; once it commits, the blocked session's
	// retry succeeds and the timeout can be disabled again.
	mustExec(t, holder, `COMMIT`)
	mustExec(t, blocked, `UPDATE acct SET bal = 2 WHERE id = 1`)
	mustExec(t, blocked, `SET STATEMENT_TIMEOUT = 0`)
	if got := balance(t, blocked, 1); got != 2 {
		t.Errorf("bal(1) = %d, want 2", got)
	}

	// Explicit transactions inherit the session timeout at BEGIN.
	mustExec(t, holder, `BEGIN`)
	mustExec(t, holder, `UPDATE acct SET bal = 3 WHERE id = 1`)
	timed := e.NewSession()
	defer timed.Close()
	mustExec(t, timed, `SET STATEMENT_TIMEOUT = 40`)
	mustExec(t, timed, `BEGIN`)
	if _, err := timed.Exec(`UPDATE acct SET bal = 4 WHERE id = 1`); !errors.Is(err, txn.ErrTimeout) {
		t.Fatalf("explicit-txn UPDATE = %v, want ErrTimeout", err)
	}
	mustExec(t, timed, `ROLLBACK`)
	mustExec(t, holder, `ROLLBACK`)
}
