package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/fragment"
	"repro/internal/value"
)

// streamEngine builds an engine with the stock emp table plus a larger
// wide table for multi-batch streams.
func streamEngine(t *testing.T, rows int) *Engine {
	t.Helper()
	eng, err := New(Config{NumPEs: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	if err := eng.CreateTable("emp", value.MustSchema("id", "INT", "dept", "VARCHAR", "salary", "INT"),
		&fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: 4}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := eng.CreateTable("dept", value.MustSchema("name", "VARCHAR", "head", "VARCHAR"),
		&fragment.Scheme{Strategy: fragment.RoundRobin, N: 2}, []int{0}); err != nil {
		t.Fatal(err)
	}
	depts := []string{"eng", "ops", "hr", "sales"}
	emp := make([]value.Tuple, rows)
	for i := range emp {
		emp[i] = value.NewTuple(
			value.NewInt(int64(i)),
			value.NewString(depts[i%len(depts)]),
			value.NewInt(int64((i*37)%100000)),
		)
	}
	if err := eng.LoadTable("emp", emp); err != nil {
		t.Fatal(err)
	}
	dt := make([]value.Tuple, 0, len(depts))
	for i, d := range depts {
		dt = append(dt, value.NewTuple(value.NewString(d), value.NewString(fmt.Sprintf("head%d", i))))
	}
	if err := eng.LoadTable("dept", dt); err != nil {
		t.Fatal(err)
	}
	return eng
}

// collect drains a cursor into one relation.
func collect(t *testing.T, cur *Cursor) *value.Relation {
	t.Helper()
	out := value.NewRelation(cur.Schema())
	for {
		rel, err := cur.Next()
		if err != nil {
			t.Fatalf("cursor: %v", err)
		}
		if rel == nil {
			return out
		}
		if rel.Schema.Len() != cur.Schema().Len() {
			t.Fatalf("batch schema arity %d, cursor schema %d", rel.Schema.Len(), cur.Schema().Len())
		}
		out.Tuples = append(out.Tuples, rel.Tuples...)
	}
}

// TestStreamMatchesExec runs a spread of plan shapes both ways: the
// cursor must deliver exactly the tuples the materializing executor
// produces (streamed roots batch-wise, everything else single-batch).
func TestStreamMatchesExec(t *testing.T) {
	eng := streamEngine(t, 4000)
	queries := []string{
		`SELECT * FROM emp`,                                                          // fragment-at-a-time scan
		`SELECT * FROM emp WHERE salary > 50000`,                                     // pushed-down predicate
		`SELECT id, salary + 1 AS s1 FROM emp`,                                       // streamed projection
		`SELECT * FROM emp WHERE id = 123`,                                           // index probe
		`SELECT * FROM emp WHERE id = 123 AND salary > 0`,                            // probe + residual
		`SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept`,                          // materialized fallback
		`SELECT * FROM emp ORDER BY salary DESC LIMIT 10`,                            // sort fallback
		`SELECT DISTINCT dept FROM emp`,                                              // distinct fallback
		`SELECT e.id, d.head FROM emp e, dept d WHERE e.dept = d.name AND e.id < 50`, // join fallback
	}
	for _, q := range queries {
		t.Run(q, func(t *testing.T) {
			s := eng.NewSession()
			defer s.Close()
			want, err := s.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			cur, res, err := s.Stream(q)
			if err != nil {
				t.Fatal(err)
			}
			if res != nil {
				t.Fatalf("SELECT produced a materialized result: %+v", res)
			}
			got := collect(t, cur)
			if cur.Rows() != int64(got.Len()) {
				t.Fatalf("cursor.Rows() = %d, drained %d", cur.Rows(), got.Len())
			}
			if strings.Contains(q, "LIMIT") {
				// LIMIT without full ORDER BY determinism: compare counts.
				if got.Len() != want.Len() {
					t.Fatalf("rows = %d, want %d", got.Len(), want.Len())
				}
				return
			}
			if !got.SameBag(want) {
				t.Fatalf("streamed result differs from materialized:\ngot %d rows\nwant %d rows", got.Len(), want.Len())
			}
			if err := cur.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStreamLimitStopsEarly verifies LIMIT truncates the stream without
// draining every fragment's tuples through the consumer.
func TestStreamLimitStopsEarly(t *testing.T) {
	eng := streamEngine(t, 4000)
	s := eng.NewSession()
	defer s.Close()
	cur, _, err := s.Stream(`SELECT * FROM emp LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, cur)
	if got.Len() != 5 {
		t.Fatalf("rows = %d, want 5", got.Len())
	}
	if eng.Txns().ActiveCount() != 0 {
		t.Fatal("autocommit transaction still open after exhausted stream")
	}
}

// TestStreamDDLAndDML routes non-SELECT statements through Stream.
func TestStreamDDLAndDML(t *testing.T) {
	eng := streamEngine(t, 100)
	s := eng.NewSession()
	defer s.Close()
	cur, res, err := s.Stream(`INSERT INTO emp VALUES (100000, 'eng', 5)`)
	if err != nil {
		t.Fatal(err)
	}
	if cur != nil || res == nil || res.Affected != 1 {
		t.Fatalf("cur=%v res=%+v", cur, res)
	}
	if _, _, err := s.Stream(`SELECT * FROM nope`); err == nil {
		t.Fatal("streaming a bad statement succeeded")
	}
}

// TestStreamExhaustionCommitsAutocommit: draining the cursor commits
// the autocommit transaction and releases every lock.
func TestStreamExhaustionCommitsAutocommit(t *testing.T) {
	eng := streamEngine(t, 2000)
	s := eng.NewSession()
	defer s.Close()
	cur, _, err := s.Stream(`SELECT * FROM emp`)
	if err != nil {
		t.Fatal(err)
	}
	collect(t, cur)
	if got := eng.Txns().ActiveCount(); got != 0 {
		t.Fatalf("%d transactions active after exhaustion", got)
	}
	// A writer must not block.
	assertWriteCompletes(t, eng)
	if cur.WallTime() <= 0 {
		t.Fatalf("WallTime = %v after exhaustion", cur.WallTime())
	}
}

// TestStreamEarlyCloseReleasesLocks: closing a part-read cursor aborts
// the autocommit transaction so its S-locks never leak.
func TestStreamEarlyCloseReleasesLocks(t *testing.T) {
	eng := streamEngine(t, 4000)
	s := eng.NewSession()
	defer s.Close()
	cur, _, err := s.Stream(`SELECT * FROM emp`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Txns().ActiveCount(); got != 0 {
		t.Fatalf("%d transactions active after early close", got)
	}
	assertWriteCompletes(t, eng)
	// The cursor is poisoned but quiet after close.
	if rel, err := cur.Next(); rel != nil || err != nil {
		t.Fatalf("Next after Close = (%v, %v)", rel, err)
	}
}

// TestStreamExplicitTxnSnapshot: inside BEGIN..ROLLBACK the streaming
// reader pins a snapshot instead of locks — a concurrent writer is
// never blocked, and the open transaction keeps seeing its snapshot
// regardless of what committed since.
func TestStreamExplicitTxnSnapshot(t *testing.T) {
	eng := streamEngine(t, 2000)
	s := eng.NewSession()
	defer s.Close()
	if _, err := s.Exec(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	cur, _, err := s.Stream(`SELECT * FROM emp`)
	if err != nil {
		t.Fatal(err)
	}
	collect(t, cur)
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	// The reader transaction is still open, but snapshot reads hold no
	// locks: a writer must complete promptly.
	w := eng.NewSession()
	defer w.Close()
	done := make(chan error, 1)
	go func() {
		_, err := w.Exec(`UPDATE emp SET salary = 1 WHERE id = 7`)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("writer alongside streaming transaction: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("writer blocked by a snapshot reader")
	}
	// The open transaction still sees its snapshot, not the new commit.
	rel, err := s.Query(`SELECT salary FROM emp WHERE id = 7`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0][0].Int() == 1 {
		t.Fatalf("snapshot transaction observed the concurrent write: %v", rel.Tuples)
	}
	if _, err := s.Exec(`ROLLBACK`); err != nil {
		t.Fatal(err)
	}
	// A fresh read after the transaction ends sees the writer's commit.
	rel, err = s.Query(`SELECT salary FROM emp WHERE id = 7`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0][0].Int() != 1 {
		t.Fatalf("post-transaction read missed the committed write: %v", rel.Tuples)
	}
}

// assertWriteCompletes fails the test if an exclusive-lock write cannot
// finish promptly (i.e. a reader leaked locks).
func assertWriteCompletes(t *testing.T, eng *Engine) {
	t.Helper()
	w := eng.NewSession()
	defer w.Close()
	done := make(chan error, 1)
	go func() {
		_, err := w.Exec(`UPDATE emp SET salary = 2 WHERE id = 11`)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("write blocked: stream locks leaked")
	}
}
