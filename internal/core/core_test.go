package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/optimizer"
)

// newEngine builds a 16-PE engine (4x4 torus is not square-free: 16 PEs
// gets the 4x4 torus) for tests.
func newEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(Config{NumPEs: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

// setupEmp creates and loads the standard test schema.
func setupEmp(t *testing.T, e *Engine) *Session {
	t.Helper()
	s := e.NewSession()
	mustExec(t, s, `CREATE TABLE emp (id INT, dept VARCHAR, salary INT, PRIMARY KEY (id))
		FRAGMENT BY HASH(id) INTO 4 FRAGMENTS`)
	mustExec(t, s, `CREATE TABLE dept (name VARCHAR, budget INT, PRIMARY KEY (name))`)
	depts := []string{"eng", "ops", "hr"}
	var rows []string
	for i := 0; i < 60; i++ {
		rows = append(rows, fmt.Sprintf("(%d, '%s', %d)", i, depts[i%3], i*10))
	}
	mustExec(t, s, "INSERT INTO emp VALUES "+strings.Join(rows, ", "))
	mustExec(t, s, `INSERT INTO dept VALUES ('eng', 1000), ('ops', 500), ('hr', 200)`)
	return s
}

func TestCreateInsertSelect(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	rel, err := s.Query(`SELECT * FROM emp`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 60 {
		t.Errorf("SELECT * = %d rows", rel.Len())
	}
	// Data is actually fragmented: each of 4 fragments holds some rows.
	tab, err := e.lookupTable("emp")
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range tab.frags {
		if f.ofm.Rows() == 0 {
			t.Errorf("fragment %d is empty; no distribution", i)
		}
	}
	// Catalog stats updated.
	if tab.def.Rows() != 60 {
		t.Errorf("catalog rows = %d", tab.def.Rows())
	}
}

func TestSelectWithPredicate(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	rel, err := s.Query(`SELECT id, salary FROM emp WHERE salary >= 300 AND dept = 'eng'`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rel.Tuples {
		if row[1].Int() < 300 {
			t.Errorf("predicate violated: %v", row)
		}
	}
	if rel.Schema.Len() != 2 {
		t.Errorf("projection schema = %v", rel.Schema)
	}
	// eng ids are multiples of 3; salary = id*10 >= 300 => id >= 30.
	want := 0
	for i := 30; i < 60; i++ {
		if i%3 == 0 {
			want++
		}
	}
	if rel.Len() != want {
		t.Errorf("rows = %d, want %d", rel.Len(), want)
	}
}

func TestPointLookupPrunesFragments(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	rel, err := s.Query(`SELECT * FROM emp WHERE id = 42`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0][0].Int() != 42 {
		t.Errorf("point lookup = %v", rel.Tuples)
	}
}

func TestJoin(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	rel, err := s.Query(`SELECT e.id, d.budget FROM emp e JOIN dept d ON e.dept = d.name WHERE e.id < 6`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 6 {
		t.Fatalf("join rows = %d, want 6: %v", rel.Len(), rel.Tuples)
	}
	for _, row := range rel.Tuples {
		id := row[0].Int()
		wantBudget := map[int64]int64{0: 1000, 1: 500, 2: 200}[id%3]
		if row[1].Int() != wantBudget {
			t.Errorf("row %v: budget mismatch", row)
		}
	}
}

func TestColocatedJoin(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	// Self-join on the hash key: optimizer should pick colocated.
	res := mustExec(t, s, `SELECT a.id FROM emp a JOIN emp b ON a.id = b.id`)
	if res.Rel.Len() != 60 {
		t.Errorf("self join rows = %d", res.Rel.Len())
	}
	if !strings.Contains(res.Plan, "colocated") {
		t.Errorf("plan did not choose colocated join:\n%s", res.Plan)
	}
}

func TestImplicitJoinSyntax(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	rel, err := s.Query(`SELECT e.id FROM emp e, dept d WHERE e.dept = d.name AND d.budget > 600`)
	if err != nil {
		t.Fatal(err)
	}
	// Only eng (budget 1000): 20 employees.
	if rel.Len() != 20 {
		t.Errorf("rows = %d, want 20", rel.Len())
	}
}

func TestCrossProductRejected(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	if _, err := s.Query(`SELECT * FROM emp, dept`); err == nil {
		t.Error("cross product should be rejected")
	}
}

func TestAggregation(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	rel, err := s.Query(`SELECT dept, COUNT(*) AS n, SUM(salary) AS total, AVG(salary) AS mean
		FROM emp GROUP BY dept ORDER BY dept`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("groups = %d: %v", rel.Len(), rel.Tuples)
	}
	if rel.Tuples[0][0].Str() != "eng" {
		t.Errorf("order by dept: first = %v", rel.Tuples[0])
	}
	for _, row := range rel.Tuples {
		if row[1].Int() != 20 {
			t.Errorf("count for %s = %v", row[0].Str(), row[1])
		}
	}
	// Global aggregate.
	rel, err = s.Query(`SELECT COUNT(*) AS n, MIN(salary) AS lo, MAX(salary) AS hi FROM emp`)
	if err != nil {
		t.Fatal(err)
	}
	row := rel.Tuples[0]
	if row[0].Int() != 60 || row[1].Int() != 0 || row[2].Int() != 590 {
		t.Errorf("global aggregate = %v", row)
	}
}

func TestAggregatePushdownMatchesCentral(t *testing.T) {
	// The same query with and without the parallel rule must agree.
	eAll := newEngine(t)
	sAll := setupEmp(t, eAll)
	noPar := optimizer.Options{Pushdown: true, JoinOrder: true, CSE: true, Parallel: false}
	eOff, err := New(Config{NumPEs: 16, Optimizer: &noPar})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eOff.Close)
	sOff := setupEmp(t, eOff)
	q := `SELECT dept, COUNT(*) AS n, AVG(salary) AS mean FROM emp GROUP BY dept`
	a, err := sAll.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sOff.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !a.SameSet(b) {
		t.Errorf("pushdown %v != central %v", a.Tuples, b.Tuples)
	}
}

func TestHavingDistinctLimit(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	rel, err := s.Query(`SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept HAVING n > 19`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 { // all have 20
		t.Errorf("having rows = %d", rel.Len())
	}
	rel, err = s.Query(`SELECT DISTINCT dept FROM emp`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Errorf("distinct = %d", rel.Len())
	}
	rel, err = s.Query(`SELECT id FROM emp ORDER BY id DESC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 5 || rel.Tuples[0][0].Int() != 59 {
		t.Errorf("order/limit = %v", rel.Tuples)
	}
}

func TestUpdateAndDelete(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	res := mustExec(t, s, `UPDATE emp SET salary = salary + 1000 WHERE dept = 'hr'`)
	if res.Affected != 20 {
		t.Errorf("updated %d", res.Affected)
	}
	rel, err := s.Query(`SELECT MIN(salary) AS lo FROM emp WHERE dept = 'hr'`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Tuples[0][0].Int() < 1000 {
		t.Errorf("update not visible: %v", rel.Tuples)
	}
	res = mustExec(t, s, `DELETE FROM emp WHERE dept = 'hr'`)
	if res.Affected != 20 {
		t.Errorf("deleted %d", res.Affected)
	}
	rel, err = s.Query(`SELECT COUNT(*) AS n FROM emp`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Tuples[0][0].Int() != 40 {
		t.Errorf("rows after delete = %v", rel.Tuples[0])
	}
	// Catalog stats follow.
	tab, _ := e.lookupTable("emp")
	if tab.def.Rows() != 40 {
		t.Errorf("catalog rows = %d", tab.def.Rows())
	}
}

func TestUpdateFragKeyRejected(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	if _, err := s.Exec(`UPDATE emp SET id = id + 1`); err == nil {
		t.Error("updating the fragmentation key should be rejected")
	}
}

func TestExplicitTransactions(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO emp VALUES (100, 'eng', 1)`)
	mustExec(t, s, `DELETE FROM emp WHERE id = 0`)
	// Another session doesn't see uncommitted changes... it would block
	// on locks, so check via direct fragment reads: deferred writes are
	// invisible until commit by design.
	tab, _ := e.lookupTable("emp")
	total := 0
	for _, f := range tab.frags {
		total += f.ofm.Rows()
	}
	if total != 60 {
		t.Errorf("uncommitted changes visible: %d rows", total)
	}
	mustExec(t, s, `COMMIT`)
	rel, err := s.Query(`SELECT COUNT(*) AS n FROM emp`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Tuples[0][0].Int() != 60 { // +1 -1
		t.Errorf("rows after commit = %v", rel.Tuples[0])
	}
	// Rollback path.
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `DELETE FROM emp`)
	mustExec(t, s, `ROLLBACK`)
	rel, err = s.Query(`SELECT COUNT(*) AS n FROM emp`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Tuples[0][0].Int() != 60 {
		t.Errorf("rollback failed: %v", rel.Tuples[0])
	}
	// Double BEGIN and stray COMMIT error.
	mustExec(t, s, `BEGIN`)
	if _, err := s.Exec(`BEGIN`); err == nil {
		t.Error("nested BEGIN should error")
	}
	mustExec(t, s, `ROLLBACK`)
	if _, err := s.Exec(`COMMIT`); err == nil {
		t.Error("COMMIT without BEGIN should error")
	}
}

func TestCrashRecoveryEndToEnd(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	mustExec(t, s, `UPDATE emp SET salary = 77777 WHERE id = 7`)
	before, err := s.Query(`SELECT * FROM emp`)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CrashTable("emp"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RecoverTable("emp"); err != nil {
		t.Fatal(err)
	}
	after, err := s.Query(`SELECT * FROM emp`)
	if err != nil {
		t.Fatal(err)
	}
	if !after.SameSet(before) {
		t.Errorf("recovery diverged: %d vs %d rows", after.Len(), before.Len())
	}
	got, err := s.Query(`SELECT salary FROM emp WHERE id = 7`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tuples[0][0].Int() != 77777 {
		t.Errorf("committed update lost: %v", got.Tuples)
	}
	// Checkpoint shrinks the log.
	pre, err := e.LogBytes("emp")
	if err != nil {
		t.Fatal(err)
	}
	if pre == 0 {
		t.Error("expected non-empty log before checkpoint")
	}
	if err := e.CheckpointTable("emp"); err != nil {
		t.Fatal(err)
	}
	post, err := e.LogBytes("emp")
	if err != nil {
		t.Fatal(err)
	}
	if post >= pre {
		t.Errorf("checkpoint did not shrink the log: %d -> %d", pre, post)
	}
}

func TestDatalog(t *testing.T) {
	e := newEngine(t)
	s := e.NewSession()
	mustExec(t, s, `CREATE TABLE parent (p VARCHAR, c VARCHAR) FRAGMENT BY HASH(p) INTO 2 FRAGMENTS`)
	mustExec(t, s, `INSERT INTO parent VALUES ('ann','bob'), ('bob','cat'), ('cat','dan')`)
	if err := e.RegisterRules(`
		ancestor(X, Y) :- parent(X, Y).
		ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
	`); err != nil {
		t.Fatal(err)
	}
	rel, err := e.DatalogQuery(s, `ancestor('ann', X)`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 { // bob, cat, dan
		t.Errorf("descendants = %v", rel.Tuples)
	}
	// Rules + queries in one program.
	answers, err := e.DatalogProgram(s, `
		sibling_free(X) :- parent(X, Y).
		?- sibling_free(X).
		?- ancestor(X, 'dan').
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 {
		t.Fatalf("answers = %d", len(answers))
	}
	if answers[1].Len() != 3 { // ann, bob, cat
		t.Errorf("ancestors of dan = %v", answers[1].Tuples)
	}
	// Registering queries errors.
	if err := e.RegisterRules(`?- parent(X, Y).`); err == nil {
		t.Error("RegisterRules should reject queries")
	}
	// Unknown predicate errors.
	if _, err := e.DatalogQuery(s, `nosuch(X)`); err == nil {
		t.Error("unknown predicate should error")
	}
	e.ClearRules()
	if _, err := e.DatalogQuery(s, `ancestor('ann', X)`); err == nil {
		t.Error("cleared rules should make ancestor unknown")
	}
}

func TestConcurrentSessions(t *testing.T) {
	e := newEngine(t)
	setupEmp(t, e)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := e.NewSession()
			defer s.Close()
			for j := 0; j < 5; j++ {
				if _, err := s.Query(`SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept`); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	// Two writer sessions too.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := e.NewSession()
			defer s.Close()
			for j := 0; j < 5; j++ {
				sql := fmt.Sprintf(`UPDATE emp SET salary = salary + 1 WHERE id = %d`, i*10+j)
				if _, err := s.Exec(sql); err != nil && !strings.Contains(err.Error(), "deadlock") {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestErrorPaths(t *testing.T) {
	e := newEngine(t)
	s := e.NewSession()
	if _, err := s.Exec(`SELECT * FROM missing`); err == nil {
		t.Error("missing table should error")
	}
	if _, err := s.Exec(`CREATE TABLE t (x INT) FRAGMENT BY HASH(nope) INTO 2 FRAGMENTS`); err == nil {
		t.Error("bad frag column should error")
	}
	mustExec(t, s, `CREATE TABLE t (x INT, PRIMARY KEY (x))`)
	if _, err := s.Exec(`CREATE TABLE t (y INT)`); err == nil {
		t.Error("duplicate table should error")
	}
	if _, err := s.Exec(`INSERT INTO t VALUES (1, 2)`); err == nil {
		t.Error("arity mismatch should error")
	}
	if _, err := s.Exec(`INSERT INTO t (nope) VALUES (1)`); err == nil {
		t.Error("bad column list should error")
	}
	if _, err := s.Exec(`SELECT nope FROM t`); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := s.Exec(`SELECT x, COUNT(*) FROM t`); err == nil {
		t.Error("non-grouped column with aggregate should error")
	}
	if _, err := s.Exec(`UPDATE t SET nope = 1`); err == nil {
		t.Error("bad SET column should error")
	}
	if _, err := s.Exec(`DROP TABLE missing`); err == nil {
		t.Error("dropping a missing table should error")
	}
	mustExec(t, s, `DROP TABLE t`)
	if _, err := s.Exec(`SELECT * FROM t`); err == nil {
		t.Error("dropped table should be gone")
	}
}

func TestSimTimeReported(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	res := mustExec(t, s, `SELECT COUNT(*) AS n FROM emp`)
	if res.SimTime <= 0 {
		t.Errorf("SimTime = %v", res.SimTime)
	}
	if res.WallTime <= 0 {
		t.Errorf("WallTime = %v", res.WallTime)
	}
	if res.Plan == "" {
		t.Error("plan missing")
	}
}

func TestInsertWithColumnListAndNulls(t *testing.T) {
	e := newEngine(t)
	s := e.NewSession()
	mustExec(t, s, `CREATE TABLE t (a INT, b VARCHAR, c FLOAT)`)
	mustExec(t, s, `INSERT INTO t (a) VALUES (1)`)
	rel, err := s.Query(`SELECT * FROM t WHERE b IS NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || !rel.Tuples[0][1].IsNull() || !rel.Tuples[0][2].IsNull() {
		t.Errorf("null defaults = %v", rel.Tuples)
	}
}

func TestValueExprsInSelect(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	rel, err := s.Query(`SELECT id, salary * 2 AS double, abs(salary - 300) AS dist FROM emp WHERE id = 3`)
	if err != nil {
		t.Fatal(err)
	}
	row := rel.Tuples[0]
	if row[1].Int() != 60 || row[2].Int() != 270 {
		t.Errorf("computed row = %v", row)
	}
}
