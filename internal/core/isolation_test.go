package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/txn"
)

// Snapshot-isolation anomaly regression suite. Each test pins one
// guarantee of the MVCC design: readers see a consistent committed
// snapshot (no G1a dirty reads, no G1b non-repeatable reads), writers
// are serialized by exclusive locks (no G0 dirty writes), concurrent
// read-modify-write transactions cannot silently lose updates
// (first-committer-wins aborts the second writer with a retryable
// error), transactions read their own uncommitted writes, and the one
// anomaly snapshot isolation permits — write skew — is demonstrated so
// a future strengthening to serializable shows up as a test change.

// isoEngine builds an engine with one single-column-key accounts table.
func isoEngine(t *testing.T) (*Engine, *Session) {
	t.Helper()
	e := newEngine(t)
	s := e.NewSession()
	mustExec(t, s, `CREATE TABLE acct (id INT, bal INT, PRIMARY KEY (id))
		FRAGMENT BY HASH(id) INTO 4 FRAGMENTS`)
	mustExec(t, s, `INSERT INTO acct VALUES (1, 100), (2, 200), (3, 300), (4, 400)`)
	return e, s
}

func balance(t *testing.T, s *Session, id int) int64 {
	t.Helper()
	rel, err := s.Query(fmt.Sprintf(`SELECT bal FROM acct WHERE id = %d`, id))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("balance(%d): %d rows", id, rel.Len())
	}
	return rel.Tuples[0][0].Int()
}

// TestNoDirtyReads (G1a): an uncommitted write is invisible to every
// other session, and stays invisible after the writer rolls back.
func TestNoDirtyReads(t *testing.T) {
	e, w := isoEngine(t)
	defer w.Close()
	r := e.NewSession()
	defer r.Close()

	mustExec(t, w, `BEGIN`)
	mustExec(t, w, `UPDATE acct SET bal = 999 WHERE id = 1`)
	if got := balance(t, r, 1); got != 100 {
		t.Errorf("reader saw uncommitted write: bal = %d", got)
	}
	mustExec(t, w, `ROLLBACK`)
	if got := balance(t, r, 1); got != 100 {
		t.Errorf("rolled-back write leaked: bal = %d", got)
	}
}

// TestNoNonRepeatableReads (G1b): a transaction re-reading a row sees
// the same value even after a concurrent commit; the new value appears
// only to reads that start after the transaction ends.
func TestNoNonRepeatableReads(t *testing.T) {
	e, w := isoEngine(t)
	defer w.Close()
	r := e.NewSession()
	defer r.Close()

	mustExec(t, r, `BEGIN`)
	if got := balance(t, r, 2); got != 200 {
		t.Fatalf("first read: bal = %d", got)
	}
	mustExec(t, w, `UPDATE acct SET bal = 201 WHERE id = 2`) // autocommit
	if got := balance(t, r, 2); got != 200 {
		t.Errorf("non-repeatable read: bal = %d", got)
	}
	// A scan inside the same transaction is equally stable.
	rel, err := r.Query(`SELECT SUM(bal) AS total FROM acct`)
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.Tuples[0][0].Int(); got != 1000 {
		t.Errorf("snapshot aggregate drifted: total = %d", got)
	}
	mustExec(t, r, `COMMIT`)
	if got := balance(t, r, 2); got != 201 {
		t.Errorf("post-transaction read: bal = %d", got)
	}
}

// TestNoDirtyWrites (G0): two writers of the same row serialize on the
// exclusive fragment lock; the second waits for the first to settle and
// never interleaves with (or overwrites) an uncommitted write.
func TestNoDirtyWrites(t *testing.T) {
	e, s := isoEngine(t)
	defer s.Close()

	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `UPDATE acct SET bal = 111 WHERE id = 1`)

	w := e.NewSession()
	defer w.Close()
	done := make(chan error, 1)
	go func() {
		_, err := w.Exec(`UPDATE acct SET bal = 222 WHERE id = 1`)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("second writer did not wait for the first (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
		// Blocked on the X-lock, as required.
	}
	mustExec(t, s, `ROLLBACK`)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("second writer after rollback: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second writer still blocked after rollback")
	}
	if got := balance(t, s, 1); got != 222 {
		t.Errorf("after rollback+write: bal = %d", got)
	}
}

// TestLostUpdateAborts: of two transactions that read-modify-write the
// same row from the same starting snapshot, the first committer wins
// and the second aborts with a retryable conflict — never a silent
// lost update.
func TestLostUpdateAborts(t *testing.T) {
	e, s1 := isoEngine(t)
	defer s1.Close()
	s2 := e.NewSession()
	defer s2.Close()

	// Both transactions pin their snapshot before either writes.
	mustExec(t, s1, `BEGIN`)
	if got := balance(t, s1, 3); got != 300 {
		t.Fatalf("s1 read: %d", got)
	}
	mustExec(t, s2, `BEGIN`)
	if got := balance(t, s2, 3); got != 300 {
		t.Fatalf("s2 read: %d", got)
	}
	mustExec(t, s1, `UPDATE acct SET bal = bal + 10 WHERE id = 3`)
	mustExec(t, s1, `COMMIT`)

	_, err := s2.Exec(`UPDATE acct SET bal = bal + 7 WHERE id = 3`)
	if err == nil {
		t.Fatal("second writer overwrote a concurrent committed update")
	}
	if !txn.IsRetryable(err) {
		t.Fatalf("conflict error is not retryable: %v", err)
	}
	mustExec(t, s2, `ROLLBACK`)
	if got := balance(t, s1, 3); got != 310 {
		t.Errorf("first committer's update lost: bal = %d", got)
	}

	// The documented contract: a retry from a fresh snapshot succeeds.
	mustExec(t, s2, `BEGIN`)
	mustExec(t, s2, `UPDATE acct SET bal = bal + 7 WHERE id = 3`)
	mustExec(t, s2, `COMMIT`)
	if got := balance(t, s1, 3); got != 317 {
		t.Errorf("retried update: bal = %d", got)
	}
}

// TestReadYourOwnWrites: inside a transaction, updates, inserts and
// deletes are visible to the transaction's own reads before commit —
// and invisible to everyone else until commit.
func TestReadYourOwnWrites(t *testing.T) {
	e, s := isoEngine(t)
	defer s.Close()
	r := e.NewSession()
	defer r.Close()

	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `UPDATE acct SET bal = 150 WHERE id = 1`)
	if got := balance(t, s, 1); got != 150 {
		t.Errorf("own update invisible: bal = %d", got)
	}
	mustExec(t, s, `INSERT INTO acct VALUES (9, 900)`)
	if got := balance(t, s, 9); got != 900 {
		t.Errorf("own insert invisible: bal = %d", got)
	}
	mustExec(t, s, `DELETE FROM acct WHERE id = 2`)
	rel, err := s.Query(`SELECT * FROM acct WHERE id = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 0 {
		t.Errorf("own delete invisible: %d rows", rel.Len())
	}
	// Aggregates see the overlay too: 150 + 300 + 400 + 900.
	rel, err = s.Query(`SELECT SUM(bal) AS total FROM acct`)
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.Tuples[0][0].Int(); got != 1750 {
		t.Errorf("own-write aggregate: total = %d", got)
	}
	// Another session sees none of it.
	rel, err = r.Query(`SELECT SUM(bal) AS total FROM acct`)
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.Tuples[0][0].Int(); got != 1000 {
		t.Errorf("uncommitted writes leaked: total = %d", got)
	}
	mustExec(t, s, `COMMIT`)
	rel, err = r.Query(`SELECT SUM(bal) AS total FROM acct`)
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.Tuples[0][0].Int(); got != 1750 {
		t.Errorf("committed writes missing: total = %d", got)
	}
}

// TestWriteSkewPermitted: snapshot isolation (by design) permits write
// skew — two transactions each read both rows, then update different
// rows, and both commit even though a serial execution could not have
// produced the outcome. This pins the isolation level; a move to
// serializable would flip this test.
func TestWriteSkewPermitted(t *testing.T) {
	e, s1 := isoEngine(t)
	defer s1.Close()
	s2 := e.NewSession()
	defer s2.Close()

	mustExec(t, s1, `BEGIN`)
	mustExec(t, s2, `BEGIN`)
	// Both check the same invariant (bal1 + bal2 = 300)...
	if got := balance(t, s1, 1) + balance(t, s1, 2); got != 300 {
		t.Fatalf("s1 sum: %d", got)
	}
	if got := balance(t, s2, 1) + balance(t, s2, 2); got != 300 {
		t.Fatalf("s2 sum: %d", got)
	}
	// ...then write disjoint rows: no write-write conflict, both commit.
	mustExec(t, s1, `UPDATE acct SET bal = bal - 150 WHERE id = 1`)
	mustExec(t, s2, `UPDATE acct SET bal = bal - 250 WHERE id = 2`)
	mustExec(t, s1, `COMMIT`)
	mustExec(t, s2, `COMMIT`)
	if got := balance(t, s1, 1) + balance(t, s1, 2); got != -100 {
		t.Errorf("write-skew outcome: sum = %d (expected -100: SI permits this)", got)
	}
}

// TestSelectAcquiresNoLocks asserts the central mechanical claim of the
// MVCC design: read-only statements — point probes, scans, aggregates,
// streamed cursors, and reads inside explicit transactions — never
// touch the lock manager at all.
func TestSelectAcquiresNoLocks(t *testing.T) {
	e, s := isoEngine(t)
	defer s.Close()

	before := e.Txns().Locks().Acquires()
	if _, err := s.Query(`SELECT * FROM acct WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(`SELECT * FROM acct`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(`SELECT COUNT(*) AS n, SUM(bal) AS total FROM acct`); err != nil {
		t.Fatal(err)
	}
	cur, _, err := s.Stream(`SELECT * FROM acct`)
	if err != nil {
		t.Fatal(err)
	}
	for {
		rel, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rel == nil {
			break
		}
	}
	mustExec(t, s, `BEGIN`)
	if _, err := s.Query(`SELECT * FROM acct WHERE id = 2`); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, `COMMIT`)
	if after := e.Txns().Locks().Acquires(); after != before {
		t.Errorf("read-only statements acquired %d locks", after-before)
	}
}
