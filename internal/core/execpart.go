package core

// The partitioned dataflow executor. execPart produces a partitioned
// intermediate (partRel): per-PE tuple partitions that stay where they
// were computed until a plan.Exchange moves them or the plan root
// gathers them at the coordinator. Between exchanges, Select / Project /
// Join / partial aggregation run partition-parallel on the owning PEs,
// charging their virtual clocks — the coordinator materializes only at
// the root. This replaces the old executor's scan-children-only gate:
// joins of joins, filters between scan and join, grouped aggregation,
// Sort and Distinct over arbitrary children all run distributed.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/value"
)

// partRel is a partitioned intermediate result: parts[i] lives on PE
// pes[i]. Slots align positionally between sibling partRels: exchanges
// with equal fan-out target the same PE list, and natively co-fragmented
// scans pair fragment-by-fragment.
type partRel struct {
	parts []*value.Relation
	pes   []int
}

// partSingleton wraps a coordinator-materialized relation as one
// partition at the session's PE.
func (e *Engine) partSingleton(ctx *execCtx, rel *value.Relation) *partRel {
	return &partRel{parts: []*value.Relation{rel}, pes: []int{ctx.s.pe}}
}

// exchangeTargets maps n partition slots onto PEs, deterministically
// spread over the machine — sibling exchanges with equal n always agree,
// which is what keeps hash buckets of a repartitioned join aligned.
func (e *Engine) exchangeTargets(n int) []int {
	num := e.m.NumPEs()
	out := make([]int, n)
	for i := range out {
		out[i] = i * num / n
	}
	return out
}

// eachPart runs fn once per partition slot concurrently and returns the
// first error. Per-slot work charges only that slot's PE, so virtual
// cost accounting is independent of host scheduling.
func eachPart(n int, fn func(i int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// gatherPart materializes a partitioned result at the coordinator,
// charging the network for every remote partition — the root (and only
// root) data collection of a partitioned plan.
func (e *Engine) gatherPart(ctx *execCtx, pr *partRel, schema *value.Schema) *value.Relation {
	out := value.NewRelation(schema)
	total := 0
	for _, p := range pr.parts {
		total += p.Len()
	}
	out.Tuples = make([]value.Tuple, 0, total)
	for i, p := range pr.parts {
		if p.Len() == 0 {
			continue
		}
		if pr.pes[i] != ctx.s.pe {
			e.m.Send(pr.pes[i], ctx.s.pe, p.Size())
		}
		out.Tuples = append(out.Tuples, p.Tuples...)
	}
	// Charge the gathered materialization; gatherPart cannot return an
	// error, so a breach sticks in the accumulator and aborts the
	// statement at execPlan's checkpoint.
	_ = ctx.chargeRel(out)
	return out
}

// execPart evaluates a subtree into a partitioned intermediate. Nodes
// without a partitioned implementation (index probes, central joins,
// aggregates, sorts) materialize through the ordinary executor and enter
// the dataflow as a coordinator singleton, which a parent Exchange can
// then spread back out.
func (e *Engine) execPart(ctx *execCtx, n plan.Node) (*partRel, error) {
	switch t := n.(type) {
	case *plan.Exchange:
		return e.execPartExchange(ctx, t)
	case *plan.Scan:
		return e.execPartScan(ctx, t)
	case *plan.Select:
		return e.execPartSelect(ctx, t)
	case *plan.Project:
		return e.execPartProject(ctx, t)
	case *plan.Join:
		switch t.Method {
		case plan.JoinColocated, plan.JoinRepartition, plan.JoinBroadcast:
			return e.execPartJoin(ctx, t)
		}
	}
	rel, err := e.exec(ctx, n)
	if err != nil {
		return nil, err
	}
	return e.partSingleton(ctx, rel), nil
}

// execPartScan scans a table's fragments in place: each fragment's OFM
// filters locally (charging its own PE) and the tuples stay on the
// fragment PE — no shipping until an exchange or the root gather asks
// for it. CSE-shared scans keep their materialized cache semantics and
// enter as a coordinator singleton; downstream splitters redistribute
// the cached tuples by reference without mutating them.
func (e *Engine) execPartScan(ctx *execCtx, sc *plan.Scan) (*partRel, error) {
	if sc.Shared {
		rel, err := e.execScan(ctx, sc)
		if err != nil {
			return nil, err
		}
		return e.partSingleton(ctx, rel), nil
	}
	t, err := e.lookupTable(sc.Table)
	if err != nil {
		return nil, err
	}
	frags := e.pruneFragments(t, sc.Pred)
	if err := e.lockFragments(ctx, t, frags); err != nil {
		return nil, err
	}
	parts := make([]*value.Relation, len(frags))
	pes := make([]int, len(frags))
	for i, fi := range frags {
		pes[i] = t.frags[fi].pe
	}
	err = eachPart(len(frags), func(i int) error {
		rel, err := t.frags[frags[i]].ofm.Scan(ctx.view, sc.Pred, nil)
		if err != nil {
			return err
		}
		out := value.NewRelation(sc.Out)
		out.Tuples = rel.Tuples
		parts[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &partRel{parts: parts, pes: pes}, nil
}

// execPartExchange moves a partitioned intermediate: hash exchanges
// split every source partition and ship each bucket to its target PE;
// singleton exchanges gather at the coordinator. (Broadcast exchanges
// under a join are consumed by execPartBroadcastJoin, which builds the
// replicated hash table once; a standalone broadcast replicates the
// gathered input to every target.)
func (e *Engine) execPartExchange(ctx *execCtx, x *plan.Exchange) (*partRel, error) {
	child, err := e.execPart(ctx, x.Child)
	if err != nil {
		return nil, err
	}
	schema := x.Child.Schema()
	switch x.Part.Kind {
	case plan.PartHash:
		n := x.Part.N
		if n < 1 {
			n = len(child.parts)
		}
		targets := e.exchangeTargets(n)
		// Phase 1: every source splits its partition and stamps all of
		// its bucket departures on its own clock — before any receiver
		// advances. A PE that is both source and target of this exchange
		// (the common case when consecutive exchanges share a fan-out)
		// therefore sends from its pre-receive clock; without the
		// two-phase stamping, arrivals would cascade sender-to-sender
		// and serialize the whole stage. Source slots are grouped by
		// owning PE and processed in slot order within one goroutine:
		// Depart is an Advance plus a separate clock read, so stamps on
		// a shared PE are only deterministic when serialized.
		perSrc := make([][][]value.Tuple, len(child.parts))
		departs := make([][]int64, len(child.parts)) // ns on the source clock, 0 = nothing sent
		srcsByPE := map[int][]int{}
		var peOrder []int
		for i, pe := range child.pes {
			if _, seen := srcsByPE[pe]; !seen {
				peOrder = append(peOrder, pe)
			}
			srcsByPE[pe] = append(srcsByPE[pe], i)
		}
		err := eachPart(len(peOrder), func(k int) error {
			pe := peOrder[k]
			for _, i := range srcsByPE[pe] {
				rel := child.parts[i]
				if rel.Len() == 0 {
					continue
				}
				buckets, st := algebra.SplitByHash(rel.Tuples, x.Part.Keys, n)
				e.m.PE(pe).Advance(e.m.Cost().HashCost(st.Hashes))
				dep := make([]int64, n)
				for b, tuples := range buckets {
					if len(tuples) == 0 || pe == targets[b] {
						continue
					}
					dep[b] = int64(e.m.Depart(pe, relBytes(tuples)))
				}
				perSrc[i] = buckets
				departs[i] = dep
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Phase 2: each target advances to the latest arrival headed its
		// way and assembles its partition in source order (deterministic
		// tuple order regardless of host scheduling).
		parts := make([]*value.Relation, n)
		for b := 0; b < n; b++ {
			out := value.NewRelation(schema)
			for i := range perSrc {
				if perSrc[i] == nil {
					continue
				}
				if tuples := perSrc[i][b]; len(tuples) > 0 && departs[i][b] > 0 {
					e.m.Arrive(child.pes[i], targets[b], relBytes(tuples), time.Duration(departs[i][b]))
				}
				out.Tuples = append(out.Tuples, perSrc[i][b]...)
			}
			parts[b] = out
		}
		return &partRel{parts: parts, pes: targets}, nil

	case plan.PartBroadcast:
		// Broadcast exchanges only exist as the small side of a
		// broadcast join, and execPartBroadcastJoin consumes them before
		// execution reaches here (it builds the replicated hash table
		// once instead of replicating raw tuples). Reaching this arm
		// means the optimizer produced a shape the executor has no
		// semantics for — fail loudly rather than guess.
		return nil, fmt.Errorf("core: standalone broadcast exchange outside a broadcast join")

	default: // PartSingleton
		rel := e.gatherPart(ctx, child, schema)
		return e.partSingleton(ctx, rel), nil
	}
}

// execPartSelect filters every partition where it lives. The predicate
// is compiled per partition (compiled forms keep scratch state, so they
// are not shared across goroutines).
func (e *Engine) execPartSelect(ctx *execCtx, s *plan.Select) (*partRel, error) {
	child, err := e.execPart(ctx, s.Child)
	if err != nil {
		return nil, err
	}
	schema := s.Child.Schema()
	parts := make([]*value.Relation, len(child.parts))
	err = eachPart(len(child.parts), func(i int) error {
		rel := child.parts[i]
		if rel.Len() == 0 {
			parts[i] = rel
			return nil
		}
		var out *value.Relation
		var st algebra.Stats
		if e.compiled {
			pred, err := expr.CompilePredicate(expr.Clone(s.Pred), schema)
			if err != nil {
				return err
			}
			out, st, err = algebra.Select(rel, pred)
			if err != nil {
				return err
			}
			e.m.PE(child.pes[i]).Advance(e.m.Cost().ScanCost(st.TuplesRead, true))
		} else {
			bound := expr.Clone(s.Pred)
			if _, err := expr.Bind(bound, schema); err != nil {
				return err
			}
			out, st, err = algebra.SelectInterpreted(rel, bound)
			if err != nil {
				return err
			}
			e.m.PE(child.pes[i]).Advance(e.m.Cost().ScanCost(st.TuplesRead, false))
		}
		parts[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &partRel{parts: parts, pes: child.pes}, nil
}

// execPartProject computes output expressions on every partition where
// it lives, compiling the projector per partition.
func (e *Engine) execPartProject(ctx *execCtx, p *plan.Project) (*partRel, error) {
	child, err := e.execPart(ctx, p.Child)
	if err != nil {
		return nil, err
	}
	schema := p.Child.Schema()
	parts := make([]*value.Relation, len(child.parts))
	err = eachPart(len(child.parts), func(i int) error {
		rel := child.parts[i]
		exprs := make([]expr.Expr, len(p.Exprs))
		for k, ex := range p.Exprs {
			exprs[k] = expr.Clone(ex)
		}
		proj, err := expr.CompileProjector(exprs, p.Names, schema)
		if err != nil {
			return err
		}
		out, st, err := algebra.ProjectExprs(rel, proj)
		if err != nil {
			return err
		}
		out.Schema = p.Out
		e.m.PE(child.pes[i]).Advance(e.m.Cost().BuildCost(st.TuplesEmitted))
		parts[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &partRel{parts: parts, pes: child.pes}, nil
}

// execPartJoin runs a distributed join over partitioned inputs: the
// children (including any Exchange nodes the optimizer inserted) are
// evaluated partitioned, aligned slots join in parallel on the left
// slot's PE, and each output partition is finished in place — swapped
// column order restored, residual predicate applied — so parents see
// j.Out without any coordinator round trip.
func (e *Engine) execPartJoin(ctx *execCtx, j *plan.Join) (*partRel, error) {
	if j.Method == plan.JoinBroadcast {
		return e.execPartBroadcastJoin(ctx, j)
	}
	l, err := e.execPart(ctx, j.Left)
	if err != nil {
		return nil, err
	}
	r, err := e.execPart(ctx, j.Right)
	if err != nil {
		return nil, err
	}
	if len(l.parts) != len(r.parts) {
		// Misaligned shapes (an optimizer the executor doesn't fully
		// trust): degrade to a coordinator join of the gathered sides.
		lrel := e.gatherPart(ctx, l, j.Left.Schema())
		rrel := e.gatherPart(ctx, r, j.Right.Schema())
		out, err := e.joinRelsCentral(ctx, j, lrel, rrel)
		if err != nil {
			return nil, err
		}
		return e.partSingleton(ctx, out), nil
	}
	parts := make([]*value.Relation, len(l.parts))
	err = eachPart(len(l.parts), func(i int) error {
		pe := l.pes[i]
		if r.parts[i].Len() > 0 && r.pes[i] != pe {
			// Mismatched placement: ship the right slot over.
			e.m.Send(r.pes[i], pe, r.parts[i].Size())
		}
		out, st, err := algebra.HashJoin(l.parts[i], r.parts[i], j.LeftKeys, j.RightKeys)
		if err != nil {
			return err
		}
		cost := e.m.Cost()
		e.m.PE(pe).Advance(cost.HashCost(st.Hashes) + cost.BuildCost(st.TuplesEmitted))
		out, err = e.finishJoinPart(j, out, pe)
		if err != nil {
			return err
		}
		parts[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &partRel{parts: parts, pes: append([]int(nil), l.pes...)}, nil
}

// execPartBroadcastJoin ships the small side — marked by the optimizer
// with an Exchange(broadcast) — to every partition of the big side and
// joins in place. The hash table is built once at the coordinator; only
// the small relation and nothing else travels.
func (e *Engine) execPartBroadcastJoin(ctx *execCtx, j *plan.Join) (*partRel, error) {
	bigNode, smallNode := j.Left, j.Right
	smallLeft := false
	if x, ok := j.Left.(*plan.Exchange); ok && x.Part.Kind == plan.PartBroadcast {
		bigNode, smallNode, smallLeft = j.Right, x.Child, true
	} else if x, ok := j.Right.(*plan.Exchange); ok && x.Part.Kind == plan.PartBroadcast {
		smallNode = x.Child
	} else {
		// No broadcast marker: join centrally.
		out, err := e.execCentralJoin(ctx, j)
		if err != nil {
			return nil, err
		}
		return e.partSingleton(ctx, out), nil
	}
	smallRel, err := e.exec(ctx, smallNode)
	if err != nil {
		return nil, err
	}
	big, err := e.execPart(ctx, bigNode)
	if err != nil {
		return nil, err
	}
	smallKeys, bigKeys := j.RightKeys, j.LeftKeys
	if smallLeft {
		smallKeys, bigKeys = j.LeftKeys, j.RightKeys
	}
	ht, bst, err := algebra.BuildHashTable(smallRel, smallKeys)
	if err != nil {
		return nil, err
	}
	e.m.PE(ctx.s.pe).Advance(e.m.Cost().HashCost(bst.Hashes))
	// Stamp the broadcast sends sequentially (deterministic timing).
	smallBytes := smallRel.Size()
	for _, pe := range big.pes {
		if pe != ctx.s.pe {
			e.m.Send(ctx.s.pe, pe, smallBytes)
		}
	}
	parts := make([]*value.Relation, len(big.parts))
	err = eachPart(len(big.parts), func(i int) error {
		out, st, err := ht.ProbeJoin(big.parts[i], bigKeys, !smallLeft)
		if err != nil {
			return err
		}
		cost := e.m.Cost()
		e.m.PE(big.pes[i]).Advance(cost.HashCost(st.Hashes) + cost.BuildCost(st.TuplesEmitted))
		out, err = e.finishJoinPart(j, out, big.pes[i])
		if err != nil {
			return err
		}
		parts[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &partRel{parts: parts, pes: append([]int(nil), big.pes...)}, nil
}

// execPartAggregate runs grouped aggregation over any partitioned child
// as partial-per-partition plus coordinator merge: each partition
// pre-aggregates where it lives, and only the (much smaller) partials
// travel.
func (e *Engine) execPartAggregate(ctx *execCtx, a *plan.Aggregate) (*value.Relation, error) {
	pr, err := e.execPart(ctx, a.Child)
	if err != nil {
		return nil, err
	}
	partialSpecs := algebra.PartialSpecs(a.Specs)
	partials := make([]*value.Relation, len(pr.parts))
	err = eachPart(len(pr.parts), func(i int) error {
		out, st, err := algebra.Aggregate(pr.parts[i], a.GroupBy, partialSpecs)
		if err != nil {
			return err
		}
		cost := e.m.Cost()
		e.m.PE(pr.pes[i]).Advance(cost.HashCost(st.Hashes) + cost.BuildCost(st.TuplesEmitted))
		partials[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, p := range partials {
		if p.Len() > 0 && pr.pes[i] != ctx.s.pe {
			e.m.Send(pr.pes[i], ctx.s.pe, p.Size())
		}
	}
	out, st, err := algebra.MergeAggregates(partials, len(a.GroupBy), a.Specs)
	if err != nil {
		return nil, err
	}
	cost := e.m.Cost()
	e.m.PE(ctx.s.pe).Advance(cost.HashCost(st.TuplesRead) + cost.BuildCost(st.TuplesEmitted))
	out.Schema = a.Out
	return out, nil
}

// execPartSort sorts each partition where it lives and k-way-merges the
// sorted runs at the coordinator — the merge costs O(N log k) there
// instead of a full O(N log N) central sort.
func (e *Engine) execPartSort(ctx *execCtx, t *plan.Sort) (*value.Relation, error) {
	pr, err := e.execPart(ctx, t.Child)
	if err != nil {
		return nil, err
	}
	return e.partSortMerge(ctx, t, pr)
}

// partSortMerge is the sort-and-merge tail over an already partitioned
// child — shared by the row and vectorized executors.
func (e *Engine) partSortMerge(ctx *execCtx, t *plan.Sort, pr *partRel) (*value.Relation, error) {
	runs := make([]*value.Relation, len(pr.parts))
	err := eachPart(len(pr.parts), func(i int) error {
		run, st, err := algebra.Sort(pr.parts[i], t.Cols, t.Desc)
		if err != nil {
			return err
		}
		e.m.PE(pr.pes[i]).Advance(e.m.Cost().CompareCost(st.Compares))
		runs[i] = run
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, run := range runs {
		if run.Len() > 0 && pr.pes[i] != ctx.s.pe {
			e.m.Send(pr.pes[i], ctx.s.pe, run.Size())
		}
	}
	out, st, err := algebra.MergeSortedRuns(runs, t.Cols, t.Desc)
	if err != nil {
		return nil, err
	}
	// The merge is this path's root materialization (gatherPart never
	// runs), so the budget charge lands here.
	if err := ctx.chargeRel(out); err != nil {
		return nil, err
	}
	e.m.PE(ctx.s.pe).Advance(e.m.Cost().CompareCost(st.Compares))
	return out, nil
}

// execPartDistinct dedups each partition in place before the
// coordinator's final merge dedup, so duplicate-heavy inputs shrink
// before they travel.
func (e *Engine) execPartDistinct(ctx *execCtx, t *plan.Distinct) (*value.Relation, error) {
	pr, err := e.execPart(ctx, t.Child)
	if err != nil {
		return nil, err
	}
	return e.partDistinctMerge(ctx, t, pr)
}

// partDistinctMerge is the dedup-and-merge tail over an already
// partitioned child — shared by the row and vectorized executors.
func (e *Engine) partDistinctMerge(ctx *execCtx, t *plan.Distinct, pr *partRel) (*value.Relation, error) {
	deduped := make([]*value.Relation, len(pr.parts))
	err := eachPart(len(pr.parts), func(i int) error {
		out, st := algebra.Distinct(pr.parts[i])
		e.m.PE(pr.pes[i]).Advance(e.m.Cost().HashCost(st.Hashes))
		deduped[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := e.gatherPart(ctx, &partRel{parts: deduped, pes: pr.pes}, t.Child.Schema())
	out, st := algebra.Distinct(merged)
	e.m.PE(ctx.s.pe).Advance(e.m.Cost().HashCost(st.Hashes))
	return out, nil
}
