// Package core implements the PRISMA DBMS engine: the Global Data
// Handler of paper §2.2, which "contains the data dictionary, the query
// optimizer, the transaction manager, the concurrency control unit, and
// the parsers for SQL and PRISMAlog", plus "a recovery component and a
// data allocation manager". It supervises the One-Fragment Managers,
// each running as a POOL-X-style process pinned to a processing element
// of the simulated multi-computer.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/fault"
	"repro/internal/fragment"
	"repro/internal/machine"
	"repro/internal/ofm"
	"repro/internal/optimizer"
	"repro/internal/pool"
	"repro/internal/prismalog"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wal"
)

// Config assembles an engine.
type Config struct {
	// Machine is the multi-computer; nil builds the default 64-PE torus.
	Machine *machine.Machine
	// NumPEs overrides the default machine size when Machine is nil.
	NumPEs int
	// Allocator places fragments onto PEs; nil uses the central
	// least-loaded policy (the paper's central resource management).
	Allocator fragment.Allocator
	// Compiled selects compiled expression evaluation in the OFMs
	// (default true; false forces the interpreter — experiment E4).
	Compiled *bool
	// Optimizer selects the knowledge-base rule groups (default: all).
	Optimizer *optimizer.Options
	// TCAlgorithm picks the transitive-closure strategy for recursive
	// PRISMAlog rules routed to the closure operator.
	TCAlgorithm algebra.TCAlgorithm
	// SemiNaive picks the PRISMAlog fixpoint strategy (default true).
	SemiNaive *bool
	// PlanCache toggles the engine-level plan cache that lets unprepared
	// autocommit statements skip re-parse/re-optimization (default true;
	// false is the E12 unprepared baseline).
	PlanCache *bool
	// PlanCacheSize caps cached statement shapes (default 256).
	PlanCacheSize int
	// MVCC toggles multiversion snapshot reads (default true): SELECTs
	// pin a snapshot timestamp and take no locks, writers keep strict
	// 2PL X-locks plus first-committer-wins validation. False restores
	// the all-2PL baseline (S-locks on reads) — experiment E16 measures
	// the difference.
	MVCC *bool
	// Vectorized toggles columnar batch execution (default true): eligible
	// read plans run over the OFM fragment column caches with selection
	// vectors, materializing tuples only at the plan root. False forces
	// tuple-at-a-time execution everywhere — the E20 baseline. Vectorized
	// scans require compiled expressions and MVCC snapshot reads; when
	// either is off the engine falls back to the row path regardless.
	Vectorized *bool
	// FaultDomain scopes injected faults to this engine's stable stores.
	// Nil uses the process-wide default domain. Replication experiments
	// give each engine its own domain so crashing the primary leaves
	// replicas (in the same OS process) untouched.
	FaultDomain *fault.Domain
}

// table couples catalog metadata with the live fragment managers.
// Routing (including round-robin) goes through the scheme's atomic
// cursor, so concurrent sessions never serialize on a table mutex.
type table struct {
	def     *catalog.Table
	frags   []*fragRef
	logsRef *fragLogs
}

// fragRef is one fragment's OFM plus its serving process.
type fragRef struct {
	ofm  *ofm.OFM
	proc *pool.Process
	pe   int
}

// Engine is the PRISMA database engine.
type Engine struct {
	m     *machine.Machine
	rt    *pool.Runtime
	cat   *catalog.Catalog
	txns  *txn.Manager
	opt   *optimizer.Optimizer
	alloc fragment.Allocator

	compiled   bool
	tcAlgo     algebra.TCAlgorithm
	semiNaive  bool
	mvcc       bool
	vectorized bool
	plans      *planCache // nil when the plan cache is disabled

	mu     sync.RWMutex // read-locked on the per-statement table lookup
	tables map[string]*table
	stores map[int]*machine.StableStore // disk PE -> stable store
	rules  []prismalog.Rule             // registered PRISMAlog views

	// decisions is the 2PC coordinator's durable decision log, living on
	// the first disk PE's stable store. Fragment recovery consults it to
	// resolve in-doubt transactions (nil only on diskless test machines).
	decisions *wal.DecisionLog

	nextPE atomic.Int64 // round-robin session coordinator

	// Replication role state (see replica.go): a read-only engine
	// refuses session writes, the epoch fences stale primaries after a
	// failover, and replW is the replica's consistent status watermark.
	readOnly    atomic.Bool
	epoch       atomic.Uint64
	promoteHook atomic.Pointer[func() error]
	replW       atomic.Uint64
	replWDur    atomic.Uint64 // last durably persisted replW
	faultDom    *fault.Domain

	// adm is the server's admission controller, attached via
	// SetAdmission so SHOW ADMISSION can report it (nil = off).
	adm *admission.Controller
}

// New builds an engine over a (possibly default) machine.
// armFaultsOnce applies the PRISMA_FAULTPOINTS environment arming on
// the first engine start of the process — the single choke point every
// entry path (embedded API, prisma-serve, tests, experiments) passes
// through. Once only: torture runs arm the process, not every engine a
// sweep builds and discards.
var armFaultsOnce sync.Once

func New(cfg Config) (*Engine, error) {
	var armErr error
	armFaultsOnce.Do(func() { armErr = fault.ArmFromEnv() })
	if armErr != nil {
		return nil, armErr
	}
	m := cfg.Machine
	if m == nil {
		var err error
		m, err = machine.New(machine.Config{NumPEs: cfg.NumPEs})
		if err != nil {
			return nil, err
		}
	}
	alloc := cfg.Allocator
	if alloc == nil {
		alloc = fragment.CentralAllocator{AvoidDiskPEs: m.NumPEs() > len(m.DiskPEs())}
	}
	compiled := true
	if cfg.Compiled != nil {
		compiled = *cfg.Compiled
	}
	optOpts := optimizer.AllRules()
	if cfg.Optimizer != nil {
		optOpts = *cfg.Optimizer
	}
	semiNaive := true
	if cfg.SemiNaive != nil {
		semiNaive = *cfg.SemiNaive
	}
	planCacheOn := true
	if cfg.PlanCache != nil {
		planCacheOn = *cfg.PlanCache
	}
	mvcc := true
	if cfg.MVCC != nil {
		mvcc = *cfg.MVCC
	}
	vectorized := true
	if cfg.Vectorized != nil {
		vectorized = *cfg.Vectorized
	}
	planCacheSize := cfg.PlanCacheSize
	if planCacheSize <= 0 {
		planCacheSize = 256
	}
	cat := catalog.New()
	e := &Engine{
		m:          m,
		rt:         pool.NewRuntime(m),
		cat:        cat,
		txns:       txn.NewManager(),
		opt:        optimizer.New(cat, optOpts),
		alloc:      alloc,
		compiled:   compiled,
		tcAlgo:     cfg.TCAlgorithm,
		semiNaive:  semiNaive,
		mvcc:       mvcc,
		vectorized: vectorized,
		tables:     map[string]*table{},
		stores:     map[int]*machine.StableStore{},
	}
	e.epoch.Store(1)
	e.faultDom = cfg.FaultDomain
	if e.faultDom == nil {
		e.faultDom = fault.DefaultDomain
	}
	if planCacheOn {
		e.plans = newPlanCache(planCacheSize)
	}
	for _, pe := range m.DiskPEs() {
		store, err := machine.NewStableStore(m.PE(pe), m.Disk())
		if err != nil {
			return nil, err
		}
		store.SetFaultDomain(e.faultDom)
		e.stores[pe] = store
	}
	if disks := m.DiskPEs(); len(disks) > 0 {
		dl, err := wal.OpenDecisionLog(e.stores[disks[0]], "2pc-decisions")
		if err != nil {
			return nil, err
		}
		e.decisions = dl
		e.txns.SetDecisionLog(dl)
	}
	return e, nil
}

// DecisionLog exposes the coordinator's commit-decision log (nil on
// machines without disk PEs).
func (e *Engine) DecisionLog() *wal.DecisionLog { return e.decisions }

// Machine returns the simulated multi-computer.
func (e *Engine) Machine() *machine.Machine { return e.m }

// Catalog returns the data dictionary.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Txns returns the transaction manager.
func (e *Engine) Txns() *txn.Manager { return e.txns }

// FaultDomain returns the fault domain scoping this engine's injected
// stable-storage faults.
func (e *Engine) FaultDomain() *fault.Domain { return e.faultDom }

// Close stops every OFM process.
func (e *Engine) Close() { e.rt.StopAll() }

// lookupTable finds a live table.
func (e *Engine) lookupTable(name string) (*table, error) {
	e.mu.RLock()
	t, ok := e.tables[canonical(name)]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: table %q does not exist", name)
	}
	return t, nil
}

func canonical(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out = append(out, c)
	}
	return string(out)
}

// coordinatorPE assigns a PE for a new session's GDH component instances
// ("for each query a new instance is created, possibly running at its
// own processor", §2.2). The round-robin counter is atomic so session
// spawn and placement never serialize under concurrent connections.
func (e *Engine) coordinatorPE() int {
	return int((e.nextPE.Add(1) - 1) % int64(e.m.NumPEs()))
}

// ---------- OFM process plumbing ----------

// Request kinds served by an OFM process.
type scanReq struct {
	view ofm.View
	pred expr.Expr
	cols []int
}

type aggReq struct {
	view    ofm.View
	pred    expr.Expr
	groupBy []int
	specs   []algebra.AggSpec
}

type closureReq struct {
	view           ofm.View
	fromCol, toCol int
	algo           algebra.TCAlgorithm
}

type insertReq struct {
	tx     txn.ID
	tuples []value.Tuple
}

type deleteReq struct {
	tx   txn.ID
	pred expr.Expr
	view ofm.View
}

type updateReq struct {
	tx   txn.ID
	pred expr.Expr
	set  map[int]expr.Expr
	view ofm.View
}

// commitReq carries the commit timestamp versions are stamped with.
type commitReq struct {
	tx txn.ID
	ts uint64
}

type loadReq struct{ tuples []value.Tuple }

// Replication apply requests (replica role, see replica.go). They run
// in the fragment's serving process so stream application serializes
// with snapshot scans exactly like local commits do.
type applyReq struct {
	recs  []wal.Record
	limit uint64
}

type advanceReq struct{ limit uint64 }

type syncReq struct {
	ckpt, logBytes []byte
	gen            uint64
	limit          uint64
}

type replayReq struct{ limit uint64 }

type pendingReq struct{}

type resolveReq struct {
	tx txn.ID
	ts uint64
}

type abortApplyReq struct{ tx txn.ID }

// spawnOFMProcess runs an OFM as a message-serving POOL-X process.
func (e *Engine) spawnOFMProcess(o *ofm.OFM, pe int) (*pool.Process, error) {
	return e.rt.Spawn("ofm-"+o.Name(), pe, func(ctx *pool.Context) error {
		for {
			msg, ok := ctx.Receive()
			if !ok {
				return nil
			}
			var body any
			var bytes int
			var err error
			switch req := msg.Body.(type) {
			case scanReq:
				var rel *value.Relation
				rel, err = o.Scan(req.view, req.pred, req.cols)
				if rel != nil {
					body, bytes = rel, rel.Size()
				}
			case aggReq:
				var rel *value.Relation
				rel, err = o.Aggregate(req.view, req.pred, req.groupBy, req.specs)
				if rel != nil {
					body, bytes = rel, rel.Size()
				}
			case closureReq:
				var rel *value.Relation
				rel, err = o.Closure(req.view, req.fromCol, req.toCol, req.algo)
				if rel != nil {
					body, bytes = rel, rel.Size()
				}
			case insertReq:
				err = o.InsertTx(req.tx, req.tuples...)
				body, bytes = len(req.tuples), 16
			case deleteReq:
				var n int
				n, err = o.DeleteTx(req.tx, req.pred, req.view)
				body, bytes = n, 16
			case updateReq:
				var n int
				n, err = o.UpdateTx(req.tx, req.pred, req.set, req.view)
				body, bytes = n, 16
			case loadReq:
				err = o.Load(req.tuples)
				body, bytes = len(req.tuples), 16
			case commitReq:
				err = o.Commit(req.tx, req.ts)
				bytes = 16
			case applyReq:
				var ts uint64
				ts, err = o.ApplyRecords(req.recs, req.limit)
				body, bytes = ts, 16
			case advanceReq:
				var ts uint64
				ts, err = o.AdvanceApplied(req.limit)
				body, bytes = ts, 16
			case syncReq:
				var off int64
				off, _, err = o.InstallSync(req.ckpt, req.logBytes, req.gen, req.limit)
				body, bytes = off, 16
			case replayReq:
				var off int64
				off, _, err = o.ReplayLocal(req.limit)
				body, bytes = off, 16
			case pendingReq:
				pend := o.PendingApplied()
				body, bytes = pend, 16*len(pend)+16
			case resolveReq:
				err = o.ResolveApplied(req.tx, req.ts)
				bytes = 16
			case abortApplyReq:
				err = o.AbortApplied(req.tx)
				bytes = 16
			case txn.ID:
				switch msg.Kind {
				case "prepare":
					err = o.Prepare(req)
				case "abort":
					err = o.Abort(req)
				default:
					err = fmt.Errorf("core: unknown txn request %q", msg.Kind)
				}
				bytes = 8
			default:
				err = fmt.Errorf("core: unknown request %T", msg.Body)
			}
			if rerr := ctx.Reply(msg, body, bytes, err); rerr != nil {
				return rerr
			}
		}
	})
}

// ofmParticipant adapts a fragment process to txn.Participant, shipping
// 2PC messages over the simulated network from the coordinator's PE.
type ofmParticipant struct {
	eng     *Engine
	frag    *fragRef
	coordPE int
}

// Name implements txn.Participant.
func (p *ofmParticipant) Name() string { return p.frag.ofm.Name() }

// Prepare implements txn.Participant.
func (p *ofmParticipant) Prepare(tx txn.ID) error {
	_, err := p.eng.rt.Call(p.coordPE, p.frag.proc, "prepare", tx, 64)
	return err
}

// Commit implements txn.Participant. The commit timestamp rides along so
// the OFM stamps every applied version with it.
func (p *ofmParticipant) Commit(tx txn.ID, ts uint64) error {
	_, err := p.eng.rt.Call(p.coordPE, p.frag.proc, "commit", commitReq{tx: tx, ts: ts}, 64)
	return err
}

// Abort implements txn.Participant.
func (p *ofmParticipant) Abort(tx txn.ID) error {
	_, err := p.eng.rt.Call(p.coordPE, p.frag.proc, "abort", tx, 64)
	return err
}

// ---------- crash / recovery (experiment E8) ----------

// CrashTable simulates the loss of every PE hosting the table: volatile
// fragment state vanishes; stable storage survives.
func (e *Engine) CrashTable(name string) error {
	t, err := e.lookupTable(name)
	if err != nil {
		return err
	}
	for _, f := range t.frags {
		f.ofm.Crash()
	}
	return nil
}

// RecoveryReport aggregates what restart recovery did across every
// fragment of a table.
type RecoveryReport struct {
	// Redo is the total number of redo records applied.
	Redo int
	// ResolvedCommits counts in-doubt transactions settled to commit via
	// the coordinator's decision log; PresumedAborts counts those with no
	// logged decision, aborted by the presumed-abort convention.
	ResolvedCommits int
	PresumedAborts  int
	// Unresolved counts in-doubt transactions recovery could NOT settle —
	// always zero when the engine's decision log is intact.
	Unresolved int
	// TornBytes is the trailing garbage truncated from fragment logs
	// (a mid-append crash tears at most one record per log).
	TornBytes int64
	// Wall is the host time the recovery pass took.
	Wall time.Duration
}

// RecoverTable rebuilds every fragment from its log, returning the total
// number of redo records applied.
func (e *Engine) RecoverTable(name string) (int, error) {
	rep, err := e.RecoverTableReport(name)
	return rep.Redo, err
}

// RecoverTableReport is RecoverTable plus the crash-consistency
// accounting: in-doubt resolutions, presumed aborts, unresolved leaks
// and torn bytes, summed over the table's fragments.
func (e *Engine) RecoverTableReport(name string) (RecoveryReport, error) {
	var rep RecoveryReport
	start := time.Now()
	t, err := e.lookupTable(name)
	if err != nil {
		return rep, err
	}
	var maxTS uint64
	for _, f := range t.frags {
		n, err := f.ofm.Recover()
		if err != nil {
			rep.Wall = time.Since(start)
			return rep, err
		}
		rep.Redo += n
		if ts := f.ofm.RecoveredTS(); ts > maxTS {
			maxTS = ts
		}
		if res := f.ofm.LastRecovery(); res != nil {
			rep.ResolvedCommits += len(res.ResolvedCommits)
			rep.PresumedAborts += len(res.PresumedAborts)
			rep.Unresolved += len(res.InDoubt) - len(res.ResolvedCommits) - len(res.PresumedAborts)
			rep.TornBytes += res.TornBytes
		}
	}
	// The restarted commit clock must move past every recovered commit
	// timestamp before allocating new ones, or fresh commits would be
	// invisible to (or collide with) recovered versions.
	e.txns.AdvanceTo(maxTS)
	// Refresh catalog statistics.
	for i, f := range t.frags {
		t.def.UpdateStats(i, f.ofm.Rows(), f.ofm.MemSize())
	}
	rep.Wall = time.Since(start)
	return rep, nil
}

// CheckpointTable folds each fragment's state into its checkpoint.
func (e *Engine) CheckpointTable(name string) error {
	t, err := e.lookupTable(name)
	if err != nil {
		return err
	}
	for _, f := range t.frags {
		if err := f.ofm.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// LogBytes reports the current WAL footprint of the table (E8 metric).
func (e *Engine) LogBytes(name string) (int64, error) {
	t, err := e.lookupTable(name)
	if err != nil {
		return 0, err
	}
	var total int64
	for i := range t.frags {
		log := e.fragLog(t, i)
		if log != nil {
			total += log.Bytes()
		}
	}
	return total, nil
}

// fragLogs tracks logs per fragment for LogBytes; set up at create time.
type fragLogs struct {
	logs []*wal.Log
}

func (e *Engine) fragLog(t *table, i int) *wal.Log {
	if t.logsRef == nil || i >= len(t.logsRef.logs) {
		return nil
	}
	return t.logsRef.logs[i]
}
