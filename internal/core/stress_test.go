package core

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/txn"
)

// TestConcurrentSessionsStress drives one engine from many sessions at
// once with mixed DDL/DML/SELECT/explicit-transaction traffic. Run under
// `go test -race` it is the multi-session safety net for the network
// front-end: every statement kind a server connection can issue is
// exercised concurrently. Deadlock aborts are expected (the lock manager
// kills waits-for cycles); any other error fails the test.
func TestConcurrentSessionsStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	eng, err := New(Config{NumPEs: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	setup := eng.NewSession()
	if _, err := setup.Exec(`CREATE TABLE acct (id INT, region VARCHAR, balance INT, PRIMARY KEY (id))
		FRAGMENT BY HASH(id) INTO 8 FRAGMENTS`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := setup.Exec(fmt.Sprintf(`INSERT INTO acct VALUES (%d, 'r%d', 1000)`, i, i%4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.RegisterRules(`rich(X) :- acct(X, R, B), B > 500.`); err != nil {
		t.Fatal(err)
	}

	const (
		workers = 16
		iters   = 40
	)
	// tolerable reports errors that are expected under contention:
	// deadlock aborts, and first-committer-wins write-write conflicts
	// (the retryable-abort contract of snapshot isolation).
	tolerable := func(err error) bool {
		if err == nil {
			return true
		}
		if txn.IsRetryable(err) {
			return true
		}
		msg := err.Error()
		// A session whose transaction was deadlock-aborted must ROLLBACK
		// before continuing; racing CREATE/DROP of per-worker tables can
		// briefly observe either state.
		return strings.Contains(msg, "deadlock") ||
			strings.Contains(msg, "ROLLBACK to continue") ||
			strings.Contains(msg, "already exists") ||
			strings.Contains(msg, "does not exist")
	}

	var wg sync.WaitGroup
	errc := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			s := eng.NewSession()
			defer s.Close()
			scratch := fmt.Sprintf("scratch_%d", w)
			report := func(err error) {
				if !tolerable(err) {
					errc <- fmt.Errorf("worker %d: %w", w, err)
				}
				if err != nil && s.InTransaction() {
					s.Exec("ROLLBACK")
				}
			}
			for i := 0; i < iters; i++ {
				id := r.Intn(64)
				switch r.Intn(10) {
				case 0: // DDL churn on a private table
					_, err := s.Exec(fmt.Sprintf(`CREATE TABLE %s (k INT, v INT) FRAGMENT BY HASH(k) INTO 2 FRAGMENTS`, scratch))
					report(err)
					if err == nil {
						_, err = s.Exec(fmt.Sprintf(`INSERT INTO %s VALUES (1, 2), (3, 4)`, scratch))
						report(err)
						_, err = s.Exec(fmt.Sprintf(`DROP TABLE %s`, scratch))
						report(err)
					}
				case 1, 2: // point read
					_, err := s.Query(fmt.Sprintf(`SELECT * FROM acct WHERE id = %d`, id))
					report(err)
				case 3: // analytics
					_, err := s.Query(`SELECT region, COUNT(*) AS n, SUM(balance) AS total FROM acct GROUP BY region`)
					report(err)
				case 4, 5: // autocommit update
					_, err := s.Exec(fmt.Sprintf(`UPDATE acct SET balance = balance + %d WHERE id = %d`, r.Intn(20)-10, id))
					report(err)
				case 6: // insert + delete of a private key range
					key := 1000 + w*1000 + i
					_, err := s.Exec(fmt.Sprintf(`INSERT INTO acct VALUES (%d, 'tmp', 1)`, key))
					report(err)
					_, err = s.Exec(fmt.Sprintf(`DELETE FROM acct WHERE id = %d`, key))
					report(err)
				case 7, 8: // explicit transaction: transfer between two accounts
					a, b := r.Intn(64), r.Intn(64)
					if _, err := s.Exec("BEGIN"); err != nil {
						report(err)
						continue
					}
					_, err := s.Exec(fmt.Sprintf(`UPDATE acct SET balance = balance - 5 WHERE id = %d`, a))
					if err == nil {
						_, err = s.Exec(fmt.Sprintf(`UPDATE acct SET balance = balance + 5 WHERE id = %d`, b))
					}
					if err != nil {
						report(err)
						continue
					}
					stmt := "COMMIT"
					if r.Intn(4) == 0 {
						stmt = "ROLLBACK"
					}
					_, err = s.Exec(stmt)
					report2(errc, w, err)
				case 9: // recursive-free datalog view
					_, err := eng.DatalogQuery(s, `rich(X)`)
					report(err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Every autocommit and explicit transaction must have terminated:
	// leaked Active transactions pin fragment locks forever.
	if n := eng.Txns().ActiveCount(); n != 0 {
		t.Errorf("after stress: %d transactions still active", n)
	}

	// The engine must still serve a clean session.
	final := eng.NewSession()
	defer final.Close()
	rel, err := final.Query(`SELECT COUNT(*) AS n FROM acct`)
	if err != nil {
		t.Fatalf("post-stress query: %v", err)
	}
	if rel.Len() != 1 {
		t.Fatalf("post-stress count returned %d rows", rel.Len())
	}
}

// report2 filters commit/rollback outcomes for the error channel;
// commit may legitimately fail if a participant aborted.
func report2(errc chan<- error, w int, err error) {
	if err == nil {
		return
	}
	if errors.Is(err, txn.ErrDeadlock) || errors.Is(err, txn.ErrAborted) ||
		strings.Contains(err.Error(), "deadlock") || strings.Contains(err.Error(), "abort") {
		return
	}
	errc <- fmt.Errorf("worker %d: %w", w, err)
}
