package core

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func intArgs(ns ...int64) []value.Value {
	out := make([]value.Value, len(ns))
	for i, n := range ns {
		out[i] = value.NewInt(n)
	}
	return out
}

func TestPrepareSelectPointQuery(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	ps, err := s.Prepare(`SELECT * FROM emp WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if got := ps.NumParams(); got != 1 {
		t.Fatalf("NumParams = %d", got)
	}
	for _, id := range []int64{0, 17, 59} {
		rel, err := s.QueryPrepared(ps, intArgs(id))
		if err != nil {
			t.Fatalf("id=%d: %v", id, err)
		}
		if rel.Len() != 1 || rel.Tuples[0][0].Int() != id {
			t.Fatalf("id=%d: got %v", id, rel.Tuples)
		}
	}
	// The prepared plan is the point-query fast path, not Scan→Select.
	res, err := s.ExecPrepared(ps, intArgs(5))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "IndexProbe") {
		t.Errorf("plan does not use the index probe:\n%s", res.Plan)
	}
}

func TestPrepareDollarParams(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	ps, err := s.Prepare(`SELECT * FROM emp WHERE id = $2 OR id = $1`)
	if err != nil {
		t.Fatal(err)
	}
	if got := ps.NumParams(); got != 2 {
		t.Fatalf("NumParams = %d", got)
	}
	rel, err := s.QueryPrepared(ps, intArgs(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("got %d rows", rel.Len())
	}
	if _, err := s.Prepare(`SELECT * FROM emp WHERE id = $1 OR id = ?`); err == nil {
		t.Error("mixing $n and ? did not error")
	}
}

func TestPreparedDML(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	ins, err := s.Prepare(`INSERT INTO emp VALUES (?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecPrepared(ins, []value.Value{
		value.NewInt(100), value.NewString("eng"), value.NewInt(12345)}); err != nil {
		t.Fatal(err)
	}
	up, err := s.Prepare(`UPDATE emp SET salary = ? WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ExecPrepared(up, intArgs(777, 100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("UPDATE affected %d", res.Affected)
	}
	rel, err := s.Query(`SELECT salary FROM emp WHERE id = 100`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0][0].Int() != 777 {
		t.Fatalf("after update: %v", rel.Tuples)
	}
	del, err := s.Prepare(`DELETE FROM emp WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.ExecPrepared(del, intArgs(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("DELETE affected %d", res.Affected)
	}
}

func TestPreparedWrongArity(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	ps, err := s.Prepare(`SELECT * FROM emp WHERE id = ? AND salary > ?`)
	if err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]value.Value{nil, intArgs(1), intArgs(1, 2, 3)} {
		if _, err := s.ExecPrepared(ps, args); err == nil {
			t.Errorf("arity %d accepted, want error", len(args))
		} else if !strings.Contains(err.Error(), "parameters") {
			t.Errorf("arity %d: unexpected error %v", len(args), err)
		}
	}
}

func TestPreparedTypeMismatch(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	ps, err := s.Prepare(`SELECT * FROM emp WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	// A string can never bind an INT slot.
	if _, err := s.ExecPrepared(ps, []value.Value{value.NewString("x")}); err == nil {
		t.Error("string bound to INT slot without error")
	}
	// Numeric binds behave like SQL literals: a fractional float on an
	// INT key is an empty result, a lossless one coerces and probes.
	rel, err := s.QueryPrepared(ps, []value.Value{value.NewFloat(1.5)})
	if err != nil {
		t.Fatalf("fractional float: %v", err)
	}
	if rel.Len() != 0 {
		t.Fatalf("id = 1.5 matched %d rows", rel.Len())
	}
	rel, err = s.QueryPrepared(ps, []value.Value{value.NewFloat(7)})
	if err != nil {
		t.Fatalf("lossless float: %v", err)
	}
	if rel.Len() != 1 || rel.Tuples[0][0].Int() != 7 {
		t.Fatalf("float-coerced probe: %v", rel.Tuples)
	}
	// Range comparisons accept fractional binds like their literal form.
	gt, err := s.Prepare(`SELECT COUNT(*) AS n FROM emp WHERE salary > ?`)
	if err != nil {
		t.Fatal(err)
	}
	relF, err := s.QueryPrepared(gt, []value.Value{value.NewFloat(99.5)})
	if err != nil {
		t.Fatalf("fractional range bind: %v", err)
	}
	relL, err := s.Query(`SELECT COUNT(*) AS n FROM emp WHERE salary > 99.5`)
	if err != nil {
		t.Fatal(err)
	}
	if relF.Tuples[0][0].Int() != relL.Tuples[0][0].Int() {
		t.Fatalf("prepared %v vs literal %v", relF.Tuples, relL.Tuples)
	}
	// INSERT slots are typed from the table schema.
	ins, err := s.Prepare(`INSERT INTO emp VALUES (?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecPrepared(ins, []value.Value{
		value.NewString("nope"), value.NewString("eng"), value.NewInt(1)}); err == nil {
		t.Error("string bound to INT insert slot without error")
	}
}

func TestPreparedNullBinds(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	// `id = NULL` never matches.
	ps, err := s.Prepare(`SELECT * FROM emp WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := s.QueryPrepared(ps, []value.Value{value.Null})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 0 {
		t.Fatalf("id = NULL matched %d rows", rel.Len())
	}
	// NULL inserts land as NULL.
	ins, err := s.Prepare(`INSERT INTO emp VALUES (?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecPrepared(ins, []value.Value{
		value.NewInt(200), value.Null, value.Null}); err != nil {
		t.Fatal(err)
	}
	rel, err = s.Query(`SELECT dept FROM emp WHERE id = 200`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || !rel.Tuples[0][0].IsNull() {
		t.Fatalf("NULL insert read back %v", rel.Tuples)
	}
}

// TestPreparedReplanAfterDDL drops and recreates the target table under
// a live PreparedStmt: the catalog version counter must invalidate the
// cached plan, and the re-prepared statement must see the new table. A
// stale plan would route to dead fragment managers or the old schema.
func TestPreparedReplanAfterDDL(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	ps, err := s.Prepare(`SELECT * FROM emp WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if rel, err := s.QueryPrepared(ps, intArgs(1)); err != nil || rel.Len() != 1 {
		t.Fatalf("before DDL: %v / %v", rel, err)
	}
	mustExec(t, s, `DROP TABLE emp`)
	// The old plan's fragments are gone; execution must replan, and the
	// replan must fail cleanly because the table no longer exists.
	if _, err := s.QueryPrepared(ps, intArgs(1)); err == nil ||
		!strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("after DROP: err = %v", err)
	}
	// Recreate with one extra column and different contents; the same
	// handle must now see the new schema.
	mustExec(t, s, `CREATE TABLE emp (id INT, dept VARCHAR, salary INT, bonus INT, PRIMARY KEY (id))
		FRAGMENT BY HASH(id) INTO 2 FRAGMENTS`)
	mustExec(t, s, `INSERT INTO emp VALUES (1, 'eng', 10, 99)`)
	rel, err := s.QueryPrepared(ps, intArgs(1))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Schema.Len() != 4 {
		t.Fatalf("after recreate: %d rows, schema %s", rel.Len(), rel.Schema)
	}
}

// TestPlanCacheInvalidationOnDDL exercises the engine plan cache (the
// unprepared path): a cached SELECT plan must not survive a DROP+CREATE
// of its table. With a stale plan this query would return the old
// table's contents (or crash on dead fragments).
func TestPlanCacheInvalidationOnDDL(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	rel, err := s.Query(`SELECT * FROM emp WHERE id = 3`)
	if err != nil || rel.Len() != 1 {
		t.Fatalf("warm the cache: %v / %v", rel, err)
	}
	if e.plans == nil || e.plans.Len() == 0 {
		t.Fatal("plan cache did not capture the statement")
	}
	mustExec(t, s, `DROP TABLE emp`)
	mustExec(t, s, `CREATE TABLE emp (id INT, dept VARCHAR, salary INT, PRIMARY KEY (id))`)
	mustExec(t, s, `INSERT INTO emp VALUES (3, 'new', 1)`)
	rel, err = s.Query(`SELECT dept FROM emp WHERE id = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0][0].Str() != "new" {
		t.Fatalf("stale plan survived DDL: %v", rel.Tuples)
	}
}

// TestPlanCacheSharesShapes verifies that statements differing only in
// literal values share one cached plan.
func TestPlanCacheSharesShapes(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	before := e.plans.Len()
	for _, q := range []string{
		`SELECT * FROM emp WHERE id = 1`,
		`SELECT * FROM emp WHERE id = 2`,
		`select * from emp WHERE id = 40`,
	} {
		if _, err := s.Query(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	if got := e.plans.Len() - before; got != 1 {
		t.Errorf("3 same-shape queries created %d cache entries, want 1", got)
	}
	// Different shapes get their own entries.
	if _, err := s.Query(`SELECT * FROM emp WHERE salary > 100`); err != nil {
		t.Fatal(err)
	}
	if got := e.plans.Len() - before; got != 2 {
		t.Errorf("cache entries = %d, want 2", got)
	}
}

// TestPlanCacheCorrectness runs shape-shared queries with clauses the
// normalizer treats specially (LIKE, IN, LIMIT, negative literals) and
// checks results against the uncached engine path.
func TestPlanCacheCorrectness(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	off := false
	e2, err := New(Config{NumPEs: 16, PlanCache: &off})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e2.Close)
	s2 := setupEmp(t, e2)
	queries := []string{
		`SELECT * FROM emp WHERE id = 7`,
		`SELECT * FROM emp WHERE salary > -10 AND salary < 100`,
		`SELECT * FROM emp WHERE dept LIKE 'e%'`,
		`SELECT * FROM emp WHERE id IN (1, 2, 3)`,
		`SELECT id FROM emp WHERE salary > 100 ORDER BY id LIMIT 5`,
		`SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept HAVING n > 10`,
		`SELECT e.id, d.budget FROM emp e JOIN dept d ON e.dept = d.name WHERE e.id = 4`,
		`SELECT salary * 2 AS twice FROM emp WHERE id = 9`,
	}
	for _, q := range queries {
		// Twice on the cached engine: first compiles, second hits.
		for pass := 0; pass < 2; pass++ {
			got, err := s.Query(q)
			if err != nil {
				t.Fatalf("pass %d %s: %v", pass, q, err)
			}
			want, err := s2.Query(q)
			if err != nil {
				t.Fatalf("uncached %s: %v", q, err)
			}
			if got.Len() != want.Len() {
				t.Errorf("pass %d %s: cached %d rows, uncached %d", pass, q, got.Len(), want.Len())
			}
		}
	}
}

// TestPlanCacheMixedNumericLiterals: caching must never change a legal
// statement's outcome. `id = 1.5` on an INT key is an empty result
// (not a bind error), and `id = 2.0` matches row 2 under SQL numeric
// comparison — even when both hit the plan cached for `id = 7`.
func TestPlanCacheMixedNumericLiterals(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	if _, err := s.Query(`SELECT * FROM emp WHERE id = 7`); err != nil {
		t.Fatal(err)
	}
	rel, err := s.Query(`SELECT * FROM emp WHERE id = 1.5`)
	if err != nil {
		t.Fatalf("id = 1.5 errored through the plan cache: %v", err)
	}
	if rel.Len() != 0 {
		t.Fatalf("id = 1.5 matched %d rows", rel.Len())
	}
	rel, err = s.Query(`SELECT * FROM emp WHERE id = 2.0`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0][0].Int() != 2 {
		t.Fatalf("id = 2.0: %v", rel.Tuples)
	}
	// Select-list literals keep their kinds through the cache: a lifted
	// projection literal would type the output column as NULL.
	res, err := s.Exec(`SELECT salary * 2 AS twice FROM emp WHERE id = 9`)
	if err != nil {
		t.Fatal(err)
	}
	if k := res.Rel.Schema.Column(0).Kind; k != value.KindInt {
		t.Fatalf("cached projection column kind = %s, want INTEGER", k)
	}
	// DML too: a FLOAT literal into an INT column must fail identically
	// whether or not the statement shape is cached — the cache must not
	// coerce what Conform would reject.
	if _, err := s.Exec(`INSERT INTO emp VALUES (900, 'x', 1)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`INSERT INTO emp VALUES (901.0, 'x', 1)`); err == nil ||
		!strings.Contains(err.Error(), "FLOAT") {
		t.Fatalf("float INSERT through cache: %v", err)
	}
}

// TestPrepareHugeDollarOrdinal: a hostile `$n` must not size server
// memory; the parser caps the ordinal at the wire format's uint16.
func TestPrepareHugeDollarOrdinal(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	for _, q := range []string{
		`SELECT * FROM emp WHERE id = $9000000000000000000`,
		`SELECT * FROM emp WHERE id = $70000`,
	} {
		if _, err := s.Prepare(q); err == nil ||
			!strings.Contains(err.Error(), "parameter number") {
			t.Errorf("Prepare(%q) = %v, want ordinal error", q, err)
		}
	}
	// The cap itself is usable.
	if _, err := s.Prepare(`SELECT * FROM emp WHERE id = $65535`); err != nil {
		t.Errorf("$65535 rejected: %v", err)
	}
}

// TestExecRejectsPlaceholders: raw Exec of a parameterized statement
// must fail with a clear message rather than executing with NULLs.
func TestExecRejectsPlaceholders(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	if _, err := s.Exec(`SELECT * FROM emp WHERE id = ?`); err == nil ||
		!strings.Contains(err.Error(), "placeholder") {
		t.Errorf("Exec with ? gave %v", err)
	}
}

// TestPreparedConcurrent hammers one shared PreparedStmt from many
// sessions while DDL churns another table, exercising the replan lock
// and the immutable compiled form under -race.
func TestPreparedConcurrent(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	ps, err := s.Prepare(`SELECT * FROM emp WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			sess := e.NewSession()
			defer sess.Close()
			for i := 0; i < 50; i++ {
				id := int64((w*50 + i) % 60)
				rel, err := sess.QueryPrepared(ps, intArgs(id))
				if err != nil {
					done <- err
					return
				}
				if rel.Len() != 1 {
					done <- errRows(rel.Len())
					return
				}
			}
			done <- nil
		}(w)
	}
	// Concurrent DDL on an unrelated table bumps the catalog version,
	// forcing replans mid-flight.
	for i := 0; i < 5; i++ {
		mustExec(t, s, `CREATE TABLE churn (x INT)`)
		mustExec(t, s, `DROP TABLE churn`)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type errRows int

func (e errRows) Error() string { return "unexpected row count" }
