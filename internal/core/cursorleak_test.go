package core

import (
	"testing"
)

// TestSessionCloseReleasesCursorPins covers abnormal teardown: a
// streamed cursor pins a snapshot when it opens, and a session closed
// with the cursor still open (client vanished mid-stream, embedded
// caller forgot Close) must release that pin — otherwise the GC
// horizon wedges at the abandoned snapshot and vacuum stalls forever.
func TestSessionCloseReleasesCursorPins(t *testing.T) {
	eng := streamEngine(t, 2000)

	sess := eng.NewSession()
	cur, res, err := sess.Stream(`SELECT * FROM emp`)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("SELECT returned materialized result %v", res)
	}
	// Pull one batch so the stream is genuinely mid-flight, then abandon
	// the cursor without closing it.
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	pinned := eng.Txns().Horizon()

	// Commit writes after the pin so the watermark moves past it.
	w := eng.NewSession()
	defer w.Close()
	for i := 0; i < 4; i++ {
		if _, err := w.Exec(`UPDATE emp SET salary = salary + 1 WHERE id = 7`); err != nil {
			t.Fatal(err)
		}
	}
	if h := eng.Txns().Horizon(); h != pinned {
		t.Fatalf("horizon moved to %d while a snapshot at %d is pinned", h, pinned)
	}

	sess.Close()

	if h, wm := eng.Txns().Horizon(), eng.Txns().Watermark(); h != wm {
		t.Fatalf("horizon %d still held back after Session.Close (watermark %d): leaked cursor pin", h, wm)
	}
}

// TestCursorCloseAfterSessionClose makes the teardown order the server
// actually produces (Session.Close from the connection teardown, then
// the stream's own deferred Close) safe: double-settling must not
// panic or double-release the pin.
func TestCursorCloseAfterSessionClose(t *testing.T) {
	eng := streamEngine(t, 100)
	sess := eng.NewSession()
	cur, _, err := sess.Stream(`SELECT * FROM emp`)
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if h, wm := eng.Txns().Horizon(), eng.Txns().Watermark(); h != wm {
		t.Fatalf("horizon %d != watermark %d after teardown", h, wm)
	}
}
