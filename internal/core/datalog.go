package core

import (
	"fmt"
	"sync"

	"repro/internal/catalog"
	"repro/internal/ofm"
	"repro/internal/prismalog"
	"repro/internal/txn"
	"repro/internal/value"
)

// The PRISMAlog interface (paper §2.3): base tables are the extensional
// database ("facts correspond to tuples in relations in the database"),
// registered rules are view definitions including recursion, and queries
// evaluate bottom-up with semi-naive iteration.

// RegisterRules parses PRISMAlog clauses and adds them to the engine's
// rule base. Queries are not allowed here; use DatalogQuery.
func (e *Engine) RegisterRules(src string) error {
	prog, err := prismalog.Parse(src)
	if err != nil {
		return err
	}
	if len(prog.Queries) > 0 {
		return fmt.Errorf("core: RegisterRules takes facts and rules only; use DatalogQuery for queries")
	}
	e.mu.Lock()
	e.rules = append(e.rules, prog.Rules...)
	e.mu.Unlock()
	return nil
}

// ClearRules empties the rule base.
func (e *Engine) ClearRules() {
	e.mu.Lock()
	e.rules = nil
	e.mu.Unlock()
}

// engineEDB resolves extensional predicates as base-table scans — under
// MVCC at the evaluation's pinned snapshot, under the 2PL baseline with
// shared-lock isolation through the query's transaction. Scanned tables
// are cached for the duration of one evaluation.
type engineEDB struct {
	e    *Engine
	s    *Session
	tx   *txn.Txn
	view ofm.View

	mu    sync.Mutex
	cache map[string]*value.Relation
	err   error
}

// Relation implements prismalog.EDB.
func (edb *engineEDB) Relation(pred string) (*value.Relation, bool) {
	edb.mu.Lock()
	if rel, ok := edb.cache[pred]; ok {
		edb.mu.Unlock()
		return rel, true
	}
	edb.mu.Unlock()

	t, err := edb.e.lookupTable(pred)
	if err != nil {
		return nil, false
	}
	// Grants bite exactly where base tables resolve: a PRISMAlog rule
	// body reading an unauthorized table fails the whole evaluation.
	if err := edb.s.checkAccess([]tableAccess{{pred, catalog.PrivSelect}}); err != nil {
		edb.recordErr(err)
		return nil, false
	}
	all := make([]int, len(t.frags))
	for i := range all {
		all[i] = i
	}
	ctx := &execCtx{s: edb.s, tx: edb.tx, view: edb.view, shared: map[string]*value.Relation{}}
	if err := edb.e.lockFragments(ctx, t, all); err != nil {
		edb.recordErr(err)
		return nil, false
	}
	parts, err := edb.e.parallelScan(ctx, t, all, nil)
	if err != nil {
		edb.recordErr(err)
		return nil, false
	}
	rel := value.NewRelation(t.def.Schema)
	for _, p := range parts {
		rel.Tuples = append(rel.Tuples, p.Tuples...)
	}
	edb.mu.Lock()
	edb.cache[pred] = rel
	edb.mu.Unlock()
	return rel, true
}

func (edb *engineEDB) recordErr(err error) {
	edb.mu.Lock()
	if edb.err == nil {
		edb.err = err
	}
	edb.mu.Unlock()
}

// DatalogQuery evaluates a PRISMAlog query (optionally prefixed "?-")
// against the engine's rule base and base tables. The answer's columns
// are the query's variables.
func (e *Engine) DatalogQuery(s *Session, query string) (*value.Relation, error) {
	q, err := prismalog.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	rules := append([]prismalog.Rule(nil), e.rules...)
	e.mu.Unlock()
	prog := &prismalog.Program{Rules: rules}

	tx, view, finish, err := s.readView()
	if err != nil {
		return nil, err
	}
	edb := &engineEDB{e: e, s: s, tx: tx, view: view, cache: map[string]*value.Relation{}}
	rel, _, evalErr := prismalog.EvalQuery(prog, q, edb, prismalog.Options{SemiNaive: e.semiNaive})
	if edb.err != nil {
		evalErr = edb.err
	}
	if err := finish(evalErr); err != nil {
		return nil, err
	}
	return rel, nil
}

// DatalogProgram runs a complete program (facts, rules and one or more
// queries) in one shot against the engine's tables, returning the answer
// of each query in order. The program's own rules are used alongside the
// engine's registered rule base.
func (e *Engine) DatalogProgram(s *Session, src string) ([]*value.Relation, error) {
	prog, err := prismalog.Parse(src)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	combined := &prismalog.Program{Rules: append(append([]prismalog.Rule(nil), e.rules...), prog.Rules...)}
	e.mu.Unlock()

	tx, view, finish, err := s.readView()
	if err != nil {
		return nil, err
	}
	edb := &engineEDB{e: e, s: s, tx: tx, view: view, cache: map[string]*value.Relation{}}
	var answers []*value.Relation
	for i := range prog.Queries {
		rel, _, evalErr := prismalog.EvalQuery(combined, &prog.Queries[i], edb, prismalog.Options{SemiNaive: e.semiNaive})
		if edb.err != nil {
			evalErr = edb.err
		}
		if evalErr != nil {
			return nil, finish(evalErr)
		}
		answers = append(answers, rel)
	}
	if err := finish(nil); err != nil {
		return nil, err
	}
	return answers, nil
}
